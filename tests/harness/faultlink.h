/**
 * @file
 * FaultLink: a deterministic fault-injection proxy for framed wire
 * links (tests/benches only).
 *
 * Consensus and failover bugs only show up under adversarial message
 * schedules, and real SIGKILL / kernel-FIN / reconnect timing makes
 * those schedules irreproducible. FaultLink replaces the raw socket
 * between two wire peers with a pair of socketpairs joined by a pump
 * thread that parses every FrameHeader and applies *scripted* faults:
 *
 *  - faults are keyed off the frame type and a per-direction logical
 *    clock (the count of frames observed in that direction), never off
 *    wall time — the same script always hits the same frames;
 *  - drop / delay (reorder by N frames) / duplicate / cut are the
 *    scriptable actions; partition() and heal() flip whole directions
 *    imperatively for partition-matrix tests;
 *  - cut() closes the link from both sides at a frame boundary, which
 *    is how tests model node loss without a SIGKILL race.
 *
 * The two outer fds (a() / b()) speak the ordinary wire protocol; code
 * under test cannot tell it is talking through the proxy. Ownership of
 * an outer fd transfers to the callee via releaseA()/releaseB() (e.g.
 * Receiver::adopt or LeaseManager::adoptPeerLink).
 */

#ifndef VARAN_TESTS_HARNESS_FAULTLINK_H
#define VARAN_TESTS_HARNESS_FAULTLINK_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "wire/protocol.h"

namespace varan::testing {

class FaultLink
{
  public:
    enum class Dir : int {
        AtoB = 0, ///< frames written on a(), delivered to b()
        BtoA = 1, ///< frames written on b(), delivered to a()
        Both = 2, ///< rule shorthand: match either direction
    };

    enum class Action : int {
        Drop,      ///< swallow the frame
        Delay,     ///< hold it until `hold_frames` later frames pass
        Duplicate, ///< deliver it twice back to back
        Cut,       ///< sever the link (both directions, both ends)
    };

    /** One scripted fault. A rule arms once the direction's logical
     *  clock reaches `at_clock`, lets `skip` matching frames pass, and
     *  then fires on the next `count` frames whose type matches
     *  (`FrameType::Invalid` matches any type). */
    struct Rule {
        Dir dir = Dir::Both;
        wire::FrameType type = wire::FrameType::Invalid;
        std::uint64_t at_clock = 0;
        std::uint64_t skip = 0; ///< matching frames to let through first
        std::uint64_t count = ~0ull;
        Action action = Action::Drop;
        /** Delay only: deliver after this many further frames in the
         *  same direction have been forwarded (reordering). */
        std::uint64_t hold_frames = 1;
    };

    struct Stats {
        std::uint64_t clock[2] = {0, 0}; ///< frames observed per Dir
        std::uint64_t forwarded[2] = {0, 0};
        std::uint64_t dropped[2] = {0, 0};
        std::uint64_t duplicated[2] = {0, 0};
        std::uint64_t delayed[2] = {0, 0};
    };

    FaultLink();

    /** Interpose on an existing connection: @p adopt_a (owned from
     *  here on) becomes side A — typically a just-accepted socket
     *  whose far end lives in another process — and b() is handed to
     *  the local peer. Only releaseB() is meaningful in this mode. */
    explicit FaultLink(int adopt_a);

    ~FaultLink();

    VARAN_NO_COPY_NO_MOVE(FaultLink);

    int a() const { return a_outer_; } ///< endpoint A (FaultLink owns)
    int b() const { return b_outer_; } ///< endpoint B (FaultLink owns)
    int releaseA(); ///< transfer ownership of a() to the caller
    int releaseB(); ///< transfer ownership of b() to the caller

    /** Append a scripted fault (applies from the current clock on). */
    void script(const Rule &rule);

    /** Imperative partition: drop every frame in @p dir (clocks keep
     *  ticking so scripts stay aligned). */
    void partition(Dir dir = Dir::Both);

    /** Lift every partition, clear pending rules, release held
     *  (delayed) frames in order. */
    void heal();

    /** Sever the link now: both outer fds see EOF at the next read, a
     *  deterministic stand-in for node death. */
    void cut();

    bool isCut() const;
    Stats stats() const;
    std::uint64_t clock(Dir dir) const;

    /** Spin until @p dir has observed @p n frames (true) or
     *  @p timeout_ns passes (false). The deterministic replacement for
     *  "sleep and hope the stream got there". */
    bool waitClock(Dir dir, std::uint64_t n, std::uint64_t timeout_ns);

  private:
    struct Held {
        std::vector<std::uint8_t> frame;
        std::uint64_t release_clock; ///< forward when clock reaches this
    };

    void pump();
    /** @return false when the link died (EOF or cut). */
    bool shuttle(int dir);
    void deliverLocked(int dir, const std::uint8_t *frame,
                       std::size_t len);
    void releaseHeldLocked(int dir);
    void cutLocked();

    int a_outer_ = -1, a_inner_ = -1;
    int b_outer_ = -1, b_inner_ = -1;
    bool own_a_ = true, own_b_ = true;
    bool dead_ = false;

    std::vector<Rule> rules_;
    bool partitioned_[2] = {false, false};
    std::deque<Held> held_[2];
    Stats stats_;

    std::thread thread_;
    mutable std::mutex mutex_;
    bool stopping_ = false;
};

} // namespace varan::testing

#endif // VARAN_TESTS_HARNESS_FAULTLINK_H
