#include "harness/faultlink.h"

#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "wire/io.h"

namespace varan::testing {

namespace {

/** Big enough that a stalled test-side reader never wedges the pump. */
void
wideBuffers(int fd)
{
    const int bytes = 1 << 20;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

} // namespace

FaultLink::FaultLink()
{
    int a[2] = {-1, -1};
    int b[2] = {-1, -1};
    VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, a) == 0);
    VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, b) == 0);
    a_outer_ = a[0];
    a_inner_ = a[1];
    b_outer_ = b[0];
    b_inner_ = b[1];
    for (int fd : {a[0], a[1], b[0], b[1]})
        wideBuffers(fd);
    thread_ = std::thread([this] { pump(); });
}

FaultLink::FaultLink(int adopt_a)
{
    int b[2] = {-1, -1};
    VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, b) == 0);
    a_inner_ = adopt_a; // the wire itself; no local A endpoint
    own_a_ = false;
    b_outer_ = b[0];
    b_inner_ = b[1];
    for (int fd : {adopt_a, b[0], b[1]})
        wideBuffers(fd);
    thread_ = std::thread([this] { pump(); });
}

FaultLink::~FaultLink()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stopping_ = true;
        cutLocked(); // wakes the pump's poll with EOFs
    }
    if (thread_.joinable())
        thread_.join();
    if (own_a_ && a_outer_ >= 0)
        ::close(a_outer_);
    if (own_b_ && b_outer_ >= 0)
        ::close(b_outer_);
    ::close(a_inner_);
    ::close(b_inner_);
}

int
FaultLink::releaseA()
{
    own_a_ = false;
    return a_outer_;
}

int
FaultLink::releaseB()
{
    own_b_ = false;
    return b_outer_;
}

void
FaultLink::script(const Rule &rule)
{
    std::lock_guard<std::mutex> guard(mutex_);
    rules_.push_back(rule);
}

void
FaultLink::partition(Dir dir)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (dir == Dir::AtoB || dir == Dir::Both)
        partitioned_[0] = true;
    if (dir == Dir::BtoA || dir == Dir::Both)
        partitioned_[1] = true;
}

void
FaultLink::heal()
{
    std::lock_guard<std::mutex> guard(mutex_);
    partitioned_[0] = partitioned_[1] = false;
    rules_.clear();
    for (int dir = 0; dir < 2; ++dir) {
        while (!held_[dir].empty()) {
            Held held = std::move(held_[dir].front());
            held_[dir].pop_front();
            deliverLocked(dir, held.frame.data(), held.frame.size());
        }
    }
}

void
FaultLink::cut()
{
    std::lock_guard<std::mutex> guard(mutex_);
    cutLocked();
}

bool
FaultLink::isCut() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return dead_;
}

FaultLink::Stats
FaultLink::stats() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
}

std::uint64_t
FaultLink::clock(Dir dir) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_.clock[static_cast<int>(dir)];
}

bool
FaultLink::waitClock(Dir dir, std::uint64_t n, std::uint64_t timeout_ns)
{
    const std::uint64_t deadline = monotonicNs() + timeout_ns;
    while (clock(dir) < n) {
        if (monotonicNs() >= deadline)
            return false;
        sleepNs(200000); // 0.2 ms
    }
    return true;
}

void
FaultLink::cutLocked()
{
    if (dead_)
        return;
    dead_ = true;
    // Frame-boundary severance: both outer peers read EOF, the pump's
    // poll wakes with EOF on both inner fds and exits.
    ::shutdown(a_inner_, SHUT_RDWR);
    ::shutdown(b_inner_, SHUT_RDWR);
}

void
FaultLink::deliverLocked(int dir, const std::uint8_t *frame,
                         std::size_t len)
{
    const int dst = dir == 0 ? b_inner_ : a_inner_;
    if (wire::writeFull(dst, frame, len))
        ++stats_.forwarded[dir];
    else
        cutLocked();
}

void
FaultLink::releaseHeldLocked(int dir)
{
    while (!held_[dir].empty() &&
           held_[dir].front().release_clock <= stats_.clock[dir]) {
        Held held = std::move(held_[dir].front());
        held_[dir].pop_front();
        deliverLocked(dir, held.frame.data(), held.frame.size());
    }
}

bool
FaultLink::shuttle(int dir)
{
    const int src = dir == 0 ? a_inner_ : b_inner_;

    wire::FrameHeader header = {};
    if (!wire::readFull(src, &header, sizeof(header)))
        return false;
    if (!wire::headerValid(header)) {
        warn("faultlink: unparseable frame header (magic %#x type %u) — "
             "cutting the link",
             header.magic, static_cast<unsigned>(header.type));
        std::lock_guard<std::mutex> guard(mutex_);
        cutLocked();
        return false;
    }
    std::vector<std::uint8_t> frame(sizeof(header) + header.body_len);
    std::memcpy(frame.data(), &header, sizeof(header));
    if (header.body_len > 0 &&
        !wire::readFull(src, frame.data() + sizeof(header),
                        header.body_len))
        return false;

    std::lock_guard<std::mutex> guard(mutex_);
    if (dead_)
        return false;
    ++stats_.clock[dir];

    // Scripted rules outrank the imperative partition, so a script can
    // still cut or duplicate a frame "inside" a partition window.
    Action action = Action::Drop;
    bool matched = false;
    for (Rule &rule : rules_) {
        const int rule_dir = static_cast<int>(rule.dir);
        if (rule.dir != Dir::Both && rule_dir != dir)
            continue;
        if (rule.type != wire::FrameType::Invalid &&
            rule.type != static_cast<wire::FrameType>(header.type))
            continue;
        if (stats_.clock[dir] < rule.at_clock || rule.count == 0)
            continue;
        if (rule.skip > 0) {
            --rule.skip;
            continue;
        }
        --rule.count;
        matched = true;
        action = rule.action;
        if (action == Action::Delay) {
            ++stats_.delayed[dir];
            held_[dir].push_back(
                {std::move(frame),
                 stats_.clock[dir] + rule.hold_frames});
        }
        break;
    }

    if (!matched) {
        if (partitioned_[dir])
            ++stats_.dropped[dir];
        else
            deliverLocked(dir, frame.data(), frame.size());
    } else {
        switch (action) {
          case Action::Drop:
            ++stats_.dropped[dir];
            break;
          case Action::Delay:
            break; // held above
          case Action::Duplicate:
            ++stats_.duplicated[dir];
            deliverLocked(dir, frame.data(), frame.size());
            deliverLocked(dir, frame.data(), frame.size());
            break;
          case Action::Cut:
            cutLocked();
            return false;
        }
    }
    releaseHeldLocked(dir);
    return !dead_;
}

void
FaultLink::pump()
{
    bool live[2] = {true, true};
    while (live[0] || live[1]) {
        {
            std::lock_guard<std::mutex> guard(mutex_);
            if (stopping_ || dead_)
                return;
        }
        struct pollfd fds[2] = {
            {a_inner_, static_cast<short>(live[0] ? POLLIN : 0), 0},
            {b_inner_, static_cast<short>(live[1] ? POLLIN : 0), 0},
        };
        const int n = ::poll(fds, 2, 50);
        if (n <= 0)
            continue;
        for (int dir = 0; dir < 2; ++dir) {
            if (!live[dir] ||
                (fds[dir].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            if (!shuttle(dir)) {
                live[dir] = false;
                // Half of the link died: propagate as full link death,
                // the way a node loss looks to both peers.
                std::lock_guard<std::mutex> guard(mutex_);
                cutLocked();
                live[0] = live[1] = false;
            }
        }
    }
}

} // namespace varan::testing
