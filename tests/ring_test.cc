/**
 * @file
 * Tests for the event-streaming layer: the 64-byte event, the
 * Disruptor-style ring buffer (SPMC, backpressure, waitlocks, detach),
 * the Lamport clock gate and the legacy event-pump baseline.
 */

#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "ring/event.h"
#include "ring/event_pump.h"
#include "ring/lamport.h"
#include "ring/ring_buffer.h"
#include "shmem/region.h"

namespace varan::ring {
namespace {

using shmem::Offset;
using shmem::Region;

Event
makeEvent(std::uint64_t ts, std::uint16_t nr, std::int64_t result)
{
    Event e = {};
    e.timestamp = ts;
    e.type = EventType::Syscall;
    e.nr = nr;
    e.result = result;
    return e;
}

class RingTest : public ::testing::Test
{
  protected:
    void
    init(std::uint32_t capacity)
    {
        auto r = Region::create(4 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
        Offset off = region_.carve(RingBuffer::bytesRequired(capacity));
        ring_ = RingBuffer::initialize(&region_, off, capacity);
    }

    Region region_;
    RingBuffer ring_;
};

TEST(EventTest, IsExactlyOneCacheLine)
{
    EXPECT_EQ(sizeof(Event), 64u);
}

TEST(EventTest, FlagHelpers)
{
    Event e = {};
    EXPECT_FALSE(e.hasPayload());
    e.flags = kHasPayload | kFdTransfer;
    EXPECT_TRUE(e.hasPayload());
    EXPECT_TRUE(e.transfersFd());
    EXPECT_FALSE(e.argsSpilled());
}

TEST_F(RingTest, PublishThenPoll)
{
    init(8);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    ASSERT_TRUE(ring_.publish(makeEvent(1, 42, 7)));
    Event out = {};
    ASSERT_TRUE(ring_.poll(id, &out));
    EXPECT_EQ(out.timestamp, 1u);
    EXPECT_EQ(out.nr, 42u);
    EXPECT_EQ(out.result, 7);
    EXPECT_FALSE(ring_.poll(id, &out)); // drained
}

TEST_F(RingTest, LateAttachSkipsHistory)
{
    init(8);
    ASSERT_TRUE(ring_.publish(makeEvent(1, 1, 0)));
    ASSERT_TRUE(ring_.publish(makeEvent(2, 2, 0)));
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    Event out = {};
    EXPECT_FALSE(ring_.poll(id, &out));
    ASSERT_TRUE(ring_.publish(makeEvent(3, 3, 0)));
    ASSERT_TRUE(ring_.poll(id, &out));
    EXPECT_EQ(out.nr, 3u);
}

TEST_F(RingTest, WrapAroundPreservesOrder)
{
    init(4);
    int id = ring_.attachConsumer();
    Event out = {};
    for (std::uint64_t i = 1; i <= 100; ++i) {
        ASSERT_TRUE(ring_.publish(makeEvent(i, 0, 0)));
        ASSERT_TRUE(ring_.poll(id, &out));
        EXPECT_EQ(out.timestamp, i);
    }
}

TEST_F(RingTest, ProducerBlocksWhenFullAndTimesOut)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring_.publish(makeEvent(i + 1, 0, 0)));
    // Ring is full; the next publish must observe the deadline.
    WaitSpec w = WaitSpec::withTimeout(30000000); // 30 ms
    w.spin_iterations = 16;
    EXPECT_FALSE(ring_.publish(makeEvent(5, 0, 0), w));
    // Consuming one event frees a slot.
    Event out = {};
    ASSERT_TRUE(ring_.poll(id, &out));
    EXPECT_TRUE(ring_.publish(makeEvent(5, 0, 0), w));
}

TEST_F(RingTest, DetachUnblocksProducer)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring_.publish(makeEvent(i + 1, 0, 0)));

    std::thread detacher([&] {
        sleepNs(20000000); // 20 ms
        ring_.detachConsumer(id);
    });
    // With no active consumer the gate opens and this publish succeeds.
    WaitSpec w = WaitSpec::withTimeout(2000000000ULL); // 2 s guard
    EXPECT_TRUE(ring_.publish(makeEvent(5, 0, 0), w));
    detacher.join();
}

TEST_F(RingTest, DetachMidBatchUnblocksBatchProducer)
{
    init(4);
    int keeper = ring_.attachConsumer();
    int quitter = ring_.attachConsumer();
    ASSERT_GE(keeper, 0);
    ASSERT_GE(quitter, 0);

    // Fill the ring so a large batch publish must block on the gate.
    Event seed[4];
    for (int i = 0; i < 4; ++i)
        seed[i] = makeEvent(i + 1, 0, 0);
    ASSERT_EQ(ring_.publishBatch({seed, 4}), 4u);

    // The quitter drains part of its backlog, then detaches mid-batch —
    // the failover invariant (section 5.1): a departing consumer must
    // stop gating the producer the moment it detaches.
    std::thread failover([&] {
        sleepNs(20000000); // 20 ms: let the producer block first
        Event out[2];
        ASSERT_EQ(ring_.consumeBatch(quitter, out, 2), 2u);
        ring_.detachConsumer(quitter);
        // The keeper drains everything so the batch can finish.
        Event drain[8];
        WaitSpec w = WaitSpec::withTimeout(5000000000ULL);
        std::size_t got = 0;
        while (got < 12)
            got += ring_.consumeBatch(keeper, drain, 8, w);
    });

    WaitSpec w = WaitSpec::withTimeout(5000000000ULL); // 5 s guard
    std::vector<Event> batch;
    for (int i = 0; i < 8; ++i)
        batch.push_back(makeEvent(5 + i, 0, 0));
    EXPECT_EQ(ring_.publishBatch(batch, w), 8u);
    failover.join();
}

TEST_F(RingTest, CrashedConsumerProcessDoesNotGateBatchProducer)
{
    init(4);
    int keeper = ring_.attachConsumer();
    int crasher = ring_.attachConsumer();
    ASSERT_GE(keeper, 0);
    ASSERT_GE(crasher, 0);

    Event seed[4];
    for (int i = 0; i < 4; ++i)
        seed[i] = makeEvent(i + 1, 0, 0);
    ASSERT_EQ(ring_.publishBatch({seed, 4}), 4u);

    // The "crashing follower" consumes part of its batch and dies
    // without detaching, exactly like a variant crashing mid-replay.
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        Event out[2];
        if (ring_.consumeBatch(crasher, out, 2) != 2)
            _exit(1);
        _exit(0); // no detach: the mapping just vanishes
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_EQ(WEXITSTATUS(status), 0);

    // The live consumer fully drains; only the dead follower's stale
    // cursor (stuck at 2) still gates the ring, so a batch of 4 makes
    // partial progress and then times out.
    Event out[4];
    ASSERT_EQ(ring_.consumeBatch(keeper, out, 4), 4u);
    WaitSpec short_wait = WaitSpec::withTimeout(30000000); // 30 ms
    short_wait.spin_iterations = 16;
    Event more[4];
    for (int i = 0; i < 4; ++i)
        more[i] = makeEvent(5 + i, 0, 0);
    EXPECT_EQ(ring_.publishBatch({more, 4}, short_wait), 2u);

    // The coordinator reaps the crash and deactivates the slot
    // (transparent failover, section 5.1): the rest of the batch now
    // completes gated on the live consumer alone.
    ring_.detachConsumer(crasher);
    WaitSpec w = WaitSpec::withTimeout(5000000000ULL);
    EXPECT_EQ(ring_.publishBatch({more + 2, 2}, w), 2u);
    ASSERT_EQ(ring_.consumeBatch(keeper, out, 4), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[i].timestamp, static_cast<std::uint64_t>(5 + i));
}

TEST_F(RingTest, EachConsumerSeesEveryEvent)
{
    init(8);
    constexpr int kConsumers = 3;
    constexpr std::uint64_t kEvents = 5000;
    int ids[kConsumers];
    for (int i = 0; i < kConsumers; ++i) {
        ids[i] = ring_.attachConsumer();
        ASSERT_GE(ids[i], 0);
    }

    std::vector<std::thread> consumers;
    std::vector<std::uint64_t> sums(kConsumers, 0);
    for (int i = 0; i < kConsumers; ++i) {
        consumers.emplace_back([&, i] {
            Event out = {};
            WaitSpec w = WaitSpec::withTimeout(10000000000ULL);
            w.spin_iterations = 64;
            for (std::uint64_t n = 1; n <= kEvents; ++n) {
                ASSERT_TRUE(ring_.consume(ids[i], &out, w));
                ASSERT_EQ(out.timestamp, n); // strict FIFO per consumer
                sums[i] += out.result;
            }
        });
    }

    std::uint64_t expect_sum = 0;
    WaitSpec pw = WaitSpec::withTimeout(10000000000ULL);
    for (std::uint64_t n = 1; n <= kEvents; ++n) {
        ASSERT_TRUE(ring_.publish(makeEvent(n, 0, n % 97), pw));
        expect_sum += n % 97;
    }
    for (auto &t : consumers)
        t.join();
    for (int i = 0; i < kConsumers; ++i)
        EXPECT_EQ(sums[i], expect_sum);
}

TEST_F(RingTest, LagTracksDistance)
{
    init(16);
    int id = ring_.attachConsumer();
    EXPECT_EQ(ring_.lag(id), 0u);
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(ring_.publish(makeEvent(i + 1, 0, 0)));
    EXPECT_EQ(ring_.lag(id), 6u);
    Event out = {};
    ring_.poll(id, &out);
    ring_.poll(id, &out);
    EXPECT_EQ(ring_.lag(id), 4u);
}

TEST_F(RingTest, AttachConsumerAtFixedSlot)
{
    init(8);
    ASSERT_TRUE(ring_.attachConsumerAt(5));
    EXPECT_FALSE(ring_.attachConsumerAt(5)); // already taken
    EXPECT_TRUE(ring_.consumerActive(5));
    ring_.detachConsumer(5);
    EXPECT_FALSE(ring_.consumerActive(5));
    EXPECT_TRUE(ring_.attachConsumerAt(5)); // slot reusable
}

TEST_F(RingTest, AllSlotsExhaustReturnsMinusOne)
{
    init(8);
    for (std::uint32_t i = 0; i < kMaxConsumers; ++i)
        EXPECT_GE(ring_.attachConsumer(), 0);
    EXPECT_EQ(ring_.attachConsumer(), -1);
}

TEST_F(RingTest, FutexPathDeliversUnderSlowProduction)
{
    init(8);
    int id = ring_.attachConsumer();
    std::thread producer([&] {
        for (int i = 0; i < 5; ++i) {
            sleepNs(5000000); // 5 ms gaps force the consumer to sleep
            ring_.publish(makeEvent(i + 1, 0, 0));
        }
    });
    Event out = {};
    WaitSpec w = WaitSpec::withTimeout(5000000000ULL);
    w.spin_iterations = 8; // hit the futex path quickly
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ring_.consume(id, &out, w));
        EXPECT_EQ(out.timestamp, static_cast<std::uint64_t>(i + 1));
    }
    producer.join();
}

TEST_F(RingTest, ConsumeTimesOutOnSilence)
{
    init(8);
    int id = ring_.attachConsumer();
    Event out = {};
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 8;
    std::uint64_t t0 = monotonicNs();
    EXPECT_FALSE(ring_.consume(id, &out, w));
    EXPECT_GE(monotonicNs() - t0, 15000000ULL);
}

TEST_F(RingTest, CrossProcessStreamIsLossless)
{
    init(64);
    constexpr std::uint64_t kEvents = 20000;
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child is the follower: consume and verify ordering.
        Event out = {};
        WaitSpec w = WaitSpec::withTimeout(20000000000ULL);
        for (std::uint64_t n = 1; n <= kEvents; ++n) {
            if (!ring_.consume(id, &out, w))
                _exit(2);
            if (out.timestamp != n || out.result != int64_t(n * 3))
                _exit(3);
        }
        _exit(0);
    }
    WaitSpec pw = WaitSpec::withTimeout(20000000000ULL);
    for (std::uint64_t n = 1; n <= kEvents; ++n)
        ASSERT_TRUE(ring_.publish(makeEvent(n, 7, int64_t(n * 3)), pw));
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

// --- parameterized sweep: capacity x consumer count (property-style) ---

class RingSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(RingSweepTest, StreamIntegrityUnderLoad)
{
    const std::uint32_t capacity = std::get<0>(GetParam());
    const int consumers = std::get<1>(GetParam());
    constexpr std::uint64_t kEvents = 3000;

    auto r = Region::create(4 << 20);
    ASSERT_TRUE(r.ok());
    Region region = std::move(r.value());
    Offset off = region.carve(RingBuffer::bytesRequired(capacity));
    RingBuffer ring = RingBuffer::initialize(&region, off, capacity);

    std::vector<int> ids(consumers);
    for (int i = 0; i < consumers; ++i) {
        ids[i] = ring.attachConsumer();
        ASSERT_GE(ids[i], 0);
    }
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int i = 0; i < consumers; ++i) {
        threads.emplace_back([&, i] {
            Event out = {};
            WaitSpec w = WaitSpec::withTimeout(20000000000ULL);
            w.spin_iterations = 128;
            for (std::uint64_t n = 1; n <= kEvents; ++n) {
                if (!ring.consume(ids[i], &out, w) || out.timestamp != n) {
                    failures.fetch_add(1);
                    return;
                }
            }
        });
    }
    WaitSpec pw = WaitSpec::withTimeout(20000000000ULL);
    for (std::uint64_t n = 1; n <= kEvents; ++n)
        ASSERT_TRUE(ring.publish(makeEvent(n, 0, 0), pw));
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    CapacityByConsumers, RingSweepTest,
    ::testing::Combine(::testing::Values(1u, 4u, 16u, 256u),
                       ::testing::Values(1, 2, 4)));

// --- Lamport clock ---

class LamportTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto r = Region::create(1 << 16);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
        Offset off = region_.carve(LamportClock::bytesRequired());
        clock_ = LamportClock::initialize(&region_, off);
    }

    Region region_;
    LamportClock clock_;
};

TEST_F(LamportTest, TickIsMonotonicConsecutive)
{
    EXPECT_EQ(clock_.current(), 0u);
    EXPECT_EQ(clock_.tick(), 1u);
    EXPECT_EQ(clock_.tick(), 2u);
    EXPECT_EQ(clock_.current(), 2u);
}

TEST_F(LamportTest, TicksAreUniqueAcrossThreads)
{
    constexpr int kThreads = 4;
    constexpr int kTicks = 5000;
    std::vector<std::vector<std::uint64_t>> stamps(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            stamps[t].reserve(kTicks);
            for (int i = 0; i < kTicks; ++i)
                stamps[t].push_back(clock_.tick());
        });
    }
    for (auto &th : threads)
        th.join();
    std::vector<std::uint64_t> all;
    for (auto &v : stamps)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < all.size(); ++i)
        ASSERT_EQ(all[i], i + 1); // dense and unique
}

TEST_F(LamportTest, AwaitTurnEnforcesOrder)
{
    std::vector<int> order;
    std::mutex m;
    // Three "follower threads" receive shuffled timestamps but must
    // process them in timestamp order.
    std::vector<std::thread> threads;
    for (std::uint64_t ts : {3u, 1u, 2u}) {
        threads.emplace_back([&, ts] {
            WaitSpec w = WaitSpec::withTimeout(5000000000ULL);
            w.spin_iterations = 32;
            ASSERT_TRUE(clock_.awaitTurn(ts, w));
            {
                std::lock_guard<std::mutex> g(m);
                order.push_back(static_cast<int>(ts));
            }
            clock_.advanceTo(ts);
        });
    }
    for (auto &th : threads)
        th.join();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
}

TEST_F(LamportTest, AwaitTurnTimesOutWhenBlocked)
{
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 8;
    EXPECT_FALSE(clock_.awaitTurn(5, w)); // turns 1-4 never happen
}

// --- SPSC queue + event pump (legacy design, ablation baseline) ---

class PumpTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto r = Region::create(8 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
    }

    SpscQueue
    makeQueue(std::uint32_t capacity)
    {
        Offset off = region_.carve(SpscQueue::bytesRequired(capacity));
        return SpscQueue::initialize(&region_, off, capacity);
    }

    Region region_;
};

TEST_F(PumpTest, SpscFifoRoundTrip)
{
    SpscQueue q = makeQueue(8);
    ASSERT_TRUE(q.tryPush(makeEvent(1, 11, 0)));
    ASSERT_TRUE(q.tryPush(makeEvent(2, 22, 0)));
    Event out = {};
    ASSERT_TRUE(q.tryPop(&out));
    EXPECT_EQ(out.nr, 11u);
    ASSERT_TRUE(q.tryPop(&out));
    EXPECT_EQ(out.nr, 22u);
    EXPECT_FALSE(q.tryPop(&out));
}

TEST_F(PumpTest, SpscFullRejectsPush)
{
    SpscQueue q = makeQueue(2);
    EXPECT_TRUE(q.tryPush(makeEvent(1, 0, 0)));
    EXPECT_TRUE(q.tryPush(makeEvent(2, 0, 0)));
    EXPECT_FALSE(q.tryPush(makeEvent(3, 0, 0)));
    EXPECT_EQ(q.size(), 2u);
}

TEST_F(PumpTest, PumpReplicatesToAllFollowers)
{
    SpscQueue leader = makeQueue(64);
    std::vector<SpscQueue> followers = {makeQueue(64), makeQueue(64),
                                        makeQueue(64)};
    EventPump pump(leader, followers);

    for (std::uint64_t n = 1; n <= 32; ++n)
        ASSERT_TRUE(leader.tryPush(makeEvent(n, 0, 0)));
    EXPECT_EQ(pump.pumpSome(1000), 32u);

    for (auto &f : followers) {
        Event out = {};
        for (std::uint64_t n = 1; n <= 32; ++n) {
            ASSERT_TRUE(f.tryPop(&out));
            EXPECT_EQ(out.timestamp, n);
        }
        EXPECT_FALSE(f.tryPop(&out));
    }
}

TEST_F(PumpTest, RunStopsOnRequestAndDrains)
{
    SpscQueue leader = makeQueue(1024);
    std::vector<SpscQueue> followers = {makeQueue(1024)};
    EventPump pump(leader, followers);

    std::thread runner([&] { pump.run(); });
    for (std::uint64_t n = 1; n <= 500; ++n)
        ASSERT_TRUE(leader.push(makeEvent(n, 0, 0),
                                WaitSpec::withTimeout(5000000000ULL)));
    sleepNs(50000000); // let it pump
    pump.stop();
    runner.join();

    Event out = {};
    std::uint64_t got = 0;
    while (followers[0].tryPop(&out))
        ++got;
    EXPECT_EQ(got, 500u);
}

} // namespace
} // namespace varan::ring
