/**
 * @file
 * Tests for the BPF machine: assembler (Listing-1 dialect), static
 * verifier, interpreter semantics, the event extension, and the
 * divergence rule set of section 5.2.
 */

#include <gtest/gtest.h>

#include "bpf/asm.h"
#include "bpf/interp.h"
#include "bpf/rules.h"
#include "bpf/verifier.h"
#include "ring/event.h"

namespace varan::bpf {
namespace {

// x86-64 syscall numbers used by the paper's multi-revision experiment.
constexpr std::uint32_t kNrOpen = 2;
constexpr std::uint32_t kNrGetuid = 102;
constexpr std::uint32_t kNrGetgid = 104;
constexpr std::uint32_t kNrGetegid = 108;

/** Listing 1 from the paper, verbatim (modulo whitespace). */
constexpr const char *kListing1 = R"(
    ld event[0]
    jeq #108, getegid /* __NR_getegid */
    jeq #2, open /* __NR_open */
    jmp bad
    getegid:
    ld [0] /* offsetof(struct seccomp_data, nr) */
    jeq #102, good /* __NR_getuid */
    open:
    ld [0] /* offsetof(struct seccomp_data, nr) */
    jeq #104, good /* __NR_getgid */
    bad: ret #0 /* SECCOMP_RET_KILL */
    good: ret #0x7fff0000 /* SECCOMP_RET_ALLOW */
)";

FilterContext
makeContext(std::uint32_t follower_nr, std::uint32_t leader_nr,
            const ring::Event **storage)
{
    static thread_local ring::Event event;
    event = {};
    event.type = ring::EventType::Syscall;
    event.nr = static_cast<std::uint16_t>(leader_nr);
    FilterContext ctx;
    ctx.data.nr = static_cast<std::int32_t>(follower_nr);
    ctx.event = &event;
    if (storage)
        *storage = &event;
    return ctx;
}

// --- assembler ---

TEST(AsmTest, AssemblesListing1)
{
    AssembleResult r = assemble(kListing1);
    ASSERT_TRUE(r.ok) << r.error << " at line " << r.error_line;
    EXPECT_EQ(r.program.size(), 10u);
    EXPECT_TRUE(verify(r.program).ok());
}

TEST(AsmTest, ListingOneSemantics)
{
    AssembleResult r = assemble(kListing1);
    ASSERT_TRUE(r.ok);

    // Leader executed getegid, follower wants the new getuid: ALLOW.
    FilterContext ctx = makeContext(kNrGetuid, kNrGetegid, nullptr);
    EXPECT_EQ(run(r.program, ctx), kRetAllow);

    // Leader executed open, follower wants getgid: ALLOW.
    ctx = makeContext(kNrGetgid, kNrOpen, nullptr);
    EXPECT_EQ(run(r.program, ctx), kRetAllow);

    // The published filter's getegid block falls through into the open
    // block, so (leader=getegid, follower=getgid) is also allowed.
    ctx = makeContext(kNrGetgid, kNrGetegid, nullptr);
    EXPECT_EQ(run(r.program, ctx), kRetAllow);

    // Combinations no block matches kill the follower.
    ctx = makeContext(kNrGetuid, kNrOpen, nullptr);
    EXPECT_EQ(run(r.program, ctx), kRetKill);
    ctx = makeContext(kNrGetuid, 999, nullptr);
    EXPECT_EQ(run(r.program, ctx), kRetKill);
}

TEST(AsmTest, HexAndDecimalImmediates)
{
    AssembleResult r = assemble("ld #0x10\nadd #16\nret a\n");
    ASSERT_TRUE(r.ok) << r.error;
    FilterContext ctx;
    EXPECT_EQ(run(r.program, ctx), 0x20u);
}

TEST(AsmTest, CommentStylesAreStripped)
{
    AssembleResult r = assemble(
        "ld #1 /* block */\n"
        "add #1 ; semicolon\n"
        "add #1 // slashes\n"
        "/* multi\n   line */\n"
        "ret a\n");
    ASSERT_TRUE(r.ok) << r.error;
    FilterContext ctx;
    EXPECT_EQ(run(r.program, ctx), 3u);
}

TEST(AsmTest, ThreeOperandConditional)
{
    AssembleResult r = assemble(
        "ld [0]\n"
        "jeq #5, yes, no\n"
        "yes: ret #1\n"
        "no: ret #2\n");
    ASSERT_TRUE(r.ok) << r.error;
    FilterContext ctx;
    ctx.data.nr = 5;
    EXPECT_EQ(run(r.program, ctx), 1u);
    ctx.data.nr = 6;
    EXPECT_EQ(run(r.program, ctx), 2u);
}

TEST(AsmTest, ScratchMemoryRoundTrip)
{
    AssembleResult r = assemble(
        "ld #41\n"
        "st M[3]\n"
        "ld #0\n"
        "ld M[3]\n"
        "add #1\n"
        "ret a\n");
    ASSERT_TRUE(r.ok) << r.error;
    FilterContext ctx;
    EXPECT_EQ(run(r.program, ctx), 42u);
}

TEST(AsmTest, RejectsUnknownMnemonic)
{
    AssembleResult r = assemble("frobnicate #1\nret #0\n");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_line, 1);
}

TEST(AsmTest, RejectsBackwardJump)
{
    AssembleResult r = assemble(
        "top: ld #1\n"
        "jmp top\n"
        "ret #0\n");
    EXPECT_FALSE(r.ok);
}

TEST(AsmTest, RejectsUndefinedLabel)
{
    AssembleResult r = assemble("jmp nowhere\nret #0\n");
    EXPECT_FALSE(r.ok);
}

TEST(AsmTest, RejectsDuplicateLabel)
{
    AssembleResult r = assemble("a: ld #1\na: ret #0\n");
    EXPECT_FALSE(r.ok);
}

TEST(AsmTest, DisassembleRoundTripMentionsEventExtension)
{
    AssembleResult r = assemble("ld event[0]\nret #0\n");
    ASSERT_TRUE(r.ok);
    EXPECT_NE(disassemble(r.program).find("event[0]"), std::string::npos);
}


TEST(AsmTest, NegatedConditionalSynonyms)
{
    // jne/jlt/jle assemble as the positive comparison with swapped
    // branches.
    AssembleResult r = assemble(
        "ld [0]\n"
        "jne #5, notfive, five\n"
        "notfive: ret #1\n"
        "five: ret #2\n");
    ASSERT_TRUE(r.ok) << r.error;
    FilterContext ctx;
    ctx.data.nr = 7;
    EXPECT_EQ(run(r.program, ctx), 1u);
    ctx.data.nr = 5;
    EXPECT_EQ(run(r.program, ctx), 2u);

    AssembleResult lt = assemble(
        "ld [0]\n"
        "jlt #10, small, big\n"
        "small: ret #1\n"
        "big: ret #2\n");
    ASSERT_TRUE(lt.ok) << lt.error;
    ctx.data.nr = 3;
    EXPECT_EQ(run(lt.program, ctx), 1u);
    ctx.data.nr = 10;
    EXPECT_EQ(run(lt.program, ctx), 2u);

    AssembleResult le = assemble(
        "ld [0]\n"
        "jle #10, small, big\n"
        "small: ret #1\n"
        "big: ret #2\n");
    ASSERT_TRUE(le.ok) << le.error;
    ctx.data.nr = 10;
    EXPECT_EQ(run(le.program, ctx), 1u);
    ctx.data.nr = 11;
    EXPECT_EQ(run(le.program, ctx), 2u);
}

// --- verifier ---

TEST(VerifierTest, AcceptsMinimalProgram)
{
    Program p = {stmt(BPF_RET | BPF_K, 0)};
    EXPECT_TRUE(verify(p).ok());
}

TEST(VerifierTest, RejectsEmptyProgram)
{
    EXPECT_FALSE(verify({}).ok());
}

TEST(VerifierTest, RejectsMissingTerminalRet)
{
    Program p = {stmt(BPF_LD | BPF_W | BPF_IMM, 1)};
    EXPECT_FALSE(verify(p).ok());
}

TEST(VerifierTest, RejectsJumpPastEnd)
{
    Program p = {jump(BPF_JMP | BPF_JEQ | BPF_K, 0, 1, 1),
                 stmt(BPF_RET | BPF_K, 0)};
    // displacement 1 from insn 0 targets insn 2 == len: out of bounds.
    EXPECT_FALSE(verify(p).ok());
}

TEST(VerifierTest, AcceptsJumpToLastInsn)
{
    Program p = {jump(BPF_JMP | BPF_JEQ | BPF_K, 0, 1, 1),
                 stmt(BPF_LD | BPF_W | BPF_IMM, 1),
                 stmt(BPF_RET | BPF_K, 0)};
    EXPECT_TRUE(verify(p).ok());
}

TEST(VerifierTest, RejectsConstantDivisionByZero)
{
    Program p = {stmt(BPF_ALU | BPF_DIV | BPF_K, 0),
                 stmt(BPF_RET | BPF_K, 0)};
    EXPECT_FALSE(verify(p).ok());
}

TEST(VerifierTest, RejectsScratchOutOfRange)
{
    Program p = {stmt(BPF_ST, 16), stmt(BPF_RET | BPF_K, 0)};
    EXPECT_FALSE(verify(p).ok());
}

TEST(VerifierTest, RejectsOversizedShift)
{
    Program p = {stmt(BPF_ALU | BPF_LSH | BPF_K, 32),
                 stmt(BPF_RET | BPF_K, 0)};
    EXPECT_FALSE(verify(p).ok());
}

TEST(VerifierTest, RejectsUnknownOpcode)
{
    Program p = {Insn{0xffff, 0, 0, 0}, stmt(BPF_RET | BPF_K, 0)};
    EXPECT_FALSE(verify(p).ok());
}

TEST(VerifierTest, RejectsOverlongProgram)
{
    Program p(kMaxProgramLen + 1, stmt(BPF_LD | BPF_W | BPF_IMM, 0));
    p.back() = stmt(BPF_RET | BPF_K, 0);
    EXPECT_FALSE(verify(p).ok());
}

// Property: anything the verifier accepts must terminate and not crash.
class VerifierFuzzTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(VerifierFuzzTest, AcceptedProgramsTerminate)
{
    // Tiny deterministic xorshift PRNG per seed.
    std::uint64_t state = GetParam() * 2654435761u + 1;
    auto next = [&] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    int accepted = 0;
    for (int trial = 0; trial < 400; ++trial) {
        Program p;
        std::size_t len = 1 + next() % 24;
        for (std::size_t i = 0; i < len; ++i) {
            Insn insn;
            insn.code = static_cast<std::uint16_t>(next() % 0x200);
            insn.jt = static_cast<std::uint8_t>(next() % 8);
            insn.jf = static_cast<std::uint8_t>(next() % 8);
            insn.k = static_cast<std::uint32_t>(next());
            p.push_back(insn);
        }
        p.push_back(stmt(BPF_RET | BPF_K, 0));
        if (!verify(p).ok())
            continue;
        ++accepted;
        FilterContext ctx;
        ctx.data.nr = static_cast<std::int32_t>(next());
        run(p, ctx); // must return, not hang or fault
    }
    // Sanity: the generator finds at least a few valid programs.
    EXPECT_GE(accepted, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- interpreter details ---

TEST(InterpTest, SeccompDataLayoutMatchesKernel)
{
    FilterContext ctx;
    ctx.data.nr = 0x1111;
    ctx.data.arch = 0x2222;
    ctx.data.instruction_pointer = 0x3333333344444444ULL;
    ctx.data.args[0] = 0x5555555566666666ULL;

    Program nr = {stmt(BPF_LD | BPF_W | BPF_ABS, 0),
                  stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(run(nr, ctx), 0x1111u);
    Program arch = {stmt(BPF_LD | BPF_W | BPF_ABS, 4),
                    stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(run(arch, ctx), 0x2222u);
    Program ip_lo = {stmt(BPF_LD | BPF_W | BPF_ABS, 8),
                     stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(run(ip_lo, ctx), 0x44444444u);
    Program arg0_hi = {stmt(BPF_LD | BPF_W | BPF_ABS, 20),
                       stmt(BPF_RET | BPF_A, 0)};
    EXPECT_EQ(run(arg0_hi, ctx), 0x55555555u);
}

TEST(InterpTest, EventExtensionExposesArgsAndResult)
{
    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.nr = 1; // write
    event.args[0] = 7;
    event.args[1] = 0xaabbccdd11223344ULL;
    event.result = 0x0000000512345678LL;
    FilterContext ctx;
    ctx.event = &event;

    auto load = [&](std::uint32_t word) {
        Program p = {stmt(BPF_LD | BPF_W | BPF_ABS,
                          kEventExtBase + 4 * word),
                     stmt(BPF_RET | BPF_A, 0)};
        return run(p, ctx);
    };
    EXPECT_EQ(load(kEventNr), 1u);
    EXPECT_EQ(load(kEventTypeWord),
              static_cast<std::uint32_t>(ring::EventType::Syscall));
    EXPECT_EQ(load(kEventArgLo0), 7u);
    EXPECT_EQ(load(kEventArgLo0 + 2), 0x11223344u);
    EXPECT_EQ(load(kEventArgLo0 + 3), 0xaabbccddu);
    EXPECT_EQ(load(kEventResultLo), 0x12345678u);
    EXPECT_EQ(load(kEventResultHi), 5u);
}

TEST(InterpTest, MissingEventLoadsKill)
{
    FilterContext ctx; // no event attached
    Program p = {stmt(BPF_LD | BPF_W | BPF_ABS, kEventExtBase),
                 stmt(BPF_RET | BPF_K, kRetAllow)};
    EXPECT_EQ(run(p, ctx), kRetKill);
}

TEST(InterpTest, MisalignedDataLoadKills)
{
    FilterContext ctx;
    Program p = {stmt(BPF_LD | BPF_W | BPF_ABS, 2),
                 stmt(BPF_RET | BPF_K, kRetAllow)};
    EXPECT_EQ(run(p, ctx), kRetKill);
}

TEST(InterpTest, AluAndRegisterTransfer)
{
    // ((10 | 5) ^ 3) via A/X shuffling.
    Program p = {
        stmt(BPF_LD | BPF_W | BPF_IMM, 10),
        stmt(BPF_ALU | BPF_OR | BPF_K, 5),
        stmt(BPF_MISC | BPF_TAX, 0),
        stmt(BPF_LD | BPF_W | BPF_IMM, 3),
        stmt(BPF_ALU | BPF_XOR | BPF_X, 0),
        stmt(BPF_RET | BPF_A, 0),
    };
    FilterContext ctx;
    EXPECT_EQ(run(p, ctx), (10u | 5u) ^ 3u);
}

// --- rule set ---

TEST(RulesTest, DecodeActions)
{
    EXPECT_EQ(decodeAction(kRetAllow).action, RuleAction::Allow);
    EXPECT_EQ(decodeAction(kRetKill).action, RuleAction::Kill);
    EXPECT_EQ(decodeAction(kRetSkip).action, RuleAction::Skip);
    RuleDecision e = decodeAction(kRetErrno | ENOSYS);
    EXPECT_EQ(e.action, RuleAction::Errno);
    EXPECT_EQ(e.err, ENOSYS);
}

TEST(RulesTest, EmptyRuleSetKills)
{
    RuleSet rules;
    FilterContext ctx = makeContext(kNrGetuid, kNrGetegid, nullptr);
    EXPECT_EQ(rules.evaluate(ctx).action, RuleAction::Kill);
}

TEST(RulesTest, Listing1ViaRuleSet)
{
    RuleSet rules;
    ASSERT_TRUE(rules.addRule(kListing1).isOk()) << rules.lastError();
    FilterContext ctx = makeContext(kNrGetuid, kNrGetegid, nullptr);
    EXPECT_EQ(rules.evaluate(ctx).action, RuleAction::Allow);
    ctx = makeContext(kNrGetuid, kNrOpen, nullptr);
    EXPECT_EQ(rules.evaluate(ctx).action, RuleAction::Kill);
}

TEST(RulesTest, FirstNonKillVerdictWins)
{
    RuleSet rules;
    // Rule 1 only allows nr==1; rule 2 skips everything.
    ASSERT_TRUE(rules.addRule("ld [0]\n"
                              "jeq #1, ok\n"
                              "ret #0\n"
                              "ok: ret #0x7fff0000\n")
                    .isOk());
    ASSERT_TRUE(rules.addRule("ret #0x7ffd0000\n").isOk());
    FilterContext ctx;
    ctx.data.nr = 1;
    EXPECT_EQ(rules.evaluate(ctx).action, RuleAction::Allow);
    ctx.data.nr = 2;
    EXPECT_EQ(rules.evaluate(ctx).action, RuleAction::Skip);
}

TEST(RulesTest, RejectsMalformedRuleWithDiagnostics)
{
    RuleSet rules;
    Status st = rules.addRule("jmp nowhere\nret #0\n");
    EXPECT_FALSE(st.isOk());
    EXPECT_FALSE(rules.lastError().empty());
    EXPECT_EQ(rules.size(), 0u);
}

TEST(RulesTest, RejectsUnverifiableProgram)
{
    RuleSet rules;
    Program bad = {stmt(BPF_LD | BPF_W | BPF_IMM, 1)}; // no RET
    EXPECT_FALSE(rules.addProgram(bad).isOk());
}

} // namespace
} // namespace varan::bpf
