/**
 * @file
 * Partition-matrix tests for the quorum control plane (wire v6),
 * driven end to end through the FaultLink harness so every partition,
 * duel and reorder is a scripted, reproducible message schedule — no
 * test below depends on SIGKILL or reconnect timing.
 *
 * The split-phase suites (symmetric partition, asymmetric partition,
 * dueling candidates) pump three LeaseManagers by hand and re-run the
 * full scenario kRepeats times, asserting the identical outcome every
 * time. The end-to-end suite stands up the acceptance topology — a
 * forked leader node shipping to two receiver nodes that BOTH arm
 * promotion, plus a witness — cuts the leader at a frame boundary,
 * fences the minority receiver, and heals it back in without loss or
 * duplication.
 */

#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/nvx.h"
#include "harness/faultlink.h"
#include "netio/socketio.h"
#include "quorum/lease.h"
#include "syscalls/sys.h"
#include "trace/inspect.h"
#include "wire/receiver.h"

namespace varan::quorum {
namespace {

using testing::FaultLink;
using Dir = FaultLink::Dir;
using State = LeaseManager::ElectionState;

/** Every split-phase scenario must reproduce bit-identically. */
constexpr int kRepeats = 10;

Config
nodeConfig(std::uint32_t node_id)
{
    Config config;
    config.node_id = node_id;
    config.members = {{0, ""}, {1, ""}, {2, ""}};
    config.lease_ttl_ns = 2'000'000'000;
    config.heartbeat_ns = 20'000'000;
    config.vote_timeout_ns = 150'000'000;
    return config;
}

/** Three nodes, one FaultLink per pair, links injected — the whole
 *  message fabric is scriptable. */
struct Trio {
    LeaseManager n0{nodeConfig(0)};
    LeaseManager n1{nodeConfig(1)};
    LeaseManager n2{nodeConfig(2)};
    FaultLink l01; ///< A = node 0, B = node 1
    FaultLink l02; ///< A = node 0, B = node 2
    FaultLink l12; ///< A = node 1, B = node 2

    Trio()
    {
        n0.adoptPeerLink(1, l01.releaseA());
        n1.adoptPeerLink(0, l01.releaseB());
        n0.adoptPeerLink(2, l02.releaseA());
        n2.adoptPeerLink(0, l02.releaseB());
        n1.adoptPeerLink(2, l12.releaseA());
        n2.adoptPeerLink(1, l12.releaseB());
    }

    LeaseManager &node(int i) { return i == 0 ? n0 : i == 1 ? n1 : n2; }
};

/** Wait until @p link has *delivered* @p n frames in @p dir. */
void
waitForwarded(FaultLink &link, Dir dir, std::uint64_t n)
{
    const std::uint64_t deadline = monotonicNs() + 5'000'000'000ULL;
    while (link.stats().forwarded[static_cast<int>(dir)] < n) {
        ASSERT_LT(monotonicNs(), deadline) << "frame never arrived";
        sleepNs(200'000);
    }
}

TEST(QuorumPartitionTest, SymmetricPartitionMinorityFencesMajorityElects)
{
    for (int rep = 0; rep < kRepeats; ++rep) {
        SCOPED_TRACE(rep);
        Trio t;
        // Node 0 alone on the minority side of a symmetric partition.
        t.l01.partition();
        t.l02.partition();

        // Its promotion attempt cannot reach anybody: no replies, no
        // quorum — the round is lost and the node fences itself.
        EXPECT_EQ(t.n0.acquire(1), 0u);
        EXPECT_TRUE(t.n0.fenced());
        EXPECT_FALSE(t.n0.holdsLease());

        // The majority side elects: node 1 wins with node 2's grant.
        const std::uint64_t term = t.n1.startElection(1);
        EXPECT_EQ(term, 1u);
        waitForwarded(t.l12, Dir::AtoB, 1);
        t.n2.pumpOnce(0); // grant
        waitForwarded(t.l12, Dir::BtoA, 1);
        t.n1.pumpOnce(0); // quorum reached
        EXPECT_EQ(t.n1.electionState(), State::Won);
        EXPECT_TRUE(t.n1.holdsLease());
        EXPECT_FALSE(t.n1.fenced());
        waitForwarded(t.l12, Dir::AtoB, 2); // the Lease announce
        t.n2.pumpOnce(0);
        EXPECT_EQ(t.n2.holder(), 1u);
        EXPECT_EQ(t.n2.stats().votes_granted, 1u);

        // Exactly one granted lease for the term, fleet-wide.
        EXPECT_EQ(t.n1.stats().leases_won, 1u);
        EXPECT_EQ(t.n0.stats().leases_won, 0u);
        EXPECT_EQ(t.n2.stats().leases_won, 0u);

        // The fenced state is what StatusReport surfaces.
        core::QuorumStatus status = {};
        t.n0.fillStatus(&status);
        EXPECT_EQ(status.active, 1u);
        EXPECT_EQ(status.fenced, 1u);
        EXPECT_EQ(status.members, 3u);

        // Heal: hearing the holder's own heartbeat is the rejoin
        // signal — node 0 unfences and adopts the majority's lease.
        t.l01.heal();
        t.l02.heal();
        t.n1.heartbeat();
        waitForwarded(t.l01, Dir::BtoA, 1);
        t.n0.pumpOnce(1000);
        EXPECT_FALSE(t.n0.fenced());
        EXPECT_EQ(t.n0.holder(), 1u);
        EXPECT_EQ(t.n0.term(), term);
    }
}

TEST(QuorumPartitionTest, AsymmetricPartitionCandidateSendsButCannotReceive)
{
    for (int rep = 0; rep < kRepeats; ++rep) {
        SCOPED_TRACE(rep);
        Trio t;
        // Node 0's outbound frames arrive; everything toward node 0 is
        // dropped — the nastier half-open failure.
        t.l01.partition(Dir::BtoA);
        t.l02.partition(Dir::BtoA);

        // Round 1, split-phase: the requests land and both peers spend
        // their term-1 vote on node 0 — but the grants die on the way
        // back, so no quorum ever assembles anywhere for term 1.
        EXPECT_EQ(t.n0.startElection(1), 1u);
        waitForwarded(t.l01, Dir::AtoB, 1);
        waitForwarded(t.l02, Dir::AtoB, 1);
        t.n1.pumpOnce(0);
        t.n2.pumpOnce(0);
        EXPECT_EQ(t.n1.stats().votes_granted, 1u);
        EXPECT_EQ(t.n2.stats().votes_granted, 1u);
        t.n0.pumpOnce(20); // nothing can arrive
        EXPECT_EQ(t.n0.electionState(), State::Pending);
        EXPECT_EQ(t.l01.stats().forwarded[static_cast<int>(Dir::BtoA)],
                  0u);

        // Round 2 through the blocking wrapper: same half-open link,
        // so the round times out reply-less and node 0 fences.
        EXPECT_EQ(t.n0.acquire(1), 0u);
        EXPECT_TRUE(t.n0.fenced());

        // Drain node 0's round-2 requests at the peers (grants again
        // go into the void) so the majority's next term is past them.
        waitForwarded(t.l01, Dir::AtoB, 2);
        waitForwarded(t.l02, Dir::AtoB, 2);
        t.n1.pumpOnce(0);
        t.n2.pumpOnce(0);

        // The majority still elects cleanly above every spent term.
        const std::uint64_t term = t.n1.startElection(1);
        EXPECT_EQ(term, 3u);
        waitForwarded(t.l12, Dir::AtoB, 1);
        t.n2.pumpOnce(0);
        waitForwarded(t.l12, Dir::BtoA, 1);
        t.n1.pumpOnce(0);
        EXPECT_EQ(t.n1.electionState(), State::Won);
        EXPECT_TRUE(t.n1.holdsLease());
        EXPECT_EQ(t.n1.stats().leases_won, 1u);
        EXPECT_EQ(t.n0.stats().leases_won, 0u);

        // Heal the half-open side: the holder's heartbeat unfences.
        t.l01.heal();
        t.l02.heal();
        t.n1.heartbeat();
        waitForwarded(t.l01, Dir::BtoA, 1);
        t.n0.pumpOnce(1000);
        EXPECT_FALSE(t.n0.fenced());
        EXPECT_EQ(t.n0.holder(), 1u);
        EXPECT_EQ(t.n0.term(), term);
    }
}

TEST(QuorumPartitionTest, DuelingCandidatesExactlyOneLeasePerTerm)
{
    for (int rep = 0; rep < kRepeats; ++rep) {
        SCOPED_TRACE(rep);
        Trio t;
        // Both candidates start the same term; node 2 is the swing
        // vote and hears node 0 first (links drain in id order).
        EXPECT_EQ(t.n0.startElection(7), 1u);
        EXPECT_EQ(t.n1.startElection(7), 1u);
        waitForwarded(t.l01, Dir::AtoB, 1); // n0's request at n1
        waitForwarded(t.l01, Dir::BtoA, 1); // n1's request at n0
        waitForwarded(t.l02, Dir::AtoB, 1); // n0's request at n2
        waitForwarded(t.l12, Dir::AtoB, 1); // n1's request at n2

        t.n2.pumpOnce(0); // one grant (n0), one deny (n1)
        EXPECT_EQ(t.n2.stats().votes_granted, 1u);

        waitForwarded(t.l02, Dir::BtoA, 1); // swing grant reaches n0
        t.n0.pumpOnce(0); // denies n1's duel, collects the win
        EXPECT_EQ(t.n0.electionState(), State::Won);
        EXPECT_TRUE(t.n0.holdsLease());

        // n1 hears: its own duel denied by n0 and n2, plus the
        // winner's Lease announce — Lost, but connected, so unfenced.
        waitForwarded(t.l01, Dir::AtoB, 3); // request + deny + announce
        waitForwarded(t.l12, Dir::BtoA, 1); // n2's deny
        t.n1.pumpOnce(0);
        EXPECT_EQ(t.n1.electionState(), State::Lost);
        EXPECT_FALSE(t.n1.fenced());
        EXPECT_EQ(t.n1.holder(), 0u);

        // The invariant under test: one term, one lease, fleet-wide.
        EXPECT_EQ(t.n0.stats().leases_won, 1u);
        EXPECT_EQ(t.n1.stats().leases_won, 0u);
        EXPECT_EQ(t.n2.stats().leases_won, 0u);
        EXPECT_EQ(t.n0.term(), 1u);
        EXPECT_EQ(t.n1.term(), 1u);
    }
}

TEST(QuorumPartitionTest, DuelingCandidatesScriptedReorderFlipsWinner)
{
    for (int rep = 0; rep < kRepeats; ++rep) {
        SCOPED_TRACE(rep);
        Trio t;
        // Same duel, but node 0's request to the swing voter is held
        // back one frame — the interleaving every timing-based test
        // only hits by luck, pinned down as a script.
        FaultLink::Rule hold;
        hold.dir = Dir::AtoB;
        hold.type = wire::FrameType::Vote;
        hold.count = 1;
        hold.action = FaultLink::Action::Delay;
        hold.hold_frames = 1;
        t.l02.script(hold);

        EXPECT_EQ(t.n0.startElection(7), 1u);
        EXPECT_EQ(t.n1.startElection(7), 1u);
        waitForwarded(t.l12, Dir::AtoB, 1); // n1's request at n2
        ASSERT_TRUE(t.l02.waitClock(Dir::AtoB, 1, 5'000'000'000ULL));

        t.n2.pumpOnce(0); // only n1's request is visible: grant n1
        EXPECT_EQ(t.n2.stats().votes_granted, 1u);
        waitForwarded(t.l12, Dir::BtoA, 1);
        waitForwarded(t.l01, Dir::BtoA, 1); // n1's request at n0
        t.n1.pumpOnce(0); // denies n0's duel, collects the win
        EXPECT_EQ(t.n1.electionState(), State::Won);
        EXPECT_TRUE(t.n1.holdsLease());

        // A later frame in the same direction releases the held
        // request — it arrives after the term is already decided.
        t.n0.heartbeat();
        waitForwarded(t.l02, Dir::AtoB, 2); // heartbeat + held request
        t.n2.pumpOnce(0);                   // stale duel: deny
        waitForwarded(t.l02, Dir::BtoA, 1);
        waitForwarded(t.l01, Dir::BtoA, 3); // request + deny + announce
        t.n0.pumpOnce(0);
        EXPECT_EQ(t.n0.electionState(), State::Lost);
        EXPECT_FALSE(t.n0.fenced());
        EXPECT_EQ(t.n0.holder(), 1u);

        // Mirror outcome of the duel above — still one lease, term 1.
        EXPECT_EQ(t.n1.stats().leases_won, 1u);
        EXPECT_EQ(t.n0.stats().leases_won, 0u);
        EXPECT_EQ(t.n2.stats().votes_granted, 1u);
        EXPECT_EQ(t.l02.stats().delayed[static_cast<int>(Dir::AtoB)],
                  1u);
    }
}

// ---------------------------------------------------------------------
// The acceptance topology, end to end.
// ---------------------------------------------------------------------

TEST(QuorumEndToEndTest, FencedMinorityReceiverHealsWithoutLossOrDup)
{
    // A leader node ships to receiver nodes r1 (quorum node 0) and r2
    // (quorum node 1); node 2 is a witness LeaseManager. BOTH
    // receivers arm promote_after — the configuration the pre-quorum
    // design forbade. r2 is partitioned off the control plane, so when
    // the leader link is cut: r2's (earlier) promotion attempt fences;
    // r1 wins the witness's grant and promotes; healing the partition
    // rejoins r2, which rebases onto the promoted generation and
    // finishes the stream with zero loss or duplication.
    int gate[2];
    ASSERT_EQ(::pipe(gate), 0);

    auto app = [gate]() -> int {
        for (int i = 0; i < 8; ++i)
            sys::vgetpid();
        char go = 0;
        sys::vread(gate[0], &go, 1); // parks the leader mid-stream
        for (int i = 0; i < 4; ++i)
            sys::vgetpid();
        return 42;
    };

    const std::string ep1 =
        "varan-quorum-e2e1-" + std::to_string(::getpid());
    const std::string ep2 =
        "varan-quorum-e2e2-" + std::to_string(::getpid());
    auto listening1 = netio::listenAbstract(ep1);
    auto listening2 = netio::listenAbstract(ep2);
    ASSERT_TRUE(listening1.ok());
    ASSERT_TRUE(listening2.ok());

    pid_t leader_node = ::fork();
    ASSERT_GE(leader_node, 0);
    if (leader_node == 0) {
        core::EngineConfig config;
        config.ring.capacity = 128;
        config.shm_bytes = 16 << 20;
        config.remote.endpoints = {ep1, ep2};
        config.tuning.ship_batch = 8;
        core::Nvx nvx(config);
        if (!nvx.start({core::VariantSpec(app).named("leader")}).isOk())
            ::_exit(1);
        nvx.wait(); // parked on the gate until the link is cut
        ::_exit(0);
    }

    core::EngineConfig remote_config;
    remote_config.ring.capacity = 128;
    remote_config.shm_bytes = 16 << 20;
    remote_config.external_leader = true;
    remote_config.ring.progress_timeout_ns = 20000000000ULL;

    // r1: quorum node 0, the eventual winner.
    core::Nvx remote1(remote_config);
    ASSERT_TRUE(
        remote1.start({core::VariantSpec(app).named("standby1")}).isOk());
    wire::Receiver::Options r1_opts;
    r1_opts.promote_after_ns = 600000000ULL; // after r2's attempt
    r1_opts.standby_peers = {ep2};
    r1_opts.promoted_ship.ship_batch = 8;
    r1_opts.quorum = nodeConfig(0);
    wire::Receiver receiver1(remote1.region(), &remote1.layout(),
                             r1_opts);

    // r2: quorum node 1, promotion armed TOO — fencing, not config
    // discipline, is what prevents the split brain.
    core::Nvx remote2(remote_config);
    ASSERT_TRUE(
        remote2.start({core::VariantSpec(app).named("standby2")}).isOk());
    wire::Receiver::Options r2_opts;
    r2_opts.promote_after_ns = 200000000ULL; // fires first
    r2_opts.quorum = nodeConfig(1);
    wire::Receiver receiver2(remote2.region(), &remote2.layout(),
                             r2_opts);

    // The witness (node 2) and the scriptable control-plane fabric.
    LeaseManager witness(nodeConfig(2));
    FaultLink q01, q02, q12; // A = lower quorum node id
    receiver1.leaseManager()->adoptPeerLink(1, q01.releaseA());
    receiver2.leaseManager()->adoptPeerLink(0, q01.releaseB());
    receiver1.leaseManager()->adoptPeerLink(2, q02.releaseA());
    witness.adoptPeerLink(0, q02.releaseB());
    receiver2.leaseManager()->adoptPeerLink(2, q12.releaseA());
    witness.adoptPeerLink(1, q12.releaseB());
    witness.start();

    // r2 is partitioned off the control plane from the start.
    q01.partition();
    q12.partition();

    // Data plane: both leader links run through cut-scriptable
    // FaultLinks, so "node death" is a frame-boundary event.
    ASSERT_TRUE(netio::waitReadable(
        static_cast<int>(listening1.value()), 15000));
    long conn1 = netio::acceptConnection(
        static_cast<int>(listening1.value()), false);
    ASSERT_GE(conn1, 0);
    FaultLink data1(static_cast<int>(conn1));
    ASSERT_TRUE(receiver1.adopt(data1.releaseB()).isOk());
    receiver1.start();
    ASSERT_TRUE(netio::waitReadable(
        static_cast<int>(listening2.value()), 15000));
    long conn2 = netio::acceptConnection(
        static_cast<int>(listening2.value()), false);
    ASSERT_GE(conn2, 0);
    FaultLink data2(static_cast<int>(conn2));
    ASSERT_TRUE(receiver2.adopt(data2.releaseB()).isOk());
    receiver2.start();

    // Let the pre-gate stream (8 events) reach both receiver nodes.
    std::uint64_t deadline = monotonicNs() + 15000000000ULL;
    while ((receiver1.nextSeq(0) < 8 || receiver2.nextSeq(0) < 8) &&
           monotonicNs() < deadline) {
        sleepNs(5000000);
    }
    ASSERT_GE(receiver1.nextSeq(0), 8u);
    ASSERT_GE(receiver2.nextSeq(0), 8u);

    // The leader node "dies": both links sever at a frame boundary,
    // deterministically. The SIGKILL afterwards is mere cleanup — no
    // timing rides on it.
    data1.cut();
    data2.cut();
    ASSERT_EQ(::kill(leader_node, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(leader_node, &wstatus, 0), leader_node);

    // r2's promotion deadline fires first; partitioned off the
    // quorum, the election round dies reply-less and r2 fences.
    deadline = monotonicNs() + 15000000000ULL;
    while (!receiver2.fenced() && monotonicNs() < deadline)
        sleepNs(5000000);
    ASSERT_TRUE(receiver2.fenced());
    EXPECT_FALSE(receiver2.promoted());

    // The fence is operator-visible: StatusReport and varanctl.
    core::StatusReport fenced_status = receiver2.localStatus();
    EXPECT_EQ(fenced_status.receiver.fenced, 1u);
    EXPECT_EQ(fenced_status.quorum.active, 1u);
    EXPECT_EQ(fenced_status.quorum.fenced, 1u);
    EXPECT_NE(trace::renderQuorum(fenced_status).find("FENCED"),
              std::string::npos);
    EXPECT_NE(trace::renderStatus(fenced_status).find("FENCED"),
              std::string::npos);

    // r1 collects the witness's grant, wins the lease, promotes, and
    // ships the promoted stream toward r2.
    ASSERT_TRUE(netio::waitReadable(
        static_cast<int>(listening2.value()), 15000));
    long conn3 = netio::acceptConnection(
        static_cast<int>(listening2.value()), false);
    ASSERT_GE(conn3, 0);
    ASSERT_TRUE(receiver2.adopt(static_cast<int>(conn3)).isOk());
    ASSERT_TRUE(receiver1.promoted());
    EXPECT_FALSE(receiver1.fenced());
    EXPECT_TRUE(receiver1.leaseManager()->holdsLease());

    // Exactly one granted lease: r2 never won one.
    EXPECT_GE(receiver1.leaseManager()->stats().leases_won, 1u);
    EXPECT_EQ(receiver2.leaseManager()->stats().leases_won, 0u);
    EXPECT_GE(witness.stats().votes_granted, 1u);

    // Heal the partition: hearing the holder's heartbeat unfences r2.
    q01.heal();
    q12.heal();
    deadline = monotonicNs() + 15000000000ULL;
    while (receiver2.fenced() && monotonicNs() < deadline)
        sleepNs(5000000);
    EXPECT_FALSE(receiver2.fenced());

    // Release the gate: the promoted leader (r1's variant) resumes
    // from the exact replay point and ships the tail to healed r2.
    ASSERT_EQ(::write(gate[1], "g", 1), 1);

    auto results1 = remote1.waitFor(30000000000ULL);
    ASSERT_EQ(results1.size(), 1u);
    EXPECT_FALSE(results1[0].crashed);
    EXPECT_EQ(results1[0].status, 42);
    auto results2 = remote2.waitFor(30000000000ULL);
    ASSERT_EQ(results2.size(), 1u);
    EXPECT_FALSE(results2[0].crashed);
    EXPECT_EQ(results2[0].status, 42);

    // Bit-exact rejoin: r2's engine saw exactly the events r1's did —
    // nothing lost, nothing double-applied, one generation rebase.
    EXPECT_EQ(remote2.eventsStreamed(), remote1.eventsStreamed());
    EXPECT_EQ(receiver2.stats().duplicates_dropped, 0u);
    EXPECT_EQ(receiver2.stats().corrupt_frames, 0u);
    EXPECT_EQ(receiver2.stats().rebases, 1u);
    EXPECT_FALSE(receiver2.promoted());

    // The quorum section of both nodes' status agrees on the holder.
    core::StatusReport s1 = receiver1.localStatus();
    core::StatusReport s2 = receiver2.localStatus();
    EXPECT_EQ(s1.quorum.holder, 0u);
    EXPECT_EQ(s2.quorum.holder, 0u);
    EXPECT_EQ(s1.receiver.fenced, 0u);
    EXPECT_EQ(s2.receiver.fenced, 0u);
    EXPECT_EQ(s1.stream_generation, 2u);

    witness.stop();
    ASSERT_TRUE(receiver1.finish().isOk());
    ASSERT_TRUE(receiver2.finish().isOk());
    ::close(gate[0]);
    ::close(gate[1]);
    sys::vclose(static_cast<int>(listening1.value()));
    sys::vclose(static_cast<int>(listening2.value()));
}

} // namespace
} // namespace varan::quorum
