/**
 * @file
 * Adaptive event-path tests: the live Tuning surface (clamping,
 * pinning, first-seeder-wins seeding), the AIMD controller driven by
 * scripted fake samples (convergence, regression backoff, hysteresis
 * dead band, hard floors/ceilings), the AutoTuner against a real
 * shared layout (pinned knobs skipped, fast-path table maintenance),
 * live knob re-reads by the wire shipper and the publish coalescer
 * mid-run (no restart), the promoted-shipper knob-adoption regression,
 * the unsolicited Status push, BPF hot-rule heat counters, and the
 * engine-level guarantee: a Tuning write through Nvx::tuning() is
 * visible in the very next StatusReport and statusText().
 */

#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "adapt/autotuner.h"
#include "adapt/controller.h"
#include "bpf/rules.h"
#include "common/clock.h"
#include "core/nvx.h"
#include "core/status.h"
#include "core/tuning.h"
#include "ring/ring_buffer.h"
#include "shmem/region.h"
#include "syscalls/sys.h"
#include "wire/receiver.h"
#include "wire/shipper.h"

namespace varan {
namespace {

using core::Knob;
using core::Tuning;
using core::TuningBlock;
using core::TuningHandle;

// ---------------------------------------------------------------- Tuning

TEST(TuningTest, ClampEnforcesFloorsAndCeilings)
{
    EXPECT_EQ(core::clampKnob(Knob::ShipBatch, 0), 1u);
    EXPECT_EQ(core::clampKnob(Knob::ShipBatch, 1000), 64u);
    EXPECT_EQ(core::clampKnob(Knob::CreditWindow, 1), 64u);
    EXPECT_EQ(core::clampKnob(Knob::CoalesceRun, 9999), 64u);
    EXPECT_EQ(core::clampKnob(Knob::CoalesceWindowNs, 1), 10000u);
    EXPECT_EQ(core::clampKnob(Knob::FastpathTopK, 100),
              core::kFastPathSlots);
}

TEST(TuningTest, HandleSetClampsPinsAndSnapshots)
{
    TuningBlock block = {};
    core::initTuningDefaults(block);
    TuningHandle handle(&block);
    ASSERT_TRUE(handle.valid());

    EXPECT_EQ(handle.shipBatch(), Tuning{}.ship_batch);
    EXPECT_FALSE(handle.pinned(Knob::ShipBatch));

    handle.set(Knob::ShipBatch, 1000); // clamped to the ceiling, pinned
    EXPECT_EQ(handle.get(Knob::ShipBatch), 64u);
    EXPECT_TRUE(handle.pinned(Knob::ShipBatch));
    handle.unpin(Knob::ShipBatch);
    EXPECT_FALSE(handle.pinned(Knob::ShipBatch));

    handle.set(Knob::CoalesceRun, 32, /*pin=*/false);
    EXPECT_FALSE(handle.pinned(Knob::CoalesceRun));

    Tuning snap = handle.snapshot();
    EXPECT_EQ(snap.ship_batch, 64u);
    EXPECT_EQ(snap.coalesce_run, 32u);
    EXPECT_EQ(snap.credit_window, Tuning{}.credit_window);
}

TEST(TuningTest, SeedingIsFirstWriterWins)
{
    TuningBlock block = {};
    core::initTuningDefaults(block);

    // initTuningDefaults leaves the seeded mask clear: the first
    // seeder owns the knob ...
    core::seedKnob(block, Knob::ShipBatch, 32);
    EXPECT_EQ(core::liveKnob(block, Knob::ShipBatch), 32u);
    // ... and a later seeder (a component constructed afterwards with
    // stale Options) must not clobber it.
    core::seedKnob(block, Knob::ShipBatch, 1);
    EXPECT_EQ(core::liveKnob(block, Knob::ShipBatch), 32u);

    // An explicit set() always wins over prior seeding.
    TuningHandle(&block).set(Knob::ShipBatch, 8);
    EXPECT_EQ(core::liveKnob(block, Knob::ShipBatch), 8u);
}

// ------------------------------------------------------------ Controller

adapt::ControllerConfig
everyTick()
{
    adapt::ControllerConfig config;
    config.settle_ticks = 1; // decide on every tick: deterministic
    return config;
}

/** Run one controller step and fold any decision for @p knob back into
 *  the scripted Tuning state. Returns true when the knob moved. */
bool
applyStep(adapt::Controller &controller, const adapt::Sample &sample,
          Tuning &tuning, Knob knob)
{
    bool moved = false;
    for (const adapt::Decision &d : controller.step(sample, tuning)) {
        if (d.knob != knob)
            continue;
        moved = true;
        switch (knob) {
          case Knob::ShipBatch:
            tuning.ship_batch = static_cast<std::uint32_t>(d.to);
            break;
          case Knob::CoalesceRun:
            tuning.coalesce_run = static_cast<std::uint32_t>(d.to);
            break;
          case Knob::CreditWindow:
            tuning.credit_window = static_cast<std::uint32_t>(d.to);
            break;
          case Knob::CoalesceWindowNs:
            tuning.coalesce_window_ns = d.to;
            break;
          case Knob::FastpathTopK:
            tuning.fastpath_top_k = static_cast<std::uint32_t>(d.to);
            break;
        }
    }
    return moved;
}

TEST(ControllerTest, ClimbsToCeilingOnRisingThroughput)
{
    adapt::Controller controller(everyTick());
    Tuning tuning;
    tuning.ship_batch = 1;
    double rate = 1000.0;
    for (int i = 0; i < 40 && tuning.ship_batch < 64; ++i) {
        adapt::Sample sample;
        sample.events_per_sec = rate;
        rate *= 1.25; // every increase pays off
        applyStep(controller, sample, tuning, Knob::ShipBatch);
    }
    EXPECT_EQ(tuning.ship_batch, 64u); // converged to the hard ceiling
}

TEST(ControllerTest, BacksOffOnRegressionAndRespectsFloor)
{
    adapt::Controller controller(everyTick());
    Tuning tuning;
    tuning.ship_batch = 64;
    double rate = 1e6;
    std::uint32_t prev = tuning.ship_batch;
    for (int i = 0; i < 12; ++i) {
        adapt::Sample sample;
        sample.events_per_sec = rate;
        rate *= 0.5; // everything makes it worse
        applyStep(controller, sample, tuning, Knob::ShipBatch);
        // Multiplicative decrease, never through the floor.
        EXPECT_GE(tuning.ship_batch, 1u);
        EXPECT_LE(tuning.ship_batch, prev + 4); // one probe may land first
        prev = tuning.ship_batch;
    }
    EXPECT_EQ(tuning.ship_batch, 1u); // collapsed to the hard floor
}

TEST(ControllerTest, HysteresisDeadBandNeverShrinksOnFlatSignal)
{
    adapt::Controller controller(everyTick());
    Tuning tuning;
    tuning.ship_batch = 16;
    std::uint32_t prev = tuning.ship_batch;
    // ±5 % jitter sits inside the ±10 % dead band: the controller may
    // probe upward but must never punish the knob with a backoff.
    const double rates[] = {1000, 1049, 998, 1032, 971, 1020, 990, 1015};
    for (double r : rates) {
        adapt::Sample sample;
        sample.events_per_sec = r;
        applyStep(controller, sample, tuning, Knob::ShipBatch);
        EXPECT_GE(tuning.ship_batch, prev);
        prev = tuning.ship_batch;
    }
}

TEST(ControllerTest, SettleTicksGateDecisions)
{
    adapt::ControllerConfig config;
    config.settle_ticks = 3;
    adapt::Controller controller(config);
    Tuning tuning;
    adapt::Sample sample;
    sample.events_per_sec = 1000;
    // Two ticks rest, the third decides.
    EXPECT_FALSE(applyStep(controller, sample, tuning, Knob::ShipBatch));
    EXPECT_FALSE(applyStep(controller, sample, tuning, Knob::ShipBatch));
    EXPECT_TRUE(applyStep(controller, sample, tuning, Knob::ShipBatch));
}

TEST(ControllerTest, CoalesceWindowTracksRunLength)
{
    adapt::Controller controller(everyTick());
    Tuning tuning;
    tuning.coalesce_run = 1;
    tuning.coalesce_window_ns = 200000;
    adapt::Sample sample;
    sample.events_per_sec = 1000;
    auto decisions = controller.step(sample, tuning);
    std::uint64_t window = 0, run = 0;
    for (const adapt::Decision &d : decisions) {
        if (d.knob == Knob::CoalesceWindowNs)
            window = d.to;
        if (d.knob == Knob::CoalesceRun)
            run = d.to;
    }
    ASSERT_GT(run, 0u);    // first tick probes the run upward
    ASSERT_GT(window, 0u); // and the window follows the *new* run
    EXPECT_EQ(window, run * 12500u);
}

TEST(ControllerTest, CreditWindowDoublesUnderStallPressure)
{
    adapt::Controller controller(everyTick());
    Tuning tuning;
    tuning.credit_window = 4096;
    adapt::Sample sample;
    sample.wire_active = true;
    sample.credit_stall_frac = 0.8; // the window gates most passes
    applyStep(controller, sample, tuning, Knob::CreditWindow);
    EXPECT_EQ(tuning.credit_window, 8192u);
    applyStep(controller, sample, tuning, Knob::CreditWindow);
    EXPECT_EQ(tuning.credit_window, 16384u);
}

TEST(ControllerTest, FastpathWidthFollowsHotSet)
{
    adapt::Controller controller(everyTick());
    Tuning tuning;
    adapt::Sample sample;
    sample.hot_count = 3;
    applyStep(controller, sample, tuning, Knob::FastpathTopK);
    EXPECT_EQ(tuning.fastpath_top_k, 3u);
    sample.hot_count = 0;
    applyStep(controller, sample, tuning, Knob::FastpathTopK);
    EXPECT_EQ(tuning.fastpath_top_k, 0u); // cold set switches it back off
}

// ------------------------------------------------------------- AutoTuner

/** A 1-variant shared layout the AutoTuner samples; the test fakes the
 *  workload by bumping the shared counters directly. */
struct FakeEngine {
    shmem::Region region;
    core::EngineLayout layout;

    FakeEngine()
    {
        auto r = shmem::Region::create(8 << 20);
        VARAN_CHECK(r.ok());
        region = std::move(r.value());
        layout = core::EngineLayout::create(&region, 1, 0, 64);
    }

    core::ControlBlock *cb() { return layout.controlBlock(&region); }
};

TEST(AutoTunerTest, SkipsPinnedKnobsAndCountsDecisions)
{
    FakeEngine engine;
    TuningHandle handle(&engine.cb()->tuning);
    handle.set(Knob::ShipBatch, 7); // operator pin

    adapt::AutoTuner::Options options;
    options.controller = everyTick();
    adapt::AutoTuner tuner(&engine.region, &engine.layout, options);

    std::uint64_t now = 1000000;
    tuner.tickOnce(now); // baseline
    for (int i = 0; i < 4; ++i) {
        engine.cb()->events_streamed.fetch_add(10000,
                                               std::memory_order_relaxed);
        now += 10000000;
        for (const adapt::Decision &d : tuner.tickOnce(now))
            EXPECT_NE(d.knob, Knob::ShipBatch); // pinned: never touched
    }
    EXPECT_EQ(handle.get(Knob::ShipBatch), 7u);
    // The unpinned CoalesceRun knob was free to move.
    EXPECT_GT(handle.get(Knob::CoalesceRun), Tuning{}.coalesce_run);
    EXPECT_GT(tuner.decisionsApplied(), 0u);
    EXPECT_GT(engine.cb()->tuning.adapt_samples.load(
                  std::memory_order_relaxed),
              0u);
}

TEST(AutoTunerTest, FastpathTableFollowsHotSyscalls)
{
    FakeEngine engine;
    adapt::AutoTuner::Options options;
    options.controller = everyTick();
    adapt::AutoTuner tuner(&engine.region, &engine.layout, options);

    std::uint64_t now = 1000000;
    tuner.tickOnce(now);
    // A getpid-dominated tick: eligible, payload-free, replicated.
    engine.cb()->tuning.sys_hist[SYS_getpid].fetch_add(
        50000, std::memory_order_relaxed);
    engine.cb()->tuning.sys_hist[SYS_write].fetch_add(
        10, std::memory_order_relaxed); // hashable: never fast-pathed
    now += 10000000;
    tuner.tickOnce(now);

    TuningBlock &tuning = engine.cb()->tuning;
    EXPECT_EQ(tuning.fastpath_nrs[0].load(std::memory_order_relaxed),
              static_cast<std::uint32_t>(SYS_getpid) + 1);
    EXPECT_GE(core::liveKnob(tuning, Knob::FastpathTopK), 1u);

    // The workload goes cold: the width drops back to zero.
    now += 10000000;
    tuner.tickOnce(now);
    EXPECT_EQ(core::liveKnob(tuning, Knob::FastpathTopK), 0u);
}

// ------------------------------------------- live knob consumers (wire)

ring::Event
syscallEvent(std::uint64_t timestamp, std::uint16_t nr,
             std::int64_t result)
{
    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.timestamp = timestamp;
    event.nr = nr;
    event.result = result;
    return event;
}

/** Publish @p count payload-free events into tuple 0 of @p engine. */
void
publishEvents(FakeEngine &engine, std::size_t count)
{
    ring::RingBuffer ring = engine.layout.tupleRing(&engine.region, 0);
    static std::uint64_t ts = 0;
    for (std::size_t i = 0; i < count; ++i) {
        ring::Event event = syscallEvent(++ts, 39, 4242);
        std::uint64_t seq = 0;
        ASSERT_TRUE(ring.claim(1, &seq, {}));
        ring.commit({&event, 1});
    }
}

struct FakeRemote {
    shmem::Region region;
    core::EngineLayout layout;

    FakeRemote()
    {
        auto r = shmem::Region::create(8 << 20);
        VARAN_CHECK(r.ok());
        region = std::move(r.value());
        layout = core::EngineLayout::create(&region, 1, core::kNoLeader,
                                            64);
    }
};

TEST(AdaptWireTest, ShipperObservesLiveShipBatchMidRun)
{
    FakeEngine leader;
    FakeRemote remote;
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    wire::Shipper::Options options;
    options.ship_batch = 4;
    wire::Shipper shipper(&leader.region, &leader.layout, options);
    ASSERT_TRUE(shipper.attachTaps().isOk());
    wire::Receiver receiver(&remote.region, &remote.layout);
    std::thread adopting(
        [&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    publishEvents(leader, 20);
    // Seeded batch: one drain pass moves 4 events.
    EXPECT_EQ(shipper.pumpOnce(), 4u);

    // Retune mid-run — no restart, no reconnect: the next pass is
    // already running at the new batch.
    TuningHandle handle(&leader.cb()->tuning);
    handle.set(Knob::ShipBatch, 16);
    EXPECT_EQ(shipper.pumpOnce(), 16u);

    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(AdaptWireTest, PromotedShipperAdoptsRetunedKnobs)
{
    // Regression for the construction-time caching bug: a shipper
    // stood up *after* a live retune (promotion, reconnect) used to
    // reset the batch to its constructor Options. Seeding is
    // first-writer-wins, so the retuned value must survive.
    FakeEngine leader;
    TuningHandle handle(&leader.cb()->tuning);
    handle.set(Knob::ShipBatch, 32);
    handle.set(Knob::CreditWindow, 256);

    wire::Shipper::Options stale;
    stale.ship_batch = 1; // what a config file from before the retune says
    stale.credit_window = 4096;
    wire::Shipper shipper(&leader.region, &leader.layout, stale);
    ASSERT_TRUE(shipper.attachTaps().isOk());

    EXPECT_EQ(handle.get(Knob::ShipBatch), 32u);
    EXPECT_EQ(handle.get(Knob::CreditWindow), 256u);

    // And the adopted values are what actually drive the drain.
    FakeRemote remote;
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    wire::Receiver receiver(&remote.region, &remote.layout);
    std::thread adopting(
        [&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    publishEvents(leader, 40);
    EXPECT_EQ(shipper.pumpOnce(), 32u);

    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(AdaptWireTest, UnsolicitedStatusPushArrives)
{
    FakeEngine leader;
    FakeRemote remote;
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    wire::Shipper::Options options;
    options.status_push_ns = 1; // every pump pass pushes
    wire::Shipper shipper(&leader.region, &leader.layout, options);
    ASSERT_TRUE(shipper.attachTaps().isOk());
    wire::Receiver receiver(&remote.region, &remote.layout);
    std::thread adopting(
        [&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    // The receiver never asked for anything — the report just arrives.
    shipper.pumpOnce();
    core::StatusReport report = {};
    const std::uint64_t deadline = monotonicNs() + 5000000000ULL;
    while (!receiver.remoteStatus(&report) && monotonicNs() < deadline) {
        receiver.serveOnce(100);
        sleepNs(1000000);
    }
    ASSERT_TRUE(receiver.remoteStatus(&report));
    EXPECT_EQ(report.num_variants, 1u);
    EXPECT_GE(shipper.stats().status_pushes, 1u);
    // The push carries the live knob values of the sending engine.
    EXPECT_EQ(report.adapt.ship_batch, 16u);

    ::close(sv[0]);
    ::close(sv[1]);
}

// ---------------------------------------------- live coalescer run limit

TEST(AdaptRingTest, CoalescerRereadsLiveRunLimitPerAdd)
{
    auto r = shmem::Region::create(4 << 20);
    ASSERT_TRUE(r.ok());
    shmem::Region region = std::move(r.value());
    shmem::Offset off =
        region.carve(ring::RingBuffer::bytesRequired(64));
    ring::RingBuffer ring = ring::RingBuffer::initialize(&region, off, 64);

    std::atomic<std::uint64_t> live_limit{4};
    ring::PublishCoalescer co;
    co.reset(&ring, ring::PublishCoalescer::kMaxPending);
    co.bindLiveLimit(&live_limit);
    EXPECT_EQ(co.effectiveMax(), 4u);

    ring::Event event = syscallEvent(1, 39, 0);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(co.add(event));
    // The 4-run is full: the next add ships it first.
    ASSERT_TRUE(co.add(event));
    EXPECT_EQ(ring.headSeq(), 4u);
    EXPECT_EQ(co.pending(), 1u);

    // Retune mid-run: the already-started coalescer honours the new
    // limit on its very next add, no reset() required. Seven more adds
    // accumulate a full 8-run (under the old limit of 4 they would
    // have shipped twice already) ...
    live_limit.store(8, std::memory_order_relaxed);
    EXPECT_EQ(co.effectiveMax(), 8u);
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(co.add(event));
    EXPECT_EQ(ring.headSeq(), 4u); // nothing shipped yet
    EXPECT_EQ(co.pending(), 8u);
    // ... and the add that overflows it ships the whole 8-run.
    ASSERT_TRUE(co.add(event));
    EXPECT_EQ(ring.headSeq(), 12u);
    EXPECT_EQ(co.pending(), 1u);

    // Values beyond the storage ceiling clamp to kMaxPending.
    live_limit.store(100000, std::memory_order_relaxed);
    EXPECT_EQ(co.effectiveMax(), ring::PublishCoalescer::kMaxPending);
    // And zero (unseeded garbage) clamps to 1, never 0.
    live_limit.store(0, std::memory_order_relaxed);
    EXPECT_EQ(co.effectiveMax(), 1u);
}

// ------------------------------------------------------- BPF rule heat

TEST(RuleHeatTest, CountersAndHotHookFireOnce)
{
    bpf::RuleSet rules;
    // Rule 0 never matches (KILL), rule 1 skips everything.
    ASSERT_TRUE(rules.addRule("ret #0\n").isOk());
    ASSERT_TRUE(rules.addRule("ret #0x7ffd0000\n").isOk());

    std::size_t hot_index = 999;
    int fired = 0;
    rules.onHotRule(3, [&](std::size_t index, const bpf::RuleHeat &heat) {
        hot_index = index;
        ++fired;
        EXPECT_EQ(heat.decisions, 3u);
    });

    bpf::FilterContext ctx;
    ctx.data.nr = 42;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(rules.evaluate(ctx).action, bpf::RuleAction::Skip);

    EXPECT_EQ(rules.heat(0).evaluations, 5u);
    EXPECT_EQ(rules.heat(0).decisions, 0u);
    EXPECT_EQ(rules.heat(1).evaluations, 5u);
    EXPECT_EQ(rules.heat(1).decisions, 5u);
    EXPECT_EQ(rules.hottestRule(), 1);
    EXPECT_EQ(hot_index, 1u);
    EXPECT_EQ(fired, 1); // once per rule, not once per threshold cross
}

// ------------------------------------------------------------ statusText

TEST(StatusTextTest, RendersKnobsAndAdaptCounters)
{
    core::StatusReport report = {};
    report.num_variants = 2;
    report.adapt.ship_batch = 24;
    report.adapt.decisions = 7;
    report.adapt.active = 1;
    report.variants[0].syscalls = 11;
    report.variants[1].syscalls = 13;

    const std::string text = core::statusText(report);
    EXPECT_NE(text.find("# TYPE varan_tuning_ship_batch gauge"),
              std::string::npos);
    EXPECT_NE(text.find("varan_tuning_ship_batch 24"), std::string::npos);
    EXPECT_NE(text.find("varan_adapt_decisions_total 7"),
              std::string::npos);
    EXPECT_NE(text.find("varan_adapt_active 1"), std::string::npos);
    EXPECT_NE(text.find("varan_variant_syscalls_total{variant=\"1\"} 13"),
              std::string::npos);
}

// ------------------------------------------------------- engine-level

core::EngineConfig
fastConfig()
{
    core::EngineConfig config;
    config.ring.capacity = 64;
    config.shm_bytes = 16 << 20;
    config.ring.progress_timeout_ns = 10000000000ULL;
    return config;
}

TEST(AdaptEngineTest, LiveTuningVisibleInStatusWithoutRestart)
{
    int gate[2];
    ASSERT_EQ(::pipe(gate), 0);
    core::Nvx nvx(fastConfig());
    auto app = [gate]() -> int {
        char go = 0;
        if (sys::vread(gate[0], &go, 1) != 1)
            return 9;
        // Post-retune work: payload-free calls the fast path can take.
        long pid = 0;
        for (int i = 0; i < 200; ++i)
            pid = sys::vgetpid();
        return pid > 0 ? 0 : 8;
    };
    ASSERT_TRUE(nvx.start({app}).isOk());

    // Retune the running engine through the unified handle ...
    TuningHandle handle = nvx.tuning();
    ASSERT_TRUE(handle.valid());
    handle.set(Knob::CoalesceRun, 32);
    // ... and arm the top-k fast path for getpid by hand.
    nvx.controlBlock()->tuning.fastpath_nrs[0].store(
        static_cast<std::uint32_t>(SYS_getpid) + 1,
        std::memory_order_relaxed);
    handle.set(Knob::FastpathTopK, 1);

    // The very next StatusReport shows the new values — no restart.
    core::StatusReport report = nvx.status();
    EXPECT_EQ(report.adapt.coalesce_run, 32u);
    EXPECT_EQ(report.adapt.fastpath_top_k, 1u);
    const std::string text = nvx.statusText();
    EXPECT_NE(text.find("varan_tuning_coalesce_run 32"),
              std::string::npos);

    ASSERT_EQ(::write(gate[1], "g", 1), 1);
    auto results = nvx.wait();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, 0);

    // The getpid storm after the retune went through the fast path.
    EXPECT_GE(nvx.status().adapt.fastpath_hits, 100u);
    ::close(gate[0]);
    ::close(gate[1]);
}

TEST(AdaptEngineTest, TuningStructSeedsTheLiveKnobs)
{
    // The unified Tuning struct is the only knob surface (the legacy
    // CoalesceConfig/RemoteConfig spellings are gone): values set
    // there are what the engine actually runs with.
    core::EngineConfig config = fastConfig();
    config.tuning.coalesce_run = 48;
    config.tuning.credit_window = 1024;
    config.tuning.ship_batch = 8;

    core::Nvx nvx(config);
    auto results = nvx.run({[]() -> int { return 0; }});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, 0);
    core::StatusReport report = nvx.status();
    EXPECT_EQ(report.adapt.coalesce_run, 48u);
    EXPECT_EQ(report.adapt.credit_window, 1024u);
    EXPECT_EQ(report.adapt.ship_batch, 8u);
}

TEST(AdaptEngineTest, AutoTunerRunsInsideTheEngine)
{
    int gate[2];
    ASSERT_EQ(::pipe(gate), 0);
    core::EngineConfig config = fastConfig();
    config.adapt.enabled = true;
    config.adapt.tick_ns = 2000000; // 2 ms: several ticks per test
    core::Nvx nvx(config);
    auto app = [gate]() -> int {
        for (int i = 0; i < 500; ++i)
            sys::vgetpid();
        char go = 0;
        return sys::vread(gate[0], &go, 1) == 1 ? 0 : 9;
    };
    ASSERT_TRUE(nvx.start({app}).isOk());

    // The controller thread is sampling: adapt_active is up and the
    // sample counter moves without any manual driving.
    const std::uint64_t deadline = monotonicNs() + 5000000000ULL;
    while (nvx.status().adapt.samples < 3 && monotonicNs() < deadline)
        sleepNs(2000000);
    core::StatusReport report = nvx.status();
    EXPECT_EQ(report.adapt.active, 1u);
    EXPECT_GE(report.adapt.samples, 3u);

    ASSERT_EQ(::write(gate[1], "g", 1), 1);
    auto results = nvx.wait();
    EXPECT_EQ(results[0].status, 0);
    // stop() ran during wait(): the gauge is down again.
    EXPECT_EQ(nvx.status().adapt.active, 0u);
    ::close(gate[0]);
    ::close(gate[1]);
}

} // namespace
} // namespace varan
