/**
 * @file
 * Record-replay tests (section 5.4): the recorder follower persists
 * the event stream losslessly; the replayer drives fresh followers
 * from the log; the in-band (Scribe-like) baseline logs synchronously.
 *
 * The crash-consistency suite exercises log format v2: a recording
 * node whose leader link is severed mid-stream (a scripted FaultLink
 * cut — reproducible, unlike the SIGKILL race it replaced) leaves a
 * log whose valid prefix replays in full, write failures surface
 * through finish() instead of silently corrupting the log, and
 * version/checksum validation rejects garbage with decodable errors.
 */

#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/nvx.h"
#include "harness/faultlink.h"
#include "netio/socketio.h"
#include "ring/ring_buffer.h"
#include "rr/log.h"
#include "rr/recorder.h"
#include "rr/replayer.h"
#include "shmem/region.h"
#include "syscalls/sys.h"
#include "wire/receiver.h"

namespace varan::rr {
namespace {

core::EngineConfig
engineConfig()
{
    core::EngineConfig config;
    config.ring.capacity = 64;
    config.shm_bytes = 16 << 20;
    config.ring.progress_timeout_ns = 15000000000ULL;
    return config;
}

std::string
tempLogPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/varan-rr-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter.fetch_add(1)) + ".log";
}

ring::Event
getpidEvent(std::uint64_t timestamp)
{
    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.nr = SYS_getpid;
    event.timestamp = timestamp;
    event.result = 4242;
    return event;
}

TEST(RecorderTest, CapturesEveryEvent)
{
    std::string path = tempLogPath();
    core::Nvx nvx(engineConfig());
    Recorder recorder(nvx.region(), &nvx.layout(), path);

    auto app = []() -> int {
        for (int i = 0; i < 25; ++i)
            sys::vgetpid();
        return 0;
    };
    ASSERT_TRUE(nvx.start({app}, [&](core::Nvx &) {
                       ASSERT_TRUE(recorder.attachTaps().isOk());
                       recorder.startDraining();
                   })
                    .isOk());
    nvx.wait();
    auto stats = recorder.finish();
    ASSERT_TRUE(stats.ok());
    // 25 getpids + 1 exit event.
    EXPECT_EQ(stats.value().events, 26u);
    EXPECT_EQ(stats.value().write_errno, 0);

    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.value().version, kLogVersion);
    EXPECT_FALSE(log.value().truncated);
    const auto &records = log.value().records;
    ASSERT_EQ(records.size(), 26u);
    for (std::size_t i = 0; i + 1 < records.size(); ++i) {
        EXPECT_EQ(records[i].event.nr, SYS_getpid);
        EXPECT_EQ(records[i].event.timestamp, i + 1);
    }
    EXPECT_EQ(records.back().event.type, ring::EventType::Exit);
    ::unlink(path.c_str());
}

TEST(RecorderTest, CapturesPayloads)
{
    std::string path = tempLogPath();
    char file_path[] = "/tmp/varan-rr-data-XXXXXX";
    int tmp = ::mkstemp(file_path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "payload!", 8), 8);
    ::close(tmp);

    core::Nvx nvx(engineConfig());
    Recorder recorder(nvx.region(), &nvx.layout(), path);
    std::string fname(file_path);
    auto app = [fname]() -> int {
        long fd = sys::vopen(fname.c_str(), O_RDONLY);
        char buf[16] = {};
        sys::vread(static_cast<int>(fd), buf, sizeof(buf));
        sys::vclose(static_cast<int>(fd));
        return 0;
    };
    ASSERT_TRUE(nvx.start({app}, [&](core::Nvx &) {
                       ASSERT_TRUE(recorder.attachTaps().isOk());
                       recorder.startDraining();
                   })
                    .isOk());
    nvx.wait();
    auto stats = recorder.finish();
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats.value().payload_bytes, 0u);

    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    bool found_read = false;
    for (const auto &rec : log.value().records) {
        if (rec.event.nr == SYS_read &&
            rec.event.type == ring::EventType::Syscall) {
            found_read = true;
            // Payload wire format: u32 chunk length, then the bytes.
            ASSERT_GE(rec.payload.size(), 4u + 8u);
            EXPECT_EQ(std::string(reinterpret_cast<const char *>(
                                      rec.payload.data() + 4),
                                  8),
                      "payload!");
        }
    }
    EXPECT_TRUE(found_read);
    ::unlink(path.c_str());
    ::unlink(file_path);
}

TEST(RecorderTest, WriteFailureSurfacesInFinish)
{
    std::string path = tempLogPath();
    core::Nvx nvx(engineConfig());
    Recorder recorder(nvx.region(), &nvx.layout(), path);

    auto app = []() -> int {
        // 200 records at 80 bytes apiece blow well past the 4 KiB
        // file-size limit imposed below.
        for (int i = 0; i < 200; ++i)
            sys::vgetpid();
        return 0;
    };

    struct rlimit old_limit = {};
    ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
    auto old_handler = ::signal(SIGXFSZ, SIG_IGN);

    // The shared region's ftruncate() must run before the limit drops,
    // so the limit is lowered inside the pre-spawn hook — after
    // attachTaps() wrote the log header, before any record does.
    ASSERT_TRUE(nvx.start({app}, [&](core::Nvx &) {
                       ASSERT_TRUE(recorder.attachTaps().isOk());
                       struct rlimit lim = old_limit;
                       lim.rlim_cur = 4096;
                       ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &lim), 0);
                       recorder.startDraining();
                   })
                    .isOk());
    nvx.wait();
    auto stats = recorder.finish();
    ::setrlimit(RLIMIT_FSIZE, &old_limit);
    ::signal(SIGXFSZ, old_handler);

    // finish() must report the failure, not success over a torn log.
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.error().code, EFBIG);
    EXPECT_EQ(recorder.stats().write_errno, EFBIG);
    // ...and the error is mirrored into the coordinator status report.
    EXPECT_EQ(nvx.status().recorder.write_errno, EFBIG);

    // Whatever landed before the failure is still a valid prefix.
    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    for (std::size_t i = 0; i < log.value().records.size(); ++i)
        EXPECT_EQ(log.value().records[i].event.timestamp, i + 1);
    ::unlink(path.c_str());
}

TEST(RecorderTest, AttachFailureUnlinksLog)
{
    std::string path = tempLogPath();
    core::Nvx nvx(engineConfig());
    Recorder recorder(nvx.region(), &nvx.layout(), path);

    auto app = []() -> int { return 0; };
    ASSERT_TRUE(
        nvx.start({app},
                  [&](core::Nvx &engine) {
                      // Occupy every tap slot on tuple 0 so attachTaps
                      // has nowhere to claim a cursor.
                      ring::RingBuffer ring = engine.layout().tupleRing(
                          engine.region(), 0);
                      for (int slot = core::kTapConsumerSlot;
                           slot < static_cast<int>(ring::kMaxConsumers);
                           ++slot)
                          ASSERT_TRUE(ring.attachConsumerAt(slot));

                      Status attached = recorder.attachTaps();
                      ASSERT_FALSE(attached.isOk());
                      EXPECT_EQ(attached.error().code, EBUSY);
                      // The partially written log (header only) must
                      // not be left behind.
                      EXPECT_NE(::access(path.c_str(), F_OK), 0);

                      for (int slot = core::kTapConsumerSlot;
                           slot < static_cast<int>(ring::kMaxConsumers);
                           ++slot)
                          ring.detachConsumer(slot);
                  })
            .isOk());
    nvx.wait();
}

TEST(RecorderTest, LinkCutMidStreamLeavesReplayablePrefix)
{
    // The crash-consistency scenario, retrofitted onto FaultLink: the
    // recording node is a wire receiver (record_path) whose leader
    // link is severed by a *script* — at the 40th Events frame, a
    // frame boundary — instead of SIGKILLing a recorder process and
    // racing its file writes. Same property, reproducible schedule:
    // whatever prefix was delivered must parse and replay in full.
    std::string path = tempLogPath();
    ::unlink(path.c_str());

    const std::string ep = "varan-rr-cut-" + std::to_string(::getpid());
    auto listening = netio::listenAbstract(ep);
    ASSERT_TRUE(listening.ok());

    core::EngineConfig config = engineConfig();
    config.remote.endpoints = {ep};
    config.tuning.ship_batch = 4;
    // The run outlives the cut: with the sole peer gone, the drain
    // gates at acked + credit_window, so the window must cover the
    // whole stream or the leader wedges on ring backpressure.
    config.tuning.credit_window = 65536;
    core::Nvx nvx(config);
    auto app = []() -> int {
        struct timespec tick = {0, 500000}; // 0.5 ms
        for (int i = 0; i < 4000; ++i) {
            sys::vgetpid();
            if (i % 8 == 0)
                sys::vnanosleep(&tick, nullptr);
        }
        return 0;
    };
    // The recording node: an external-leader region whose pre-attached
    // cursor is detached so publishing never gates on a consumer.
    auto created = shmem::Region::create(8 << 20);
    ASSERT_TRUE(created.ok());
    shmem::Region record_region = std::move(created.value());
    core::EngineLayout record_layout =
        core::EngineLayout::create(&record_region, 1, core::kNoLeader, 64);
    record_layout.tupleRing(&record_region, 0).detachConsumer(0);
    wire::Receiver::Options opts;
    opts.record_path = path;
    wire::Receiver receiver(&record_region, &record_layout, opts);

    // The engine's start blocks on the shipper handshake, so the
    // accept + adopt side runs concurrently — as a real remote node
    // would.
    std::unique_ptr<varan::testing::FaultLink> link;
    std::thread accepting([&] {
        if (!netio::waitReadable(static_cast<int>(listening.value()),
                                 15000))
            return;
        long conn = netio::acceptConnection(
            static_cast<int>(listening.value()), false);
        if (conn < 0)
            return;
        link = std::make_unique<varan::testing::FaultLink>(
            static_cast<int>(conn));
        varan::testing::FaultLink::Rule cut;
        cut.dir = varan::testing::FaultLink::Dir::AtoB;
        cut.type = wire::FrameType::Events;
        cut.skip = 39; // the 40th Events frame severs the link
        cut.count = 1;
        cut.action = varan::testing::FaultLink::Action::Cut;
        link->script(cut);
        if (receiver.adopt(link->releaseB()).isOk())
            receiver.start();
    });
    ASSERT_TRUE(nvx.start({app}).isOk());
    accepting.join();
    ASSERT_NE(link, nullptr);

    // The script fires mid-stream, on schedule, without us timing
    // anything; the leader engine finishes its run regardless.
    std::uint64_t deadline = monotonicNs() + 30000000000ULL;
    while (!link->isCut() && monotonicNs() < deadline)
        sleepNs(1000000);
    ASSERT_TRUE(link->isCut());
    auto results = nvx.waitFor(30000000000ULL);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].crashed);
    ASSERT_TRUE(receiver.finish().isOk());
    EXPECT_EQ(receiver.stats().log_errno, 0);

    // Cut or not, the log must parse to a valid prefix — a whole-log
    // EPROTO here is exactly the bug v2 fixes.
    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    const auto &records = log.value().records;
    ASSERT_GE(records.size(), 32u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_TRUE(records[i].event.nr == SYS_getpid ||
                    records[i].event.nr == SYS_nanosleep);
        EXPECT_EQ(records[i].event.timestamp, i + 1); // no holes
    }

    // ...and that prefix replays in full through the streaming reader.
    auto replay_created = shmem::Region::create(8 << 20);
    ASSERT_TRUE(replay_created.ok());
    shmem::Region region = std::move(replay_created.value());
    core::EngineLayout layout =
        core::EngineLayout::create(&region, 1, 0, 64);
    // No follower in this harness: detach the pre-attached cursor so
    // publishing never gates.
    layout.tupleRing(&region, 0).detachConsumer(0);

    Replayer replayer(&region, &layout, path);
    auto stats = replayer.replayAll();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().events, records.size());
    EXPECT_EQ(stats.value().truncated, log.value().truncated);
    ::unlink(path.c_str());
}

TEST(ReplayTest, RecordThenReplayDrivesFollowers)
{
    std::string path = tempLogPath();
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    auto app = [fds]() -> int {
        // A little of everything: identity, time, I/O.
        long pid = sys::vgetpid();
        sys::vwrite(fds[1], "live", 4);
        long t = 0;
        sys::vtime(&t);
        return static_cast<int>((pid ^ t) & 0x3f);
    };

    int live_status = 0;
    {
        // Phase 1: record a live run.
        core::Nvx nvx(engineConfig());
        Recorder recorder(nvx.region(), &nvx.layout(), path);
        ASSERT_TRUE(nvx.start({app}, [&](core::Nvx &) {
                           ASSERT_TRUE(recorder.attachTaps().isOk());
                           recorder.startDraining();
                       })
                        .isOk());
        auto results = nvx.wait();
        ASSERT_TRUE(recorder.finish().ok());
        live_status = results[0].status;
        char buf[8] = {};
        EXPECT_EQ(::read(fds[0], buf, 4), 4);
        EXPECT_STREQ(buf, "live");
    }

    {
        // Phase 2: replay against two followers at once ("replay
        // multiple versions at once", section 5.4).
        core::EngineConfig config = engineConfig();
        config.external_leader = true;
        core::Nvx nvx(config);
        ASSERT_TRUE(nvx.start({app, app}).isOk());
        Replayer replayer(nvx.region(), &nvx.layout(), path);
        auto stats = replayer.replayAll();
        ASSERT_TRUE(stats.ok());
        EXPECT_GE(stats.value().events, 4u);
        EXPECT_FALSE(stats.value().truncated);
        auto results = nvx.waitFor(30000000000ULL);
        for (const auto &r : results) {
            EXPECT_FALSE(r.crashed);
            // Replayed run reproduces the recorded results bit for
            // bit, including the exit status derived from pid ^ time.
            EXPECT_EQ(r.status, live_status);
        }
        // Replay must not have written to the pipe again.
        char buf[8];
        struct timeval tv = {0, 100000};
        fd_set set;
        FD_ZERO(&set);
        FD_SET(fds[0], &set);
        int ready = ::select(fds[0] + 1, &set, nullptr, nullptr, &tv);
        EXPECT_EQ(ready, 0) << ::read(fds[0], buf, 8);
    }
    ::close(fds[0]);
    ::close(fds[1]);
    ::unlink(path.c_str());
}

TEST(ReplayTest, ReplayIntoRestart)
{
    std::string path = tempLogPath();
    std::string flag =
        "/tmp/varan-rr-flag-" + std::to_string(::getpid());
    ::unlink(flag.c_str());

    {
        // Phase 1: record a clean 20-call run exiting with status 7.
        auto app = []() -> int {
            for (int i = 0; i < 20; ++i)
                sys::vgetpid();
            return 7;
        };
        core::Nvx nvx(engineConfig());
        Recorder recorder(nvx.region(), &nvx.layout(), path);
        ASSERT_TRUE(nvx.start({app}, [&](core::Nvx &) {
                           ASSERT_TRUE(recorder.attachTaps().isOk());
                           recorder.startDraining();
                       })
                        .isOk());
        nvx.wait();
        ASSERT_TRUE(recorder.finish().ok());
    }

    // Phase 2: replay into a variant whose first incarnation crashes
    // after 5 calls. The restart policy respawns it; the replayer
    // quiesces inside on_restart, waits for the respawn's cursors to
    // re-arm, rewinds, and feeds the recorded prefix again from the
    // top (replay-into-restart).
    std::atomic<bool> quiesce{false};
    std::atomic<bool> parked{false};
    std::atomic<bool> done{false};

    // The incarnation flag crosses process respawns through the
    // filesystem with raw libc calls — invisible to the engine.
    auto restartable = [flag]() -> int {
        const bool respawned = ::access(flag.c_str(), F_OK) == 0;
        if (!respawned) {
            ::close(::open(flag.c_str(), O_CREAT | O_WRONLY, 0644));
            for (int i = 0; i < 5; ++i)
                sys::vgetpid();
            *reinterpret_cast<volatile int *>(0) = 1; // deliberate crash
        }
        for (int i = 0; i < 20; ++i)
            sys::vgetpid();
        return 7;
    };

    auto nvx =
        core::Nvx::Builder()
            .externalLeader(true)
            .shmBytes(16 << 20)
            .ringCapacity(64)
            .progressTimeoutNs(15000000000ULL)
            .onRestart([&](std::uint32_t, std::uint32_t) {
                quiesce.store(true, std::memory_order_release);
                for (int i = 0; i < 15000 &&
                                !parked.load(std::memory_order_acquire);
                     ++i)
                    ::usleep(1000);
            })
            .variant(core::VariantSpec(restartable)
                         .named("restartable")
                         .as(core::VariantRole::FollowerOnly)
                         .restartOn(core::RestartPolicy::OnCrash))
            .build();
    ASSERT_TRUE(nvx->start().isOk());

    Replayer replayer(nvx->region(), &nvx->layout(), path);
    std::thread replay_thread([&] {
        ASSERT_TRUE(replayer.open().isOk());
        // Pass 1: feed the log until the crash forces a quiesce.
        while (!quiesce.load(std::memory_order_acquire) &&
               !done.load(std::memory_order_acquire)) {
            auto n = replayer.replayChunk(4);
            if (!n.ok())
                break;
            if (n.value() == 0)
                ::usleep(1000);
        }
        parked.store(true, std::memory_order_release);
        // Resume strictly after restartVariant re-armed the cursors
        // (the restarts counter increments last).
        while (!done.load(std::memory_order_acquire) &&
               nvx->status().variants[0].restarts == 0)
            ::usleep(1000);
        if (done.load(std::memory_order_acquire))
            return;
        ASSERT_TRUE(replayer.rewind().isOk());
        ASSERT_TRUE(replayer.replayAll().ok());
    });

    auto results = nvx->waitFor(30000000000ULL);
    done.store(true, std::memory_order_release);
    quiesce.store(true, std::memory_order_release);
    replay_thread.join();

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, 7);
    EXPECT_EQ(results[0].restarts, 1u);
    EXPECT_GE(replayer.stats().passes, 1u);
    ::unlink(path.c_str());
    ::unlink(flag.c_str());
}

TEST(InBandRecorderTest, LogsSynchronously)
{
    std::string path = tempLogPath();
    {
        InBandRecorder recorder(path);
        sys::setDispatcher(&recorder);
        sys::vgetpid();
        long t = 0;
        sys::vtime(&t);
        sys::setDispatcher(nullptr);
        EXPECT_EQ(recorder.eventsLogged(), 2u);
        EXPECT_EQ(recorder.writeErrno(), 0);
    }
    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    ASSERT_EQ(log.value().records.size(), 2u);
    EXPECT_EQ(log.value().records[0].event.nr, SYS_getpid);
    EXPECT_EQ(log.value().records[1].event.nr, SYS_time);
    ::unlink(path.c_str());
}

TEST(InBandRecorderTest, SurfacesWriteFailure)
{
    std::string path = tempLogPath();
    struct rlimit old_limit = {};
    ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
    auto old_handler = ::signal(SIGXFSZ, SIG_IGN);
    {
        // The header (written by the constructor) fits the limit;
        // every record append after it must fail with EFBIG.
        InBandRecorder recorder(path);
        struct rlimit lim = old_limit;
        lim.rlim_cur = sizeof(LogHeader);
        ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &lim), 0);
        sys::setDispatcher(&recorder);
        long pid = sys::vgetpid();
        sys::setDispatcher(nullptr);
        ::setrlimit(RLIMIT_FSIZE, &old_limit);

        EXPECT_GT(pid, 0); // the syscall itself still executes
        EXPECT_EQ(recorder.writeErrno(), EFBIG);
        EXPECT_EQ(recorder.eventsLogged(), 0u);
    }
    ::signal(SIGXFSZ, old_handler);
    ::unlink(path.c_str());
}

TEST(LogTest, RejectsCorruptHeader)
{
    std::string path = tempLogPath();
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("garbage!", 1, 8, f);
    std::fclose(f);
    auto log = readLog(path);
    ASSERT_FALSE(log.ok());
    EXPECT_EQ(log.error().code, EPROTO);
    ::unlink(path.c_str());
}

TEST(LogTest, RejectsUnknownVersion)
{
    std::string path = tempLogPath();
    LogHeader header = {};
    std::memcpy(header.magic, kLogMagic, sizeof(header.magic));
    header.version = 99;
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_EQ(std::fwrite(&header, 1, sizeof(header), f),
              sizeof(header));
    std::fclose(f);

    // A future (or corrupt) version must be rejected decodably — not
    // parsed as v1/v2 garbage, not reported as a protocol error.
    auto log = readLog(path);
    ASSERT_FALSE(log.ok());
    EXPECT_EQ(log.error().code, ENOTSUP);
    ::unlink(path.c_str());
}

TEST(LogTest, MissingFileErrors)
{
    auto log = readLog("/tmp/varan-definitely-missing.log");
    ASSERT_FALSE(log.ok());
    EXPECT_EQ(log.error().code, ENOENT);
}

TEST(LogTest, TornTailYieldsValidPrefix)
{
    std::string path = tempLogPath();
    {
        LogWriter writer;
        ASSERT_TRUE(writer.open(path).isOk());
        for (std::uint64_t i = 1; i <= 3; ++i)
            ASSERT_TRUE(
                writer.append(0, getpidEvent(i), nullptr, 0).isOk());
        ASSERT_TRUE(writer.close().isOk());
    }
    // Tear the last record: drop its final 10 bytes.
    struct stat st = {};
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_EQ(::truncate(path.c_str(), st.st_size - 10), 0);

    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(log.value().truncated);
    ASSERT_EQ(log.value().records.size(), 2u);
    EXPECT_EQ(log.value().records[0].event.timestamp, 1u);
    EXPECT_EQ(log.value().records[1].event.timestamp, 2u);
    ::unlink(path.c_str());
}

TEST(LogTest, ChecksumFailureTruncates)
{
    std::string path = tempLogPath();
    {
        LogWriter writer;
        ASSERT_TRUE(writer.open(path).isOk());
        for (std::uint64_t i = 1; i <= 3; ++i)
            ASSERT_TRUE(
                writer.append(0, getpidEvent(i), nullptr, 0).isOk());
        ASSERT_TRUE(writer.close().isOk());
    }
    // Flip one byte inside the last record's event (crc-covered).
    const off_t offset = static_cast<off_t>(sizeof(LogHeader) +
                                            2 * sizeof(RecordHeader) + 12);
    int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    std::uint8_t byte = 0;
    ASSERT_EQ(::pread(fd, &byte, 1, offset), 1);
    byte ^= 0x40;
    ASSERT_EQ(::pwrite(fd, &byte, 1, offset), 1);
    ::close(fd);

    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(log.value().truncated);
    ASSERT_EQ(log.value().records.size(), 2u);
    ::unlink(path.c_str());
}

TEST(LogTest, ReadsV1Logs)
{
    std::string path = tempLogPath();
    LogHeader header = {};
    std::memcpy(header.magic, kLogMagic, sizeof(header.magic));
    header.version = 1;

    RecordHeaderV1 first = {};
    first.tuple = 0;
    first.event = getpidEvent(1);
    RecordHeaderV1 second = {};
    second.tuple = 0;
    second.event = getpidEvent(2);
    second.payload_size = 4;
    const char payload[4] = {'d', 'a', 't', 'a'};

    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_EQ(std::fwrite(&header, 1, sizeof(header), f),
              sizeof(header));
    ASSERT_EQ(std::fwrite(&first, 1, sizeof(first), f), sizeof(first));
    ASSERT_EQ(std::fwrite(&second, 1, sizeof(second), f),
              sizeof(second));
    ASSERT_EQ(std::fwrite(payload, 1, sizeof(payload), f),
              sizeof(payload));
    std::fclose(f);

    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.value().version, 1u);
    EXPECT_FALSE(log.value().truncated);
    ASSERT_EQ(log.value().records.size(), 2u);
    EXPECT_EQ(log.value().records[0].event.timestamp, 1u);
    ASSERT_EQ(log.value().records[1].payload.size(), 4u);
    EXPECT_EQ(std::memcmp(log.value().records[1].payload.data(), "data",
                          4),
              0);
    ::unlink(path.c_str());
}

} // namespace
} // namespace varan::rr
