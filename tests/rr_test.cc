/**
 * @file
 * Record-replay tests (section 5.4): the recorder follower persists
 * the event stream losslessly; the replayer drives fresh followers
 * from the log; the in-band (Scribe-like) baseline logs synchronously.
 */

#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/nvx.h"
#include "rr/log.h"
#include "rr/recorder.h"
#include "rr/replayer.h"
#include "syscalls/sys.h"

namespace varan::rr {
namespace {

core::EngineConfig
engineConfig()
{
    core::EngineConfig config;
    config.ring.capacity = 64;
    config.shm_bytes = 16 << 20;
    config.ring.progress_timeout_ns = 15000000000ULL;
    return config;
}

std::string
tempLogPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/varan-rr-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter.fetch_add(1)) + ".log";
}

TEST(RecorderTest, CapturesEveryEvent)
{
    std::string path = tempLogPath();
    core::Nvx nvx(engineConfig());
    Recorder recorder(nvx.region(), &nvx.layout(), path);

    auto app = []() -> int {
        for (int i = 0; i < 25; ++i)
            sys::vgetpid();
        return 0;
    };
    ASSERT_TRUE(nvx.start({app}, [&](core::Nvx &) {
                       ASSERT_TRUE(recorder.attachTaps().isOk());
                       recorder.startDraining();
                   })
                    .isOk());
    nvx.wait();
    auto stats = recorder.finish();
    ASSERT_TRUE(stats.ok());
    // 25 getpids + 1 exit event.
    EXPECT_EQ(stats.value().events, 26u);

    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    ASSERT_EQ(log.value().size(), 26u);
    for (std::size_t i = 0; i + 1 < log.value().size(); ++i) {
        EXPECT_EQ(log.value()[i].event.nr, SYS_getpid);
        EXPECT_EQ(log.value()[i].event.timestamp, i + 1);
    }
    EXPECT_EQ(log.value().back().event.type, ring::EventType::Exit);
    ::unlink(path.c_str());
}

TEST(RecorderTest, CapturesPayloads)
{
    std::string path = tempLogPath();
    char file_path[] = "/tmp/varan-rr-data-XXXXXX";
    int tmp = ::mkstemp(file_path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "payload!", 8), 8);
    ::close(tmp);

    core::Nvx nvx(engineConfig());
    Recorder recorder(nvx.region(), &nvx.layout(), path);
    std::string fname(file_path);
    auto app = [fname]() -> int {
        long fd = sys::vopen(fname.c_str(), O_RDONLY);
        char buf[16] = {};
        sys::vread(static_cast<int>(fd), buf, sizeof(buf));
        sys::vclose(static_cast<int>(fd));
        return 0;
    };
    ASSERT_TRUE(nvx.start({app}, [&](core::Nvx &) {
                       ASSERT_TRUE(recorder.attachTaps().isOk());
                       recorder.startDraining();
                   })
                    .isOk());
    nvx.wait();
    auto stats = recorder.finish();
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats.value().payload_bytes, 0u);

    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    bool found_read = false;
    for (const auto &rec : log.value()) {
        if (rec.event.nr == SYS_read &&
            rec.event.type == ring::EventType::Syscall) {
            found_read = true;
            // Payload wire format: u32 chunk length, then the bytes.
            ASSERT_GE(rec.payload.size(), 4u + 8u);
            EXPECT_EQ(std::string(reinterpret_cast<const char *>(
                                      rec.payload.data() + 4),
                                  8),
                      "payload!");
        }
    }
    EXPECT_TRUE(found_read);
    ::unlink(path.c_str());
    ::unlink(file_path);
}

TEST(ReplayTest, RecordThenReplayDrivesFollowers)
{
    std::string path = tempLogPath();
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    auto app = [fds]() -> int {
        // A little of everything: identity, time, I/O.
        long pid = sys::vgetpid();
        sys::vwrite(fds[1], "live", 4);
        long t = 0;
        sys::vtime(&t);
        return static_cast<int>((pid ^ t) & 0x3f);
    };

    int live_status = 0;
    {
        // Phase 1: record a live run.
        core::Nvx nvx(engineConfig());
        Recorder recorder(nvx.region(), &nvx.layout(), path);
        ASSERT_TRUE(nvx.start({app}, [&](core::Nvx &) {
                           ASSERT_TRUE(recorder.attachTaps().isOk());
                           recorder.startDraining();
                       })
                        .isOk());
        auto results = nvx.wait();
        ASSERT_TRUE(recorder.finish().ok());
        live_status = results[0].status;
        char buf[8] = {};
        EXPECT_EQ(::read(fds[0], buf, 4), 4);
        EXPECT_STREQ(buf, "live");
    }

    {
        // Phase 2: replay against two followers at once ("replay
        // multiple versions at once", section 5.4).
        core::EngineConfig config = engineConfig();
        config.external_leader = true;
        core::Nvx nvx(config);
        ASSERT_TRUE(nvx.start({app, app}).isOk());
        Replayer replayer(nvx.region(), &nvx.layout(), path);
        auto stats = replayer.replayAll();
        ASSERT_TRUE(stats.ok());
        EXPECT_GE(stats.value().events, 4u);
        auto results = nvx.waitFor(30000000000ULL);
        for (const auto &r : results) {
            EXPECT_FALSE(r.crashed);
            // Replayed run reproduces the recorded results bit for
            // bit, including the exit status derived from pid ^ time.
            EXPECT_EQ(r.status, live_status);
        }
        // Replay must not have written to the pipe again.
        char buf[8];
        struct timeval tv = {0, 100000};
        fd_set set;
        FD_ZERO(&set);
        FD_SET(fds[0], &set);
        int ready = ::select(fds[0] + 1, &set, nullptr, nullptr, &tv);
        EXPECT_EQ(ready, 0) << ::read(fds[0], buf, 8);
    }
    ::close(fds[0]);
    ::close(fds[1]);
    ::unlink(path.c_str());
}

TEST(InBandRecorderTest, LogsSynchronously)
{
    std::string path = tempLogPath();
    {
        InBandRecorder recorder(path);
        sys::setDispatcher(&recorder);
        sys::vgetpid();
        long t = 0;
        sys::vtime(&t);
        sys::setDispatcher(nullptr);
        EXPECT_EQ(recorder.eventsLogged(), 2u);
    }
    auto log = readLog(path);
    ASSERT_TRUE(log.ok());
    ASSERT_EQ(log.value().size(), 2u);
    EXPECT_EQ(log.value()[0].event.nr, SYS_getpid);
    EXPECT_EQ(log.value()[1].event.nr, SYS_time);
    ::unlink(path.c_str());
}

TEST(LogTest, RejectsCorruptHeader)
{
    std::string path = tempLogPath();
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("garbage!", 1, 8, f);
    std::fclose(f);
    auto log = readLog(path);
    EXPECT_FALSE(log.ok());
    ::unlink(path.c_str());
}

TEST(LogTest, MissingFileErrors)
{
    auto log = readLog("/tmp/varan-definitely-missing.log");
    EXPECT_FALSE(log.ok());
    EXPECT_EQ(log.error().code, ENOENT);
}

} // namespace
} // namespace varan::rr
