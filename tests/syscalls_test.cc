/**
 * @file
 * Tests for the syscall classification table and the dispatch shim.
 */

#include <sys/syscall.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "syscalls/classify.h"
#include "syscalls/raw.h"
#include "syscalls/sys.h"

namespace varan::sys {
namespace {

TEST(ClassifyTest, CoversThePaperScale)
{
    // The paper implemented 86 system calls (section 3.3); the table
    // must at least match that coverage.
    EXPECT_GE(handledSyscallCount(), 86u);
}

TEST(ClassifyTest, CoreClassesAreRight)
{
    EXPECT_EQ(syscallInfo(SYS_read).cls, SyscallClass::Replicated);
    EXPECT_EQ(syscallInfo(SYS_write).cls, SyscallClass::Replicated);
    EXPECT_EQ(syscallInfo(SYS_open).cls, SyscallClass::FdCreating);
    EXPECT_EQ(syscallInfo(SYS_socket).cls, SyscallClass::FdCreating);
    EXPECT_EQ(syscallInfo(SYS_accept4).cls, SyscallClass::FdCreating);
    EXPECT_EQ(syscallInfo(SYS_mmap).cls, SyscallClass::Local);
    EXPECT_EQ(syscallInfo(SYS_futex).cls, SyscallClass::Local);
    EXPECT_EQ(syscallInfo(SYS_time).cls, SyscallClass::Virtual);
    EXPECT_EQ(syscallInfo(SYS_clock_gettime).cls, SyscallClass::Virtual);
    EXPECT_EQ(syscallInfo(SYS_fork).cls, SyscallClass::Fork);
    EXPECT_EQ(syscallInfo(SYS_exit_group).cls, SyscallClass::Exit);
}

TEST(ClassifyTest, OutBufferSpecsDescribeTransfers)
{
    const SyscallInfo &read_info = syscallInfo(SYS_read);
    EXPECT_EQ(read_info.out[0].arg, 1);
    EXPECT_EQ(read_info.out[0].len_from, LenFrom::Result);

    const SyscallInfo &accept = syscallInfo(SYS_accept4);
    EXPECT_EQ(accept.out[0].arg, 1);
    EXPECT_EQ(accept.out[0].len_from, LenFrom::DerefArg);
    EXPECT_EQ(accept.out[0].len_arg, 2);

    const SyscallInfo &pipe_info = syscallInfo(SYS_pipe2);
    EXPECT_EQ(pipe_info.fd_array_arg, 0);

    const SyscallInfo &epoll = syscallInfo(SYS_epoll_wait);
    EXPECT_EQ(epoll.out[0].len_from, LenFrom::ResultTimesSize);
    EXPECT_EQ(epoll.out[0].fixed, 12u);
}

TEST(ClassifyTest, UnknownNumbersAreUnhandled)
{
    EXPECT_EQ(syscallInfo(-1).cls, SyscallClass::Unhandled);
    EXPECT_EQ(syscallInfo(511).cls, SyscallClass::Unhandled);
    EXPECT_EQ(syscallInfo(100000).cls, SyscallClass::Unhandled);
}

TEST(RawTest, SyscallReturnsKernelConvention)
{
    long pid = rawSyscall(SYS_getpid);
    EXPECT_EQ(pid, ::getpid());
    long err = rawSyscall(SYS_close, -1);
    EXPECT_EQ(err, -EBADF);
    EXPECT_TRUE(isError(err));
    EXPECT_FALSE(isError(pid));
}

TEST(DispatchTest, NoDispatcherFallsThroughToKernel)
{
    ASSERT_EQ(dispatcher(), nullptr);
    EXPECT_EQ(invoke(SYS_getpid), ::getpid());
}

TEST(DispatchTest, DispatcherInterceptsAndRestores)
{
    struct Fake : Dispatcher {
        long nr_seen = -1;
        std::uint64_t arg0 = 0;
        long
        dispatch(long nr, const std::uint64_t args[6]) override
        {
            nr_seen = nr;
            arg0 = args[0];
            return 12345;
        }
    } fake;
    setDispatcher(&fake);
    long r = invoke(SYS_close, 42);
    setDispatcher(nullptr);
    EXPECT_EQ(r, 12345);
    EXPECT_EQ(fake.nr_seen, SYS_close);
    EXPECT_EQ(fake.arg0, 42u);
    // Restored: raw path again.
    EXPECT_EQ(invoke(SYS_getpid), ::getpid());
}

TEST(DispatchTest, RewriteEntryRoutesThroughInvoke)
{
    struct Fake : Dispatcher {
        long
        dispatch(long nr, const std::uint64_t args[6]) override
        {
            return static_cast<long>(args[5]) + nr;
        }
    } fake;
    setDispatcher(&fake);
    rewrite::SyscallFrame frame = {};
    frame.nr = 100;
    frame.args[5] = 11;
    long r = rewriteEntry(&frame);
    setDispatcher(nullptr);
    EXPECT_EQ(r, 111);
}

} // namespace
} // namespace varan::sys
