/**
 * @file
 * Unit and property tests for the shared-memory region and the pool
 * allocator of section 3.3.4, including cross-process behaviour.
 */

#include <cstring>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "shmem/futex_lock.h"
#include "shmem/pool.h"
#include "shmem/region.h"

namespace varan::shmem {
namespace {

TEST(RegionTest, CreateMapsZeroedMemory)
{
    auto r = Region::create(1 << 20);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    EXPECT_TRUE(region.valid());
    EXPECT_EQ(region.size(), 1u << 20);
    auto *bytes = static_cast<unsigned char *>(region.base());
    for (std::size_t i = 0; i < 4096; i += 512)
        EXPECT_EQ(bytes[i], 0);
}

TEST(RegionTest, CarveRespectsAlignment)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    Offset a = region.carve(10, 64);
    Offset b = region.carve(100, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_NE(a, 0u); // offset 0 is reserved
}

TEST(RegionTest, OffsetPointerRoundTrip)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    Offset off = region.carve(sizeof(int), alignof(int));
    int *p = region.at<int>(off);
    *p = 1234;
    EXPECT_EQ(region.offsetOf(p), off);
    EXPECT_EQ(*region.at<int>(off), 1234);
}

TEST(RegionTest, SharedAcrossFork)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    Offset off = region.carve(sizeof(std::atomic<int>));
    auto *counter = new (region.bytesAt(off, sizeof(std::atomic<int>)))
        std::atomic<int>(0);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        counter->fetch_add(5);
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(counter->load(), 5);
}

TEST(RegionTest, FromFdMapsSameBytes)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    std::memcpy(static_cast<char *>(region.base()) + 128, "varan", 6);

    Fd dup_fd(::dup(region.fd()));
    ASSERT_TRUE(dup_fd.valid());
    auto second = Region::fromFd(std::move(dup_fd), region.size());
    ASSERT_TRUE(second.ok());
    EXPECT_STREQ(static_cast<char *>(second.value().base()) + 128, "varan");
}

class PoolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto r = Region::create(8 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
        Offset hdr = region_.carve(sizeof(PoolHeader));
        Offset begin = region_.carve(64); // leave alignment padding
        pool_ = PoolAllocator::initialize(&region_, hdr, begin,
                                          region_.size());
    }

    Region region_;
    PoolAllocator pool_;
};

TEST_F(PoolTest, AllocateAndRelease)
{
    Offset p = pool_.allocate(100);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(pool_.refcount(p), 1u);
    EXPECT_EQ(pool_.liveAllocations(), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(PoolTest, PayloadIsWritable)
{
    Offset p = pool_.allocate(512);
    ASSERT_NE(p, 0u);
    void *mem = pool_.pointer(p, 512);
    std::memset(mem, 0x5a, 512);
    EXPECT_EQ(static_cast<unsigned char *>(mem)[511], 0x5a);
    pool_.release(p);
}

TEST_F(PoolTest, SizeClassesRoundUp)
{
    EXPECT_EQ(PoolAllocator::chunkSizeFor(1), 64u);
    EXPECT_EQ(PoolAllocator::chunkSizeFor(64), 64u);
    EXPECT_EQ(PoolAllocator::chunkSizeFor(65), 128u);
    EXPECT_EQ(PoolAllocator::chunkSizeFor(4096), 4096u);
    EXPECT_EQ(PoolAllocator::chunkSizeFor(4097), 8192u);
}

TEST_F(PoolTest, ReusesFreedChunks)
{
    Offset a = pool_.allocate(128);
    pool_.release(a);
    Offset b = pool_.allocate(128);
    EXPECT_EQ(a, b); // LIFO free list hands the same chunk back
    pool_.release(b);
}

TEST_F(PoolTest, RefcountingDelaysFree)
{
    Offset p = pool_.allocate(64, 3); // e.g. three followers
    EXPECT_EQ(pool_.refcount(p), 3u);
    pool_.release(p);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(PoolTest, AddRefExtendsLifetime)
{
    Offset p = pool_.allocate(64, 1);
    pool_.addRef(p, 2);
    pool_.release(p);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(PoolTest, OversizeRequestFails)
{
    // Far beyond the largest size class.
    EXPECT_EQ(pool_.allocate(64u << 20), 0u);
}

TEST_F(PoolTest, ExhaustionReturnsZeroNotCrash)
{
    std::vector<Offset> live;
    for (;;) {
        Offset p = pool_.allocate(1 << 20); // 1 MiB chunks drain fast
        if (p == 0)
            break;
        live.push_back(p);
    }
    EXPECT_GT(live.size(), 0u);
    for (Offset p : live)
        pool_.release(p);
    // After releasing everything the pool must serve requests again.
    Offset p = pool_.allocate(1 << 20);
    EXPECT_NE(p, 0u);
    pool_.release(p);
}

TEST_F(PoolTest, DistinctAllocationsDontOverlap)
{
    Offset a = pool_.allocate(256);
    Offset b = pool_.allocate(256);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    EXPECT_NE(a, b);
    std::memset(pool_.pointer(a, 256), 0x11, 256);
    std::memset(pool_.pointer(b, 256), 0x22, 256);
    EXPECT_EQ(static_cast<unsigned char *>(pool_.pointer(a, 256))[0], 0x11);
    pool_.release(a);
    pool_.release(b);
}

TEST_F(PoolTest, ConcurrentAllocFreeIsSafe)
{
    constexpr int kThreads = 4;
    constexpr int kIters = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([this] {
            std::vector<Offset> mine;
            for (int i = 0; i < kIters; ++i) {
                Offset p = pool_.allocate(64 + (i % 512));
                ASSERT_NE(p, 0u);
                mine.push_back(p);
                if (mine.size() > 8) {
                    pool_.release(mine.front());
                    mine.erase(mine.begin());
                }
            }
            for (Offset p : mine)
                pool_.release(p);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(PoolTest, CrossProcessAllocFree)
{
    // Leader-style allocation with refs for one "follower" process that
    // releases its reference from the other side of a fork.
    Offset p = pool_.allocate(128, 2);
    std::memcpy(pool_.pointer(p, 128), "payload", 8);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // The inherited pool handle resolves through the shared mapping,
        // exactly as a follower process would use it.
        char *data = static_cast<char *>(pool_.pointer(p, 128));
        bool match = std::strcmp(data, "payload") == 0;
        pool_.release(p);
        _exit(match ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_EQ(pool_.refcount(p), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST(FutexLockTest, MutualExclusionAcrossThreads)
{
    alignas(64) static FutexLock lock;
    static int counter = 0;
    constexpr int kThreads = 4;
    constexpr int kIters = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kIters; ++i) {
                FutexLockGuard g(lock);
                ++counter;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(FutexLockTest, TryLockFailsWhenHeld)
{
    FutexLock lock;
    EXPECT_TRUE(lock.tryLock());
    EXPECT_FALSE(lock.tryLock());
    lock.unlock();
    EXPECT_TRUE(lock.tryLock());
    lock.unlock();
}

TEST(FutexLockTest, MutualExclusionAcrossProcesses)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    Offset lock_off = region.carve(sizeof(FutexLock));
    Offset cnt_off = region.carve(sizeof(std::uint64_t));
    auto *lock = new (region.bytesAt(lock_off, sizeof(FutexLock)))
        FutexLock();
    auto *counter = region.at<std::uint64_t>(cnt_off);
    *counter = 0;

    constexpr int kProcs = 3;
    constexpr int kIters = 20000;
    std::vector<pid_t> pids;
    for (int p = 0; p < kProcs; ++p) {
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            for (int i = 0; i < kIters; ++i) {
                lock->lock();
                ++*counter; // non-atomic on purpose: the lock protects it
                lock->unlock();
            }
            _exit(0);
        }
        pids.push_back(pid);
    }
    for (pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    EXPECT_EQ(*counter, static_cast<std::uint64_t>(kProcs) * kIters);
}

} // namespace
} // namespace varan::shmem
