/**
 * @file
 * Unit and property tests for the shared-memory region and the pool
 * allocator of section 3.3.4, including cross-process behaviour.
 */

#include <cstring>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "shmem/futex_lock.h"
#include "shmem/pool.h"
#include "shmem/region.h"

namespace varan::shmem {
namespace {

TEST(RegionTest, CreateMapsZeroedMemory)
{
    auto r = Region::create(1 << 20);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    EXPECT_TRUE(region.valid());
    EXPECT_EQ(region.size(), 1u << 20);
    auto *bytes = static_cast<unsigned char *>(region.base());
    for (std::size_t i = 0; i < 4096; i += 512)
        EXPECT_EQ(bytes[i], 0);
}

TEST(RegionTest, CarveRespectsAlignment)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    Offset a = region.carve(10, 64);
    Offset b = region.carve(100, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_NE(a, 0u); // offset 0 is reserved
}

TEST(RegionTest, OffsetPointerRoundTrip)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    Offset off = region.carve(sizeof(int), alignof(int));
    int *p = region.at<int>(off);
    *p = 1234;
    EXPECT_EQ(region.offsetOf(p), off);
    EXPECT_EQ(*region.at<int>(off), 1234);
}

TEST(RegionTest, SharedAcrossFork)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    Offset off = region.carve(sizeof(std::atomic<int>));
    auto *counter = new (region.bytesAt(off, sizeof(std::atomic<int>)))
        std::atomic<int>(0);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        counter->fetch_add(5);
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(counter->load(), 5);
}

TEST(RegionTest, FromFdMapsSameBytes)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    std::memcpy(static_cast<char *>(region.base()) + 128, "varan", 6);

    Fd dup_fd(::dup(region.fd()));
    ASSERT_TRUE(dup_fd.valid());
    auto second = Region::fromFd(std::move(dup_fd), region.size());
    ASSERT_TRUE(second.ok());
    EXPECT_STREQ(static_cast<char *>(second.value().base()) + 128, "varan");
}

class PoolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto r = Region::create(8 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
        Offset hdr = region_.carve(sizeof(PoolHeader));
        Offset begin = region_.carve(64); // leave alignment padding
        pool_ = PoolAllocator::initialize(&region_, hdr, begin,
                                          region_.size());
    }

    Region region_;
    PoolAllocator pool_;
};

TEST_F(PoolTest, AllocateAndRelease)
{
    Offset p = pool_.allocate(100);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(pool_.refcount(p), 1u);
    EXPECT_EQ(pool_.liveAllocations(), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(PoolTest, PayloadIsWritable)
{
    Offset p = pool_.allocate(512);
    ASSERT_NE(p, 0u);
    void *mem = pool_.pointer(p, 512);
    std::memset(mem, 0x5a, 512);
    EXPECT_EQ(static_cast<unsigned char *>(mem)[511], 0x5a);
    pool_.release(p);
}

TEST_F(PoolTest, SizeClassesRoundUp)
{
    EXPECT_EQ(PoolAllocator::chunkSizeFor(1), 64u);
    EXPECT_EQ(PoolAllocator::chunkSizeFor(64), 64u);
    EXPECT_EQ(PoolAllocator::chunkSizeFor(65), 128u);
    EXPECT_EQ(PoolAllocator::chunkSizeFor(4096), 4096u);
    EXPECT_EQ(PoolAllocator::chunkSizeFor(4097), 8192u);
}

TEST_F(PoolTest, ReusesFreedChunks)
{
    Offset a = pool_.allocate(128);
    pool_.release(a);
    Offset b = pool_.allocate(128);
    EXPECT_EQ(a, b); // LIFO free list hands the same chunk back
    pool_.release(b);
}

TEST_F(PoolTest, RefcountingDelaysFree)
{
    Offset p = pool_.allocate(64, 3); // e.g. three followers
    EXPECT_EQ(pool_.refcount(p), 3u);
    pool_.release(p);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(PoolTest, AddRefExtendsLifetime)
{
    Offset p = pool_.allocate(64, 1);
    pool_.addRef(p, 2);
    pool_.release(p);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(PoolTest, OversizeRequestFails)
{
    // Far beyond the largest size class.
    EXPECT_EQ(pool_.allocate(64u << 20), 0u);
}

TEST_F(PoolTest, ExhaustionReturnsZeroNotCrash)
{
    std::vector<Offset> live;
    for (;;) {
        Offset p = pool_.allocate(1 << 20); // 1 MiB chunks drain fast
        if (p == 0)
            break;
        live.push_back(p);
    }
    EXPECT_GT(live.size(), 0u);
    for (Offset p : live)
        pool_.release(p);
    // After releasing everything the pool must serve requests again.
    Offset p = pool_.allocate(1 << 20);
    EXPECT_NE(p, 0u);
    pool_.release(p);
}

TEST_F(PoolTest, DistinctAllocationsDontOverlap)
{
    Offset a = pool_.allocate(256);
    Offset b = pool_.allocate(256);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    EXPECT_NE(a, b);
    std::memset(pool_.pointer(a, 256), 0x11, 256);
    std::memset(pool_.pointer(b, 256), 0x22, 256);
    EXPECT_EQ(static_cast<unsigned char *>(pool_.pointer(a, 256))[0], 0x11);
    pool_.release(a);
    pool_.release(b);
}

TEST_F(PoolTest, ConcurrentAllocFreeIsSafe)
{
    constexpr int kThreads = 4;
    constexpr int kIters = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([this] {
            std::vector<Offset> mine;
            for (int i = 0; i < kIters; ++i) {
                Offset p = pool_.allocate(64 + (i % 512));
                ASSERT_NE(p, 0u);
                mine.push_back(p);
                if (mine.size() > 8) {
                    pool_.release(mine.front());
                    mine.erase(mine.begin());
                }
            }
            for (Offset p : mine)
                pool_.release(p);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(PoolTest, CrossProcessAllocFree)
{
    // Leader-style allocation with refs for one "follower" process that
    // releases its reference from the other side of a fork.
    Offset p = pool_.allocate(128, 2);
    std::memcpy(pool_.pointer(p, 128), "payload", 8);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // The inherited pool handle resolves through the shared mapping,
        // exactly as a follower process would use it.
        char *data = static_cast<char *>(pool_.pointer(p, 128));
        bool match = std::strcmp(data, "payload") == 0;
        pool_.release(p);
        _exit(match ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_EQ(pool_.refcount(p), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

class ShardedPoolTest : public ::testing::Test
{
  protected:
    static constexpr std::uint32_t kShards = 4;

    void
    SetUp() override
    {
        auto r = Region::create(8 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
        Offset hdr = region_.carve(sizeof(ShardedPoolHeader));
        std::size_t bytes = 0;
        Offset begin = region_.carveRemainder(&bytes);
        pool_ = ShardedPool::initialize(&region_, hdr, begin,
                                        begin + bytes, kShards);
    }

    Region region_;
    ShardedPool pool_;
};

TEST_F(ShardedPoolTest, AllocateReleasePerShard)
{
    EXPECT_EQ(pool_.numShards(), kShards);
    Offset offs[kShards];
    for (std::uint32_t s = 0; s < kShards; ++s) {
        offs[s] = pool_.allocate(s, 200);
        ASSERT_NE(offs[s], 0u);
        EXPECT_EQ(pool_.refcount(offs[s]), 1u);
        // The allocation landed in the shard's own arena.
        EXPECT_EQ(pool_.shardAllocator(s).liveAllocations(), 1u);
    }
    EXPECT_EQ(pool_.liveAllocations(), kShards);
    EXPECT_EQ(pool_.spills(), 0u);
    for (Offset p : offs)
        pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(ShardedPoolTest, StatsTrackCarveAndChunkCounts)
{
    PoolStats before = pool_.stats();
    EXPECT_EQ(before.num_shards, kShards);
    EXPECT_EQ(before.spills, 0u);
    for (std::uint32_t s = 0; s < kShards; ++s) {
        EXPECT_EQ(before.shard[s].bytes_carved, 0u);
        EXPECT_EQ(before.shard[s].live_chunks, 0u);
        EXPECT_EQ(before.shard[s].free_chunks, 0u);
        EXPECT_GT(before.shard[s].bytes_total, 0u);
    }

    // Three allocations on shard 1, one released: the arena carved one
    // segment, two chunks live, the rest of the segment on free lists.
    Offset a = pool_.allocate(1, 100);
    Offset b = pool_.allocate(1, 100);
    Offset c = pool_.allocate(1, 100);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    ASSERT_NE(c, 0u);
    pool_.release(b);

    PoolStats after = pool_.stats();
    EXPECT_GT(after.shard[1].bytes_carved, 0u);
    EXPECT_LE(after.shard[1].bytes_carved, after.shard[1].bytes_total);
    EXPECT_EQ(after.shard[1].live_chunks, 2u);
    EXPECT_GE(after.shard[1].free_chunks, 1u);
    // Untouched arenas stay pristine.
    EXPECT_EQ(after.shard[0].bytes_carved, 0u);
    EXPECT_EQ(after.global.live_chunks, 0u);

    // A spill shows up in both the counter and the global arena.
    Offset spilled = pool_.allocate(kShards + 5, 100);
    ASSERT_NE(spilled, 0u);
    PoolStats with_spill = pool_.stats();
    EXPECT_EQ(with_spill.spills, 1u);
    EXPECT_EQ(with_spill.global.live_chunks, 1u);
    EXPECT_GT(with_spill.global.bytes_carved, 0u);
    pool_.release(a);
    pool_.release(c);
    pool_.release(spilled);
    EXPECT_EQ(pool_.stats().shard[1].live_chunks, 0u);
}

TEST_F(ShardedPoolTest, ReleaseFindsOwningArenaWithoutShardHint)
{
    Offset p = pool_.allocate(2, 512);
    ASSERT_NE(p, 0u);
    ASSERT_EQ(pool_.shardAllocator(2).liveAllocations(), 1u);
    // A consumer that only holds the payload offset (a follower) can
    // release without knowing which tuple allocated.
    pool_.release(p);
    EXPECT_EQ(pool_.shardAllocator(2).liveAllocations(), 0u);
}

TEST_F(ShardedPoolTest, OutOfRangeShardUsesGlobalArena)
{
    // External publishers (record-replay taps) carry no tuple arena.
    bool spilled = false;
    Offset p = pool_.allocate(kShards + 7, 64, 1, &spilled);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(spilled);
    EXPECT_EQ(pool_.globalAllocator().liveAllocations(), 1u);
    EXPECT_EQ(pool_.spills(), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(ShardedPoolTest, ExhaustedShardSpillsToGlobal)
{
    // Drain shard 0 with 256 KiB chunks, then keep allocating: requests
    // must keep succeeding out of the global fallback.
    std::vector<Offset> live;
    bool spilled = false;
    while (true) {
        Offset p = pool_.allocate(0, 1 << 18, 1, &spilled);
        ASSERT_NE(p, 0u) << "fallback exhausted unexpectedly";
        live.push_back(p);
        if (spilled)
            break;
    }
    EXPECT_GT(pool_.spills(), 0u);
    EXPECT_GT(pool_.globalAllocator().liveAllocations(), 0u);
    // Spilled payloads behave like any other payload.
    Offset s = live.back();
    std::memset(pool_.pointer(s, 1 << 18), 0x7e, 1 << 18);
    EXPECT_EQ(pool_.refcount(s), 1u);
    for (Offset p : live)
        pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
    // The drained shard serves again once its chunks return.
    Offset again = pool_.allocate(0, 1 << 18, 1, &spilled);
    ASSERT_NE(again, 0u);
    EXPECT_FALSE(spilled);
    pool_.release(again);
}

TEST_F(ShardedPoolTest, SpillDoesNotCorruptOtherShardsPayloads)
{
    // Another tuple's payloads must survive a neighbour shard running
    // dry and spilling: the fallback is a separate arena, not a raid
    // on someone else's free lists.
    Offset witness = pool_.allocate(1, 4096);
    ASSERT_NE(witness, 0u);
    std::memset(pool_.pointer(witness, 4096), 0xbb, 4096);

    std::vector<Offset> hog;
    bool spilled = false;
    for (int i = 0; i < 4 && !spilled; ) {
        Offset p = pool_.allocate(0, 1 << 18, 1, &spilled);
        ASSERT_NE(p, 0u);
        hog.push_back(p);
        if (spilled) {
            std::memset(pool_.pointer(p, 1 << 18), 0xcc, 1 << 18);
            ++i;
        }
    }
    ASSERT_TRUE(spilled);

    auto *w = static_cast<unsigned char *>(pool_.pointer(witness, 4096));
    for (std::size_t i = 0; i < 4096; ++i)
        ASSERT_EQ(w[i], 0xbb) << "witness byte " << i;
    EXPECT_EQ(pool_.shardAllocator(1).liveAllocations(), 1u);

    for (Offset p : hog)
        pool_.release(p);
    pool_.release(witness);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST_F(ShardedPoolTest, TotalExhaustionReturnsZeroNotCrash)
{
    std::vector<Offset> live;
    for (;;) {
        Offset p = pool_.allocate(3, 1 << 18);
        if (p == 0)
            break; // shard 3 and the global fallback both dry
        live.push_back(p);
    }
    EXPECT_GT(live.size(), 0u);
    for (Offset p : live)
        pool_.release(p);
    Offset p = pool_.allocate(3, 1 << 18);
    EXPECT_NE(p, 0u);
    pool_.release(p);
}

TEST_F(ShardedPoolTest, ConcurrentShardsDoNotInterfere)
{
    constexpr int kIters = 4000;
    std::vector<std::thread> threads;
    std::atomic<int> corrupt{0};
    for (std::uint32_t s = 0; s < kShards; ++s) {
        threads.emplace_back([this, s, &corrupt] {
            const unsigned char tag =
                static_cast<unsigned char>(0x10 + s);
            std::vector<Offset> mine;
            for (int i = 0; i < kIters; ++i) {
                Offset p = pool_.allocate(s, 64 + (i % 256));
                ASSERT_NE(p, 0u);
                std::memset(pool_.pointer(p, 64), tag, 64);
                mine.push_back(p);
                if (mine.size() > 6) {
                    Offset victim = mine.front();
                    mine.erase(mine.begin());
                    auto *b = static_cast<unsigned char *>(
                        pool_.pointer(victim, 64));
                    for (int k = 0; k < 64; ++k) {
                        if (b[k] != tag)
                            corrupt.fetch_add(1);
                    }
                    pool_.release(victim);
                }
            }
            for (Offset p : mine)
                pool_.release(p);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(corrupt.load(), 0);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
    EXPECT_EQ(pool_.spills(), 0u); // arenas sized to never spill here
}

TEST_F(ShardedPoolTest, CrossProcessSpilledPayloadRoundTrip)
{
    // A payload that spilled into the global arena must still be
    // readable and releasable from a forked follower process.
    bool spilled = false;
    Offset p = pool_.allocate(kShards + 1, 128, 2, &spilled);
    ASSERT_NE(p, 0u);
    ASSERT_TRUE(spilled);
    std::memcpy(pool_.pointer(p, 128), "spilled", 8);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        char *data = static_cast<char *>(pool_.pointer(p, 128));
        bool match = std::strcmp(data, "spilled") == 0;
        pool_.release(p);
        _exit(match ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_EQ(pool_.refcount(p), 1u);
    pool_.release(p);
    EXPECT_EQ(pool_.liveAllocations(), 0u);
}

TEST(FutexLockTest, MutualExclusionAcrossThreads)
{
    alignas(64) static FutexLock lock;
    static int counter = 0;
    constexpr int kThreads = 4;
    constexpr int kIters = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kIters; ++i) {
                FutexLockGuard g(lock);
                ++counter;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(FutexLockTest, TryLockFailsWhenHeld)
{
    FutexLock lock;
    EXPECT_TRUE(lock.tryLock());
    EXPECT_FALSE(lock.tryLock());
    lock.unlock();
    EXPECT_TRUE(lock.tryLock());
    lock.unlock();
}

TEST(FutexLockTest, MutualExclusionAcrossProcesses)
{
    auto r = Region::create(1 << 16);
    ASSERT_TRUE(r.ok());
    auto &region = r.value();
    Offset lock_off = region.carve(sizeof(FutexLock));
    Offset cnt_off = region.carve(sizeof(std::uint64_t));
    auto *lock = new (region.bytesAt(lock_off, sizeof(FutexLock)))
        FutexLock();
    auto *counter = region.at<std::uint64_t>(cnt_off);
    *counter = 0;

    constexpr int kProcs = 3;
    constexpr int kIters = 20000;
    std::vector<pid_t> pids;
    for (int p = 0; p < kProcs; ++p) {
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            for (int i = 0; i < kIters; ++i) {
                lock->lock();
                ++*counter; // non-atomic on purpose: the lock protects it
                lock->unlock();
            }
            _exit(0);
        }
        pids.push_back(pid);
    }
    for (pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    EXPECT_EQ(*counter, static_cast<std::uint64_t>(kProcs) * kIters);
}

} // namespace
} // namespace varan::shmem
