/**
 * @file
 * Tests for the x86-64 length disassembler: encodings the rewriter must
 * get right, syscall/int80 discovery, and scan behaviour.
 */

#include <vector>

#include <gtest/gtest.h>

#include "arch/disasm.h"

namespace varan::arch {
namespace {

Insn
decodeBytes(std::initializer_list<std::uint8_t> bytes)
{
    std::vector<std::uint8_t> v(bytes);
    return decode(v.data(), v.size());
}

struct LengthCase {
    const char *name;
    std::vector<std::uint8_t> bytes;
    std::uint8_t length;
    bool branch = false;
    bool rip = false;
};

class LengthTest : public ::testing::TestWithParam<LengthCase>
{
};

TEST_P(LengthTest, DecodesExpectedLength)
{
    const LengthCase &c = GetParam();
    Insn insn = decode(c.bytes.data(), c.bytes.size());
    ASSERT_TRUE(insn.valid()) << c.name;
    EXPECT_EQ(insn.length, c.length) << c.name;
    EXPECT_EQ(insn.is_branch, c.branch) << c.name;
    EXPECT_EQ(insn.rip_relative, c.rip) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    CommonEncodings, LengthTest,
    ::testing::Values(
        LengthCase{"nop", {0x90}, 1},
        LengthCase{"ret", {0xc3}, 1, true},
        LengthCase{"ret_imm16", {0xc2, 0x10, 0x00}, 3, true},
        LengthCase{"push_rax", {0x50}, 1},
        LengthCase{"push_r8", {0x41, 0x50}, 2},
        LengthCase{"pop_rbp", {0x5d}, 1},
        LengthCase{"mov_rr", {0x48, 0x89, 0xc2}, 3},
        LengthCase{"mov_eax_imm", {0xb8, 1, 0, 0, 0}, 5},
        LengthCase{"movabs", {0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8}, 10},
        LengthCase{"mov_rm_imm32",
                   {0x48, 0xc7, 0xc0, 0x27, 0, 0, 0}, 7},
        LengthCase{"lea_sib_disp32",
                   {0x48, 0x8d, 0x04, 0x25, 0, 0, 0, 0}, 8},
        LengthCase{"mov_mem_disp8", {0x48, 0x89, 0x45, 0xf8}, 4},
        LengthCase{"mov_mem_disp32",
                   {0x48, 0x89, 0x85, 0, 1, 0, 0}, 7},
        LengthCase{"add_eax_imm", {0x05, 1, 0, 0, 0}, 5},
        LengthCase{"add_rm_imm8", {0x48, 0x83, 0xc4, 0x38}, 4},
        LengthCase{"test_al_imm8", {0xa8, 0x01}, 2},
        LengthCase{"grp_f6_test", {0xf6, 0xc0, 0x01}, 3},
        LengthCase{"grp_f7_test", {0xf7, 0xc0, 1, 0, 0, 0}, 6},
        LengthCase{"grp_f7_neg", {0xf7, 0xd8}, 2},
        LengthCase{"call_rel32", {0xe8, 0, 0, 0, 0}, 5, true},
        LengthCase{"jmp_rel32", {0xe9, 0, 0, 0, 0}, 5, true},
        LengthCase{"jmp_rel8", {0xeb, 0x01}, 2, true},
        LengthCase{"jcc_rel8", {0x74, 0x05}, 2, true},
        LengthCase{"jcc_rel32", {0x0f, 0x84, 0, 0, 0, 0}, 6, true},
        LengthCase{"jmp_rm_rip",
                   {0xff, 0x25, 0, 0, 0, 0}, 6, true, true},
        LengthCase{"mov_rip_rel",
                   {0x8b, 0x05, 0x10, 0, 0, 0}, 6, false, true},
        LengthCase{"opsize_nop", {0x66, 0x90}, 2},
        LengthCase{"rep_movsb", {0xf3, 0xa4}, 2},
        LengthCase{"cpuid", {0x0f, 0xa2}, 2},
        LengthCase{"rdtsc", {0x0f, 0x31}, 2},
        LengthCase{"movzx", {0x0f, 0xb6, 0xc0}, 3},
        LengthCase{"imul_rr", {0x0f, 0xaf, 0xc2}, 3},
        LengthCase{"setcc", {0x0f, 0x94, 0xc0}, 3},
        LengthCase{"cmov", {0x48, 0x0f, 0x44, 0xc2}, 4},
        LengthCase{"bt_imm8", {0x0f, 0xba, 0xe0, 0x05}, 4},
        LengthCase{"movq_xmm", {0x66, 0x0f, 0x7e, 0xc0}, 4},
        LengthCase{"pshufd", {0x66, 0x0f, 0x70, 0xc0, 0x1b}, 5},
        LengthCase{"vex2_vxorps", {0xc5, 0xf8, 0x57, 0xc0}, 4},
        LengthCase{"vex3_andn", {0xc4, 0xe2, 0x78, 0xf2, 0xc2}, 5},
        LengthCase{"enter", {0xc8, 0x10, 0x00, 0x01}, 4},
        LengthCase{"xchg_rr", {0x48, 0x87, 0xd8}, 3},
        LengthCase{"leave", {0xc9}, 1},
        LengthCase{"int3", {0xcc}, 1},
        LengthCase{"int_imm", {0xcd, 0x03}, 2},
        LengthCase{"syscall", {0x0f, 0x05}, 2},
        LengthCase{"loop", {0xe2, 0xfe}, 2, true}),
    [](const ::testing::TestParamInfo<LengthCase> &info) {
        return info.param.name;
    });

TEST(DecodeTest, SyscallIsRecognised)
{
    Insn insn = decodeBytes({0x0f, 0x05});
    ASSERT_TRUE(insn.valid());
    EXPECT_TRUE(insn.is_syscall);
    EXPECT_FALSE(insn.is_int80);
}

TEST(DecodeTest, Int80IsRecognised)
{
    Insn insn = decodeBytes({0xcd, 0x80});
    ASSERT_TRUE(insn.valid());
    EXPECT_TRUE(insn.is_int80);
    EXPECT_FALSE(insn.is_syscall);
    // Other interrupt numbers are not int80.
    EXPECT_FALSE(decodeBytes({0xcd, 0x03}).is_int80);
}

TEST(DecodeTest, TruncatedBufferFails)
{
    EXPECT_FALSE(decodeBytes({0x48}).valid());
    EXPECT_FALSE(decodeBytes({0xe8, 0x01, 0x02}).valid());
    EXPECT_FALSE(decodeBytes({0x0f}).valid());
}

TEST(DecodeTest, InvalidIn64BitFails)
{
    EXPECT_FALSE(decodeBytes({0x06}).valid()); // push es
    EXPECT_FALSE(decodeBytes({0xce}).valid()); // into
    EXPECT_FALSE(decodeBytes({0x9a, 0, 0, 0, 0, 0, 0}).valid()); // callf
}

TEST(DecodeTest, RipRelativeDetected)
{
    // mov rax, [rip+0x10]
    Insn insn = decodeBytes({0x48, 0x8b, 0x05, 0x10, 0, 0, 0});
    ASSERT_TRUE(insn.valid());
    EXPECT_EQ(insn.length, 7);
    EXPECT_TRUE(insn.rip_relative);
}

TEST(ScanTest, FindsAllSyscallSites)
{
    // mov rax,39; syscall; mov rdi,0; syscall; int 0x80; ret
    std::vector<std::uint8_t> code = {
        0x48, 0xc7, 0xc0, 0x27, 0, 0, 0, // 0: mov rax, 39
        0x0f, 0x05,                      // 7: syscall
        0x48, 0xc7, 0xc7, 0, 0, 0, 0,    // 9: mov rdi, 0
        0x0f, 0x05,                      // 16: syscall
        0xcd, 0x80,                      // 18: int 0x80
        0xc3,                            // 20: ret
    };
    ScanResult r = scan(code.data(), code.size());
    EXPECT_TRUE(r.complete);
    ASSERT_EQ(r.sites.size(), 3u);
    EXPECT_EQ(r.sites[0].offset, 7u);
    EXPECT_FALSE(r.sites[0].is_int80);
    EXPECT_EQ(r.sites[1].offset, 16u);
    EXPECT_EQ(r.sites[2].offset, 18u);
    EXPECT_TRUE(r.sites[2].is_int80);
    EXPECT_EQ(r.decoded_instructions, 6u);
}

TEST(ScanTest, StopsAtUndecodableBytes)
{
    std::vector<std::uint8_t> code = {
        0x90,       // nop
        0x06,       // invalid in 64-bit
        0x0f, 0x05, // never reached
    };
    ScanResult r = scan(code.data(), code.size());
    EXPECT_FALSE(r.complete);
    EXPECT_EQ(r.undecodable_at, 1u);
    EXPECT_TRUE(r.sites.empty());
}

TEST(ScanTest, EmptyBufferIsComplete)
{
    std::uint8_t byte = 0;
    ScanResult r = scan(&byte, 0);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.decoded_instructions, 0u);
}

TEST(ScanTest, DataInCodeDoesNotCrash)
{
    // 64 bytes of pseudo-random data; scan must terminate either way.
    std::vector<std::uint8_t> junk;
    std::uint32_t state = 0xdeadbeef;
    for (int i = 0; i < 64; ++i) {
        state = state * 1664525u + 1013904223u;
        junk.push_back(static_cast<std::uint8_t>(state >> 24));
    }
    ScanResult r = scan(junk.data(), junk.size());
    EXPECT_LE(r.undecodable_at, junk.size());
}

} // namespace
} // namespace varan::arch
