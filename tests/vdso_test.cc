/**
 * @file
 * Tests for virtual-system-call interception (paper section 3.2.1)
 * against the *real* vDSO of the running process: discovery via
 * AT_SYSINFO_EHDR, ELF symbol enumeration, direct invocation of the
 * discovered functions, and — in a forked child, since it rewrites
 * live kernel-provided code — hooking __vdso_clock_gettime so that
 * even libc's clock_gettime lands in our replacement.
 */

#include <ctime>
#include <sys/auxv.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "rewrite/vdso.h"
#include "rewrite/vdso_image.h"

namespace varan::rewrite {
namespace {

bool
vdsoPresent()
{
    return ::getauxval(AT_SYSINFO_EHDR) != 0;
}

TEST(VdsoImageTest, DiscoversTheVdso)
{
    if (!vdsoPresent())
        GTEST_SKIP() << "no vDSO in this environment";
    auto image = VdsoImage::fromAuxv();
    ASSERT_TRUE(image.ok()) << image.error().message();
    EXPECT_NE(image.value().base(), 0u);
    EXPECT_FALSE(image.value().symbols().empty());
}

TEST(VdsoImageTest, ExportsTheClassicTimeFunctions)
{
    if (!vdsoPresent())
        GTEST_SKIP();
    auto image = VdsoImage::fromAuxv();
    ASSERT_TRUE(image.ok());
    // x86-64 vDSOs export these four (paper section 3.2.1).
    EXPECT_NE(image.value().find("__vdso_clock_gettime"), nullptr);
    EXPECT_NE(image.value().find("__vdso_gettimeofday"), nullptr);
    EXPECT_NE(image.value().find("__vdso_time"), nullptr);
    EXPECT_NE(image.value().find("__vdso_getcpu"), nullptr);
}

TEST(VdsoImageTest, DiscoveredClockGettimeWorks)
{
    if (!vdsoPresent())
        GTEST_SKIP();
    auto image = VdsoImage::fromAuxv();
    ASSERT_TRUE(image.ok());
    using ClockFn = int (*)(clockid_t, struct timespec *);
    auto fn = reinterpret_cast<ClockFn>(
        image.value().find("__vdso_clock_gettime"));
    ASSERT_NE(fn, nullptr);

    struct timespec via_vdso = {};
    struct timespec via_libc = {};
    ASSERT_EQ(fn(CLOCK_MONOTONIC, &via_vdso), 0);
    ASSERT_EQ(::clock_gettime(CLOCK_MONOTONIC, &via_libc), 0);
    // Within a second of each other.
    EXPECT_LE(std::labs(via_libc.tv_sec - via_vdso.tv_sec), 1);
}

TEST(VdsoImageTest, RejectsNonElfMemory)
{
    char junk[64] = {'n', 'o', 't', ' ', 'e', 'l', 'f'};
    auto image = VdsoImage::fromMemory(junk);
    EXPECT_FALSE(image.ok());
}

// The replacement installed over __vdso_clock_gettime in the child.
int
fixedClockGettime(clockid_t, struct timespec *ts)
{
    if (ts) {
        ts->tv_sec = 1234567;
        ts->tv_nsec = 42;
    }
    return 0;
}

TEST(VdsoHookTest, HooksTheLiveVdsoClockGettime)
{
    if (!vdsoPresent())
        GTEST_SKIP();
    // Rewriting the live vDSO affects every time call in the process,
    // so do it in a forked child and judge by its exit code.
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        auto image = VdsoImage::fromAuxv();
        if (!image.ok())
            ::_exit(10);
        void *target = image.value().find("__vdso_clock_gettime");
        if (!target)
            ::_exit(11);

        FunctionHooker hooker;
        auto hook = hooker.hook(
            target, reinterpret_cast<void *>(&fixedClockGettime));
        if (!hook.ok())
            ::_exit(12); // e.g. vDSO not mprotect-able here

        // libc's clock_gettime goes through the vDSO: it must now see
        // the replacement's fixed timestamp.
        struct timespec ts = {};
        if (::clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
            ::_exit(13);
        if (ts.tv_sec != 1234567 || ts.tv_nsec != 42)
            ::_exit(14);

        // The paper's trampoline still reaches the original fast path.
        using ClockFn = int (*)(clockid_t, struct timespec *);
        auto original =
            reinterpret_cast<ClockFn>(hook.value().call_original);
        struct timespec real = {};
        if (original(CLOCK_MONOTONIC, &real) != 0)
            ::_exit(15);
        if (real.tv_sec == 1234567)
            ::_exit(16); // trampoline must NOT hit the replacement
        ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    if (WEXITSTATUS(status) == 12)
        GTEST_SKIP() << "vDSO pages not patchable in this sandbox";
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

} // namespace
} // namespace varan::rewrite
