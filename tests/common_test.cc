/**
 * @file
 * Unit tests for the common substrate: fd wrappers, fd passing, futex,
 * clocks, results and logging levels.
 */

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/fd.h"
#include "common/fdpass.h"
#include "common/futex.h"
#include "common/result.h"

namespace varan {
namespace {

bool
fdIsOpen(int fd)
{
    return ::fcntl(fd, F_GETFD) >= 0;
}

TEST(FdTest, ClosesOnDestruction)
{
    int raw = ::open("/dev/null", O_RDONLY);
    ASSERT_GE(raw, 0);
    {
        Fd fd(raw);
        EXPECT_TRUE(fd.valid());
        EXPECT_TRUE(fdIsOpen(raw));
    }
    EXPECT_FALSE(fdIsOpen(raw));
}

TEST(FdTest, MoveTransfersOwnership)
{
    int raw = ::open("/dev/null", O_RDONLY);
    ASSERT_GE(raw, 0);
    Fd a(raw);
    Fd b(std::move(a));
    EXPECT_FALSE(a.valid());
    EXPECT_EQ(b.get(), raw);
    Fd c;
    c = std::move(b);
    EXPECT_FALSE(b.valid());
    EXPECT_EQ(c.get(), raw);
}

TEST(FdTest, ReleaseDisownsWithoutClosing)
{
    int raw = ::open("/dev/null", O_RDONLY);
    ASSERT_GE(raw, 0);
    {
        Fd fd(raw);
        EXPECT_EQ(fd.release(), raw);
    }
    EXPECT_TRUE(fdIsOpen(raw));
    ::close(raw);
}

TEST(FdTest, DuplicateProducesIndependentDescriptor)
{
    Fd fd(::open("/dev/null", O_RDONLY));
    auto dup = fd.duplicate();
    ASSERT_TRUE(dup.ok());
    EXPECT_NE(dup.value().get(), fd.get());
    EXPECT_TRUE(fdIsOpen(dup.value().get()));
}

TEST(FdTest, DuplicateToTargetsSpecificNumber)
{
    Fd fd(::open("/dev/null", O_RDONLY));
    const int target = 345;
    auto dup = fd.duplicateTo(target);
    ASSERT_TRUE(dup.ok());
    EXPECT_EQ(dup.value().get(), target);
}

TEST(SocketPairTest, EndsAreConnected)
{
    auto pair = SocketPair::create(SOCK_STREAM);
    ASSERT_TRUE(pair.ok());
    auto &sp = pair.value();
    const char msg[] = "hello";
    ASSERT_TRUE(writeAll(sp.end(0).get(), msg, sizeof(msg)).isOk());
    char buf[sizeof(msg)] = {};
    ASSERT_TRUE(readAll(sp.end(1).get(), buf, sizeof(buf)).isOk());
    EXPECT_STREQ(buf, msg);
}

TEST(ReadWriteAllTest, ReadAllReportsEofAsEpipe)
{
    auto pair = SocketPair::create(SOCK_STREAM);
    ASSERT_TRUE(pair.ok());
    auto &sp = pair.value();
    sp.end(0).reset(); // close writer
    char buf[4];
    Status st = readAll(sp.end(1).get(), buf, sizeof(buf));
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.error().code, EPIPE);
}

TEST(FdPassTest, TransfersDescriptorAndTag)
{
    auto pair = SocketPair::create(SOCK_STREAM);
    ASSERT_TRUE(pair.ok());
    auto &sp = pair.value();

    Fd file(::open("/dev/zero", O_RDONLY));
    ASSERT_TRUE(file.valid());
    ASSERT_TRUE(sendFd(sp.end(0).get(), file.get(), 0xabcdef).isOk());

    auto got = recvFd(sp.end(1).get());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().tag, 0xabcdefu);
    // The received descriptor must actually work.
    char b;
    EXPECT_EQ(::read(got.value().fd.get(), &b, 1), 1);
    EXPECT_EQ(b, 0);
}

TEST(FdPassTest, WorksAcrossFork)
{
    auto pair = SocketPair::create(SOCK_STREAM);
    ASSERT_TRUE(pair.ok());
    auto &sp = pair.value();

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: open a pipe end and send the read side to the parent.
        int pfd[2];
        if (::pipe(pfd) < 0)
            _exit(1);
        if (::write(pfd[1], "Z", 1) != 1)
            _exit(2);
        if (!sendFd(sp.end(0).get(), pfd[0], 7).isOk())
            _exit(3);
        _exit(0);
    }
    auto got = recvFd(sp.end(1).get());
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().tag, 7u);
    char b = 0;
    EXPECT_EQ(::read(got.value().fd.get(), &b, 1), 1);
    EXPECT_EQ(b, 'Z');
}

TEST(FutexTest, WakeReleasesWaiter)
{
    std::atomic<std::uint32_t> word{0};
    std::atomic<bool> woke{false};
    std::thread waiter([&] {
        while (word.load() == 0) {
            FutexResult r = futexWait(&word, 0, 100000000ULL);
            if (r == FutexResult::ValueChanged || word.load() != 0)
                break;
        }
        woke.store(true);
    });
    sleepNs(10000000); // 10 ms
    word.store(1);
    futexWake(&word, 1);
    waiter.join();
    EXPECT_TRUE(woke.load());
}

TEST(FutexTest, TimedWaitExpires)
{
    std::atomic<std::uint32_t> word{0};
    std::uint64_t t0 = monotonicNs();
    FutexResult r = futexWait(&word, 0, 20000000ULL); // 20 ms
    std::uint64_t dt = monotonicNs() - t0;
    EXPECT_EQ(r, FutexResult::TimedOut);
    EXPECT_GE(dt, 15000000ULL);
}

TEST(FutexTest, ValueMismatchReturnsImmediately)
{
    std::atomic<std::uint32_t> word{5};
    EXPECT_EQ(futexWait(&word, 0, 0), FutexResult::ValueChanged);
}

TEST(ClockTest, MonotonicAdvances)
{
    std::uint64_t a = monotonicNs();
    sleepNs(1000000);
    std::uint64_t b = monotonicNs();
    EXPECT_GT(b, a);
}

TEST(ClockTest, RdtscAdvances)
{
    std::uint64_t a = rdtsc();
    unsigned sink = 0;
    for (int i = 0; i < 1000; ++i)
        sink += static_cast<unsigned>(i);
    asm volatile("" :: "r"(sink));
    EXPECT_GT(rdtsc(), a);
}

TEST(ResultTest, ValueRoundTrip)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(ResultTest, ErrorCarriesErrno)
{
    Result<int> r(Errno{ENOENT});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ENOENT);
    EXPECT_EQ(r.valueOr(7), 7);
    EXPECT_FALSE(r.error().message().empty());
}

TEST(StatusTest, OkAndError)
{
    EXPECT_TRUE(Status::ok().isOk());
    Status err(Errno{EBADF});
    EXPECT_FALSE(err.isOk());
    EXPECT_EQ(err.error().code, EBADF);
}

} // namespace
} // namespace varan
