/**
 * @file
 * Application tests: protocol/data-structure units for each server,
 * native end-to-end serving, and the paper's scenarios as integration
 * tests — C10k servers under the NVX engine, transparent failover
 * while serving (section 5.1), and multi-revision execution with BPF
 * rewrite rules (section 5.2).
 */

#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "apps/cpu_kernels.h"
#include "apps/vcache.h"
#include "apps/vhttpd.h"
#include "apps/vproxy.h"
#include "apps/vqueue.h"
#include "apps/vstore.h"
#include "benchutil/drivers.h"
#include "benchutil/harness.h"
#include "core/nvx.h"
#include "netio/socketio.h"

namespace varan {
namespace {

std::string
uniqueEndpoint(const char *tag)
{
    static std::atomic<int> counter{0};
    return std::string("varan-test-") + tag + "-" +
           std::to_string(::getpid()) + "-" +
           std::to_string(counter.fetch_add(1));
}

core::EngineConfig
engineConfig()
{
    core::EngineConfig config;
    config.ring.capacity = 128;
    config.shm_bytes = 32 << 20;
    config.ring.progress_timeout_ns = 15000000000ULL;
    return config;
}

// --- vstore units ---

TEST(VstoreTest, ParseCommandSplitsWords)
{
    auto args = apps::vstore::parseCommand("SET key  value");
    ASSERT_EQ(args.size(), 3u);
    EXPECT_EQ(args[0], "SET");
    EXPECT_EQ(args[1], "key");
    EXPECT_EQ(args[2], "value");
}

TEST(VstoreTest, ParseCommandHandlesQuotes)
{
    auto args = apps::vstore::parseCommand("SET key \"two words\"");
    ASSERT_EQ(args.size(), 3u);
    EXPECT_EQ(args[2], "two words");
}

TEST(VstoreTest, SetGetRoundTrip)
{
    apps::vstore::Store store;
    EXPECT_EQ(store.apply({"SET", "a", "1"}), "+OK\r\n");
    EXPECT_EQ(store.apply({"GET", "a"}), "$1\r\n1\r\n");
    EXPECT_EQ(store.apply({"GET", "missing"}), "$-1\r\n");
}

TEST(VstoreTest, IncrCountsAndRejectsGarbage)
{
    apps::vstore::Store store;
    EXPECT_EQ(store.apply({"INCR", "n"}), ":1\r\n");
    EXPECT_EQ(store.apply({"INCR", "n"}), ":2\r\n");
    store.apply({"SET", "s", "abc"});
    EXPECT_NE(store.apply({"INCR", "s"}).find("-ERR"), std::string::npos);
}

TEST(VstoreTest, HashCommands)
{
    apps::vstore::Store store;
    EXPECT_EQ(store.apply({"HSET", "h", "f1", "v1"}), ":1\r\n");
    EXPECT_EQ(store.apply({"HSET", "h", "f1", "v2"}), ":0\r\n");
    EXPECT_EQ(store.apply({"HGET", "h", "f1"}), "$2\r\nv2\r\n");
    std::string reply = store.apply({"HMGET", "h", "f1", "nope"});
    EXPECT_EQ(reply, "*2\r\n$2\r\nv2\r\n$-1\r\n");
}

TEST(VstoreTest, ListCommands)
{
    apps::vstore::Store store;
    store.apply({"LPUSH", "l", "a"});
    store.apply({"LPUSH", "l", "b"});
    EXPECT_EQ(store.apply({"LRANGE", "l", "0", "-1"}),
              "*2\r\n$1\r\nb\r\n$1\r\na\r\n");
}

TEST(VstoreTest, DelRemovesAcrossTypes)
{
    apps::vstore::Store store;
    store.apply({"SET", "k", "v"});
    store.apply({"HSET", "h", "f", "v"});
    EXPECT_EQ(store.apply({"DEL", "k", "h", "none"}), ":2\r\n");
    EXPECT_EQ(store.size(), 0u);
}

// --- vqueue units ---

TEST(VqueueTest, PutReserveDeleteLifecycle)
{
    apps::vqueue::JobQueue queue;
    std::uint64_t id1 = queue.put("one");
    std::uint64_t id2 = queue.put("two");
    EXPECT_EQ(queue.readyCount(), 2u);
    apps::vqueue::Job job;
    ASSERT_TRUE(queue.reserve(&job));
    EXPECT_EQ(job.id, id1);
    EXPECT_EQ(job.data, "one");
    EXPECT_EQ(queue.reservedCount(), 1u);
    EXPECT_TRUE(queue.erase(id1));
    EXPECT_TRUE(queue.erase(id2)); // still ready
    EXPECT_FALSE(queue.erase(99));
    EXPECT_EQ(queue.readyCount(), 0u);
}

// --- vhttpd units ---

TEST(VhttpdTest, ParsesRequestLineAndKeepAlive)
{
    auto req = apps::vhttpd::parseRequest(
        "GET /page HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_TRUE(req.complete);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/page");
    EXPECT_TRUE(req.keep_alive);

    auto close_req = apps::vhttpd::parseRequest(
        "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(close_req.keep_alive);
}

TEST(VhttpdTest, IncompleteRequestIsNotComplete)
{
    auto req = apps::vhttpd::parseRequest("GET / HTTP/1.1\r\nHost:");
    EXPECT_FALSE(req.complete);
}

TEST(VhttpdTest, ResponseCarriesContentLength)
{
    std::string response =
        apps::vhttpd::makeResponse(200, "OK", "hello", true);
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
    EXPECT_NE(response.find("keep-alive"), std::string::npos);
    EXPECT_EQ(response.substr(response.size() - 5), "hello");
}

// --- vcache units ---

TEST(VcacheTest, CacheSetGetDelete)
{
    apps::vcache::Cache cache;
    cache.set("k", 7, "data");
    apps::vcache::Entry entry;
    ASSERT_TRUE(cache.get("k", &entry));
    EXPECT_EQ(entry.flags, 7u);
    EXPECT_EQ(entry.data, "data");
    EXPECT_TRUE(cache.erase("k"));
    EXPECT_FALSE(cache.get("k", &entry));
    EXPECT_FALSE(cache.erase("k"));
}

// --- CPU kernels ---

TEST(CpuKernelsTest, SuitesHaveTwelveEach)
{
    EXPECT_EQ(apps::cpu::cpu2000Suite().size(), 12u);
    EXPECT_EQ(apps::cpu::cpu2006Suite().size(), 12u);
}

TEST(CpuKernelsTest, KernelsAreDeterministic)
{
    for (const auto &kernel : apps::cpu::cpu2000Suite()) {
        std::uint64_t a = kernel.run(1);
        std::uint64_t b = kernel.run(1);
        EXPECT_EQ(a, b) << kernel.name;
    }
    for (const auto &kernel : apps::cpu::cpu2006Suite()) {
        std::uint64_t a = kernel.run(1);
        std::uint64_t b = kernel.run(1);
        EXPECT_EQ(a, b) << kernel.name;
    }
}

// --- native end-to-end serving ---

TEST(ServeNativeTest, VstoreServesClients)
{
    std::string endpoint = uniqueEndpoint("store");
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        apps::vstore::Options options;
        options.endpoint = endpoint;
        ::_exit(apps::vstore::serve(options));
    }
    auto probe = bench::kvCommandLatency(endpoint, "PING");
    EXPECT_TRUE(probe.ok);
    EXPECT_EQ(probe.reply, "+PONG\r\n");
    auto result = bench::kvBench(endpoint, 2, 50);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.total_ops, 100);
    bench::kvShutdown(endpoint);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeNativeTest, VhttpdServesKeepAlive)
{
    std::string endpoint = uniqueEndpoint("httpd");
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        apps::vhttpd::Options options;
        options.endpoint = endpoint;
        ::_exit(apps::vhttpd::serve(options));
    }
    auto result = bench::httpBench(endpoint, 2, 20);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.total_ops, 40);
    bench::httpShutdown(endpoint);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeNativeTest, VqueueHandlesJobs)
{
    std::string endpoint = uniqueEndpoint("queue");
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        apps::vqueue::Options options;
        options.endpoint = endpoint;
        ::_exit(apps::vqueue::serve(options));
    }
    auto result = bench::queueBench(endpoint, 2, 25, 256);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.total_ops, 50);
    bench::queueShutdown(endpoint);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeNativeTest, VcacheThreadsServe)
{
    std::string endpoint = uniqueEndpoint("cache");
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        apps::vcache::Options options;
        options.endpoint = endpoint;
        options.workers = 2;
        ::_exit(apps::vcache::serve(options));
    }
    auto result = bench::cacheBench(endpoint, 2, 50, 50);
    EXPECT_TRUE(result.ok);
    bench::cacheShutdown(endpoint);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeNativeTest, VproxyPreforkServes)
{
    std::string endpoint = uniqueEndpoint("proxy");
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        apps::vproxy::Options options;
        options.endpoint = endpoint;
        options.workers = 2;
        ::_exit(apps::vproxy::serve(options));
    }
    auto result = bench::httpBench(endpoint, 2, 15);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.total_ops, 30);
    bench::httpShutdown(endpoint);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

// --- servers under the NVX engine ---

TEST(ServeNvxTest, VstoreWithTwoFollowers)
{
    std::string endpoint = uniqueEndpoint("nvx-store");
    core::Nvx nvx(engineConfig());
    auto server = [endpoint]() -> int {
        apps::vstore::Options options;
        options.endpoint = endpoint;
        return apps::vstore::serve(options);
    };
    ASSERT_TRUE(nvx.start({server, server, server}).isOk());

    auto result = bench::kvBench(endpoint, 2, 50);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.total_ops, 100);
    bench::kvShutdown(endpoint);

    auto results = nvx.waitFor(30000000000ULL);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 0);
    }
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
    EXPECT_GT(nvx.eventsStreamed(), 100u);
}

TEST(ServeNvxTest, VhttpdWithOneFollower)
{
    std::string endpoint = uniqueEndpoint("nvx-httpd");
    core::Nvx nvx(engineConfig());
    auto server = [endpoint]() -> int {
        apps::vhttpd::Options options;
        options.endpoint = endpoint;
        return apps::vhttpd::serve(options);
    };
    ASSERT_TRUE(nvx.start({server, server}).isOk());
    auto result = bench::httpBench(endpoint, 2, 25);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.total_ops, 50);
    bench::httpShutdown(endpoint);
    auto results = nvx.waitFor(30000000000ULL);
    for (const auto &r : results)
        EXPECT_FALSE(r.crashed);
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
}

TEST(ServeNvxTest, VcacheMultithreadedUnderEngine)
{
    std::string endpoint = uniqueEndpoint("nvx-cache");
    core::Nvx nvx(engineConfig());
    auto server = [endpoint]() -> int {
        apps::vcache::Options options;
        options.endpoint = endpoint;
        options.workers = 2;
        return apps::vcache::serve(options);
    };
    ASSERT_TRUE(nvx.start({server, server}).isOk());
    auto result = bench::cacheBench(endpoint, 2, 30, 40);
    EXPECT_TRUE(result.ok);
    bench::cacheShutdown(endpoint);
    auto results = nvx.waitFor(30000000000ULL);
    for (const auto &r : results)
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
}

TEST(ServeNvxTest, TransparentFailoverWhileServing)
{
    // Section 5.1: run a buggy revision as leader; the HMGET request
    // that crashes it is answered by the promoted follower, and
    // service continues without interruption.
    std::string endpoint = uniqueEndpoint("nvx-failover");
    core::Nvx nvx(engineConfig());
    auto buggy = [endpoint]() -> int {
        apps::vstore::Options options;
        options.endpoint = endpoint;
        options.revision.crash_on_hmget = true; // revision 7fb16ba
        return apps::vstore::serve(options);
    };
    auto healthy = [endpoint]() -> int {
        apps::vstore::Options options;
        options.endpoint = endpoint;
        return apps::vstore::serve(options);
    };
    // Buggy revision leads; healthy revision follows.
    ASSERT_TRUE(nvx.start({buggy, healthy}).isOk());

    auto before = bench::kvCommandLatency(endpoint, "SET k v");
    ASSERT_TRUE(before.ok);
    ASSERT_EQ(before.reply, "+OK\r\n");

    // The request that kills the buggy leader.
    auto crash = bench::kvCommandLatency(endpoint, "HMGET h f");
    EXPECT_TRUE(crash.ok) << "request lost during failover";
    EXPECT_EQ(crash.reply.substr(0, 1), "*");

    // Subsequent requests flow as if nothing happened — served by the
    // promoted follower over the same connection-less protocol.
    auto after = bench::kvCommandLatency(endpoint, "GET k");
    EXPECT_TRUE(after.ok);
    EXPECT_EQ(after.reply, "$1\r\nv\r\n");

    bench::kvShutdown(endpoint);
    auto results = nvx.waitFor(30000000000ULL);
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_EQ(nvx.currentLeader(), 1);
}

TEST(ServeNvxTest, MultiRevisionHttpdWithRewriteRules)
{
    // Section 5.2: revision 2435 (leader) with revision 2436
    // (follower), which makes two additional syscalls (getuid,
    // getgid); the Listing 1 rule resolves the divergence.
    std::string endpoint = uniqueEndpoint("nvx-multirev");
    core::EngineConfig config = engineConfig();
    config.rewrite_rules.push_back(
        "ld event[0]\n"
        "jeq #108, getegid /* __NR_getegid */\n"
        "jeq #2, open /* __NR_open */\n"
        "jmp bad\n"
        "getegid:\n"
        "ld [0]\n"
        "jeq #102, good /* __NR_getuid */\n"
        "open:\n"
        "ld [0]\n"
        "jeq #104, good /* __NR_getgid */\n"
        "bad: ret #0\n"
        "good: ret #0x7fff0000\n");

    // The filter resolves the second divergence (getgid vs open) only
    // when the permission checks precede an actual open — lighttpd's
    // file-serving behaviour, reproduced via docroot_file.
    char docroot[] = "/tmp/varan-docroot-XXXXXX";
    int doc = ::mkstemp(docroot);
    ASSERT_GE(doc, 0);
    ASSERT_EQ(::write(doc, "<html>hi</html>", 15), 15);
    ::close(doc);
    std::string doc_path(docroot);

    auto rev2435 = [endpoint, doc_path]() -> int {
        apps::vhttpd::Options o;
        o.endpoint = endpoint;
        o.docroot_file = doc_path;
        o.revision.issetugid_checks = false;
        return apps::vhttpd::serve(o);
    };
    auto rev2436 = [endpoint, doc_path]() -> int {
        apps::vhttpd::Options o;
        o.endpoint = endpoint;
        o.docroot_file = doc_path;
        o.revision.issetugid_checks = true; // +getuid +getgid
        return apps::vhttpd::serve(o);
    };

    core::Nvx nvx(config);
    ASSERT_TRUE(nvx.start({rev2435, rev2436}).isOk());
    auto result = bench::httpBench(endpoint, 1, 10);
    EXPECT_TRUE(result.ok);
    bench::httpShutdown(endpoint);
    auto results = nvx.waitFor(30000000000ULL);
    ::unlink(doc_path.c_str());
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed) << "rule failed to resolve";
    EXPECT_GT(nvx.divergencesResolved(), 0u);
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
}

TEST(ServeNvxTest, MultiRevisionWithoutRulesKillsFollower)
{
    // The same revision pair minus the rule: classic lockstep-style
    // failure, the follower dies on its first extra getuid.
    std::string endpoint = uniqueEndpoint("nvx-norules");
    auto rev2435 = [endpoint]() -> int {
        apps::vhttpd::Options o;
        o.endpoint = endpoint;
        return apps::vhttpd::serve(o);
    };
    auto rev2436 = [endpoint]() -> int {
        apps::vhttpd::Options o;
        o.endpoint = endpoint;
        o.revision.issetugid_checks = true;
        return apps::vhttpd::serve(o);
    };
    core::Nvx nvx(engineConfig());
    ASSERT_TRUE(nvx.start({rev2435, rev2436}).isOk());
    auto result = bench::httpBench(endpoint, 1, 5);
    EXPECT_TRUE(result.ok); // leader keeps serving
    bench::httpShutdown(endpoint);
    auto results = nvx.waitFor(30000000000ULL);
    EXPECT_FALSE(results[0].crashed);
    EXPECT_TRUE(results[1].crashed);
    EXPECT_GE(nvx.divergencesFatal(), 1u);
}

} // namespace
} // namespace varan
