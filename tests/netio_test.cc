/**
 * @file
 * Tests for the netio substrate: abstract-socket listeners, blocking
 * send/recv helpers and the epoll event loop (the C10k servers' engine
 * room). Everything runs natively here; the NVX path is exercised by
 * the app integration tests.
 */

#include <array>
#include <csignal>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "netio/eventloop.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"

namespace varan::netio {
namespace {

std::string
uniqueName(const char *tag)
{
    static std::atomic<int> counter{0};
    return std::string("varan-netio-") + tag + "-" +
           std::to_string(::getpid()) + "-" +
           std::to_string(counter.fetch_add(1));
}

TEST(SocketIoTest, AbstractListenAndConnect)
{
    std::string name = uniqueName("basic");
    auto listener = listenAbstract(name);
    ASSERT_TRUE(listener.ok()) << listener.error().message();

    std::thread client([&] {
        auto conn = connectAbstract(name);
        ASSERT_TRUE(conn.ok());
        ASSERT_TRUE(sendAll(conn.value(), "ping", 4).isOk());
        auto reply = recvUntil(conn.value(), "!");
        EXPECT_EQ(reply.valueOr(""), "pong!");
        sys::vclose(conn.value());
    });

    long fd = acceptConnection(listener.value(), false);
    ASSERT_GE(fd, 0);
    auto got = recvSome(static_cast<int>(fd));
    EXPECT_EQ(got.valueOr(""), "ping");
    ASSERT_TRUE(sendAll(static_cast<int>(fd), "pong!", 5).isOk());
    client.join();
    sys::vclose(static_cast<int>(fd));
    sys::vclose(listener.value());
}

TEST(SocketIoTest, ConnectToMissingEndpointFails)
{
    auto conn = connectAbstract(uniqueName("missing"), 200);
    EXPECT_FALSE(conn.ok());
}

TEST(SocketIoTest, DuplicateBindFails)
{
    std::string name = uniqueName("dup");
    auto first = listenAbstract(name);
    ASSERT_TRUE(first.ok());
    auto second = listenAbstract(name);
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, EADDRINUSE);
    sys::vclose(first.value());
}

TEST(SocketIoTest, TcpLoopbackRoundTrip)
{
    // Pick an uncommon fixed port; retry a couple in case of conflicts.
    int listen_fd = -1;
    std::uint16_t port = 0;
    for (std::uint16_t candidate : {38741, 38743, 38747}) {
        auto listener = listenTcp(candidate);
        if (listener.ok()) {
            listen_fd = listener.value();
            port = candidate;
            break;
        }
    }
    if (listen_fd < 0)
        GTEST_SKIP() << "no free loopback port";

    std::thread client([&] {
        auto conn = connectTcp(port);
        ASSERT_TRUE(conn.ok());
        ASSERT_TRUE(sendAll(conn.value(), "tcp", 3).isOk());
        sys::vclose(conn.value());
    });
    long fd = acceptConnection(listen_fd, false);
    ASSERT_GE(fd, 0);
    auto got = recvSome(static_cast<int>(fd));
    EXPECT_EQ(got.valueOr(""), "tcp");
    client.join();
    sys::vclose(static_cast<int>(fd));
    sys::vclose(listen_fd);
}

TEST(SocketIoTest, RecvUntilStopsAtDelimiterOrEof)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(sendAll(fds[0], "line one\r\nrest", 14).isOk());
    auto got = recvUntil(fds[1], "\r\n");
    EXPECT_NE(got.valueOr("").find("line one\r\n"), std::string::npos);
    ::close(fds[0]); // EOF for the second read
    auto rest = recvUntil(fds[1], "\r\n");
    EXPECT_TRUE(rest.ok()); // returns what it has at EOF
    ::close(fds[1]);
}

TEST(EventLoopTest, DispatchesReadEvents)
{
    EventLoop loop;
    ASSERT_TRUE(loop.valid());
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    int hits = 0;
    ASSERT_TRUE(loop.add(fds[0], EPOLLIN, [&](std::uint32_t events) {
                        EXPECT_TRUE(events & EPOLLIN);
                        char c;
                        sys::vread(fds[0], &c, 1);
                        ++hits;
                    })
                    .isOk());
    EXPECT_EQ(loop.runOnce(0), 0); // nothing pending
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    EXPECT_EQ(loop.runOnce(1000), 1);
    EXPECT_EQ(hits, 1);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(EventLoopTest, RemoveStopsDispatch)
{
    EventLoop loop;
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    int hits = 0;
    loop.add(fds[0], EPOLLIN, [&](std::uint32_t) { ++hits; });
    loop.remove(fds[0]);
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    loop.runOnce(100);
    EXPECT_EQ(hits, 0);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(EventLoopTest, StopFromHandlerEndsRun)
{
    EventLoop loop;
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    loop.add(fds[0], EPOLLIN, [&](std::uint32_t) {
        char c;
        sys::vread(fds[0], &c, 1);
        loop.stop();
    });
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    loop.run(10); // returns because the handler stops it
    SUCCEED();
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(EventLoopTest, HandlerMayRemoveItselfDuringDispatch)
{
    // The wire shipper and every server close descriptors from inside
    // their own handlers. The erase must be deferred: destroying the
    // std::function that is currently executing frees the closure under
    // its own feet.
    EventLoop loop;
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    int hits = 0;
    // Big capture so the closure is heap-allocated: a premature free is
    // far more likely to be caught by ASan/heap canaries.
    std::array<std::uint64_t, 16> ballast = {};
    ballast[7] = 77;
    loop.add(fds[0], EPOLLIN, [&, ballast](std::uint32_t) {
        loop.remove(fds[0]); // self-removal mid-dispatch
        EXPECT_EQ(ballast[7], 77u); // closure must still be alive
        ++hits;
    });
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    loop.runOnce(1000);
    EXPECT_EQ(hits, 1);
    // Removed for real: later readiness does not dispatch.
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    loop.runOnce(100);
    EXPECT_EQ(hits, 1);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(EventLoopTest, HandlerMayRemoveSiblingDuringDispatch)
{
    // When two fds fire in one epoll batch and the first handler
    // removes the second, the second must not run in the same pass.
    EventLoop loop;
    int a[2], b[2];
    ASSERT_EQ(::pipe(a), 0);
    ASSERT_EQ(::pipe(b), 0);
    int a_hits = 0, b_hits = 0;
    loop.add(a[0], EPOLLIN, [&](std::uint32_t) {
        char c;
        sys::vread(a[0], &c, 1);
        ++a_hits;
        loop.remove(b[0]);
    });
    loop.add(b[0], EPOLLIN, [&](std::uint32_t) {
        char c;
        sys::vread(b[0], &c, 1);
        ++b_hits;
        loop.remove(a[0]);
    });
    ASSERT_EQ(::write(a[1], "x", 1), 1);
    ASSERT_EQ(::write(b[1], "x", 1), 1);
    // Both ready in one pass: exactly one handler runs, whichever the
    // kernel ordered first, and it suppresses the other.
    loop.runOnce(1000);
    EXPECT_EQ(a_hits + b_hits, 1);
    loop.runOnce(100);
    EXPECT_EQ(a_hits + b_hits, 1); // both unregistered by now
    for (int fd : {a[0], a[1], b[0], b[1]})
        ::close(fd);
}

TEST(EventLoopTest, ReAddAfterSelfRemovalTakesEffectNextPass)
{
    EventLoop loop;
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    int first = 0, second = 0;
    loop.add(fds[0], EPOLLIN, [&](std::uint32_t) {
        char c;
        sys::vread(fds[0], &c, 1);
        ++first;
        loop.remove(fds[0]);
        loop.add(fds[0], EPOLLIN, [&](std::uint32_t) {
            char c2;
            sys::vread(fds[0], &c2, 1);
            ++second;
        });
    });
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    loop.runOnce(1000);
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 0);
    ASSERT_EQ(::write(fds[1], "y", 1), 1);
    loop.runOnce(1000);
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1); // replacement installed after the pass
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(EventLoopTest, DeliversHupWhenWriterCloses)
{
    // EPOLLHUP arrives even though only EPOLLIN was subscribed — the
    // close paths in every server (and the shipper's link-drop
    // detection) rely on it.
    EventLoop loop;
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::uint32_t seen = 0;
    loop.add(fds[0], EPOLLIN, [&](std::uint32_t events) { seen |= events; });
    ::close(fds[1]);
    loop.runOnce(1000);
    EXPECT_TRUE(seen & EPOLLHUP);
    loop.remove(fds[0]);
    ::close(fds[0]);
}

TEST(EventLoopTest, DeliversErrOnBrokenPipeWriter)
{
    // A write-side registration on a pipe whose reader vanished raises
    // EPOLLERR.
    EventLoop loop;
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::uint32_t seen = 0;
    loop.add(fds[1], EPOLLOUT, [&](std::uint32_t events) {
        seen |= events;
        loop.remove(fds[1]); // one shot is enough
    });
    ::close(fds[0]);
    loop.runOnce(1000);
    EXPECT_TRUE(seen & EPOLLERR);
    ::close(fds[1]);
}

TEST(SocketIoTest, SendAllSurvivesPartialWritesUnderBackpressure)
{
    // Shrink the send buffer so one sendAll spans many partial writes;
    // a slow reader drains concurrently. Every byte must arrive intact
    // and in order — the backpressure path the wire shipper leans on.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    int small = 4096;
    ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small,
                           sizeof(small)),
              0);

    const std::size_t total = 1 << 20; // far beyond the buffer
    std::string payload(total, '\0');
    for (std::size_t i = 0; i < total; ++i)
        payload[i] = static_cast<char>('a' + (i % 23));

    std::string received;
    std::thread reader([&] {
        char chunk[8192];
        while (received.size() < total) {
            ssize_t n = ::read(fds[1], chunk, sizeof(chunk));
            ASSERT_GT(n, 0);
            received.append(chunk, static_cast<std::size_t>(n));
        }
    });
    EXPECT_TRUE(sendAll(fds[0], payload.data(), payload.size()).isOk());
    reader.join();
    EXPECT_EQ(received, payload);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(SocketIoTest, SendAllReportsGoneReceiver)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[1]);
    // The first write may land in the buffer; keep writing until the
    // kernel reports the peer is gone. (SIGPIPE is suppressed by the
    // harness in bench contexts; here the raw -EPIPE path matters, so
    // ignore it for this process too.)
    ::signal(SIGPIPE, SIG_IGN);
    std::string chunk(64 << 10, 'x');
    Status status = Status::ok();
    for (int i = 0; i < 64 && status.isOk(); ++i)
        status = sendAll(fds[0], chunk.data(), chunk.size());
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.error().code, EPIPE);
    ::close(fds[0]);
}

TEST(EventLoopTest, MultipleFdsEachReachTheirHandler)
{
    EventLoop loop;
    int a[2], b[2];
    ASSERT_EQ(::pipe(a), 0);
    ASSERT_EQ(::pipe(b), 0);
    std::string order;
    loop.add(a[0], EPOLLIN, [&](std::uint32_t) {
        char c;
        sys::vread(a[0], &c, 1);
        order += 'a';
    });
    loop.add(b[0], EPOLLIN, [&](std::uint32_t) {
        char c;
        sys::vread(b[0], &c, 1);
        order += 'b';
    });
    ASSERT_EQ(::write(a[1], "x", 1), 1);
    ASSERT_EQ(::write(b[1], "x", 1), 1);
    while (order.size() < 2)
        loop.runOnce(1000);
    std::sort(order.begin(), order.end());
    EXPECT_EQ(order, "ab");
    for (int fd : {a[0], a[1], b[0], b[1]})
        ::close(fd);
}

} // namespace
} // namespace varan::netio
