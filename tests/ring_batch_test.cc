/**
 * @file
 * Tests for the batched ring-buffer fast path: publishBatch claims a
 * contiguous sequence range with one synchronization round, consumeBatch
 * and pollBatch drain runs of events with a single cursor advance. Also
 * covers the SPSC queue batch operations and the batched event pump.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "ring/event.h"
#include "ring/event_pump.h"
#include "ring/ring_buffer.h"
#include "shmem/region.h"

namespace varan::ring {
namespace {

using shmem::Offset;
using shmem::Region;

Event
makeEvent(std::uint64_t ts, std::uint16_t nr, std::int64_t result)
{
    Event e = {};
    e.timestamp = ts;
    e.type = EventType::Syscall;
    e.nr = nr;
    e.result = result;
    return e;
}

std::vector<Event>
makeRun(std::uint64_t first_ts, std::size_t count)
{
    std::vector<Event> events;
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        events.push_back(makeEvent(first_ts + i, 0,
                                   static_cast<std::int64_t>(first_ts + i)));
    return events;
}

class RingBatchTest : public ::testing::Test
{
  protected:
    void
    init(std::uint32_t capacity)
    {
        auto r = Region::create(4 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
        Offset off = region_.carve(RingBuffer::bytesRequired(capacity));
        ring_ = RingBuffer::initialize(&region_, off, capacity);
    }

    Region region_;
    RingBuffer ring_;
};

TEST_F(RingBatchTest, BatchRoundTrip)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    std::vector<Event> in = makeRun(1, 10);
    EXPECT_EQ(ring_.publishBatch(in), 10u);
    EXPECT_EQ(ring_.headSeq(), 10u);

    Event out[16];
    ASSERT_EQ(ring_.consumeBatch(id, out, 16), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(out[i].timestamp, i + 1);
        EXPECT_EQ(out[i].result, static_cast<std::int64_t>(i + 1));
    }
    EXPECT_EQ(ring_.lag(id), 0u);
    EXPECT_EQ(ring_.pollBatch(id, out, 16), 0u); // drained
}

TEST_F(RingBatchTest, ConsumeBatchHonoursMax)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 12)), 12u);

    Event out[16];
    ASSERT_EQ(ring_.consumeBatch(id, out, 5), 5u);
    EXPECT_EQ(out[4].timestamp, 5u);
    EXPECT_EQ(ring_.lag(id), 7u);
    ASSERT_EQ(ring_.pollBatch(id, out, 16), 7u);
    EXPECT_EQ(out[0].timestamp, 6u);
    EXPECT_EQ(out[6].timestamp, 12u);
}

TEST_F(RingBatchTest, PartialBatchWrapAroundAtCapacityBoundary)
{
    init(8);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    // Advance the cursor so the next batch straddles the wrap point:
    // 5 consumed of 5 published leaves head at 5; a batch of 8 then
    // occupies slots 5,6,7,0,1,2,3,4.
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 5)), 5u);
    Event out[8];
    ASSERT_EQ(ring_.consumeBatch(id, out, 8), 5u);

    ASSERT_EQ(ring_.publishBatch(makeRun(6, 8)), 8u);
    ASSERT_EQ(ring_.consumeBatch(id, out, 8), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].timestamp, 6 + i);
}

TEST_F(RingBatchTest, BatchLargerThanCapacityChunks)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    constexpr std::size_t kTotal = 1000;

    std::thread consumer([&] {
        Event out[4];
        WaitSpec w = WaitSpec::withTimeout(10000000000ULL);
        w.spin_iterations = 64;
        std::uint64_t next = 1;
        while (next <= kTotal) {
            std::size_t n = ring_.consumeBatch(id, out, 4, w);
            ASSERT_GT(n, 0u);
            for (std::size_t i = 0; i < n; ++i, ++next)
                ASSERT_EQ(out[i].timestamp, next);
        }
    });

    WaitSpec pw = WaitSpec::withTimeout(10000000000ULL);
    // A single call with a batch 250x the ring capacity must chunk
    // internally and deliver everything in order.
    EXPECT_EQ(ring_.publishBatch(makeRun(1, kTotal), pw), kTotal);
    consumer.join();
}

TEST_F(RingBatchTest, BatchAndSingleEventInterleave)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    ASSERT_TRUE(ring_.publish(makeEvent(1, 0, 0)));
    ASSERT_EQ(ring_.publishBatch(makeRun(2, 4)), 4u);
    ASSERT_TRUE(ring_.publish(makeEvent(6, 0, 0)));
    ASSERT_EQ(ring_.publishBatch(makeRun(7, 3)), 3u);

    // Mixed draining: single poll, then a batch, then singles.
    Event out[16];
    ASSERT_TRUE(ring_.poll(id, &out[0]));
    EXPECT_EQ(out[0].timestamp, 1u);
    ASSERT_EQ(ring_.consumeBatch(id, out, 5), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(out[i].timestamp, 2 + i);
    for (std::uint64_t ts = 7; ts <= 9; ++ts) {
        ASSERT_TRUE(ring_.consume(id, &out[0],
                                  WaitSpec::withTimeout(1000000000ULL)));
        EXPECT_EQ(out[0].timestamp, ts);
    }
}

TEST_F(RingBatchTest, SlowConsumerBackpressureUnderBatching)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    // Consumer never drains: only the free capacity is published before
    // the deadline expires, and the count reports the partial progress.
    WaitSpec w = WaitSpec::withTimeout(30000000); // 30 ms
    w.spin_iterations = 16;
    EXPECT_EQ(ring_.publishBatch(makeRun(1, 10), w), 4u);
    EXPECT_EQ(ring_.lag(id), 4u);

    // Draining two slots lets exactly two more events through.
    Event out[4];
    ASSERT_EQ(ring_.consumeBatch(id, out, 2), 2u);
    EXPECT_EQ(ring_.publishBatch(makeRun(5, 10), w), 2u);

    // Full drain: order survived the partial publishes.
    ASSERT_EQ(ring_.consumeBatch(id, out, 4), 4u);
    EXPECT_EQ(out[0].timestamp, 3u);
    EXPECT_EQ(out[3].timestamp, 6u);
}

TEST_F(RingBatchTest, PublishBatchTimesOutAtZeroWhenFull)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 4)), 4u);
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 16;
    EXPECT_EQ(ring_.publishBatch(makeRun(5, 3), w), 0u);
}

TEST_F(RingBatchTest, ConsumeBatchTimesOutOnSilence)
{
    init(8);
    int id = ring_.attachConsumer();
    Event out[8];
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 8;
    std::uint64_t t0 = monotonicNs();
    EXPECT_EQ(ring_.consumeBatch(id, out, 8, w), 0u);
    EXPECT_GE(monotonicNs() - t0, 15000000ULL);
}

TEST_F(RingBatchTest, EveryConsumerSeesEveryBatchedEvent)
{
    init(16);
    constexpr int kConsumers = 3;
    constexpr std::uint64_t kEvents = 6000;
    int ids[kConsumers];
    for (int i = 0; i < kConsumers; ++i) {
        ids[i] = ring_.attachConsumer();
        ASSERT_GE(ids[i], 0);
    }

    std::vector<std::thread> consumers;
    std::atomic<int> failures{0};
    for (int i = 0; i < kConsumers; ++i) {
        consumers.emplace_back([&, i] {
            Event out[16];
            WaitSpec w = WaitSpec::withTimeout(20000000000ULL);
            w.spin_iterations = 128;
            std::uint64_t next = 1;
            while (next <= kEvents) {
                std::size_t n = ring_.consumeBatch(ids[i], out, 16, w);
                if (n == 0) {
                    failures.fetch_add(1);
                    return;
                }
                for (std::size_t k = 0; k < n; ++k, ++next) {
                    if (out[k].timestamp != next) {
                        failures.fetch_add(1);
                        return;
                    }
                }
            }
        });
    }

    WaitSpec pw = WaitSpec::withTimeout(20000000000ULL);
    std::uint64_t published = 0;
    // Vary the batch size so claims land on every alignment.
    for (std::size_t b = 1; published < kEvents; b = (b % 13) + 1) {
        std::size_t n = std::min<std::uint64_t>(b, kEvents - published);
        ASSERT_EQ(ring_.publishBatch(makeRun(published + 1, n), pw), n);
        published += n;
    }
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(failures.load(), 0);
}

// --- SPSC queue + pump batch ops ---

class SpscBatchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto r = Region::create(8 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
    }

    SpscQueue
    makeQueue(std::uint32_t capacity)
    {
        Offset off = region_.carve(SpscQueue::bytesRequired(capacity));
        return SpscQueue::initialize(&region_, off, capacity);
    }

    Region region_;
};

TEST_F(SpscBatchTest, TryPushBatchStopsAtCapacity)
{
    SpscQueue q = makeQueue(8);
    std::vector<Event> in = makeRun(1, 12);
    EXPECT_EQ(q.tryPushBatch(in), 8u);
    EXPECT_EQ(q.size(), 8u);
    EXPECT_EQ(q.tryPushBatch({in.data() + 8, 4}), 0u);

    Event out[12];
    EXPECT_EQ(q.tryPopBatch(out, 12), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].timestamp, i + 1);
}

TEST_F(SpscBatchTest, BatchWrapAround)
{
    SpscQueue q = makeQueue(8);
    Event out[8];
    ASSERT_EQ(q.tryPushBatch(makeRun(1, 6)), 6u);
    ASSERT_EQ(q.tryPopBatch(out, 6), 6u);
    // Next batch wraps across the slot-array boundary.
    ASSERT_EQ(q.tryPushBatch(makeRun(7, 8)), 8u);
    ASSERT_EQ(q.tryPopBatch(out, 8), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].timestamp, 7 + i);
}

TEST_F(SpscBatchTest, PumpMovesBatchesToAllFollowers)
{
    SpscQueue leader = makeQueue(256);
    std::vector<SpscQueue> followers = {makeQueue(256), makeQueue(256)};
    EventPump pump(leader, followers);

    ASSERT_EQ(leader.tryPushBatch(makeRun(1, 200)), 200u);
    EXPECT_EQ(pump.pumpSome(1000), 200u);

    for (auto &f : followers) {
        Event out[64];
        std::uint64_t next = 1;
        std::size_t n;
        while ((n = f.tryPopBatch(out, 64)) > 0) {
            for (std::size_t i = 0; i < n; ++i, ++next)
                ASSERT_EQ(out[i].timestamp, next);
        }
        EXPECT_EQ(next, 201u);
    }
}

} // namespace
} // namespace varan::ring
