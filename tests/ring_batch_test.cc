/**
 * @file
 * Tests for the batched ring-buffer fast path: publishBatch claims a
 * contiguous sequence range with one synchronization round, consumeBatch
 * and pollBatch drain runs of events with a single cursor advance. Also
 * covers the SPSC queue batch operations and the batched event pump.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "ring/event.h"
#include "ring/event_pump.h"
#include "ring/ring_buffer.h"
#include "shmem/region.h"

namespace varan::ring {
namespace {

using shmem::Offset;
using shmem::Region;

Event
makeEvent(std::uint64_t ts, std::uint16_t nr, std::int64_t result)
{
    Event e = {};
    e.timestamp = ts;
    e.type = EventType::Syscall;
    e.nr = nr;
    e.result = result;
    return e;
}

std::vector<Event>
makeRun(std::uint64_t first_ts, std::size_t count)
{
    std::vector<Event> events;
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        events.push_back(makeEvent(first_ts + i, 0,
                                   static_cast<std::int64_t>(first_ts + i)));
    return events;
}

class RingBatchTest : public ::testing::Test
{
  protected:
    void
    init(std::uint32_t capacity)
    {
        auto r = Region::create(4 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
        Offset off = region_.carve(RingBuffer::bytesRequired(capacity));
        ring_ = RingBuffer::initialize(&region_, off, capacity);
    }

    Region region_;
    RingBuffer ring_;
};

TEST_F(RingBatchTest, BatchRoundTrip)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    std::vector<Event> in = makeRun(1, 10);
    EXPECT_EQ(ring_.publishBatch(in), 10u);
    EXPECT_EQ(ring_.headSeq(), 10u);

    Event out[16];
    ASSERT_EQ(ring_.consumeBatch(id, out, 16), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(out[i].timestamp, i + 1);
        EXPECT_EQ(out[i].result, static_cast<std::int64_t>(i + 1));
    }
    EXPECT_EQ(ring_.lag(id), 0u);
    EXPECT_EQ(ring_.pollBatch(id, out, 16), 0u); // drained
}

TEST_F(RingBatchTest, ConsumeBatchHonoursMax)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 12)), 12u);

    Event out[16];
    ASSERT_EQ(ring_.consumeBatch(id, out, 5), 5u);
    EXPECT_EQ(out[4].timestamp, 5u);
    EXPECT_EQ(ring_.lag(id), 7u);
    ASSERT_EQ(ring_.pollBatch(id, out, 16), 7u);
    EXPECT_EQ(out[0].timestamp, 6u);
    EXPECT_EQ(out[6].timestamp, 12u);
}

TEST_F(RingBatchTest, PartialBatchWrapAroundAtCapacityBoundary)
{
    init(8);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    // Advance the cursor so the next batch straddles the wrap point:
    // 5 consumed of 5 published leaves head at 5; a batch of 8 then
    // occupies slots 5,6,7,0,1,2,3,4.
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 5)), 5u);
    Event out[8];
    ASSERT_EQ(ring_.consumeBatch(id, out, 8), 5u);

    ASSERT_EQ(ring_.publishBatch(makeRun(6, 8)), 8u);
    ASSERT_EQ(ring_.consumeBatch(id, out, 8), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].timestamp, 6 + i);
}

TEST_F(RingBatchTest, BatchLargerThanCapacityChunks)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    constexpr std::size_t kTotal = 1000;

    std::thread consumer([&] {
        Event out[4];
        WaitSpec w = WaitSpec::withTimeout(10000000000ULL);
        w.spin_iterations = 64;
        std::uint64_t next = 1;
        while (next <= kTotal) {
            std::size_t n = ring_.consumeBatch(id, out, 4, w);
            ASSERT_GT(n, 0u);
            for (std::size_t i = 0; i < n; ++i, ++next)
                ASSERT_EQ(out[i].timestamp, next);
        }
    });

    WaitSpec pw = WaitSpec::withTimeout(10000000000ULL);
    // A single call with a batch 250x the ring capacity must chunk
    // internally and deliver everything in order.
    EXPECT_EQ(ring_.publishBatch(makeRun(1, kTotal), pw), kTotal);
    consumer.join();
}

TEST_F(RingBatchTest, BatchAndSingleEventInterleave)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    ASSERT_TRUE(ring_.publish(makeEvent(1, 0, 0)));
    ASSERT_EQ(ring_.publishBatch(makeRun(2, 4)), 4u);
    ASSERT_TRUE(ring_.publish(makeEvent(6, 0, 0)));
    ASSERT_EQ(ring_.publishBatch(makeRun(7, 3)), 3u);

    // Mixed draining: single poll, then a batch, then singles.
    Event out[16];
    ASSERT_TRUE(ring_.poll(id, &out[0]));
    EXPECT_EQ(out[0].timestamp, 1u);
    ASSERT_EQ(ring_.consumeBatch(id, out, 5), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(out[i].timestamp, 2 + i);
    for (std::uint64_t ts = 7; ts <= 9; ++ts) {
        ASSERT_TRUE(ring_.consume(id, &out[0],
                                  WaitSpec::withTimeout(1000000000ULL)));
        EXPECT_EQ(out[0].timestamp, ts);
    }
}

TEST_F(RingBatchTest, SlowConsumerBackpressureUnderBatching)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    // Consumer never drains: only the free capacity is published before
    // the deadline expires, and the count reports the partial progress.
    WaitSpec w = WaitSpec::withTimeout(30000000); // 30 ms
    w.spin_iterations = 16;
    EXPECT_EQ(ring_.publishBatch(makeRun(1, 10), w), 4u);
    EXPECT_EQ(ring_.lag(id), 4u);

    // Draining two slots lets exactly two more events through.
    Event out[4];
    ASSERT_EQ(ring_.consumeBatch(id, out, 2), 2u);
    EXPECT_EQ(ring_.publishBatch(makeRun(5, 10), w), 2u);

    // Full drain: order survived the partial publishes.
    ASSERT_EQ(ring_.consumeBatch(id, out, 4), 4u);
    EXPECT_EQ(out[0].timestamp, 3u);
    EXPECT_EQ(out[3].timestamp, 6u);
}

TEST_F(RingBatchTest, PublishBatchTimesOutAtZeroWhenFull)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 4)), 4u);
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 16;
    EXPECT_EQ(ring_.publishBatch(makeRun(5, 3), w), 0u);
}

TEST_F(RingBatchTest, ConsumeBatchTimesOutOnSilence)
{
    init(8);
    int id = ring_.attachConsumer();
    Event out[8];
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 8;
    std::uint64_t t0 = monotonicNs();
    EXPECT_EQ(ring_.consumeBatch(id, out, 8, w), 0u);
    EXPECT_GE(monotonicNs() - t0, 15000000ULL);
}

TEST_F(RingBatchTest, EveryConsumerSeesEveryBatchedEvent)
{
    init(16);
    constexpr int kConsumers = 3;
    constexpr std::uint64_t kEvents = 6000;
    int ids[kConsumers];
    for (int i = 0; i < kConsumers; ++i) {
        ids[i] = ring_.attachConsumer();
        ASSERT_GE(ids[i], 0);
    }

    std::vector<std::thread> consumers;
    std::atomic<int> failures{0};
    for (int i = 0; i < kConsumers; ++i) {
        consumers.emplace_back([&, i] {
            Event out[16];
            WaitSpec w = WaitSpec::withTimeout(20000000000ULL);
            w.spin_iterations = 128;
            std::uint64_t next = 1;
            while (next <= kEvents) {
                std::size_t n = ring_.consumeBatch(ids[i], out, 16, w);
                if (n == 0) {
                    failures.fetch_add(1);
                    return;
                }
                for (std::size_t k = 0; k < n; ++k, ++next) {
                    if (out[k].timestamp != next) {
                        failures.fetch_add(1);
                        return;
                    }
                }
            }
        });
    }

    WaitSpec pw = WaitSpec::withTimeout(20000000000ULL);
    std::uint64_t published = 0;
    // Vary the batch size so claims land on every alignment.
    for (std::size_t b = 1; published < kEvents; b = (b % 13) + 1) {
        std::size_t n = std::min<std::uint64_t>(b, kEvents - published);
        ASSERT_EQ(ring_.publishBatch(makeRun(published + 1, n), pw), n);
        published += n;
    }
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(failures.load(), 0);
}

// --- two-phase claim/commit producer API ---

TEST_F(RingBatchTest, ClaimCommitRoundTrip)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    std::uint64_t seq = 123;
    ASSERT_TRUE(ring_.claim(4, &seq));
    EXPECT_EQ(seq, 0u);
    // Nothing is visible until commit.
    Event out[16];
    EXPECT_EQ(ring_.pollBatch(id, out, 16), 0u);

    std::vector<Event> in = makeRun(1, 4);
    ring_.commit(in);
    EXPECT_EQ(ring_.headSeq(), 4u);
    ASSERT_EQ(ring_.pollBatch(id, out, 16), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i].timestamp, i + 1);
}

TEST_F(RingBatchTest, ClaimWaitsForContiguousRun)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 3)), 3u);

    // Only one slot free: a claim for two must time out...
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 16;
    std::uint64_t seq = 0;
    EXPECT_FALSE(ring_.claim(2, &seq, w));

    // ...and succeed once the consumer released enough slots.
    Event out[4];
    ASSERT_EQ(ring_.consumeBatch(id, out, 2), 2u);
    ASSERT_TRUE(ring_.claim(2, &seq, w));
    EXPECT_EQ(seq, 3u);
    ring_.commit(makeRun(4, 2));
    ASSERT_EQ(ring_.pollBatch(id, out, 4), 3u);
    EXPECT_EQ(out[2].timestamp, 5u);
}

// --- non-advancing batched reads ---

TEST_F(RingBatchTest, PeekBatchDoesNotAdvance)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 5)), 5u);

    Event out[16];
    ASSERT_EQ(ring_.peekBatch(id, out, 16), 5u);
    EXPECT_EQ(out[4].timestamp, 5u);
    // The run is still claimed: lag unchanged, a second peek re-reads.
    EXPECT_EQ(ring_.lag(id), 5u);
    ASSERT_EQ(ring_.peekBatch(id, out, 16), 5u);
    EXPECT_EQ(out[0].timestamp, 1u);

    ring_.advanceBy(id, 3);
    EXPECT_EQ(ring_.lag(id), 2u);
    ASSERT_EQ(ring_.peekBatch(id, out, 16), 2u);
    EXPECT_EQ(out[0].timestamp, 4u);
    ring_.advanceBy(id, 2);
    EXPECT_EQ(ring_.lag(id), 0u);
}

TEST_F(RingBatchTest, PeekedRunKeepsSlotsClaimedAgainstProducer)
{
    // The payload-lifetime property: while a peeked run is unadvanced,
    // the producer cannot recycle those slots — it blocks on the full
    // ring instead of overwriting what the consumer still reads.
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 4)), 4u);

    Event out[4];
    ASSERT_EQ(ring_.peekBatch(id, out, 4), 4u);
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 16;
    EXPECT_EQ(ring_.publishBatch(makeRun(5, 1), w), 0u);

    // Advancing the peeked run opens the gate again.
    ring_.advanceBy(id, 4);
    EXPECT_EQ(ring_.publishBatch(makeRun(5, 1), w), 1u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i].timestamp, i + 1); // copies survived
}

TEST_F(RingBatchTest, AdvanceByWakesBlockedProducer)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 4)), 4u);

    std::thread producer([&] {
        WaitSpec w = WaitSpec::withTimeout(10000000000ULL);
        w.spin_iterations = 0; // force the futex path
        EXPECT_EQ(ring_.publishBatch(makeRun(5, 2), w), 2u);
    });

    Event out[4];
    ASSERT_EQ(ring_.peekBatch(id, out, 4), 4u);
    sleepNs(5000000); // let the producer reach the waitlock
    ring_.advanceBy(id, 4);
    producer.join();
    ASSERT_EQ(ring_.peekBatch(id, out, 4), 2u);
    EXPECT_EQ(out[0].timestamp, 5u);
    ring_.advanceBy(id, 2);
}

// --- leader-side publish coalescing ---

TEST_F(RingBatchTest, CoalescerHoldsRunUntilFlush)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    PublishCoalescer co;
    co.reset(&ring_, 8);

    for (std::uint64_t i = 1; i <= 5; ++i)
        ASSERT_TRUE(co.add(makeEvent(i, 0, 0)));
    EXPECT_EQ(co.pending(), 5u);
    EXPECT_EQ(ring_.headSeq(), 0u); // nothing visible yet

    ASSERT_TRUE(co.flush());
    EXPECT_EQ(co.pending(), 0u);
    Event out[16];
    ASSERT_EQ(ring_.pollBatch(id, out, 16), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(out[i].timestamp, i + 1);
}

TEST_F(RingBatchTest, CoalescerAutoFlushesWhenRunFills)
{
    init(16);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    PublishCoalescer co;
    co.reset(&ring_, 4);

    for (std::uint64_t i = 1; i <= 5; ++i)
        ASSERT_TRUE(co.add(makeEvent(i, 0, 0)));
    // The 5th add overflowed the run of 4: the first run shipped.
    EXPECT_EQ(co.pending(), 1u);
    EXPECT_EQ(ring_.headSeq(), 4u);
    ASSERT_TRUE(co.flush());
    Event out[16];
    ASSERT_EQ(ring_.pollBatch(id, out, 16), 5u);
    EXPECT_EQ(out[4].timestamp, 5u);
}

TEST_F(RingBatchTest, CoalescerRunsLargerThanRingChunk)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    PublishCoalescer co;
    co.reset(&ring_, 16);
    for (std::uint64_t i = 1; i <= 10; ++i)
        ASSERT_TRUE(co.add(makeEvent(i, 0, 0)));

    std::thread consumer([&] {
        Event out[4];
        WaitSpec w = WaitSpec::withTimeout(10000000000ULL);
        w.spin_iterations = 64;
        std::uint64_t next = 1;
        while (next <= 10) {
            std::size_t n = ring_.consumeBatch(id, out, 4, w);
            ASSERT_GT(n, 0u);
            for (std::size_t i = 0; i < n; ++i, ++next)
                ASSERT_EQ(out[i].timestamp, next);
        }
    });
    WaitSpec w = WaitSpec::withTimeout(10000000000ULL);
    EXPECT_TRUE(co.flush(w));
    consumer.join();
}

TEST_F(RingBatchTest, CoalescerRecyclerSeesEveryClaimedChunk)
{
    init(8);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);

    struct Seen {
        std::vector<std::pair<std::uint64_t, std::size_t>> chunks;
    } seen;
    PublishCoalescer co;
    co.reset(
        &ring_, 16,
        [](void *ctx, std::uint64_t first_seq, std::size_t count) {
            static_cast<Seen *>(ctx)->chunks.emplace_back(first_seq,
                                                          count);
        },
        &seen);

    // First flush: 6 events in one chunk starting at seq 0.
    for (std::uint64_t i = 1; i <= 6; ++i)
        ASSERT_TRUE(co.add(makeEvent(i, 0, 0)));
    Event out[8];
    std::thread consumer([&] {
        WaitSpec w = WaitSpec::withTimeout(10000000000ULL);
        std::size_t got = 0;
        while (got < 12)
            got += ring_.consumeBatch(id, out, 8, w);
    });
    WaitSpec w = WaitSpec::withTimeout(10000000000ULL);
    ASSERT_TRUE(co.flush(w));
    // Second flush: 6 more, wrapping the capacity-8 ring.
    for (std::uint64_t i = 7; i <= 12; ++i)
        ASSERT_TRUE(co.add(makeEvent(i, 0, 0)));
    ASSERT_TRUE(co.flush(w));
    consumer.join();

    ASSERT_GE(seen.chunks.size(), 2u);
    EXPECT_EQ(seen.chunks[0].first, 0u);
    EXPECT_EQ(seen.chunks[0].second, 6u);
    // Chunks cover seq 0..11 contiguously.
    std::uint64_t expect = 0;
    std::size_t total = 0;
    for (auto [seq, n] : seen.chunks) {
        EXPECT_EQ(seq, expect);
        expect += n;
        total += n;
    }
    EXPECT_EQ(total, 12u);
}

TEST_F(RingBatchTest, CoalescerKeepsRunOnFlushTimeout)
{
    init(4);
    int id = ring_.attachConsumer();
    ASSERT_GE(id, 0);
    ASSERT_EQ(ring_.publishBatch(makeRun(1, 4)), 4u); // ring full

    PublishCoalescer co;
    co.reset(&ring_, 8);
    for (std::uint64_t i = 5; i <= 7; ++i)
        ASSERT_TRUE(co.add(makeEvent(i, 0, 0)));
    WaitSpec w = WaitSpec::withTimeout(20000000); // 20 ms
    w.spin_iterations = 16;
    EXPECT_FALSE(co.flush(w));
    EXPECT_EQ(co.pending(), 3u); // nothing lost

    Event out[8];
    ASSERT_EQ(ring_.consumeBatch(id, out, 8), 4u);
    ASSERT_TRUE(co.flush(w));
    ASSERT_EQ(ring_.consumeBatch(id, out, 8, w), 3u);
    EXPECT_EQ(out[0].timestamp, 5u);
    EXPECT_EQ(out[2].timestamp, 7u);
}

// --- SPSC queue + pump batch ops ---

class SpscBatchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto r = Region::create(8 << 20);
        ASSERT_TRUE(r.ok());
        region_ = std::move(r.value());
    }

    SpscQueue
    makeQueue(std::uint32_t capacity)
    {
        Offset off = region_.carve(SpscQueue::bytesRequired(capacity));
        return SpscQueue::initialize(&region_, off, capacity);
    }

    Region region_;
};

TEST_F(SpscBatchTest, TryPushBatchStopsAtCapacity)
{
    SpscQueue q = makeQueue(8);
    std::vector<Event> in = makeRun(1, 12);
    EXPECT_EQ(q.tryPushBatch(in), 8u);
    EXPECT_EQ(q.size(), 8u);
    EXPECT_EQ(q.tryPushBatch({in.data() + 8, 4}), 0u);

    Event out[12];
    EXPECT_EQ(q.tryPopBatch(out, 12), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].timestamp, i + 1);
}

TEST_F(SpscBatchTest, BatchWrapAround)
{
    SpscQueue q = makeQueue(8);
    Event out[8];
    ASSERT_EQ(q.tryPushBatch(makeRun(1, 6)), 6u);
    ASSERT_EQ(q.tryPopBatch(out, 6), 6u);
    // Next batch wraps across the slot-array boundary.
    ASSERT_EQ(q.tryPushBatch(makeRun(7, 8)), 8u);
    ASSERT_EQ(q.tryPopBatch(out, 8), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].timestamp, 7 + i);
}

TEST_F(SpscBatchTest, PumpMovesBatchesToAllFollowers)
{
    SpscQueue leader = makeQueue(256);
    std::vector<SpscQueue> followers = {makeQueue(256), makeQueue(256)};
    EventPump pump(leader, followers);

    ASSERT_EQ(leader.tryPushBatch(makeRun(1, 200)), 200u);
    EXPECT_EQ(pump.pumpSome(1000), 200u);

    for (auto &f : followers) {
        Event out[64];
        std::uint64_t next = 1;
        std::size_t n;
        while ((n = f.tryPopBatch(out, 64)) > 0) {
            for (std::size_t i = 0; i < n; ++i, ++next)
                ASSERT_EQ(out[i].timestamp, next);
        }
        EXPECT_EQ(next, 201u);
    }
}

} // namespace
} // namespace varan::ring
