/**
 * @file
 * End-to-end tests of the N-version execution engine: leader/follower
 * streaming, result replication, fd mirroring, write-once semantics,
 * virtual time, divergence handling with BPF rules, transparent
 * failover with leader promotion, multi-threaded tuples and forked
 * process tuples.
 *
 * Variant functions run in forked processes, so all verification
 * happens through exit statuses, pipes created before the engine
 * starts (inherited at identical descriptor numbers), and coordinator
 * statistics.
 */

#include <atomic>
#include <fcntl.h>
#include <memory>
#include <poll.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/nvx.h"
#include "syscalls/sys.h"

// Deliberate-SIGSEGV tests fight ASan's own SEGV interceptor: both the
// engine's crash handlers and ASan claim the signal, and ASan wins with
// a (fatal) report before the engine can run its failover protocol.
// Pre-existing at the seed; skip those tests so -DVARAN_SANITIZE=ON
// runs green.
#if defined(__SANITIZE_ADDRESS__)
#define VARAN_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VARAN_ASAN 1
#endif
#endif

#ifdef VARAN_ASAN
#define VARAN_SKIP_UNDER_ASAN()                                          \
    GTEST_SKIP() << "deliberate-crash test: ASan's SEGV interceptor "    \
                    "conflicts with the engine's signal handlers "       \
                    "(pre-existing seed behaviour)"
#else
#define VARAN_SKIP_UNDER_ASAN() ((void)0)
#endif

namespace varan::core {
namespace {

EngineConfig
fastConfig()
{
    EngineConfig config;
    config.ring.capacity = 64;
    config.shm_bytes = 16 << 20;
    config.ring.progress_timeout_ns = 10000000000ULL; // 10 s test safety
    return config;
}

/** Read exactly @p len bytes with a deadline; returns what arrived. */
std::string
readExactly(int fd, std::size_t len, int timeout_ms = 20000)
{
    std::string out;
    std::uint64_t deadline = monotonicNs() +
                             std::uint64_t(timeout_ms) * 1000000ULL;
    while (out.size() < len && monotonicNs() < deadline) {
        struct pollfd pfd = {fd, POLLIN, 0};
        if (::poll(&pfd, 1, 100) <= 0)
            continue;
        char buf[256];
        ssize_t n = ::read(fd, buf,
                           std::min(sizeof(buf), len - out.size()));
        if (n > 0)
            out.append(buf, static_cast<std::size_t>(n));
        else if (n == 0)
            break;
    }
    return out;
}

TEST(NvxTest, SingleVariantRunsToCompletion)
{
    Nvx nvx(fastConfig());
    auto results = nvx.run({[]() -> int { return 17; }});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].crashed);
    EXPECT_EQ(results[0].status, 17);
}

TEST(NvxTest, AllVariantsReportTheirStatus)
{
    Nvx nvx(fastConfig());
    auto results = nvx.run({
        []() -> int { return 1; },
        []() -> int { return 1; },
        []() -> int { return 1; },
    });
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 1);
    }
}

TEST(NvxTest, WriteExecutesExactlyOnce)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    auto app = [fds]() -> int {
        const char msg[] = "hello";
        long n = sys::vwrite(fds[1], msg, 5);
        return n == 5 ? 0 : 9;
    };

    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    // Three variants, one leader: the pipe carries the message once.
    EXPECT_EQ(readExactly(fds[0], 5), "hello");
    struct pollfd pfd = {fds[0], POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 200), 0) << "extra bytes in the pipe";
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, FollowersSeeLeadersReadData)
{
    // The leader reads a scratch file; followers must observe the same
    // bytes without touching the file. Sum of bytes becomes the status.
    char path[] = "/tmp/varan-core-read-XXXXXX";
    int tmp = ::mkstemp(path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "\x01\x02\x03\x04", 4), 4);
    ::close(tmp);

    std::string file(path);
    auto app = [file]() -> int {
        long fd = sys::vopen(file.c_str(), O_RDONLY);
        if (fd < 0)
            return 90;
        unsigned char buf[4] = {};
        long n = sys::vread(static_cast<int>(fd), buf, 4);
        sys::vclose(static_cast<int>(fd));
        if (n != 4)
            return 91;
        return buf[0] + buf[1] + buf[2] + buf[3]; // 10
    };

    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    ::unlink(path);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 10) << "variant " << r.variant;
    }
    EXPECT_GT(nvx.fdTransfers(), 0u);
}

TEST(NvxTest, GetpidIsVirtualisedToLeader)
{
    // Real pids differ across variants; the streamed getpid must not.
    auto app = []() -> int {
        return static_cast<int>(sys::vgetpid() & 0x7f);
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app, app});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].status, results[1].status);
    EXPECT_EQ(results[1].status, results[2].status);
}

TEST(NvxTest, VirtualTimeComesFromLeader)
{
    auto app = []() -> int {
        struct timespec ts = {};
        sys::vclock_gettime(CLOCK_MONOTONIC, &ts);
        return static_cast<int>(ts.tv_nsec % 251);
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    EXPECT_EQ(results[0].status, results[1].status);
}

TEST(NvxTest, FdNumbersMirrorAcrossVariants)
{
    auto app = []() -> int {
        long fd1 = sys::vopen("/dev/null", O_RDONLY);
        long fd2 = sys::vopen("/dev/zero", O_RDONLY);
        sys::vclose(static_cast<int>(fd1));
        long fd3 = sys::vopen("/dev/null", O_WRONLY);
        // fd numbers must be identical in every variant; fold them into
        // the status byte.
        return static_cast<int>((fd1 * 49 + fd2 * 7 + fd3) & 0x7f);
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app, app});
    EXPECT_EQ(results[0].status, results[1].status);
    EXPECT_EQ(results[1].status, results[2].status);
    EXPECT_FALSE(results[0].crashed);
}

TEST(NvxTest, PipeSyscallMirrorsBothEnds)
{
    auto app = []() -> int {
        int fds[2] = {-1, -1};
        if (sys::vpipe2(fds, 0) < 0)
            return 80;
        const char byte = 'x';
        if (sys::vwrite(fds[1], &byte, 1) != 1)
            return 81;
        char in = 0;
        if (sys::vread(fds[0], &in, 1) != 1)
            return 82;
        sys::vclose(fds[0]);
        sys::vclose(fds[1]);
        return in == 'x' ? 0 : 83;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0) << "variant " << r.variant;
    }
}

TEST(NvxTest, StatsCountStreamedEvents)
{
    auto app = []() -> int {
        for (int i = 0; i < 10; ++i)
            sys::vgetpid();
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    // 10 getpids + exit event, at least.
    EXPECT_GE(nvx.eventsStreamed(), 11u);
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
}

TEST(NvxTest, SmallRingBackpressureStillCompletes)
{
    EngineConfig config = fastConfig();
    config.ring.capacity = 4; // tiny: leader must block on followers
    auto app = []() -> int {
        for (int i = 0; i < 200; ++i)
            sys::vgetpid();
        return 0;
    };
    Nvx nvx(config);
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
}

TEST(NvxTest, FollowerCrashLeavesOthersRunning)
{
    VARAN_SKIP_UNDER_ASAN();
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        for (int i = 0; i < 20; ++i) {
            if (i == 10 && Monitor::instance()->variantId() == 2) {
                int *p = nullptr;
                *p = 1; // follower 2 dies here
            }
            char c = static_cast<char>('a' + i);
            sys::vwrite(fds[1], &c, 1);
        }
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_EQ(results[0].status, 0);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_TRUE(results[2].crashed);
    // All 20 writes made it out exactly once.
    std::string got = readExactly(fds[0], 20);
    EXPECT_EQ(got, "abcdefghijklmnopqrst");
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, LeaderCrashFailsOverTransparently)
{
    VARAN_SKIP_UNDER_ASAN();
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        for (int i = 0; i < 10; ++i) {
            // The *original* leader dies after message 5; the follower
            // must be promoted and finish messages 6..10.
            if (i == 5 && Monitor::instance()->variantId() == 0) {
                int *p = nullptr;
                *p = 1;
            }
            char c = static_cast<char>('0' + i);
            sys::vwrite(fds[1], &c, 1);
        }
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_EQ(results[1].status, 0);
    EXPECT_EQ(nvx.currentLeader(), 1);
    EXPECT_GE(nvx.epoch(), 1u);
    // Every message exactly once, in order, across the failover.
    EXPECT_EQ(readExactly(fds[0], 10), "0123456789");
    struct pollfd pfd = {fds[0], POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 200), 0) << "duplicated writes";
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, FailoverWithThreeVariantsElectsLowestLive)
{
    VARAN_SKIP_UNDER_ASAN();
    auto app = []() -> int {
        for (int i = 0; i < 30; ++i) {
            if (i == 7 && Monitor::instance()->variantId() == 0) {
                int *p = nullptr;
                *p = 1;
            }
            sys::vgetpid();
        }
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app, app});
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_FALSE(results[2].crashed);
    // Leadership moved off the crashed variant (and then passes down
    // the live set as leaders exit normally at the end of the run).
    EXPECT_NE(nvx.currentLeader(), 0);
    EXPECT_GE(nvx.epoch(), 1u);
}

TEST(NvxTest, DivergenceWithoutRulesKillsFollower)
{
    auto app = []() -> int {
        // The follower performs an extra syscall the leader never
        // makes: a sequence divergence.
        if (Monitor::instance() &&
            Monitor::instance()->variantId() == 1) {
            sys::vgetuid();
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_TRUE(results[1].crashed);
    EXPECT_EQ(results[1].status, kDivergenceExitStatus);
    EXPECT_GE(nvx.divergencesFatal(), 1u);
}

TEST(NvxTest, AllowRuleExecutesFollowerExtraCallLocally)
{
    EngineConfig config = fastConfig();
    // Allow a getuid the leader did not make when the leader is at
    // getpid — modelled on the paper's Listing 1 (section 5.2).
    config.rewrite_rules.push_back(
        "ld event[0]\n"
        "jeq #39, checkmine /* leader at getpid */\n"
        "jmp bad\n"
        "checkmine:\n"
        "ld [0]\n"
        "jeq #102, good /* follower wants getuid */\n"
        "bad: ret #0\n"
        "good: ret #0x7fff0000\n");
    auto app = []() -> int {
        if (Monitor::instance() &&
            Monitor::instance()->variantId() == 1) {
            sys::vgetuid(); // extra call, resolved by the rule
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed) << "rule should have resolved it";
    EXPECT_GE(nvx.divergencesResolved(), 1u);
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
}

TEST(NvxTest, SkipRuleDropsLeaderOnlyEvent)
{
    EngineConfig config = fastConfig();
    // The leader performs an extra getuid; followers skip that event.
    config.rewrite_rules.push_back(
        "ld event[0]\n"
        "jeq #102, skip /* leader-only getuid */\n"
        "ret #0\n"
        "skip: ret #0x7ffd0000\n");
    auto app = []() -> int {
        if (Monitor::instance() &&
            Monitor::instance()->variantId() == 0) {
            sys::vgetuid(); // leader-only call
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_GE(nvx.divergencesResolved(), 1u);
}

TEST(NvxTest, ErrnoRuleSynthesisesResult)
{
    EngineConfig config = fastConfig();
    // Follower's extra getuid is absorbed with -ENOSYS (38).
    config.rewrite_rules.push_back(
        "ld [0]\n"
        "jeq #102, synth\n"
        "ret #0\n"
        "synth: ret #0x00050026\n"); // ERRNO | 38
    auto app = []() -> int {
        if (Monitor::instance() &&
            Monitor::instance()->variantId() == 1) {
            long r = sys::vgetuid();
            if (r != -38)
                return 70; // must observe the synthetic errno
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[1].crashed);
    EXPECT_EQ(results[1].status, 0);
}

TEST(NvxTest, WriteContentDivergenceIsDetected)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        const bool follower = Monitor::instance()->variantId() == 1;
        const char *msg = follower ? "EVIL!" : "good.";
        sys::vwrite(fds[1], msg, 5);
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_TRUE(results[1].crashed) << "content divergence missed";
    EXPECT_EQ(readExactly(fds[0], 5), "good.");
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, MultiThreadedTuplesStreamIndependently)
{
    int pipe_a[2];
    int pipe_b[2];
    ASSERT_EQ(::pipe(pipe_a), 0);
    ASSERT_EQ(::pipe(pipe_b), 0);

    auto app = [pipe_a, pipe_b]() -> int {
        VThread worker([pipe_b] {
            for (int i = 0; i < 25; ++i) {
                char c = static_cast<char>('A' + (i % 26));
                sys::vwrite(pipe_b[1], &c, 1);
            }
        });
        for (int i = 0; i < 25; ++i) {
            char c = static_cast<char>('a' + (i % 26));
            sys::vwrite(pipe_a[1], &c, 1);
        }
        worker.join();
        return 0;
    };

    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    std::string a = readExactly(pipe_a[0], 25);
    std::string b = readExactly(pipe_b[0], 25);
    EXPECT_EQ(a, "abcdefghijklmnopqrstuvwxy");
    EXPECT_EQ(b, "ABCDEFGHIJKLMNOPQRSTUVWXY");
    for (int fd : {pipe_a[0], pipe_a[1], pipe_b[0], pipe_b[1]})
        ::close(fd);
}

TEST(NvxTest, ForkedProcessTupleStreams)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        long child = sys::invoke(SYS_fork);
        if (child == 0) {
            sys::vwrite(fds[1], "C", 1);
            sys::vexit(0);
        }
        sys::vwrite(fds[1], "P", 1);
        // wait4 is Local: each variant reaps its own child.
        int status = 0;
        ::waitpid(static_cast<pid_t>(child), &status, 0);
        return WIFEXITED(status) ? WEXITSTATUS(status) : 77;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0) << "variant " << r.variant;
    }
    std::string got = readExactly(fds[0], 2);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, "CP"); // each written exactly once, either order
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, SixFollowersComplete)
{
    // The paper's maximum configuration: one leader + six followers.
    auto app = []() -> int {
        for (int i = 0; i < 50; ++i)
            sys::vgetpid();
        return 0;
    };
    Nvx nvx(fastConfig());
    std::vector<VariantFn> variants(7, app);
    auto results = nvx.run(variants);
    ASSERT_EQ(results.size(), 7u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 0);
    }
}

TEST(NvxTest, NonDefaultLeaderIndex)
{
    EngineConfig config = fastConfig();
    config.leader_index = 1; // e.g. newest revision leads (section 2.2)
    auto app = []() -> int {
        sys::vgetpid();
        return Monitor::instance()->isLeader() ? 50 : 51;
    };
    Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_EQ(results[0].status, 51);
    EXPECT_EQ(results[1].status, 50);
}

TEST(NvxTest, SlowFollowerIsBoundedByRingCapacity)
{
    EngineConfig config = fastConfig();
    config.ring.capacity = 8;
    auto app = []() -> int {
        const bool slow = Monitor::instance()->variantId() == 1;
        for (int i = 0; i < 40; ++i) {
            if (slow && i % 8 == 0)
                sleepNs(2000000); // sanitizer-style lag (section 5.3)
            sys::vgetpid();
        }
        return 0;
    };
    Nvx nvx(config);
    Status started = nvx.start({app, app});
    ASSERT_TRUE(started.isOk());
    // While running, the log distance can never exceed the capacity.
    std::uint64_t max_seen = 0;
    for (int i = 0; i < 50; ++i) {
        max_seen = std::max(max_seen, nvx.ringLagOf(1));
        sleepNs(1000000);
    }
    auto results = nvx.wait();
    EXPECT_LE(max_seen, 8u);
    for (const auto &r : results)
        EXPECT_FALSE(r.crashed);
}

TEST(NvxTest, CoalescedPublishReplicatesExactly)
{
    // The DMON-style relaxed mode: payload-free events ship in batched
    // runs. Replication semantics must be indistinguishable from the
    // per-event path when nobody crashes.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    EngineConfig config = fastConfig();
    config.coalesce.enabled = true;
    auto app = [fds]() -> int {
        long pid = sys::vgetpid();
        for (int i = 0; i < 26; ++i) {
            char c = static_cast<char>('a' + i);
            sys::vwrite(fds[1], &c, 1);
            // Payload-free identity calls interleave with the writes
            // so runs mix hashed and plain events.
            if (sys::vgetpid() != pid)
                return 77;
        }
        return 0;
    };
    Nvx nvx(config);
    auto results = nvx.run({app, app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 0) << "variant " << r.variant;
    }
    // Exactly once, in order: the leader's writes, nobody else's.
    EXPECT_EQ(readExactly(fds[0], 26), "abcdefghijklmnopqrstuvwxyz");
    struct pollfd pfd = {fds[0], POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 200), 0) << "duplicated writes";
    ::close(fds[0]);
    ::close(fds[1]);

    // The batched path actually ran: runs flushed with fewer head
    // stores than events.
    EXPECT_GT(nvx.eventsCoalesced(), 0u);
    EXPECT_GT(nvx.publishBatches(), 0u);
    EXPECT_GE(nvx.eventsCoalesced(), nvx.publishBatches());
    EXPECT_GE(nvx.eventsStreamed(), nvx.eventsCoalesced());
}

TEST(NvxTest, CoalescedRunsFlushBeforeBlockingCalls)
{
    // A read on an empty pipe blocks the leader until the follower-fed
    // byte below arrives... here simpler: the leader writes, then
    // blocks in read on a second pipe serviced by the test. Pending
    // coalesced events must flush before the blocking read, or the
    // followers would never see the writes while the leader sleeps.
    int out[2], in[2];
    ASSERT_EQ(::pipe(out), 0);
    ASSERT_EQ(::pipe(in), 0);
    EngineConfig config = fastConfig();
    config.coalesce.enabled = true;
    // A window far larger than the test runtime: only the may_block
    // barrier can flush in time.
    config.tuning.coalesce_window_ns = 60000000000ULL;
    config.tuning.coalesce_run = 64;
    auto app = [out, in]() -> int {
        for (int i = 0; i < 5; ++i) {
            char c = static_cast<char>('0' + i);
            sys::vwrite(out[1], &c, 1);
        }
        char ack = 0;
        if (sys::vread(in[0], &ack, 1) != 1 || ack != 'k')
            return 78;
        return 0;
    };
    Nvx nvx(config);
    ASSERT_TRUE(nvx.start({app, app}).isOk());
    EXPECT_EQ(readExactly(out[0], 5), "01234");
    // The leader is now parked in read(). The five write events must
    // have been *published* (not merely executed) before it blocked —
    // the flush-before-blocking barrier — or the follower would sit
    // starved behind a pending run for the whole 60 s window.
    std::uint64_t deadline = monotonicNs() + 5000000000ULL;
    while (nvx.eventsStreamed() < 5 && monotonicNs() < deadline)
        sleepNs(1000000);
    EXPECT_GE(nvx.eventsStreamed(), 5u);
    ASSERT_EQ(::write(in[1], "k", 1), 1);
    auto results = nvx.wait();
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    ::close(out[0]);
    ::close(out[1]);
    ::close(in[0]);
    ::close(in[1]);
}

TEST(NvxTest, MultiTupleRunsUseDistinctPoolArenas)
{
    // Two tuples reading files concurrently: payloads come from each
    // tuple's own arena and nothing spills to the global fallback.
    char path[] = "/tmp/varan-core-shard-XXXXXX";
    int tmp = ::mkstemp(path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "\x05\x06\x07\x08", 4), 4);
    ::close(tmp);

    std::string file(path);
    auto readSum = [file]() -> int {
        long fd = sys::vopen(file.c_str(), O_RDONLY);
        if (fd < 0)
            return 90;
        unsigned char buf[4] = {};
        long n = sys::vread(static_cast<int>(fd), buf, 4);
        sys::vclose(static_cast<int>(fd));
        if (n != 4)
            return 91;
        return buf[0] + buf[1] + buf[2] + buf[3]; // 26
    };
    auto app = [readSum]() -> int {
        int worker_sum = 0;
        {
            VThread worker([&worker_sum, readSum] {
                for (int i = 0; i < 8; ++i)
                    worker_sum = readSum();
            });
            for (int i = 0; i < 8; ++i) {
                if (readSum() != 26)
                    return 92;
            }
        }
        return worker_sum; // 26 when the worker tuple replayed right
    };

    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    ::unlink(path);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 26) << "variant " << r.variant;
    }
    // Healthy arenas never fall back to the shared one.
    EXPECT_EQ(nvx.poolSpills(), 0u);
}

TEST(NvxTest, CoalescedRunFlushesOnComputeBoundLeader)
{
    // A leader that goes compute-bound dispatches no further syscalls,
    // so no barrier path can flush its pending run — only the
    // time-based flusher can. The app publishes five payload-free
    // events, then spins on a shared flag the test raises only once
    // the events became visible to the engine.
    auto *flag = static_cast<std::atomic<std::uint32_t> *>(
        ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_ANONYMOUS, -1, 0));
    ASSERT_NE(flag, MAP_FAILED);
    new (flag) std::atomic<std::uint32_t>(0);

    EngineConfig config = fastConfig();
    config.coalesce.enabled = true;
    config.tuning.coalesce_run = 64;        // five events never fill the run
    config.tuning.coalesce_window_ns = 50000000; // 50 ms staleness cap
    auto app = [flag]() -> int {
        for (int i = 0; i < 5; ++i)
            sys::vgetpid();
        // Compute-bound phase: no syscalls at all.
        while (flag->load(std::memory_order_acquire) == 0) {
        }
        return 0;
    };
    Nvx nvx(config);
    ASSERT_TRUE(nvx.start({app, app}).isOk());

    // Without the flusher this loops to the deadline: the run would sit
    // in the coalescer while the leader spins.
    std::uint64_t deadline = monotonicNs() + 5000000000ULL;
    while (nvx.eventsStreamed() < 5 && monotonicNs() < deadline)
        sleepNs(1000000);
    EXPECT_GE(nvx.eventsStreamed(), 5u)
        << "stale coalesced run never flushed";

    flag->store(1, std::memory_order_release);
    auto results = nvx.wait();
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    ::munmap(flag, 4096);
}

TEST(NvxTest, ManyTuplesFdTransferStress)
{
    // Regression for the per-tuple descriptor-routing race: leader
    // threads of several tuples create descriptors concurrently, all
    // funneled through one data channel per follower. Before transfers
    // carried tuple tags (and the follower demuxed them), concurrent
    // recvmsg could hand tuple A's descriptor to tuple B and the
    // mirroring dup2/close dance could destroy a live descriptor.
    constexpr int kWorkers = 3;
    constexpr int kOpensPerTuple = 25;
    auto app = []() -> int {
        auto churn = []() -> bool {
            for (int i = 0; i < kOpensPerTuple; ++i) {
                long fd = sys::vopen("/dev/null", O_RDONLY);
                if (fd < 0)
                    return false;
                char buf[4];
                sys::vread(static_cast<int>(fd), buf, sizeof(buf));
                if (sys::vclose(static_cast<int>(fd)) < 0)
                    return false;
            }
            return true;
        };
        std::atomic<int> ok{0};
        {
            std::vector<std::unique_ptr<VThread>> workers;
            for (int w = 0; w < kWorkers; ++w) {
                workers.push_back(std::make_unique<VThread>([&ok, churn] {
                    if (churn())
                        ok.fetch_add(1, std::memory_order_relaxed);
                }));
            }
            if (churn())
                ok.fetch_add(1, std::memory_order_relaxed);
        }
        return ok.load(std::memory_order_relaxed) == kWorkers + 1 ? 0 : 93;
    };

    EngineConfig config = fastConfig();
    config.ring.progress_timeout_ns = 20000000000ULL;
    Nvx nvx(config);
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 0) << "variant " << r.variant;
    }
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
    EXPECT_GT(nvx.fdTransfers(),
              static_cast<std::uint64_t>(kWorkers * kOpensPerTuple));
}

TEST(NvxTest, PoolStatsExposeArenaPressure)
{
    // The coordinator status slice: per-arena carve cursors and chunk
    // counts, fed by real payload traffic on tuple 0.
    char path[] = "/tmp/varan-core-stats-XXXXXX";
    int tmp = ::mkstemp(path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "stats", 5), 5);
    ::close(tmp);

    std::string file(path);
    auto app = [file]() -> int {
        for (int i = 0; i < 10; ++i) {
            long fd = sys::vopen(file.c_str(), O_RDONLY);
            char buf[8];
            sys::vread(static_cast<int>(fd), buf, sizeof(buf));
            sys::vclose(static_cast<int>(fd));
        }
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    ::unlink(path);
    for (const auto &r : results)
        EXPECT_FALSE(r.crashed);

    shmem::PoolStats stats = nvx.poolStats();
    EXPECT_EQ(stats.num_shards, kMaxTuples);
    EXPECT_EQ(stats.spills, nvx.poolSpills());
    // Tuple 0 carved from its own arena; nobody touched the others.
    EXPECT_GT(stats.shard[0].bytes_carved, 0u);
    EXPECT_GT(stats.shard[0].live_chunks + stats.shard[0].free_chunks, 0u);
    EXPECT_EQ(stats.shard[1].bytes_carved, 0u);
    EXPECT_EQ(stats.global.live_chunks, 0u);
    EXPECT_LE(stats.shard[0].bytes_carved, stats.shard[0].bytes_total);
}

// --- the redesigned coordinator API -----------------------------------

TEST(NvxTest, StatusReportSnapshotsLiveEngine)
{
    // The unified snapshot must agree with the narrow getters, both
    // while the engine runs and after it drains.
    int gate[2];
    ASSERT_EQ(::pipe(gate), 0);
    auto app = [gate]() -> int {
        for (int i = 0; i < 8; ++i)
            sys::vgetpid();
        char go = 0;
        if (sys::vread(gate[0], &go, 1) != 1)
            return 75;
        return 4;
    };
    Nvx nvx(fastConfig());
    ASSERT_TRUE(nvx.start({VariantSpec(app).named("a"),
                           VariantSpec(app).named("b")})
                    .isOk());

    // Wait until the leader parked itself in the gate read.
    std::uint64_t deadline = monotonicNs() + 5000000000ULL;
    while (nvx.eventsStreamed() < 8 && monotonicNs() < deadline)
        sleepNs(1000000);

    StatusReport live = nvx.status();
    EXPECT_EQ(live.num_variants, 2u);
    EXPECT_EQ(live.ring_capacity, 64u);
    EXPECT_EQ(live.leader, static_cast<std::uint32_t>(nvx.currentLeader()));
    EXPECT_EQ(live.epoch, nvx.epoch());
    EXPECT_EQ(live.live_mask, 3u);
    EXPECT_GE(live.num_tuples, 1u);
    EXPECT_EQ(live.events_streamed, nvx.eventsStreamed());
    EXPECT_EQ(live.divergences_resolved, nvx.divergencesResolved());
    EXPECT_EQ(live.divergences_fatal, nvx.divergencesFatal());
    EXPECT_EQ(live.fd_transfers, nvx.fdTransfers());
    EXPECT_EQ(live.pool.num_shards, kMaxTuples);
    EXPECT_EQ(live.pool.spills, nvx.poolSpills());
    EXPECT_EQ(live.variants[0].state,
              static_cast<std::uint32_t>(VariantState::Running));
    EXPECT_EQ(live.variants[1].state,
              static_cast<std::uint32_t>(VariantState::Running));
    EXPECT_EQ(live.variants[0].role,
              static_cast<std::uint32_t>(VariantRole::LeaderCandidate));
    EXPECT_GT(live.variants[0].syscalls, 0u);
    EXPECT_GT(live.variants[0].pid, 0u);
    // The follower drains concurrently; its lag is bounded, not fixed.
    EXPECT_LE(live.variants[1].ring_lag, live.ring_capacity);
    // No wire shipping in this engine: the wire sections stay zeroed.
    EXPECT_EQ(live.shipper.active, 0u);
    EXPECT_EQ(live.receiver.active, 0u);

    ASSERT_EQ(::write(gate[1], "gg", 2), 2);
    auto results = nvx.wait();
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 4);
    }
    ::close(gate[0]);
    ::close(gate[1]);
}

TEST(NvxTest, StatusReportFinalStateAfterDrain)
{
    auto app = []() -> int {
        for (int i = 0; i < 5; ++i)
            sys::vgetpid();
        return 3;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    ASSERT_EQ(results.size(), 2u);
    StatusReport report = nvx.status();
    EXPECT_EQ(report.live_mask, 0u);
    EXPECT_EQ(report.events_streamed, nvx.eventsStreamed());
    for (std::uint32_t v = 0; v < 2; ++v) {
        EXPECT_EQ(report.variants[v].state,
                  static_cast<std::uint32_t>(VariantState::Exited));
        EXPECT_EQ(report.variants[v].exit_status, 3);
        EXPECT_EQ(report.variants[v].restarts, 0u);
    }
}

TEST(NvxTest, BuilderComposesEngineAndHooks)
{
    // The fluent surface end to end: grouped config, named specs and
    // the on_variant_exit hook (called on the monitor thread).
    std::atomic<int> exits{0};
    auto app = []() -> int {
        sys::vgetpid();
        return 0;
    };
    auto nvx = Nvx::Builder()
                   .shmBytes(16 << 20)
                   .ringCapacity(64)
                   .progressTimeoutNs(10000000000ULL)
                   .onVariantExit([&exits](const VariantResult &r,
                                           bool restarting) {
                       if (!restarting && !r.crashed)
                           exits.fetch_add(1, std::memory_order_relaxed);
                   })
                   .variant(app)
                   .variant(VariantSpec(app).named("follower"))
                   .build();
    auto results = nvx->run();
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    EXPECT_EQ(exits.load(std::memory_order_relaxed), 2);
}

TEST(NvxTest, PerVariantRulesResolveOnlyForThatVariant)
{
    // The section 5.2 scenario done right: the rewrite rule belongs to
    // the revision that diverges, not to the engine. Variant 1 carries
    // an allow-getuid rule and survives its extra call; variant 2 has
    // no rules and must die with the classic lockstep verdict.
    const char *allow_getuid_at_getpid =
        "ld event[0]\n"
        "jeq #39, checkmine /* leader at getpid */\n"
        "jmp bad\n"
        "checkmine:\n"
        "ld [0]\n"
        "jeq #102, good /* follower wants getuid */\n"
        "bad: ret #0\n"
        "good: ret #0x7fff0000\n";
    auto app = []() -> int {
        if (Monitor::instance() &&
            Monitor::instance()->variantId() >= 1) {
            sys::vgetuid(); // extra call the leader never makes
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({
        VariantSpec(app).named("leader"),
        VariantSpec(app).named("patched").rule(allow_getuid_at_getpid),
        VariantSpec(app).named("unpatched"),
    });
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed) << "its own rule should resolve it";
    EXPECT_TRUE(results[2].crashed) << "no rule: divergence is fatal";
    EXPECT_EQ(results[2].status, kDivergenceExitStatus);
    EXPECT_GE(nvx.divergencesResolved(), 1u);
    EXPECT_GE(nvx.divergencesFatal(), 1u);
}

TEST(NvxTest, FollowerOnlyIsNeverElected)
{
    VARAN_SKIP_UNDER_ASAN();
    // Variant 0 (leader) crashes; variant 1 is FollowerOnly (e.g. a
    // sanitizer build) and must be passed over in favour of variant 2.
    std::atomic<std::uint32_t> failover_leader{0xffffffffu};
    auto app = []() -> int {
        for (int i = 0; i < 20; ++i) {
            if (i == 5 && Monitor::instance()->variantId() == 0) {
                int *p = nullptr;
                *p = 1;
            }
            sys::vgetpid();
        }
        return 0;
    };
    auto nvx = Nvx::Builder()
                   .shmBytes(16 << 20)
                   .ringCapacity(64)
                   .progressTimeoutNs(10000000000ULL)
                   .onFailover([&failover_leader](std::uint32_t,
                                                  std::uint32_t leader) {
                       failover_leader.store(leader,
                                             std::memory_order_relaxed);
                   })
                   .variant(app)
                   .variant(VariantSpec(app).named("asan").as(
                       VariantRole::FollowerOnly))
                   .variant(app)
                   .build();
    auto results = nvx->run();
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_FALSE(results[2].crashed);
    EXPECT_NE(nvx->currentLeader(), 1);
    EXPECT_GE(nvx->epoch(), 1u);
    EXPECT_EQ(failover_leader.load(std::memory_order_relaxed), 2u);
    StatusReport report = nvx->status();
    EXPECT_EQ(report.variants[1].role,
              static_cast<std::uint32_t>(VariantRole::FollowerOnly));
}

TEST(NvxTest, FollowerOnlyLeaderIndexFallsBackToCandidate)
{
    // leader_index pointing at a FollowerOnly spec must not make it
    // lead: the lowest LeaderCandidate takes the role instead.
    auto app = []() -> int {
        sys::vgetpid();
        return Monitor::instance()->isLeader() ? 50 : 51;
    };
    EngineConfig config = fastConfig();
    config.leader_index = 0;
    Nvx nvx(config);
    auto results = nvx.run({
        VariantSpec(app).as(VariantRole::FollowerOnly),
        VariantSpec(app),
    });
    EXPECT_EQ(results[0].status, 51);
    EXPECT_EQ(results[1].status, 50);
}

TEST(NvxTest, RestartPolicyRespawnsCrashedFollower)
{
    VARAN_SKIP_UNDER_ASAN();
    // A FollowerOnly variant with RestartPolicy::OnCrash dies on its
    // first incarnation; the coordinator must respawn it, re-attached
    // at the stream tail, and the second incarnation finishes clean.
    struct Shared {
        std::atomic<std::uint32_t> incarnation;
        std::atomic<std::uint32_t> follower_ready;
    };
    auto *shared = static_cast<Shared *>(
        ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_ANONYMOUS, -1, 0));
    ASSERT_NE(shared, MAP_FAILED);
    new (shared) Shared{};

    std::atomic<int> restarts_seen{0};
    auto app = [shared]() -> int {
        Monitor *monitor = Monitor::instance();
        if (monitor->variantId() == 1) {
            if (shared->incarnation.fetch_add(
                    1, std::memory_order_acq_rel) == 0) {
                int *p = nullptr;
                *p = 1; // first incarnation dies before any event
            }
            shared->follower_ready.store(1, std::memory_order_release);
        } else {
            // The leader publishes nothing until the respawned follower
            // is live, so the restart joins an empty stream tail.
            while (shared->follower_ready.load(
                       std::memory_order_acquire) == 0) {
                sleepNs(1000000);
            }
        }
        sys::vgetpid();
        return 0;
    };

    auto nvx =
        Nvx::Builder()
            .shmBytes(16 << 20)
            .ringCapacity(64)
            .progressTimeoutNs(10000000000ULL)
            .onVariantExit([&restarts_seen](const VariantResult &,
                                            bool restarting) {
                if (restarting)
                    restarts_seen.fetch_add(1, std::memory_order_relaxed);
            })
            .variant(app)
            .variant(VariantSpec(app)
                         .named("respawning")
                         .as(VariantRole::FollowerOnly)
                         .restartOn(RestartPolicy::OnCrash))
            .build();
    auto results = nvx->run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].crashed);
    EXPECT_EQ(results[0].status, 0);
    // The *final* incarnation exited clean; the crash was absorbed.
    EXPECT_FALSE(results[1].crashed);
    EXPECT_EQ(results[1].status, 0);
    EXPECT_EQ(results[1].restarts, 1u);
    EXPECT_EQ(restarts_seen.load(std::memory_order_relaxed), 1);
    EXPECT_EQ(shared->incarnation.load(std::memory_order_acquire), 2u);
    EXPECT_EQ(nvx->status().variants[1].restarts, 1u);
    ::munmap(shared, 4096);
}

TEST(NvxTest, LeaderWithoutSuccessorIsNotRestarted)
{
    VARAN_SKIP_UNDER_ASAN();
    // The leader crashes with a restart policy while only a
    // FollowerOnly variant survives: leadership cannot transfer, so a
    // respawn would come back *as leader* publishing fresh program
    // state into a mid-replay follower. The coordinator must refuse.
    auto app = []() -> int {
        if (Monitor::instance()->variantId() == 0) {
            sys::vgetpid();
            int *p = nullptr;
            *p = 1;
        }
        sys::vgetpid();
        return 0;
    };
    EngineConfig config = fastConfig();
    // Short progress timeout: the orphaned follower gives up quickly.
    config.ring.progress_timeout_ns = 2000000000ULL; // 2 s
    Nvx nvx(config);
    auto results = nvx.run({
        VariantSpec(app).restartOn(RestartPolicy::OnCrash),
        VariantSpec(app).as(VariantRole::FollowerOnly),
    });
    EXPECT_TRUE(results[0].crashed);
    EXPECT_EQ(results[0].restarts, 0u) << "must not resurrect as leader";
    EXPECT_EQ(nvx.status().variants[0].restarts, 0u);
}

TEST(NvxTest, WaitForDeadlineMarksSurvivors)
{
    // Variants still running at the waitFor deadline must report
    // "killed at timeout" (kTimedOutStatus), never a clean exit(0).
    int gate[2];
    ASSERT_EQ(::pipe(gate), 0);
    auto app = [gate]() -> int {
        char go = 0;
        sys::vread(gate[0], &go, 1); // blocks forever: never written
        return 0;
    };
    Nvx nvx(fastConfig());
    ASSERT_TRUE(nvx.start({app, app}).isOk());
    auto results = nvx.waitFor(300000000ULL); // 300 ms
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_EQ(r.status, kTimedOutStatus) << "variant " << r.variant;
        EXPECT_FALSE(r.crashed);
    }
    ::close(gate[0]);
    ::close(gate[1]);
}

TEST(NvxTest, WaitForBeforeDeadlineKeepsRealStatuses)
{
    auto app = []() -> int {
        sys::vgetpid();
        return 21;
    };
    Nvx nvx(fastConfig());
    ASSERT_TRUE(nvx.start({app, app}).isOk());
    auto results = nvx.waitFor(20000000000ULL);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 21);
    }
}

TEST(NvxTest, AnonymousEntryPointsStillRun)
{
    // The NvxOptions shim is gone (its one-release grace period
    // elapsed); the plain-function overloads remain and build default
    // VariantSpecs under the hood.
    EngineConfig config;
    config.ring.capacity = 64;
    config.shm_bytes = 16 << 20;
    config.ring.progress_timeout_ns = 10000000000ULL;
    auto app = []() -> int {
        sys::vgetpid();
        return 6;
    };
    Nvx nvx(std::move(config));
    auto results = nvx.run({app, app});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 6);
    }
    EXPECT_GE(nvx.eventsStreamed(), 1u);
}

} // namespace
} // namespace varan::core
