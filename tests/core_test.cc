/**
 * @file
 * End-to-end tests of the N-version execution engine: leader/follower
 * streaming, result replication, fd mirroring, write-once semantics,
 * virtual time, divergence handling with BPF rules, transparent
 * failover with leader promotion, multi-threaded tuples and forked
 * process tuples.
 *
 * Variant functions run in forked processes, so all verification
 * happens through exit statuses, pipes created before the engine
 * starts (inherited at identical descriptor numbers), and coordinator
 * statistics.
 */

#include <atomic>
#include <fcntl.h>
#include <memory>
#include <poll.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/nvx.h"
#include "syscalls/sys.h"

namespace varan::core {
namespace {

NvxOptions
fastOptions()
{
    NvxOptions options;
    options.ring_capacity = 64;
    options.shm_bytes = 16 << 20;
    options.progress_timeout_ns = 10000000000ULL; // 10 s test safety
    return options;
}

/** Read exactly @p len bytes with a deadline; returns what arrived. */
std::string
readExactly(int fd, std::size_t len, int timeout_ms = 20000)
{
    std::string out;
    std::uint64_t deadline = monotonicNs() +
                             std::uint64_t(timeout_ms) * 1000000ULL;
    while (out.size() < len && monotonicNs() < deadline) {
        struct pollfd pfd = {fd, POLLIN, 0};
        if (::poll(&pfd, 1, 100) <= 0)
            continue;
        char buf[256];
        ssize_t n = ::read(fd, buf,
                           std::min(sizeof(buf), len - out.size()));
        if (n > 0)
            out.append(buf, static_cast<std::size_t>(n));
        else if (n == 0)
            break;
    }
    return out;
}

TEST(NvxTest, SingleVariantRunsToCompletion)
{
    Nvx nvx(fastOptions());
    auto results = nvx.run({[]() -> int { return 17; }});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].crashed);
    EXPECT_EQ(results[0].status, 17);
}

TEST(NvxTest, AllVariantsReportTheirStatus)
{
    Nvx nvx(fastOptions());
    auto results = nvx.run({
        []() -> int { return 1; },
        []() -> int { return 1; },
        []() -> int { return 1; },
    });
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 1);
    }
}

TEST(NvxTest, WriteExecutesExactlyOnce)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    auto app = [fds]() -> int {
        const char msg[] = "hello";
        long n = sys::vwrite(fds[1], msg, 5);
        return n == 5 ? 0 : 9;
    };

    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    // Three variants, one leader: the pipe carries the message once.
    EXPECT_EQ(readExactly(fds[0], 5), "hello");
    struct pollfd pfd = {fds[0], POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 200), 0) << "extra bytes in the pipe";
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, FollowersSeeLeadersReadData)
{
    // The leader reads a scratch file; followers must observe the same
    // bytes without touching the file. Sum of bytes becomes the status.
    char path[] = "/tmp/varan-core-read-XXXXXX";
    int tmp = ::mkstemp(path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "\x01\x02\x03\x04", 4), 4);
    ::close(tmp);

    std::string file(path);
    auto app = [file]() -> int {
        long fd = sys::vopen(file.c_str(), O_RDONLY);
        if (fd < 0)
            return 90;
        unsigned char buf[4] = {};
        long n = sys::vread(static_cast<int>(fd), buf, 4);
        sys::vclose(static_cast<int>(fd));
        if (n != 4)
            return 91;
        return buf[0] + buf[1] + buf[2] + buf[3]; // 10
    };

    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    ::unlink(path);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 10) << "variant " << r.variant;
    }
    EXPECT_GT(nvx.fdTransfers(), 0u);
}

TEST(NvxTest, GetpidIsVirtualisedToLeader)
{
    // Real pids differ across variants; the streamed getpid must not.
    auto app = []() -> int {
        return static_cast<int>(sys::vgetpid() & 0x7f);
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app, app});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].status, results[1].status);
    EXPECT_EQ(results[1].status, results[2].status);
}

TEST(NvxTest, VirtualTimeComesFromLeader)
{
    auto app = []() -> int {
        struct timespec ts = {};
        sys::vclock_gettime(CLOCK_MONOTONIC, &ts);
        return static_cast<int>(ts.tv_nsec % 251);
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    EXPECT_EQ(results[0].status, results[1].status);
}

TEST(NvxTest, FdNumbersMirrorAcrossVariants)
{
    auto app = []() -> int {
        long fd1 = sys::vopen("/dev/null", O_RDONLY);
        long fd2 = sys::vopen("/dev/zero", O_RDONLY);
        sys::vclose(static_cast<int>(fd1));
        long fd3 = sys::vopen("/dev/null", O_WRONLY);
        // fd numbers must be identical in every variant; fold them into
        // the status byte.
        return static_cast<int>((fd1 * 49 + fd2 * 7 + fd3) & 0x7f);
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app, app});
    EXPECT_EQ(results[0].status, results[1].status);
    EXPECT_EQ(results[1].status, results[2].status);
    EXPECT_FALSE(results[0].crashed);
}

TEST(NvxTest, PipeSyscallMirrorsBothEnds)
{
    auto app = []() -> int {
        int fds[2] = {-1, -1};
        if (sys::vpipe2(fds, 0) < 0)
            return 80;
        const char byte = 'x';
        if (sys::vwrite(fds[1], &byte, 1) != 1)
            return 81;
        char in = 0;
        if (sys::vread(fds[0], &in, 1) != 1)
            return 82;
        sys::vclose(fds[0]);
        sys::vclose(fds[1]);
        return in == 'x' ? 0 : 83;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0) << "variant " << r.variant;
    }
}

TEST(NvxTest, StatsCountStreamedEvents)
{
    auto app = []() -> int {
        for (int i = 0; i < 10; ++i)
            sys::vgetpid();
        return 0;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    // 10 getpids + exit event, at least.
    EXPECT_GE(nvx.eventsStreamed(), 11u);
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
}

TEST(NvxTest, SmallRingBackpressureStillCompletes)
{
    NvxOptions options = fastOptions();
    options.ring_capacity = 4; // tiny: leader must block on followers
    auto app = []() -> int {
        for (int i = 0; i < 200; ++i)
            sys::vgetpid();
        return 0;
    };
    Nvx nvx(options);
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
}

TEST(NvxTest, FollowerCrashLeavesOthersRunning)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        for (int i = 0; i < 20; ++i) {
            if (i == 10 && Monitor::instance()->variantId() == 2) {
                int *p = nullptr;
                *p = 1; // follower 2 dies here
            }
            char c = static_cast<char>('a' + i);
            sys::vwrite(fds[1], &c, 1);
        }
        return 0;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_EQ(results[0].status, 0);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_TRUE(results[2].crashed);
    // All 20 writes made it out exactly once.
    std::string got = readExactly(fds[0], 20);
    EXPECT_EQ(got, "abcdefghijklmnopqrst");
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, LeaderCrashFailsOverTransparently)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        for (int i = 0; i < 10; ++i) {
            // The *original* leader dies after message 5; the follower
            // must be promoted and finish messages 6..10.
            if (i == 5 && Monitor::instance()->variantId() == 0) {
                int *p = nullptr;
                *p = 1;
            }
            char c = static_cast<char>('0' + i);
            sys::vwrite(fds[1], &c, 1);
        }
        return 0;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_EQ(results[1].status, 0);
    EXPECT_EQ(nvx.currentLeader(), 1);
    EXPECT_GE(nvx.epoch(), 1u);
    // Every message exactly once, in order, across the failover.
    EXPECT_EQ(readExactly(fds[0], 10), "0123456789");
    struct pollfd pfd = {fds[0], POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 200), 0) << "duplicated writes";
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, FailoverWithThreeVariantsElectsLowestLive)
{
    auto app = []() -> int {
        for (int i = 0; i < 30; ++i) {
            if (i == 7 && Monitor::instance()->variantId() == 0) {
                int *p = nullptr;
                *p = 1;
            }
            sys::vgetpid();
        }
        return 0;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app, app});
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_FALSE(results[2].crashed);
    // Leadership moved off the crashed variant (and then passes down
    // the live set as leaders exit normally at the end of the run).
    EXPECT_NE(nvx.currentLeader(), 0);
    EXPECT_GE(nvx.epoch(), 1u);
}

TEST(NvxTest, DivergenceWithoutRulesKillsFollower)
{
    auto app = []() -> int {
        // The follower performs an extra syscall the leader never
        // makes: a sequence divergence.
        if (Monitor::instance() &&
            Monitor::instance()->variantId() == 1) {
            sys::vgetuid();
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_TRUE(results[1].crashed);
    EXPECT_EQ(results[1].status, kDivergenceExitStatus);
    EXPECT_GE(nvx.divergencesFatal(), 1u);
}

TEST(NvxTest, AllowRuleExecutesFollowerExtraCallLocally)
{
    NvxOptions options = fastOptions();
    // Allow a getuid the leader did not make when the leader is at
    // getpid — modelled on the paper's Listing 1 (section 5.2).
    options.rewrite_rules.push_back(
        "ld event[0]\n"
        "jeq #39, checkmine /* leader at getpid */\n"
        "jmp bad\n"
        "checkmine:\n"
        "ld [0]\n"
        "jeq #102, good /* follower wants getuid */\n"
        "bad: ret #0\n"
        "good: ret #0x7fff0000\n");
    auto app = []() -> int {
        if (Monitor::instance() &&
            Monitor::instance()->variantId() == 1) {
            sys::vgetuid(); // extra call, resolved by the rule
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(options);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed) << "rule should have resolved it";
    EXPECT_GE(nvx.divergencesResolved(), 1u);
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
}

TEST(NvxTest, SkipRuleDropsLeaderOnlyEvent)
{
    NvxOptions options = fastOptions();
    // The leader performs an extra getuid; followers skip that event.
    options.rewrite_rules.push_back(
        "ld event[0]\n"
        "jeq #102, skip /* leader-only getuid */\n"
        "ret #0\n"
        "skip: ret #0x7ffd0000\n");
    auto app = []() -> int {
        if (Monitor::instance() &&
            Monitor::instance()->variantId() == 0) {
            sys::vgetuid(); // leader-only call
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(options);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_GE(nvx.divergencesResolved(), 1u);
}

TEST(NvxTest, ErrnoRuleSynthesisesResult)
{
    NvxOptions options = fastOptions();
    // Follower's extra getuid is absorbed with -ENOSYS (38).
    options.rewrite_rules.push_back(
        "ld [0]\n"
        "jeq #102, synth\n"
        "ret #0\n"
        "synth: ret #0x00050026\n"); // ERRNO | 38
    auto app = []() -> int {
        if (Monitor::instance() &&
            Monitor::instance()->variantId() == 1) {
            long r = sys::vgetuid();
            if (r != -38)
                return 70; // must observe the synthetic errno
        }
        sys::vgetpid();
        return 0;
    };
    Nvx nvx(options);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[1].crashed);
    EXPECT_EQ(results[1].status, 0);
}

TEST(NvxTest, WriteContentDivergenceIsDetected)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        const bool follower = Monitor::instance()->variantId() == 1;
        const char *msg = follower ? "EVIL!" : "good.";
        sys::vwrite(fds[1], msg, 5);
        return 0;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_TRUE(results[1].crashed) << "content divergence missed";
    EXPECT_EQ(readExactly(fds[0], 5), "good.");
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, MultiThreadedTuplesStreamIndependently)
{
    int pipe_a[2];
    int pipe_b[2];
    ASSERT_EQ(::pipe(pipe_a), 0);
    ASSERT_EQ(::pipe(pipe_b), 0);

    auto app = [pipe_a, pipe_b]() -> int {
        VThread worker([pipe_b] {
            for (int i = 0; i < 25; ++i) {
                char c = static_cast<char>('A' + (i % 26));
                sys::vwrite(pipe_b[1], &c, 1);
            }
        });
        for (int i = 0; i < 25; ++i) {
            char c = static_cast<char>('a' + (i % 26));
            sys::vwrite(pipe_a[1], &c, 1);
        }
        worker.join();
        return 0;
    };

    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    std::string a = readExactly(pipe_a[0], 25);
    std::string b = readExactly(pipe_b[0], 25);
    EXPECT_EQ(a, "abcdefghijklmnopqrstuvwxy");
    EXPECT_EQ(b, "ABCDEFGHIJKLMNOPQRSTUVWXY");
    for (int fd : {pipe_a[0], pipe_a[1], pipe_b[0], pipe_b[1]})
        ::close(fd);
}

TEST(NvxTest, ForkedProcessTupleStreams)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        long child = sys::invoke(SYS_fork);
        if (child == 0) {
            sys::vwrite(fds[1], "C", 1);
            sys::vexit(0);
        }
        sys::vwrite(fds[1], "P", 1);
        // wait4 is Local: each variant reaps its own child.
        int status = 0;
        ::waitpid(static_cast<pid_t>(child), &status, 0);
        return WIFEXITED(status) ? WEXITSTATUS(status) : 77;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0) << "variant " << r.variant;
    }
    std::string got = readExactly(fds[0], 2);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, "CP"); // each written exactly once, either order
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(NvxTest, SixFollowersComplete)
{
    // The paper's maximum configuration: one leader + six followers.
    auto app = []() -> int {
        for (int i = 0; i < 50; ++i)
            sys::vgetpid();
        return 0;
    };
    Nvx nvx(fastOptions());
    std::vector<VariantFn> variants(7, app);
    auto results = nvx.run(variants);
    ASSERT_EQ(results.size(), 7u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 0);
    }
}

TEST(NvxTest, NonDefaultLeaderIndex)
{
    NvxOptions options = fastOptions();
    options.leader_index = 1; // e.g. newest revision leads (section 2.2)
    auto app = []() -> int {
        sys::vgetpid();
        return Monitor::instance()->isLeader() ? 50 : 51;
    };
    Nvx nvx(options);
    auto results = nvx.run({app, app});
    EXPECT_EQ(results[0].status, 51);
    EXPECT_EQ(results[1].status, 50);
}

TEST(NvxTest, SlowFollowerIsBoundedByRingCapacity)
{
    NvxOptions options = fastOptions();
    options.ring_capacity = 8;
    auto app = []() -> int {
        const bool slow = Monitor::instance()->variantId() == 1;
        for (int i = 0; i < 40; ++i) {
            if (slow && i % 8 == 0)
                sleepNs(2000000); // sanitizer-style lag (section 5.3)
            sys::vgetpid();
        }
        return 0;
    };
    Nvx nvx(options);
    Status started = nvx.start({app, app});
    ASSERT_TRUE(started.isOk());
    // While running, the log distance can never exceed the capacity.
    std::uint64_t max_seen = 0;
    for (int i = 0; i < 50; ++i) {
        max_seen = std::max(max_seen, nvx.ringLagOf(1));
        sleepNs(1000000);
    }
    auto results = nvx.wait();
    EXPECT_LE(max_seen, 8u);
    for (const auto &r : results)
        EXPECT_FALSE(r.crashed);
}

TEST(NvxTest, CoalescedPublishReplicatesExactly)
{
    // The DMON-style relaxed mode: payload-free events ship in batched
    // runs. Replication semantics must be indistinguishable from the
    // per-event path when nobody crashes.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    NvxOptions options = fastOptions();
    options.publish_coalesce = true;
    auto app = [fds]() -> int {
        long pid = sys::vgetpid();
        for (int i = 0; i < 26; ++i) {
            char c = static_cast<char>('a' + i);
            sys::vwrite(fds[1], &c, 1);
            // Payload-free identity calls interleave with the writes
            // so runs mix hashed and plain events.
            if (sys::vgetpid() != pid)
                return 77;
        }
        return 0;
    };
    Nvx nvx(options);
    auto results = nvx.run({app, app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 0) << "variant " << r.variant;
    }
    // Exactly once, in order: the leader's writes, nobody else's.
    EXPECT_EQ(readExactly(fds[0], 26), "abcdefghijklmnopqrstuvwxyz");
    struct pollfd pfd = {fds[0], POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 200), 0) << "duplicated writes";
    ::close(fds[0]);
    ::close(fds[1]);

    // The batched path actually ran: runs flushed with fewer head
    // stores than events.
    EXPECT_GT(nvx.eventsCoalesced(), 0u);
    EXPECT_GT(nvx.publishBatches(), 0u);
    EXPECT_GE(nvx.eventsCoalesced(), nvx.publishBatches());
    EXPECT_GE(nvx.eventsStreamed(), nvx.eventsCoalesced());
}

TEST(NvxTest, CoalescedRunsFlushBeforeBlockingCalls)
{
    // A read on an empty pipe blocks the leader until the follower-fed
    // byte below arrives... here simpler: the leader writes, then
    // blocks in read on a second pipe serviced by the test. Pending
    // coalesced events must flush before the blocking read, or the
    // followers would never see the writes while the leader sleeps.
    int out[2], in[2];
    ASSERT_EQ(::pipe(out), 0);
    ASSERT_EQ(::pipe(in), 0);
    NvxOptions options = fastOptions();
    options.publish_coalesce = true;
    // A window far larger than the test runtime: only the may_block
    // barrier can flush in time.
    options.coalesce_window_ns = 60000000000ULL;
    options.coalesce_max = 64;
    auto app = [out, in]() -> int {
        for (int i = 0; i < 5; ++i) {
            char c = static_cast<char>('0' + i);
            sys::vwrite(out[1], &c, 1);
        }
        char ack = 0;
        if (sys::vread(in[0], &ack, 1) != 1 || ack != 'k')
            return 78;
        return 0;
    };
    Nvx nvx(options);
    ASSERT_TRUE(nvx.start({app, app}).isOk());
    EXPECT_EQ(readExactly(out[0], 5), "01234");
    // The leader is now parked in read(). The five write events must
    // have been *published* (not merely executed) before it blocked —
    // the flush-before-blocking barrier — or the follower would sit
    // starved behind a pending run for the whole 60 s window.
    std::uint64_t deadline = monotonicNs() + 5000000000ULL;
    while (nvx.eventsStreamed() < 5 && monotonicNs() < deadline)
        sleepNs(1000000);
    EXPECT_GE(nvx.eventsStreamed(), 5u);
    ASSERT_EQ(::write(in[1], "k", 1), 1);
    auto results = nvx.wait();
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    ::close(out[0]);
    ::close(out[1]);
    ::close(in[0]);
    ::close(in[1]);
}

TEST(NvxTest, MultiTupleRunsUseDistinctPoolArenas)
{
    // Two tuples reading files concurrently: payloads come from each
    // tuple's own arena and nothing spills to the global fallback.
    char path[] = "/tmp/varan-core-shard-XXXXXX";
    int tmp = ::mkstemp(path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "\x05\x06\x07\x08", 4), 4);
    ::close(tmp);

    std::string file(path);
    auto readSum = [file]() -> int {
        long fd = sys::vopen(file.c_str(), O_RDONLY);
        if (fd < 0)
            return 90;
        unsigned char buf[4] = {};
        long n = sys::vread(static_cast<int>(fd), buf, 4);
        sys::vclose(static_cast<int>(fd));
        if (n != 4)
            return 91;
        return buf[0] + buf[1] + buf[2] + buf[3]; // 26
    };
    auto app = [readSum]() -> int {
        int worker_sum = 0;
        {
            VThread worker([&worker_sum, readSum] {
                for (int i = 0; i < 8; ++i)
                    worker_sum = readSum();
            });
            for (int i = 0; i < 8; ++i) {
                if (readSum() != 26)
                    return 92;
            }
        }
        return worker_sum; // 26 when the worker tuple replayed right
    };

    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    ::unlink(path);
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 26) << "variant " << r.variant;
    }
    // Healthy arenas never fall back to the shared one.
    EXPECT_EQ(nvx.poolSpills(), 0u);
}

TEST(NvxTest, CoalescedRunFlushesOnComputeBoundLeader)
{
    // A leader that goes compute-bound dispatches no further syscalls,
    // so no barrier path can flush its pending run — only the
    // time-based flusher can. The app publishes five payload-free
    // events, then spins on a shared flag the test raises only once
    // the events became visible to the engine.
    auto *flag = static_cast<std::atomic<std::uint32_t> *>(
        ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_ANONYMOUS, -1, 0));
    ASSERT_NE(flag, MAP_FAILED);
    new (flag) std::atomic<std::uint32_t>(0);

    NvxOptions options = fastOptions();
    options.publish_coalesce = true;
    options.coalesce_max = 64;           // five events never fill the run
    options.coalesce_window_ns = 50000000; // 50 ms staleness cap
    auto app = [flag]() -> int {
        for (int i = 0; i < 5; ++i)
            sys::vgetpid();
        // Compute-bound phase: no syscalls at all.
        while (flag->load(std::memory_order_acquire) == 0) {
        }
        return 0;
    };
    Nvx nvx(options);
    ASSERT_TRUE(nvx.start({app, app}).isOk());

    // Without the flusher this loops to the deadline: the run would sit
    // in the coalescer while the leader spins.
    std::uint64_t deadline = monotonicNs() + 5000000000ULL;
    while (nvx.eventsStreamed() < 5 && monotonicNs() < deadline)
        sleepNs(1000000);
    EXPECT_GE(nvx.eventsStreamed(), 5u)
        << "stale coalesced run never flushed";

    flag->store(1, std::memory_order_release);
    auto results = nvx.wait();
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, 0);
    }
    ::munmap(flag, 4096);
}

TEST(NvxTest, ManyTuplesFdTransferStress)
{
    // Regression for the per-tuple descriptor-routing race: leader
    // threads of several tuples create descriptors concurrently, all
    // funneled through one data channel per follower. Before transfers
    // carried tuple tags (and the follower demuxed them), concurrent
    // recvmsg could hand tuple A's descriptor to tuple B and the
    // mirroring dup2/close dance could destroy a live descriptor.
    constexpr int kWorkers = 3;
    constexpr int kOpensPerTuple = 25;
    auto app = []() -> int {
        auto churn = []() -> bool {
            for (int i = 0; i < kOpensPerTuple; ++i) {
                long fd = sys::vopen("/dev/null", O_RDONLY);
                if (fd < 0)
                    return false;
                char buf[4];
                sys::vread(static_cast<int>(fd), buf, sizeof(buf));
                if (sys::vclose(static_cast<int>(fd)) < 0)
                    return false;
            }
            return true;
        };
        std::atomic<int> ok{0};
        {
            std::vector<std::unique_ptr<VThread>> workers;
            for (int w = 0; w < kWorkers; ++w) {
                workers.push_back(std::make_unique<VThread>([&ok, churn] {
                    if (churn())
                        ok.fetch_add(1, std::memory_order_relaxed);
                }));
            }
            if (churn())
                ok.fetch_add(1, std::memory_order_relaxed);
        }
        return ok.load(std::memory_order_relaxed) == kWorkers + 1 ? 0 : 93;
    };

    NvxOptions options = fastOptions();
    options.progress_timeout_ns = 20000000000ULL;
    Nvx nvx(options);
    auto results = nvx.run({app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, 0) << "variant " << r.variant;
    }
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
    EXPECT_GT(nvx.fdTransfers(),
              static_cast<std::uint64_t>(kWorkers * kOpensPerTuple));
}

TEST(NvxTest, PoolStatsExposeArenaPressure)
{
    // The coordinator status slice: per-arena carve cursors and chunk
    // counts, fed by real payload traffic on tuple 0.
    char path[] = "/tmp/varan-core-stats-XXXXXX";
    int tmp = ::mkstemp(path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "stats", 5), 5);
    ::close(tmp);

    std::string file(path);
    auto app = [file]() -> int {
        for (int i = 0; i < 10; ++i) {
            long fd = sys::vopen(file.c_str(), O_RDONLY);
            char buf[8];
            sys::vread(static_cast<int>(fd), buf, sizeof(buf));
            sys::vclose(static_cast<int>(fd));
        }
        return 0;
    };
    Nvx nvx(fastOptions());
    auto results = nvx.run({app, app});
    ::unlink(path);
    for (const auto &r : results)
        EXPECT_FALSE(r.crashed);

    shmem::PoolStats stats = nvx.poolStats();
    EXPECT_EQ(stats.num_shards, kMaxTuples);
    EXPECT_EQ(stats.spills, nvx.poolSpills());
    // Tuple 0 carved from its own arena; nobody touched the others.
    EXPECT_GT(stats.shard[0].bytes_carved, 0u);
    EXPECT_GT(stats.shard[0].live_chunks + stats.shard[0].free_chunks, 0u);
    EXPECT_EQ(stats.shard[1].bytes_carved, 0u);
    EXPECT_EQ(stats.global.live_chunks, 0u);
    EXPECT_LE(stats.shard[0].bytes_carved, stats.shard[0].bytes_total);
}

} // namespace
} // namespace varan::core
