/**
 * @file
 * Tests for the prior-work baseline: the centralised lockstep monitor
 * must synchronise variants, execute externally-visible calls once,
 * replicate results and buffers, kill divergent followers, and the
 * ptrace cost probe must expose the per-call tax (Table 2's context).
 */

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "lockstep/lockstep.h"
#include "syscalls/sys.h"

namespace varan::lockstep {
namespace {

TEST(LockstepTest, TwoVariantsAgreeOnResults)
{
    auto app = []() -> int {
        long pid = sys::vgetpid();
        return static_cast<int>(pid & 0x7f);
    };
    LockstepEngine engine;
    auto results = engine.run({app, app});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    // The monitor executes getpid once (in the executor) and both
    // variants observe the same value.
    EXPECT_EQ(results[0].status, results[1].status);
}

TEST(LockstepTest, WriteExecutesExactlyOnce)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        return sys::vwrite(fds[1], "once", 4) == 4 ? 0 : 9;
    };
    LockstepEngine engine;
    auto results = engine.run({app, app, app});
    for (const auto &r : results)
        EXPECT_EQ(r.status, 0);
    char buf[8] = {};
    EXPECT_EQ(::read(fds[0], buf, 4), 4);
    EXPECT_STREQ(buf, "once");
    struct pollfd pfd = {fds[0], POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 100), 0) << "duplicate write slipped out";
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(LockstepTest, ReadDataReplicatesToAllVariants)
{
    char path[] = "/tmp/varan-lockstep-XXXXXX";
    int tmp = ::mkstemp(path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "\x05\x06", 2), 2);
    ::close(tmp);
    std::string file(path);
    auto app = [file]() -> int {
        long fd = sys::vopen(file.c_str(), O_RDONLY);
        if (fd < 0)
            return 90;
        unsigned char buf[2] = {};
        long n = sys::vread(static_cast<int>(fd), buf, 2);
        sys::vclose(static_cast<int>(fd));
        return n == 2 ? buf[0] + buf[1] : 91;
    };
    LockstepEngine engine;
    auto results = engine.run({app, app});
    ::unlink(path);
    EXPECT_EQ(results[0].status, 11);
    EXPECT_EQ(results[1].status, 11);
}

TEST(LockstepTest, DivergentFollowerIsKilled)
{
    // Variant 1 inserts an extra getuid: the lockstep barrier sees
    // different syscall numbers and terminates the minority — the
    // paper's core criticism (no flexibility, section 2.3).
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        // Use the pipe to learn "am I variant 1" deterministically:
        // variant index is not exposed by the lockstep engine, so the
        // first variant to run occupies the pipe token.
        sys::vgetpid();
        return 0;
    };
    auto divergent = [fds]() -> int {
        sys::vgetuid(); // extra call: lockstep violation
        sys::vgetpid();
        return 0;
    };
    LockstepEngine engine;
    auto results = engine.run({app, divergent});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_EQ(results[0].status, 0);
    // The divergent follower was killed by the monitor (exit 73).
    EXPECT_EQ(results[1].status, 73);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(LockstepTest, SingleVariantDegenerateCase)
{
    auto app = []() -> int {
        sys::vgetpid(); // one monitored call
        return 5;
    };
    LockstepEngine engine;
    auto results = engine.run({app});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, 5);
    EXPECT_GT(engine.monitoredCalls(), 0u);
}

TEST(PtraceCostTest, TracedCallsAreSlower)
{
    PtraceCost cost = measurePtraceCost(2000);
    EXPECT_GT(cost.native_cycles_per_call, 0);
    if (cost.ptrace_available) {
        // The whole premise of the paper: ptrace multiplies per-call
        // cost by an order of magnitude or more.
        EXPECT_GT(cost.traced_cycles_per_call,
                  cost.native_cycles_per_call * 3);
    }
}

} // namespace
} // namespace varan::lockstep
