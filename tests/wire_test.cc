/**
 * @file
 * Multi-node event shipping tests: frame validation, framing round
 * trips over a socketpair, corrupt/truncated frame rejection, a full
 * end-to-end leader -> wire -> remote-follower run through the
 * unmodified dispatch loop, link-drop failover with retransmission,
 * the pool-statistics handshake snapshot, the coordinator status RPC
 * (StatusReport encode/decode round trip + a live remote request
 * answered by the shipper), and — protocol v3 — epoch reconciliation
 * across leader generations, decodable stale-Hello rejection,
 * one-shipper/N-receiver fan-out with per-peer credit isolation, and
 * cross-node promotion (unit-level election plus the full
 * leader-node-death end-to-end scenario, whose links run through the
 * FaultLink harness so the death is a scripted frame-boundary cut
 * rather than a SIGKILL/reconnect race).
 */

#include <csignal>
#include <cstring>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/nvx.h"
#include "harness/faultlink.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"
#include "wire/protocol.h"
#include "wire/receiver.h"
#include "wire/shipper.h"

namespace varan::wire {
namespace {

constexpr std::uint32_t kCap = 64;

/** A leader-side harness: region + layout a test publishes into. */
struct FakeLeader {
    shmem::Region region;
    core::EngineLayout layout;

    FakeLeader()
    {
        auto r = shmem::Region::create(8 << 20);
        VARAN_CHECK(r.ok());
        region = std::move(r.value());
        layout = core::EngineLayout::create(&region, 1, 0, kCap);
    }

    /** Publish one event the way Monitor::publishEvent does. */
    void
    publish(std::uint32_t tuple, ring::Event event,
            const void *payload_data = nullptr,
            std::uint32_t payload_size = 0)
    {
        core::ControlBlock *cb = layout.controlBlock(&region);
        shmem::ShardedPool pool = layout.pool(&region);
        ring::RingBuffer ring = layout.tupleRing(&region, tuple);
        std::uint64_t *shadow = layout.tupleShadow(&region, tuple);

        shmem::Offset payload = 0;
        if (payload_data != nullptr) {
            payload = pool.allocate(tuple, payload_size, 1);
            VARAN_CHECK(payload != 0);
            std::memcpy(pool.pointer(payload, payload_size), payload_data,
                        payload_size);
            event.flags |= ring::kHasPayload;
            event.payload = static_cast<std::uint32_t>(payload);
            event.payload_size = payload_size;
        }
        std::uint64_t seq = 0;
        VARAN_CHECK(ring.claim(1, &seq, {}));
        std::uint64_t idx = seq & (cb->ring_capacity - 1);
        if (shadow[idx] != 0)
            pool.release(shadow[idx]);
        shadow[idx] = payload;
        ring.commit({&event, 1});
    }
};

/** A remote-side harness: external-leader layout + attached consumer. */
struct FakeRemote {
    shmem::Region region;
    core::EngineLayout layout;

    FakeRemote()
    {
        auto r = shmem::Region::create(8 << 20);
        VARAN_CHECK(r.ok());
        region = std::move(r.value());
        layout =
            core::EngineLayout::create(&region, 1, core::kNoLeader, kCap);
    }

    /** Drain everything re-materialized into tuple @p tuple. */
    std::vector<ring::Event>
    drain(std::uint32_t tuple)
    {
        ring::RingBuffer ring = layout.tupleRing(&region, tuple);
        std::vector<ring::Event> out;
        ring::Event event;
        // Slot 0 was pre-attached by the external-leader layout.
        while (ring.poll(0, &event))
            out.push_back(event);
        return out;
    }
};

ring::Event
syscallEvent(std::uint64_t timestamp, std::uint16_t nr, std::int64_t result)
{
    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.timestamp = timestamp;
    event.nr = nr;
    event.result = result;
    return event;
}

TEST(WireProtocolTest, HeaderValidation)
{
    FrameHeader h = makeHeader(FrameType::Events, 128);
    h.tuple = 3;
    EXPECT_TRUE(headerValid(h));

    FrameHeader bad_magic = h;
    bad_magic.magic ^= 1;
    EXPECT_FALSE(headerValid(bad_magic));

    FrameHeader bad_version = h;
    bad_version.version = kProtocolVersion + 1;
    EXPECT_FALSE(headerValid(bad_version));

    FrameHeader bad_type = h;
    bad_type.type = 99;
    EXPECT_FALSE(headerValid(bad_type));

    FrameHeader bad_len = h;
    bad_len.body_len = kMaxBodyBytes + 1;
    EXPECT_FALSE(headerValid(bad_len));

    FrameHeader bad_tuple = h;
    bad_tuple.tuple = core::kMaxTuples;
    EXPECT_FALSE(headerValid(bad_tuple));
}

TEST(WireProtocolTest, ChecksumDetectsFlips)
{
    std::uint8_t body[64];
    for (std::size_t i = 0; i < sizeof(body); ++i)
        body[i] = static_cast<std::uint8_t>(i * 7);
    std::uint32_t crc = bodyChecksum(body, sizeof(body));
    body[40] ^= 0x10;
    EXPECT_NE(crc, bodyChecksum(body, sizeof(body)));
}

TEST(WireShipTest, FramingRoundTripWithPayloads)
{
    FakeLeader leader;
    FakeRemote remote;

    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    Shipper::Options ship_opts;
    ship_opts.ship_batch = 8;
    Shipper shipper(&leader.region, &leader.layout, ship_opts);
    ASSERT_TRUE(shipper.attachTaps().isOk());

    Receiver receiver(&remote.region, &remote.layout);

    // Handshake needs both ends active: receiver first (it blocks on
    // Hello), then shipper.
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    // A mixed stream: payload-free, payload-carrying, fd event.
    const char note[] = "remote payload";
    leader.publish(0, syscallEvent(1, 39 /*getpid*/, 4242));
    leader.publish(0, syscallEvent(2, 0 /*read*/, sizeof(note)), note,
                   sizeof(note));
    ring::Event fd_event = syscallEvent(3, 2 /*open*/, 7);
    fd_event.flags |= ring::kFdTransfer;
    leader.publish(0, fd_event);

    EXPECT_EQ(shipper.pumpOnce(), 3u);
    EXPECT_EQ(receiver.serveOnce(1000), 1);

    auto events = remote.drain(0);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].nr, 39);
    EXPECT_EQ(events[0].result, 4242);
    EXPECT_EQ(events[1].nr, 0);
    ASSERT_TRUE(events[1].hasPayload());
    EXPECT_EQ(events[1].payload_size, sizeof(note));
    shmem::ShardedPool pool = remote.layout.pool(&remote.region);
    EXPECT_EQ(std::memcmp(pool.pointer(events[1].payload, sizeof(note)),
                          note, sizeof(note)),
              0);
    // Descriptor transfer is virtualised across the wire.
    EXPECT_FALSE(events[2].transfersFd());

    EXPECT_EQ(receiver.stats().events, 3u);
    EXPECT_EQ(receiver.stats().corrupt_frames, 0u);
    // The fd event is an ack point: a credit went back immediately.
    EXPECT_GE(receiver.stats().credits_sent, 1u);

    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(WireShipTest, CorruptFrameDropsLink)
{
    FakeLeader leader;
    FakeRemote remote;
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    Shipper shipper(&leader.region, &leader.layout);
    ASSERT_TRUE(shipper.attachTaps().isOk());
    Receiver receiver(&remote.region, &remote.layout);
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    // A frame whose checksum does not match its body.
    ring::Event event = syscallEvent(1, 39, 0);
    FrameHeader header = makeHeader(FrameType::Events, sizeof(event));
    header.tuple = 0;
    header.seq = 0;
    header.count = 1;
    header.body_crc = bodyChecksum(&event, sizeof(event)) ^ 0xdead;
    ASSERT_EQ(::send(sv[0], &header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    ASSERT_EQ(::send(sv[0], &event, sizeof(event), 0),
              static_cast<ssize_t>(sizeof(event)));

    EXPECT_EQ(receiver.serveOnce(1000), -1);
    EXPECT_FALSE(receiver.linkUp());
    EXPECT_EQ(receiver.stats().corrupt_frames, 1u);
    EXPECT_EQ(receiver.stats().events, 0u);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(WireShipTest, TruncatedFrameDropsLink)
{
    FakeLeader leader;
    FakeRemote remote;
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    Shipper shipper(&leader.region, &leader.layout);
    ASSERT_TRUE(shipper.attachTaps().isOk());
    Receiver receiver(&remote.region, &remote.layout);
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    // Announce a 2-event frame but deliver half an event, then hang up.
    ring::Event event = syscallEvent(1, 39, 0);
    FrameHeader header = makeHeader(
        FrameType::Events, 2 * sizeof(ring::Event));
    header.tuple = 0;
    header.count = 2;
    header.body_crc = 0;
    ASSERT_EQ(::send(sv[0], &header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    ASSERT_EQ(::send(sv[0], &event, sizeof(event) / 2, 0),
              static_cast<ssize_t>(sizeof(event) / 2));
    ::close(sv[0]);

    EXPECT_EQ(receiver.serveOnce(1000), -1);
    EXPECT_FALSE(receiver.linkUp());
    EXPECT_EQ(receiver.stats().events, 0u);
    ::close(sv[1]);
}

TEST(WireShipTest, HandshakeCarriesPoolStats)
{
    FakeLeader leader;
    FakeRemote remote;

    // Put visible pressure on tuple 0's arena before the handshake.
    shmem::ShardedPool pool = leader.layout.pool(&leader.region);
    ASSERT_NE(pool.allocate(0, 1000, 1), 0u);
    ASSERT_NE(pool.allocate(0, 1000, 1), 0u);

    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    Shipper shipper(&leader.region, &leader.layout);
    ASSERT_TRUE(shipper.attachTaps().isOk());
    Receiver receiver(&remote.region, &remote.layout);
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    const HelloBody &hello = receiver.remoteHello();
    EXPECT_EQ(hello.ring_capacity, kCap);
    EXPECT_EQ(hello.max_tuples, core::kMaxTuples);
    EXPECT_EQ(hello.pool.num_shards, core::kMaxTuples);
    EXPECT_EQ(hello.pool.shard[0].live_chunks, 2u);
    EXPECT_GT(hello.pool.shard[0].bytes_carved, 0u);
    EXPECT_GT(hello.pool.shard[0].free_chunks, 0u);
    EXPECT_EQ(hello.pool.shard[1].live_chunks, 0u);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(WireShipTest, LinkDropFailoverRetransmitsWithoutLossOrDup)
{
    FakeLeader leader;
    FakeRemote remote;

    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    Shipper::Options ship_opts;
    ship_opts.ship_batch = 4;
    Shipper shipper(&leader.region, &leader.layout, ship_opts);
    ASSERT_TRUE(shipper.attachTaps().isOk());

    Receiver::Options recv_opts;
    recv_opts.credit_every = 4; // ack the first frame promptly
    Receiver receiver(&remote.region, &remote.layout, recv_opts);
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    // First frame lands and is credited.
    for (std::uint64_t i = 0; i < 4; ++i)
        leader.publish(0, syscallEvent(i + 1, 39, 100 + i));
    EXPECT_EQ(shipper.pumpOnce(), 4u);
    EXPECT_EQ(receiver.serveOnce(1000), 1);
    EXPECT_EQ(receiver.stats().credits_sent, 1u);

    // The link dies mid-batch: a second frame is shipped but the
    // receiver never sees it.
    for (std::uint64_t i = 4; i < 6; ++i)
        leader.publish(0, syscallEvent(i + 1, 39, 100 + i));
    ::close(sv[1]); // remote end gone
    shipper.pumpOnce();
    // The write may only fail once the kernel notices; pump again.
    shipper.pumpOnce();
    EXPECT_FALSE(shipper.linkUp());
    ::close(sv[0]);

    // More events pile up while the link is down (buffered, unacked).
    for (std::uint64_t i = 6; i < 9; ++i)
        leader.publish(0, syscallEvent(i + 1, 39, 100 + i));
    shipper.pumpOnce();

    // Failover: a replacement socket, re-handshake, retransmit.
    int sv2[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv2), 0);
    std::thread readopting(
        [&] { ASSERT_TRUE(receiver.adopt(sv2[1]).isOk()); });
    ASSERT_TRUE(shipper.reconnect(sv2[0]).isOk());
    readopting.join();
    EXPECT_GE(shipper.stats().reconnects, 1u);
    EXPECT_GE(receiver.stats().reconnects, 1u);

    while (receiver.serveOnce(200) > 0) {
    }

    // Exactly events 1..9, in order, no duplicates, no holes.
    auto events = remote.drain(0);
    ASSERT_EQ(events.size(), 9u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].timestamp, i + 1);
        EXPECT_EQ(events[i].result,
                  static_cast<std::int64_t>(100 + i));
    }
    EXPECT_EQ(receiver.nextSeq(0), 9u);
    ::close(sv2[0]);
    ::close(sv2[1]);
}

TEST(WireEndToEndTest, RemoteFollowerConsumesLiveStream)
{
    // The real thing: a leader engine ships its rings through a socket
    // to a Receiver feeding an external-leader engine whose follower
    // replays the stream through the unmodified dispatch loop —
    // payloads, descriptor events, thread tuples and the exit.
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);

    auto app = [pipe_fds]() -> int {
        long pid = sys::vgetpid();
        long fd = sys::vopen("/dev/null", 0 /*O_RDONLY*/);
        char buf[32] = {};
        sys::vread(static_cast<int>(fd), buf, sizeof(buf));
        sys::vclose(static_cast<int>(fd));
        sys::vwrite(pipe_fds[1], "wire", 4);
        long t = 0;
        sys::vtime(&t);
        return static_cast<int>((pid ^ t) & 0x3f);
    };

    const std::string endpoint =
        "varan-wire-e2e-" + std::to_string(::getpid());
    auto listening = netio::listenAbstract(endpoint);
    ASSERT_TRUE(listening.ok());

    // Remote node: external-leader engine + receiver.
    core::EngineConfig remote_config;
    remote_config.ring.capacity = 128;
    remote_config.shm_bytes = 16 << 20;
    remote_config.external_leader = true;
    remote_config.ring.progress_timeout_ns = 20000000000ULL;
    core::Nvx remote_nvx(remote_config);
    ASSERT_TRUE(remote_nvx.start({app}).isOk());
    Receiver receiver(remote_nvx.region(), &remote_nvx.layout());

    std::thread accepting([&] {
        long conn = netio::acceptConnection(listening.value(), false);
        ASSERT_GE(conn, 0);
        ASSERT_TRUE(receiver.adopt(static_cast<int>(conn)).isOk());
        receiver.start();
    });

    // Leader node: ordinary engine with remote shipping on.
    int live_status = 0;
    {
        core::EngineConfig config;
        config.ring.capacity = 128;
        config.shm_bytes = 16 << 20;
        config.remote.endpoint = endpoint;
        config.tuning.ship_batch = 8;
        core::Nvx nvx(config);
        ASSERT_TRUE(nvx.start({app}).isOk());
        auto results = nvx.waitFor(30000000000ULL);
        ASSERT_EQ(results.size(), 1u);
        ASSERT_FALSE(results[0].crashed);
        live_status = results[0].status;
        ASSERT_GT(nvx.shipper()->stats().events, 0u);
    }
    accepting.join();

    auto remote_results = remote_nvx.waitFor(30000000000ULL);
    ASSERT_TRUE(receiver.finish().isOk());
    ASSERT_EQ(remote_results.size(), 1u);
    EXPECT_FALSE(remote_results[0].crashed);
    // Bit-exact replay: the remote follower reproduces pid ^ time.
    EXPECT_EQ(remote_results[0].status, live_status);

    // The pipe write happened exactly once (on the leader node).
    char buf[8] = {};
    EXPECT_EQ(::read(pipe_fds[0], buf, 4), 4);
    EXPECT_STREQ(buf, "wire");

    EXPECT_GT(receiver.stats().events, 0u);
    EXPECT_GT(receiver.stats().payload_bytes, 0u);
    EXPECT_EQ(receiver.stats().corrupt_frames, 0u);
    EXPECT_GT(receiver.remoteHello().ring_capacity, 0u);

    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    sys::vclose(static_cast<int>(listening.value()));
}

TEST(WireEndToEndTest, ReceiverRecordsAdoptedStreamToLog)
{
    // Same wire path as above, but the receiver doubles as a recorder:
    // Options::record_path sinks every adopted event into an rr log v2
    // capture that readLog() accepts cleanly afterwards.
    auto app = []() -> int {
        for (int i = 0; i < 10; ++i)
            sys::vgetpid();
        long fd = sys::vopen("/dev/null", 0 /*O_RDONLY*/);
        char buf[16] = {};
        sys::vread(static_cast<int>(fd), buf, sizeof(buf));
        sys::vclose(static_cast<int>(fd));
        return 11;
    };

    const std::string endpoint =
        "varan-wire-rec-" + std::to_string(::getpid());
    const std::string log_path =
        "/tmp/varan-wire-rrlog-" + std::to_string(::getpid()) + ".log";
    auto listening = netio::listenAbstract(endpoint);
    ASSERT_TRUE(listening.ok());

    core::EngineConfig remote_config;
    remote_config.ring.capacity = 128;
    remote_config.shm_bytes = 16 << 20;
    remote_config.external_leader = true;
    remote_config.ring.progress_timeout_ns = 20000000000ULL;
    core::Nvx remote_nvx(remote_config);
    ASSERT_TRUE(remote_nvx.start({app}).isOk());
    Receiver::Options options;
    options.record_path = log_path;
    Receiver receiver(remote_nvx.region(), &remote_nvx.layout(), options);

    std::thread accepting([&] {
        long conn = netio::acceptConnection(listening.value(), false);
        ASSERT_GE(conn, 0);
        ASSERT_TRUE(receiver.adopt(static_cast<int>(conn)).isOk());
        receiver.start();
    });

    {
        core::EngineConfig config;
        config.ring.capacity = 128;
        config.shm_bytes = 16 << 20;
        config.remote.endpoint = endpoint;
        config.tuning.ship_batch = 8;
        core::Nvx nvx(config);
        ASSERT_TRUE(nvx.start({app}).isOk());
        auto results = nvx.waitFor(30000000000ULL);
        ASSERT_EQ(results.size(), 1u);
        ASSERT_FALSE(results[0].crashed);
    }
    accepting.join();

    auto remote_results = remote_nvx.waitFor(30000000000ULL);
    ASSERT_TRUE(receiver.finish().isOk());
    ASSERT_EQ(remote_results.size(), 1u);
    EXPECT_EQ(remote_results[0].status, 11);

    // Every event the receiver published also reached the capture, and
    // the capture parses as a clean v2 log.
    const Receiver::Stats stats = receiver.stats();
    EXPECT_EQ(stats.log_errno, 0);
    EXPECT_GT(stats.logged_events, 0u);
    EXPECT_EQ(stats.logged_events, stats.events);

    auto log = rr::readLog(log_path);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.value().version, rr::kLogVersion);
    EXPECT_FALSE(log.value().truncated);
    ASSERT_EQ(log.value().records.size(), stats.logged_events);
    bool saw_payload = false;
    for (const auto &record : log.value().records)
        saw_payload = saw_payload || !record.payload.empty();
    EXPECT_TRUE(saw_payload); // the vread result rode along

    ::unlink(log_path.c_str());
    sys::vclose(static_cast<int>(listening.value()));
}

// --- epoch reconciliation (protocol v3) --------------------------------

TEST(WireEpochTest, HandshakeCarriesEpochStamp)
{
    FakeLeader leader;
    FakeRemote remote;
    core::ControlBlock *lcb = leader.layout.controlBlock(&leader.region);
    lcb->epoch.store(3, std::memory_order_release);

    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    Shipper shipper(&leader.region, &leader.layout);
    ASSERT_TRUE(shipper.attachTaps().isOk());
    Receiver receiver(&remote.region, &remote.layout);
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    EXPECT_EQ(receiver.remoteHello().engine_epoch, 3u);
    // A live leader publishes stream generation 1 (layout init).
    EXPECT_EQ(receiver.remoteHello().stream_generation, 1u);
    // The adopted stamp is mirrored into the receiving node's control
    // block, so its own StatusReport names the stream it consumes.
    core::StatusReport local = receiver.localStatus();
    EXPECT_EQ(local.epoch, 3u);
    EXPECT_EQ(local.stream_generation, 1u);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(WireEpochTest, ReceiverSurvivesTwoLeaderGenerations)
{
    // A receiver outlives its leader node: generation 1 ships a
    // prefix, dies; a promoted node (generation 2, same logical
    // stream, taps attached at the materialized position) takes over.
    // The receiver must rebase and resume with no loss and no
    // duplication.
    FakeRemote remote;
    Receiver receiver(&remote.region, &remote.layout);

    {
        FakeLeader first;
        int sv[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        Shipper shipper(&first.region, &first.layout);
        ASSERT_TRUE(shipper.attachTaps().isOk());
        std::thread adopting(
            [&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
        ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
        adopting.join();

        for (std::uint64_t i = 0; i < 6; ++i)
            first.publish(0, syscallEvent(i + 1, 39, 100 + i));
        EXPECT_EQ(shipper.pumpOnce(), 6u);
        EXPECT_EQ(receiver.serveOnce(1000), 1);
        EXPECT_EQ(receiver.nextSeq(0), 6u);

        // The leader node dies: no Bye, the link just goes away.
        ::close(sv[0]);
        ::close(sv[1]);
    }

    // The promoted node: it materialized the same 6-event prefix
    // before taking over (its rings hold the stream up to there), its
    // epoch and generation are bumped, and its shipper taps attach at
    // the promotion point — exactly what Receiver promotion produces.
    FakeLeader promoted;
    core::ControlBlock *pcb =
        promoted.layout.controlBlock(&promoted.region);
    pcb->epoch.store(1, std::memory_order_release);
    pcb->stream_generation.store(2, std::memory_order_release);
    for (std::uint64_t i = 0; i < 6; ++i)
        promoted.publish(0, syscallEvent(i + 1, 39, 100 + i));

    Shipper shipper2(&promoted.region, &promoted.layout);
    ASSERT_TRUE(shipper2.attachTaps().isOk()); // floor = 6, not 0
    for (std::uint64_t i = 6; i < 10; ++i)
        promoted.publish(0, syscallEvent(i + 1, 39, 100 + i));

    int sv2[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv2), 0);
    std::thread readopting(
        [&] { ASSERT_TRUE(receiver.adopt(sv2[1]).isOk()); });
    ASSERT_TRUE(shipper2.handshake(sv2[0]).isOk());
    readopting.join();

    EXPECT_EQ(shipper2.pumpOnce(), 4u);
    while (receiver.serveOnce(200) > 0) {
    }

    // Exactly events 1..10, in order: the generation-1 prefix plus the
    // generation-2 suffix, nothing twice, nothing missing.
    auto events = remote.drain(0);
    ASSERT_EQ(events.size(), 10u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].timestamp, i + 1);
    EXPECT_EQ(receiver.nextSeq(0), 10u);
    EXPECT_EQ(receiver.stats().rebases, 1u);
    EXPECT_EQ(receiver.stats().duplicates_dropped, 0u);
    core::StatusReport local = receiver.localStatus();
    EXPECT_EQ(local.stream_generation, 2u);
    EXPECT_EQ(local.epoch, 1u);
    ::close(sv2[0]);
    ::close(sv2[1]);
}

TEST(WireEpochTest, StaleGenerationHelloRejectedWithDecodableError)
{
    // A resurrected pre-failover leader (stream generation 1) knocks
    // on a receiver that already reconciled against generation 2: the
    // receiver must refuse with an Error frame the shipper can decode,
    // not silently rewind the stream.
    FakeRemote remote;
    Receiver receiver(&remote.region, &remote.layout);

    FakeLeader current;
    current.layout.controlBlock(&current.region)
        ->stream_generation.store(2, std::memory_order_release);
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    Shipper shipper(&current.region, &current.layout);
    ASSERT_TRUE(shipper.attachTaps().isOk());
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    FakeLeader stale; // default: generation 1
    int sv2[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv2), 0);
    Shipper stale_shipper(&stale.region, &stale.layout);
    ASSERT_TRUE(stale_shipper.attachTaps().isOk());
    Status adopt_status = Status::ok();
    std::thread rejecting([&] { adopt_status = receiver.adopt(sv2[1]); });
    Status shaken = stale_shipper.handshake(sv2[0]);
    rejecting.join();

    EXPECT_FALSE(shaken.isOk());
    EXPECT_FALSE(adopt_status.isOk());
    ErrorBody error = stale_shipper.lastError();
    EXPECT_EQ(error.code,
              static_cast<std::uint32_t>(WireError::StaleGeneration));
    EXPECT_EQ(error.local_generation, 2u); // what the receiver holds
    EXPECT_EQ(error.peer_generation, 1u);  // what the stale side offered
    EXPECT_EQ(receiver.stats().errors_sent, 1u);
    EXPECT_EQ(stale_shipper.stats().errors_received, 1u);
    // The live link is untouched by the rejected knock.
    EXPECT_TRUE(shipper.linkUp());
    ::close(sv[0]);
    ::close(sv[1]);
    ::close(sv2[0]);
    ::close(sv2[1]);
}

// --- one shipper, N receivers ------------------------------------------

TEST(WireFanOutTest, TwoReceiversBothGetTheStream)
{
    FakeLeader leader;
    FakeRemote remote_a;
    FakeRemote remote_b;

    int sva[2], svb[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sva), 0);
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, svb), 0);

    Shipper::Options ship_opts;
    ship_opts.ship_batch = 4;
    Shipper shipper(&leader.region, &leader.layout, ship_opts);
    ASSERT_TRUE(shipper.attachTaps().isOk());

    Receiver receiver_a(&remote_a.region, &remote_a.layout);
    Receiver receiver_b(&remote_b.region, &remote_b.layout);
    std::thread adopt_a(
        [&] { ASSERT_TRUE(receiver_a.adopt(sva[1]).isOk()); });
    ASSERT_TRUE(shipper.addPeer(sva[0]).isOk());
    adopt_a.join();
    std::thread adopt_b(
        [&] { ASSERT_TRUE(receiver_b.adopt(svb[1]).isOk()); });
    ASSERT_TRUE(shipper.addPeer(svb[0]).isOk());
    adopt_b.join();
    EXPECT_EQ(shipper.peerCount(), 2u);

    const char note[] = "fan-out payload";
    for (std::uint64_t i = 0; i < 11; ++i)
        leader.publish(0, syscallEvent(i + 1, 39, 100 + i));
    leader.publish(0, syscallEvent(12, 0 /*read*/, sizeof(note)), note,
                   sizeof(note));
    while (shipper.pumpOnce() > 0) {
    }
    while (receiver_a.serveOnce(200) > 0) {
    }
    while (receiver_b.serveOnce(200) > 0) {
    }

    for (FakeRemote *remote : {&remote_a, &remote_b}) {
        auto events = remote->drain(0);
        ASSERT_EQ(events.size(), 12u);
        for (std::size_t i = 0; i < events.size(); ++i)
            EXPECT_EQ(events[i].timestamp, i + 1);
        ASSERT_TRUE(events[11].hasPayload());
        shmem::ShardedPool pool = remote->layout.pool(&remote->region);
        EXPECT_EQ(std::memcmp(pool.pointer(events[11].payload,
                                           sizeof(note)),
                              note, sizeof(note)),
                  0);
    }
    EXPECT_EQ(receiver_a.stats().events, 12u);
    EXPECT_EQ(receiver_b.stats().events, 12u);
    // Events are drained (and counted) once, transmitted per peer.
    EXPECT_EQ(shipper.stats().events, 12u);
    EXPECT_EQ(shipper.stats().peers, 2u);

    ::close(sva[0]);
    ::close(sva[1]);
    ::close(svb[0]);
    ::close(svb[1]);
}

TEST(WireFanOutTest, StalledPeerDoesNotGateTheOther)
{
    // Peer B stops serving (no credits) while peer A keeps consuming:
    // A must receive the whole stream — the drain is gated by the
    // *fastest* peer — and B is eventually evicted as hopelessly
    // behind instead of pinning the retransmit buffer forever.
    FakeLeader leader;
    FakeRemote remote_a;
    FakeRemote remote_b;

    int sva[2], svb[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sva), 0);
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, svb), 0);

    Shipper::Options ship_opts;
    ship_opts.ship_batch = 8;
    ship_opts.credit_window = 8;
    ship_opts.retain_limit = 16;
    Shipper shipper(&leader.region, &leader.layout, ship_opts);
    ASSERT_TRUE(shipper.attachTaps().isOk());

    Receiver::Options prompt_credits;
    prompt_credits.credit_every = 4;
    Receiver receiver_a(&remote_a.region, &remote_a.layout,
                        prompt_credits);
    Receiver receiver_b(&remote_b.region, &remote_b.layout);
    std::thread adopt_a(
        [&] { ASSERT_TRUE(receiver_a.adopt(sva[1]).isOk()); });
    ASSERT_TRUE(shipper.addPeer(sva[0]).isOk());
    adopt_a.join();
    std::thread adopt_b(
        [&] { ASSERT_TRUE(receiver_b.adopt(svb[1]).isOk()); });
    ASSERT_TRUE(shipper.addPeer(svb[0]).isOk());
    adopt_b.join();

    // B never serves another frame from here on.
    std::uint64_t published = 0;
    for (int round = 0; round < 16; ++round) {
        for (int i = 0; i < 4; ++i)
            leader.publish(0, syscallEvent(++published, 39, 0));
        shipper.pumpOnce();
        receiver_a.serveOnce(200);
        shipper.pumpOnce(); // deliver A's credits, re-open the window
    }
    while (shipper.pumpOnce() > 0) {
    }
    while (receiver_a.serveOnce(200) > 0) {
    }

    // A saw everything, in order, despite B's stall.
    auto events = remote_a.drain(0);
    ASSERT_EQ(events.size(), published);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].timestamp, i + 1);

    // B fell past retain_limit and was evicted.
    EXPECT_EQ(shipper.stats().peers_evicted, 1u);
    EXPECT_EQ(shipper.peerCount(), 1u);
    EXPECT_LT(receiver_b.stats().events, published);

    ::close(sva[0]);
    ::close(sva[1]);
    ::close(svb[0]);
    ::close(svb[1]);
}

// --- cross-node promotion ----------------------------------------------

TEST(WirePromotionTest, ReceiverPromotesAfterLinkLoss)
{
    // Unit-level promotion: the link dies, nobody reconnects within
    // promote_after, and the receiver elects the local engine's
    // LeaderCandidate — epoch and stream generation bump, leader_id
    // flips, and a resurrected old shipper is refused as stale.
    FakeLeader leader;
    FakeRemote remote;

    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    Shipper shipper(&leader.region, &leader.layout);
    ASSERT_TRUE(shipper.attachTaps().isOk());

    std::atomic<std::uint32_t> promoted_epoch{0};
    std::atomic<std::uint32_t> promoted_leader{0xffffffffu};
    Receiver::Options opts;
    opts.promote_after_ns = 200000000ULL; // 200 ms
    opts.on_promote = [&](std::uint32_t epoch, std::uint32_t leader_id) {
        promoted_epoch.store(epoch);
        promoted_leader.store(leader_id);
    };
    Receiver receiver(&remote.region, &remote.layout, opts);
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    for (std::uint64_t i = 0; i < 3; ++i)
        leader.publish(0, syscallEvent(i + 1, 39, 0));
    EXPECT_EQ(shipper.pumpOnce(), 3u);
    EXPECT_EQ(receiver.serveOnce(1000), 1);

    receiver.start();
    // The leader node dies: both socket ends vanish, no Bye.
    ::close(sv[0]);
    ::close(sv[1]);

    const std::uint64_t deadline = monotonicNs() + 5000000000ULL;
    while (!receiver.promoted() && monotonicNs() < deadline)
        sleepNs(5000000);
    ASSERT_TRUE(receiver.promoted());

    core::ControlBlock *cb = remote.layout.controlBlock(&remote.region);
    EXPECT_EQ(cb->leader_id.load(std::memory_order_acquire), 0u);
    EXPECT_EQ(cb->epoch.load(std::memory_order_acquire), 1u);
    EXPECT_EQ(cb->stream_generation.load(std::memory_order_acquire), 2u);
    EXPECT_EQ(cb->promotions.load(std::memory_order_acquire), 1u);
    EXPECT_EQ(promoted_epoch.load(), 1u);
    EXPECT_EQ(promoted_leader.load(), 0u);
    core::StatusReport local = receiver.localStatus();
    EXPECT_EQ(local.receiver.promoted, 1u);
    EXPECT_EQ(local.leader, 0u);

    // Promotion is idempotent.
    EXPECT_FALSE(receiver.promoteNow());

    // The dead leader comes back: this node promoted and consumes no
    // stream at all now — the refusal says so decodably.
    int sv2[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv2), 0);
    Status adopt_status = Status::ok();
    std::thread rejecting([&] { adopt_status = receiver.adopt(sv2[1]); });
    Status shaken = shipper.reconnect(sv2[0]);
    rejecting.join();
    EXPECT_FALSE(shaken.isOk());
    EXPECT_FALSE(adopt_status.isOk());
    EXPECT_EQ(shipper.lastError().code,
              static_cast<std::uint32_t>(WireError::PeerNotReceiving));
    EXPECT_EQ(shipper.lastError().local_generation, 2u);

    ASSERT_TRUE(receiver.finish().isOk());
    ::close(sv2[0]);
    ::close(sv2[1]);
}

// --- the coordinator status RPC ----------------------------------------

TEST(WireStatusTest, StatusReportFrameRoundTripBitExact)
{
    // Fill every byte of a StatusReport with a pattern, push it through
    // the wire encoding and back: the decoded struct must be bit-exact.
    core::StatusReport in;
    auto *raw = reinterpret_cast<std::uint8_t *>(&in);
    for (std::size_t i = 0; i < sizeof(in); ++i)
        raw[i] = static_cast<std::uint8_t>(i * 131 + 7);
    in.num_variants = 3;
    in.leader = 1;
    in.events_streamed = 0x0123456789abcdefULL;
    in.variants[2].ring_lag = 42;
    in.shipper.active = 1;

    std::uint8_t frame[kStatusFrameBytes];
    encodeStatusFrame(in, frame);

    FrameHeader header = {};
    std::memcpy(&header, frame, sizeof(header));
    ASSERT_TRUE(headerValid(header));
    ASSERT_EQ(static_cast<FrameType>(header.type), FrameType::Status);
    ASSERT_EQ(header.body_len, sizeof(core::StatusReport));

    core::StatusReport out = {};
    ASSERT_TRUE(decodeStatusFrame(header, frame + sizeof(header),
                                  header.body_len, &out));
    EXPECT_EQ(std::memcmp(&in, &out, sizeof(in)), 0);

    // A flipped body byte must fail the checksum, not decode silently.
    frame[sizeof(header) + 100] ^= 0x40;
    EXPECT_FALSE(decodeStatusFrame(header, frame + sizeof(header),
                                   header.body_len, &out));
}

TEST(WireStatusTest, StatusRequestServedOverSocketpair)
{
    // Receiver sends the empty-body request; the shipper answers with
    // a full report assembled from the shared region + its own stats.
    FakeLeader leader;
    FakeRemote remote;
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    Shipper shipper(&leader.region, &leader.layout);
    ASSERT_TRUE(shipper.attachTaps().isOk());
    Receiver receiver(&remote.region, &remote.layout);
    std::thread adopting([&] { ASSERT_TRUE(receiver.adopt(sv[1]).isOk()); });
    ASSERT_TRUE(shipper.handshake(sv[0]).isOk());
    adopting.join();

    for (std::uint64_t i = 0; i < 3; ++i)
        leader.publish(0, syscallEvent(i + 1, 39, 0));
    EXPECT_EQ(shipper.pumpOnce(), 3u);
    EXPECT_EQ(receiver.serveOnce(1000), 1);

    ASSERT_TRUE(receiver.requestStatus().isOk());
    EXPECT_EQ(receiver.stats().status_requests, 1u);
    // The shipper's pump delivers the request and writes the reply.
    shipper.pumpOnce();
    EXPECT_EQ(shipper.stats().status_requests_served, 1u);
    EXPECT_EQ(receiver.serveOnce(1000), 1);

    core::StatusReport report = {};
    ASSERT_TRUE(receiver.remoteStatus(&report));
    EXPECT_EQ(receiver.stats().status_reports, 1u);
    EXPECT_EQ(report.num_variants, 1u);
    EXPECT_EQ(report.ring_capacity, kCap);
    EXPECT_EQ(report.shipper.active, 1u);
    EXPECT_EQ(report.shipper.link_up, 1u);
    EXPECT_EQ(report.shipper.events, 3u);
    EXPECT_EQ(report.pool.num_shards, core::kMaxTuples);
    EXPECT_EQ(report.receiver.active, 0u); // filled by the remote side

    // The receiving node's own consolidated report: local engine state
    // plus this receiver's wire section (counterpart of Nvx::status()).
    core::StatusReport local = receiver.localStatus();
    EXPECT_EQ(local.receiver.active, 1u);
    EXPECT_EQ(local.receiver.link_up, 1u);
    EXPECT_EQ(local.receiver.events, receiver.stats().events);
    EXPECT_EQ(local.receiver.credits_sent, receiver.stats().credits_sent);
    EXPECT_EQ(local.shipper.active, 0u);
    EXPECT_EQ(local.ring_capacity, kCap);

    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(WireEndToEndTest, StatusRpcMatchesLiveLeaderGetters)
{
    // The acceptance scenario: a remote node requests the coordinator
    // status over the wire while the leader engine runs; the decoded
    // StatusReport's counters must match the leader's live getters.
    int gate[2];
    ASSERT_EQ(::pipe(gate), 0);

    auto app = [gate]() -> int {
        for (int i = 0; i < 6; ++i)
            sys::vgetpid();
        long fd = sys::vopen("/dev/null", 0 /*O_RDONLY*/);
        char buf[8] = {};
        sys::vread(static_cast<int>(fd), buf, sizeof(buf));
        sys::vclose(static_cast<int>(fd));
        char go = 0;
        sys::vread(gate[0], &go, 1); // parks the leader, stream quiesces
        return 0;
    };

    const std::string endpoint =
        "varan-wire-status-" + std::to_string(::getpid());
    auto listening = netio::listenAbstract(endpoint);
    ASSERT_TRUE(listening.ok());

    core::EngineConfig remote_config;
    remote_config.ring.capacity = 128;
    remote_config.shm_bytes = 16 << 20;
    remote_config.external_leader = true;
    remote_config.ring.progress_timeout_ns = 20000000000ULL;
    core::Nvx remote_nvx(remote_config);
    ASSERT_TRUE(remote_nvx.start({core::VariantSpec(app)}).isOk());
    Receiver receiver(remote_nvx.region(), &remote_nvx.layout());

    std::thread accepting([&] {
        long conn = netio::acceptConnection(listening.value(), false);
        ASSERT_GE(conn, 0);
        ASSERT_TRUE(receiver.adopt(static_cast<int>(conn)).isOk());
        receiver.start();
    });

    core::EngineConfig config;
    config.ring.capacity = 128;
    config.shm_bytes = 16 << 20;
    config.remote.endpoint = endpoint;
    config.tuning.ship_batch = 8;
    core::Nvx nvx(config);
    ASSERT_TRUE(nvx.start({core::VariantSpec(app).named("leader")}).isOk());

    // Let the leader publish its pre-gate stream (9 syscall events),
    // then request the status while everything is quiescent.
    std::uint64_t deadline = monotonicNs() + 10000000000ULL;
    while (nvx.eventsStreamed() < 9 && monotonicNs() < deadline)
        sleepNs(1000000);
    ASSERT_GE(nvx.eventsStreamed(), 9u);
    // ...and the shipper drain them, so the report's wire section is
    // deterministic when the snapshot is taken.
    while (nvx.shipper()->stats().events < 9 && monotonicNs() < deadline)
        sleepNs(1000000);
    ASSERT_GE(nvx.shipper()->stats().events, 9u);
    while (!receiver.linkUp() && monotonicNs() < deadline)
        sleepNs(1000000);
    ASSERT_TRUE(receiver.linkUp());

    ASSERT_TRUE(receiver.requestStatus().isOk());
    core::StatusReport report = {};
    while (!receiver.remoteStatus(&report) && monotonicNs() < deadline)
        sleepNs(1000000);
    ASSERT_TRUE(receiver.remoteStatus(&report)) << "no status reply";

    // The RPC's counters agree with the leader's live getters.
    EXPECT_EQ(report.events_streamed, nvx.eventsStreamed());
    EXPECT_EQ(report.divergences_resolved, nvx.divergencesResolved());
    EXPECT_EQ(report.divergences_fatal, nvx.divergencesFatal());
    EXPECT_EQ(report.fd_transfers, nvx.fdTransfers());
    EXPECT_EQ(report.leader,
              static_cast<std::uint32_t>(nvx.currentLeader()));
    EXPECT_EQ(report.epoch, nvx.epoch());
    EXPECT_EQ(report.num_variants, 1u);
    EXPECT_EQ(report.ring_capacity, 128u);
    EXPECT_EQ(report.variants[0].state,
              static_cast<std::uint32_t>(core::VariantState::Running));
    EXPECT_EQ(report.shipper.active, 1u);
    EXPECT_GT(report.shipper.events, 0u);
    EXPECT_EQ(report.pool.spills, nvx.poolSpills());

    // Release the leader and drain both engines.
    ASSERT_EQ(::write(gate[1], "gg", 2), 2);
    auto results = nvx.waitFor(30000000000ULL);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].crashed);
    accepting.join();
    auto remote_results = remote_nvx.waitFor(30000000000ULL);
    ASSERT_TRUE(receiver.finish().isOk());
    ASSERT_EQ(remote_results.size(), 1u);
    EXPECT_FALSE(remote_results[0].crashed);

    ::close(gate[0]);
    ::close(gate[1]);
    sys::vclose(static_cast<int>(listening.value()));
}

TEST(WireEndToEndTest, CrossNodePromotionAfterLeaderNodeDeath)
{
    // The acceptance scenario for cross-node failover: a leader node
    // (run in a forked child so it can be SIGKILLed like a real node
    // loss) fans its stream out to two receiver nodes. Mid-stream the
    // leader node dies. Receiver node 1 promotes within promote_after:
    // its local variant is elected, continues executing from the exact
    // replay point, and ships the promoted stream (bumped epoch +
    // generation) to the surviving node 2 — which reconciles against
    // the new generation and replays to completion without loss or
    // duplication.
    int gate[2];
    ASSERT_EQ(::pipe(gate), 0);

    auto app = [gate]() -> int {
        for (int i = 0; i < 8; ++i)
            sys::vgetpid();
        char go = 0;
        sys::vread(gate[0], &go, 1); // parks the leader mid-stream
        for (int i = 0; i < 4; ++i)
            sys::vgetpid();
        return 42;
    };

    const std::string ep1 =
        "varan-wire-promote1-" + std::to_string(::getpid());
    const std::string ep2 =
        "varan-wire-promote2-" + std::to_string(::getpid());
    auto listening1 = netio::listenAbstract(ep1);
    auto listening2 = netio::listenAbstract(ep2);
    ASSERT_TRUE(listening1.ok());
    ASSERT_TRUE(listening2.ok());

    // The leader node: a separate process, so killing it takes down
    // its coordinator, zygote, variant and shipper at once — a node
    // loss, not an orderly Bye. Forked before any engine or thread
    // exists in this process.
    pid_t leader_node = ::fork();
    ASSERT_GE(leader_node, 0);
    if (leader_node == 0) {
        core::EngineConfig config;
        config.ring.capacity = 128;
        config.shm_bytes = 16 << 20;
        config.remote.endpoints = {ep1, ep2};
        config.tuning.ship_batch = 8;
        core::Nvx nvx(config);
        if (!nvx.start({core::VariantSpec(app).named("leader")}).isOk())
            ::_exit(1);
        nvx.wait(); // parked on the gate until killed
        ::_exit(0);
    }

    // Receiver node 1: external-leader engine, promotion armed, node 2
    // configured as the standby peer of the post-promotion stream.
    core::EngineConfig remote_config;
    remote_config.ring.capacity = 128;
    remote_config.shm_bytes = 16 << 20;
    remote_config.external_leader = true;
    remote_config.ring.progress_timeout_ns = 20000000000ULL;
    core::Nvx remote1(remote_config);
    ASSERT_TRUE(
        remote1.start({core::VariantSpec(app).named("standby1")}).isOk());
    std::atomic<std::uint32_t> promoted_epoch{0};
    Receiver::Options r1_opts;
    r1_opts.promote_after_ns = 500000000ULL; // 500 ms
    r1_opts.standby_peers = {ep2};
    r1_opts.promoted_ship.ship_batch = 8;
    r1_opts.on_promote = [&](std::uint32_t epoch, std::uint32_t) {
        promoted_epoch.store(epoch);
    };
    Receiver receiver1(remote1.region(), &remote1.layout(), r1_opts);

    // Receiver node 2: a plain observer that must survive both leader
    // generations.
    core::Nvx remote2(remote_config);
    ASSERT_TRUE(
        remote2.start({core::VariantSpec(app).named("standby2")}).isOk());
    Receiver receiver2(remote2.region(), &remote2.layout());

    // Both leader links run through FaultLink proxies: "node death"
    // below is a scripted frame-boundary cut, not a race against the
    // kernel tearing down a SIGKILLed process's sockets.
    ASSERT_TRUE(netio::waitReadable(
        static_cast<int>(listening1.value()), 15000));
    long conn1 = netio::acceptConnection(
        static_cast<int>(listening1.value()), false);
    ASSERT_GE(conn1, 0);
    testing::FaultLink link1(static_cast<int>(conn1));
    ASSERT_TRUE(receiver1.adopt(link1.releaseB()).isOk());
    receiver1.start();
    ASSERT_TRUE(netio::waitReadable(
        static_cast<int>(listening2.value()), 15000));
    long conn2 = netio::acceptConnection(
        static_cast<int>(listening2.value()), false);
    ASSERT_GE(conn2, 0);
    testing::FaultLink link2(static_cast<int>(conn2));
    ASSERT_TRUE(receiver2.adopt(link2.releaseB()).isOk());
    receiver2.start();

    // Let the pre-gate stream (8 events) reach both receiver nodes.
    std::uint64_t deadline = monotonicNs() + 15000000000ULL;
    while ((receiver1.nextSeq(0) < 8 || receiver2.nextSeq(0) < 8) &&
           monotonicNs() < deadline) {
        sleepNs(5000000);
    }
    ASSERT_GE(receiver1.nextSeq(0), 8u);
    ASSERT_GE(receiver2.nextSeq(0), 8u);

    // The leader node dies mid-stream: both links sever at a frame
    // boundary the instant cut() returns, so the failover clock below
    // starts from a deterministic event. The SIGKILL afterwards only
    // reaps the parked child — no timing rides on it.
    const std::uint64_t killed_at = monotonicNs();
    link1.cut();
    link2.cut();
    ASSERT_EQ(::kill(leader_node, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(leader_node, &wstatus, 0), leader_node);

    // Node 1 promotes within promote_after (plus scheduling slack) and
    // dials node 2 with the promoted stream; accept that connection.
    ASSERT_TRUE(netio::waitReadable(
        static_cast<int>(listening2.value()), 15000));
    long conn3 = netio::acceptConnection(
        static_cast<int>(listening2.value()), false);
    ASSERT_GE(conn3, 0);
    ASSERT_TRUE(receiver2.adopt(static_cast<int>(conn3)).isOk());
    ASSERT_TRUE(receiver1.promoted());
    const std::uint64_t promoted_by = monotonicNs();
    EXPECT_LT(promoted_by - killed_at, 10000000000ULL);
    // The hook fires after the standby links are up; give it a beat.
    deadline = monotonicNs() + 10000000000ULL;
    while (promoted_epoch.load() == 0 && monotonicNs() < deadline)
        sleepNs(5000000);
    EXPECT_GE(promoted_epoch.load(), 1u);

    // Release the gate: the promoted leader (node 1's variant) resumes
    // from the exact replay point, executes the read and the post-gate
    // tail, and ships it all to node 2.
    ASSERT_EQ(::write(gate[1], "g", 1), 1);

    auto results1 = remote1.waitFor(30000000000ULL);
    ASSERT_EQ(results1.size(), 1u);
    EXPECT_FALSE(results1[0].crashed);
    EXPECT_EQ(results1[0].status, 42);

    auto results2 = remote2.waitFor(30000000000ULL);
    ASSERT_EQ(results2.size(), 1u);
    EXPECT_FALSE(results2[0].crashed);
    EXPECT_EQ(results2[0].status, 42);

    // Node 2 reconciled the generations without loss or duplication:
    // its engine saw exactly the events node 1's engine did.
    EXPECT_EQ(remote2.eventsStreamed(), remote1.eventsStreamed());
    EXPECT_EQ(receiver2.stats().duplicates_dropped, 0u);
    EXPECT_EQ(receiver2.stats().corrupt_frames, 0u);
    EXPECT_EQ(receiver2.stats().rebases, 1u);

    // The promoted engine serves a StatusReport over the wire showing
    // the bumped epoch, the bumped generation and a live leader.
    ASSERT_TRUE(receiver2.requestStatus().isOk());
    core::StatusReport report = {};
    deadline = monotonicNs() + 10000000000ULL;
    while (!receiver2.remoteStatus(&report) && monotonicNs() < deadline)
        sleepNs(5000000);
    ASSERT_TRUE(receiver2.remoteStatus(&report)) << "no status reply";
    EXPECT_EQ(report.epoch, promoted_epoch.load());
    EXPECT_EQ(report.stream_generation, 2u);
    EXPECT_EQ(report.leader, 0u);
    EXPECT_GE(report.promotions, 1u);
    EXPECT_EQ(report.shipper.active, 1u);
    EXPECT_GT(report.shipper.events, 0u);

    core::StatusReport local1 = receiver1.localStatus();
    EXPECT_EQ(local1.receiver.promoted, 1u);
    EXPECT_EQ(local1.stream_generation, 2u);

    ASSERT_TRUE(receiver1.finish().isOk());
    ASSERT_TRUE(receiver2.finish().isOk());
    ::close(gate[0]);
    ::close(gate[1]);
    sys::vclose(static_cast<int>(listening1.value()));
    sys::vclose(static_cast<int>(listening2.value()));
}

} // namespace
} // namespace varan::wire
