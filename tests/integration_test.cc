/**
 * @file
 * Cross-module integration and property tests:
 *
 *  - randomised syscall sequences replayed across variant counts and
 *    ring capacities (exit statuses must agree, zero divergences);
 *  - binary rewriting end-to-end *inside* the engine: a variant whose
 *    system call lives in generated machine code, patched by the
 *    rewriter, dispatched through the monitor and replicated to a
 *    follower — the full paper pipeline in one test;
 *  - failover under live load.
 */

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "benchutil/drivers.h"
#include "core/nvx.h"
#include "rewrite/patcher.h"
#include "apps/vstore.h"
#include "syscalls/sys.h"

namespace varan {
namespace {

core::EngineConfig
engineConfig(std::uint32_t ring_capacity = 128)
{
    core::EngineConfig config;
    config.ring.capacity = ring_capacity;
    config.shm_bytes = 32 << 20;
    config.ring.progress_timeout_ns = 15000000000ULL;
    return config;
}

/** Deterministic mixed-syscall workload derived from a seed. */
int
randomWorkload(std::uint64_t seed, int steps)
{
    std::uint64_t state = seed * 2654435761u + 1;
    auto next = [&] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    std::uint64_t acc = 0;
    int open_fd = -1;
    char buf[256];
    for (int i = 0; i < steps; ++i) {
        switch (next() % 6) {
          case 0:
            acc ^= static_cast<std::uint64_t>(sys::vgetpid());
            break;
          case 1: {
            long t = 0;
            sys::vtime(&t);
            acc += 1; // value varies run to run; only the call counts
            break;
          }
          case 2:
            if (open_fd < 0) {
                open_fd = static_cast<int>(
                    sys::vopen("/dev/zero", O_RDONLY));
            }
            break;
          case 3:
            if (open_fd >= 0) {
                long n = sys::vread(open_fd, buf,
                                    1 + next() % sizeof(buf));
                acc += static_cast<std::uint64_t>(n);
            }
            break;
          case 4:
            if (open_fd >= 0) {
                sys::vclose(open_fd);
                open_fd = -1;
            }
            break;
          default: {
            long fd = sys::vopen("/dev/null", O_WRONLY);
            if (fd >= 0) {
                std::size_t len = 1 + next() % 64;
                acc += static_cast<std::uint64_t>(
                    sys::vwrite(static_cast<int>(fd), buf, len));
                sys::vclose(static_cast<int>(fd));
            }
            break;
          }
        }
    }
    if (open_fd >= 0)
        sys::vclose(open_fd);
    return static_cast<int>(acc & 0x7f);
}

class RandomSequenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, int, std::uint32_t>>
{
};

TEST_P(RandomSequenceTest, VariantsAgreeWithoutDivergence)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const int variants = std::get<1>(GetParam());
    const std::uint32_t capacity = std::get<2>(GetParam());

    core::Nvx nvx(engineConfig(capacity));
    std::vector<core::VariantFn> fns(
        static_cast<std::size_t>(variants),
        [seed]() { return randomWorkload(seed, 120); });
    auto results = nvx.run(std::move(fns));
    ASSERT_EQ(results.size(), static_cast<std::size_t>(variants));
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed) << "variant " << r.variant;
        EXPECT_EQ(r.status, results[0].status) << "variant " << r.variant;
    }
    EXPECT_EQ(nvx.divergencesFatal(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByVariantsByCapacity, RandomSequenceTest,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Values(2, 3),
                       ::testing::Values(8u, 256u)));

TEST(RewriteEngineTest, PatchedMachineCodeStreamsThroughTheEngine)
{
    // The full pipeline of sections 3.1-3.3: generated code containing
    // a real `syscall` instruction is patched by the binary rewriter
    // inside each variant; execution flows detour -> entry ->
    // dispatcher -> leader executes / follower replays.
    auto variant = []() -> int {
        void *mem = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (mem == MAP_FAILED)
            return 99;
        auto *code = static_cast<std::uint8_t *>(mem);
        const std::uint8_t body[] = {
            0x48, 0xc7, 0xc0, 0x27, 0, 0, 0, // mov rax, 39 (getpid)
            0x0f, 0x05,                      // syscall
            0x48, 0x89, 0xc2,                // mov rdx, rax
            0xc3,                            // ret
        };
        std::memcpy(code, body, sizeof(body));
        ::mprotect(mem, 4096, PROT_READ | PROT_EXEC);

        static rewrite::Rewriter rewriter(&sys::rewriteEntry);
        auto stats = rewriter.rewriteRegion(mem, sizeof(body));
        if (!stats.ok() || stats.value().detours != 1)
            return 98;

        using Fn = long (*)();
        long pid = reinterpret_cast<Fn>(code)();
        // getpid is replicated: every variant must see the leader's pid
        // through the patched instruction.
        return static_cast<int>(pid & 0x7f);
    };

    core::Nvx nvx(engineConfig());
    auto results = nvx.run({variant, variant});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_EQ(results[0].status, results[1].status);
    EXPECT_NE(results[0].status, 98);
    EXPECT_NE(results[0].status, 99);
}

TEST(FailoverUnderLoadTest, ServiceSurvivesLeaderCrashMidBenchmark)
{
    std::string endpoint =
        "varan-integ-failover-" + std::to_string(::getpid());
    core::EngineConfig config = engineConfig();
    config.ring.tick_ns = 1000000;
    core::Nvx nvx(config);
    auto buggy = [endpoint]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        o.revision.crash_on_hmget = true;
        return apps::vstore::serve(o);
    };
    auto healthy = [endpoint]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        return apps::vstore::serve(o);
    };
    ASSERT_TRUE(nvx.start({buggy, healthy}).isOk());

    // Load before, crash, load after: the second batch must complete
    // at full fidelity against the promoted follower.
    auto before = bench::kvBench(endpoint, 2, 40);
    EXPECT_TRUE(before.ok);
    auto crash = bench::kvCommandLatency(endpoint, "HMGET h f");
    EXPECT_TRUE(crash.ok);
    auto after = bench::kvBench(endpoint, 2, 40);
    EXPECT_TRUE(after.ok);
    EXPECT_EQ(after.total_ops, 80);

    bench::kvShutdown(endpoint);
    auto results = nvx.waitFor(30000000000ULL);
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
}

TEST(ScaleTest, ManyEventsThroughTinyRing)
{
    // 5000 replicated calls through an 8-slot ring exercise thousands
    // of wrap-arounds, gating stalls and waitlock sleeps.
    core::Nvx nvx(engineConfig(8));
    auto app = []() -> int {
        std::uint64_t acc = 0;
        for (int i = 0; i < 5000; ++i)
            acc ^= static_cast<std::uint64_t>(sys::vgetpid());
        return static_cast<int>(acc & 0x3f);
    };
    auto results = nvx.run({app, app, app});
    for (const auto &r : results) {
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.status, results[0].status);
    }
    EXPECT_GE(nvx.eventsStreamed(), 5000u);
}

} // namespace
} // namespace varan
