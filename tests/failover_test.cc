/**
 * @file
 * Failover robustness: sequential double failover, crash while the
 * ring is saturated (backpressure + election interplay), crash during
 * descriptor transfer, and a follower crashing at the same instant as
 * the leader. These are the corner cases a production NVX deployment
 * hits that the paper's protocol (section 5.1) must absorb.
 */

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/nvx.h"
#include "syscalls/sys.h"

namespace varan::core {
namespace {

EngineConfig
fastConfig(std::uint32_t ring = 64)
{
    EngineConfig config;
    config.ring.capacity = ring;
    config.shm_bytes = 16 << 20;
    config.ring.progress_timeout_ns = 15000000000ULL;
    config.ring.tick_ns = 2000000; // 2 ms: quick promotions
    return config;
}

std::string
readExactly(int fd, std::size_t len, int timeout_ms = 20000)
{
    std::string out;
    std::uint64_t deadline = monotonicNs() +
                             std::uint64_t(timeout_ms) * 1000000ULL;
    while (out.size() < len && monotonicNs() < deadline) {
        struct pollfd pfd = {fd, POLLIN, 0};
        if (::poll(&pfd, 1, 100) <= 0)
            continue;
        char buf[256];
        ssize_t n = ::read(fd, buf,
                           std::min(sizeof(buf), len - out.size()));
        if (n > 0)
            out.append(buf, static_cast<std::size_t>(n));
        else if (n == 0)
            break;
    }
    return out;
}

TEST(FailoverRobustnessTest, TwoSequentialLeaderCrashes)
{
    // Leadership must survive two elections: 0 crashes, 1 takes over
    // and crashes too, 2 finishes the stream alone.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        for (int i = 0; i < 12; ++i) {
            std::uint32_t id = Monitor::instance()->variantId();
            if (i == 3 && id == 0) {
                int *p = nullptr;
                *p = 1;
            }
            if (i == 7 && id == 1) {
                int *p = nullptr;
                *p = 1;
            }
            char c = static_cast<char>('a' + i);
            sys::vwrite(fds[1], &c, 1);
        }
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app, app});
    EXPECT_TRUE(results[0].crashed);
    EXPECT_TRUE(results[1].crashed);
    EXPECT_FALSE(results[2].crashed);
    EXPECT_EQ(results[2].status, 0);
    EXPECT_GE(nvx.epoch(), 2u);
    // Every message exactly once across both failovers.
    EXPECT_EQ(readExactly(fds[0], 12), "abcdefghijkl");
    struct pollfd pfd = {fds[0], POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 200), 0) << "duplicated writes";
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FailoverRobustnessTest, LeaderCrashWhileRingSaturated)
{
    // A slow follower keeps the tiny ring full; the leader dies while
    // backpressured. The promoted follower must drain its backlog and
    // finish the sequence exactly once.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        Monitor *monitor = Monitor::instance();
        for (int i = 0; i < 40; ++i) {
            if (i == 20 && monitor->variantId() == 0) {
                int *p = nullptr;
                *p = 1;
            }
            if (monitor->variantId() == 1 && i % 4 == 0)
                sleepNs(3000000); // slow follower: fills the ring
            char c = static_cast<char>('A' + (i % 26));
            sys::vwrite(fds[1], &c, 1);
        }
        return 0;
    };
    Nvx nvx(fastConfig(8));
    auto results = nvx.run({app, app});
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    std::string got = readExactly(fds[0], 40);
    ASSERT_EQ(got.size(), 40u);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(got[i], static_cast<char>('A' + (i % 26))) << i;
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FailoverRobustnessTest, PromotedLeaderContinuesFdStream)
{
    // The original leader opens a file and crashes; the promoted
    // follower must keep using the *mirrored* descriptor (same number,
    // same open file description) and open new ones itself.
    char path[] = "/tmp/varan-failover-fd-XXXXXX";
    int tmp = ::mkstemp(path);
    ASSERT_GE(tmp, 0);
    ASSERT_EQ(::write(tmp, "0123456789", 10), 10);
    ::close(tmp);
    std::string file(path);

    auto app = [file]() -> int {
        long fd = sys::vopen(file.c_str(), O_RDONLY);
        if (fd < 0)
            return 90;
        char a[2] = {};
        if (sys::vread(static_cast<int>(fd), a, 2) != 2)
            return 91;
        // Original leader dies between two reads on the same fd.
        if (Monitor::instance()->variantId() == 0) {
            int *p = nullptr;
            *p = 1;
        }
        char b[2] = {};
        // Promoted leader re-executes this read on its dup: the file
        // offset lives in the shared open file description, so it
        // continues where the dead leader stopped.
        if (sys::vread(static_cast<int>(fd), b, 2) != 2)
            return 92;
        sys::vclose(static_cast<int>(fd));
        return (a[0] - '0') * 10 + (b[0] - '0');
    };

    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    ::unlink(path);
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    // a = "01", b = "23" -> 0*10 + 2.
    EXPECT_EQ(results[1].status, 2);
}

TEST(FailoverRobustnessTest, AllVariantsCrashReportsCleanly)
{
    auto app = []() -> int {
        sys::vgetpid();
        int *p = nullptr;
        *p = 1;
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app});
    EXPECT_TRUE(results[0].crashed);
    EXPECT_TRUE(results[1].crashed);
    EXPECT_EQ(results[0].status, 128 + SIGSEGV);
}

TEST(FailoverRobustnessTest, FollowerCrashDuringLeaderElection)
{
    // Leader and one follower crash at nearly the same stream point;
    // the remaining follower must still win the election and finish.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    auto app = [fds]() -> int {
        std::uint32_t id = Monitor::instance()->variantId();
        for (int i = 0; i < 10; ++i) {
            if (i == 4 && id == 0) {
                int *p = nullptr;
                *p = 1;
            }
            if (i == 5 && id == 1) {
                int *p = nullptr;
                *p = 1;
            }
            char c = static_cast<char>('0' + i);
            sys::vwrite(fds[1], &c, 1);
        }
        return 0;
    };
    Nvx nvx(fastConfig());
    auto results = nvx.run({app, app, app});
    EXPECT_TRUE(results[0].crashed);
    EXPECT_FALSE(results[2].crashed);
    EXPECT_EQ(results[2].status, 0);
    EXPECT_EQ(readExactly(fds[0], 10), "0123456789");
    ::close(fds[0]);
    ::close(fds[1]);
}

} // namespace
} // namespace varan::core
