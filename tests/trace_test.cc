/**
 * @file
 * Observability-layer tests: log2 histogram mapping and Prometheus
 * exposition, the flight recorder, the seqlock divergence ledger (unit
 * + loss clamp), the wire Divergence frame (protocol v5), out-of-
 * process layout attach, the structured on_divergence_record hook (and
 * the deprecated counter form), cross-node divergence relay, and an
 * end-to-end exec of the `varanctl` binary against a live engine.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/nvx.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"
#include "trace/inspect.h"
#include "wire/protocol.h"
#include "wire/receiver.h"
#include "wire/shipper.h"

namespace varan::trace {
namespace {

core::EngineConfig
fastConfig()
{
    core::EngineConfig config;
    config.ring.capacity = 64;
    config.shm_bytes = 16 << 20;
    config.ring.progress_timeout_ns = 10000000000ULL; // 10 s test safety
    return config;
}

/** Listing 1 (section 5.2): allow a follower getuid the leader never
 *  made while the leader sits at getpid. */
const char *kAllowGetuidRule =
    "ld event[0]\n"
    "jeq #39, checkmine /* leader at getpid */\n"
    "jmp bad\n"
    "checkmine:\n"
    "ld [0]\n"
    "jeq #102, good /* follower wants getuid */\n"
    "bad: ret #0\n"
    "good: ret #0x7fff0000\n";

TEST(TraceUnitTest, HistogramBucketsAndBounds)
{
    // Bucket i holds values of bit-width i; bound(i) = 2^i - 1.
    EXPECT_EQ(histogramBucket(0), 0u);
    EXPECT_EQ(histogramBucket(1), 1u);
    EXPECT_EQ(histogramBucket(2), 2u);
    EXPECT_EQ(histogramBucket(3), 2u);
    EXPECT_EQ(histogramBucket(4), 3u);
    EXPECT_EQ(histogramBucket(1023), 10u);
    EXPECT_EQ(histogramBucket(1024), 11u);
    EXPECT_EQ(histogramBucket(~0ULL),
              static_cast<unsigned>(kHistogramBuckets - 1));
    EXPECT_EQ(histogramBound(0), 0u);
    EXPECT_EQ(histogramBound(1), 1u);
    EXPECT_EQ(histogramBound(2), 3u);
    EXPECT_EQ(histogramBound(10), 1023u);
    // Every value lands in the bucket whose bound covers it.
    for (std::uint64_t v : {0ULL, 1ULL, 7ULL, 100ULL, 123456789ULL}) {
        unsigned b = histogramBucket(v);
        EXPECT_LE(v, histogramBound(b)) << v;
        if (b > 0) {
            EXPECT_GT(v, histogramBound(b - 1)) << v;
        }
    }
}

TEST(TraceUnitTest, HistogramRecordAccumulates)
{
    auto h = std::make_unique<Histogram>();
    histogramRecord(*h, 0);
    histogramRecord(*h, 5);
    histogramRecord(*h, 5);
    histogramRecord(*h, 1000000);
    EXPECT_EQ(h->count.load(), 4u);
    EXPECT_EQ(h->sum.load(), 1000010u);
    EXPECT_EQ(h->buckets[0].load(), 1u);
    EXPECT_EQ(h->buckets[histogramBucket(5)].load(), 2u);
    EXPECT_EQ(h->buckets[histogramBucket(1000000)].load(), 1u);
}

TEST(TraceUnitTest, FlightRecorderWrapsOldestFirst)
{
    auto tb = std::make_unique<TraceBlock>();
    tb->enabled.store(1);
    const std::size_t total = kTraceRecords + 100;
    for (std::size_t i = 0; i < total; ++i)
        stamp(*tb, Stage::LeaderPublish, 0, 0,
              static_cast<std::uint32_t>(i), i);
    std::vector<TraceRecord> out(kTraceRecords);
    const std::size_t n = snapshotTrace(*tb, out.data(), out.size());
    ASSERT_EQ(n, kTraceRecords);
    // Oldest surviving record is (total - kTraceRecords), newest last.
    EXPECT_EQ(out.front().code,
              static_cast<std::uint32_t>(total - kTraceRecords));
    EXPECT_EQ(out.back().code, static_cast<std::uint32_t>(total - 1));
}

TEST(TraceUnitTest, LedgerRoundTrip)
{
    auto tb = std::make_unique<TraceBlock>();
    for (std::uint32_t i = 0; i < 5; ++i) {
        DivergenceRecord rec = {};
        rec.lamport = i;
        rec.observed_nr = 100 + i;
        ledgerAppend(*tb, rec);
    }
    std::uint64_t cursor = 0;
    DivergenceRecord out[8];
    EXPECT_EQ(ledgerRead(*tb, &cursor, out, 8), 5u);
    EXPECT_EQ(out[0].lamport, 0u);
    EXPECT_EQ(out[4].observed_nr, 104u);
    EXPECT_EQ(cursor, 5u);
    // Nothing new: the cursor holds.
    EXPECT_EQ(ledgerRead(*tb, &cursor, out, 8), 0u);
}

TEST(TraceUnitTest, LedgerClampsLostCursor)
{
    auto tb = std::make_unique<TraceBlock>();
    const std::uint64_t total = kLedgerSlots + 40;
    for (std::uint64_t i = 0; i < total; ++i) {
        DivergenceRecord rec = {};
        rec.lamport = i;
        ledgerAppend(*tb, rec);
    }
    // A reader that never consumed resumes at the oldest record still
    // retained instead of spinning on overwritten slots.
    std::uint64_t cursor = 0;
    DivergenceRecord out[8];
    ASSERT_EQ(ledgerRead(*tb, &cursor, out, 8), 8u);
    EXPECT_EQ(out[0].lamport, total - kLedgerSlots);
    // Drain the rest; the final record is the newest append.
    std::size_t n;
    DivergenceRecord last = out[7];
    while ((n = ledgerRead(*tb, &cursor, out, 8)) > 0)
        last = out[n - 1];
    EXPECT_EQ(last.lamport, total - 1);
    EXPECT_EQ(cursor, total);
}

TEST(WireDivergenceFrameTest, RoundTrip)
{
    DivergenceRecord records[3] = {};
    records[0].lamport = 7;
    records[0].expected_nr = 39;
    records[0].observed_nr = 102;
    records[1].action = static_cast<std::uint8_t>(DivergenceAction::Fatal);
    records[2].origin_id = 42;

    std::uint8_t frame[wire::kDivergenceFrameMaxBytes];
    const std::size_t len = wire::encodeDivergenceFrame(records, 3, frame);
    ASSERT_EQ(len, sizeof(wire::FrameHeader) + 3 * sizeof(DivergenceRecord));

    wire::FrameHeader header = {};
    std::memcpy(&header, frame, sizeof(header));
    EXPECT_TRUE(wire::headerValid(header));
    EXPECT_EQ(header.version, wire::kProtocolVersion);
    EXPECT_EQ(header.type,
              static_cast<std::uint16_t>(wire::FrameType::Divergence));

    DivergenceRecord out[4] = {};
    const std::size_t n = wire::decodeDivergenceFrame(
        header, frame + sizeof(header), header.body_len, out, 4);
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(out[0].lamport, 7u);
    EXPECT_EQ(out[0].observed_nr, 102u);
    EXPECT_EQ(out[1].action,
              static_cast<std::uint8_t>(DivergenceAction::Fatal));
    EXPECT_EQ(out[2].origin_id, 42u);
}

TEST(WireDivergenceFrameTest, CorruptBodyRejected)
{
    DivergenceRecord rec = {};
    rec.lamport = 99;
    std::uint8_t frame[wire::kDivergenceFrameMaxBytes];
    wire::encodeDivergenceFrame(&rec, 1, frame);
    wire::FrameHeader header = {};
    std::memcpy(&header, frame, sizeof(header));
    frame[sizeof(header) + 3] ^= 0x40; // flip one body bit
    DivergenceRecord out[1];
    EXPECT_EQ(wire::decodeDivergenceFrame(header, frame + sizeof(header),
                                          header.body_len, out, 1),
              SIZE_MAX);
    // Truncated body is also refused.
    EXPECT_EQ(wire::decodeDivergenceFrame(header, frame + sizeof(header),
                                          header.body_len - 8, out, 1),
              SIZE_MAX);
}

TEST(LayoutAttachTest, RoundTripAndRejection)
{
    auto r = shmem::Region::create(8 << 20);
    ASSERT_TRUE(r.ok());
    shmem::Region region = std::move(r.value());
    // An uninitialised region (no control magic) is refused.
    EXPECT_FALSE(core::EngineLayout::attach(&region).ok());

    core::EngineLayout created =
        core::EngineLayout::create(&region, 2, 0, 64);
    auto attached = core::EngineLayout::attach(&region);
    ASSERT_TRUE(attached.ok());
    EXPECT_EQ(attached.value().control, created.control);
    EXPECT_EQ(attached.value().pool_header, created.pool_header);
    core::ControlBlock *cb = attached.value().controlBlock(&region);
    EXPECT_EQ(cb->num_variants, 2u);
    EXPECT_EQ(cb->ring_capacity, 64u);
}

TEST(TraceEngineTest, StructuredDivergenceHookDeliversRecord)
{
    core::EngineConfig config = fastConfig();
    config.rewrite_rules.push_back(kAllowGetuidRule);
    std::mutex mutex;
    std::vector<DivergenceRecord> seen;
    config.on_divergence_record = [&](const DivergenceRecord &rec) {
        std::lock_guard<std::mutex> guard(mutex);
        seen.push_back(rec);
    };
    auto app = []() -> int {
        if (core::Monitor::instance() &&
            core::Monitor::instance()->variantId() == 1) {
            sys::vgetuid(); // deliberate divergence, resolved by rule
        }
        sys::vgetpid();
        return 0;
    };
    core::Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    ASSERT_GE(seen.size(), 1u); // monitor thread joined: safe to read
    const DivergenceRecord &rec = seen.front();
    EXPECT_EQ(rec.expected_nr, 39u);  // leader event: getpid
    EXPECT_EQ(rec.observed_nr, 102u); // follower executed getuid
    EXPECT_EQ(rec.variant, 1u);
    EXPECT_EQ(rec.origin, 0u);
    EXPECT_EQ(rec.action,
              static_cast<std::uint8_t>(DivergenceAction::Resolved));
    EXPECT_NE(rec.arg_digest, 0u);
}

/** The migration target for the removed counter-form `on_divergence`
 *  hook: counter-style accounting is a fold over the structured
 *  records (see the README migration note). */
TEST(TraceEngineTest, CounterAccountingViaRecordHook)
{
    core::EngineConfig config = fastConfig();
    config.rewrite_rules.push_back(kAllowGetuidRule);
    std::atomic<std::uint64_t> resolved{0};
    std::atomic<std::uint64_t> fatal{0};
    config.on_divergence_record = [&](const DivergenceRecord &rec) {
        if (rec.action == static_cast<std::uint8_t>(
                              DivergenceAction::Resolved))
            resolved.fetch_add(1);
        else
            fatal.fetch_add(1);
    };
    auto app = []() -> int {
        if (core::Monitor::instance() &&
            core::Monitor::instance()->variantId() == 1)
            sys::vgetuid();
        sys::vgetpid();
        return 0;
    };
    core::Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    EXPECT_GE(resolved.load(), 1u);
    EXPECT_EQ(fatal.load(), 0u);
}

TEST(TraceEngineTest, DisabledTraceStillRecordsLedger)
{
    core::EngineConfig config = fastConfig();
    config.trace_enabled = false;
    config.rewrite_rules.push_back(kAllowGetuidRule);
    auto app = []() -> int {
        if (core::Monitor::instance() &&
            core::Monitor::instance()->variantId() == 1)
            sys::vgetuid();
        for (int i = 0; i < 128; ++i)
            sys::vgetpid();
        return 0;
    };
    core::Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    const core::StatusReport report = nvx.status();
    EXPECT_EQ(report.trace.enabled, 0u);
    // The hook path must work without tracing: the ledger is not gated.
    EXPECT_GE(report.trace.ledger_records, 1u);
    // The flight recorder and sampled histograms are off.
    EXPECT_EQ(report.trace.trace_records, 0u);
    EXPECT_EQ(report.trace.publish_lag.count, 0u);
}

/** The golden list: every metric family statusText() emits. CI greps
 *  these same names against docs/OBSERVABILITY.md. */
const char *const kMetricNames[] = {
    "varan_num_variants", "varan_ring_capacity", "varan_leader",
    "varan_epoch", "varan_live_mask", "varan_num_tuples",
    "varan_stream_generation", "varan_promotions_total",
    "varan_events_streamed_total", "varan_divergences_resolved_total",
    "varan_divergences_fatal_total", "varan_fd_transfers_total",
    "varan_publish_batches_total", "varan_events_coalesced_total",
    "varan_variant_state", "varan_variant_syscalls_total",
    "varan_variant_ring_lag", "varan_variant_restarts_total",
    "varan_pool_spills_total", "varan_pool_global_live_chunks",
    "varan_shipper_active", "varan_shipper_link_up",
    "varan_shipper_peers", "varan_shipper_frames_total",
    "varan_shipper_events_total", "varan_shipper_bytes_total",
    "varan_shipper_credit_stalls_total",
    "varan_shipper_drain_passes_total",
    "varan_shipper_status_pushes_total", "varan_receiver_active",
    "varan_receiver_events_total", "varan_receiver_promoted",
    "varan_receiver_fenced", "varan_quorum_active",
    "varan_quorum_members", "varan_quorum_live_members",
    "varan_quorum_term", "varan_quorum_holder",
    "varan_quorum_elections_total", "varan_quorum_leases_won_total",
    "varan_quorum_votes_granted_total", "varan_quorum_fences_total",
    "varan_recorder_active", "varan_recorder_events_total",
    "varan_adapt_active", "varan_adapt_samples_total",
    "varan_adapt_decisions_total", "varan_adapt_pinned_mask",
    "varan_fastpath_hits_total", "varan_tuning_ship_batch",
    "varan_tuning_credit_window", "varan_tuning_coalesce_run",
    "varan_tuning_coalesce_window_ns", "varan_tuning_fastpath_top_k",
    "varan_trace_enabled", "varan_trace_records_total",
    "varan_divergence_records_total", "varan_publish_lag_ns",
    "varan_coalesce_dwell_ns", "varan_credit_stall_ns",
    "varan_blackout_ns",
};

TEST(PrometheusTest, GoldenMetricNameList)
{
    core::StatusReport report = {};
    report.num_variants = 1;
    const std::string text = core::statusText(report);
    // Every golden name has a HELP header...
    for (const char *name : kMetricNames)
        EXPECT_NE(text.find(std::string("# HELP ") + name + " "),
                  std::string::npos)
            << name;
    // ... and every HELP header in the page is on the golden list, so
    // adding a metric without updating the list (and the docs CI gate
    // keyed off it) fails here first.
    std::set<std::string> golden(std::begin(kMetricNames),
                                 std::end(kMetricNames));
    std::size_t pos = 0;
    while ((pos = text.find("# HELP ", pos)) != std::string::npos) {
        pos += 7;
        const std::size_t end = text.find(' ', pos);
        ASSERT_NE(end, std::string::npos);
        EXPECT_TRUE(golden.count(text.substr(pos, end - pos)))
            << text.substr(pos, end - pos);
    }
}

TEST(PrometheusTest, HistogramExpositionMatchesScriptedLatencies)
{
    auto r = shmem::Region::create(8 << 20);
    ASSERT_TRUE(r.ok());
    shmem::Region region = std::move(r.value());
    core::EngineLayout layout =
        core::EngineLayout::create(&region, 1, 0, 64);
    core::ControlBlock *cb = layout.controlBlock(&region);
    // Scripted samples: 0, 1, 5, 100, 1000000 ns.
    for (std::uint64_t v : {0ULL, 1ULL, 5ULL, 100ULL, 1000000ULL})
        histogramRecord(cb->trace.publish_lag, v);

    const std::string text =
        core::statusText(core::collectStatus(&region, layout));
    // Cumulative buckets at the scripted boundaries.
    EXPECT_NE(text.find("varan_publish_lag_ns_bucket{le=\"0\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("varan_publish_lag_ns_bucket{le=\"1\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("varan_publish_lag_ns_bucket{le=\"7\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("varan_publish_lag_ns_bucket{le=\"127\"} 4\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("varan_publish_lag_ns_bucket{le=\"1048575\"} 5\n"),
        std::string::npos);
    EXPECT_NE(text.find("varan_publish_lag_ns_bucket{le=\"+Inf\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("varan_publish_lag_ns_sum 1000106\n"),
              std::string::npos);
    EXPECT_NE(text.find("varan_publish_lag_ns_count 5\n"),
              std::string::npos);
}

TEST(PrometheusTest, LiveEngineHistogramIsCumulativeAndConsistent)
{
    core::EngineConfig config = fastConfig();
    auto app = []() -> int {
        for (int i = 0; i < 512; ++i)
            sys::vgetpid(); // enough for the 1-in-64 lag sampling
        return 0;
    };
    core::Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);
    const core::StatusReport report = nvx.status();
    EXPECT_GE(report.trace.publish_lag.count, 1u);
    EXPECT_GT(report.trace.trace_records, 0u);
    // Bucket counts sum to _count; the rendered series is cumulative.
    std::uint64_t total = 0;
    for (std::uint64_t bucket : report.trace.publish_lag.buckets)
        total += bucket;
    EXPECT_EQ(total, report.trace.publish_lag.count);
}

TEST(WireRelayTest, RemoteDivergenceRecordsShipUpstream)
{
    // A remote follower node diverges during replay; its receiver
    // relays the ledger record upstream and the leader-node ledger
    // carries it tagged origin=remote — one hook covers the fleet.
    int gate[2];
    ASSERT_EQ(::pipe(gate), 0);

    const std::string endpoint =
        "varan-trace-relay-" + std::to_string(::getpid());
    auto listening = netio::listenAbstract(endpoint);
    ASSERT_TRUE(listening.ok());

    auto leader_app = [gate]() -> int {
        for (int i = 0; i < 64; ++i)
            sys::vgetpid();
        char go = 0;
        return sys::vread(gate[0], &go, 1) == 1 ? 0 : 9;
    };
    auto remote_app = [gate]() -> int {
        // Extra getuid the stream does not carry: a divergence on the
        // remote node, resolved there by the Allow rule.
        sys::vgetuid();
        for (int i = 0; i < 64; ++i)
            sys::vgetpid();
        char go = 0;
        return sys::vread(gate[0], &go, 1) == 1 ? 0 : 9; // replayed
    };

    // Remote node: external-leader engine + receiver, with the rule.
    core::EngineConfig remote_config = fastConfig();
    remote_config.external_leader = true;
    remote_config.rewrite_rules.push_back(kAllowGetuidRule);
    core::Nvx remote_nvx(remote_config);
    ASSERT_TRUE(remote_nvx.start({remote_app}).isOk());
    wire::Receiver receiver(remote_nvx.region(), &remote_nvx.layout());
    std::thread accepting([&] {
        long conn = netio::acceptConnection(listening.value(), false);
        ASSERT_GE(conn, 0);
        ASSERT_TRUE(receiver.adopt(static_cast<int>(conn)).isOk());
        receiver.start();
    });

    // Leader node, gated so the link stays up until the relay lands.
    core::EngineConfig config = fastConfig();
    config.remote.endpoint = endpoint;
    core::Nvx nvx(config);
    ASSERT_TRUE(nvx.start({leader_app}).isOk());

    // Wait for a remote-origin record to reach the leader's ledger.
    bool relayed = false;
    DivergenceRecord relayed_rec = {};
    const std::uint64_t deadline = monotonicNs() + 20000000000ULL;
    while (!relayed && monotonicNs() < deadline) {
        const core::StatusReport report = nvx.status();
        for (std::uint32_t i = 0; i < report.trace.recent_count; ++i) {
            if (report.trace.recent[i].origin != 0) {
                relayed = true;
                relayed_rec = report.trace.recent[i];
            }
        }
        if (!relayed)
            sleepNs(20000000);
    }
    ASSERT_EQ(::write(gate[1], "g", 1), 1);

    auto results = nvx.waitFor(30000000000ULL);
    accepting.join();
    auto remote_results = remote_nvx.waitFor(30000000000ULL);
    ASSERT_TRUE(receiver.finish().isOk());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].crashed);
    ASSERT_EQ(remote_results.size(), 1u);
    EXPECT_FALSE(remote_results[0].crashed);

    ASSERT_TRUE(relayed) << "no remote-origin divergence reached the "
                            "leader ledger";
    EXPECT_EQ(relayed_rec.origin, 1u);
    EXPECT_NE(relayed_rec.origin_id, 0u);
    EXPECT_EQ(relayed_rec.expected_nr, 39u);
    EXPECT_EQ(relayed_rec.observed_nr, 102u);
    EXPECT_GE(receiver.stats().divergence_records_sent, 1u);

    ::close(gate[0]);
    ::close(gate[1]);
    sys::vclose(static_cast<int>(listening.value()));
}

/** Directory holding this test binary (varanctl sits next to it). */
std::string
selfDirectory()
{
    char buf[512] = {};
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    std::string path(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::string
runCommand(const std::string &command)
{
    FILE *pipe = ::popen(command.c_str(), "r");
    if (pipe == nullptr)
        return {};
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = ::fread(buf, 1, sizeof(buf), pipe)) > 0)
        out.append(buf, n);
    ::pclose(pipe);
    return out;
}

TEST(VaranctlTest, AttachAndDialAgainstLiveEngine)
{
    const std::string varanctl = selfDirectory() + "/varanctl";
    if (::access(varanctl.c_str(), X_OK) != 0)
        GTEST_SKIP() << "varanctl binary not built next to the tests";

    // A deliberately divergent engine, kept alive by its coordinator
    // (the Nvx object) after the variants finish: region and status
    // endpoint stay inspectable until it is destroyed.
    core::EngineConfig config = fastConfig();
    config.rewrite_rules.push_back(kAllowGetuidRule);
    const std::string endpoint =
        "varan-trace-ctl-" + std::to_string(::getpid());
    config.remote.status_endpoint = endpoint;
    auto app = []() -> int {
        if (core::Monitor::instance() &&
            core::Monitor::instance()->variantId() == 1)
            sys::vgetuid();
        for (int i = 0; i < 512; ++i)
            sys::vgetpid();
        return 0;
    };
    core::Nvx nvx(config);
    auto results = nvx.run({app, app});
    EXPECT_FALSE(results[0].crashed);
    EXPECT_FALSE(results[1].crashed);

    // attach: the live shared region through /proc/<pid>/fd.
    const std::string attach_out = runCommand(
        varanctl + " attach " + std::to_string(::getpid()) + " 2>&1");
    EXPECT_NE(attach_out.find("engine: 2 variant(s)"), std::string::npos)
        << attach_out;
    EXPECT_NE(attach_out.find("varan_publish_lag_ns_count"),
              std::string::npos);
    EXPECT_NE(attach_out.find("expected_nr=39 observed_nr=102"),
              std::string::npos);
    EXPECT_NE(attach_out.find("action=resolved"), std::string::npos);

    // dial: the wire Status RPC against the engine's status endpoint.
    const std::string dial_out =
        runCommand(varanctl + " dial " + endpoint + " 2>&1");
    EXPECT_NE(dial_out.find("engine: 2 variant(s)"), std::string::npos)
        << dial_out;
    EXPECT_NE(dial_out.find("varan_divergence_records_total 1"),
              std::string::npos);
    EXPECT_NE(dial_out.find("expected_nr=39 observed_nr=102"),
              std::string::npos);

    // Unknown pid / endpoint fail loudly, not with garbage output.
    EXPECT_EQ(runCommand(varanctl + " attach 1 2>/dev/null"), "");
}

} // namespace
} // namespace varan::trace
