/**
 * @file
 * End-to-end tests for selective binary rewriting: real machine code is
 * generated, patched and *executed*, proving that intercepted syscall
 * sites reach the entry point with the right register frame, that the
 * detour preserves registers the kernel would preserve, that the INT
 * fallback path works through SIGTRAP, and that vDSO-style entry-point
 * hooks call both replacement and original.
 */

#include <cstring>
#include <sys/mman.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "arch/disasm.h"
#include "rewrite/patcher.h"
#include "rewrite/vdso.h"

namespace varan::rewrite {
namespace {

/** Records every intercepted call; the test entry point. */
struct EntryRecorder {
    static inline std::vector<SyscallFrame> calls;
    static inline long next_result = 0;

    static long
    entry(SyscallFrame *frame)
    {
        calls.push_back(*frame);
        return next_result;
    }

    static void
    reset(long result)
    {
        calls.clear();
        next_result = result;
    }
};

/** Page of generated executable code. */
class CodePage
{
  public:
    CodePage()
    {
        mem_ = static_cast<std::uint8_t *>(
            ::mmap(nullptr, kSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
        EXPECT_NE(mem_, MAP_FAILED);
    }

    ~CodePage()
    {
        if (mem_ != MAP_FAILED)
            ::munmap(mem_, kSize);
    }

    std::uint8_t *
    emit(std::initializer_list<std::uint8_t> bytes)
    {
        std::uint8_t *at = mem_ + used_;
        for (std::uint8_t b : bytes)
            mem_[used_++] = b;
        return at;
    }

    void
    makeExecutable()
    {
        ASSERT_EQ(::mprotect(mem_, kSize, PROT_READ | PROT_EXEC), 0);
    }

    std::uint8_t *base() const { return mem_; }
    std::size_t used() const { return used_; }

    template <typename Fn>
    Fn
    function(std::uint8_t *at) const
    {
        return reinterpret_cast<Fn>(at);
    }

  private:
    static constexpr std::size_t kSize = 4096;
    std::uint8_t *mem_ = nullptr;
    std::size_t used_ = 0;
};

using Fn0 = long (*)();

TEST(RewriterTest, DetourInterceptsAndReturnsEntryResult)
{
    CodePage page;
    // long f() { rax=39; syscall; rdx=rax; rax=rdx; ret }
    std::uint8_t *fn = page.emit({
        0x48, 0xc7, 0xc0, 0x27, 0, 0, 0, // mov rax, 39 (getpid)
        0x0f, 0x05,                      // syscall
        0x48, 0x89, 0xc2,                // mov rdx, rax  (relocated)
        0x48, 0x89, 0xd0,                // mov rax, rdx
        0xc3,                            // ret
    });
    page.makeExecutable();

    EntryRecorder::reset(4242);
    Rewriter rewriter(&EntryRecorder::entry);
    auto stats = rewriter.rewriteRegion(page.base(), page.used());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().sites_found, 1u);
    EXPECT_EQ(stats.value().detours, 1u);
    EXPECT_EQ(stats.value().interrupts, 0u);
    EXPECT_TRUE(stats.value().scan_complete);

    long r = page.function<Fn0>(fn)();
    EXPECT_EQ(r, 4242);
    ASSERT_EQ(EntryRecorder::calls.size(), 1u);
    EXPECT_EQ(EntryRecorder::calls[0].nr, 39u);
}

TEST(RewriterTest, FrameCarriesAllSixArguments)
{
    CodePage page;
    std::uint8_t *fn = page.emit({
        0x48, 0xc7, 0xc0, 0x2a, 0, 0, 0,  // mov rax, 42
        0x48, 0xc7, 0xc7, 0x01, 0, 0, 0,  // mov rdi, 1
        0x48, 0xc7, 0xc6, 0x02, 0, 0, 0,  // mov rsi, 2
        0x48, 0xc7, 0xc2, 0x03, 0, 0, 0,  // mov rdx, 3
        0x49, 0xc7, 0xc2, 0x04, 0, 0, 0,  // mov r10, 4
        0x49, 0xc7, 0xc0, 0x05, 0, 0, 0,  // mov r8, 5
        0x49, 0xc7, 0xc1, 0x06, 0, 0, 0,  // mov r9, 6
        0x0f, 0x05,                       // syscall
        0x90, 0x90, 0x90,                 // nops (relocation fodder)
        0xc3,                             // ret
    });
    page.makeExecutable();

    EntryRecorder::reset(0);
    Rewriter rewriter(&EntryRecorder::entry);
    auto stats = rewriter.rewriteRegion(page.base(), page.used());
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats.value().detours, 1u);

    page.function<Fn0>(fn)();
    ASSERT_EQ(EntryRecorder::calls.size(), 1u);
    const SyscallFrame &f = EntryRecorder::calls[0];
    EXPECT_EQ(f.nr, 42u);
    EXPECT_EQ(f.args[0], 1u);
    EXPECT_EQ(f.args[1], 2u);
    EXPECT_EQ(f.args[2], 3u);
    EXPECT_EQ(f.args[3], 4u);
    EXPECT_EQ(f.args[4], 5u);
    EXPECT_EQ(f.args[5], 6u);
}

TEST(RewriterTest, ArgumentRegistersSurviveTheDetour)
{
    CodePage page;
    // The kernel preserves rdi across syscall; code after the call may
    // rely on it. mov rax, rdi after the syscall must see 0x7777.
    std::uint8_t *fn = page.emit({
        0x48, 0xc7, 0xc0, 0x27, 0, 0, 0,       // mov rax, 39
        0x48, 0xc7, 0xc7, 0x77, 0x77, 0, 0,    // mov rdi, 0x7777
        0x0f, 0x05,                            // syscall
        0x48, 0x89, 0xf8,                      // mov rax, rdi
        0xc3,                                  // ret
    });
    page.makeExecutable();

    EntryRecorder::reset(-1); // entry result must be overwritten
    Rewriter rewriter(&EntryRecorder::entry);
    auto stats = rewriter.rewriteRegion(page.base(), page.used());
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats.value().detours, 1u);

    EXPECT_EQ(page.function<Fn0>(fn)(), 0x7777);
}

TEST(RewriterTest, IntFallbackWhenFollowedByBranch)
{
    CodePage page;
    // syscall immediately followed by ret: the window cannot grow, so
    // the site must fall back to the 2-byte interrupt patch.
    std::uint8_t *fn = page.emit({
        0x48, 0xc7, 0xc0, 0x27, 0, 0, 0, // mov rax, 39
        0x0f, 0x05,                      // syscall
        0xc3,                            // ret
    });
    page.makeExecutable();

    EntryRecorder::reset(777);
    Rewriter rewriter(&EntryRecorder::entry);
    auto stats = rewriter.rewriteRegion(page.base(), page.used());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().detours, 0u);
    EXPECT_EQ(stats.value().interrupts, 1u);

    // Executing rides the SIGTRAP path end to end.
    EXPECT_EQ(page.function<Fn0>(fn)(), 777);
    ASSERT_EQ(EntryRecorder::calls.size(), 1u);
    EXPECT_EQ(EntryRecorder::calls[0].nr, 39u);
}

TEST(RewriterTest, IntFallbackCarriesArguments)
{
    CodePage page;
    std::uint8_t *fn = page.emit({
        0x48, 0xc7, 0xc0, 0x01, 0, 0, 0,    // mov rax, 1 (write)
        0x48, 0xc7, 0xc7, 0x02, 0, 0, 0,    // mov rdi, 2
        0x48, 0xc7, 0xc6, 0x33, 0, 0, 0,    // mov rsi, 0x33
        0x48, 0xc7, 0xc2, 0x40, 0, 0, 0,    // mov rdx, 0x40
        0x0f, 0x05,                         // syscall
        0xc3,                               // ret
    });
    page.makeExecutable();

    EntryRecorder::reset(64);
    Rewriter rewriter(&EntryRecorder::entry);
    auto stats = rewriter.rewriteRegion(page.base(), page.used());
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats.value().interrupts, 1u);

    EXPECT_EQ(page.function<Fn0>(fn)(), 64);
    ASSERT_EQ(EntryRecorder::calls.size(), 1u);
    EXPECT_EQ(EntryRecorder::calls[0].nr, 1u);
    EXPECT_EQ(EntryRecorder::calls[0].args[0], 2u);
    EXPECT_EQ(EntryRecorder::calls[0].args[1], 0x33u);
    EXPECT_EQ(EntryRecorder::calls[0].args[2], 0x40u);
}

TEST(RewriterTest, MultipleSitesAllPatched)
{
    CodePage page2;
    std::uint8_t *fn2 = page2.emit({
        0x48, 0xc7, 0xc0, 0x0a, 0, 0, 0, // mov rax, 10
        0x0f, 0x05,                      // syscall #1
        0x48, 0x89, 0xc2,                // mov rdx, rax
        0x48, 0xc7, 0xc0, 0x14, 0, 0, 0, // mov rax, 20
        0x0f, 0x05,                      // syscall #2
        0x48, 0x01, 0xd0,                // add rax, rdx
        0xc3,                            // ret
    });
    page2.makeExecutable();

    EntryRecorder::reset(100);
    Rewriter rewriter(&EntryRecorder::entry);
    auto stats = rewriter.rewriteRegion(page2.base(), page2.used());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().sites_found, 2u);
    EXPECT_EQ(stats.value().detours, 2u);

    // Both intercepted calls return 100; result is 100 + 100.
    EXPECT_EQ(page2.function<Fn0>(fn2)(), 200);
    ASSERT_EQ(EntryRecorder::calls.size(), 2u);
    EXPECT_EQ(EntryRecorder::calls[0].nr, 10u);
    EXPECT_EQ(EntryRecorder::calls[1].nr, 20u);
}

TEST(RewriterTest, Int80SitesArePatchedToo)
{
    CodePage page;
    std::uint8_t *fn = page.emit({
        0x48, 0xc7, 0xc0, 0x14, 0, 0, 0, // mov rax, 20 (i386 getpid)
        0xcd, 0x80,                      // int 0x80
        0x90, 0x90, 0x90,                // nops
        0xc3,                            // ret
    });
    page.makeExecutable();

    EntryRecorder::reset(31337);
    Rewriter rewriter(&EntryRecorder::entry);
    auto stats = rewriter.rewriteRegion(page.base(), page.used());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().sites_found, 1u);
    EXPECT_EQ(stats.value().detours, 1u);
    EXPECT_EQ(page.function<Fn0>(fn)(), 31337);
}

TEST(RewriterTest, RewriteIsIdempotentOnPatchedCode)
{
    CodePage page;
    page.emit({
        0x48, 0xc7, 0xc0, 0x27, 0, 0, 0,
        0x0f, 0x05,
        0x48, 0x89, 0xc2,
        0xc3,
    });
    page.makeExecutable();

    EntryRecorder::reset(1);
    Rewriter rewriter(&EntryRecorder::entry);
    auto first = rewriter.rewriteRegion(page.base(), page.used());
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().sites_found, 1u);
    // A second pass over already-rewritten code finds nothing to patch.
    auto second = rewriter.rewriteRegion(page.base(), page.used());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().sites_found, 0u);
}

TEST(RewriterTest, PageIsExecutableNotWritableAfterRewrite)
{
    CodePage page;
    page.emit({
        0x48, 0xc7, 0xc0, 0x27, 0, 0, 0,
        0x0f, 0x05,
        0x48, 0x89, 0xc2,
        0xc3,
    });
    page.makeExecutable();

    EntryRecorder::reset(1);
    Rewriter rewriter(&EntryRecorder::entry);
    ASSERT_TRUE(rewriter.rewriteRegion(page.base(), page.used()).ok());

    // W^X: mprotect to RW and back must succeed (the page exists), and
    // reading /proc/self/maps for the page shows r-xp.
    char maps[256];
    std::snprintf(maps, sizeof(maps), "/proc/self/maps");
    FILE *f = std::fopen(maps, "r");
    ASSERT_NE(f, nullptr);
    char line[512];
    bool found_rx = false;
    auto lo = reinterpret_cast<std::uintptr_t>(page.base());
    while (std::fgets(line, sizeof(line), f)) {
        std::uintptr_t begin, end;
        char perms[8] = {};
        if (std::sscanf(line, "%lx-%lx %7s", &begin, &end, perms) == 3 &&
            lo >= begin && lo < end) {
            found_rx = std::strncmp(perms, "r-xp", 4) == 0;
            break;
        }
    }
    std::fclose(f);
    EXPECT_TRUE(found_rx);
}

// --- vDSO-style function hooking (section 3.2.1) ---

namespace hooks {

long
replacement()
{
    return 222;
}

} // namespace hooks

TEST(FunctionHookTest, HooksGeneratedFunction)
{
    CodePage page;
    // long f() { return 111; }  (5-byte mov + ret: perfect prologue)
    std::uint8_t *fn = page.emit({
        0xb8, 0x6f, 0, 0, 0, // mov eax, 111
        0xc3,                // ret
    });
    page.makeExecutable();

    FunctionHooker hooker;
    auto hooked = hooker.hook(reinterpret_cast<void *>(fn),
                              reinterpret_cast<void *>(&hooks::replacement));
    ASSERT_TRUE(hooked.ok()) << hooked.error().message();
    EXPECT_GE(hooked.value().prologue_bytes, 5u);

    // Calls now reach the replacement...
    EXPECT_EQ(page.function<Fn0>(fn)(), 222);
    // ...while the trampoline still reaches the original body.
    auto original = reinterpret_cast<Fn0>(hooked.value().call_original);
    EXPECT_EQ(original(), 111);
}

TEST(FunctionHookTest, RefusesBranchInPrologue)
{
    CodePage page;
    // First instruction is a 2-byte jmp: cannot relocate safely.
    std::uint8_t *fn = page.emit({
        0xeb, 0x03,          // jmp +3
        0x90, 0x90, 0x90,    // nops
        0xb8, 0x6f, 0, 0, 0, // mov eax, 111
        0xc3,
    });
    page.makeExecutable();

    FunctionHooker hooker;
    auto hooked = hooker.hook(reinterpret_cast<void *>(fn),
                              reinterpret_cast<void *>(&hooks::replacement));
    ASSERT_FALSE(hooked.ok());
    EXPECT_EQ(hooked.error().code, EFAULT);
}

TEST(FunctionHookTest, HookPreservesArgumentPassing)
{
    CodePage page;
    // long f(long a) { return a + 7; }:
    //   lea rax, [rdi+7]; ret  -> 48 8D 47 07 C3
    std::uint8_t *fn = page.emit({
        0x48, 0x8d, 0x47, 0x07, // lea rax, [rdi+7]
        0x90,                   // nop (pad prologue to 5 bytes)
        0xc3,                   // ret
    });
    page.makeExecutable();

    struct Local {
        static long
        twice(long a)
        {
            return a * 2;
        }
    };

    using Fn1 = long (*)(long);
    FunctionHooker hooker;
    auto hooked =
        hooker.hook(reinterpret_cast<void *>(fn),
                    reinterpret_cast<void *>(+[](long a) -> long {
                        return Local::twice(a);
                    }));
    ASSERT_TRUE(hooked.ok());
    EXPECT_EQ(page.function<Fn1>(fn)(21), 42);
    auto original = reinterpret_cast<Fn1>(hooked.value().call_original);
    EXPECT_EQ(original(21), 28);
}

} // namespace
} // namespace varan::rewrite
