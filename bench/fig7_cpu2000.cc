/** @file Figure 7: SPEC CPU2000-like kernels, overhead vs followers. */

#include "cpu_overhead.h"

int
main(int argc, char **argv)
{
    return varan::bench::runCpuFigure(
        "Figure 7", "SPEC CPU2000-like suite",
        varan::apps::cpu::cpu2000Suite(), argc, argv);
}
