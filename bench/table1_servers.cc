/**
 * @file
 * Table 1: server applications used in the evaluation — name, size and
 * threading model. Sizes are counted from the in-tree sources at run
 * time (the paper used cloc over the original applications).
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "benchutil/table.h"

#ifndef VARAN_SOURCE_DIR
#define VARAN_SOURCE_DIR "."
#endif

namespace {

/** Non-blank line count of a source file (cloc-lite). */
std::size_t
countLines(const std::string &path)
{
    std::ifstream in(path);
    std::size_t lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        bool blank = true;
        for (char c : line) {
            if (!std::isspace(static_cast<unsigned char>(c))) {
                blank = false;
                break;
            }
        }
        if (!blank)
            ++lines;
    }
    return lines;
}

} // namespace

int
main()
{
    const std::string base = std::string(VARAN_SOURCE_DIR) + "/src/apps/";
    struct App {
        const char *paper;
        const char *paper_size;
        const char *paper_threading;
        const char *file_cc;
        const char *file_h;
        const char *threading;
    };
    const App apps[] = {
        {"Beanstalkd", "6,365", "single-threaded", "vqueue.cc",
         "vqueue.h", "single-threaded"},
        {"Lighttpd", "38,590", "single-threaded", "vhttpd.cc", "vhttpd.h",
         "single-threaded"},
        {"Memcached", "9,779", "multi-threaded", "vcache.cc", "vcache.h",
         "multi-threaded"},
        {"Nginx", "101,852", "multi-process", "vproxy.cc", "vproxy.h",
         "multi-process"},
        {"Redis", "34,625", "multi-threaded", "vstore.cc", "vstore.h",
         "single-threaded"},
    };

    std::printf("Table 1: server applications used in the evaluation\n\n");
    varan::bench::Table table({"application (paper)", "paper size",
                               "paper threading", "archetype", "our LoC",
                               "our threading"});
    for (const App &app : apps) {
        std::size_t loc = countLines(base + app.file_cc) +
                          countLines(base + app.file_h);
        table.addRow({app.paper, app.paper_size, app.paper_threading,
                      app.file_cc, std::to_string(loc), app.threading});
    }
    table.print();
    table.writeJson("table1");
    std::printf("\nNote: the archetypes reproduce each server's protocol "
                "shape, event-loop structure and\nthreading model, which "
                "is what determines the monitor's cost profile; "
                "application logic is\ncondensed (see DESIGN.md).\n");
    return 0;
}
