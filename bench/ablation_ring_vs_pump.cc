/**
 * @file
 * Ablation A (section 3.3.1): the shared ring buffer versus VARAN's
 * abandoned first design — one queue per follower with a central event
 * pump.
 *
 * The paper's argument is about the *central component's* work per
 * event: with the shared ring the producer publishes once (O(1)) and
 * consumers read in place; with per-follower queues a pump must copy
 * every event into every queue (O(N)). This bench measures exactly
 * that central-path cost, single-threaded so the result reflects CPU
 * work rather than scheduling noise on small machines: each "round"
 * moves one event end to end, and the pump's dispatch is the only
 * extra work between the transports.
 */

#include <cstdio>
#include <vector>

#include "benchutil/harness.h"
#include "benchutil/table.h"
#include "common/clock.h"
#include "ring/event_pump.h"
#include "ring/ring_buffer.h"
#include "shmem/region.h"

using namespace varan;
using namespace varan::bench;

namespace {

ring::Event
makeEvent(std::uint64_t n)
{
    ring::Event e = {};
    e.timestamp = n;
    e.type = ring::EventType::Syscall;
    return e;
}

double
ringEventsPerSec(int consumers, std::uint64_t events)
{
    auto region = shmem::Region::create(8 << 20);
    shmem::Region r = std::move(region.value());
    shmem::Offset off = r.carve(ring::RingBuffer::bytesRequired(256));
    ring::RingBuffer ring = ring::RingBuffer::initialize(&r, off, 256);
    std::vector<int> ids(consumers);
    for (int i = 0; i < consumers; ++i)
        ids[i] = ring.attachConsumer();

    ring::Event out;
    std::uint64_t t0 = monotonicNs();
    for (std::uint64_t n = 0; n < events; ++n) {
        ring.publish(makeEvent(n));
        for (int i = 0; i < consumers; ++i)
            ring.poll(ids[i], &out);
    }
    return double(events) / (double(monotonicNs() - t0) / 1e9);
}

double
pumpEventsPerSec(int consumers, std::uint64_t events)
{
    auto region = shmem::Region::create(32 << 20);
    shmem::Region r = std::move(region.value());
    auto make_queue = [&] {
        shmem::Offset off = r.carve(ring::SpscQueue::bytesRequired(256));
        return ring::SpscQueue::initialize(&r, off, 256);
    };
    ring::SpscQueue leader = make_queue();
    std::vector<ring::SpscQueue> follower_queues;
    for (int i = 0; i < consumers; ++i)
        follower_queues.push_back(make_queue());
    ring::EventPump pump(leader, follower_queues);

    ring::Event out;
    std::uint64_t t0 = monotonicNs();
    for (std::uint64_t n = 0; n < events; ++n) {
        leader.tryPush(makeEvent(n));
        pump.pumpSome(1); // the central dispatch: one copy per follower
        for (int i = 0; i < consumers; ++i)
            follower_queues[i].tryPop(&out);
    }
    return double(events) / (double(monotonicNs() - t0) / 1e9);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t events = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : (quickMode() ? 200000 : 2000000);
    std::printf("Ablation A: shared ring buffer vs per-queue event pump "
                "(central-path cost,\n%llu events, single-threaded)\n\n",
                static_cast<unsigned long long>(events));

    Table table({"followers", "ring events/s", "pump events/s",
                 "ring/pump"});
    for (int consumers : {1, 2, 4, 6}) {
        double ring_rate = ringEventsPerSec(consumers, events);
        double pump_rate = pumpEventsPerSec(consumers, events);
        table.addRow({std::to_string(consumers), fmt(ring_rate, "%.0f"),
                      fmt(pump_rate, "%.0f"),
                      fmt(pump_rate > 0 ? ring_rate / pump_rate : 0,
                          "%.2fx")});
        std::fflush(stdout);
    }
    table.print();
    table.writeJson("ablation_ring_vs_pump");
    std::printf("\nExpected shape (section 3.3.1): the pump 'worked well "
                "for a low system call rate,\nbut at higher rates the "
                "event pump quickly became a bottleneck' — the ring's "
                "central\npath is O(1) per event while the pump's is "
                "O(followers), so the ratio should grow\nwith "
                "fan-out.\n");
    return 0;
}
