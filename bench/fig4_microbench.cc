/**
 * @file
 * Figure 4: system call microbenchmarks.
 *
 * For five representative system calls — close(-1), write(/dev/null),
 * read(/dev/zero), open(/dev/null), time(NULL) — measure cycles per
 * call under four regimes:
 *
 *   native    raw syscall instruction
 *   intercept binary-rewritten call routed through the entry point and
 *             executed immediately (cost of interception alone)
 *   leader    intercepted + executed + recorded into the ring
 *   follower  intercepted + replayed from the ring (no execution)
 *
 * Expected shape (paper): intercept within ~15% of native except for
 * the virtual `time` call (cheap in absolute terms); leader adds the
 * recording cost (more for read's payload, most for open's descriptor
 * transfer); follower is *cheaper than native* for close/write because
 * no system call happens at all.
 */

#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "benchutil/table.h"
#include "common/clock.h"
#include "core/nvx.h"
#include "rewrite/patcher.h"
#include "syscalls/sys.h"

namespace {

using namespace varan;

constexpr std::size_t kWarmup = 10000;
std::size_t g_iters = 200000;

int g_devnull_w = -1;
int g_devzero_r = -1;
char g_buf[512];

/** The five probes; each performs its syscall once via sys::invoke. */
long
probeClose()
{
    return sys::invoke(SYS_close, -1);
}

long
probeWrite()
{
    return sys::invoke(SYS_write, g_devnull_w,
                       reinterpret_cast<long>(g_buf), 512);
}

long
probeRead()
{
    return sys::invoke(SYS_read, g_devzero_r,
                       reinterpret_cast<long>(g_buf), 512);
}

long
probeOpen()
{
    long fd = sys::invoke(SYS_open,
                          reinterpret_cast<long>("/dev/null"), O_RDONLY);
    if (fd >= 0)
        sys::rawSyscall(SYS_close, fd); // uninstrumented cleanup
    return fd;
}

long
probeTime()
{
    return sys::invoke(SYS_time, 0);
}

struct Probe {
    const char *name;
    long (*fn)();
};

const Probe kProbes[] = {
    {"close", probeClose}, {"write", probeWrite}, {"read", probeRead},
    {"open", probeOpen},   {"time", probeTime},
};

double
cyclesPerCall(long (*fn)(), std::size_t iters)
{
    for (std::size_t i = 0; i < kWarmup; ++i)
        fn();
    std::uint64_t t0 = rdtsc();
    for (std::size_t i = 0; i < iters; ++i)
        fn();
    return double(rdtsc() - t0) / double(iters);
}

/**
 * Intercept regime: generate a function containing a real `syscall`
 * instruction, let the binary rewriter patch it, and route the entry
 * straight back to a raw syscall (interception cost only).
 */
double
interceptCycles(long nr, long a1, long a2, long a3, std::size_t iters)
{
    static std::uint8_t *page = [] {
        void *mem = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        return static_cast<std::uint8_t *>(mem);
    }();
    // long f(nr, a1, a2, a3): mov args into syscall regs; syscall; ret
    static std::size_t used = 0;
    ::mprotect(page, 4096, PROT_READ | PROT_WRITE); // re-open for emit
    std::uint8_t *fn = page + used;
    std::uint8_t code[] = {
        0x48, 0x89, 0xf8,             // mov rax, rdi (nr)
        0x48, 0x89, 0xf7,             // mov rdi, rsi
        0x48, 0x89, 0xd6,             // mov rsi, rdx
        0x48, 0x89, 0xca,             // mov rdx, rcx
        0x0f, 0x05,                   // syscall
        0x48, 0x89, 0xc1,             // mov rcx, rax (relocation fodder)
        0x48, 0x89, 0xc8,             // mov rax, rcx
        0xc3,                         // ret
    };
    std::memcpy(fn, code, sizeof(code));
    used += (sizeof(code) + 15) & ~std::size_t{15};
    ::mprotect(page, 4096, PROT_READ | PROT_EXEC);

    static rewrite::Rewriter rewriter(&sys::rewriteEntry);
    auto stats = rewriter.rewriteRegion(fn, sizeof(code));
    if (!stats.ok() || stats.value().sites_found != 1) {
        std::fprintf(stderr, "rewrite failed for intercept probe\n");
        return 0;
    }

    using Fn = long (*)(long, long, long, long);
    Fn call = reinterpret_cast<Fn>(fn);
    for (std::size_t i = 0; i < kWarmup; ++i)
        call(nr, a1, a2, a3);
    std::uint64_t t0 = rdtsc();
    for (std::size_t i = 0; i < iters; ++i)
        call(nr, a1, a2, a3);
    return double(rdtsc() - t0) / double(iters);
}

/** Run all probes inside an engine variant; report via a pipe. */
void
engineCycles(bool follower_mode, double out[5])
{
    int fds[2];
    if (::pipe(fds) != 0)
        return;
    core::EngineConfig config;
    config.ring.capacity = 256;
    config.shm_bytes = 64 << 20;
    config.ring.progress_timeout_ns = 120000000000ULL;

    const std::size_t iters = g_iters / 4; // engine paths are slower
    auto variant = [fds, follower_mode, iters]() -> int {
        bool measure_me =
            follower_mode
                ? !core::Monitor::instance()->isLeader()
                : core::Monitor::instance()->isLeader();
        double results[5];
        for (int p = 0; p < 5; ++p)
            results[p] = cyclesPerCall(kProbes[p].fn, iters);
        if (measure_me)
            sys::rawSyscall(SYS_write, fds[1],
                            reinterpret_cast<long>(results),
                            sizeof(results));
        return 0;
    };

    core::Nvx nvx(config);
    std::vector<core::VariantFn> variants;
    variants.push_back(variant);
    if (follower_mode)
        variants.push_back(variant);
    if (!nvx.start(std::move(variants)).isOk())
        return;
    double results[5] = {};
    [[maybe_unused]] ssize_t n = ::read(fds[0], results, sizeof(results));
    nvx.waitFor(300000000000ULL);
    for (int p = 0; p < 5; ++p)
        out[p] = results[p];
    ::close(fds[0]);
    ::close(fds[1]);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1)
        g_iters = std::strtoul(argv[1], nullptr, 10);
    if (const char *quick = std::getenv("VARAN_BENCH_QUICK");
        quick && quick[0] == '1') {
        g_iters = 20000;
    }

    g_devnull_w = ::open("/dev/null", O_WRONLY);
    g_devzero_r = ::open("/dev/zero", O_RDONLY);

    std::printf("Figure 4: system call microbenchmarks "
                "(cycles per call, %zu iterations)\n\n",
                g_iters);

    double native[5], intercept[5], leader[5], follower[5];
    for (int p = 0; p < 5; ++p)
        native[p] = cyclesPerCall(kProbes[p].fn, g_iters);

    intercept[0] = interceptCycles(SYS_close, -1, 0, 0, g_iters);
    intercept[1] = interceptCycles(SYS_write, g_devnull_w,
                                   reinterpret_cast<long>(g_buf), 512,
                                   g_iters);
    intercept[2] = interceptCycles(SYS_read, g_devzero_r,
                                   reinterpret_cast<long>(g_buf), 512,
                                   g_iters);
    intercept[4] = interceptCycles(SYS_time, 0, 0, 0, g_iters);

    // For `open`, measure via the probe (open through the entry path,
    // raw close in the loop); the number therefore includes one native
    // close, as noted in EXPERIMENTS.md.
    {
        for (std::size_t i = 0; i < kWarmup / 10; ++i)
            probeOpen();
        std::uint64_t t0 = rdtsc();
        const std::size_t iters = g_iters / 10;
        for (std::size_t i = 0; i < iters; ++i)
            probeOpen();
        double open_with_close = double(rdtsc() - t0) / double(iters);
        intercept[3] = open_with_close; // includes one raw close
    }

    engineCycles(false, leader);
    engineCycles(true, follower);

    varan::bench::Table table({"syscall", "native", "intercept", "leader",
                               "follower", "leader/native"});
    for (int p = 0; p < 5; ++p) {
        table.addRow({kProbes[p].name, varan::bench::fmt(native[p], "%.0f"),
                      varan::bench::fmt(intercept[p], "%.0f"),
                      varan::bench::fmt(leader[p], "%.0f"),
                      varan::bench::fmt(follower[p], "%.0f"),
                      varan::bench::fmt(
                          native[p] > 0 ? leader[p] / native[p] : 0,
                          "%.2fx")});
    }
    table.print();
    table.writeJson("fig4");

    std::printf("\nPaper reference (cycles): close 1261/1330/1718/257, "
                "write 1430/1564/1994/291,\n  read 1486/1528/3290/1969, "
                "open 2583/2976/8788/7342, time 49/122/429/189\n");
    std::printf("Expected shape: intercept ~= native (+<15%%); leader > "
                "native; follower << leader\nfor close/write; read/open "
                "followers pay payload/descriptor transfer.\n");
    return 0;
}
