/**
 * @file
 * Section 5.2: multi-revision execution.
 *
 * Runs the paper's three Lighttpd revision pairs, each introducing a
 * system-call-sequence divergence no lockstep system can absorb, under
 * BPF rewrite rules:
 *
 *   2435 | 2436  issetugid(): +getuid +getgid      (Listing 1's filter)
 *   2523 | 2524  extra /dev/urandom read at startup
 *   2577 | 2578  extra fcntl(FD_CLOEXEC)
 *
 * For each pair the bench serves a short workload and reports whether
 * both revisions survived and how many divergences the rules resolved.
 */

#include <cstdio>
#include <fcntl.h>
#include <string>
#include <unistd.h>

#include "apps/vhttpd.h"
#include "benchutil/drivers.h"
#include "benchutil/harness.h"
#include "benchutil/table.h"
#include "core/nvx.h"

using namespace varan;
using namespace varan::bench;

namespace {

std::string
endpointFor(int pair)
{
    static int counter = 0;
    return "varan-s52-" + std::to_string(::getpid()) + "-" +
           std::to_string(pair) + "-" + std::to_string(counter++);
}

/** Listing 1, verbatim. */
const char *kListing1 =
    "ld event[0]\n"
    "jeq #108, getegid /* __NR_getegid */\n"
    "jeq #2, open /* __NR_open */\n"
    "jmp bad\n"
    "getegid:\n"
    "ld [0] /* offsetof(struct seccomp_data, nr) */\n"
    "jeq #102, good /* __NR_getuid */\n"
    "open:\n"
    "ld [0] /* offsetof(struct seccomp_data, nr) */\n"
    "jeq #104, good /* __NR_getgid */\n"
    "bad: ret #0 /* SECCOMP_RET_KILL */\n"
    "good: ret #0x7fff0000 /* SECCOMP_RET_ALLOW */\n";

/** 2524: the follower's extra open/read/close of /dev/urandom. */
const char *kUrandomRule =
    "ld [0]\n"
    "jeq #2, good /* open */\n"
    "jeq #0, good /* read */\n"
    "jeq #3, good /* close */\n"
    "ret #0\n"
    "good: ret #0x7fff0000\n";

/** 2578: the follower's extra fcntl. */
const char *kFcntlRule =
    "ld [0]\n"
    "jeq #72, good /* fcntl */\n"
    "ret #0\n"
    "good: ret #0x7fff0000\n";

struct PairResult {
    bool old_ok = false;
    bool new_ok = false;
    std::uint64_t resolved = 0;
    std::uint64_t fatal = 0;
    double ops = 0;
};

PairResult
runPair(const char *rule, apps::vhttpd::Revision old_rev,
        apps::vhttpd::Revision new_rev, const std::string &docroot,
        int pair)
{
    std::string endpoint = endpointFor(pair);
    core::EngineConfig config;
    config.shm_bytes = 64 << 20;
    config.ring.progress_timeout_ns = 120000000000ULL;
    config.rewrite_rules.push_back(rule);

    auto make = [endpoint, docroot](apps::vhttpd::Revision rev) {
        return [endpoint, docroot, rev]() -> int {
            apps::vhttpd::Options o;
            o.endpoint = endpoint;
            o.docroot_file = docroot;
            o.revision = rev;
            return apps::vhttpd::serve(o);
        };
    };

    core::Nvx nvx(config);
    PairResult out;
    if (!nvx.start({make(old_rev), make(new_rev)}).isOk())
        return out;
    auto load = httpBench(endpoint, 2, scaled(60, 15));
    out.ops = load.total_ops;
    httpShutdown(endpoint);
    auto results = nvx.waitFor(60000000000ULL);
    out.old_ok = !results[0].crashed;
    out.new_ok = !results[1].crashed;
    out.resolved = nvx.divergencesResolved();
    out.fatal = nvx.divergencesFatal();
    return out;
}

} // namespace

int
main()
{
    std::printf("Section 5.2: multi-revision execution with BPF rewrite "
                "rules\n(old revision leads, new revision follows — the "
                "configuration lockstep systems cannot run)\n\n");

    char docroot[] = "/tmp/varan-s52-doc-XXXXXX";
    int doc = ::mkstemp(docroot);
    if (doc >= 0) {
        [[maybe_unused]] ssize_t n =
            ::write(doc, "<html>varan</html>", 18);
        ::close(doc);
    }

    Table table({"revisions", "divergence", "rule", "old ok", "new ok",
                 "resolved", "fatal", "requests"});

    apps::vhttpd::Revision rev2435, rev2436;
    rev2436.issetugid_checks = true;
    PairResult p1 = runPair(kListing1, rev2435, rev2436, docroot, 1);
    table.addRow({"2435 | 2436", "+getuid +getgid", "Listing 1",
                  p1.old_ok ? "yes" : "NO", p1.new_ok ? "yes" : "NO",
                  std::to_string(p1.resolved), std::to_string(p1.fatal),
                  fmt(p1.ops, "%.0f")});

    apps::vhttpd::Revision rev2523, rev2524;
    rev2524.read_urandom = true;
    PairResult p2 = runPair(kUrandomRule, rev2523, rev2524, docroot, 2);
    table.addRow({"2523 | 2524", "+read /dev/urandom", "urandom filter",
                  p2.old_ok ? "yes" : "NO", p2.new_ok ? "yes" : "NO",
                  std::to_string(p2.resolved), std::to_string(p2.fatal),
                  fmt(p2.ops, "%.0f")});

    apps::vhttpd::Revision rev2577, rev2578;
    rev2578.set_cloexec = true;
    PairResult p3 = runPair(kFcntlRule, rev2577, rev2578, docroot, 3);
    table.addRow({"2577 | 2578", "+fcntl FD_CLOEXEC", "fcntl filter",
                  p3.old_ok ? "yes" : "NO", p3.new_ok ? "yes" : "NO",
                  std::to_string(p3.resolved), std::to_string(p3.fatal),
                  fmt(p3.ops, "%.0f")});

    table.print();
    table.writeJson("sec52_multirev");
    ::unlink(docroot);

    std::printf("\nPaper reference: all three revision pairs ran "
                "successfully under VARAN's rewrite\nrules; prior NVX "
                "systems cannot run any of them (lockstep violation).\n");
    return 0;
}
