/**
 * @file
 * Shared driver for Figures 7 and 8: per-kernel runtime overhead of the
 * engine with 0..N followers, normalised to native execution.
 */

#ifndef VARAN_BENCH_CPU_OVERHEAD_H
#define VARAN_BENCH_CPU_OVERHEAD_H

#include <cstdio>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/cpu_kernels.h"
#include "benchutil/harness.h"
#include "benchutil/table.h"
#include "common/clock.h"
#include "core/nvx.h"

namespace varan::bench {

inline double
kernelSecondsNative(const apps::cpu::Kernel &kernel, std::uint32_t scale)
{
    std::uint64_t t0 = monotonicNs();
    pid_t pid = ::fork();
    if (pid == 0) {
        std::uint64_t sink = kernel.run(scale);
        ::_exit(static_cast<int>(sink & 0x3f));
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return double(monotonicNs() - t0) / 1e9;
}

inline double
kernelSecondsNvx(const apps::cpu::Kernel &kernel, std::uint32_t scale,
                 int followers)
{
    core::EngineConfig config;
    config.shm_bytes = 64 << 20;
    config.ring.progress_timeout_ns = 600000000000ULL;
    core::Nvx nvx(config);
    auto variant = [&kernel, scale]() -> int {
        return static_cast<int>(kernel.run(scale) & 0x3f);
    };
    std::vector<core::VariantFn> variants(
        static_cast<std::size_t>(followers) + 1, variant);
    std::uint64_t t0 = monotonicNs();
    nvx.run(std::move(variants));
    return double(monotonicNs() - t0) / 1e9;
}

inline int
runCpuFigure(const char *figure, const char *suite_name,
             const std::vector<apps::cpu::Kernel> &suite, int argc,
             char **argv)
{
    int max_followers = argc > 1 ? std::atoi(argv[1]) : 6;
    std::uint32_t scale = argc > 2
                              ? static_cast<std::uint32_t>(
                                    std::atoi(argv[2]))
                              : static_cast<std::uint32_t>(scaled(2, 1));
    if (quickMode() && argc <= 1)
        max_followers = 2;

    std::printf("%s: %s overhead vs followers (scale %u)\n\n", figure,
                suite_name, scale);
    std::vector<std::string> headers = {"kernel", "native s"};
    for (int f = 0; f <= max_followers; ++f)
        headers.push_back(std::to_string(f));
    Table table(headers);

    // Engine start-up (zygote fork, spawn, teardown) is a fixed cost
    // that would swamp short kernels; measure it per follower count
    // with an empty variant and subtract, so rows report steady-state
    // overhead like the paper's (SPEC runs are minutes long).
    std::vector<double> startup(static_cast<std::size_t>(max_followers) +
                                1);
    apps::cpu::Kernel empty = {"empty", [](std::uint32_t) {
                                   return std::uint64_t{0};
                               }};
    for (int f = 0; f <= max_followers; ++f)
        startup[f] = kernelSecondsNvx(empty, 0, f);
    double native_startup = kernelSecondsNative(empty, 0);

    for (const auto &kernel : suite) {
        double native =
            kernelSecondsNative(kernel, scale) - native_startup;
        std::vector<std::string> row = {kernel.name,
                                        fmt(native, "%.3f")};
        for (int f = 0; f <= max_followers; ++f) {
            double t = kernelSecondsNvx(kernel, scale, f) - startup[f];
            row.push_back(
                fmt(native > 0 ? std::max(t, 0.0) / native : 0, "%.2f"));
        }
        table.addRow(row);
        std::fflush(stdout);
    }
    table.print();
    std::printf("\nExpected shape (paper Figures 7/8): near 1x with few "
                "followers, rising with the\nnumber of copies as memory "
                "pressure and core oversubscription grow (this host has "
                "%ld\ncores vs the paper's 8 hardware threads, so the "
                "rise starts earlier).\n",
                sysconf(_SC_NPROCESSORS_ONLN));
    return 0;
}

} // namespace varan::bench

#endif // VARAN_BENCH_CPU_OVERHEAD_H
