/**
 * @file
 * google-benchmark microbenchmarks for VARAN's primitives: ring-buffer
 * publish/consume, Lamport clock ticks, pool allocation, BPF filter
 * evaluation and the length disassembler. These are the building-block
 * costs behind Figure 4's macro numbers.
 */

#include <vector>

#include <benchmark/benchmark.h>

#include "arch/disasm.h"
#include "ring/event_pump.h"
#include "bpf/asm.h"
#include "bpf/interp.h"
#include "ring/lamport.h"
#include "ring/ring_buffer.h"
#include "shmem/pool.h"
#include "shmem/region.h"

namespace {

using namespace varan;

struct RingFixture {
    shmem::Region region;
    ring::RingBuffer ring;
    int consumer;

    RingFixture()
    {
        auto r = shmem::Region::create(4 << 20);
        region = std::move(r.value());
        shmem::Offset off =
            region.carve(ring::RingBuffer::bytesRequired(256));
        ring = ring::RingBuffer::initialize(&region, off, 256);
        consumer = ring.attachConsumer();
    }
};

void
BM_RingPublishConsume(benchmark::State &state)
{
    static RingFixture fixture;
    ring::Event e = {};
    e.type = ring::EventType::Syscall;
    ring::Event out;
    for (auto _ : state) {
        fixture.ring.publish(e);
        fixture.ring.poll(fixture.consumer, &out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPublishConsume);

/**
 * The batched fast path: publish a run of events with one head store +
 * one wake, drain them with one cursor advance. Compare items/s against
 * BM_RingPublishConsume to see the synchronization amortization; the
 * target is ≥2x single-event throughput at batch size 16.
 */
void
BM_RingPublishConsumeBatch(benchmark::State &state)
{
    static RingFixture fixture;
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    std::vector<ring::Event> in(batch);
    for (auto &e : in)
        e.type = ring::EventType::Syscall;
    std::vector<ring::Event> out(batch);
    for (auto _ : state) {
        fixture.ring.publishBatch(in);
        std::size_t got = 0;
        while (got < batch) {
            got += fixture.ring.pollBatch(fixture.consumer,
                                          out.data() + got, batch - got);
        }
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_RingPublishConsumeBatch)->Arg(1)->Arg(16)->Arg(64);

/** SPSC queue batch ops (the pump's building block), same comparison. */
void
BM_SpscPushPopBatch(benchmark::State &state)
{
    static shmem::Region region = [] {
        auto r = shmem::Region::create(4 << 20);
        return std::move(r.value());
    }();
    static ring::SpscQueue queue = ring::SpscQueue::initialize(
        &region, region.carve(ring::SpscQueue::bytesRequired(256)), 256);
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    std::vector<ring::Event> in(batch);
    std::vector<ring::Event> out(batch);
    for (auto _ : state) {
        queue.tryPushBatch(in);
        std::size_t got = 0;
        while (got < batch)
            got += queue.tryPopBatch(out.data() + got, batch - got);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SpscPushPopBatch)->Arg(1)->Arg(16)->Arg(64);

void
BM_LamportTick(benchmark::State &state)
{
    static shmem::Region region = [] {
        auto r = shmem::Region::create(1 << 16);
        return std::move(r.value());
    }();
    static ring::LamportClock clock = ring::LamportClock::initialize(
        &region, region.carve(ring::LamportClock::bytesRequired()));
    for (auto _ : state)
        benchmark::DoNotOptimize(clock.tick());
}
BENCHMARK(BM_LamportTick);

void
BM_PoolAllocateRelease(benchmark::State &state)
{
    static shmem::Region region = [] {
        auto r = shmem::Region::create(16 << 20);
        return std::move(r.value());
    }();
    static shmem::PoolAllocator pool = [] {
        shmem::Offset hdr = region.carve(sizeof(shmem::PoolHeader));
        shmem::Offset begin = region.carve(64);
        return shmem::PoolAllocator::initialize(&region, hdr, begin,
                                                region.size());
    }();
    const std::size_t size = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        shmem::Offset p = pool.allocate(size);
        benchmark::DoNotOptimize(p);
        pool.release(p);
    }
}
BENCHMARK(BM_PoolAllocateRelease)->Arg(64)->Arg(512)->Arg(4096);

/**
 * The sharding payoff: T tuples allocating 256 B payloads.
 *
 * Contended = every thread fights over ONE flat allocator (one bucket
 * lock for the shared size class) — the pre-shard engine layout.
 * Sharded = thread t allocates from arena t of a ShardedPool — the
 * per-tuple layout. The acceptance target is ≥2x items/s for the
 * sharded variant at 4 threads.
 */
void
BM_PoolAllocateReleaseContended(benchmark::State &state)
{
    static shmem::Region region = [] {
        auto r = shmem::Region::create(64 << 20);
        return std::move(r.value());
    }();
    static shmem::PoolAllocator pool = [] {
        shmem::Offset hdr = region.carve(sizeof(shmem::PoolHeader));
        shmem::Offset begin = region.carve(64);
        return shmem::PoolAllocator::initialize(&region, hdr, begin,
                                                region.size());
    }();
    for (auto _ : state) {
        shmem::Offset p = pool.allocate(256);
        benchmark::DoNotOptimize(p);
        pool.release(p);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAllocateReleaseContended)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

void
BM_ShardedPoolAllocateRelease(benchmark::State &state)
{
    static shmem::Region region = [] {
        auto r = shmem::Region::create(64 << 20);
        return std::move(r.value());
    }();
    static shmem::ShardedPool pool = [] {
        shmem::Offset hdr =
            region.carve(sizeof(shmem::ShardedPoolHeader));
        std::size_t bytes = 0;
        shmem::Offset begin = region.carveRemainder(&bytes);
        return shmem::ShardedPool::initialize(&region, hdr, begin,
                                              begin + bytes, 8);
    }();
    const auto shard = static_cast<std::uint32_t>(state.thread_index());
    for (auto _ : state) {
        shmem::Offset p = pool.allocate(shard, 256);
        benchmark::DoNotOptimize(p);
        pool.release(p);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedPoolAllocateRelease)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

/**
 * Leader-side publish coalescing: a run of payload-free events shipped
 * through PublishCoalescer (one claim/commit + at most one wake per
 * run) against the same run published one event at a time. Compare
 * items/s against BM_RingPublishConsume / the Arg(1) row.
 */
void
BM_RingPublishCoalesced(benchmark::State &state)
{
    static RingFixture fixture;
    const std::size_t run = static_cast<std::size_t>(state.range(0));
    ring::PublishCoalescer coalescer;
    coalescer.reset(&fixture.ring, run);
    ring::Event e = {};
    e.type = ring::EventType::Syscall;
    std::vector<ring::Event> out(run);
    for (auto _ : state) {
        for (std::size_t i = 0; i < run; ++i)
            coalescer.add(e);
        coalescer.flush();
        std::size_t got = 0;
        while (got < run) {
            got += fixture.ring.pollBatch(fixture.consumer,
                                          out.data() + got, run - got);
        }
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(run));
}
BENCHMARK(BM_RingPublishCoalesced)->Arg(1)->Arg(16)->Arg(64);

void
BM_BpfListing1(benchmark::State &state)
{
    static bpf::Program program = [] {
        auto r = bpf::assemble("ld event[0]\n"
                               "jeq #108, a\n"
                               "jeq #2, b\n"
                               "jmp bad\n"
                               "a: ld [0]\n"
                               "jeq #102, good\n"
                               "b: ld [0]\n"
                               "jeq #104, good\n"
                               "bad: ret #0\n"
                               "good: ret #0x7fff0000\n");
        return r.program;
    }();
    ring::Event event = {};
    event.nr = 108;
    bpf::FilterContext ctx;
    ctx.data.nr = 102;
    ctx.event = &event;
    for (auto _ : state)
        benchmark::DoNotOptimize(bpf::run(program, ctx));
}
BENCHMARK(BM_BpfListing1);

void
BM_DisasmScan(benchmark::State &state)
{
    // A realistic little code sequence with one syscall site.
    const std::uint8_t code[] = {
        0x55,                               // push rbp
        0x48, 0x89, 0xe5,                   // mov rbp, rsp
        0x48, 0xc7, 0xc0, 0x27, 0, 0, 0,    // mov rax, 39
        0x0f, 0x05,                         // syscall
        0x48, 0x89, 0xc2,                   // mov rdx, rax
        0x5d,                               // pop rbp
        0xc3,                               // ret
    };
    for (auto _ : state) {
        auto result = arch::scan(code, sizeof(code));
        benchmark::DoNotOptimize(result.sites.size());
    }
}
BENCHMARK(BM_DisasmScan);

} // namespace

BENCHMARK_MAIN();
