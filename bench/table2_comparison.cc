/**
 * @file
 * Table 2: comparison with prior NVX systems (Mx, Orchestra, Tachyon).
 *
 * All three prior systems are ptrace-based centralised lockstep
 * monitors. This bench runs each of their benchmarks with two versions
 * under (a) our faithful lockstep baseline (src/lockstep) and (b) the
 * VARAN engine, and prints the overheads next to the numbers the
 * papers reported. It also measures the raw per-syscall ptrace tax on
 * this machine as context.
 */

#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/cpu_kernels.h"
#include "apps/vhttpd.h"
#include "apps/vproxy.h"
#include "apps/vstore.h"
#include "benchutil/harness.h"
#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "common/clock.h"
#include "lockstep/lockstep.h"

using namespace varan;
using namespace varan::bench;

namespace {

std::string
endpointFor(int config)
{
    static int counter = 0;
    return "varan-t2-" + std::to_string(::getpid()) + "-" +
           std::to_string(config) + "-" + std::to_string(counter++);
}

/** CPU suite wall-time under each regime (2 versions). */
double
cpuSuiteSeconds(const std::vector<apps::cpu::Kernel> &suite, int mode)
{
    // mode 0 = native, 1 = varan (1 follower), 2 = lockstep (2 versions)
    const std::uint32_t scale = scaled(2, 1);
    auto variant = [&suite, scale]() -> int {
        std::uint64_t sink = 0;
        for (const auto &kernel : suite)
            sink ^= kernel.run(scale);
        return static_cast<int>(sink & 0x3f);
    };
    std::uint64_t t0 = monotonicNs();
    if (mode == 0) {
        pid_t pid = fork();
        if (pid == 0)
            ::_exit(variant() & 0xff);
        int status;
        ::waitpid(pid, &status, 0);
    } else if (mode == 1) {
        core::EngineConfig config;
        config.shm_bytes = 64 << 20;
        config.ring.progress_timeout_ns = 600000000000ULL;
        core::Nvx nvx(config);
        nvx.run({variant, variant});
    } else {
        lockstep::LockstepEngine engine;
        engine.run({variant, variant});
    }
    return double(monotonicNs() - t0) / 1e9;
}

} // namespace

int
main()
{
    // Workload teardown races produce writes into half-closed sockets;
    // without this the whole bench dies with rc=141 (SIGPIPE) instead
    // of finishing its report.
    ignoreSigpipe();
    std::printf("Table 2: comparison with prior (ptrace, lockstep) NVX "
                "systems, two versions each\n\n");

    // Context: the real per-syscall ptrace tax on this machine.
    lockstep::PtraceCost ptrace_cost =
        lockstep::measurePtraceCost(scaled(20000, 4000));
    std::printf("ptrace context: native getpid %.0f cycles, traced %.0f "
                "cycles (%.1fx)\n\n",
                ptrace_cost.native_cycles_per_call,
                ptrace_cost.traced_cycles_per_call,
                ptrace_cost.native_cycles_per_call > 0
                    ? ptrace_cost.traced_cycles_per_call /
                          ptrace_cost.native_cycles_per_call
                    : 0);

    Table table({"system", "benchmark", "paper overhead",
                 "lockstep (measured)", "varan (measured)"});

    int config = 0;
    auto serverRow = [&](const char *system, const char *label,
                         const char *paper, const char *kind,
                         int connections) {
        auto make = [&](const std::string &endpoint) {
            ServerCase sc;
            sc.name = label;
            if (std::string(kind) == "vproxy") {
                sc.server = [endpoint]() {
                    apps::vproxy::Options o;
                    o.endpoint = endpoint;
                    o.workers = 2;
                    return apps::vproxy::serve(o);
                };
            } else if (std::string(kind) == "vstore") {
                sc.server = [endpoint]() {
                    apps::vstore::Options o;
                    o.endpoint = endpoint;
                    return apps::vstore::serve(o);
                };
            } else {
                sc.server = [endpoint]() {
                    apps::vhttpd::Options o;
                    o.endpoint = endpoint;
                    return apps::vhttpd::serve(o);
                };
            }
            int reqs = scaled(250, 40);
            if (std::string(kind) == "vstore") {
                sc.workload = [endpoint, reqs] {
                    return kvBench(endpoint, 4, reqs);
                };
                sc.shutdown = [endpoint] { kvShutdown(endpoint); };
            } else {
                sc.workload = [endpoint, connections, reqs] {
                    return httpBench(endpoint, connections, reqs);
                };
                sc.shutdown = [endpoint] { httpShutdown(endpoint); };
            }
            return sc;
        };

        double native = runNative(make(endpointFor(config++))).ops_per_sec;
        double ls =
            runLockstep(make(endpointFor(config++)), 2).ops_per_sec;
        double nvx = runNvx(make(endpointFor(config++)), 1).ops_per_sec;
        table.addRow({system, label, paper,
                      fmt(overhead(native, ls), "%.2fx"),
                      fmt(overhead(native, nvx), "%.2fx")});
        std::fflush(stdout);
    };

    // The benchmarks each prior system reported.
    serverRow("Mx", "Lighttpd (http_load)", "3.49x", "vhttpd", 8);
    serverRow("Mx", "Redis (redis-benchmark)", "16.72x", "vstore", 4);
    serverRow("Orchestra", "Apache httpd (ab)", "1.50x", "vproxy", 4);
    serverRow("Tachyon", "Lighttpd (ab)", "3.72x", "vhttpd", 4);
    serverRow("Tachyon", "thttpd (ab)", "1.17x", "vhttpd", 4);

    // SPEC-like CPU suites: wall-time overheads.
    {
        double native = cpuSuiteSeconds(apps::cpu::cpu2000Suite(), 0);
        double ls = cpuSuiteSeconds(apps::cpu::cpu2000Suite(), 2);
        double nvx = cpuSuiteSeconds(apps::cpu::cpu2000Suite(), 1);
        table.addRow({"Orchestra", "SPEC CPU2000 (suite)", "17%",
                      fmt((ls / native - 1) * 100, "%.1f%%"),
                      fmt((nvx / native - 1) * 100, "%.1f%%")});
    }
    {
        double native = cpuSuiteSeconds(apps::cpu::cpu2006Suite(), 0);
        double ls = cpuSuiteSeconds(apps::cpu::cpu2006Suite(), 2);
        double nvx = cpuSuiteSeconds(apps::cpu::cpu2006Suite(), 1);
        table.addRow({"Mx", "SPEC CPU2006 (suite)", "17.9%",
                      fmt((ls / native - 1) * 100, "%.1f%%"),
                      fmt((nvx / native - 1) * 100, "%.1f%%")});
    }
    table.print();
    table.writeJson("table2");

    std::printf("\nPaper reference for VARAN on the same benchmarks: "
                "1.01x, 1.06x, 1.024x, 1.00x, 1.00x,\n  11.3%%, 14.2%%. "
                "Expected shape: lockstep costs multiples on I/O-bound "
                "servers while\nVARAN stays near 1x; on CPU-bound suites "
                "both are small.\n");
    return 0;
}
