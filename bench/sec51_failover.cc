/**
 * @file
 * Section 5.1: transparent failover.
 *
 * Reproduces the Redis experiment: N consecutive "revisions" run in
 * parallel, the newest of which carries the crash bug of issue 344
 * (segfault while serving HMGET). Two configurations:
 *
 *   buggy-as-follower: the crashing revision is a follower; the HMGET
 *     that kills it must show no latency increase at the client.
 *   buggy-as-leader: the crash hits the leader; the same HMGET is
 *     answered by the promoted follower with a one-request latency
 *     blip (the paper measured 42.36us -> 122.62us), and throughput
 *     afterwards is unaffected.
 */

#include <cstdio>
#include <string>
#include <unistd.h>

#include "apps/vstore.h"
#include "benchutil/drivers.h"
#include "benchutil/harness.h"
#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "core/nvx.h"

using namespace varan;
using namespace varan::bench;

namespace {

std::string
endpointFor(const char *tag)
{
    static int counter = 0;
    return std::string("varan-s51-") + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

struct Outcome {
    double before_us = 0;  ///< median command latency before the crash
    double crash_us = 0;   ///< latency of the crash-triggering HMGET
    double after_us = 0;   ///< median latency after
    double after_tput = 0; ///< throughput after the crash
    bool served = false;   ///< the HMGET got an answer
};

Outcome
runScenario(bool buggy_is_leader, int revisions)
{
    std::string endpoint =
        endpointFor(buggy_is_leader ? "leader" : "follower");
    core::EngineConfig config;
    config.shm_bytes = 64 << 20;
    config.ring.progress_timeout_ns = 120000000000ULL;
    config.ring.tick_ns = 1000000; // 1 ms: promotion latency matters here

    // Revisions 9a22de8..7fb16ba: only the newest crashes on HMGET.
    std::vector<core::VariantFn> variants;
    for (int r = 0; r < revisions; ++r) {
        bool buggy = buggy_is_leader ? (r == 0) : (r == revisions - 1);
        variants.push_back([endpoint, buggy]() -> int {
            apps::vstore::Options o;
            o.endpoint = endpoint;
            o.revision.crash_on_hmget = buggy;
            return apps::vstore::serve(o);
        });
    }

    core::Nvx nvx(config);
    if (!nvx.start(std::move(variants)).isOk())
        return {};

    Outcome out;
    // Seed and warm.
    kvCommandLatency(endpoint, "HSET h f v");
    std::vector<double> before;
    for (int i = 0; i < scaled(50, 10); ++i) {
        auto p = kvCommandLatency(endpoint, "GET warm");
        if (p.ok)
            before.push_back(p.us);
    }
    out.before_us = median(before);

    // The crash-triggering command.
    auto crash = kvCommandLatency(endpoint, "HMGET h f");
    out.served = crash.ok && !crash.reply.empty() &&
                 crash.reply[0] == '*';
    out.crash_us = crash.us;

    // Post-crash latency and throughput.
    std::vector<double> after;
    for (int i = 0; i < scaled(50, 10); ++i) {
        auto p = kvCommandLatency(endpoint, "GET warm");
        if (p.ok)
            after.push_back(p.us);
    }
    out.after_us = median(after);
    out.after_tput = kvBench(endpoint, 2, scaled(200, 40)).ops_per_sec;

    kvShutdown(endpoint);
    nvx.waitFor(60000000000ULL);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    int revisions = argc > 1 ? std::atoi(argv[1]) : 4;
    std::printf("Section 5.1: transparent failover across %d vstore "
                "revisions\n(the newest revision, 7fb16ba, crashes while "
                "serving HMGET)\n\n",
                revisions);

    Outcome follower_case = runScenario(false, revisions);
    Outcome leader_case = runScenario(true, revisions);

    Table table({"configuration", "HMGET served", "latency before (us)",
                 "crash request (us)", "latency after (us)",
                 "throughput after (ops/s)"});
    table.addRow({"buggy revision is follower",
                  follower_case.served ? "yes" : "NO",
                  fmt(follower_case.before_us, "%.1f"),
                  fmt(follower_case.crash_us, "%.1f"),
                  fmt(follower_case.after_us, "%.1f"),
                  fmt(follower_case.after_tput, "%.0f")});
    table.addRow({"buggy revision is leader",
                  leader_case.served ? "yes" : "NO",
                  fmt(leader_case.before_us, "%.1f"),
                  fmt(leader_case.crash_us, "%.1f"),
                  fmt(leader_case.after_us, "%.1f"),
                  fmt(leader_case.after_tput, "%.0f")});
    table.print();
    table.writeJson("sec51_failover");

    std::printf("\nPaper reference: follower crash -> no latency "
                "increase; leader crash -> the crashing\nHMGET rose from "
                "42.36us to 122.62us (one request), with no subsequent "
                "throughput loss.\nExpected shape: both HMGETs answered; "
                "only the leader-crash one shows a blip\n(promotion + "
                "restart of the pending call).\n");
    return 0;
}
