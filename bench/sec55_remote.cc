/**
 * @file
 * Section 5.5 (extension): multi-node event shipping throughput.
 *
 * An artificial leader publishes a payload-free syscall stream into a
 * tuple ring; a wire::Shipper drains it through a socketpair to a
 * wire::Receiver re-materializing the stream into a remote layout,
 * where a drain thread plays the follower. The knob is the ship batch
 * (events per wire frame): batch 1 degenerates to per-event shipping
 * (one frame + one gather-write + one publish per event), larger
 * batches amortize framing, wakeups and syscalls — the DMON-style
 * relaxed-batching claim, measured end to end.
 *
 * The fan-out section measures the per-peer credit isolation of the
 * v3 session table: one shipper feeding two receivers, once with both
 * live and once with one peer stalled (it handshakes, then never
 * serves a frame). The live peer's throughput must not collapse when
 * its sibling stalls — the drain is gated by the fastest peer and the
 * straggler is evicted once it falls past retain_limit.
 *
 * Reported per batch size: events/s, frames and bytes on the wire,
 * and credits received; per fan-out run: the live peer's events/s and
 * the eviction count. The JSON baselines land in BENCH_remote.json
 * via VARAN_BENCH_JSON.
 */

#include <cstdio>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "benchutil/harness.h"
#include "benchutil/table.h"
#include "common/clock.h"
#include "core/layout.h"
#include "wire/receiver.h"
#include "wire/shipper.h"

using namespace varan;
using namespace varan::bench;

namespace {

constexpr std::uint32_t kRingCapacity = 1024;

struct Node {
    shmem::Region region;
    core::EngineLayout layout;

    explicit Node(std::uint32_t leader_id)
    {
        auto r = shmem::Region::create(32 << 20);
        VARAN_CHECK(r.ok());
        region = std::move(r.value());
        layout = core::EngineLayout::create(&region, 1, leader_id,
                                            kRingCapacity);
    }
};

struct RunResult {
    double events_per_sec = 0;
    wire::Shipper::Stats ship;
    wire::Receiver::Stats recv;
};

RunResult
runOnce(std::size_t ship_batch, std::uint64_t total_events)
{
    Node leader(0);
    Node remote(core::kNoLeader);

    int sv[2];
    VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);

    wire::Shipper::Options ship_opts;
    ship_opts.ship_batch = ship_batch;
    ship_opts.credit_window = 4096;
    wire::Shipper shipper(&leader.region, &leader.layout, ship_opts);
    VARAN_CHECK(shipper.attachTaps().isOk());

    wire::Receiver::Options recv_opts;
    recv_opts.credit_every = 256;
    wire::Receiver receiver(&remote.region, &remote.layout, recv_opts);

    std::thread adopting([&] {
        VARAN_CHECK(receiver.adopt(sv[1]).isOk());
    });
    VARAN_CHECK(shipper.handshake(sv[0]).isOk());
    adopting.join();
    receiver.start();

    // Remote follower stand-in: drain the re-materialized ring.
    std::atomic<std::uint64_t> drained{0};
    std::thread remote_follower([&] {
        ring::RingBuffer ring = remote.layout.tupleRing(&remote.region, 0);
        ring::Event events[64];
        ring::WaitSpec wait;
        wait.timeout_ns = 50000000; // 50 ms tick
        std::uint64_t seen = 0;
        while (seen < total_events) {
            std::size_t n = ring.consumeBatch(0, events, 64, wait);
            seen += n;
            drained.store(seen, std::memory_order_release);
        }
    });

    shipper.start();
    ring::RingBuffer ring = leader.layout.tupleRing(&leader.region, 0);
    const std::uint64_t start_ns = monotonicNs();

    ring::Event batch[256];
    std::uint64_t published = 0;
    while (published < total_events) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(256, total_events - published));
        for (std::size_t i = 0; i < n; ++i) {
            batch[i] = {};
            batch[i].type = ring::EventType::Syscall;
            batch[i].timestamp = published + i + 1;
            batch[i].nr = 39; // getpid
            batch[i].result = 4242;
        }
        published += ring.publishBatch({batch, n});
    }

    remote_follower.join();
    const std::uint64_t elapsed_ns = monotonicNs() - start_ns;
    shipper.finish();
    receiver.finish();
    ::close(sv[0]);
    ::close(sv[1]);

    RunResult result;
    result.events_per_sec =
        elapsed_ns > 0 ? 1e9 * static_cast<double>(total_events) /
                             static_cast<double>(elapsed_ns)
                       : 0;
    result.ship = shipper.stats();
    result.recv = receiver.stats();
    return result;
}

struct FanOutResult {
    double events_per_sec = 0; ///< the live peer's end-to-end rate
    wire::Shipper::Stats ship;
};

/** One shipper fanning out to two receivers; when @p stall_peer_b the
 *  second receiver handshakes and then never serves a frame. */
FanOutResult
runFanOut(std::size_t ship_batch, std::uint64_t total_events,
          bool stall_peer_b)
{
    Node leader(0);
    Node remote_a(core::kNoLeader);
    Node remote_b(core::kNoLeader);

    int sva[2], svb[2];
    VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sva) == 0);
    VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, svb) == 0);

    wire::Shipper::Options ship_opts;
    ship_opts.ship_batch = ship_batch;
    ship_opts.credit_window = 4096;
    wire::Shipper shipper(&leader.region, &leader.layout, ship_opts);
    VARAN_CHECK(shipper.attachTaps().isOk());

    wire::Receiver::Options recv_opts;
    recv_opts.credit_every = 256;
    wire::Receiver receiver_a(&remote_a.region, &remote_a.layout,
                              recv_opts);
    wire::Receiver receiver_b(&remote_b.region, &remote_b.layout,
                              recv_opts);

    std::thread adopt_a([&] {
        VARAN_CHECK(receiver_a.adopt(sva[1]).isOk());
    });
    VARAN_CHECK(shipper.addPeer(sva[0]).isOk());
    adopt_a.join();
    std::thread adopt_b([&] {
        VARAN_CHECK(receiver_b.adopt(svb[1]).isOk());
    });
    VARAN_CHECK(shipper.addPeer(svb[0]).isOk());
    adopt_b.join();

    receiver_a.start();
    if (!stall_peer_b)
        receiver_b.start(); // a stalled peer handshakes, then nothing

    // Follower stand-ins drain the re-materialized rings (node B's
    // only when it is live — a stalled node consumes nothing).
    std::atomic<bool> done{false};
    auto drainNode = [&done](Node *node, std::uint64_t until) {
        ring::RingBuffer ring = node->layout.tupleRing(&node->region, 0);
        ring::Event events[64];
        ring::WaitSpec wait;
        wait.timeout_ns = 50000000; // 50 ms tick
        std::uint64_t seen = 0;
        while (seen < until && !done.load(std::memory_order_acquire))
            seen += ring.consumeBatch(0, events, 64, wait);
    };
    std::thread remote_follower(
        [&] { drainNode(&remote_a, total_events); });
    std::thread remote_follower_b([&] {
        if (!stall_peer_b)
            drainNode(&remote_b, total_events);
    });

    shipper.start();
    ring::RingBuffer ring = leader.layout.tupleRing(&leader.region, 0);
    const std::uint64_t start_ns = monotonicNs();

    ring::Event batch[256];
    std::uint64_t published = 0;
    while (published < total_events) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(256, total_events - published));
        for (std::size_t i = 0; i < n; ++i) {
            batch[i] = {};
            batch[i].type = ring::EventType::Syscall;
            batch[i].timestamp = published + i + 1;
            batch[i].nr = 39; // getpid
            batch[i].result = 4242;
        }
        published += ring.publishBatch({batch, n});
    }

    remote_follower.join();
    const std::uint64_t elapsed_ns = monotonicNs() - start_ns;
    done.store(true, std::memory_order_release);
    remote_follower_b.join();
    shipper.finish();
    receiver_a.finish();
    receiver_b.finish();
    ::close(sva[0]);
    ::close(sva[1]);
    ::close(svb[0]);
    ::close(svb[1]);

    FanOutResult result;
    result.events_per_sec =
        elapsed_ns > 0 ? 1e9 * static_cast<double>(total_events) /
                             static_cast<double>(elapsed_ns)
                       : 0;
    result.ship = shipper.stats();
    return result;
}

} // namespace

int
main()
{
    ignoreSigpipe();
    const std::uint64_t total = scaled(400000, 60000);
    std::printf("Section 5.5 (extension): remote event shipping, %llu "
                "events end to end\n\n",
                static_cast<unsigned long long>(total));

    const std::size_t batches[] = {1, 16, 64};
    RunResult results[3];
    for (int i = 0; i < 3; ++i)
        results[i] = runOnce(batches[i], total);

    Table table({"ship batch", "events/s", "speedup", "frames", "wire MB",
                 "credits"});
    for (int i = 0; i < 3; ++i) {
        double speedup = results[0].events_per_sec > 0
                             ? results[i].events_per_sec /
                                   results[0].events_per_sec
                             : 0;
        table.addRow({std::to_string(batches[i]),
                      fmt(results[i].events_per_sec, "%.0f"),
                      fmt(speedup, "%.2fx"),
                      std::to_string(results[i].ship.frames),
                      fmt(static_cast<double>(results[i].ship.bytes) / 1e6,
                          "%.1f"),
                      std::to_string(results[i].recv.credits_sent)});
    }
    table.print();
    table.writeJson("sec55_remote");

    std::printf("\nExpected shape: per-event shipping pays one frame + "
                "one gather-write + one\npublish per event; batching "
                "amortizes all three (DMON-style relaxed\n"
                "synchronization across the wire).\n");

    // Fan-out: 1 shipper -> 2 receivers, per-peer credit isolation.
    std::printf("\nFan-out (1 shipper -> 2 receivers), %llu events to "
                "the live peer\n\n",
                static_cast<unsigned long long>(total));
    FanOutResult both = runFanOut(16, total, /*stall_peer_b=*/false);
    FanOutResult stalled = runFanOut(16, total, /*stall_peer_b=*/true);

    Table fanout({"peers", "live-peer events/s", "vs both-live", "frames",
                  "evicted"});
    fanout.addRow({"2 live", fmt(both.events_per_sec, "%.0f"), "1.00x",
                   std::to_string(both.ship.frames),
                   std::to_string(both.ship.peers_evicted)});
    double ratio = both.events_per_sec > 0
                       ? stalled.events_per_sec / both.events_per_sec
                       : 0;
    fanout.addRow({"1 live + 1 stalled",
                   fmt(stalled.events_per_sec, "%.0f"),
                   fmt(ratio, "%.2fx"),
                   std::to_string(stalled.ship.frames),
                   std::to_string(stalled.ship.peers_evicted)});
    fanout.print();
    fanout.writeJson("sec55_fanout");

    std::printf("\nExpected shape: the stalled peer is served from the "
                "retransmit buffer until\nit falls past retain_limit and "
                "is evicted; the live peer's throughput stays\nwithin "
                "noise of the both-live run (per-peer credit "
                "isolation).\n");
    return 0;
}
