/**
 * @file
 * Section 5.4: record-replay.
 *
 * Three configurations of vstore under a redis-benchmark-like load:
 *
 *   native                no monitor at all (baseline)
 *   varan-record          engine + the artificial recorder follower
 *                         persisting the event stream to disk
 *   scribe-like (in-band) synchronous logging inside every system
 *                         call, the cost structure of kernel
 *                         record-replay on the critical path
 *
 * The paper measured 14% overhead for VARAN vs 53% for Scribe. After
 * recording, the bench replays the log against a fresh follower and
 * verifies it runs to completion (replay correctness).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/vstore.h"
#include "benchutil/drivers.h"
#include "benchutil/harness.h"
#include "benchutil/table.h"
#include "common/clock.h"
#include "core/nvx.h"
#include "rr/recorder.h"
#include "rr/replayer.h"

using namespace varan;
using namespace varan::bench;

namespace {

std::string
endpointFor(const char *tag)
{
    static int counter = 0;
    return std::string("varan-s54-") + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

/**
 * Pure-sink microbench: a bare layout (no engine, no variants), one
 * publisher thread pushing no-payload syscall events through the ring,
 * and a LogSink draining them to disk. Measured end-to-end through
 * finish(), i.e. every event durable, so the single-event/batched gap
 * reflects real write amplification rather than buffering tricks.
 */
double
sinkEventsPerSec(const rr::LogSink::Options &options, std::uint64_t count,
                 const std::string &path)
{
    auto r = shmem::Region::create(16 << 20);
    if (!r.ok())
        return 0;
    shmem::Region region = std::move(r.value());
    // A deep ring (4096 events) keeps the publisher from gating across
    // the drain thread's idle-poll gaps; the sink, not the ring, is
    // what this harness measures.
    core::EngineLayout layout =
        core::EngineLayout::create(&region, 1, 0, 4096);
    // The layout pre-attaches a consumer slot for variant 0; with no
    // follower behind it, it would gate the publisher once the ring
    // wraps. The sink's tap is the only real consumer here.
    layout.tupleRing(&region, 0).detachConsumer(0);

    rr::LogSink sink(&region, &layout, path, options);
    if (!sink.attachTaps().isOk())
        return 0;
    sink.startDraining();

    ring::RingBuffer ring = layout.tupleRing(&region, 0);
    ring::Event events[64] = {};
    for (auto &event : events) {
        event.type = ring::EventType::Syscall;
        event.nr = SYS_getpid;
        event.result = 4242;
    }

    // Publish in claim batches so the harness publisher (identical in
    // both rows) stays well ahead of either sink and the measurement
    // isolates the write path.
    const std::uint64_t t0 = monotonicNs();
    for (std::uint64_t i = 0; i < count;) {
        const std::size_t n =
            std::min<std::uint64_t>(64, count - i);
        std::uint64_t seq = 0;
        if (!ring.claim(n, &seq, {}))
            break;
        for (std::size_t j = 0; j < n; ++j)
            events[j].timestamp = ++i;
        ring.commit({events, n});
    }
    auto stats = sink.finish();
    const std::uint64_t elapsed = monotonicNs() - t0;
    ::unlink(path.c_str());
    if (!stats.ok() || stats.value().events < count || elapsed == 0)
        return 0;
    return static_cast<double>(count) * 1e9 /
           static_cast<double>(elapsed);
}

} // namespace

int
main()
{
    const int clients = 4;
    const int requests = scaled(400, 60);
    const std::string log_path =
        "/tmp/varan-s54-" + std::to_string(::getpid()) + ".log";

    std::printf("Section 5.4: record-replay overhead (vstore, %d clients "
                "x %d requests)\n\n",
                clients, requests);

    // --- native baseline ---
    double native_ops;
    {
        std::string endpoint = endpointFor("native");
        pid_t pid = ::fork();
        if (pid == 0) {
            apps::vstore::Options o;
            o.endpoint = endpoint;
            ::_exit(apps::vstore::serve(o));
        }
        native_ops = kvBench(endpoint, clients, requests).ops_per_sec;
        kvShutdown(endpoint);
        int status;
        ::waitpid(pid, &status, 0);
    }

    // --- VARAN record mode ---
    double varan_ops;
    std::uint64_t recorded_events = 0;
    {
        std::string endpoint = endpointFor("record");
        core::EngineConfig config;
        config.shm_bytes = 64 << 20;
        config.ring.progress_timeout_ns = 120000000000ULL;
        core::Nvx nvx(config);
        rr::Recorder recorder(nvx.region(), &nvx.layout(), log_path);
        auto server = [endpoint]() -> int {
            apps::vstore::Options o;
            o.endpoint = endpoint;
            return apps::vstore::serve(o);
        };
        if (!nvx.start({server},
                       [&](core::Nvx &) {
                           recorder.attachTaps();
                           recorder.startDraining();
                       })
                 .isOk()) {
            return 1;
        }
        varan_ops = kvBench(endpoint, clients, requests).ops_per_sec;
        kvShutdown(endpoint);
        nvx.waitFor(60000000000ULL);
        auto stats = recorder.finish();
        if (stats.ok())
            recorded_events = stats.value().events;
    }

    // --- Scribe-like in-band recording ---
    double inband_ops;
    {
        std::string endpoint = endpointFor("inband");
        pid_t pid = ::fork();
        if (pid == 0) {
            rr::InBandRecorder recorder("/tmp/varan-s54-inband-" +
                                        std::to_string(::getpid()) +
                                        ".log");
            sys::setDispatcher(&recorder);
            apps::vstore::Options o;
            o.endpoint = endpoint;
            int status = apps::vstore::serve(o);
            sys::setDispatcher(nullptr);
            ::_exit(status);
        }
        inband_ops = kvBench(endpoint, clients, requests).ops_per_sec;
        kvShutdown(endpoint);
        int status;
        ::waitpid(pid, &status, 0);
    }

    // --- replay verification ---
    bool replay_ok = false;
    {
        std::string endpoint = endpointFor("replay");
        core::EngineConfig config;
        config.shm_bytes = 64 << 20;
        config.external_leader = true;
        config.ring.progress_timeout_ns = 120000000000ULL;
        core::Nvx nvx(config);
        auto server = [endpoint]() -> int {
            apps::vstore::Options o;
            o.endpoint = endpoint;
            return apps::vstore::serve(o);
        };
        if (nvx.start({server}).isOk()) {
            rr::Replayer replayer(nvx.region(), &nvx.layout(), log_path);
            auto stats = replayer.replayAll();
            auto results = nvx.waitFor(120000000000ULL);
            replay_ok = stats.ok() && !results.empty() &&
                        !results[0].crashed;
        }
    }

    Table table({"configuration", "ops/s", "overhead vs native"});
    table.addRow({"native", fmt(native_ops, "%.0f"), "1.00x"});
    table.addRow({"varan record (decoupled)", fmt(varan_ops, "%.0f"),
                  fmt(overhead(native_ops, varan_ops), "%.2fx")});
    table.addRow({"scribe-like (in-band)", fmt(inband_ops, "%.0f"),
                  fmt(overhead(native_ops, inband_ops), "%.2fx")});
    table.print();
    table.writeJson("sec54_record_replay");

    std::printf("\nrecorded events: %llu; replay of the log against a "
                "fresh follower: %s\n",
                static_cast<unsigned long long>(recorded_events),
                replay_ok ? "completed" : "FAILED");

    // --- recorder write-path ablation ---
    // How much the batched drain + decoupled writer buys over the naive
    // one-write()-per-record sink, with the application factored out.
    const std::uint64_t sink_events = scaled(200000, 20000);
    const std::string sink_path =
        "/tmp/varan-s54-sink-" + std::to_string(::getpid()) + ".log";

    rr::LogSink::Options single;
    single.drain_batch = 1;
    single.synchronous = true;
    const double single_eps =
        sinkEventsPerSec(single, sink_events, sink_path);

    rr::LogSink::Options batched; // production defaults: batch of 64
    batched.overflow = rr::LogSink::Overflow::Gate;
    const double batched_eps =
        sinkEventsPerSec(batched, sink_events, sink_path);

    const double speedup =
        single_eps > 0 ? batched_eps / single_eps : 0;
    std::printf("\nRecorder sink throughput (%llu events, durable "
                "through finish()):\n\n",
                static_cast<unsigned long long>(sink_events));
    Table sink_table({"recorder", "events/s", "speedup"});
    sink_table.addRow(
        {"single-event (write per record)", fmt(single_eps, "%.0f"),
         "1.00x"});
    sink_table.addRow({"batched (drain 64 + writer thread)",
                       fmt(batched_eps, "%.0f"),
                       fmt(speedup, "%.2fx")});
    sink_table.print();
    sink_table.writeJson("sec54_recorder_throughput");
    std::printf("\nPaper reference: VARAN 14%% vs Scribe 53%%. Expected "
                "shape: the decoupled recorder\ncosts less than "
                "synchronous in-band logging.\n");
    ::unlink(log_path.c_str());
    return replay_ok ? 0 : 1;
}
