/** @file Figure 8: SPEC CPU2006-like kernels, overhead vs followers. */

#include "cpu_overhead.h"

int
main(int argc, char **argv)
{
    return varan::bench::runCpuFigure(
        "Figure 8", "SPEC CPU2006-like suite",
        varan::apps::cpu::cpu2006Suite(), argc, argv);
}
