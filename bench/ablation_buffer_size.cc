/**
 * @file
 * Ablation B (section 6): ring buffer size and wait policy.
 *
 * The buffer bounds how far the leader may run ahead of followers:
 * size 1 disables buffering entirely (the security configuration that
 * closes the delayed-detection window), larger sizes amortise stalls.
 * The second table compares busy-waiting with the futex waitlock.
 */

#include <cstdio>
#include <string>
#include <unistd.h>

#include "apps/vstore.h"
#include "benchutil/harness.h"
#include "benchutil/table.h"

using namespace varan;
using namespace varan::bench;

namespace {

std::string
endpointFor(int config)
{
    static int counter = 0;
    return "varan-abl-" + std::to_string(::getpid()) + "-" +
           std::to_string(config) + "-" + std::to_string(counter++);
}

double
run(std::uint32_t capacity, bool busy_only, int config)
{
    std::string endpoint = endpointFor(config);
    ServerCase c;
    c.server = [endpoint]() {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        return apps::vstore::serve(o);
    };
    int requests = scaled(300, 50);
    c.workload = [endpoint, requests] {
        return kvBench(endpoint, 2, requests);
    };
    c.shutdown = [endpoint] { kvShutdown(endpoint); };

    core::EngineConfig engine;
    engine.ring.capacity = capacity;
    engine.shm_bytes = 64 << 20;
    engine.ring.progress_timeout_ns = 120000000000ULL;
    engine.ring.wait.busy_only = busy_only;
    return runNvx(c, 1, engine).ops_per_sec;
}

} // namespace

int
main()
{
    std::printf("Ablation B: ring capacity and wait policy (vstore, one "
                "follower)\n\n");

    int config = 0;
    Table sizes({"ring capacity", "ops/s", "note"});
    for (std::uint32_t capacity : {1u, 4u, 16u, 64u, 256u, 1024u}) {
        double ops = run(capacity, false, config++);
        sizes.addRow({std::to_string(capacity), fmt(ops, "%.0f"),
                      capacity == 1
                          ? "buffering disabled (security mode, sec. 6)"
                          : capacity == 256 ? "paper default" : ""});
        std::fflush(stdout);
    }
    sizes.print();
    sizes.writeJson("ablation_buffer_sizes");

    std::printf("\n");
    Table waits({"wait policy", "ops/s"});
    waits.addRow({"spin-then-futex (waitlock)",
                  fmt(run(256, false, config++), "%.0f")});
    waits.addRow({"busy-wait only", fmt(run(256, true, config++),
                                        "%.0f")});
    waits.print();
    waits.writeJson("ablation_wait_policies");

    std::printf("\nExpected shape: capacity 1 pays a lockstep-like "
                "synchronisation cost; throughput\nrecovers quickly with "
                "modest buffering and saturates near the paper's default "
                "of 256.\nOn an idle machine busy-waiting and the futex "
                "waitlock are comparable; the waitlock\nwins once cores "
                "are oversubscribed (section 3.3.1).\n");
    return 0;
}
