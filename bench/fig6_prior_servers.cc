/**
 * @file
 * Figure 6: overhead on the servers prior systems were evaluated with —
 * Apache httpd (prefork, ab), thttpd (ab) and Lighttpd (ab and
 * http_load) — for 0..6 followers. The paper's point: on these lighter
 * workloads VARAN stays within a few percent of native at every fan-out.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "apps/vhttpd.h"
#include "apps/vproxy.h"
#include "benchutil/harness.h"
#include "benchutil/stats.h"
#include "benchutil/table.h"

using namespace varan;
using namespace varan::bench;

namespace {

std::string
endpointFor(int config)
{
    static int counter = 0;
    return "varan-fig6-" + std::to_string(::getpid()) + "-" +
           std::to_string(config) + "-" + std::to_string(counter++);
}

} // namespace

int
main(int argc, char **argv)
{
    int max_followers = argc > 1 ? std::atoi(argv[1]) : 6;
    if (quickMode() && argc <= 1)
        max_followers = 2;

    struct Case {
        const char *label;
        const char *kind;    // vproxy | vhttpd
        std::size_t page;    // served body bytes
        int connections;     // driver concurrency (ab vs http_load)
    };
    const Case cases[] = {
        {"Apache httpd (ab)", "vproxy", 4096, 4},
        {"thttpd (ab)", "vhttpd", 1024, 4},
        {"Lighttpd (ab)", "vhttpd", 4096, 4},
        {"Lighttpd (http_load)", "vhttpd", 4096, 8},
    };

    std::printf("Figure 6: prior-work servers under VARAN, followers "
                "0..%d\n\n",
                max_followers);

    std::vector<std::string> headers = {"server (driver)", "native ops/s"};
    for (int f = 0; f <= max_followers; ++f)
        headers.push_back(std::to_string(f));
    Table table(headers);

    int config = 0;
    for (const Case &c : cases) {
        auto make = [&](const std::string &endpoint) {
            ServerCase sc;
            sc.name = c.label;
            if (std::string(c.kind) == "vproxy") {
                std::size_t page = c.page;
                sc.server = [endpoint, page]() {
                    apps::vproxy::Options o;
                    o.endpoint = endpoint;
                    o.workers = 2;
                    o.page_bytes = page;
                    return apps::vproxy::serve(o);
                };
            } else {
                std::size_t page = c.page;
                sc.server = [endpoint, page]() {
                    apps::vhttpd::Options o;
                    o.endpoint = endpoint;
                    o.page_bytes = page;
                    return apps::vhttpd::serve(o);
                };
            }
            int reqs = scaled(250, 40);
            int conns = c.connections;
            sc.workload = [endpoint, conns, reqs] {
                return httpBench(endpoint, conns, reqs);
            };
            sc.shutdown = [endpoint] { httpShutdown(endpoint); };
            return sc;
        };

        ServerCase native_case = make(endpointFor(config++));
        double native = medianOfRuns(
            [&] { return runNative(native_case).ops_per_sec; }, 3);
        std::vector<std::string> row = {c.label, fmt(native, "%.0f")};
        for (int f = 0; f <= max_followers; ++f) {
            double tput = medianOfRuns(
                [&] {
                    ServerCase sc = make(endpointFor(config++));
                    core::EngineConfig engine;
                    engine.shm_bytes = 64 << 20;
                    engine.ring.progress_timeout_ns = 120000000000ULL;
                    return runNvx(sc, f, engine).ops_per_sec;
                },
                2);
            row.push_back(fmt(overhead(native, tput), "%.2f"));
        }
        table.addRow(row);
        std::fflush(stdout);
    }
    table.print();
    table.writeJson("fig6");

    std::printf("\nPaper reference (followers 0..6): Apache httpd "
                "1.00-1.04, thttpd 1.00-1.02,\n  Lighttpd (ab) "
                "1.00-1.07, Lighttpd (http_load) 1.00-1.08\n");
    return 0;
}
