/**
 * @file
 * Figure 5 (and Table 1 context): performance overhead for the five
 * C10k servers — Beanstalkd, Lighttpd, Memcached, Nginx, Redis
 * archetypes — with 0..6 followers, normalised to native execution.
 * The client runs on the same machine (the paper's same-rack,
 * worst-case setup).
 *
 * Expected shape: "0 followers" (interception only) near 1.0x; the
 * overhead grows mildly with followers; the queue server (highest
 * syscall rate per byte) is the worst performer, the static HTTP
 * server the best.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "apps/vcache.h"
#include "apps/vhttpd.h"
#include "apps/vproxy.h"
#include "apps/vqueue.h"
#include "apps/vstore.h"
#include "benchutil/harness.h"
#include "benchutil/stats.h"
#include "benchutil/table.h"

using namespace varan;
using namespace varan::bench;

namespace {

std::string
endpointFor(const char *tag, int config)
{
    static int counter = 0;
    return std::string("varan-fig5-") + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(config) +
           "-" + std::to_string(counter++);
}

struct Row {
    const char *paper_name;
    const char *app;
    std::vector<double> overheads;
};

ServerCase
makeCase(const std::string &app, const std::string &endpoint)
{
    ServerCase c;
    c.name = app;
    if (app == "vqueue") {
        c.server = [endpoint]() {
            apps::vqueue::Options o;
            o.endpoint = endpoint;
            return apps::vqueue::serve(o);
        };
        int pushes = scaled(400, 60);
        c.workload = [endpoint, pushes] {
            return queueBench(endpoint, 4, pushes, 256);
        };
        c.shutdown = [endpoint] { queueShutdown(endpoint); };
    } else if (app == "vhttpd") {
        c.server = [endpoint]() {
            apps::vhttpd::Options o;
            o.endpoint = endpoint;
            return apps::vhttpd::serve(o);
        };
        int reqs = scaled(300, 50);
        c.workload = [endpoint, reqs] {
            return httpBench(endpoint, 4, reqs);
        };
        c.shutdown = [endpoint] { httpShutdown(endpoint); };
    } else if (app == "vcache") {
        c.server = [endpoint]() {
            apps::vcache::Options o;
            o.endpoint = endpoint;
            o.workers = 2;
            return apps::vcache::serve(o);
        };
        int ops = scaled(300, 50);
        c.workload = [endpoint, ops] {
            return cacheBench(endpoint, 4, 100, ops);
        };
        c.shutdown = [endpoint] { cacheShutdown(endpoint); };
    } else if (app == "vproxy") {
        c.server = [endpoint]() {
            apps::vproxy::Options o;
            o.endpoint = endpoint;
            o.workers = 2;
            return apps::vproxy::serve(o);
        };
        int reqs = scaled(250, 40);
        c.workload = [endpoint, reqs] {
            return httpBench(endpoint, 4, reqs);
        };
        c.shutdown = [endpoint] { httpShutdown(endpoint); };
    } else { // vstore
        c.server = [endpoint]() {
            apps::vstore::Options o;
            o.endpoint = endpoint;
            return apps::vstore::serve(o);
        };
        int reqs = scaled(400, 60);
        c.workload = [endpoint, reqs] {
            return kvBench(endpoint, 4, reqs);
        };
        c.shutdown = [endpoint] { kvShutdown(endpoint); };
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    int max_followers = argc > 1 ? std::atoi(argv[1]) : 6;
    if (quickMode() && argc <= 1)
        max_followers = 2;

    struct App {
        const char *paper;
        const char *ours;
    };
    const App apps[] = {
        {"Beanstalkd", "vqueue"},  {"Lighttpd (wrk)", "vhttpd"},
        {"Memcached", "vcache"},   {"Nginx", "vproxy"},
        {"Redis", "vstore"},
    };

    std::printf("Figure 5: C10k server overhead vs number of followers\n"
                "(normalised runtime = native_tput / monitored_tput; "
                "followers 0..%d)\n\n",
                max_followers);

    std::vector<std::string> headers = {"server (archetype)", "native "
                                                              "ops/s"};
    for (int f = 0; f <= max_followers; ++f)
        headers.push_back(std::to_string(f));
    Table table(headers);

    int config = 0;
    for (const App &app : apps) {
        ServerCase native_case =
            makeCase(app.ours, endpointFor(app.ours, config++));
        double native = medianOfRuns(
            [&] { return runNative(native_case).ops_per_sec; }, 3);

        std::vector<std::string> row = {
            std::string(app.paper) + " (" + app.ours + ")",
            fmt(native, "%.0f")};
        for (int f = 0; f <= max_followers; ++f) {
            // One discarded warm-up run, then the measured run (the
            // paper's protocol, scaled down).
            double tput = medianOfRuns(
                [&] {
                    ServerCase c = makeCase(
                        app.ours, endpointFor(app.ours, config++));
                    core::EngineConfig engine;
                    engine.shm_bytes = 64 << 20;
                    engine.ring.progress_timeout_ns = 120000000000ULL;
                    return runNvx(c, f, engine).ops_per_sec;
                },
                2);
            row.push_back(fmt(overhead(native, tput), "%.2f"));
        }
        table.addRow(row);
        std::fflush(stdout);
    }
    table.print();
    table.writeJson("fig5");

    std::printf(
        "\nPaper reference (followers 0/1/6): Beanstalkd 1.10/1.52/1.77, "
        "Lighttpd 1.00/1.12/1.15,\n  Memcached 1.00/1.14/1.32, Nginx "
        "1.04/1.28/1.64, Redis 1.00/1.06/1.25\n");
    std::printf("Expected shape: overhead grows mildly with followers; "
                "the queue server is the worst\nperformer, the static "
                "HTTP server the best. Absolute factors differ (the "
                "paper used an\n8-thread Xeon; this machine has %ld "
                "cores, so oversubscription shows earlier).\n",
                sysconf(_SC_NPROCESSORS_ONLN));
    return 0;
}
