/**
 * @file
 * Section 5.8 (extension): quorum-gated failover blackout.
 *
 * The quorum control plane buys split-brain freedom with one extra
 * step on the failover path: the promoting receiver must win a lease
 * from a majority of the membership before it may bump the stream.
 * This bench prices that step. Two configurations fail over from the
 * same leader death:
 *
 *   watchdog: a single receiver node, no quorum membership — the
 *     pre-v6 promotion path (quiet-link watchdog only).
 *   quorum-gated: three receiver nodes in a {0,1,2} membership; node 0
 *     arms the watchdog and must collect a majority vote (its own +
 *     one peer) before promoting.
 *
 * Leader death is a scripted FaultLink cut, so the blackout clock
 * starts at a frame boundary, not at a SIGKILL race. Two numbers come
 * out: the externally timed cut -> first post-promotion publish span
 * (which includes the promote_after detection window), and the
 * engine's own `blackout` trace histogram (promotion decision ->
 * first promoted publish), which isolates the election round trip.
 * The acceptance bar is that the histogram populates — the same
 * counter varanctl and the Prometheus exposition surface — and that
 * the quorum-gated row stays within the same order of magnitude as
 * the watchdog row. JSON baselines land in BENCH_quorum.json via
 * VARAN_BENCH_JSON.
 */

#include <cstdio>
#include <memory>
#include <signal.h>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "benchutil/harness.h"
#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "common/clock.h"
#include "core/nvx.h"
#include "harness/faultlink.h"
#include "netio/socketio.h"
#include "quorum/lease.h"
#include "shmem/region.h"
#include "syscalls/sys.h"
#include "wire/receiver.h"

using namespace varan;
using namespace varan::bench;

namespace {

constexpr std::uint64_t kPromoteAfterNs = 150000000; ///< 150 ms watchdog

quorum::Config
nodeCfg(std::uint32_t id)
{
    quorum::Config config;
    config.node_id = id;
    config.members = {{0, ""}, {1, ""}, {2, ""}};
    config.lease_ttl_ns = 2000000000;
    config.heartbeat_ns = 50000000;
    config.vote_timeout_ns = 500000000;
    return config;
}

/** A receiver-only node: a re-materialized region with no local
 *  variants — it buffers the stream and votes, nothing more. */
struct BareNode {
    shmem::Region region;
    core::EngineLayout layout;

    BareNode()
    {
        auto created = shmem::Region::create(16 << 20);
        VARAN_CHECK(created.ok());
        region = std::move(created.value());
        layout = core::EngineLayout::create(&region, 1, core::kNoLeader,
                                            256);
        layout.tupleRing(&region, 0).detachConsumer(0);
    }
};

struct Sample {
    bool ok = false;
    double total_ms = 0;       ///< cut -> first post-promotion publish
    double promotion_us = 0;   ///< blackout histogram mean
    std::uint64_t samples = 0; ///< blackout histogram count
    std::uint64_t term = 0;    ///< granted lease term (0 = watchdog)
};

Sample
runFailover(bool quorum_gated, int run)
{
    const int receivers = quorum_gated ? 3 : 1;
    const int total_events = scaled(40000, 8000);

    std::vector<std::string> eps;
    std::vector<long> listening;
    for (int i = 0; i < receivers; ++i) {
        eps.push_back("varan-s58-" + std::to_string(::getpid()) + "-" +
                      std::to_string(run) + "-" + std::to_string(i));
        auto l = netio::listenAbstract(eps.back());
        VARAN_CHECK(l.ok());
        listening.push_back(l.value());
    }

    // The workload never parks: the leader is mid-stream when the cut
    // lands, and the promoted variant resumes the same loop natively,
    // so the first post-promotion publish follows the election with no
    // application-side delay in the measurement.
    auto app = [total_events]() -> int {
        struct timespec tick = {0, 200000}; // 0.2 ms
        for (int i = 0; i < total_events; ++i) {
            sys::vgetpid();
            if (i % 256 == 255)
                sys::vnanosleep(&tick, nullptr);
        }
        return 0;
    };

    pid_t leader_node = ::fork();
    VARAN_CHECK(leader_node >= 0);
    if (leader_node == 0) {
        core::EngineConfig config;
        config.ring.capacity = 256;
        config.shm_bytes = 16 << 20;
        config.remote.endpoints = eps;
        config.tuning.ship_batch = 8;
        core::Nvx nvx(config);
        if (!nvx.start({core::VariantSpec(app).named("leader")}).isOk())
            ::_exit(1);
        nvx.wait();
        ::_exit(0);
    }

    // Node 0: the standby that will promote — a full engine replaying
    // the remote stream, plus the (possibly quorum-gated) receiver.
    core::EngineConfig remote_config;
    remote_config.ring.capacity = 256;
    remote_config.shm_bytes = 16 << 20;
    remote_config.external_leader = true;
    remote_config.ring.progress_timeout_ns = 60000000000ULL;
    core::Nvx remote0(remote_config);
    VARAN_CHECK(
        remote0.start({core::VariantSpec(app).named("standby")}).isOk());
    wire::Receiver::Options r0_opts;
    r0_opts.promote_after_ns = kPromoteAfterNs;
    if (quorum_gated)
        r0_opts.quorum = nodeCfg(0);
    wire::Receiver receiver0(remote0.region(), &remote0.layout(),
                             r0_opts);

    // Nodes 1 and 2 (quorum mode): receiver-only voters.
    std::vector<std::unique_ptr<BareNode>> bare;
    std::vector<std::unique_ptr<wire::Receiver>> voters;
    for (int i = 1; i < receivers; ++i) {
        bare.push_back(std::make_unique<BareNode>());
        wire::Receiver::Options opts;
        opts.quorum = nodeCfg(static_cast<std::uint32_t>(i));
        voters.push_back(std::make_unique<wire::Receiver>(
            &bare.back()->region, &bare.back()->layout, opts));
    }

    // Control plane: a healthy full mesh — the bench prices the
    // election round trip, not a partition.
    if (quorum_gated) {
        int l01[2], l02[2], l12[2];
        VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, l01) == 0);
        VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, l02) == 0);
        VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, l12) == 0);
        receiver0.leaseManager()->adoptPeerLink(1, l01[0]);
        voters[0]->leaseManager()->adoptPeerLink(0, l01[1]);
        receiver0.leaseManager()->adoptPeerLink(2, l02[0]);
        voters[1]->leaseManager()->adoptPeerLink(0, l02[1]);
        voters[0]->leaseManager()->adoptPeerLink(2, l12[0]);
        voters[1]->leaseManager()->adoptPeerLink(1, l12[1]);
    }

    // Data plane: every leader link runs through a cut-scriptable
    // FaultLink. The shipper dials the endpoints in order, so accept
    // and adopt in the same order.
    std::vector<std::unique_ptr<varan::testing::FaultLink>> data;
    for (int i = 0; i < receivers; ++i) {
        VARAN_CHECK(netio::waitReadable(
            static_cast<int>(listening[static_cast<std::size_t>(i)]),
            15000));
        long conn = netio::acceptConnection(
            static_cast<int>(listening[static_cast<std::size_t>(i)]),
            false);
        VARAN_CHECK(conn >= 0);
        data.push_back(std::make_unique<varan::testing::FaultLink>(
            static_cast<int>(conn)));
        wire::Receiver &receiver =
            i == 0 ? receiver0 : *voters[static_cast<std::size_t>(i - 1)];
        VARAN_CHECK(receiver.adopt(data.back()->releaseB()).isOk());
        receiver.start();
    }

    Sample sample;
    // Let the stream establish: 512 events re-materialized at node 0.
    std::uint64_t deadline = monotonicNs() + 15000000000ULL;
    while (receiver0.nextSeq(0) < 512 && monotonicNs() < deadline)
        sleepNs(1000000);
    if (receiver0.nextSeq(0) >= 512) {
        // Leader death: all links sever at a frame boundary at once.
        for (auto &link : data)
            link->cut();
        const std::uint64_t cut_ns = monotonicNs();
        ::kill(leader_node, SIGKILL);

        // The engine's own blackout histogram records promotion
        // decision -> first promoted publish; its first sample marks
        // the end of the externally timed span too.
        core::ControlBlock *cb =
            remote0.layout().controlBlock(remote0.region());
        deadline = monotonicNs() + 15000000000ULL;
        while (cb->trace.blackout.count.load(std::memory_order_relaxed) ==
                   0 &&
               monotonicNs() < deadline)
            sleepNs(100000);
        const std::uint64_t publish_ns = monotonicNs();

        sample.samples =
            cb->trace.blackout.count.load(std::memory_order_relaxed);
        if (sample.samples > 0 && receiver0.promoted()) {
            sample.ok = true;
            sample.total_ms =
                static_cast<double>(publish_ns - cut_ns) / 1e6;
            sample.promotion_us =
                static_cast<double>(cb->trace.blackout.sum.load(
                    std::memory_order_relaxed)) /
                static_cast<double>(sample.samples) / 1e3;
            if (quorum_gated)
                sample.term = receiver0.leaseManager()->term();
        }
    }

    int wstatus = 0;
    ::waitpid(leader_node, &wstatus, 0);
    // The promoted variant finishes the loop natively.
    remote0.waitFor(30000000000ULL);
    receiver0.finish();
    for (auto &voter : voters)
        voter->finish();
    for (long fd : listening)
        ::close(static_cast<int>(fd));
    return sample;
}

struct ConfigResult {
    std::vector<double> totals_ms;
    std::vector<double> promos_us;
    std::uint64_t samples = 0;
    std::uint64_t term = 0;
    int failed = 0;
};

ConfigResult
runConfig(bool quorum_gated, int reps)
{
    ConfigResult out;
    for (int i = 0; i < reps; ++i) {
        Sample s = runFailover(quorum_gated, quorum_gated * 100 + i);
        if (!s.ok) {
            ++out.failed;
            continue;
        }
        out.totals_ms.push_back(s.total_ms);
        out.promos_us.push_back(s.promotion_us);
        out.samples += s.samples;
        out.term = s.term;
    }
    return out;
}

} // namespace

int
main()
{
    ignoreSigpipe();
    const int reps = scaled(5, 3);
    std::printf("Section 5.8 (extension): quorum-gated failover "
                "blackout (%d runs per row,\npromote_after %.0f ms, "
                "leader death = scripted frame-boundary cut)\n\n",
                reps, static_cast<double>(kPromoteAfterNs) / 1e6);

    ConfigResult watchdog = runConfig(false, reps);
    ConfigResult gated = runConfig(true, reps);

    Table table({"configuration", "receivers", "runs",
                 "cut->publish p50 (ms)", "promotion->publish (us)",
                 "blackout samples", "lease term"});
    table.addRow({"watchdog (pre-v6)", "1",
                  std::to_string(watchdog.totals_ms.size()),
                  fmt(median(watchdog.totals_ms), "%.1f"),
                  fmt(mean(watchdog.promos_us), "%.1f"),
                  std::to_string(watchdog.samples), "-"});
    table.addRow({"quorum-gated (v6)", "3",
                  std::to_string(gated.totals_ms.size()),
                  fmt(median(gated.totals_ms), "%.1f"),
                  fmt(mean(gated.promos_us), "%.1f"),
                  std::to_string(gated.samples),
                  std::to_string(gated.term)});
    table.print();
    table.writeJson("sec58_quorum");

    if (watchdog.failed || gated.failed) {
        std::printf("\nWARNING: %d watchdog / %d quorum runs failed to "
                    "promote\n",
                    watchdog.failed, gated.failed);
    }
    std::printf("\nExpected shape: both rows' blackout histograms "
                "populate (one sample per\nfailover); cut->publish is "
                "dominated by the %.0f ms detection window in both\n"
                "rows, and the quorum row adds only the majority-vote "
                "round trip on an\nin-memory mesh — split-brain safety "
                "for microseconds, not milliseconds.\n",
                static_cast<double>(kPromoteAfterNs) / 1e6);
    return 0;
}
