/**
 * @file
 * Section 5.6 (extension): adaptive event-path auto-tuning.
 *
 * Two default-vs-hand-tuned-vs-adaptive comparisons, one per layer the
 * AutoTuner retunes:
 *
 *  - Coalesced publish: a producer feeds a tuple ring through a
 *    PublishCoalescer whose run cap is the live CoalesceRun knob.
 *    "default" pins the run at 1 (per-event publish), "hand-tuned"
 *    pins it at 64, "adaptive" seeds it at 1 and lets the AutoTuner
 *    climb. The bench bumps ControlBlock::events_streamed the way the
 *    monitor's event path does, so the sampler sees the real publish
 *    rate.
 *
 *  - Wire shipping: the sec55 socketpair harness (Shipper -> Receiver,
 *    remote follower draining the re-materialized ring) with the ship
 *    batch as the knob. "default" seeds batch 1, "hand-tuned" 64,
 *    "adaptive" seeds 1 and runs the AutoTuner with the shipper's
 *    stats as the wire source.
 *
 * The figure of merit is gap recovery: how much of the default-to-
 * hand-tuned throughput gap the adaptive row recovers with zero
 * configuration, (adaptive - default) / (tuned - default). The
 * acceptance floor is 80%. JSON baselines land in BENCH_adaptive.json
 * via VARAN_BENCH_JSON.
 */

#include <cstdio>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "adapt/autotuner.h"
#include "benchutil/harness.h"
#include "benchutil/table.h"
#include "common/clock.h"
#include "core/layout.h"
#include "core/tuning.h"
#include "wire/receiver.h"
#include "wire/shipper.h"

using namespace varan;
using namespace varan::bench;

namespace {

constexpr std::uint32_t kRingCapacity = 1024;

enum class Mode { Default, Tuned, Adaptive };

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Default:
        return "default";
      case Mode::Tuned:
        return "hand-tuned";
      default:
        return "adaptive";
    }
}

struct Node {
    shmem::Region region;
    core::EngineLayout layout;

    explicit Node(std::uint32_t leader_id)
    {
        auto r = shmem::Region::create(32 << 20);
        VARAN_CHECK(r.ok());
        region = std::move(r.value());
        layout = core::EngineLayout::create(&region, 1, leader_id,
                                            kRingCapacity);
    }
};

/** Fast cadence so the ramp is a small fraction of the run: floor to
 *  ceiling on a batch knob is ~16 decisions = ~80 ms at this tick.
 *  The short sampling windows are noisier than the 10 ms engine
 *  default, so the dead band is widened to match — only a real
 *  regression (>25%) should trigger a multiplicative decrease. */
adapt::AutoTuner::Options
benchTunerOptions()
{
    adapt::AutoTuner::Options options;
    options.tick_ns = 5'000'000;
    options.controller.settle_ticks = 1;
    options.controller.hysteresis = 0.25;
    return options;
}

struct RunResult {
    double events_per_sec = 0;
    std::uint64_t final_knob = 0;   ///< the knob value at run end
    std::uint64_t decisions = 0;    ///< AutoTuner adjustments applied
};

/** Coalesced-publish throughput with the run cap per @p mode. */
RunResult
runCoalesce(Mode mode, std::uint64_t total_events)
{
    Node host(0);
    core::ControlBlock *cb = host.layout.controlBlock(&host.region);

    if (mode == Mode::Default)
        core::TuningHandle(&cb->tuning).set(core::Knob::CoalesceRun, 1);
    else if (mode == Mode::Tuned)
        core::TuningHandle(&cb->tuning).set(core::Knob::CoalesceRun, 64);
    else
        core::seedKnob(cb->tuning, core::Knob::CoalesceRun, 1);

    ring::RingBuffer ring = host.layout.tupleRing(&host.region, 0);
    const int slot = ring.attachConsumer();
    VARAN_CHECK(slot >= 0);

    ring::PublishCoalescer coalescer;
    coalescer.reset(&ring, ring::PublishCoalescer::kMaxPending);
    coalescer.bindLiveLimit(
        &cb->tuning.values[static_cast<std::uint32_t>(
            core::Knob::CoalesceRun)]);

    std::thread consumer([&] {
        ring::Event events[64];
        ring::WaitSpec wait;
        wait.timeout_ns = 50000000; // 50 ms tick
        std::uint64_t seen = 0;
        while (seen < total_events)
            seen += ring.consumeBatch(slot, events, 64, wait);
    });

    adapt::AutoTuner tuner(&host.region, &host.layout,
                           benchTunerOptions());
    if (mode == Mode::Adaptive)
        tuner.start();

    const std::uint64_t start_ns = monotonicNs();
    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.nr = 39; // getpid
    event.result = 4242;
    std::uint64_t since_bump = 0;
    for (std::uint64_t i = 0; i < total_events; ++i) {
        event.timestamp = i + 1;
        VARAN_CHECK(coalescer.add(event));
        // Feed the sampler the way the monitor's event path does.
        if (++since_bump == 4096) {
            cb->events_streamed.fetch_add(since_bump,
                                          std::memory_order_relaxed);
            since_bump = 0;
        }
    }
    VARAN_CHECK(coalescer.flush());
    cb->events_streamed.fetch_add(since_bump, std::memory_order_relaxed);

    consumer.join();
    const std::uint64_t elapsed_ns = monotonicNs() - start_ns;
    tuner.stop();

    RunResult result;
    result.events_per_sec =
        elapsed_ns > 0 ? 1e9 * static_cast<double>(total_events) /
                             static_cast<double>(elapsed_ns)
                       : 0;
    result.final_knob = core::liveKnob(cb->tuning,
                                       core::Knob::CoalesceRun);
    result.decisions = tuner.decisionsApplied();
    return result;
}

/** End-to-end shipping throughput with the ship batch per @p mode
 *  (the sec55 harness, minus the static batch). */
RunResult
runWire(Mode mode, std::uint64_t total_events)
{
    Node leader(0);
    Node remote(core::kNoLeader);

    int sv[2];
    VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);

    wire::Shipper::Options ship_opts;
    ship_opts.ship_batch = mode == Mode::Tuned ? 64 : 1;
    ship_opts.credit_window = 4096;
    wire::Shipper shipper(&leader.region, &leader.layout, ship_opts);
    VARAN_CHECK(shipper.attachTaps().isOk());

    wire::Receiver::Options recv_opts;
    recv_opts.credit_every = 256;
    wire::Receiver receiver(&remote.region, &remote.layout, recv_opts);

    std::thread adopting([&] {
        VARAN_CHECK(receiver.adopt(sv[1]).isOk());
    });
    VARAN_CHECK(shipper.handshake(sv[0]).isOk());
    adopting.join();
    receiver.start();

    std::thread remote_follower([&] {
        ring::RingBuffer ring = remote.layout.tupleRing(&remote.region, 0);
        ring::Event events[64];
        ring::WaitSpec wait;
        wait.timeout_ns = 50000000; // 50 ms tick
        std::uint64_t seen = 0;
        while (seen < total_events)
            seen += ring.consumeBatch(0, events, 64, wait);
    });

    shipper.start();
    adapt::AutoTuner tuner(&leader.region, &leader.layout,
                           benchTunerOptions(), [&shipper] {
                               const wire::Shipper::Stats s =
                                   shipper.stats();
                               adapt::WireSample w;
                               w.active = true;
                               w.events = s.events;
                               w.drain_passes = s.drain_passes;
                               w.credit_stalls = s.credit_stalls;
                               return w;
                           });
    if (mode == Mode::Adaptive)
        tuner.start();

    ring::RingBuffer ring = leader.layout.tupleRing(&leader.region, 0);
    const std::uint64_t start_ns = monotonicNs();

    ring::Event batch[256];
    std::uint64_t published = 0;
    while (published < total_events) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(256, total_events - published));
        for (std::size_t i = 0; i < n; ++i) {
            batch[i] = {};
            batch[i].type = ring::EventType::Syscall;
            batch[i].timestamp = published + i + 1;
            batch[i].nr = 39; // getpid
            batch[i].result = 4242;
        }
        published += ring.publishBatch({batch, n});
    }

    remote_follower.join();
    const std::uint64_t elapsed_ns = monotonicNs() - start_ns;
    tuner.stop();
    shipper.finish();
    receiver.finish();
    ::close(sv[0]);
    ::close(sv[1]);

    core::ControlBlock *cb = leader.layout.controlBlock(&leader.region);
    RunResult result;
    result.events_per_sec =
        elapsed_ns > 0 ? 1e9 * static_cast<double>(total_events) /
                             static_cast<double>(elapsed_ns)
                       : 0;
    result.final_knob = core::liveKnob(cb->tuning, core::Knob::ShipBatch);
    result.decisions = tuner.decisionsApplied();
    return result;
}

double
gapRecovery(const RunResult &def, const RunResult &tuned,
            const RunResult &row)
{
    const double gap = tuned.events_per_sec - def.events_per_sec;
    if (gap <= 0)
        return 1.0;
    return (row.events_per_sec - def.events_per_sec) / gap;
}

void
report(const char *title, const char *knob, const char *json_name,
       const RunResult &def, const RunResult &tuned,
       const RunResult &adaptive)
{
    std::printf("%s\n\n", title);
    Table table({"mode", "events/s", "vs default", "gap recovered",
                 std::string("final ") + knob, "decisions"});
    const RunResult *rows[] = {&def, &tuned, &adaptive};
    const Mode modes[] = {Mode::Default, Mode::Tuned, Mode::Adaptive};
    for (int i = 0; i < 3; ++i) {
        const double speedup =
            def.events_per_sec > 0
                ? rows[i]->events_per_sec / def.events_per_sec
                : 0;
        table.addRow({modeName(modes[i]),
                      fmt(rows[i]->events_per_sec, "%.0f"),
                      fmt(speedup, "%.2fx"),
                      fmt(100.0 * gapRecovery(def, tuned, *rows[i]),
                          "%.0f%%"),
                      std::to_string(rows[i]->final_knob),
                      std::to_string(rows[i]->decisions)});
    }
    table.print();
    table.writeJson(json_name);
    std::printf("\n");
}

} // namespace

int
main()
{
    ignoreSigpipe();
    const std::uint64_t ring_total = scaled(4000000, 200000);
    const std::uint64_t wire_total = scaled(800000, 60000);
    std::printf("Section 5.6 (extension): adaptive event-path "
                "auto-tuning\n\n");

    {
        const RunResult def = runCoalesce(Mode::Default, ring_total);
        const RunResult tuned = runCoalesce(Mode::Tuned, ring_total);
        const RunResult adaptive = runCoalesce(Mode::Adaptive, ring_total);
        char title[128];
        std::snprintf(title, sizeof(title),
                      "Coalesced publish (CoalesceRun knob), %llu events",
                      static_cast<unsigned long long>(ring_total));
        report(title, "run", "sec56_coalesce", def, tuned, adaptive);
    }

    {
        const RunResult def = runWire(Mode::Default, wire_total);
        const RunResult tuned = runWire(Mode::Tuned, wire_total);
        const RunResult adaptive = runWire(Mode::Adaptive, wire_total);
        char title[128];
        std::snprintf(
            title, sizeof(title),
            "Wire shipping (ShipBatch knob), %llu events end to end",
            static_cast<unsigned long long>(wire_total));
        report(title, "batch", "sec56_wire", def, tuned, adaptive);
    }

    std::printf("Expected shape: both adaptive rows start at the "
                "per-event floor, climb to\nthe batching ceiling within "
                "~16 decisions, and recover >=80%% of the\n"
                "default-to-hand-tuned gap with zero configuration.\n");
    return 0;
}
