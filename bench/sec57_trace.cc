/**
 * @file
 * Section 5.7 (extension): event-path tracing overhead ablation.
 *
 * Two trace-off-vs-trace-on comparisons, one per event-path layer the
 * observability substrate instruments:
 *
 *  - Coalesced publish: the sec56 coalescer harness with the run cap
 *    pinned at 64, plus the monitor's per-event trace work replicated
 *    at the same cadence — the enabled() guard and sampled() lag mark
 *    on every add, a dwell histogram sample and CoalesceFlush stamp
 *    per 64-event run, and the follower-side lag match + dispatch
 *    stamp in the consumer. Toggling `ControlBlock::trace.enabled`
 *    is the only difference between the rows.
 *
 *  - Wire shipping: the sec56 socketpair harness (Shipper ->
 *    Receiver, remote follower draining the re-materialized ring)
 *    with the ship batch pinned at 64. The shipper and receiver carry
 *    their own stamp sites (ShipperDrain, ReceiverPublish, the
 *    credit-stall histogram), all guarded by the same live switch, so
 *    the rows differ only in `trace.enabled` on both regions.
 *
 * The figure of merit is overhead: (off - on) / off. The acceptance
 * ceiling for the coalesced-publish row is 5% — the flight recorder
 * and histograms must be cheap enough to leave on in production,
 * which is the premise of the whole trace subsystem. Each mode runs
 * three times and reports the best run so the single-core CI box's
 * scheduling noise does not masquerade as instrumentation cost.
 * JSON baselines land in BENCH_trace.json via VARAN_BENCH_JSON.
 */

#include <cstdio>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "benchutil/harness.h"
#include "benchutil/table.h"
#include "common/clock.h"
#include "core/layout.h"
#include "core/tuning.h"
#include "trace/trace.h"
#include "wire/receiver.h"
#include "wire/shipper.h"

using namespace varan;
using namespace varan::bench;

namespace {

constexpr std::uint32_t kRingCapacity = 1024;
constexpr std::uint64_t kRunCap = 64; ///< pinned coalesce run / ship batch

struct Node {
    shmem::Region region;
    core::EngineLayout layout;

    explicit Node(std::uint32_t leader_id)
    {
        auto r = shmem::Region::create(32 << 20);
        VARAN_CHECK(r.ok());
        region = std::move(r.value());
        layout = core::EngineLayout::create(&region, 1, leader_id,
                                            kRingCapacity);
    }
};

struct RunResult {
    double events_per_sec = 0;
    std::uint64_t lag_samples = 0;   ///< publish_lag histogram count
    std::uint64_t trace_records = 0; ///< flight-recorder stamps
};

/** Coalesced-publish throughput with the monitor's trace cadence
 *  replicated inline; @p traced toggles the live switch only. */
RunResult
runCoalesce(bool traced, std::uint64_t total_events)
{
    Node host(0);
    core::ControlBlock *cb = host.layout.controlBlock(&host.region);
    trace::TraceBlock &tb = cb->trace;
    tb.enabled.store(traced ? 1 : 0, std::memory_order_relaxed);
    core::TuningHandle(&cb->tuning).set(core::Knob::CoalesceRun, kRunCap);

    ring::RingBuffer ring = host.layout.tupleRing(&host.region, 0);
    const int slot = ring.attachConsumer();
    VARAN_CHECK(slot >= 0);

    ring::PublishCoalescer coalescer;
    coalescer.reset(&ring, ring::PublishCoalescer::kMaxPending);
    coalescer.bindLiveLimit(
        &cb->tuning.values[static_cast<std::uint32_t>(
            core::Knob::CoalesceRun)]);

    std::thread consumer([&] {
        ring::Event events[64];
        ring::WaitSpec wait;
        wait.timeout_ns = 50000000; // 50 ms tick
        std::uint64_t seen = 0;
        while (seen < total_events) {
            const std::uint64_t n = ring.consumeBatch(slot, events, 64,
                                                      wait);
            // The follower's dispatch-side trace work, at the real
            // cadence: lag match + stamp for sampled events only.
            if (trace::enabled(tb)) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    if (!trace::sampled(events[i].timestamp))
                        continue;
                    const std::uint64_t now = monotonicNs();
                    trace::lagMatch(tb, events[i].timestamp, now);
                    trace::stamp(tb, trace::Stage::FollowerDispatch, 0,
                                 0, events[i].nr, now,
                                 events[i].timestamp);
                }
            }
            seen += n;
        }
    });

    const std::uint64_t start_ns = monotonicNs();
    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.nr = 39; // getpid
    event.result = 4242;
    std::uint64_t run_first_ns = 0;
    std::uint64_t run_len = 0;
    std::uint64_t since_bump = 0;
    for (std::uint64_t i = 0; i < total_events; ++i) {
        event.timestamp = i + 1;
        VARAN_CHECK(coalescer.add(event));
        // The leader's publish-side trace work, mirroring
        // Monitor::publish/flushCoalesced: one clock read per sampled
        // event, one dwell sample + stamp per kRunCap-long run.
        if (trace::enabled(tb)) {
            if (run_len++ == 0)
                run_first_ns = monotonicNs();
            if (trace::sampled(event.timestamp))
                trace::lagMark(tb, event.timestamp, monotonicNs());
            if (run_len == kRunCap) {
                const std::uint64_t now = monotonicNs();
                if (now > run_first_ns)
                    trace::histogramRecord(tb.coalesce_dwell,
                                           now - run_first_ns);
                trace::stamp(tb, trace::Stage::CoalesceFlush, 0, 0, 0,
                             now, run_len);
                run_len = 0;
            }
        }
        if (++since_bump == 4096) {
            cb->events_streamed.fetch_add(since_bump,
                                          std::memory_order_relaxed);
            since_bump = 0;
        }
    }
    VARAN_CHECK(coalescer.flush());
    cb->events_streamed.fetch_add(since_bump, std::memory_order_relaxed);

    consumer.join();
    const std::uint64_t elapsed_ns = monotonicNs() - start_ns;

    RunResult result;
    result.events_per_sec =
        elapsed_ns > 0 ? 1e9 * static_cast<double>(total_events) /
                             static_cast<double>(elapsed_ns)
                       : 0;
    result.lag_samples =
        tb.publish_lag.count.load(std::memory_order_relaxed);
    result.trace_records =
        tb.trace_head.load(std::memory_order_relaxed);
    return result;
}

/** End-to-end shipping throughput; the shipper's and receiver's own
 *  stamp sites are the instrumentation under test. */
RunResult
runWire(bool traced, std::uint64_t total_events)
{
    Node leader(0);
    Node remote(core::kNoLeader);
    core::ControlBlock *lcb = leader.layout.controlBlock(&leader.region);
    core::ControlBlock *rcb = remote.layout.controlBlock(&remote.region);
    lcb->trace.enabled.store(traced ? 1 : 0, std::memory_order_relaxed);
    rcb->trace.enabled.store(traced ? 1 : 0, std::memory_order_relaxed);

    int sv[2];
    VARAN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);

    wire::Shipper::Options ship_opts;
    ship_opts.ship_batch = kRunCap;
    ship_opts.credit_window = 4096;
    wire::Shipper shipper(&leader.region, &leader.layout, ship_opts);
    VARAN_CHECK(shipper.attachTaps().isOk());

    wire::Receiver::Options recv_opts;
    recv_opts.credit_every = 256;
    wire::Receiver receiver(&remote.region, &remote.layout, recv_opts);

    std::thread adopting([&] {
        VARAN_CHECK(receiver.adopt(sv[1]).isOk());
    });
    VARAN_CHECK(shipper.handshake(sv[0]).isOk());
    adopting.join();
    receiver.start();

    std::thread remote_follower([&] {
        ring::RingBuffer ring = remote.layout.tupleRing(&remote.region, 0);
        ring::Event events[64];
        ring::WaitSpec wait;
        wait.timeout_ns = 50000000; // 50 ms tick
        std::uint64_t seen = 0;
        while (seen < total_events)
            seen += ring.consumeBatch(0, events, 64, wait);
    });

    shipper.start();
    ring::RingBuffer ring = leader.layout.tupleRing(&leader.region, 0);
    const std::uint64_t start_ns = monotonicNs();

    ring::Event batch[256];
    std::uint64_t published = 0;
    while (published < total_events) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(256, total_events - published));
        for (std::size_t i = 0; i < n; ++i) {
            batch[i] = {};
            batch[i].type = ring::EventType::Syscall;
            batch[i].timestamp = published + i + 1;
            batch[i].nr = 39; // getpid
            batch[i].result = 4242;
        }
        published += ring.publishBatch({batch, n});
    }

    remote_follower.join();
    const std::uint64_t elapsed_ns = monotonicNs() - start_ns;
    shipper.finish();
    receiver.finish();
    ::close(sv[0]);
    ::close(sv[1]);

    RunResult result;
    result.events_per_sec =
        elapsed_ns > 0 ? 1e9 * static_cast<double>(total_events) /
                             static_cast<double>(elapsed_ns)
                       : 0;
    result.lag_samples =
        lcb->trace.publish_lag.count.load(std::memory_order_relaxed);
    result.trace_records =
        lcb->trace.trace_head.load(std::memory_order_relaxed) +
        rcb->trace.trace_head.load(std::memory_order_relaxed);
    return result;
}

template <typename Fn>
RunResult
bestOf(int reps, Fn &&run)
{
    RunResult best;
    for (int i = 0; i < reps; ++i) {
        RunResult r = run();
        if (r.events_per_sec > best.events_per_sec)
            best = r;
    }
    return best;
}

void
report(const char *title, const char *json_name, const RunResult &off,
       const RunResult &on)
{
    std::printf("%s\n\n", title);
    const double overhead =
        off.events_per_sec > 0
            ? 100.0 * (off.events_per_sec - on.events_per_sec) /
                  off.events_per_sec
            : 0;
    Table table({"trace", "events/s", "overhead", "lag samples",
                 "stamps"});
    table.addRow({"off", fmt(off.events_per_sec, "%.0f"), "-",
                  std::to_string(off.lag_samples),
                  std::to_string(off.trace_records)});
    table.addRow({"on", fmt(on.events_per_sec, "%.0f"),
                  fmt(overhead, "%.1f%%"),
                  std::to_string(on.lag_samples),
                  std::to_string(on.trace_records)});
    table.print();
    table.writeJson(json_name);
    std::printf("\n");
}

} // namespace

int
main()
{
    ignoreSigpipe();
    const std::uint64_t ring_total = scaled(4000000, 200000);
    const std::uint64_t wire_total = scaled(800000, 60000);
    std::printf("Section 5.7 (extension): event-path tracing "
                "overhead\n\n");

    {
        const RunResult off = bestOf(
            3, [&] { return runCoalesce(false, ring_total); });
        const RunResult on = bestOf(
            3, [&] { return runCoalesce(true, ring_total); });
        char title[128];
        std::snprintf(title, sizeof(title),
                      "Coalesced publish (run %llu), %llu events",
                      static_cast<unsigned long long>(kRunCap),
                      static_cast<unsigned long long>(ring_total));
        report(title, "sec57_coalesce", off, on);
    }

    {
        const RunResult off =
            bestOf(2, [&] { return runWire(false, wire_total); });
        const RunResult on =
            bestOf(2, [&] { return runWire(true, wire_total); });
        char title[128];
        std::snprintf(
            title, sizeof(title),
            "Wire shipping (batch %llu), %llu events end to end",
            static_cast<unsigned long long>(kRunCap),
            static_cast<unsigned long long>(wire_total));
        report(title, "sec57_wire", off, on);
    }

    std::printf("Expected shape: the trace-on rows stay within 5%% of "
                "trace-off on the\ncoalesced-publish path (the "
                "acceptance ceiling) — log2 histograms and\n"
                "fetch_add slot claims are cheap enough to leave on in "
                "production.\n");
    return 0;
}
