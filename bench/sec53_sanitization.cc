/**
 * @file
 * Section 5.3: live sanitization.
 *
 * The native build of vstore leads; a "sanitized" build (extra checking
 * work per command, standing in for AddressSanitizer's ~2x slowdown)
 * follows. Because followers skip all I/O and merely replay, the
 * sanitized follower keeps up and the leader's client-visible
 * throughput matches a run with two plain versions. The bench also
 * samples the leader-follower log distance, the metric the paper
 * reports as a median of six events.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>

#include "apps/vstore.h"
#include "benchutil/drivers.h"
#include "benchutil/harness.h"
#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "core/nvx.h"

using namespace varan;
using namespace varan::bench;

namespace {

std::string
endpointFor(const char *tag)
{
    static int counter = 0;
    return std::string("varan-s53-") + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

struct Run {
    double ops = 0;
    double lag_median = 0;
    double lag_max = 0;
};

Run
measure(int sanitize_passes, const char *tag)
{
    std::string endpoint = endpointFor(tag);
    core::EngineConfig config;
    config.shm_bytes = 64 << 20;
    config.ring.progress_timeout_ns = 120000000000ULL;

    auto plain = [endpoint]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        return apps::vstore::serve(o);
    };
    auto follower = [endpoint, sanitize_passes]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        o.revision.sanitize_passes = sanitize_passes;
        return apps::vstore::serve(o);
    };

    core::Nvx nvx(config);
    if (!nvx.start({plain, follower}).isOk())
        return {};

    // Sample the log distance while the workload runs.
    std::atomic<bool> done{false};
    std::vector<double> lags;
    std::thread sampler([&] {
        while (!done.load(std::memory_order_acquire)) {
            lags.push_back(double(nvx.ringLagOf(1)));
            sleepNs(2000000); // 2 ms
        }
    });

    auto load = kvBench(endpoint, 4, scaled(400, 60));
    done.store(true, std::memory_order_release);
    sampler.join();
    kvShutdown(endpoint);
    nvx.waitFor(60000000000ULL);

    Run run;
    run.ops = load.ops_per_sec;
    run.lag_median = median(lags);
    for (double l : lags)
        run.lag_max = std::max(run.lag_max, l);
    return run;
}

} // namespace

int
main()
{
    std::printf("Section 5.3: live sanitization — plain leader, "
                "sanitized follower\n\n");

    measure(0, "warmup"); // one discarded run to warm path caches
    Run plain2 = measure(0, "plain");       // two non-sanitized versions
    Run sanitized = measure(12, "asan");    // ~ASan-grade extra work

    Table table({"configuration", "leader ops/s", "log distance (median)",
                 "log distance (max)"});
    table.addRow({"plain + plain follower", fmt(plain2.ops, "%.0f"),
                  fmt(plain2.lag_median, "%.0f"),
                  fmt(plain2.lag_max, "%.0f")});
    table.addRow({"plain + sanitized follower", fmt(sanitized.ops, "%.0f"),
                  fmt(sanitized.lag_median, "%.0f"),
                  fmt(sanitized.lag_max, "%.0f")});
    table.print();
    table.writeJson("sec53_sanitization");

    double slowdown = plain2.ops > 0 ? plain2.ops / sanitized.ops : 0;
    std::printf("\nleader slowdown from sanitized follower: %.2fx\n",
                slowdown);
    std::printf("\nPaper reference: no measurable extra slowdown in the "
                "leader versus two plain\nversions; median log distance "
                "of six events. Expected shape: both rows within\nnoise "
                "of each other; log distance well under the ring "
                "capacity (256).\n");
    return 0;
}
