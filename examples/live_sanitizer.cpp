/**
 * @file
 * Live sanitization (paper section 5.3): the production build leads,
 * a sanitizer-instrumented build follows. The follower performs no
 * I/O — it replays the leader's events — so its extra checking work
 * stays off the service's critical path.
 *
 * The sanitized build is declared FollowerOnly: a checking build must
 * never be promoted to leader during failover (its instrumentation
 * belongs off the critical path, crash or no crash), which the role on
 * its VariantSpec guarantees.
 *
 *   $ ./examples/live_sanitizer
 */

#include <cstdio>
#include <string>
#include <unistd.h>

#include "apps/vstore.h"
#include "benchutil/drivers.h"
#include "core/nvx.h"

using namespace varan;

int
main()
{
    std::string endpoint =
        "varan-example-sanitizer-" + std::to_string(::getpid());

    auto production = [endpoint]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        return apps::vstore::serve(o);
    };
    auto sanitized = [endpoint]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        o.revision.sanitize_passes = 12; // ~ASan-grade extra work
        return apps::vstore::serve(o);
    };

    auto nvx = core::Nvx::Builder()
                   .variant(core::VariantSpec(production).named("prod"))
                   .variant(core::VariantSpec(sanitized)
                                .named("asan")
                                .as(core::VariantRole::FollowerOnly))
                   .build();
    if (!nvx->start().isOk())
        return 1;

    auto load = bench::kvBench(endpoint, 2, 200);
    std::printf("leader throughput with sanitized follower: %.0f ops/s\n",
                load.ops_per_sec);
    core::StatusReport status = nvx->status();
    std::printf("log distance (leader ahead of sanitized follower): %llu "
                "events\n",
                static_cast<unsigned long long>(
                    status.variants[1].ring_lag));

    bench::kvShutdown(endpoint);
    auto results = nvx->wait();
    for (const auto &r : results) {
        std::printf("%s build: %s\n",
                    r.variant == 0 ? "production" : "sanitized",
                    r.crashed ? "CRASHED" : "clean exit");
    }
    std::printf("\nThe paper measured a median log distance of six "
                "events and no extra leader\nslowdown — the sanitized "
                "follower keeps up because it never executes I/O.\n");
    return 0;
}
