/**
 * @file
 * Transparent failover (paper section 5.1): a key-value server whose
 * newest revision crashes while serving HMGET runs in parallel with a
 * healthy revision. The crash hits the *leader*; the follower is
 * promoted mid-request and the client never notices beyond a one-off
 * latency blip.
 *
 * The election is observed through EngineConfig's on_failover lifecycle
 * hook rather than by polling the getters.
 *
 *   $ ./examples/transparent_failover
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <unistd.h>

#include "apps/vstore.h"
#include "benchutil/drivers.h"
#include "core/nvx.h"

using namespace varan;

int
main()
{
    std::string endpoint =
        "varan-example-failover-" + std::to_string(::getpid());

    auto buggy = [endpoint]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        o.revision.crash_on_hmget = true; // revision 7fb16ba's bug
        return apps::vstore::serve(o);
    };
    auto healthy = [endpoint]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        return apps::vstore::serve(o);
    };

    std::atomic<std::uint32_t> elected{0xffffffffu};
    // The buggy revision leads; the healthy one follows.
    auto nvx = core::Nvx::Builder()
                   .onFailover([&elected](std::uint32_t epoch,
                                          std::uint32_t leader) {
                       std::fprintf(stderr,
                                    "[hook] epoch %u: variant %u "
                                    "promoted to leader\n",
                                    epoch, leader);
                       elected.store(leader, std::memory_order_relaxed);
                   })
                   .variant(core::VariantSpec(buggy).named("7fb16ba"))
                   .variant(core::VariantSpec(healthy).named("healthy"))
                   .build();
    if (!nvx->start().isOk())
        return 1;

    std::printf("seeding: %s", bench::kvCommandLatency(
                                   endpoint, "HSET user name varan")
                                   .reply.c_str());
    auto normal = bench::kvCommandLatency(endpoint, "GET missing");
    std::printf("normal GET latency: %.1f us\n", normal.us);

    std::printf("\nsending the HMGET that crashes the leader...\n");
    auto crash = bench::kvCommandLatency(endpoint, "HMGET user name");
    std::printf("  -> served anyway (%.1f us, reply %s)",
                crash.us, crash.reply.c_str());
    std::printf("  [leader is now variant %d, election epoch %u]\n",
                nvx->currentLeader(), nvx->epoch());

    auto after = bench::kvCommandLatency(endpoint, "GET missing");
    std::printf("post-failover GET latency: %.1f us\n", after.us);

    bench::kvShutdown(endpoint);
    auto results = nvx->wait();
    for (const auto &r : results) {
        std::printf("variant %d: %s (status %d)\n", r.variant,
                    r.crashed ? "crashed" : "clean exit", r.status);
    }
    if (elected.load(std::memory_order_relaxed) != 0xffffffffu) {
        std::printf("on_failover hook observed the election of variant "
                    "%u\n",
                    elected.load(std::memory_order_relaxed));
    }
    return 0;
}
