/**
 * @file
 * Record-replay (paper section 5.4): record a live run's event stream
 * to disk with the artificial recorder follower, then replay the log
 * against a fresh instance — which reproduces the run bit for bit
 * without touching the outside world.
 *
 *   $ ./examples/record_replay
 */

#include <cstdio>
#include <fcntl.h>
#include <string>
#include <unistd.h>

#include "core/nvx.h"
#include "rr/log.h"
#include "rr/recorder.h"
#include "rr/replayer.h"
#include "syscalls/sys.h"

using namespace varan;

int
main()
{
    std::string log_path =
        "/tmp/varan-example-rr-" + std::to_string(::getpid()) + ".log";

    auto app = []() -> int {
        long pid = sys::vgetpid();
        long now = 0;
        sys::vtime(&now);
        long fd = sys::vopen("/dev/urandom", O_RDONLY);
        unsigned char entropy[8] = {};
        sys::vread(static_cast<int>(fd), entropy, sizeof(entropy));
        sys::vclose(static_cast<int>(fd));
        // Status depends on every non-deterministic input above.
        return static_cast<int>((pid ^ now ^ entropy[0]) & 0x3f);
    };

    int live_status;
    {
        std::printf("phase 1: recording a live run...\n");
        core::Nvx nvx;
        rr::Recorder recorder(nvx.region(), &nvx.layout(), log_path);
        if (!nvx.start({app},
                       [&](core::Nvx &) {
                           recorder.attachTaps();
                           recorder.startDraining();
                       })
                 .isOk()) {
            return 1;
        }
        auto results = nvx.wait();
        auto stats = recorder.finish();
        live_status = results[0].status;
        std::printf("  recorded %llu events (%llu payload bytes); live "
                    "status %d\n",
                    static_cast<unsigned long long>(
                        stats.ok() ? stats.value().events : 0),
                    static_cast<unsigned long long>(
                        stats.ok() ? stats.value().payload_bytes : 0),
                    live_status);
    }

    {
        std::printf("phase 2: replaying the log against a fresh "
                    "instance...\n");
        core::EngineConfig config;
        config.external_leader = true; // the log is the leader now
        core::Nvx nvx(config);
        if (!nvx.start({app}).isOk())
            return 1;
        rr::Replayer replayer(nvx.region(), &nvx.layout(), log_path);
        auto stats = replayer.replayAll();
        auto results = nvx.wait();
        std::printf("  replayed %llu events; replay status %d (%s)\n",
                    static_cast<unsigned long long>(
                        stats.ok() ? stats.value().events : 0),
                    results[0].status,
                    results[0].status == live_status
                        ? "matches the live run"
                        : "MISMATCH");
    }

    ::unlink(log_path.c_str());
    return 0;
}
