/**
 * @file
 * Cross-node failover: leadership survives the loss of the leader
 * *node*, not just the leader variant.
 *
 * A leader engine (run in a forked child so it can be SIGKILLed like a
 * real machine loss) fans its event stream out to two receiver nodes
 * over wire protocol v3. Node 1 arms promotion: when the link stays
 * dead past promote_after, it elects its local replica, bumps the
 * epoch and stream generation, and starts shipping the promoted stream
 * to node 2 — which reconciles against the new generation and replays
 * to completion, nothing lost, nothing applied twice.
 *
 *   $ ./examples/cross_node_failover
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#include "common/clock.h"
#include "core/nvx.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"
#include "wire/receiver.h"

using namespace varan;

int
main()
{
    int gate[2];
    if (::pipe(gate) != 0)
        return 1;

    // The replicated application: a burst of work, a blocking read
    // (where the leader node will die), then a final burst.
    auto app = [gate]() -> int {
        for (int i = 0; i < 8; ++i)
            sys::vgetpid();
        char go = 0;
        sys::vread(gate[0], &go, 1);
        for (int i = 0; i < 4; ++i)
            sys::vgetpid();
        return 7;
    };

    const std::string ep1 =
        "varan-example-xnode1-" + std::to_string(::getpid());
    const std::string ep2 =
        "varan-example-xnode2-" + std::to_string(::getpid());
    auto listening1 = netio::listenAbstract(ep1);
    auto listening2 = netio::listenAbstract(ep2);
    if (!listening1.ok() || !listening2.ok())
        return 1;

    // --- the leader node, as a killable process -------------------------
    pid_t leader_node = ::fork();
    if (leader_node < 0)
        return 1;
    if (leader_node == 0) {
        core::EngineConfig config;
        config.ring.capacity = 128;
        config.shm_bytes = 16 << 20;
        config.remote.endpoints = {ep1, ep2}; // fan-out: one shipper, 2 nodes
        core::Nvx nvx(config);
        if (!nvx.start({core::VariantSpec(app).named("leader")}).isOk())
            ::_exit(1);
        nvx.wait();
        ::_exit(0);
    }

    // --- receiver node 1: promotion armed -------------------------------
    core::EngineConfig remote_config;
    remote_config.ring.capacity = 128;
    remote_config.shm_bytes = 16 << 20;
    remote_config.external_leader = true;
    core::Nvx node1(remote_config);
    if (!node1.start({core::VariantSpec(app).named("replica1")}).isOk())
        return 1;
    wire::Receiver::Options r1_opts;
    r1_opts.promote_after_ns = 500000000ULL; // 500 ms without a leader
    r1_opts.standby_peers = {ep2};           // ship onward after takeover
    r1_opts.on_promote = [](std::uint32_t epoch, std::uint32_t leader) {
        std::printf("[node1] leader node lost — promoted local variant "
                    "%u (epoch %u)\n",
                    leader, epoch);
    };
    wire::Receiver receiver1(node1.region(), &node1.layout(), r1_opts);

    // --- receiver node 2: plain observer --------------------------------
    core::Nvx node2(remote_config);
    if (!node2.start({core::VariantSpec(app).named("replica2")}).isOk())
        return 1;
    wire::Receiver receiver2(node2.region(), &node2.layout());

    auto acceptInto = [](long listen_fd, wire::Receiver &receiver) {
        if (!netio::waitReadable(static_cast<int>(listen_fd), 15000))
            return false;
        long conn =
            netio::acceptConnection(static_cast<int>(listen_fd), false);
        return conn >= 0 &&
               receiver.adopt(static_cast<int>(conn)).isOk();
    };
    if (!acceptInto(listening1.value(), receiver1) ||
        !acceptInto(listening2.value(), receiver2)) {
        return 1;
    }
    receiver1.start();
    receiver2.start();

    // Wait for the pre-crash stream to reach both nodes.
    while (receiver1.nextSeq(0) < 8 || receiver2.nextSeq(0) < 8)
        sleepNs(5000000);
    std::printf("both nodes mirrored the first %llu events (generation "
                "%u)\n",
                static_cast<unsigned long long>(receiver1.nextSeq(0)),
                receiver1.remoteHello().stream_generation);

    std::printf("killing the leader node (pid %d) mid-stream...\n",
                static_cast<int>(leader_node));
    ::kill(leader_node, SIGKILL);
    int wstatus = 0;
    ::waitpid(leader_node, &wstatus, 0);

    // Node 1 promotes on its own; accept its onward stream for node 2.
    if (!acceptInto(listening2.value(), receiver2))
        return 1;
    std::printf("[node2] rebased onto the promoted stream (generation "
                "%u)\n",
                receiver2.remoteHello().stream_generation);

    // Release the gate: only the promoted leader executes the read —
    // node 2 keeps replaying results from the wire.
    if (::write(gate[1], "g", 1) != 1)
        return 1;

    auto results1 = node1.waitFor(30000000000ULL);
    auto results2 = node2.waitFor(30000000000ULL);
    std::printf("node1 replica: %s (status %d)\n",
                results1[0].crashed ? "crashed" : "clean exit",
                results1[0].status);
    std::printf("node2 replica: %s (status %d)\n",
                results2[0].crashed ? "crashed" : "clean exit",
                results2[0].status);

    core::StatusReport status = node1.status();
    std::printf("node1 now leads: leader=%u epoch=%u generation=%u "
                "promotions=%u\n",
                status.leader, status.epoch, status.stream_generation,
                status.promotions);
    std::printf("node2 reconciled without duplication: %llu duplicates "
                "dropped, %llu rebases\n",
                static_cast<unsigned long long>(
                    receiver2.stats().duplicates_dropped),
                static_cast<unsigned long long>(
                    receiver2.stats().rebases));

    receiver1.finish();
    receiver2.finish();
    ::close(gate[0]);
    ::close(gate[1]);
    return results1[0].status == results2[0].status ? 0 : 1;
}
