/**
 * @file
 * Multi-revision execution (paper section 5.2): lighttpd-style
 * revisions 2435 and 2436 issue *different* system call sequences
 * (2436 adds getuid and getgid), which no lockstep NVX system can run
 * together. VARAN resolves the divergences with the BPF rewrite rule
 * of the paper's Listing 1, shown here verbatim.
 *
 * The rule belongs to revision 2436 — the revision whose behaviour
 * diverges — so it rides on that revision's VariantSpec rather than on
 * the whole engine: pairing 2435 with a third, rule-less revision in
 * the same engine would still hold that revision to strict lockstep.
 *
 *   $ ./examples/multi_revision
 */

#include <cstdio>
#include <fcntl.h>
#include <string>
#include <unistd.h>

#include "apps/vhttpd.h"
#include "benchutil/drivers.h"
#include "core/nvx.h"

using namespace varan;

int
main()
{
    std::string endpoint =
        "varan-example-multirev-" + std::to_string(::getpid());

    // The revisions check permissions before opening the document, so
    // serve a real file (lighttpd's behaviour).
    char docroot[] = "/tmp/varan-example-doc-XXXXXX";
    int doc = ::mkstemp(docroot);
    if (doc < 0)
        return 1;
    [[maybe_unused]] ssize_t n = ::write(doc, "<html>varan</html>", 18);
    ::close(doc);
    std::string doc_path(docroot);

    // The paper's Listing 1, verbatim.
    const char *listing1 =
        "ld event[0]\n"
        "jeq #108, getegid /* __NR_getegid */\n"
        "jeq #2, open /* __NR_open */\n"
        "jmp bad\n"
        "getegid:\n"
        "ld [0] /* offsetof(struct seccomp_data, nr) */\n"
        "jeq #102, good /* __NR_getuid */\n"
        "open:\n"
        "ld [0] /* offsetof(struct seccomp_data, nr) */\n"
        "jeq #104, good /* __NR_getgid */\n"
        "bad: ret #0 /* SECCOMP_RET_KILL */\n"
        "good: ret #0x7fff0000 /* SECCOMP_RET_ALLOW */\n";

    auto rev2435 = [endpoint, doc_path]() -> int {
        apps::vhttpd::Options o;
        o.endpoint = endpoint;
        o.docroot_file = doc_path;
        return apps::vhttpd::serve(o); // geteuid + getegid
    };
    auto rev2436 = [endpoint, doc_path]() -> int {
        apps::vhttpd::Options o;
        o.endpoint = endpoint;
        o.docroot_file = doc_path;
        o.revision.issetugid_checks = true; // + getuid + getgid
        return apps::vhttpd::serve(o);
    };

    // No engine-global rewrite_rules: the Listing 1 rule is attached to
    // revision 2436's spec only.
    auto nvx = core::Nvx::Builder()
                   .variant(core::VariantSpec(rev2435).named("2435"))
                   .variant(core::VariantSpec(rev2436)
                                .named("2436")
                                .rule(listing1))
                   .build();
    if (!nvx->start().isOk())
        return 1;

    auto load = bench::httpBench(endpoint, 2, 20);
    std::printf("served %.0f requests across revisions 2435 (leader) and "
                "2436 (follower)\n",
                load.total_ops);
    bench::httpShutdown(endpoint);
    auto results = nvx->wait();

    core::StatusReport status = nvx->status();
    std::printf("divergences resolved by the Listing 1 rule: %llu "
                "(fatal: %llu)\n",
                static_cast<unsigned long long>(
                    status.divergences_resolved),
                static_cast<unsigned long long>(status.divergences_fatal));
    for (const auto &r : results) {
        std::printf("revision %s: %s\n", r.variant == 0 ? "2435" : "2436",
                    r.crashed ? "CRASHED" : "clean exit");
    }
    ::unlink(docroot);
    return 0;
}
