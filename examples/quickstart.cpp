/**
 * @file
 * Quickstart: run two versions of a tiny application as one.
 *
 * The application opens a scratch file, reads it, reports identity —
 * under VARAN the leader executes every externally visible call while
 * the follower replays the event stream, so the pair behaves exactly
 * like a single process.
 *
 * This is the coordinator API in its smallest form: a fluent
 * Nvx::Builder assembles the engine and its VariantSpecs, run() drives
 * it, and Nvx::status() returns the one consolidated StatusReport.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include "core/nvx.h"
#include "syscalls/sys.h"

using namespace varan;

int
main()
{
    // A scratch input file both versions will "read".
    char path[] = "/tmp/varan-quickstart-XXXXXX";
    int fd = ::mkstemp(path);
    if (fd < 0)
        return 1;
    [[maybe_unused]] ssize_t n = ::write(fd, "hello nvx", 9);
    ::close(fd);
    std::string file(path);

    // The application: note it only uses the varan::sys entry points
    // (exactly the calls the binary rewriter redirects in section 3.2).
    auto app = [file]() -> int {
        core::Monitor *monitor = core::Monitor::instance();
        std::fprintf(stderr,
                     "[variant %u] starting as %s (real pid %d)\n",
                     monitor->variantId(),
                     monitor->isLeader() ? "leader" : "follower",
                     ::getpid());

        long f = sys::vopen(file.c_str(), O_RDONLY);
        char buf[16] = {};
        long got = sys::vread(static_cast<int>(f), buf, sizeof(buf));
        sys::vclose(static_cast<int>(f));

        // getpid is virtualised: every variant sees the leader's pid.
        long pid = sys::vgetpid();
        std::fprintf(stderr,
                     "[variant %u] read %ld bytes: \"%s\"; virtual pid "
                     "%ld\n",
                     monitor->variantId(), got, buf, pid);
        return static_cast<int>(got);
    };

    auto nvx = core::Nvx::Builder()
                   .ringCapacity(256) // the paper's default
                   .variant(core::VariantSpec(app).named("v1"))
                   .variant(core::VariantSpec(app).named("v2"))
                   .build();
    auto results = nvx->run();

    // One snapshot carries every statistic the engine keeps.
    core::StatusReport status = nvx->status();
    std::printf("\nengine: leader=%u, events streamed=%llu, fd "
                "transfers=%llu\n",
                status.leader,
                static_cast<unsigned long long>(status.events_streamed),
                static_cast<unsigned long long>(status.fd_transfers));
    for (const auto &r : results) {
        std::printf("variant %d: %s, status %d\n", r.variant,
                    r.crashed ? "crashed" : "exited", r.status);
    }
    ::unlink(path);
    return 0;
}
