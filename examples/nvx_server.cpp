/**
 * @file
 * A complete C10k scenario: the Redis-archetype server runs as three
 * versions (one leader, two followers) behind one endpoint while a
 * client load runs against it — the paper's core deployment model.
 *
 *   $ ./examples/nvx_server [followers] [requests-per-client]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "apps/vstore.h"
#include "benchutil/drivers.h"
#include "core/nvx.h"

using namespace varan;

int
main(int argc, char **argv)
{
    int followers = argc > 1 ? std::atoi(argv[1]) : 2;
    int requests = argc > 2 ? std::atoi(argv[2]) : 300;
    std::string endpoint =
        "varan-example-server-" + std::to_string(::getpid());

    auto server = [endpoint]() -> int {
        apps::vstore::Options o;
        o.endpoint = endpoint;
        return apps::vstore::serve(o);
    };

    core::Nvx::Builder builder;
    for (int v = 0; v <= followers; ++v) {
        builder.variant(core::VariantSpec(server).named(
            v == 0 ? "leader" : "follower-" + std::to_string(v)));
    }
    auto nvx = builder.build();
    if (!nvx->start().isOk())
        return 1;
    std::printf("vstore running as %d versions (leader + %d followers) "
                "on @%s\n",
                followers + 1, followers, endpoint.c_str());

    auto load = bench::kvBench(endpoint, 4, requests);
    std::printf("workload: %.0f ops at %.0f ops/s (p50 %.1f us, p99 %.1f "
                "us)\n",
                load.total_ops, load.ops_per_sec, load.latency_us_p50,
                load.latency_us_p99);
    core::StatusReport status = nvx->status();
    std::printf("events streamed: %llu; descriptor transfers: %llu\n",
                static_cast<unsigned long long>(status.events_streamed),
                static_cast<unsigned long long>(status.fd_transfers));

    bench::kvShutdown(endpoint);
    auto results = nvx->wait();
    for (const auto &r : results) {
        std::printf("variant %d: %s\n", r.variant,
                    r.crashed ? "crashed" : "clean exit");
    }
    return 0;
}
