#include "quorum/lease.h"

#include <algorithm>
#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "netio/socketio.h"
#include "wire/io.h"

namespace varan::quorum {

using wire::FrameHeader;
using wire::FrameType;

namespace {

/** Peer silence past this many heartbeat periods counts as down. */
constexpr std::uint64_t kPeerDownPeriods = 3;

/** Bound every read on a readable quorum link: a peer wedged
 *  mid-frame becomes a dropped link, never a stuck control plane. */
void
boundSocketIo(int fd)
{
    struct timeval io_timeout = {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                 sizeof(io_timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                 sizeof(io_timeout));
}

} // namespace

bool
Config::valid() const
{
    if (node_id == wire::kNoQuorumNode || members.size() < 2)
        return false;
    for (const Member &m : members) {
        if (m.id == node_id)
            return true;
    }
    return false;
}

Config
membershipFromRemote(std::uint32_t node_id,
                     const std::vector<std::string> &members)
{
    Config config;
    config.node_id = node_id;
    for (std::uint32_t i = 0; i < members.size(); ++i)
        config.members.push_back(Member{i, members[i]});
    if (node_id < members.size())
        config.listen_endpoint = members[node_id];
    return config;
}

LeaseManager::LeaseManager(Config config) : config_(std::move(config))
{
    VARAN_CHECK(config_.valid(),
                "quorum: membership must include this node and a peer");
}

LeaseManager::~LeaseManager()
{
    stop();
}

void
LeaseManager::adoptPeerLink(std::uint32_t peer_id, int fd)
{
    boundSocketIo(fd);
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = links_.find(peer_id);
    if (it != links_.end() && it->second.fd >= 0)
        ::close(it->second.fd);
    links_[peer_id] = Link{fd, monotonicNs()};
}

Status
LeaseManager::listen()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (listen_fd_ >= 0)
        return Status::ok();
    auto fd = netio::listenAbstract(config_.listen_endpoint);
    if (!fd.ok())
        return Status(Errno{fd.error().code});
    listen_fd_ = fd.value();
    return Status::ok();
}

void
LeaseManager::dialPeersLocked()
{
    for (const Member &m : config_.members) {
        // One link per pair: the lower id dials, the higher accepts.
        if (m.id == config_.node_id || m.id < config_.node_id)
            continue;
        if (m.endpoint.empty() || links_.count(m.id))
            continue;
        auto sock = netio::connectAbstract(m.endpoint, 100);
        if (!sock.ok())
            continue; // down peer: retried on the next call
        boundSocketIo(sock.value());
        links_[m.id] = Link{sock.value(), monotonicNs()};
        // Identify ourselves so the acceptor can register the link.
        const wire::LeaseBody hb = makeHeartbeatLocked(monotonicNs());
        std::uint8_t frame[wire::kLeaseFrameBytes];
        wire::encodeLeaseFrame(hb, frame);
        sendToLocked(m.id, frame, sizeof(frame));
    }
}

void
LeaseManager::dialPeers()
{
    std::lock_guard<std::mutex> guard(mutex_);
    dialPeersLocked();
}

void
LeaseManager::dropLinkLocked(std::uint32_t peer_id)
{
    auto it = links_.find(peer_id);
    if (it == links_.end())
        return;
    if (it->second.fd >= 0)
        ::close(it->second.fd);
    links_.erase(it);
    ++stats_.links_dropped;
}

void
LeaseManager::sendToLocked(std::uint32_t peer_id, const void *frame,
                           std::size_t len)
{
    auto it = links_.find(peer_id);
    if (it == links_.end())
        return;
    if (!wire::writeFull(it->second.fd, frame, len))
        dropLinkLocked(peer_id);
}

void
LeaseManager::broadcastLocked(const void *frame, std::size_t len)
{
    std::vector<std::uint32_t> dead;
    for (auto &[peer_id, link] : links_) {
        if (!wire::writeFull(link.fd, frame, len))
            dead.push_back(peer_id);
    }
    for (std::uint32_t peer_id : dead)
        dropLinkLocked(peer_id);
}

bool
LeaseManager::leaseLiveLocked(std::uint64_t now) const
{
    return lease_holder_ != wire::kNoQuorumNode &&
           now < lease_expiry_ns_;
}

std::uint32_t
LeaseManager::quorumSize() const
{
    return static_cast<std::uint32_t>(config_.members.size() / 2 + 1);
}

std::uint32_t
LeaseManager::liveMembersLocked(std::uint64_t now) const
{
    const std::uint64_t down_after =
        config_.heartbeat_ns * kPeerDownPeriods;
    std::uint32_t live = 1; // self
    for (const auto &entry : links_) {
        if (now - entry.second.last_heard_ns <= down_after)
            ++live;
    }
    return live;
}

wire::LeaseBody
LeaseManager::makeHeartbeatLocked(std::uint64_t now) const
{
    wire::LeaseBody hb = {};
    hb.term = lease_term_;
    hb.node_id = config_.node_id;
    hb.holder_id =
        leaseLiveLocked(now) ? lease_holder_ : wire::kNoQuorumNode;
    hb.generation = lease_generation_;
    hb.fenced = fenced_ ? 1 : 0;
    hb.ttl_ns = leaseLiveLocked(now) ? lease_expiry_ns_ - now : 0;
    return hb;
}

void
LeaseManager::stampLocked(ElectionState outcome, std::uint64_t term,
                          std::uint64_t grants)
{
    if (config_.trace == nullptr || !trace::enabled(*config_.trace))
        return;
    trace::stamp(*config_.trace, trace::Stage::Election,
                 static_cast<std::uint8_t>(config_.node_id), 0,
                 static_cast<std::uint32_t>(outcome), monotonicNs(),
                 term, grants);
}

std::uint64_t
LeaseManager::startElection(std::uint32_t generation)
{
    std::lock_guard<std::mutex> guard(mutex_);
    // Past anything seen or promised: a term is never reused, so a
    // grant collected for it can never collide with another winner.
    const std::uint64_t term =
        std::max(lease_term_, voted_term_) + 1;
    voted_term_ = term; // the self-vote is a promise like any other
    elect_state_ = ElectionState::Pending;
    elect_term_ = term;
    elect_generation_ = generation;
    elect_grants_.assign(1, config_.node_id);
    elect_responders_ = 0;
    ++stats_.elections;
    stampLocked(ElectionState::Pending, term, 1);

    wire::VoteBody request = {};
    request.term = term;
    request.node_id = config_.node_id;
    request.candidate_id = config_.node_id;
    request.generation = generation;
    request.kind = static_cast<std::uint8_t>(wire::VoteKind::Request);
    std::uint8_t frame[wire::kVoteFrameBytes];
    wire::encodeVoteFrame(request, frame);
    broadcastLocked(frame, sizeof(frame));

    // A one-node partition decides immediately: nobody can answer.
    if (elect_grants_.size() >= quorumSize())
        finishElectionLocked(ElectionState::Won);
    return term;
}

void
LeaseManager::finishElectionLocked(ElectionState outcome)
{
    const std::uint64_t now = monotonicNs();
    if (outcome == ElectionState::Won) {
        lease_term_ = elect_term_;
        lease_holder_ = config_.node_id;
        lease_expiry_ns_ = now + config_.lease_ttl_ns;
        lease_generation_ = elect_generation_;
        fenced_ = false;
        ++stats_.leases_won;
        // Announce immediately so followers refresh before their own
        // promote deadlines fire.
        const wire::LeaseBody hb = makeHeartbeatLocked(now);
        std::uint8_t frame[wire::kLeaseFrameBytes];
        wire::encodeLeaseFrame(hb, frame);
        broadcastLocked(frame, sizeof(frame));
    } else if (outcome == ElectionState::Lost) {
        // Could this node even *reach* a quorum? Replies (grants and
        // denies alike) prove connectivity; too few means this side of
        // a partition is the minority — fence: stop serving, keep
        // buffering, wait to hear a holder again.
        if (elect_responders_ + 1 < quorumSize()) {
            if (!fenced_) {
                warn("quorum node %u: only %u of %zu members reachable "
                     "— fencing",
                     config_.node_id, elect_responders_ + 1,
                     config_.members.size());
            }
            fenced_ = true;
        }
    }
    stampLocked(outcome, elect_term_, elect_grants_.size());
    elect_state_ = outcome;
}

void
LeaseManager::handleVoteLocked(std::uint32_t peer_id,
                               const wire::VoteBody &v)
{
    const std::uint64_t now = monotonicNs();
    switch (static_cast<wire::VoteKind>(v.kind)) {
      case wire::VoteKind::Request: {
        // One grant per term, and never against a live lease held by
        // somebody else (the holder itself may re-elect to renew).
        const bool lease_blocks =
            leaseLiveLocked(now) && lease_holder_ != v.candidate_id;
        const bool grant = v.term > voted_term_ && !lease_blocks;
        wire::VoteBody reply = {};
        reply.term = v.term;
        reply.node_id = config_.node_id;
        reply.candidate_id = v.candidate_id;
        reply.generation = v.generation;
        reply.kind = static_cast<std::uint8_t>(
            grant ? wire::VoteKind::Grant : wire::VoteKind::Deny);
        reply.voter_term = std::max(lease_term_, voted_term_);
        if (grant) {
            voted_term_ = v.term;
            ++stats_.votes_granted;
        }
        std::uint8_t frame[wire::kVoteFrameBytes];
        wire::encodeVoteFrame(reply, frame);
        sendToLocked(peer_id, frame, sizeof(frame));
        return;
      }
      case wire::VoteKind::Grant:
      case wire::VoteKind::Deny: {
        if (elect_state_ != ElectionState::Pending ||
            v.term != elect_term_) {
            return; // stale reply from an earlier round
        }
        ++elect_responders_;
        if (static_cast<wire::VoteKind>(v.kind) ==
                wire::VoteKind::Grant &&
            std::find(elect_grants_.begin(), elect_grants_.end(),
                      v.node_id) == elect_grants_.end()) {
            elect_grants_.push_back(v.node_id);
        }
        if (elect_grants_.size() >= quorumSize()) {
            finishElectionLocked(ElectionState::Won);
        } else if (elect_grants_.size() +
                       (config_.members.size() - 1 -
                        elect_responders_) <
                   quorumSize()) {
            // Even unanimous support from the silent rest cannot
            // reach a quorum any more.
            finishElectionLocked(ElectionState::Lost);
        }
        return;
      }
    }
}

void
LeaseManager::handleLeaseLocked(std::uint32_t peer_id,
                                const wire::LeaseBody &l)
{
    const std::uint64_t now = monotonicNs();
    if (l.holder_id != wire::kNoQuorumNode && l.term >= lease_term_) {
        // A lease at least as new as anything this node has seen:
        // adopt it. Hearing a quorum-backed holder is also exactly
        // what un-fences a healed minority node.
        const bool superseded =
            lease_holder_ == config_.node_id && l.term > lease_term_;
        if (superseded) {
            inform("quorum node %u: lease term %llu superseded by "
                   "node %u term %llu",
                   config_.node_id,
                   static_cast<unsigned long long>(lease_term_),
                   l.holder_id,
                   static_cast<unsigned long long>(l.term));
        }
        lease_term_ = l.term;
        lease_holder_ = l.holder_id;
        lease_generation_ = l.generation;
        lease_expiry_ns_ =
            now + (l.node_id == l.holder_id ? config_.lease_ttl_ns
                                            : l.ttl_ns);
        voted_term_ = std::max(voted_term_, l.term);
        // Hearing a live holder's own heartbeat proves this node is
        // connected to the quorum that elected it (or to a holder
        // whose stale lease will expire in one TTL — a promotion
        // attempt would just re-fence). A failed candidacy must not
        // block the rejoin, so the node's own voted_term_ promise is
        // deliberately not compared here.
        if (fenced_ && l.node_id == l.holder_id) {
            inform("quorum node %u: rejoined the majority (holder %u "
                   "term %llu) — unfencing",
                   config_.node_id, l.holder_id,
                   static_cast<unsigned long long>(l.term));
            fenced_ = false;
        }
    } else if (l.node_id == l.holder_id && l.term < lease_term_ &&
               lease_holder_ == config_.node_id &&
               leaseLiveLocked(now)) {
        // A healed node still announcing holdership of a stale term:
        // order it aside. This is the split-brain closer for a
        // minority that won an old lease before the partition.
        wire::FenceBody fence = {};
        fence.term = lease_term_;
        fence.node_id = config_.node_id;
        fence.target_id = l.node_id;
        fence.generation = lease_generation_;
        fence.reason =
            static_cast<std::uint32_t>(wire::FenceReason::StaleTerm);
        std::uint8_t frame[wire::kFenceFrameBytes];
        wire::encodeFenceFrame(fence, frame);
        sendToLocked(peer_id, frame, sizeof(frame));
        ++stats_.fences_sent;
    }
}

void
LeaseManager::handleFenceLocked(const wire::FenceBody &f)
{
    if (f.target_id != config_.node_id || f.term < lease_term_)
        return;
    warn("quorum node %u: fenced by node %u (term %llu, reason %u)",
         config_.node_id, f.node_id,
         static_cast<unsigned long long>(f.term), f.reason);
    lease_term_ = f.term;
    lease_holder_ = f.node_id;
    lease_generation_ = f.generation;
    lease_expiry_ns_ = monotonicNs() + config_.lease_ttl_ns;
    voted_term_ = std::max(voted_term_, f.term);
    fenced_ = true;
    ++stats_.fences_received;
    stampLocked(ElectionState::Lost, f.term, 0);
}

bool
LeaseManager::readFrameLocked(std::uint32_t peer_id)
{
    auto it = links_.find(peer_id);
    if (it == links_.end())
        return false;
    const int fd = it->second.fd;
    FrameHeader header = {};
    if (!wire::readFull(fd, &header, sizeof(header)))
        return false;
    if (!wire::headerValid(header))
        return false;
    std::uint8_t body[64];
    if (header.body_len > sizeof(body))
        return false;
    if (header.body_len > 0 &&
        !wire::readFull(fd, body, header.body_len)) {
        return false;
    }
    it->second.last_heard_ns = monotonicNs();
    ++stats_.frames;
    switch (static_cast<FrameType>(header.type)) {
      case FrameType::Vote: {
        wire::VoteBody v = {};
        if (!wire::decodeVoteFrame(header, body, header.body_len, &v))
            return false;
        handleVoteLocked(peer_id, v);
        return true;
      }
      case FrameType::Lease: {
        wire::LeaseBody l = {};
        if (!wire::decodeLeaseFrame(header, body, header.body_len, &l))
            return false;
        handleLeaseLocked(peer_id, l);
        return true;
      }
      case FrameType::Fence: {
        wire::FenceBody f = {};
        if (!wire::decodeFenceFrame(header, body, header.body_len, &f))
            return false;
        handleFenceLocked(f);
        return true;
      }
      default:
        // Data-plane frames do not belong on a quorum link.
        return false;
    }
}

bool
LeaseManager::identifyLocked(int fd, std::uint32_t *peer_out)
{
    // Every quorum body leads with (term, node_id): peek the header,
    // read the body, and register the sender. The frame itself is then
    // handled normally so nothing is lost.
    FrameHeader header = {};
    if (!wire::readFull(fd, &header, sizeof(header)))
        return false;
    if (!wire::headerValid(header) || header.body_len > 64 ||
        header.body_len < 16) {
        return false;
    }
    std::uint8_t body[64];
    if (!wire::readFull(fd, body, header.body_len))
        return false;
    if (header.body_crc != wire::bodyChecksum(body, header.body_len))
        return false;
    std::uint32_t peer_id = wire::kNoQuorumNode;
    std::memcpy(&peer_id, body + sizeof(std::uint64_t),
                sizeof(peer_id));
    bool known = false;
    for (const Member &m : config_.members)
        known = known || (m.id == peer_id && m.id != config_.node_id);
    if (!known)
        return false;
    auto it = links_.find(peer_id);
    if (it != links_.end() && it->second.fd >= 0)
        ::close(it->second.fd);
    links_[peer_id] = Link{fd, monotonicNs()};
    ++stats_.frames;
    switch (static_cast<FrameType>(header.type)) {
      case FrameType::Vote: {
        wire::VoteBody v = {};
        if (wire::decodeVoteFrame(header, body, header.body_len, &v))
            handleVoteLocked(peer_id, v);
        break;
      }
      case FrameType::Lease: {
        wire::LeaseBody l = {};
        if (wire::decodeLeaseFrame(header, body, header.body_len, &l))
            handleLeaseLocked(peer_id, l);
        break;
      }
      case FrameType::Fence: {
        wire::FenceBody f = {};
        if (wire::decodeFenceFrame(header, body, header.body_len, &f))
            handleFenceLocked(f);
        break;
      }
      default:
        break;
    }
    *peer_out = peer_id;
    return true;
}

void
LeaseManager::pumpLocked(int timeout_ms)
{
    // One poll set: the listener, identified peers, pending inbounds.
    std::vector<struct pollfd> pfds;
    std::vector<std::uint32_t> owners; // peer id, or sentinels below
    constexpr std::uint32_t kListener = 0xfffffffe;
    for (const auto &[peer_id, link] : links_) {
        pfds.push_back({link.fd, POLLIN, 0});
        owners.push_back(peer_id);
    }
    for (int fd : unidentified_) {
        pfds.push_back({fd, POLLIN, 0});
        owners.push_back(wire::kNoQuorumNode);
    }
    if (listen_fd_ >= 0) {
        pfds.push_back({listen_fd_, POLLIN, 0});
        owners.push_back(kListener);
    }
    if (pfds.empty())
        return;
    int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n <= 0)
        return;

    std::vector<std::uint32_t> dead_peers;
    std::vector<int> dead_inbound;
    std::vector<int> identified;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (!(pfds[i].revents & (POLLIN | POLLERR | POLLHUP)))
            continue;
        if (owners[i] == kListener) {
            long conn = netio::acceptConnection(listen_fd_, false);
            if (conn >= 0) {
                boundSocketIo(static_cast<int>(conn));
                unidentified_.push_back(static_cast<int>(conn));
            }
            continue;
        }
        if (owners[i] == wire::kNoQuorumNode) {
            std::uint32_t peer_id = wire::kNoQuorumNode;
            if (!identifyLocked(pfds[i].fd, &peer_id))
                dead_inbound.push_back(pfds[i].fd);
            else
                identified.push_back(pfds[i].fd);
            continue;
        }
        // Drain everything already buffered on this link so a burst
        // of votes is handled in one pump.
        for (;;) {
            if (!readFrameLocked(owners[i])) {
                dead_peers.push_back(owners[i]);
                break;
            }
            struct pollfd again = {pfds[i].fd, POLLIN, 0};
            if (::poll(&again, 1, 0) <= 0 || !(again.revents & POLLIN))
                break;
        }
    }
    for (std::uint32_t peer_id : dead_peers)
        dropLinkLocked(peer_id);
    for (int fd : dead_inbound) {
        ::close(fd);
        unidentified_.erase(std::remove(unidentified_.begin(),
                                        unidentified_.end(), fd),
                            unidentified_.end());
    }
    for (int fd : identified) {
        unidentified_.erase(std::remove(unidentified_.begin(),
                                        unidentified_.end(), fd),
                            unidentified_.end());
    }
}

void
LeaseManager::pumpOnce(int timeout_ms)
{
    std::lock_guard<std::mutex> guard(mutex_);
    pumpLocked(timeout_ms);
}

void
LeaseManager::heartbeatLocked()
{
    const wire::LeaseBody hb = makeHeartbeatLocked(monotonicNs());
    std::uint8_t frame[wire::kLeaseFrameBytes];
    wire::encodeLeaseFrame(hb, frame);
    broadcastLocked(frame, sizeof(frame));
    ++stats_.heartbeats_sent;
}

void
LeaseManager::heartbeat()
{
    std::lock_guard<std::mutex> guard(mutex_);
    heartbeatLocked();
}

std::uint64_t
LeaseManager::acquire(std::uint32_t generation)
{
    const std::uint64_t term = startElection(generation);
    const std::uint64_t deadline =
        monotonicNs() + config_.vote_timeout_ns;
    for (;;) {
        {
            std::lock_guard<std::mutex> guard(mutex_);
            if (elect_state_ == ElectionState::Won)
                return term;
            if (elect_state_ == ElectionState::Lost)
                return 0;
            if (monotonicNs() >= deadline) {
                finishElectionLocked(ElectionState::Lost);
                return 0;
            }
        }
        pumpOnce(5);
    }
}

void
LeaseManager::serveLoop()
{
    std::uint64_t last_beat = 0;
    while (!stopping_.load(std::memory_order_acquire)) {
        bool renew = false;
        std::uint32_t generation = 0;
        {
            std::lock_guard<std::mutex> guard(mutex_);
            const std::uint64_t now = monotonicNs();
            if (now - last_beat >= config_.heartbeat_ns) {
                dialPeersLocked();
                heartbeatLocked();
                last_beat = now;
            }
            pumpLocked(0);
            // A holder must *re-earn* its lease from the quorum before
            // expiry — never self-extend. A healthy holder renews
            // seamlessly (peers always grant the incumbent a fresh
            // term); a partitioned holder fails renewal, fences, and
            // its stale lease lapses within one TTL.
            if (lease_holder_ == config_.node_id &&
                leaseLiveLocked(now) &&
                lease_expiry_ns_ - now <= config_.lease_ttl_ns / 2 &&
                elect_state_ != ElectionState::Pending) {
                renew = true;
                generation = lease_generation_;
            }
        }
        if (renew)
            acquire(generation);
        sleepNs(2'000'000);
    }
}

void
LeaseManager::start()
{
    VARAN_CHECK(!thread_.joinable());
    stopping_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { serveLoop(); });
}

void
LeaseManager::stop()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &entry : links_) {
        if (entry.second.fd >= 0)
            ::close(entry.second.fd);
    }
    links_.clear();
    for (int fd : unidentified_)
        ::close(fd);
    unidentified_.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

LeaseManager::ElectionState
LeaseManager::electionState() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return elect_state_;
}

bool
LeaseManager::holdsLease() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return lease_holder_ == config_.node_id &&
           leaseLiveLocked(monotonicNs());
}

bool
LeaseManager::fenced() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return fenced_;
}

std::uint64_t
LeaseManager::term() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return lease_term_;
}

std::uint32_t
LeaseManager::holder() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return leaseLiveLocked(monotonicNs()) ? lease_holder_
                                          : wire::kNoQuorumNode;
}

std::uint32_t
LeaseManager::liveMembers() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return liveMembersLocked(monotonicNs());
}

void
LeaseManager::fillStatus(core::QuorumStatus *out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    const std::uint64_t now = monotonicNs();
    out->active = 1;
    out->node_id = config_.node_id;
    out->members = static_cast<std::uint32_t>(config_.members.size());
    out->live_members = liveMembersLocked(now);
    out->holder =
        leaseLiveLocked(now) ? lease_holder_ : wire::kNoQuorumNode;
    out->fenced = fenced_ ? 1 : 0;
    out->term = lease_term_;
    out->elections = stats_.elections;
    out->leases_won = stats_.leases_won;
    out->votes_granted = stats_.votes_granted;
    out->fences = stats_.fences_received;
}

LeaseManager::Stats
LeaseManager::stats() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
}

} // namespace varan::quorum
