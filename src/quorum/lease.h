/**
 * @file
 * The quorum control plane (wire protocol v6): a lease-based leader
 * election among receiver nodes.
 *
 * Cross-node promotion (wire/receiver.h) used to be a per-node
 * watchdog: whichever receiver's `promote_after` deadline fired first
 * bumped the stream generation, and arming it on two nodes could
 * split-brain the fleet into divergent generations. The LeaseManager
 * closes that hole with the smallest state machine that does the job:
 *
 *  - Every member of a configured, fixed membership heartbeats a
 *    Lease frame to every peer, carrying the lease holder and term it
 *    believes in. The holder's own heartbeat is what refreshes the
 *    lease fleet-wide.
 *  - A candidate wanting to promote runs one election round: it picks
 *    a fresh term (past anything it has seen or promised), votes for
 *    itself, and sends Vote Requests to every peer. A peer grants at
 *    most one candidate per term and denies while an unexpired lease
 *    is held by someone else — so two dueling candidates can never
 *    both collect a quorum for the same term.
 *  - Only a candidate holding grants from a quorum (a strict majority
 *    of the membership, counting itself) may bump epoch/generation —
 *    the receiver's promotion path calls acquire() *before* the bump.
 *  - A node that cannot reach a quorum fences itself: it stops
 *    serving (refuses promotion, reports `fenced` in StatusReport)
 *    but keeps buffering, so a healed partition rejoins by rebasing
 *    instead of fighting. A quorum-backed holder also sends explicit
 *    Fence orders to any healed minority node still announcing a
 *    stale lease.
 *
 * Elections are split-phase (startElection / pumpOnce / electionState)
 * precisely so tests can drive every message interleaving by hand
 * through the FaultLink harness; acquire() is the blocking wrapper the
 * receiver uses. Peer links are ordinary framed sockets — injected
 * directly (adoptPeerLink) in tests and benches, or dialed/accepted
 * over abstract-namespace endpoints in a deployment (listen/dialPeers,
 * where the lower node id dials so each pair keeps one link).
 */

#ifndef VARAN_QUORUM_LEASE_H
#define VARAN_QUORUM_LEASE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "core/status.h"
#include "trace/trace.h"
#include "wire/protocol.h"

namespace varan::quorum {

/** One member of the fixed quorum membership. */
struct Member {
    std::uint32_t id = wire::kNoQuorumNode;
    std::string endpoint; ///< abstract-socket name (may be empty in tests)
};

struct Config {
    std::uint32_t node_id = wire::kNoQuorumNode; ///< this node's identity
    /** The full membership, this node included. Quorum is a strict
     *  majority of its size; sizing guidance lives in the README
     *  ("Operating a multi-node deployment"). */
    std::vector<Member> members;
    /** Abstract-socket endpoint this node accepts peer links on; empty
     *  when links are injected (adoptPeerLink). */
    std::string listen_endpoint;
    std::uint64_t lease_ttl_ns = 2'000'000'000;  ///< lease validity
    std::uint64_t heartbeat_ns = 200'000'000;    ///< Lease broadcast period
    std::uint64_t vote_timeout_ns = 500'000'000; ///< acquire() round bound
    /** Optional flight recorder: election rounds stamp Stage::Election
     *  records here (a = term, b = grants, code = outcome). */
    trace::TraceBlock *trace = nullptr;

    /** A usable membership: this node is one of at least two members. */
    bool valid() const;
};

/**
 * Build a Config from the engine-level membership spelling
 * (core::RemoteConfig::quorum_members / quorum_node_id): one quorum
 * endpoint per node id, this node's id as the index. The returned
 * config listens on its own member endpoint.
 */
Config membershipFromRemote(std::uint32_t node_id,
                            const std::vector<std::string> &members);

class LeaseManager
{
  public:
    /** Election-round outcome codes, also the `code` field of the
     *  Stage::Election trace stamps this class writes. */
    enum class ElectionState : std::uint32_t {
        Idle = 0,    ///< no round in flight
        Pending = 1, ///< requests sent, quorum not yet decided
        Won = 2,     ///< a quorum granted the term
        Lost = 3,    ///< denied, superseded, or timed out
    };

    struct Stats {
        std::uint64_t elections = 0;     ///< rounds started
        std::uint64_t leases_won = 0;    ///< rounds that reached quorum
        std::uint64_t votes_granted = 0; ///< grants handed to peers
        std::uint64_t fences_received = 0;
        std::uint64_t fences_sent = 0;
        std::uint64_t heartbeats_sent = 0;
        std::uint64_t frames = 0;        ///< quorum frames processed
        std::uint64_t links_dropped = 0;
    };

    explicit LeaseManager(Config config);
    ~LeaseManager();

    VARAN_NO_COPY_NO_MOVE(LeaseManager);

    /** Use @p fd (owned from here on) as the link to peer @p peer_id.
     *  Replaces and closes any existing link to that peer. */
    void adoptPeerLink(std::uint32_t peer_id, int fd);

    /** Open Config::listen_endpoint for inbound peer links. */
    Status listen();

    /** Dial every member this node has no live link to (lower id
     *  dials, so each pair keeps exactly one link). Safe to call
     *  repeatedly; failures are retried on the next call. */
    void dialPeers();

    /** Start the background pump + heartbeat thread. A lease-holding
     *  node also renews through it: the holder re-runs the quorum
     *  before its lease half-expires (it never self-extends), so a
     *  holder partitioned away fences and lapses within one TTL. */
    void start();

    /** Stop the background thread and close every link. */
    void stop();

    /**
     * One blocking election round: startElection(), then pump until
     * the round is decided or Config::vote_timeout_ns passes.
     * @return the granted term, or 0 when no quorum granted it. A
     * round that could not even *reach* a quorum of the membership
     * fences this node.
     */
    std::uint64_t acquire(std::uint32_t generation);

    // --- split-phase election (deterministic test drivers) ---

    /** Send Vote Requests for a fresh term to every peer (self-vote
     *  included). @return the term proposed. */
    std::uint64_t startElection(std::uint32_t generation);

    /** Accept inbound links and process pending quorum frames; waits
     *  up to @p timeout_ms for the first readable link. */
    void pumpOnce(int timeout_ms);

    /** Broadcast one Lease heartbeat now. */
    void heartbeat();

    ElectionState electionState() const;

    // --- lease + fence state ---

    bool holdsLease() const;  ///< self holds an unexpired lease
    bool fenced() const;      ///< partitioned off the quorum: not serving
    std::uint64_t term() const;   ///< highest lease term seen
    std::uint32_t holder() const; ///< live holder, kNoQuorumNode if none
    std::uint32_t quorumSize() const; ///< strict majority of the membership
    std::uint32_t liveMembers() const; ///< members heard from, incl. self

    void fillStatus(core::QuorumStatus *out) const;
    Stats stats() const;

  private:
    struct Link {
        int fd = -1;
        std::uint64_t last_heard_ns = 0;
    };

    void pumpLocked(int timeout_ms);
    void heartbeatLocked();
    void dialPeersLocked();
    bool readFrameLocked(std::uint32_t peer_id);
    /** Read one frame from a not-yet-identified inbound link; registers
     *  the peer on success. @return false when the link must close. */
    bool identifyLocked(int fd, std::uint32_t *peer_out);
    void handleVoteLocked(std::uint32_t peer_id, const wire::VoteBody &v);
    void handleLeaseLocked(std::uint32_t peer_id, const wire::LeaseBody &l);
    void handleFenceLocked(const wire::FenceBody &f);
    void finishElectionLocked(ElectionState outcome);
    bool leaseLiveLocked(std::uint64_t now) const;
    std::uint32_t liveMembersLocked(std::uint64_t now) const;
    void sendToLocked(std::uint32_t peer_id, const void *frame,
                      std::size_t len);
    void broadcastLocked(const void *frame, std::size_t len);
    void dropLinkLocked(std::uint32_t peer_id);
    wire::LeaseBody makeHeartbeatLocked(std::uint64_t now) const;
    void stampLocked(ElectionState outcome, std::uint64_t term,
                     std::uint64_t grants);
    void serveLoop();

    Config config_;
    std::map<std::uint32_t, Link> links_;
    /** Accepted inbound links whose first frame has not arrived yet. */
    std::vector<int> unidentified_;
    int listen_fd_ = -1;

    // Lease view: the newest (term, holder) this node believes in.
    std::uint64_t lease_term_ = 0;
    std::uint32_t lease_holder_ = wire::kNoQuorumNode;
    std::uint64_t lease_expiry_ns_ = 0;
    std::uint32_t lease_generation_ = 0; ///< quorum-stamped generation
    /** Highest term this node promised (granted or self-voted): the
     *  one-grant-per-term invariant lives here. */
    std::uint64_t voted_term_ = 0;
    bool fenced_ = false;

    // The in-flight election round, if any.
    ElectionState elect_state_ = ElectionState::Idle;
    std::uint64_t elect_term_ = 0;
    std::uint32_t elect_generation_ = 0;
    std::vector<std::uint32_t> elect_grants_; ///< voters incl. self
    std::uint32_t elect_responders_ = 0;      ///< replies received

    std::atomic<bool> stopping_{false};
    std::thread thread_;
    mutable std::mutex mutex_;
    Stats stats_;
};

} // namespace varan::quorum

#endif // VARAN_QUORUM_LEASE_H
