#include "ring/ring_buffer.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/clock.h"
#include "common/futex.h"

namespace varan::ring {

namespace {

constexpr std::size_t kControlSize =
    (sizeof(RingControl) + kCacheLineSize - 1) & ~(kCacheLineSize - 1);

bool
deadlinePassed(std::uint64_t deadline_ns)
{
    return deadline_ns != 0 && monotonicNs() >= deadline_ns;
}

std::uint64_t
deadlineFor(const WaitSpec &wait)
{
    return wait.timeout_ns == 0 ? 0 : monotonicNs() + wait.timeout_ns;
}

} // namespace

RingBuffer::RingBuffer(const shmem::Region *region, shmem::Offset off)
    : region_(region), off_(off)
{
}

std::size_t
RingBuffer::bytesRequired(std::uint32_t capacity)
{
    return kControlSize + static_cast<std::size_t>(capacity) * sizeof(Event);
}

RingBuffer
RingBuffer::initialize(const shmem::Region *region, shmem::Offset off,
                       std::uint32_t capacity)
{
    VARAN_CHECK(capacity > 0 && (capacity & (capacity - 1)) == 0);
    auto *ctl = new (region->bytesAt(off, sizeof(RingControl))) RingControl();
    ctl->capacity = capacity;
    ctl->mask = capacity - 1;
    ctl->head.store(0, std::memory_order_relaxed);
    ctl->data_seq.store(0, std::memory_order_relaxed);
    ctl->consumers_waiting.store(0, std::memory_order_relaxed);
    ctl->space_seq.store(0, std::memory_order_relaxed);
    ctl->producer_waiting.store(0, std::memory_order_relaxed);
    ctl->attach_bitmap.store(0, std::memory_order_relaxed);
    for (auto &cur : ctl->cursors) {
        cur.seq.store(0, std::memory_order_relaxed);
        cur.active.store(0, std::memory_order_relaxed);
    }
    return RingBuffer(region, off);
}

RingControl *
RingBuffer::control() const
{
    return region_->at<RingControl>(off_);
}

Event *
RingBuffer::slots() const
{
    return static_cast<Event *>(
        region_->bytesAt(off_ + kControlSize,
                         static_cast<std::size_t>(control()->capacity) *
                             sizeof(Event)));
}

std::uint64_t
RingBuffer::gatingSequence(std::uint64_t head) const
{
    RingControl *ctl = control();
    std::uint64_t min_seq = head;
    for (std::uint32_t i = 0; i < kMaxConsumers; ++i) {
        const ConsumerCursor &cur = ctl->cursors[i];
        if (!cur.active.load(std::memory_order_acquire))
            continue;
        std::uint64_t s = cur.seq.load(std::memory_order_acquire);
        if (s < min_seq)
            min_seq = s;
    }
    return min_seq;
}

void
RingBuffer::copyOut(std::uint64_t from_seq, Event *out, std::size_t n) const
{
    RingControl *ctl = control();
    const std::uint64_t idx = from_seq & ctl->mask;
    const std::size_t first = std::min<std::size_t>(n, ctl->capacity - idx);
    std::memcpy(out, slots() + idx, first * sizeof(Event));
    if (n > first)
        std::memcpy(out + first, slots(), (n - first) * sizeof(Event));
}

std::uint64_t
RingBuffer::awaitSpace(std::uint64_t deadline, const WaitSpec &wait,
                       std::uint64_t min_free)
{
    RingControl *ctl = control();
    const std::uint64_t seq = ctl->head.load(std::memory_order_relaxed);

    // Gate on the slowest active consumer; followers that crash get
    // deactivated by the coordinator so they stop holding us back.
    std::uint32_t spins = 0;
    for (;;) {
        const std::uint64_t used = seq - gatingSequence(seq);
        if (used + min_free <= ctl->capacity)
            return ctl->capacity - used;
        if (deadlinePassed(deadline))
            return 0;
        if (wait.busy_only || spins++ < wait.spin_iterations) {
            __builtin_ia32_pause();
            continue;
        }
        ctl->producer_waiting.store(1, std::memory_order_seq_cst);
        // Re-check after announcing, otherwise a consumer that advanced
        // in between would leave us sleeping forever.
        if (seq - gatingSequence(seq) + min_free <= ctl->capacity) {
            ctl->producer_waiting.store(0, std::memory_order_release);
            continue;
        }
        std::uint32_t observed =
            ctl->space_seq.load(std::memory_order_acquire);
        if (seq - gatingSequence(seq) + min_free <= ctl->capacity) {
            ctl->producer_waiting.store(0, std::memory_order_release);
            continue;
        }
        futexWait(&ctl->space_seq, observed, 1000000); // 1 ms tick
        ctl->producer_waiting.store(0, std::memory_order_release);
    }
}

bool
RingBuffer::publish(const Event &event, const WaitSpec &wait)
{
    RingControl *ctl = control();
    if (awaitSpace(deadlineFor(wait), wait) == 0)
        return false;

    const std::uint64_t seq = ctl->head.load(std::memory_order_relaxed);
    slots()[seq & ctl->mask] = event;
    ctl->head.store(seq + 1, std::memory_order_release);
    ctl->data_seq.fetch_add(1, std::memory_order_release);
    if (ctl->consumers_waiting.load(std::memory_order_seq_cst) > 0)
        futexWake(&ctl->data_seq, kMaxConsumers);
    return true;
}

std::size_t
RingBuffer::publishBatch(std::span<const Event> events, const WaitSpec &wait)
{
    const std::uint64_t deadline = deadlineFor(wait);
    std::size_t published = 0;

    while (published < events.size()) {
        const std::uint64_t free = awaitSpace(deadline, wait);
        if (free == 0)
            break;
        const std::size_t n = std::min<std::size_t>(
            free, events.size() - published);
        commit({events.data() + published, n});
        published += n;
    }
    return published;
}

bool
RingBuffer::claim(std::size_t count, std::uint64_t *seq_out,
                  const WaitSpec &wait)
{
    RingControl *ctl = control();
    VARAN_CHECK(count >= 1 && count <= ctl->capacity);
    if (awaitSpace(deadlineFor(wait), wait, count) == 0)
        return false;
    if (seq_out)
        *seq_out = ctl->head.load(std::memory_order_relaxed);
    return true;
}

void
RingBuffer::commit(std::span<const Event> events)
{
    RingControl *ctl = control();
    const std::size_t n = events.size();
    const std::uint64_t seq = ctl->head.load(std::memory_order_relaxed);
    const std::uint64_t idx = seq & ctl->mask;
    const std::size_t first = std::min<std::size_t>(n, ctl->capacity - idx);
    std::memcpy(slots() + idx, events.data(), first * sizeof(Event));
    if (n > first)
        std::memcpy(slots(), events.data() + first,
                    (n - first) * sizeof(Event));
    ctl->head.store(seq + n, std::memory_order_release);
    ctl->data_seq.fetch_add(static_cast<std::uint32_t>(n),
                            std::memory_order_release);
    if (ctl->consumers_waiting.load(std::memory_order_seq_cst) > 0)
        futexWake(&ctl->data_seq, kMaxConsumers);
}

std::uint64_t
RingBuffer::headSeq() const
{
    return control()->head.load(std::memory_order_acquire);
}

std::uint32_t
RingBuffer::consumersWaiting() const
{
    return control()->consumers_waiting.load(std::memory_order_acquire);
}

int
RingBuffer::attachConsumer()
{
    RingControl *ctl = control();
    for (std::uint32_t i = 0; i < kMaxConsumers; ++i) {
        std::uint32_t bit = 1u << i;
        std::uint32_t old = ctl->attach_bitmap.fetch_or(
            bit, std::memory_order_acq_rel);
        if (!(old & bit)) {
            // Start reading at the current head: a late-attaching
            // consumer must not see stale history.
            ctl->cursors[i].seq.store(
                ctl->head.load(std::memory_order_acquire),
                std::memory_order_release);
            ctl->cursors[i].active.store(1, std::memory_order_release);
            return static_cast<int>(i);
        }
    }
    return -1;
}

bool
RingBuffer::attachConsumerAt(int id)
{
    RingControl *ctl = control();
    VARAN_CHECK(id >= 0 && id < static_cast<int>(kMaxConsumers));
    std::uint32_t bit = 1u << id;
    std::uint32_t old =
        ctl->attach_bitmap.fetch_or(bit, std::memory_order_acq_rel);
    if (old & bit)
        return false;
    ctl->cursors[id].seq.store(ctl->head.load(std::memory_order_acquire),
                               std::memory_order_release);
    ctl->cursors[id].active.store(1, std::memory_order_release);
    return true;
}

void
RingBuffer::detachConsumer(int id)
{
    RingControl *ctl = control();
    VARAN_CHECK(id >= 0 && id < static_cast<int>(kMaxConsumers));
    ctl->cursors[id].active.store(0, std::memory_order_release);
    ctl->attach_bitmap.fetch_and(~(1u << id), std::memory_order_acq_rel);
    // The producer may be blocked waiting for this consumer's cursor.
    ctl->space_seq.fetch_add(1, std::memory_order_release);
    futexWake(&ctl->space_seq, 1);
}

std::uint64_t
RingBuffer::awaitData(int id, std::uint64_t deadline, const WaitSpec &wait)
{
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    const std::uint64_t c = cur.seq.load(std::memory_order_relaxed);

    std::uint32_t spins = 0;
    for (;;) {
        const std::uint64_t head =
            ctl->head.load(std::memory_order_acquire);
        if (head > c)
            return head - c;
        if (deadlinePassed(deadline))
            return 0;
        if (wait.busy_only || spins++ < wait.spin_iterations) {
            __builtin_ia32_pause();
            continue;
        }
        // Waitlock path (section 3.3.1): sleep until the leader wakes us.
        ctl->consumers_waiting.fetch_add(1, std::memory_order_seq_cst);
        std::uint32_t observed =
            ctl->data_seq.load(std::memory_order_acquire);
        if (ctl->head.load(std::memory_order_acquire) > c) {
            ctl->consumers_waiting.fetch_sub(1, std::memory_order_release);
            continue;
        }
        futexWait(&ctl->data_seq, observed, 1000000); // 1 ms tick
        ctl->consumers_waiting.fetch_sub(1, std::memory_order_release);
    }
}

void
RingBuffer::releaseSlots(ConsumerCursor &cur, std::uint64_t next_seq)
{
    RingControl *ctl = control();
    cur.seq.store(next_seq, std::memory_order_release);
    ctl->space_seq.fetch_add(1, std::memory_order_release);
    if (ctl->producer_waiting.load(std::memory_order_seq_cst))
        futexWake(&ctl->space_seq, 1);
}

bool
RingBuffer::poll(int id, Event *out)
{
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    std::uint64_t c = cur.seq.load(std::memory_order_relaxed);
    if (ctl->head.load(std::memory_order_acquire) <= c)
        return false;
    *out = slots()[c & ctl->mask];
    releaseSlots(cur, c + 1);
    return true;
}

std::size_t
RingBuffer::pollBatch(int id, Event *out, std::size_t max)
{
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    const std::uint64_t c = cur.seq.load(std::memory_order_relaxed);
    const std::uint64_t head = ctl->head.load(std::memory_order_acquire);
    if (head <= c || max == 0)
        return 0;
    const std::size_t n = std::min<std::size_t>(head - c, max);
    copyOut(c, out, n);
    releaseSlots(cur, c + n);
    return n;
}

bool
RingBuffer::consume(int id, Event *out, const WaitSpec &wait)
{
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    std::uint64_t c = cur.seq.load(std::memory_order_relaxed);
    if (awaitData(id, deadlineFor(wait), wait) == 0)
        return false;
    *out = slots()[c & ctl->mask];
    releaseSlots(cur, c + 1);
    return true;
}

std::size_t
RingBuffer::consumeBatch(int id, Event *out, std::size_t max,
                         const WaitSpec &wait)
{
    if (max == 0)
        return 0;
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    const std::uint64_t c = cur.seq.load(std::memory_order_relaxed);
    const std::uint64_t avail = awaitData(id, deadlineFor(wait), wait);
    if (avail == 0)
        return 0;
    const std::size_t n = std::min<std::size_t>(avail, max);
    copyOut(c, out, n);
    releaseSlots(cur, c + n);
    return n;
}

bool
RingBuffer::peek(int id, Event *out, const WaitSpec &wait)
{
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    std::uint64_t c = cur.seq.load(std::memory_order_relaxed);
    if (awaitData(id, deadlineFor(wait), wait) == 0)
        return false;
    *out = slots()[c & ctl->mask];
    return true;
}

void
RingBuffer::advance(int id)
{
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    std::uint64_t c = cur.seq.load(std::memory_order_relaxed);
    releaseSlots(cur, c + 1);
}

std::size_t
RingBuffer::peekBatch(int id, Event *out, std::size_t max,
                      const WaitSpec &wait)
{
    if (max == 0)
        return 0;
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    const std::uint64_t c = cur.seq.load(std::memory_order_relaxed);
    const std::uint64_t avail = awaitData(id, deadlineFor(wait), wait);
    if (avail == 0)
        return 0;
    const std::size_t n = std::min<std::size_t>(avail, max);
    copyOut(c, out, n);
    // Cursor untouched: the run stays claimed (and any pool payloads it
    // references stay alive) until advance()/advanceBy().
    return n;
}

void
RingBuffer::advanceBy(int id, std::size_t n)
{
    if (n == 0)
        return;
    RingControl *ctl = control();
    ConsumerCursor &cur = ctl->cursors[id];
    std::uint64_t c = cur.seq.load(std::memory_order_relaxed);
    releaseSlots(cur, c + n);
}

std::uint64_t
RingBuffer::lag(int id) const
{
    RingControl *ctl = control();
    std::uint64_t head = ctl->head.load(std::memory_order_acquire);
    std::uint64_t c = ctl->cursors[id].seq.load(std::memory_order_acquire);
    return head > c ? head - c : 0;
}

bool
RingBuffer::consumerActive(int id) const
{
    return control()->cursors[id].active.load(std::memory_order_acquire);
}

bool
PublishCoalescer::flush(const WaitSpec &wait)
{
    const std::size_t count = count_.load(std::memory_order_relaxed);
    if (count == 0)
        return true;
    const std::uint32_t capacity = ring_->capacity();
    std::size_t flushed = 0;
    while (flushed < count) {
        const std::size_t n = std::min<std::size_t>(
            count - flushed, capacity);
        std::uint64_t seq = 0;
        if (!ring_->claim(n, &seq, wait)) {
            // Keep what did not fit; the caller sees the failure and the
            // remaining run survives for the next flush attempt.
            std::memmove(pending_, pending_ + flushed,
                         (count - flushed) * sizeof(Event));
            count_.store(count - flushed, std::memory_order_release);
            return false;
        }
        if (recycler_)
            recycler_(recycler_ctx_, seq, n);
        ring_->commit({pending_ + flushed, n});
        flushed += n;
    }
    count_.store(0, std::memory_order_release);
    return true;
}

} // namespace varan::ring
