/**
 * @file
 * Wait strategies for ring-buffer producers and consumers.
 *
 * The paper's followers busy-wait for new events, falling back to a
 * futex-based "waitlock" around blocking system calls (section 3.3.1).
 * WaitSpec captures that policy: spin for a bounded number of
 * iterations, then sleep on a futex, with an optional overall deadline
 * so that nothing in VARAN can hang forever.
 */

#ifndef VARAN_RING_WAIT_H
#define VARAN_RING_WAIT_H

#include <cstdint>

namespace varan::ring {

struct WaitSpec {
    /** Busy-poll iterations before sleeping. 0 = sleep immediately. */
    std::uint32_t spin_iterations = 2048;
    /** Overall deadline in ns; 0 = wait forever. */
    std::uint64_t timeout_ns = 0;
    /** Never sleep; pure busy waiting (ablation + low-latency mode). */
    bool busy_only = false;

    static WaitSpec
    busyWait()
    {
        WaitSpec w;
        w.busy_only = true;
        return w;
    }

    static WaitSpec
    withTimeout(std::uint64_t ns)
    {
        WaitSpec w;
        w.timeout_ns = ns;
        return w;
    }
};

} // namespace varan::ring

#endif // VARAN_RING_WAIT_H
