/**
 * @file
 * The 64-byte event exchanged between leader and followers.
 *
 * Section 3.3.1: "Each event has a fixed size of 64 bytes; the size has
 * been deliberately chosen to fit into a single cache line on modern
 * x86 CPUs." Events carry signals, process management operations and
 * system calls whose by-value arguments fit inline; larger payloads
 * (buffer contents, spilled arguments) live in the shared pool and are
 * referenced by offset.
 */

#ifndef VARAN_RING_EVENT_H
#define VARAN_RING_EVENT_H

#include <cstdint>

#include "common/macros.h"

namespace varan::ring {

/** What an event describes. */
enum class EventType : std::uint16_t {
    Invalid = 0,
    Syscall,    ///< regular system call: nr, args, result
    Signal,     ///< asynchronous signal delivery (nr = signo)
    Fork,       ///< clone/fork: result = child tuple id
    Exit,       ///< exit/exit_group: result = status
    Annotation, ///< control messages (role switch, shutdown, ...)
};

/** Bit flags qualifying an event. */
enum EventFlags : std::uint32_t {
    kHasPayload = 1u << 0,   ///< payload/payload_size reference pool bytes
    kArgsSpilled = 1u << 1,  ///< args 4..5 stored at payload start
    kFdTransfer = 1u << 2,   ///< a descriptor follows on the data channel
    kRestartable = 1u << 3,  ///< call was interrupted (-ERESTARTSYS path)
    kDataHash = 1u << 4,     ///< args[3] holds a hash of IN-buffer data
    /** The payload spilled out of the publishing tuple's pool arena
     *  into the global-fallback arena (cross-shard allocation). Payload
     *  offsets stay region-absolute either way — consumers resolve them
     *  identically — but the flag makes pool pressure observable in the
     *  event stream. */
    kPayloadGlobalArena = 1u << 5,
};

/** Number of by-value arguments stored inline. */
inline constexpr unsigned kInlineArgs = 4;
/** Maximum syscall arguments on x86-64. */
inline constexpr unsigned kMaxArgs = 6;

/**
 * One ring-buffer slot. Exactly one cache line.
 */
struct Event {
    std::uint64_t timestamp;          ///< Lamport clock value (section 3.3.3)
    std::int64_t result;              ///< syscall result / signo / status
    std::uint64_t args[kInlineArgs];  ///< by-value arguments 0..3
    std::uint32_t payload;            ///< pool offset (0 = none)
    std::uint32_t payload_size;       ///< payload bytes
    EventType type;
    std::uint16_t nr;                 ///< syscall number
    std::uint32_t flags;              ///< EventFlags

    bool hasPayload() const { return flags & kHasPayload; }
    bool argsSpilled() const { return flags & kArgsSpilled; }
    bool transfersFd() const { return flags & kFdTransfer; }
    bool payloadFromGlobalArena() const
    {
        return flags & kPayloadGlobalArena;
    }
};

static_assert(sizeof(Event) == kCacheLineSize,
              "events must occupy exactly one cache line");

} // namespace varan::ring

#endif // VARAN_RING_EVENT_H
