/**
 * @file
 * Disruptor-style shared-memory ring buffer (paper section 3.3.1).
 *
 * One ring connects a thread tuple: the leader's thread is the single
 * producer, each follower's corresponding thread is an independent
 * consumer with its own cursor. The producer may run ahead of the
 * slowest *active* consumer by at most `capacity` events — this bounded
 * run-ahead is the "log distance" measured in section 5.3 and the
 * buffering window discussed in section 6.
 *
 * Lock-free except for futex sleeps: publishing is a store + release,
 * consuming is a load + cursor advance. Crashed or deliberately slow
 * followers are deactivated so they stop gating the producer
 * (transparent failover, section 5.1).
 */

#ifndef VARAN_RING_RING_BUFFER_H
#define VARAN_RING_RING_BUFFER_H

#include <atomic>
#include <cstdint>
#include <span>

#include "ring/event.h"
#include "ring/wait.h"
#include "shmem/region.h"

namespace varan::ring {

/** Upper bound on simultaneously attached consumers (followers). */
inline constexpr std::uint32_t kMaxConsumers = 15;

/** Per-consumer cursor, cache-line isolated to avoid false sharing. */
struct alignas(kCacheLineSize) ConsumerCursor {
    std::atomic<std::uint64_t> seq;   ///< next sequence this consumer reads
    std::atomic<std::uint32_t> active;
};

/** Shared control block; events follow immediately after. */
struct RingControl {
    std::uint32_t capacity;  ///< power of two
    std::uint32_t mask;

    alignas(kCacheLineSize) std::atomic<std::uint64_t> head; ///< published
    alignas(kCacheLineSize) std::atomic<std::uint32_t> data_seq;
    std::atomic<std::uint32_t> consumers_waiting;
    alignas(kCacheLineSize) std::atomic<std::uint32_t> space_seq;
    std::atomic<std::uint32_t> producer_waiting;
    alignas(kCacheLineSize) std::atomic<std::uint32_t> attach_bitmap;

    ConsumerCursor cursors[kMaxConsumers];
};

/**
 * Value-type handle over a ring living in a shared Region.
 */
class RingBuffer
{
  public:
    RingBuffer() = default;
    RingBuffer(const shmem::Region *region, shmem::Offset off);

    /** Bytes a ring of @p capacity events needs inside a Region. */
    static std::size_t bytesRequired(std::uint32_t capacity);

    /** Format a carved area as an empty ring (coordinator, pre-fork). */
    static RingBuffer initialize(const shmem::Region *region,
                                 shmem::Offset off, std::uint32_t capacity);

    bool valid() const { return region_ != nullptr; }
    shmem::Offset offset() const { return off_; }
    std::uint32_t capacity() const { return control()->capacity; }

    // --- producer side (exactly one thread) ---

    /**
     * Publish one event; blocks (per @p wait) while the ring is full.
     * @return false if the deadline expired before space appeared.
     */
    bool publish(const Event &event, const WaitSpec &wait = {});

    /**
     * Publish a run of events, amortizing synchronization: each claimed
     * chunk costs one release store of head, one data_seq bump and at
     * most one futex wake regardless of chunk length. Batches larger
     * than the currently free space are split into chunks as slots open
     * up, so batches larger than the ring capacity are legal.
     * @return how many events were published; less than events.size()
     *         only if the deadline expired while the ring was full.
     */
    std::size_t publishBatch(std::span<const Event> events,
                             const WaitSpec &wait = {});

    /**
     * Two-phase publication: claim() blocks until at least @p count
     * slots (≤ capacity) are free and returns the first claimed
     * sequence; commit() then writes the events and makes them visible
     * with one head store + at most one futex wake. Between the two the
     * producer owns the claimed slots exclusively, which is where
     * payload-shadow recycling must happen — an old payload may only be
     * released once the gating protocol has proven every consumer is
     * past its slot, i.e. after claim() returns.
     * @return false if the deadline expired before the space appeared.
     */
    bool claim(std::size_t count, std::uint64_t *seq_out,
               const WaitSpec &wait = {});

    /** Complete a claim(): copy @p events in and publish them. */
    void commit(std::span<const Event> events);

    /** Sequence number the next publish will use. */
    std::uint64_t headSeq() const;

    /** Consumers currently asleep in the waitlock (publish-side hint:
     *  a sleeping consumer wants events now, so coalescing should
     *  flush rather than hold a pending run back). */
    std::uint32_t consumersWaiting() const;

    // --- consumer side ---

    /** Claim a consumer slot; returns slot id or -1 if all are taken. */
    int attachConsumer();

    /** Attach at a specific slot id (used when follower ids are fixed). */
    bool attachConsumerAt(int id);

    /** Release a slot and stop gating the producer on it. */
    void detachConsumer(int id);

    /** Non-blocking read; true if an event was copied out. */
    bool poll(int id, Event *out);

    /**
     * Non-blocking batched read: drains up to @p max already-published
     * events with a single acquire of head and a single cursor advance.
     * @return how many events were copied into @p out (0 when empty).
     */
    std::size_t pollBatch(int id, Event *out, std::size_t max);

    /**
     * Blocking read honouring the wait policy.
     * @return false on deadline expiry (no event copied).
     */
    bool consume(int id, Event *out, const WaitSpec &wait = {});

    /**
     * Blocking batched read: waits (per @p wait) for at least one
     * event, then drains min(available, max) in one synchronization
     * round. Slots are released to the producer immediately, so callers
     * must not touch pool payloads referenced by the returned events
     * after further production (copy them out first, or use
     * peek()/advance() for payload-carrying streams).
     * @return events copied; 0 on deadline expiry.
     */
    std::size_t consumeBatch(int id, Event *out, std::size_t max,
                             const WaitSpec &wait = {});

    /**
     * Two-phase consumption: peek() copies the next event without
     * advancing, so the consumer can finish reading any pool payload it
     * references before advance() releases the slot back to the
     * producer (which may free the payload when the slot is reused).
     */
    bool peek(int id, Event *out, const WaitSpec &wait = {});

    /** Complete a peek(); advances exactly one event. */
    void advance(int id);

    /**
     * Non-advancing batched read: waits (per @p wait) for at least one
     * event, then copies min(available, max) without moving the cursor.
     * The copied run stays claimed until advance()/advanceBy() releases
     * it, so pool payloads referenced by the events remain valid while
     * the consumer works through the run — the batched equivalent of
     * peek() for payload-carrying streams.
     * @return events copied; 0 on deadline expiry.
     */
    std::size_t peekBatch(int id, Event *out, std::size_t max,
                          const WaitSpec &wait = {});

    /** Complete (part of) a peekBatch(): advance @p n events at once. */
    void advanceBy(int id, std::size_t n);

    /** Events published but not yet consumed by slot @p id. */
    std::uint64_t lag(int id) const;

    /** True if the slot is attached and gating the producer. */
    bool consumerActive(int id) const;

  private:
    RingControl *control() const;
    Event *slots() const;
    std::uint64_t gatingSequence(std::uint64_t head) const;

    /** Copy @p n events starting at @p from_seq out of the (possibly
     *  wrapping) slot array. */
    void copyOut(std::uint64_t from_seq, Event *out, std::size_t n) const;

    /** Wait until ≥ @p min_free slots are free; returns the free slot
     *  count (0 = deadline expired first). */
    std::uint64_t awaitSpace(std::uint64_t deadline, const WaitSpec &wait,
                             std::uint64_t min_free = 1);

    /** Wait until ≥1 event is readable by @p id; returns available
     *  count (0 = deadline expired). */
    std::uint64_t awaitData(int id, std::uint64_t deadline,
                            const WaitSpec &wait);

    /** Advance @p cur to @p next_seq and wake a blocked producer. */
    void releaseSlots(ConsumerCursor &cur, std::uint64_t next_seq);

    const shmem::Region *region_ = nullptr;
    shmem::Offset off_ = 0;
};

/**
 * Leader-side publish coalescing (DMON-style relaxed shipping).
 *
 * The leader's syscall dispatch publishes one event per call; for runs
 * of payload-free events that is one head store and one futex wake
 * each. A PublishCoalescer instead accumulates such events in a
 * process-local pending run and flushes them through the two-phase
 * claim()/commit() path: one synchronization round per run, however
 * long the run grew.
 *
 * The caller decides *when* to flush (run full is handled internally;
 * ordering fences — payload events, descriptor transfers, blocking
 * system calls, tuple openings — are the caller's policy). A recycler
 * hook runs after claim() and before commit() for every flushed chunk,
 * which is where the payload-shadow bookkeeping of the monitor slots
 * in: by claim-time the gating protocol guarantees all consumers have
 * left the claimed slots, so their old payloads are safe to release.
 *
 * Single-producer, like the ring itself: one coalescer per tuple ring,
 * used only by the thread that owns the producer side.
 */
class PublishCoalescer
{
  public:
    static constexpr std::size_t kMaxPending = 64;

    PublishCoalescer() = default;

    /** Recycler: called with the first claimed sequence and the chunk
     *  length before the chunk becomes visible to consumers. */
    using SlotRecycler = void (*)(void *ctx, std::uint64_t first_seq,
                                  std::size_t count);

    void
    reset(RingBuffer *ring, std::size_t max_pending = 16,
          SlotRecycler recycler = nullptr, void *recycler_ctx = nullptr)
    {
        ring_ = ring;
        max_pending_ = max_pending < kMaxPending ? max_pending
                                                 : kMaxPending;
        if (max_pending_ == 0)
            max_pending_ = 1;
        recycler_ = recycler;
        recycler_ctx_ = recycler_ctx;
        live_limit_ = nullptr;
        count_.store(0, std::memory_order_relaxed);
    }

    /** Pending run length. Safe to read from a thread that does not
     *  own the producer side (the time-based flusher polls it before
     *  taking the producer lock); everything else on this class is
     *  producer-side only. */
    std::size_t
    pending() const
    {
        return count_.load(std::memory_order_acquire);
    }

    std::size_t maxPending() const { return max_pending_; }

    /**
     * Bind the run cap to a live atomic (a `Tuning` knob in the shared
     * region): every add() re-reads it, so retuning the coalesce run
     * length mid-stream takes effect at the next event — no reset, no
     * restart. max_pending_ (and kMaxPending) stay the hard ceiling;
     * a zero or over-large live value is clamped, never trusted.
     */
    void
    bindLiveLimit(const std::atomic<std::uint64_t> *limit)
    {
        live_limit_ = limit;
    }

    /** The run cap in force right now: the live knob when bound
     *  (clamped to [1, maxPending()]), else maxPending(). */
    std::size_t
    effectiveMax() const
    {
        if (live_limit_ == nullptr)
            return max_pending_;
        std::uint64_t live =
            live_limit_->load(std::memory_order_relaxed);
        if (live < 1)
            return 1;
        if (live > max_pending_)
            return max_pending_;
        return static_cast<std::size_t>(live);
    }

    /** Append one event; auto-flushes first when the run is full.
     *  @return false if a required flush timed out (event not added). */
    bool
    add(const Event &event, const WaitSpec &wait = {})
    {
        std::size_t count = count_.load(std::memory_order_relaxed);
        if (count >= effectiveMax()) {
            if (!flush(wait))
                return false;
            count = 0;
        }
        pending_[count] = event;
        count_.store(count + 1, std::memory_order_release);
        return true;
    }

    /** Publish the pending run: one claim/commit per ring-capacity
     *  chunk. @return false on deadline expiry (run kept). */
    bool flush(const WaitSpec &wait = {});

  private:
    RingBuffer *ring_ = nullptr;
    SlotRecycler recycler_ = nullptr;
    void *recycler_ctx_ = nullptr;
    const std::atomic<std::uint64_t> *live_limit_ = nullptr;
    std::size_t max_pending_ = 16;
    std::atomic<std::size_t> count_{0};
    Event pending_[kMaxPending];
};

} // namespace varan::ring

#endif // VARAN_RING_RING_BUFFER_H
