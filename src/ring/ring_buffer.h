/**
 * @file
 * Disruptor-style shared-memory ring buffer (paper section 3.3.1).
 *
 * One ring connects a thread tuple: the leader's thread is the single
 * producer, each follower's corresponding thread is an independent
 * consumer with its own cursor. The producer may run ahead of the
 * slowest *active* consumer by at most `capacity` events — this bounded
 * run-ahead is the "log distance" measured in section 5.3 and the
 * buffering window discussed in section 6.
 *
 * Lock-free except for futex sleeps: publishing is a store + release,
 * consuming is a load + cursor advance. Crashed or deliberately slow
 * followers are deactivated so they stop gating the producer
 * (transparent failover, section 5.1).
 */

#ifndef VARAN_RING_RING_BUFFER_H
#define VARAN_RING_RING_BUFFER_H

#include <atomic>
#include <cstdint>
#include <span>

#include "ring/event.h"
#include "ring/wait.h"
#include "shmem/region.h"

namespace varan::ring {

/** Upper bound on simultaneously attached consumers (followers). */
inline constexpr std::uint32_t kMaxConsumers = 15;

/** Per-consumer cursor, cache-line isolated to avoid false sharing. */
struct alignas(kCacheLineSize) ConsumerCursor {
    std::atomic<std::uint64_t> seq;   ///< next sequence this consumer reads
    std::atomic<std::uint32_t> active;
};

/** Shared control block; events follow immediately after. */
struct RingControl {
    std::uint32_t capacity;  ///< power of two
    std::uint32_t mask;

    alignas(kCacheLineSize) std::atomic<std::uint64_t> head; ///< published
    alignas(kCacheLineSize) std::atomic<std::uint32_t> data_seq;
    std::atomic<std::uint32_t> consumers_waiting;
    alignas(kCacheLineSize) std::atomic<std::uint32_t> space_seq;
    std::atomic<std::uint32_t> producer_waiting;
    alignas(kCacheLineSize) std::atomic<std::uint32_t> attach_bitmap;

    ConsumerCursor cursors[kMaxConsumers];
};

/**
 * Value-type handle over a ring living in a shared Region.
 */
class RingBuffer
{
  public:
    RingBuffer() = default;
    RingBuffer(const shmem::Region *region, shmem::Offset off);

    /** Bytes a ring of @p capacity events needs inside a Region. */
    static std::size_t bytesRequired(std::uint32_t capacity);

    /** Format a carved area as an empty ring (coordinator, pre-fork). */
    static RingBuffer initialize(const shmem::Region *region,
                                 shmem::Offset off, std::uint32_t capacity);

    bool valid() const { return region_ != nullptr; }
    shmem::Offset offset() const { return off_; }
    std::uint32_t capacity() const { return control()->capacity; }

    // --- producer side (exactly one thread) ---

    /**
     * Publish one event; blocks (per @p wait) while the ring is full.
     * @return false if the deadline expired before space appeared.
     */
    bool publish(const Event &event, const WaitSpec &wait = {});

    /**
     * Publish a run of events, amortizing synchronization: each claimed
     * chunk costs one release store of head, one data_seq bump and at
     * most one futex wake regardless of chunk length. Batches larger
     * than the currently free space are split into chunks as slots open
     * up, so batches larger than the ring capacity are legal.
     * @return how many events were published; less than events.size()
     *         only if the deadline expired while the ring was full.
     */
    std::size_t publishBatch(std::span<const Event> events,
                             const WaitSpec &wait = {});

    /** Sequence number the next publish will use. */
    std::uint64_t headSeq() const;

    // --- consumer side ---

    /** Claim a consumer slot; returns slot id or -1 if all are taken. */
    int attachConsumer();

    /** Attach at a specific slot id (used when follower ids are fixed). */
    bool attachConsumerAt(int id);

    /** Release a slot and stop gating the producer on it. */
    void detachConsumer(int id);

    /** Non-blocking read; true if an event was copied out. */
    bool poll(int id, Event *out);

    /**
     * Non-blocking batched read: drains up to @p max already-published
     * events with a single acquire of head and a single cursor advance.
     * @return how many events were copied into @p out (0 when empty).
     */
    std::size_t pollBatch(int id, Event *out, std::size_t max);

    /**
     * Blocking read honouring the wait policy.
     * @return false on deadline expiry (no event copied).
     */
    bool consume(int id, Event *out, const WaitSpec &wait = {});

    /**
     * Blocking batched read: waits (per @p wait) for at least one
     * event, then drains min(available, max) in one synchronization
     * round. Slots are released to the producer immediately, so callers
     * must not touch pool payloads referenced by the returned events
     * after further production (copy them out first, or use
     * peek()/advance() for payload-carrying streams).
     * @return events copied; 0 on deadline expiry.
     */
    std::size_t consumeBatch(int id, Event *out, std::size_t max,
                             const WaitSpec &wait = {});

    /**
     * Two-phase consumption: peek() copies the next event without
     * advancing, so the consumer can finish reading any pool payload it
     * references before advance() releases the slot back to the
     * producer (which may free the payload when the slot is reused).
     */
    bool peek(int id, Event *out, const WaitSpec &wait = {});

    /** Complete a peek(); advances exactly one event. */
    void advance(int id);

    /** Events published but not yet consumed by slot @p id. */
    std::uint64_t lag(int id) const;

    /** True if the slot is attached and gating the producer. */
    bool consumerActive(int id) const;

  private:
    RingControl *control() const;
    Event *slots() const;
    std::uint64_t gatingSequence(std::uint64_t head) const;

    /** Wait until ≥1 slot is free; returns free slot count (0 = expired). */
    std::uint64_t awaitSpace(std::uint64_t deadline, const WaitSpec &wait);

    /** Wait until ≥1 event is readable by @p id; returns available
     *  count (0 = deadline expired). */
    std::uint64_t awaitData(int id, std::uint64_t deadline,
                            const WaitSpec &wait);

    /** Advance @p cur to @p next_seq and wake a blocked producer. */
    void releaseSlots(ConsumerCursor &cur, std::uint64_t next_seq);

    const shmem::Region *region_ = nullptr;
    shmem::Offset off_ = 0;
};

} // namespace varan::ring

#endif // VARAN_RING_RING_BUFFER_H
