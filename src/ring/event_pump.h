/**
 * @file
 * The design VARAN started with and abandoned (section 3.3.1): one SPSC
 * queue per follower with a central event pump copying events from the
 * leader's queue into every follower's queue. Kept as a faithful
 * baseline for the ring-vs-pump ablation benchmark — at high syscall
 * rates the pump becomes the bottleneck the paper describes.
 */

#ifndef VARAN_RING_EVENT_PUMP_H
#define VARAN_RING_EVENT_PUMP_H

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "ring/event.h"
#include "ring/wait.h"
#include "shmem/region.h"

namespace varan::ring {

/** Single-producer single-consumer event queue in shared memory. */
class SpscQueue
{
  public:
    SpscQueue() = default;
    SpscQueue(const shmem::Region *region, shmem::Offset off);

    static std::size_t bytesRequired(std::uint32_t capacity);
    static SpscQueue initialize(const shmem::Region *region,
                                shmem::Offset off, std::uint32_t capacity);

    /** Producer: enqueue; false when full past the deadline. */
    bool push(const Event &event, const WaitSpec &wait = {});

    /** Consumer: dequeue; false when empty past the deadline. */
    bool pop(Event *out, const WaitSpec &wait = {});

    /** Non-blocking variants. */
    bool tryPush(const Event &event);
    bool tryPop(Event *out);

    /**
     * Batched variants: one head/tail exchange per call instead of one
     * per event. tryPushBatch enqueues as many leading events as fit
     * and returns that count; tryPopBatch drains up to @p max.
     */
    std::size_t tryPushBatch(std::span<const Event> events);
    std::size_t tryPopBatch(Event *out, std::size_t max);

    /** Blocking batched push; returns events enqueued (all, unless the
     *  deadline expires while the queue is full). */
    std::size_t pushBatch(std::span<const Event> events,
                          const WaitSpec &wait = {});

    std::uint64_t size() const;

  private:
    struct Control {
        std::uint32_t capacity;
        std::uint32_t mask;
        alignas(kCacheLineSize) std::atomic<std::uint64_t> head; ///< produced
        alignas(kCacheLineSize) std::atomic<std::uint64_t> tail; ///< consumed
    };

    Control *control() const;
    Event *slots() const;

    const shmem::Region *region_ = nullptr;
    shmem::Offset off_ = 0;
};

/**
 * Central pump: drains the leader queue and replicates each event into
 * every follower queue. Run this on a dedicated thread (the coordinator
 * played this role in the abandoned design).
 */
class EventPump
{
  public:
    EventPump(SpscQueue leader, std::vector<SpscQueue> followers)
        : leader_(leader), followers_(std::move(followers))
    {
    }

    /**
     * Move up to @p budget events; returns how many were pumped.
     * A zero return with stop() unset just means the queue was empty.
     */
    std::size_t pumpSome(std::size_t budget);

    /** Run until stop() is called; returns total events pumped. */
    std::uint64_t run();

    void stop() { stopping_.store(true, std::memory_order_release); }

  private:
    SpscQueue leader_;
    std::vector<SpscQueue> followers_;
    std::atomic<bool> stopping_{false};
};

} // namespace varan::ring

#endif // VARAN_RING_EVENT_PUMP_H
