/**
 * @file
 * Variant-wide Lamport clock (paper section 3.3.3, Figure 3).
 *
 * Each variant has one clock shared by all its threads. The leader's
 * threads stamp every published event with `tick()`; a follower thread
 * holding an event may only process it when the follower's clock equals
 * `timestamp - 1`, which enforces the leader's happens-before order
 * across all of the variant's thread-tuple rings.
 */

#ifndef VARAN_RING_LAMPORT_H
#define VARAN_RING_LAMPORT_H

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "common/futex.h"
#include "common/macros.h"
#include "ring/wait.h"
#include "shmem/region.h"

namespace varan::ring {

/** Clock state in shared memory. */
struct alignas(kCacheLineSize) ClockState {
    std::atomic<std::uint64_t> value;   ///< last issued/processed stamp
    std::atomic<std::uint32_t> notify;  ///< futex word bumped on advance
    std::atomic<std::uint32_t> waiters;
};

/** Handle over a ClockState inside a Region. */
class LamportClock
{
  public:
    LamportClock() = default;
    LamportClock(const shmem::Region *region, shmem::Offset off)
        : state_(region->at<ClockState>(off))
    {
    }

    static std::size_t bytesRequired() { return sizeof(ClockState); }

    static LamportClock
    initialize(const shmem::Region *region, shmem::Offset off)
    {
        auto *st = region->at<ClockState>(off);
        st->value.store(0, std::memory_order_relaxed);
        st->notify.store(0, std::memory_order_relaxed);
        st->waiters.store(0, std::memory_order_relaxed);
        return LamportClock(region, off);
    }

    /** Leader thread: claim the next timestamp (1, 2, 3, ...). */
    std::uint64_t
    tick()
    {
        return state_->value.fetch_add(1, std::memory_order_acq_rel) + 1;
    }

    std::uint64_t
    current() const
    {
        return state_->value.load(std::memory_order_acquire);
    }

    /**
     * Follower thread: wait until it is @p timestamp's turn, i.e. the
     * variant clock reads timestamp - 1.
     * @return false on deadline expiry.
     */
    bool
    awaitTurn(std::uint64_t timestamp, const WaitSpec &wait = {})
    {
        const std::uint64_t want = timestamp - 1;
        const std::uint64_t deadline =
            wait.timeout_ns ? monotonicNs() + wait.timeout_ns : 0;
        std::uint32_t spins = 0;
        while (state_->value.load(std::memory_order_acquire) != want) {
            if (deadline && monotonicNs() >= deadline)
                return false;
            if (wait.busy_only || spins++ < wait.spin_iterations) {
                __builtin_ia32_pause();
                continue;
            }
            state_->waiters.fetch_add(1, std::memory_order_seq_cst);
            std::uint32_t observed =
                state_->notify.load(std::memory_order_acquire);
            if (state_->value.load(std::memory_order_acquire) == want) {
                state_->waiters.fetch_sub(1, std::memory_order_release);
                break;
            }
            futexWait(&state_->notify, observed, 1000000);
            state_->waiters.fetch_sub(1, std::memory_order_release);
        }
        return true;
    }

    /** Follower thread: mark @p timestamp processed and wake siblings. */
    void
    advanceTo(std::uint64_t timestamp)
    {
        state_->value.store(timestamp, std::memory_order_release);
        state_->notify.fetch_add(1, std::memory_order_release);
        if (state_->waiters.load(std::memory_order_seq_cst) > 0)
            futexWake(&state_->notify, kMaxWake);
    }

  private:
    static constexpr int kMaxWake = 64;

    ClockState *state_ = nullptr;
};

} // namespace varan::ring

#endif // VARAN_RING_LAMPORT_H
