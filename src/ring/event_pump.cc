#include "ring/event_pump.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/clock.h"
#include "common/logging.h"

namespace varan::ring {

SpscQueue::SpscQueue(const shmem::Region *region, shmem::Offset off)
    : region_(region), off_(off)
{
}

std::size_t
SpscQueue::bytesRequired(std::uint32_t capacity)
{
    return sizeof(Control) + static_cast<std::size_t>(capacity) *
                                 sizeof(Event);
}

SpscQueue
SpscQueue::initialize(const shmem::Region *region, shmem::Offset off,
                      std::uint32_t capacity)
{
    VARAN_CHECK(capacity > 0 && (capacity & (capacity - 1)) == 0);
    auto *ctl = new (region->bytesAt(off, sizeof(Control))) Control();
    ctl->capacity = capacity;
    ctl->mask = capacity - 1;
    ctl->head.store(0, std::memory_order_relaxed);
    ctl->tail.store(0, std::memory_order_relaxed);
    return SpscQueue(region, off);
}

SpscQueue::Control *
SpscQueue::control() const
{
    return region_->at<Control>(off_);
}

Event *
SpscQueue::slots() const
{
    return static_cast<Event *>(region_->bytesAt(
        off_ + sizeof(Control),
        static_cast<std::size_t>(control()->capacity) * sizeof(Event)));
}

bool
SpscQueue::tryPush(const Event &event)
{
    Control *ctl = control();
    std::uint64_t head = ctl->head.load(std::memory_order_relaxed);
    std::uint64_t tail = ctl->tail.load(std::memory_order_acquire);
    if (head - tail >= ctl->capacity)
        return false;
    slots()[head & ctl->mask] = event;
    ctl->head.store(head + 1, std::memory_order_release);
    return true;
}

bool
SpscQueue::tryPop(Event *out)
{
    Control *ctl = control();
    std::uint64_t tail = ctl->tail.load(std::memory_order_relaxed);
    std::uint64_t head = ctl->head.load(std::memory_order_acquire);
    if (tail >= head)
        return false;
    *out = slots()[tail & ctl->mask];
    ctl->tail.store(tail + 1, std::memory_order_release);
    return true;
}

std::size_t
SpscQueue::tryPushBatch(std::span<const Event> events)
{
    Control *ctl = control();
    const std::uint64_t head = ctl->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ctl->tail.load(std::memory_order_acquire);
    const std::uint64_t free = ctl->capacity - (head - tail);
    const std::size_t n = std::min<std::size_t>(free, events.size());
    if (n == 0)
        return 0;
    const std::uint64_t idx = head & ctl->mask;
    const std::size_t first = std::min<std::size_t>(n, ctl->capacity - idx);
    std::memcpy(slots() + idx, events.data(), first * sizeof(Event));
    if (n > first)
        std::memcpy(slots(), events.data() + first,
                    (n - first) * sizeof(Event));
    ctl->head.store(head + n, std::memory_order_release);
    return n;
}

std::size_t
SpscQueue::tryPopBatch(Event *out, std::size_t max)
{
    Control *ctl = control();
    const std::uint64_t tail = ctl->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ctl->head.load(std::memory_order_acquire);
    if (tail >= head || max == 0)
        return 0;
    const std::size_t n = std::min<std::size_t>(head - tail, max);
    const std::uint64_t idx = tail & ctl->mask;
    const std::size_t first = std::min<std::size_t>(n, ctl->capacity - idx);
    std::memcpy(out, slots() + idx, first * sizeof(Event));
    if (n > first)
        std::memcpy(out + first, slots(), (n - first) * sizeof(Event));
    ctl->tail.store(tail + n, std::memory_order_release);
    return n;
}

std::size_t
SpscQueue::pushBatch(std::span<const Event> events, const WaitSpec &wait)
{
    const std::uint64_t deadline =
        wait.timeout_ns ? monotonicNs() + wait.timeout_ns : 0;
    std::size_t pushed = 0;
    while (pushed < events.size()) {
        std::size_t n = tryPushBatch(events.subspan(pushed));
        if (n == 0) {
            if (deadline && monotonicNs() >= deadline)
                break;
            __builtin_ia32_pause();
            continue;
        }
        pushed += n;
    }
    return pushed;
}

bool
SpscQueue::push(const Event &event, const WaitSpec &wait)
{
    const std::uint64_t deadline =
        wait.timeout_ns ? monotonicNs() + wait.timeout_ns : 0;
    while (!tryPush(event)) {
        if (deadline && monotonicNs() >= deadline)
            return false;
        __builtin_ia32_pause();
    }
    return true;
}

bool
SpscQueue::pop(Event *out, const WaitSpec &wait)
{
    const std::uint64_t deadline =
        wait.timeout_ns ? monotonicNs() + wait.timeout_ns : 0;
    while (!tryPop(out)) {
        if (deadline && monotonicNs() >= deadline)
            return false;
        __builtin_ia32_pause();
    }
    return true;
}

std::uint64_t
SpscQueue::size() const
{
    Control *ctl = control();
    std::uint64_t head = ctl->head.load(std::memory_order_acquire);
    std::uint64_t tail = ctl->tail.load(std::memory_order_acquire);
    return head > tail ? head - tail : 0;
}

namespace {
/** Events moved per leader-queue drain; bounds pump stack usage. */
constexpr std::size_t kPumpChunk = 64;
} // namespace

std::size_t
EventPump::pumpSome(std::size_t budget)
{
    std::size_t moved = 0;
    Event chunk[kPumpChunk];
    while (moved < budget) {
        const std::size_t want =
            std::min<std::size_t>(budget - moved, kPumpChunk);
        const std::size_t n = leader_.tryPopBatch(chunk, want);
        if (n == 0)
            break;
        // Replicating into every follower queue is still the per-event
        // work that made this design a bottleneck, but batching the
        // copies amortizes the head/tail synchronization across events.
        for (auto &q : followers_)
            q.pushBatch({chunk, n}, WaitSpec::withTimeout(1000000000ULL));
        moved += n;
    }
    return moved;
}

std::uint64_t
EventPump::run()
{
    std::uint64_t total = 0;
    while (!stopping_.load(std::memory_order_acquire)) {
        std::size_t moved = pumpSome(256);
        total += moved;
        if (moved == 0)
            __builtin_ia32_pause();
    }
    // Drain whatever is left so shutdown is deterministic.
    total += pumpSome(~std::size_t{0});
    return total;
}

} // namespace varan::ring
