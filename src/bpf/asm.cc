#include "bpf/asm.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace varan::bpf {

namespace {

struct Line {
    int number = 0;            ///< 1-based source line
    std::vector<std::string> labels;
    std::string mnemonic;
    std::vector<std::string> operands;
    bool hasInsn() const { return !mnemonic.empty(); }
};

std::string
stripComments(std::string_view src)
{
    std::string out;
    out.reserve(src.size());
    bool in_block = false;
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (in_block) {
            if (src[i] == '*' && i + 1 < src.size() && src[i + 1] == '/') {
                in_block = false;
                ++i;
            } else if (src[i] == '\n') {
                out += '\n'; // keep line numbering intact
            }
            continue;
        }
        if (src[i] == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            in_block = true;
            ++i;
            continue;
        }
        if ((src[i] == '/' && i + 1 < src.size() && src[i + 1] == '/') ||
            src[i] == ';') {
            while (i < src.size() && src[i] != '\n')
                ++i;
            if (i < src.size())
                out += '\n';
            continue;
        }
        out += src[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
isIdent(const std::string &s)
{
    if (s.empty() || (!std::isalpha(static_cast<unsigned char>(s[0])) &&
                      s[0] != '_'))
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    return true;
}

bool
parseNumber(const std::string &text, std::uint32_t *out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long v = std::strtoul(text.c_str(), &end, 0);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    if (v > 0xffffffffUL)
        return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
}

/** Parse one logical line into labels + mnemonic + comma-split operands. */
Line
parseLine(const std::string &raw, int number)
{
    Line line;
    line.number = number;
    std::string rest = trim(raw);

    // Peel leading "label:" prefixes; Listing 1 puts them both on their
    // own lines and in front of instructions.
    for (;;) {
        std::size_t colon = rest.find(':');
        if (colon == std::string::npos)
            break;
        std::string head = trim(rest.substr(0, colon));
        if (!isIdent(head))
            break;
        line.labels.push_back(head);
        rest = trim(rest.substr(colon + 1));
    }
    if (rest.empty())
        return line;

    std::size_t sp = rest.find_first_of(" \t");
    line.mnemonic = rest.substr(0, sp);
    for (char &c : line.mnemonic)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (sp != std::string::npos) {
        std::string ops = rest.substr(sp + 1);
        std::size_t start = 0;
        while (start <= ops.size()) {
            std::size_t comma = ops.find(',', start);
            std::string piece =
                comma == std::string::npos
                    ? ops.substr(start)
                    : ops.substr(start, comma - start);
            piece = trim(piece);
            if (!piece.empty())
                line.operands.push_back(piece);
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }
    return line;
}

/** Classification of a load operand. */
struct LoadOperand {
    enum Kind { Imm, Abs, Mem, EventAbs, Len, Bad } kind = Bad;
    std::uint32_t k = 0;
};

LoadOperand
parseLoadOperand(const std::string &op)
{
    LoadOperand out;
    if (op == "len") {
        out.kind = LoadOperand::Len;
        return out;
    }
    if (op.size() >= 2 && op[0] == '#') {
        if (parseNumber(op.substr(1), &out.k))
            out.kind = LoadOperand::Imm;
        return out;
    }
    auto bracketed = [&](const std::string &prefix,
                         std::uint32_t *value) -> bool {
        if (op.size() < prefix.size() + 2 ||
            op.compare(0, prefix.size(), prefix) != 0 ||
            op[prefix.size()] != '[' || op.back() != ']') {
            return false;
        }
        std::string inner = op.substr(prefix.size() + 1,
                                      op.size() - prefix.size() - 2);
        return parseNumber(trim(inner), value);
    };
    std::uint32_t v = 0;
    if (bracketed("", &v)) {
        out.kind = LoadOperand::Abs;
        out.k = v;
        return out;
    }
    if (bracketed("event", &v)) {
        out.kind = LoadOperand::EventAbs;
        out.k = kEventExtBase + 4 * v;
        return out;
    }
    if (bracketed("m", &v) || bracketed("M", &v)) {
        out.kind = LoadOperand::Mem;
        out.k = v;
        return out;
    }
    return out;
}

} // namespace

AssembleResult
assemble(std::string_view source)
{
    AssembleResult result;
    std::string clean = stripComments(source);

    std::vector<Line> lines;
    {
        std::istringstream stream(clean);
        std::string raw;
        int number = 0;
        while (std::getline(stream, raw))
            lines.push_back(parseLine(raw, ++number));
    }

    auto fail = [&](int line, const std::string &why) {
        result.error = why;
        result.error_line = line;
        return result;
    };

    // Pass 1: map labels to instruction indices.
    std::map<std::string, std::size_t> labels;
    std::size_t insn_index = 0;
    for (const Line &line : lines) {
        for (const std::string &label : line.labels) {
            if (labels.count(label))
                return fail(line.number, "duplicate label: " + label);
            labels[label] = insn_index;
        }
        if (line.hasInsn())
            ++insn_index;
    }
    const std::size_t total = insn_index;

    // Pass 2: emit instructions.
    auto resolve = [&](const std::string &name, std::size_t from,
                       std::uint32_t *disp) -> bool {
        auto it = labels.find(name);
        if (it == labels.end() || it->second <= from ||
            it->second - from - 1 > 255) {
            return false;
        }
        *disp = static_cast<std::uint32_t>(it->second - from - 1);
        return true;
    };

    insn_index = 0;
    for (const Line &line : lines) {
        if (!line.hasInsn())
            continue;
        const std::string &m = line.mnemonic;
        const auto &ops = line.operands;
        const std::size_t at = insn_index++;

        auto needOps = [&](std::size_t lo, std::size_t hi) {
            return ops.size() >= lo && ops.size() <= hi;
        };

        if (m == "ld" || m == "ldx") {
            if (!needOps(1, 1))
                return fail(line.number, m + " needs one operand");
            LoadOperand lop = parseLoadOperand(ops[0]);
            std::uint16_t cls = (m == "ld") ? BPF_LD : BPF_LDX;
            switch (lop.kind) {
              case LoadOperand::Imm:
                result.program.push_back(stmt(cls | BPF_W | BPF_IMM, lop.k));
                break;
              case LoadOperand::Abs:
              case LoadOperand::EventAbs:
                if (m == "ldx")
                    return fail(line.number, "ldx cannot load absolute");
                result.program.push_back(stmt(cls | BPF_W | BPF_ABS, lop.k));
                break;
              case LoadOperand::Mem:
                result.program.push_back(stmt(cls | BPF_W | BPF_MEM, lop.k));
                break;
              case LoadOperand::Len:
                result.program.push_back(stmt(cls | BPF_W | BPF_LEN, 0));
                break;
              default:
                return fail(line.number, "bad operand: " + ops[0]);
            }
        } else if (m == "st" || m == "stx") {
            if (!needOps(1, 1))
                return fail(line.number, m + " needs one operand");
            LoadOperand lop = parseLoadOperand(ops[0]);
            if (lop.kind != LoadOperand::Mem &&
                lop.kind != LoadOperand::Abs) {
                return fail(line.number, "store needs M[i]");
            }
            result.program.push_back(
                stmt((m == "st" ? BPF_ST : BPF_STX), lop.k));
        } else if (m == "add" || m == "sub" || m == "mul" || m == "div" ||
                   m == "mod" || m == "and" || m == "or" || m == "xor" ||
                   m == "lsh" || m == "rsh") {
            if (!needOps(1, 1))
                return fail(line.number, m + " needs one operand");
            std::uint16_t op =
                m == "add" ? BPF_ADD : m == "sub" ? BPF_SUB :
                m == "mul" ? BPF_MUL : m == "div" ? BPF_DIV :
                m == "mod" ? BPF_MOD : m == "and" ? BPF_AND :
                m == "or" ? BPF_OR : m == "xor" ? BPF_XOR :
                m == "lsh" ? BPF_LSH : BPF_RSH;
            if (ops[0] == "x") {
                result.program.push_back(stmt(BPF_ALU | op | BPF_X, 0));
            } else if (ops[0][0] == '#') {
                std::uint32_t k;
                if (!parseNumber(ops[0].substr(1), &k))
                    return fail(line.number, "bad immediate: " + ops[0]);
                result.program.push_back(stmt(BPF_ALU | op | BPF_K, k));
            } else {
                return fail(line.number, "bad operand: " + ops[0]);
            }
        } else if (m == "neg") {
            result.program.push_back(stmt(BPF_ALU | BPF_NEG, 0));
        } else if (m == "jmp" || m == "ja") {
            if (!needOps(1, 1))
                return fail(line.number, "jmp needs a label");
            std::uint32_t disp;
            if (!resolve(ops[0], at, &disp))
                return fail(line.number,
                            "unresolvable (or backward) label: " + ops[0]);
            result.program.push_back(stmt(BPF_JMP | BPF_JA, disp));
        } else if (m == "jeq" || m == "jgt" || m == "jge" ||
                   m == "jset" || m == "jne" || m == "jlt" ||
                   m == "jle") {
            if (!needOps(2, 3))
                return fail(line.number, m + " needs 2 or 3 operands");
            // jne/jlt/jle are classic-BPF pseudo-ops: the same
            // comparison with true/false branches swapped.
            const bool negated = m == "jne" || m == "jlt" || m == "jle";
            std::uint16_t op =
                (m == "jeq" || m == "jne") ? BPF_JEQ :
                (m == "jgt" || m == "jle") ? BPF_JGT :
                (m == "jge" || m == "jlt") ? BPF_JGE : BPF_JSET;
            std::uint16_t src = BPF_K;
            std::uint32_t k = 0;
            if (ops[0] == "x") {
                src = BPF_X;
            } else if (ops[0][0] == '#') {
                if (!parseNumber(ops[0].substr(1), &k))
                    return fail(line.number, "bad immediate: " + ops[0]);
            } else {
                return fail(line.number, "bad comparand: " + ops[0]);
            }
            std::uint32_t jt;
            if (!resolve(ops[1], at, &jt))
                return fail(line.number,
                            "unresolvable (or backward) label: " + ops[1]);
            std::uint32_t jf = 0;
            if (ops.size() == 3 && !resolve(ops[2], at, &jf))
                return fail(line.number,
                            "unresolvable (or backward) label: " + ops[2]);
            if (negated)
                std::swap(jt, jf);
            result.program.push_back(jump(BPF_JMP | op | src, k,
                                          static_cast<std::uint8_t>(jt),
                                          static_cast<std::uint8_t>(jf)));
        } else if (m == "ret") {
            if (!needOps(1, 1))
                return fail(line.number, "ret needs one operand");
            if (ops[0] == "a") {
                result.program.push_back(stmt(BPF_RET | BPF_A, 0));
            } else if (ops[0][0] == '#') {
                std::uint32_t k;
                if (!parseNumber(ops[0].substr(1), &k))
                    return fail(line.number, "bad immediate: " + ops[0]);
                result.program.push_back(stmt(BPF_RET | BPF_K, k));
            } else {
                return fail(line.number, "bad operand: " + ops[0]);
            }
        } else if (m == "tax") {
            result.program.push_back(stmt(BPF_MISC | BPF_TAX, 0));
        } else if (m == "txa") {
            result.program.push_back(stmt(BPF_MISC | BPF_TXA, 0));
        } else {
            return fail(line.number, "unknown mnemonic: " + m);
        }
    }

    if (result.program.size() != total)
        return fail(0, "internal: instruction count mismatch");
    result.ok = true;
    return result;
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        const Insn &insn = prog[i];
        out << i << ": ";
        const std::uint16_t cls = insn.code & 0x07;
        switch (cls) {
          case BPF_LD:
            if ((insn.code & 0xe0) == BPF_ABS) {
                if (insn.k >= kEventExtBase)
                    out << "ld event[" << (insn.k - kEventExtBase) / 4
                        << "]";
                else
                    out << "ld [" << insn.k << "]";
            } else if ((insn.code & 0xe0) == BPF_IMM) {
                out << "ld #" << insn.k;
            } else if ((insn.code & 0xe0) == BPF_MEM) {
                out << "ld M[" << insn.k << "]";
            } else {
                out << "ld len";
            }
            break;
          case BPF_LDX:
            out << "ldx ";
            if ((insn.code & 0xe0) == BPF_IMM)
                out << "#" << insn.k;
            else if ((insn.code & 0xe0) == BPF_MEM)
                out << "M[" << insn.k << "]";
            else
                out << "len";
            break;
          case BPF_ST:
            out << "st M[" << insn.k << "]";
            break;
          case BPF_STX:
            out << "stx M[" << insn.k << "]";
            break;
          case BPF_ALU:
            out << "alu(0x" << std::hex << insn.code << std::dec << ") #"
                << insn.k;
            break;
          case BPF_JMP:
            if ((insn.code & 0xf0) == BPF_JA) {
                out << "ja +" << insn.k;
            } else {
                out << "jcc(0x" << std::hex << insn.code << std::dec
                    << ") #" << insn.k << ", +" << int(insn.jt) << ", +"
                    << int(insn.jf);
            }
            break;
          case BPF_RET:
            if ((insn.code & 0x18) == BPF_A)
                out << "ret a";
            else
                out << "ret #0x" << std::hex << insn.k << std::dec;
            break;
          case BPF_MISC:
            out << ((insn.code & 0xf8) == BPF_TAX ? "tax" : "txa");
            break;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace varan::bpf
