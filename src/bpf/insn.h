/**
 * @file
 * Classic Berkeley Packet Filter instruction encoding (paper section 3.4).
 *
 * VARAN embeds a user-space port of the classic BPF machine — the same
 * instruction set seccomp "mode 2" filters use — and extends it with an
 * `event` address space that exposes the leader's current event to the
 * filter, so rewrite rules can compare the system calls executed across
 * versions (sections 2.3, 3.4, 5.2).
 */

#ifndef VARAN_BPF_INSN_H
#define VARAN_BPF_INSN_H

#include <cstdint>
#include <vector>

namespace varan::bpf {

/** One classic BPF instruction. */
struct Insn {
    std::uint16_t code = 0;
    std::uint8_t jt = 0;   ///< jump-if-true displacement
    std::uint8_t jf = 0;   ///< jump-if-false displacement
    std::uint32_t k = 0;   ///< immediate / offset operand
};

using Program = std::vector<Insn>;

// --- instruction classes ---
inline constexpr std::uint16_t BPF_LD = 0x00;
inline constexpr std::uint16_t BPF_LDX = 0x01;
inline constexpr std::uint16_t BPF_ST = 0x02;
inline constexpr std::uint16_t BPF_STX = 0x03;
inline constexpr std::uint16_t BPF_ALU = 0x04;
inline constexpr std::uint16_t BPF_JMP = 0x05;
inline constexpr std::uint16_t BPF_RET = 0x06;
inline constexpr std::uint16_t BPF_MISC = 0x07;

// --- ld/ldx width ---
inline constexpr std::uint16_t BPF_W = 0x00;
inline constexpr std::uint16_t BPF_H = 0x08;
inline constexpr std::uint16_t BPF_B = 0x10;

// --- addressing modes ---
inline constexpr std::uint16_t BPF_IMM = 0x00;
inline constexpr std::uint16_t BPF_ABS = 0x20;
inline constexpr std::uint16_t BPF_IND = 0x40;
inline constexpr std::uint16_t BPF_MEM = 0x60;
inline constexpr std::uint16_t BPF_LEN = 0x80;

// --- ALU/JMP operations ---
inline constexpr std::uint16_t BPF_ADD = 0x00;
inline constexpr std::uint16_t BPF_SUB = 0x10;
inline constexpr std::uint16_t BPF_MUL = 0x20;
inline constexpr std::uint16_t BPF_DIV = 0x30;
inline constexpr std::uint16_t BPF_OR = 0x40;
inline constexpr std::uint16_t BPF_AND = 0x50;
inline constexpr std::uint16_t BPF_LSH = 0x60;
inline constexpr std::uint16_t BPF_RSH = 0x70;
inline constexpr std::uint16_t BPF_NEG = 0x80;
inline constexpr std::uint16_t BPF_MOD = 0x90;
inline constexpr std::uint16_t BPF_XOR = 0xa0;

inline constexpr std::uint16_t BPF_JA = 0x00;
inline constexpr std::uint16_t BPF_JEQ = 0x10;
inline constexpr std::uint16_t BPF_JGT = 0x20;
inline constexpr std::uint16_t BPF_JGE = 0x30;
inline constexpr std::uint16_t BPF_JSET = 0x40;

// --- operand source / return source ---
inline constexpr std::uint16_t BPF_K = 0x00;
inline constexpr std::uint16_t BPF_X = 0x08;
inline constexpr std::uint16_t BPF_A = 0x10;

// --- misc ops ---
inline constexpr std::uint16_t BPF_TAX = 0x00;
inline constexpr std::uint16_t BPF_TXA = 0x80;

/** Scratch memory slots available to filters (classic BPF has 16). */
inline constexpr std::uint32_t kMemWords = 16;

/** Convenience constructors mirroring the kernel's BPF_STMT/BPF_JUMP. */
inline Insn
stmt(std::uint16_t code, std::uint32_t k)
{
    return Insn{code, 0, 0, k};
}

inline Insn
jump(std::uint16_t code, std::uint32_t k, std::uint8_t jt, std::uint8_t jf)
{
    return Insn{code, jt, jf, k};
}

/**
 * VARAN extension address space (section 3.4): absolute loads at or
 * beyond this offset read words of the *leader's* current event rather
 * than the follower's seccomp_data. `ld event[i]` assembles to an
 * absolute load of kEventExtBase + 4*i.
 */
inline constexpr std::uint32_t kEventExtBase = 0x10000;

/** Word indices within the event extension. */
enum EventWord : std::uint32_t {
    kEventNr = 0,        ///< leader event's syscall number
    kEventTypeWord = 1,  ///< EventType as u32
    kEventArgLo0 = 2,    ///< args[i] low word at 2+2i, high word at 3+2i
    kEventResultLo = 14,
    kEventResultHi = 15,
    kEventWordCount = 16,
};

} // namespace varan::bpf

#endif // VARAN_BPF_INSN_H
