/**
 * @file
 * Static verifier for BPF filters.
 *
 * Mirrors the kernel's checker the paper relies on: "all filters are
 * statically verified when loaded to ensure termination" (section 3.4).
 * Verification guarantees: bounded length, only known opcodes, all jumps
 * forward and in-bounds, every path ends in RET, scratch-memory indices
 * in range, and no constant division by zero.
 */

#ifndef VARAN_BPF_VERIFIER_H
#define VARAN_BPF_VERIFIER_H

#include <string>

#include "bpf/insn.h"

namespace varan::bpf {

/** Outcome of verification; ok() is true when the filter is safe. */
struct VerifyResult {
    bool accepted = false;
    std::size_t offending_insn = 0; ///< index of the rejected instruction
    std::string reason;

    bool ok() const { return accepted; }

    static VerifyResult
    good()
    {
        VerifyResult r;
        r.accepted = true;
        return r;
    }

    static VerifyResult
    bad(std::size_t at, std::string why)
    {
        VerifyResult r;
        r.offending_insn = at;
        r.reason = std::move(why);
        return r;
    }
};

/** Maximum program length accepted (same bound as the kernel). */
inline constexpr std::size_t kMaxProgramLen = 4096;

/** Statically verify @p prog. Never executes the filter. */
VerifyResult verify(const Program &prog);

} // namespace varan::bpf

#endif // VARAN_BPF_VERIFIER_H
