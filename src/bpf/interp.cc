#include "bpf/interp.h"

#include <cstring>

namespace varan::bpf {

std::uint32_t
FilterContext::loadDataWord(std::uint32_t off, bool *ok) const
{
    *ok = true;
    if (off + 4 > sizeof(SeccompData) || (off & 3) != 0) {
        *ok = false;
        return 0;
    }
    std::uint32_t word;
    std::memcpy(&word, reinterpret_cast<const char *>(&data) + off, 4);
    return word;
}

std::uint32_t
FilterContext::loadEventWord(std::uint32_t index, bool *ok) const
{
    *ok = true;
    if (!event || index >= kEventWordCount) {
        *ok = false;
        return 0;
    }
    switch (index) {
      case kEventNr:
        return event->nr;
      case kEventTypeWord:
        return static_cast<std::uint32_t>(event->type);
      case kEventResultLo:
        return static_cast<std::uint32_t>(event->result & 0xffffffff);
      case kEventResultHi:
        return static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(event->result)) >> 32);
      default: {
        // args[i] low/high pairs starting at word 2.
        std::uint32_t slot = (index - kEventArgLo0) / 2;
        bool high = (index - kEventArgLo0) & 1;
        if (slot >= ring::kInlineArgs) {
            *ok = false;
            return 0;
        }
        std::uint64_t v = event->args[slot];
        return high ? static_cast<std::uint32_t>(v >> 32)
                    : static_cast<std::uint32_t>(v & 0xffffffff);
      }
    }
}

std::uint32_t
run(const Program &prog, const FilterContext &ctx)
{
    std::uint32_t acc = 0;
    std::uint32_t x = 0;
    std::uint32_t mem[kMemWords] = {};

    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        const Insn &insn = prog[pc];
        const std::uint16_t cls = insn.code & 0x07;
        switch (cls) {
          case BPF_LD: {
            const std::uint16_t mode = insn.code & 0xe0;
            bool ok = true;
            switch (mode) {
              case BPF_IMM:
                acc = insn.k;
                break;
              case BPF_ABS:
                acc = insn.k >= kEventExtBase
                          ? ctx.loadEventWord((insn.k - kEventExtBase) / 4,
                                              &ok)
                          : ctx.loadDataWord(insn.k, &ok);
                break;
              case BPF_IND:
                acc = ctx.loadDataWord(insn.k + x, &ok);
                break;
              case BPF_MEM:
                acc = mem[insn.k];
                break;
              case BPF_LEN:
                acc = sizeof(SeccompData);
                break;
              default:
                ok = false;
            }
            if (!ok)
                return 0; // defensive KILL
            break;
          }
          case BPF_LDX: {
            const std::uint16_t mode = insn.code & 0xe0;
            switch (mode) {
              case BPF_IMM:
                x = insn.k;
                break;
              case BPF_MEM:
                x = mem[insn.k];
                break;
              case BPF_LEN:
                x = sizeof(SeccompData);
                break;
              default:
                return 0;
            }
            break;
          }
          case BPF_ST:
            mem[insn.k] = acc;
            break;
          case BPF_STX:
            mem[insn.k] = x;
            break;
          case BPF_ALU: {
            const std::uint16_t op = insn.code & 0xf0;
            const std::uint32_t src =
                (insn.code & BPF_X) ? x : insn.k;
            switch (op) {
              case BPF_ADD: acc += src; break;
              case BPF_SUB: acc -= src; break;
              case BPF_MUL: acc *= src; break;
              case BPF_DIV:
                if (src == 0)
                    return 0;
                acc /= src;
                break;
              case BPF_MOD:
                if (src == 0)
                    return 0;
                acc %= src;
                break;
              case BPF_OR: acc |= src; break;
              case BPF_AND: acc &= src; break;
              case BPF_XOR: acc ^= src; break;
              case BPF_LSH: acc = src < 32 ? acc << src : 0; break;
              case BPF_RSH: acc = src < 32 ? acc >> src : 0; break;
              case BPF_NEG: acc = -acc; break;
              default:
                return 0;
            }
            break;
          }
          case BPF_JMP: {
            const std::uint16_t op = insn.code & 0xf0;
            if (op == BPF_JA) {
                pc += insn.k;
                break;
            }
            const std::uint32_t src =
                (insn.code & BPF_X) ? x : insn.k;
            bool taken = false;
            switch (op) {
              case BPF_JEQ: taken = acc == src; break;
              case BPF_JGT: taken = acc > src; break;
              case BPF_JGE: taken = acc >= src; break;
              case BPF_JSET: taken = (acc & src) != 0; break;
              default:
                return 0;
            }
            pc += taken ? insn.jt : insn.jf;
            break;
          }
          case BPF_RET:
            return (insn.code & 0x18) == BPF_A ? acc : insn.k;
          case BPF_MISC:
            if ((insn.code & 0xf8) == BPF_TAX)
                x = acc;
            else
                acc = x;
            break;
          default:
            return 0;
        }
    }
    return 0; // verified programs cannot fall off the end
}

} // namespace varan::bpf
