/**
 * @file
 * Assembler for the textual BPF rule syntax used in the paper.
 *
 * Accepts exactly the dialect of Listing 1:
 *
 *     ld event[0]
 *     jeq #108, getegid        ; two-operand: branch-if-equal, else fall
 *     jeq #2, open
 *     jmp bad
 *     getegid:
 *     ld [0]                   ; seccomp_data word (0 = nr)
 *     jeq #102, good
 *     bad: ret #0              ; SECCOMP_RET_KILL
 *     good: ret #0x7fff0000    ; SECCOMP_RET_ALLOW
 *
 * plus C-style block comments, `;`/`//`/`#`-to-end-of-line comments,
 * three-operand conditionals (`jeq #k, ltrue, lfalse`), `M[i]` scratch
 * access, immediate hex/decimal literals, `ret a`, and arithmetic.
 */

#ifndef VARAN_BPF_ASM_H
#define VARAN_BPF_ASM_H

#include <string>
#include <string_view>

#include "bpf/insn.h"
#include "common/result.h"

namespace varan::bpf {

/** Result of assembling a textual filter. */
struct AssembleResult {
    bool ok = false;
    Program program;
    std::string error;   ///< human-readable message when !ok
    int error_line = 0;  ///< 1-based source line of the failure
};

/** Assemble BPF source text into a program (not yet verified). */
AssembleResult assemble(std::string_view source);

/** Render a program back to canonical text (debugging/tests). */
std::string disassemble(const Program &prog);

} // namespace varan::bpf

#endif // VARAN_BPF_ASM_H
