/**
 * @file
 * System-call sequence rewrite rules (paper sections 2.3, 3.4, 5.2).
 *
 * When a follower's next system call diverges from the event at the
 * head of the leader's stream, VARAN runs the installed BPF rules over
 * a FilterContext and acts on the verdict:
 *
 *  - ALLOW: the follower executes its additional system call locally
 *    (the "addition" divergence class — e.g. revision 2436's getuid).
 *  - SKIP: the leader-only event is consumed without the follower
 *    executing anything (the "removal" class).
 *  - ERRNO|e: the follower's call is absorbed and fails with -e without
 *    executing (useful for coalescing patterns).
 *  - KILL: the follower is terminated, the lockstep-equivalent default.
 */

#ifndef VARAN_BPF_RULES_H
#define VARAN_BPF_RULES_H

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "bpf/insn.h"
#include "bpf/interp.h"
#include "common/result.h"

namespace varan::bpf {

// Action encodings; ALLOW/KILL match seccomp's constants so Listing 1
// runs unmodified, SKIP sits in seccomp's reserved action space.
inline constexpr std::uint32_t kRetKill = 0x00000000;
inline constexpr std::uint32_t kRetErrno = 0x00050000;
inline constexpr std::uint32_t kRetSkip = 0x7ffd0000;
inline constexpr std::uint32_t kRetAllow = 0x7fff0000;
inline constexpr std::uint32_t kActionMask = 0xffff0000;
inline constexpr std::uint32_t kDataMask = 0x0000ffff;

enum class RuleAction { Kill, Allow, Skip, Errno };

/** Decoded filter verdict. */
struct RuleDecision {
    RuleAction action = RuleAction::Kill;
    int err = 0; ///< errno payload for RuleAction::Errno

    bool operator==(const RuleDecision &) const = default;
};

/** Decode a raw 32-bit filter return value. */
RuleDecision decodeAction(std::uint32_t ret);

/** Point-in-time heat counters for one rule (see RuleSet::heat). */
struct RuleHeat {
    std::uint64_t evaluations = 0; ///< times the rule's filter ran
    std::uint64_t decisions = 0;   ///< times its non-KILL verdict won
};

/**
 * An ordered collection of verified rewrite-rule filters.
 *
 * Rules are consulted in insertion order; the first verdict other than
 * KILL wins. With no rules installed every divergence is fatal for the
 * follower, which is exactly the classic lockstep behaviour.
 */
class RuleSet
{
  public:
    /**
     * Assemble, verify and append a textual rule.
     * @return error status with EINVAL if it fails to assemble/verify
     *         (details via lastError()).
     */
    Status addRule(std::string_view source);

    /** Append an already-built program; must pass verification. */
    Status addProgram(Program prog);

    /** Run the rules over a divergence context. */
    RuleDecision evaluate(const FilterContext &ctx) const;

    // --- hot-rule detection (feeds the adaptive event path) ----------
    //
    // evaluate() keeps per-rule heat counters: how often each filter
    // ran, and how often its verdict decided the divergence. The
    // counters never change rule order — first-match semantics are
    // sacrosanct — they only make the interpretation cost visible so
    // the adaptive layer (and operators reading logs) can see which
    // divergence pattern dominates a run.

    /** Heat counters for rule @p index (insertion order). */
    RuleHeat heat(std::size_t index) const;

    /** Index of the rule that decided the most divergences so far,
     *  or -1 while no rule has decided anything. */
    int hottestRule() const;

    /**
     * Fire @p hook (at most once per rule, from inside evaluate()) when
     * a rule's winning-verdict count reaches @p threshold. The hook
     * runs on the dispatching thread mid-divergence — keep it brief
     * (log, counter bump); it must not re-enter this RuleSet.
     */
    void onHotRule(std::uint64_t threshold,
                   std::function<void(std::size_t, const RuleHeat &)> hook);

    std::size_t size() const { return programs_.size(); }
    bool empty() const { return programs_.empty(); }
    const std::string &lastError() const { return last_error_; }

  private:
    /** Heat state lives in a deque so addProgram() never relocates a
     *  slot out from under a concurrent evaluate(). */
    struct HeatSlot {
        std::atomic<std::uint64_t> evaluations{0};
        std::atomic<std::uint64_t> decisions{0};
        std::atomic<bool> hook_fired{false};
    };

    std::vector<Program> programs_;
    mutable std::deque<HeatSlot> heat_;
    std::uint64_t hot_threshold_ = 0;
    std::function<void(std::size_t, const RuleHeat &)> hot_hook_;
    std::string last_error_;
};

} // namespace varan::bpf

#endif // VARAN_BPF_RULES_H
