/**
 * @file
 * System-call sequence rewrite rules (paper sections 2.3, 3.4, 5.2).
 *
 * When a follower's next system call diverges from the event at the
 * head of the leader's stream, VARAN runs the installed BPF rules over
 * a FilterContext and acts on the verdict:
 *
 *  - ALLOW: the follower executes its additional system call locally
 *    (the "addition" divergence class — e.g. revision 2436's getuid).
 *  - SKIP: the leader-only event is consumed without the follower
 *    executing anything (the "removal" class).
 *  - ERRNO|e: the follower's call is absorbed and fails with -e without
 *    executing (useful for coalescing patterns).
 *  - KILL: the follower is terminated, the lockstep-equivalent default.
 */

#ifndef VARAN_BPF_RULES_H
#define VARAN_BPF_RULES_H

#include <string>
#include <string_view>
#include <vector>

#include "bpf/insn.h"
#include "bpf/interp.h"
#include "common/result.h"

namespace varan::bpf {

// Action encodings; ALLOW/KILL match seccomp's constants so Listing 1
// runs unmodified, SKIP sits in seccomp's reserved action space.
inline constexpr std::uint32_t kRetKill = 0x00000000;
inline constexpr std::uint32_t kRetErrno = 0x00050000;
inline constexpr std::uint32_t kRetSkip = 0x7ffd0000;
inline constexpr std::uint32_t kRetAllow = 0x7fff0000;
inline constexpr std::uint32_t kActionMask = 0xffff0000;
inline constexpr std::uint32_t kDataMask = 0x0000ffff;

enum class RuleAction { Kill, Allow, Skip, Errno };

/** Decoded filter verdict. */
struct RuleDecision {
    RuleAction action = RuleAction::Kill;
    int err = 0; ///< errno payload for RuleAction::Errno

    bool operator==(const RuleDecision &) const = default;
};

/** Decode a raw 32-bit filter return value. */
RuleDecision decodeAction(std::uint32_t ret);

/**
 * An ordered collection of verified rewrite-rule filters.
 *
 * Rules are consulted in insertion order; the first verdict other than
 * KILL wins. With no rules installed every divergence is fatal for the
 * follower, which is exactly the classic lockstep behaviour.
 */
class RuleSet
{
  public:
    /**
     * Assemble, verify and append a textual rule.
     * @return error status with EINVAL if it fails to assemble/verify
     *         (details via lastError()).
     */
    Status addRule(std::string_view source);

    /** Append an already-built program; must pass verification. */
    Status addProgram(Program prog);

    /** Run the rules over a divergence context. */
    RuleDecision evaluate(const FilterContext &ctx) const;

    std::size_t size() const { return programs_.size(); }
    bool empty() const { return programs_.empty(); }
    const std::string &lastError() const { return last_error_; }

  private:
    std::vector<Program> programs_;
    std::string last_error_;
};

} // namespace varan::bpf

#endif // VARAN_BPF_RULES_H
