#include "bpf/rules.h"

#include "bpf/asm.h"
#include "bpf/verifier.h"

namespace varan::bpf {

RuleDecision
decodeAction(std::uint32_t ret)
{
    RuleDecision d;
    switch (ret & kActionMask) {
      case kRetAllow:
        d.action = RuleAction::Allow;
        break;
      case kRetSkip:
        d.action = RuleAction::Skip;
        break;
      case kRetErrno:
        d.action = RuleAction::Errno;
        d.err = static_cast<int>(ret & kDataMask);
        break;
      default:
        d.action = RuleAction::Kill;
        break;
    }
    return d;
}

Status
RuleSet::addRule(std::string_view source)
{
    AssembleResult assembled = assemble(source);
    if (!assembled.ok) {
        last_error_ = "line " + std::to_string(assembled.error_line) +
                      ": " + assembled.error;
        return Status(Errno{EINVAL});
    }
    return addProgram(std::move(assembled.program));
}

Status
RuleSet::addProgram(Program prog)
{
    VerifyResult verdict = verify(prog);
    if (!verdict.ok()) {
        last_error_ = "insn " + std::to_string(verdict.offending_insn) +
                      ": " + verdict.reason;
        return Status(Errno{EINVAL});
    }
    programs_.push_back(std::move(prog));
    heat_.emplace_back();
    return Status::ok();
}

RuleDecision
RuleSet::evaluate(const FilterContext &ctx) const
{
    for (std::size_t i = 0; i < programs_.size(); ++i) {
        HeatSlot &slot = heat_[i];
        slot.evaluations.fetch_add(1, std::memory_order_relaxed);
        RuleDecision d = decodeAction(run(programs_[i], ctx));
        if (d.action != RuleAction::Kill) {
            const std::uint64_t wins =
                slot.decisions.fetch_add(1, std::memory_order_relaxed) + 1;
            if (hot_hook_ && hot_threshold_ > 0 &&
                wins >= hot_threshold_ &&
                !slot.hook_fired.exchange(true,
                                          std::memory_order_acq_rel)) {
                RuleHeat heat;
                heat.evaluations =
                    slot.evaluations.load(std::memory_order_relaxed);
                heat.decisions = wins;
                hot_hook_(i, heat);
            }
            return d;
        }
    }
    return RuleDecision{}; // KILL
}

RuleHeat
RuleSet::heat(std::size_t index) const
{
    RuleHeat out;
    if (index < heat_.size()) {
        out.evaluations =
            heat_[index].evaluations.load(std::memory_order_relaxed);
        out.decisions =
            heat_[index].decisions.load(std::memory_order_relaxed);
    }
    return out;
}

int
RuleSet::hottestRule() const
{
    int hottest = -1;
    std::uint64_t best = 0;
    for (std::size_t i = 0; i < heat_.size(); ++i) {
        const std::uint64_t wins =
            heat_[i].decisions.load(std::memory_order_relaxed);
        if (wins > best) {
            best = wins;
            hottest = static_cast<int>(i);
        }
    }
    return hottest;
}

void
RuleSet::onHotRule(std::uint64_t threshold,
                   std::function<void(std::size_t, const RuleHeat &)> hook)
{
    hot_threshold_ = threshold;
    hot_hook_ = std::move(hook);
}

} // namespace varan::bpf
