#include "bpf/rules.h"

#include "bpf/asm.h"
#include "bpf/verifier.h"

namespace varan::bpf {

RuleDecision
decodeAction(std::uint32_t ret)
{
    RuleDecision d;
    switch (ret & kActionMask) {
      case kRetAllow:
        d.action = RuleAction::Allow;
        break;
      case kRetSkip:
        d.action = RuleAction::Skip;
        break;
      case kRetErrno:
        d.action = RuleAction::Errno;
        d.err = static_cast<int>(ret & kDataMask);
        break;
      default:
        d.action = RuleAction::Kill;
        break;
    }
    return d;
}

Status
RuleSet::addRule(std::string_view source)
{
    AssembleResult assembled = assemble(source);
    if (!assembled.ok) {
        last_error_ = "line " + std::to_string(assembled.error_line) +
                      ": " + assembled.error;
        return Status(Errno{EINVAL});
    }
    return addProgram(std::move(assembled.program));
}

Status
RuleSet::addProgram(Program prog)
{
    VerifyResult verdict = verify(prog);
    if (!verdict.ok()) {
        last_error_ = "insn " + std::to_string(verdict.offending_insn) +
                      ": " + verdict.reason;
        return Status(Errno{EINVAL});
    }
    programs_.push_back(std::move(prog));
    return Status::ok();
}

RuleDecision
RuleSet::evaluate(const FilterContext &ctx) const
{
    for (const Program &prog : programs_) {
        RuleDecision d = decodeAction(run(prog, ctx));
        if (d.action != RuleAction::Kill)
            return d;
    }
    return RuleDecision{}; // KILL
}

} // namespace varan::bpf
