#include "bpf/verifier.h"

namespace varan::bpf {

namespace {

bool
validAluOp(std::uint16_t op)
{
    switch (op) {
      case BPF_ADD: case BPF_SUB: case BPF_MUL: case BPF_DIV:
      case BPF_OR: case BPF_AND: case BPF_LSH: case BPF_RSH:
      case BPF_NEG: case BPF_MOD: case BPF_XOR:
        return true;
      default:
        return false;
    }
}

bool
validJmpOp(std::uint16_t op)
{
    switch (op) {
      case BPF_JA: case BPF_JEQ: case BPF_JGT: case BPF_JGE:
      case BPF_JSET:
        return true;
      default:
        return false;
    }
}

} // namespace

VerifyResult
verify(const Program &prog)
{
    if (prog.empty())
        return VerifyResult::bad(0, "empty program");
    if (prog.size() > kMaxProgramLen)
        return VerifyResult::bad(0, "program too long");

    const std::size_t len = prog.size();
    for (std::size_t i = 0; i < len; ++i) {
        const Insn &insn = prog[i];
        const std::uint16_t cls = insn.code & 0x07;
        switch (cls) {
          case BPF_LD:
          case BPF_LDX: {
            const std::uint16_t mode = insn.code & 0xe0;
            const std::uint16_t size = insn.code & 0x18;
            if (size != BPF_W && size != BPF_H && size != BPF_B)
                return VerifyResult::bad(i, "bad load width");
            if (mode != BPF_IMM && mode != BPF_ABS && mode != BPF_IND &&
                mode != BPF_MEM && mode != BPF_LEN) {
                return VerifyResult::bad(i, "bad addressing mode");
            }
            if (mode == BPF_MEM && insn.k >= kMemWords)
                return VerifyResult::bad(i, "scratch index out of range");
            break;
          }
          case BPF_ST:
          case BPF_STX:
            if (insn.k >= kMemWords)
                return VerifyResult::bad(i, "scratch index out of range");
            break;
          case BPF_ALU: {
            const std::uint16_t op = insn.code & 0xf0;
            if (!validAluOp(op))
                return VerifyResult::bad(i, "bad ALU op");
            const bool from_k = (insn.code & BPF_X) == 0;
            if ((op == BPF_DIV || op == BPF_MOD) && from_k && insn.k == 0)
                return VerifyResult::bad(i, "constant division by zero");
            if ((op == BPF_LSH || op == BPF_RSH) && from_k && insn.k > 31)
                return VerifyResult::bad(i, "shift out of range");
            break;
          }
          case BPF_JMP: {
            const std::uint16_t op = insn.code & 0xf0;
            if (!validJmpOp(op))
                return VerifyResult::bad(i, "bad jump op");
            // Forward-only displacements make termination structural.
            // A displacement d from instruction i targets i + 1 + d,
            // which must stay within the program.
            const std::size_t max_disp = len - i - 1;
            if (op == BPF_JA) {
                if (insn.k >= max_disp)
                    return VerifyResult::bad(i, "jump out of bounds");
            } else {
                if (insn.jt >= max_disp)
                    return VerifyResult::bad(i, "true branch out of bounds");
                if (insn.jf >= max_disp)
                    return VerifyResult::bad(i,
                                             "false branch out of bounds");
                // A conditional whose both arms fall through to the next
                // instruction is fine; one that can only loop is
                // impossible since displacements are unsigned.
            }
            break;
          }
          case BPF_RET:
            break;
          case BPF_MISC: {
            const std::uint16_t op = insn.code & 0xf8;
            if (op != BPF_TAX && op != BPF_TXA)
                return VerifyResult::bad(i, "bad misc op");
            break;
          }
          default:
            return VerifyResult::bad(i, "unknown instruction class");
        }

        // Every straight-line fall off the end must be impossible: the
        // last reachable instruction has to be RET or an unconditional
        // jump (which, being forward-only, cannot target past the end —
        // checked above). The kernel requires last == RET; we do too.
        if (i == len - 1 && cls != BPF_RET)
            return VerifyResult::bad(i, "program does not end in RET");
    }
    return VerifyResult::good();
}

} // namespace varan::bpf
