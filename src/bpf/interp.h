/**
 * @file
 * Interpreter for verified BPF filters, with the seccomp_data view of
 * the follower's pending system call and VARAN's `event` extension for
 * peeking at the leader's event stream (section 3.4).
 */

#ifndef VARAN_BPF_INTERP_H
#define VARAN_BPF_INTERP_H

#include <cstdint>
#include <optional>

#include "bpf/insn.h"
#include "ring/event.h"

namespace varan::bpf {

/** Layout-compatible with the kernel's struct seccomp_data. */
struct SeccompData {
    std::int32_t nr = 0;
    std::uint32_t arch = 0xc000003e; // AUDIT_ARCH_X86_64
    std::uint64_t instruction_pointer = 0;
    std::uint64_t args[6] = {};
};

/**
 * Everything a rewrite-rule filter can observe: the system call the
 * follower is about to make and the event at the head of the leader's
 * stream (null when the stream is drained).
 */
struct FilterContext {
    SeccompData data;
    const ring::Event *event = nullptr;

    /** Word view over seccomp_data, as kernel filters see it. */
    std::uint32_t loadDataWord(std::uint32_t off, bool *ok) const;

    /** Word view over the leader event (extension space). */
    std::uint32_t loadEventWord(std::uint32_t index, bool *ok) const;
};

/**
 * Execute a filter over a context.
 *
 * The program must have been accepted by verify(); run() still refuses
 * out-of-range accesses defensively (returning 0 = KILL, the safe
 * default for a malfunctioning rule).
 *
 * @return the filter's 32-bit return value.
 */
std::uint32_t run(const Program &prog, const FilterContext &ctx);

} // namespace varan::bpf

#endif // VARAN_BPF_INTERP_H
