/**
 * @file
 * Shared-memory observability substrate: flight recorder, log2-bucket
 * latency histograms, and the structured divergence ledger.
 *
 * A `TraceBlock` lives inside the engine's `ControlBlock`, so every
 * process attached to the region — leader, followers, shipper,
 * receiver, coordinator, and an out-of-process `varanctl` — sees the
 * same records. Everything here is lock-free and crash-tolerant: a
 * variant dying mid-write tears at most one slot, never the structure.
 *
 * Three data structures, all bounded rings over atomics:
 *
 *  - TraceRecord ring (the flight recorder): fixed-size records
 *    stamped at each event-path stage. Writers claim a slot with one
 *    `fetch_add` and write in place; readers reconstruct the last
 *    `kTraceRecords` stamps post-mortem straight from the region.
 *  - Histograms: log2 buckets (bucket i counts values with bit-width
 *    i, i.e. in [2^(i-1), 2^i)), a sum, and a count — enough for
 *    Prometheus `_bucket`/`_sum`/`_count` exposition without floats
 *    in shared memory.
 *  - Divergence ledger: seqlock-stamped `DivergenceRecord`s. Readers
 *    consume from a private cursor and detect both torn slots and
 *    overwritten (lost) records.
 *
 * This header is standalone (cstdint/atomic/bit only): wire code and
 * tools include it without dragging in the core engine headers.
 */

#ifndef VARAN_TRACE_TRACE_H
#define VARAN_TRACE_TRACE_H

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace varan::trace {

/** Event-path stages stamped into the flight recorder. */
enum class Stage : std::uint16_t {
    None = 0,
    LeaderPublish,    ///< leader published an event (sampled)
    CoalesceFlush,    ///< coalesced run flushed to the ring
    FollowerDispatch, ///< follower dispatched an event (sampled)
    ShipperDrain,     ///< shipper drained a frame off a tuple ring
    ReceiverPublish,  ///< receiver re-published a frame locally
    Election,         ///< a new leader was elected (epoch bump)
    Promotion,        ///< this engine's monitor/receiver got promoted
    Divergence,       ///< a divergence was resolved or proved fatal
};

inline const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::None:             return "none";
      case Stage::LeaderPublish:    return "leader_publish";
      case Stage::CoalesceFlush:    return "coalesce_flush";
      case Stage::FollowerDispatch: return "follower_dispatch";
      case Stage::ShipperDrain:     return "shipper_drain";
      case Stage::ReceiverPublish:  return "receiver_publish";
      case Stage::Election:         return "election";
      case Stage::Promotion:        return "promotion";
      case Stage::Divergence:       return "divergence";
    }
    return "unknown";
}

/** One flight-recorder stamp. `a`/`b` are stage-specific payloads
 *  (sequence numbers, batch sizes, lags — see the stamp sites). */
struct TraceRecord {
    std::uint64_t ns;         ///< monotonic timestamp
    std::uint64_t a;          ///< stage-specific (seq / clock / lag)
    std::uint64_t b;          ///< stage-specific (count / aux)
    std::uint16_t stage;      ///< Stage
    std::uint8_t variant;
    std::uint8_t tuple;
    std::uint32_t code;       ///< syscall nr / error code / epoch
};
static_assert(sizeof(TraceRecord) == 32, "fixed flight-recorder stride");

/** Why the monitor acted on a divergence (mirrors bpf actions). */
enum class DivergenceAction : std::uint8_t {
    Resolved = 0, ///< Allow/Skip/Errno rewrite kept the variant alive
    Fatal = 1,    ///< Kill: the variant was terminated
};

/** One structured divergence: what the follower saw vs what the
 *  leader's stream expected. Plain POD — this exact layout ships over
 *  the wire (Divergence frame) from remote followers to the leader. */
struct DivergenceRecord {
    std::uint64_t lamport;     ///< Lamport clock at the divergent event
    std::uint64_t arg_digest;  ///< FNV-1a over the observed syscall args
    std::uint64_t ns;          ///< monotonic ns on the recording node
    std::uint64_t origin_id;   ///< 0 = local; receiver_id when shipped
    std::uint32_t epoch;       ///< engine epoch when recorded
    std::uint32_t expected_nr; ///< syscall nr the event stream carries
    std::uint32_t observed_nr; ///< syscall nr the variant executed
    std::uint16_t expected_type; ///< ring event type expected
    std::uint16_t observed_type; ///< ring event type observed
    std::uint8_t variant;
    std::uint8_t tuple;
    std::uint8_t action;       ///< DivergenceAction
    std::uint8_t origin;       ///< 0 = local node, 1 = shipped from remote
    std::uint8_t reserved[4];
};
static_assert(sizeof(DivergenceRecord) == 56, "wire-visible layout");

/** Ledger slot: record + seqlock stamp (claimed index + 1, written
 *  last with release). A reader that sees `seq != index + 1` is
 *  looking at a torn or overwritten slot and must skip it. */
struct LedgerSlot {
    DivergenceRecord rec;
    std::atomic<std::uint64_t> seq;
};
static_assert(sizeof(LedgerSlot) == 64, "one cache line per slot");

inline constexpr std::size_t kTraceRecords = 2048;   ///< power of two
inline constexpr std::size_t kLedgerSlots = 128;     ///< power of two
inline constexpr std::size_t kLagSlots = 256;        ///< power of two
inline constexpr std::size_t kHistogramBuckets = 32; ///< log2 bins

/** Sampling predicate for per-event stamp sites: 1-in-64 by Lamport
 *  timestamp, so the leader and every follower sample the *same*
 *  events — which is what makes the publish→dispatch lag pairing
 *  below work without any cross-process coordination. */
inline constexpr std::uint64_t kSampleMask = 63;

inline bool
sampled(std::uint64_t timestamp)
{
    return (timestamp & kSampleMask) == 0;
}

/** log2-bucket histogram. Bucket i counts values of bit-width i
 *  (value 0 lands in bucket 0); the last bucket absorbs overflow.
 *  The Prometheus upper bound of bucket i is 2^i - 1 nanoseconds. */
struct Histogram {
    std::atomic<std::uint64_t> buckets[kHistogramBuckets];
    std::atomic<std::uint64_t> sum;
    std::atomic<std::uint64_t> count;
};

inline unsigned
histogramBucket(std::uint64_t value)
{
    unsigned idx = static_cast<unsigned>(std::bit_width(value));
    return idx < kHistogramBuckets
               ? idx
               : static_cast<unsigned>(kHistogramBuckets - 1);
}

/** Inclusive Prometheus `le` bound of bucket @p i, in nanoseconds. */
inline std::uint64_t
histogramBound(unsigned i)
{
    return (i + 1 >= 64) ? ~0ULL : ((1ULL << (i + 1)) - 1) >> 1;
}

inline void
histogramRecord(Histogram &h, std::uint64_t value)
{
    h.buckets[histogramBucket(value)].fetch_add(
        1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
    h.count.fetch_add(1, std::memory_order_relaxed);
}

/** Leader-side half of the publish→dispatch lag pairing: the leader
 *  stores (timestamp, now) for sampled events; a follower dispatching
 *  the same timestamp later computes `now - ns`. Slots are keyed by
 *  `timestamp / (kSampleMask + 1)` so consecutive samples never
 *  collide until the table wraps. */
struct LagPair {
    std::atomic<std::uint64_t> stamp; ///< Lamport timestamp (release)
    std::atomic<std::uint64_t> ns;    ///< leader's monotonic ns
};

/**
 * The shared observability block, embedded in the ControlBlock.
 * Placement-new value-initialization zeroes every atomic; the engine
 * seeds `enabled` at start-up (on by default) and it can be toggled
 * live. The divergence ledger is *not* gated by `enabled` — it feeds
 * the on_divergence_record hook, which must fire regardless.
 */
struct TraceBlock {
    /** Live on/off switch (not a Tuning knob: flipping it must never
     *  interact with seeding or the adaptive controller). */
    std::atomic<std::uint32_t> enabled;
    std::uint32_t reserved0;

    /** Armed when a leader dies (local death or remote silence);
     *  consumed by the first post-promotion publish to produce one
     *  failover-blackout histogram sample. */
    std::atomic<std::uint64_t> leader_death_ns;

    // --- flight recorder ---
    std::atomic<std::uint64_t> trace_head; ///< total records ever claimed
    TraceRecord records[kTraceRecords];

    // --- latency histograms (all in nanoseconds) ---
    Histogram publish_lag;    ///< leader publish → follower dispatch
    Histogram coalesce_dwell; ///< first add → flush of a coalesced run
    Histogram credit_stall;   ///< wire drain blocked on a closed window
    Histogram blackout;       ///< leader death → first promoted publish

    // --- divergence ledger ---
    std::atomic<std::uint64_t> ledger_head; ///< total records ever claimed
    LedgerSlot ledger[kLedgerSlots];

    // --- publish→dispatch lag pairing table ---
    LagPair lag_pairs[kLagSlots];
};

inline bool
enabled(const TraceBlock &tb)
{
    return tb.enabled.load(std::memory_order_relaxed) != 0;
}

/** Stamp one flight-recorder record. Safe from any attached process;
 *  a concurrent writer on the same (wrapped) slot tears at most that
 *  slot. Call only when `enabled(tb)`. */
inline void
stamp(TraceBlock &tb, Stage stage, std::uint8_t variant,
      std::uint8_t tuple, std::uint32_t code, std::uint64_t ns,
      std::uint64_t a = 0, std::uint64_t b = 0)
{
    const std::uint64_t idx =
        tb.trace_head.fetch_add(1, std::memory_order_relaxed);
    TraceRecord &r = tb.records[idx & (kTraceRecords - 1)];
    r.ns = ns;
    r.a = a;
    r.b = b;
    r.stage = static_cast<std::uint16_t>(stage);
    r.variant = variant;
    r.tuple = tuple;
    r.code = code;
}

/** Leader half of the lag pairing (see LagPair). */
inline void
lagMark(TraceBlock &tb, std::uint64_t timestamp, std::uint64_t now)
{
    LagPair &p =
        tb.lag_pairs[(timestamp / (kSampleMask + 1)) & (kLagSlots - 1)];
    p.ns.store(now, std::memory_order_relaxed);
    p.stamp.store(timestamp, std::memory_order_release);
}

/** Follower half: records into `publish_lag` when the leader's mark
 *  for this exact timestamp is still in the table. */
inline void
lagMatch(TraceBlock &tb, std::uint64_t timestamp, std::uint64_t now)
{
    LagPair &p =
        tb.lag_pairs[(timestamp / (kSampleMask + 1)) & (kLagSlots - 1)];
    if (p.stamp.load(std::memory_order_acquire) != timestamp)
        return; // overwritten (slow follower) — drop the sample
    const std::uint64_t published = p.ns.load(std::memory_order_relaxed);
    if (now > published)
        histogramRecord(tb.publish_lag, now - published);
}

/** Append one divergence record. Multi-process safe: the slot is
 *  claimed with one fetch_add and committed by the seqlock store. */
inline void
ledgerAppend(TraceBlock &tb, const DivergenceRecord &rec)
{
    const std::uint64_t idx =
        tb.ledger_head.fetch_add(1, std::memory_order_relaxed);
    LedgerSlot &slot = tb.ledger[idx & (kLedgerSlots - 1)];
    slot.rec = rec;
    slot.seq.store(idx + 1, std::memory_order_release);
}

/**
 * Consume committed ledger records from @p cursor (a caller-owned
 * count of records already seen). Returns the number of records
 * copied into @p out; advances @p cursor past consumed *and* lost
 * records, so a reader that fell more than `kLedgerSlots` behind
 * resumes at the oldest record still present rather than spinning.
 */
inline std::size_t
ledgerRead(const TraceBlock &tb, std::uint64_t *cursor,
           DivergenceRecord *out, std::size_t max)
{
    const std::uint64_t head =
        tb.ledger_head.load(std::memory_order_acquire);
    if (*cursor + kLedgerSlots < head)
        *cursor = head - kLedgerSlots; // overwritten: records lost
    std::size_t n = 0;
    while (*cursor < head && n < max) {
        const std::uint64_t idx = *cursor;
        const LedgerSlot &slot = tb.ledger[idx & (kLedgerSlots - 1)];
        if (slot.seq.load(std::memory_order_acquire) != idx + 1) {
            // Torn (writer mid-flight) or already overwritten. Stop —
            // the next poll picks it up once the seqlock commits.
            break;
        }
        std::memcpy(&out[n], &slot.rec, sizeof(DivergenceRecord));
        if (slot.seq.load(std::memory_order_acquire) != idx + 1)
            break; // overwritten while copying: discard
        ++n;
        ++*cursor;
    }
    return n;
}

/**
 * Copy the most recent committed flight-recorder records, oldest
 * first. Returns the number copied (≤ min(max, kTraceRecords)).
 * Records claimed but possibly torn by in-flight writers are
 * included — the flight recorder favours completeness post-mortem.
 */
inline std::size_t
snapshotTrace(const TraceBlock &tb, TraceRecord *out, std::size_t max)
{
    const std::uint64_t head =
        tb.trace_head.load(std::memory_order_acquire);
    std::uint64_t n = head < kTraceRecords ? head : kTraceRecords;
    if (n > max)
        n = max;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t idx = head - n + i;
        out[i] = tb.records[idx & (kTraceRecords - 1)];
    }
    return static_cast<std::size_t>(n);
}

} // namespace varan::trace

#endif // VARAN_TRACE_TRACE_H
