#include "trace/inspect.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "core/layout.h"
#include "core/nvx.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"
#include "wire/io.h"
#include "wire/protocol.h"

namespace varan::trace {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                              sizeof(buf) - 1));
}

const char *
variantStateName(std::uint32_t state)
{
    switch (static_cast<core::VariantState>(state)) {
      case core::VariantState::Empty:   return "empty";
      case core::VariantState::Running: return "running";
      case core::VariantState::Crashed: return "crashed";
      case core::VariantState::Exited:  return "exited";
    }
    return "unknown";
}

void
appendHistogram(std::string &out, const char *name,
                const core::HistogramStatus &h)
{
    appendf(out, "%-16s count=%" PRIu64 " sum=%" PRIu64 "ns", name,
            h.count, h.sum);
    if (h.count > 0)
        appendf(out, " mean=%" PRIu64 "ns", h.sum / h.count);
    appendf(out, "\n");
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
        if (h.buckets[i] == 0)
            continue;
        if (i + 1 < kHistogramBuckets)
            appendf(out, "    le %" PRIu64 "ns: %" PRIu64 "\n",
                    histogramBound(i), h.buckets[i]);
        else
            appendf(out, "    le +Inf: %" PRIu64 "\n", h.buckets[i]);
    }
}

} // namespace

Result<shmem::Region>
attachProcessRegion(int pid)
{
    char dir_path[64];
    std::snprintf(dir_path, sizeof(dir_path), "/proc/%d/fd", pid);
    DIR *dir = ::opendir(dir_path);
    if (dir == nullptr)
        return errnoResult<shmem::Region>();
    int found = -1;
    int open_errno = ENOENT;
    while (struct dirent *entry = ::readdir(dir)) {
        if (entry->d_name[0] == '.')
            continue;
        char link_path[384];
        std::snprintf(link_path, sizeof(link_path), "%s/%s", dir_path,
                      entry->d_name);
        char target[256];
        const ssize_t n =
            ::readlink(link_path, target, sizeof(target) - 1);
        if (n <= 0)
            continue;
        target[n] = '\0';
        // The engine memfd reads "/memfd:varan-shm (deleted)" in the
        // fd table; opening the /proc link maps the same inode.
        if (std::strncmp(target, "/memfd:varan-shm", 16) != 0)
            continue;
        found = ::open(link_path, O_RDWR | O_CLOEXEC);
        if (found >= 0)
            break;
        open_errno = errno;
    }
    ::closedir(dir);
    if (found < 0)
        return Result<shmem::Region>(Errno{open_errno});
    struct stat st = {};
    if (::fstat(found, &st) < 0) {
        const int e = errno;
        ::close(found);
        return Result<shmem::Region>(Errno{e});
    }
    return shmem::Region::fromFd(Fd(found),
                                 static_cast<std::size_t>(st.st_size));
}

std::string
renderStatus(const core::StatusReport &report)
{
    std::string out;
    appendf(out,
            "engine: %u variant(s), leader %d, epoch %u, "
            "generation %u, %u tuple(s)\n",
            report.num_variants,
            report.leader == core::kNoLeader
                ? -1
                : static_cast<int>(report.leader),
            report.epoch, report.stream_generation, report.num_tuples);
    appendf(out,
            "stream: %" PRIu64 " events, %" PRIu64 " coalesced in %" PRIu64
            " batches, %" PRIu64 " fd transfers\n",
            report.events_streamed, report.events_coalesced,
            report.publish_batches, report.fd_transfers);
    appendf(out,
            "divergences: %" PRIu64 " resolved, %" PRIu64 " fatal, "
            "%" PRIu64 " ledger record(s)\n",
            report.divergences_resolved, report.divergences_fatal,
            report.trace.ledger_records);
    appendf(out,
            "trace: %s, %" PRIu64 " flight-recorder stamp(s)\n",
            report.trace.enabled ? "enabled" : "disabled",
            report.trace.trace_records);
    for (std::uint32_t v = 0; v < report.num_variants; ++v) {
        const core::VariantStatus &vs = report.variants[v];
        appendf(out,
                "variant %u: %s pid=%u role=%s syscalls=%" PRIu64
                " ring_lag=%" PRIu64 " restarts=%u\n",
                v, variantStateName(vs.state), vs.pid,
                vs.role == static_cast<std::uint32_t>(
                               core::VariantRole::FollowerOnly)
                    ? "follower-only"
                    : "leader-candidate",
                vs.syscalls, vs.ring_lag, vs.restarts);
    }
    if (report.shipper.active)
        appendf(out,
                "shipper: link %s, %u peer(s), %" PRIu64 " frames, "
                "%" PRIu64 " credit stall(s)\n",
                report.shipper.link_up ? "up" : "down",
                report.shipper.peers, report.shipper.frames,
                report.shipper.credit_stalls);
    if (report.receiver.active)
        appendf(out,
                "receiver: link %s, promoted=%u%s, %" PRIu64 " frames\n",
                report.receiver.link_up ? "up" : "down",
                report.receiver.promoted,
                report.receiver.fenced ? ", FENCED" : "",
                report.receiver.frames);
    return out;
}

std::string
renderQuorum(const core::StatusReport &report)
{
    const core::QuorumStatus &q = report.quorum;
    std::string out;
    if (!q.active) {
        appendf(out, "quorum: not configured (single-node watchdog "
                     "promotion)\n");
        return out;
    }
    appendf(out, "quorum: node %u of %u member(s), %u live, term %" PRIu64
                 "\n",
            q.node_id, q.members, q.live_members, q.term);
    if (q.holder == wire::kNoQuorumNode)
        appendf(out, "lease: none held (term %" PRIu64 " expired or never "
                     "granted)\n",
                q.term);
    else
        appendf(out, "lease: held by node %u%s\n", q.holder,
                q.holder == q.node_id ? " (this node)" : "");
    appendf(out, "health: %s\n",
            q.fenced ? "FENCED — minority side of a partition, "
                       "buffering only"
                     : (q.live_members * 2 > q.members
                            ? "quorate"
                            : "degraded — below strict majority"));
    appendf(out, "elections: %" PRIu64 " started, %" PRIu64 " won, "
                 "%" PRIu64 " vote(s) granted to peers, %" PRIu64
                 " fence order(s)\n",
            q.elections, q.leases_won, q.votes_granted, q.fences);
    return out;
}

std::string
renderHistograms(const core::StatusReport &report)
{
    std::string out;
    appendHistogram(out, "publish_lag", report.trace.publish_lag);
    appendHistogram(out, "coalesce_dwell", report.trace.coalesce_dwell);
    appendHistogram(out, "credit_stall", report.trace.credit_stall);
    appendHistogram(out, "blackout", report.trace.blackout);
    return out;
}

std::string
renderTuning(const core::StatusReport &report)
{
    std::string out;
    appendf(out, "adaptive: %s, %" PRIu64 " sample(s), %" PRIu64
                 " decision(s), pinned mask 0x%x\n",
            report.adapt.active ? "on" : "off", report.adapt.samples,
            report.adapt.decisions, report.adapt.pinned_mask);
    appendf(out, "ship_batch=%u credit_window=%u coalesce_run=%u "
                 "coalesce_window_ns=%" PRIu64 " fastpath_top_k=%u\n",
            report.adapt.ship_batch, report.adapt.credit_window,
            report.adapt.coalesce_run, report.adapt.coalesce_window_ns,
            report.adapt.fastpath_top_k);
    return out;
}

std::string
renderLedger(const DivergenceRecord *records, std::size_t count)
{
    std::string out;
    for (std::size_t i = 0; i < count; ++i) {
        const DivergenceRecord &r = records[i];
        appendf(out,
                "divergence: variant=%u tuple=%u lamport=%" PRIu64
                " expected_nr=%u observed_nr=%u action=%s epoch=%u "
                "origin=%s",
                r.variant, r.tuple, r.lamport, r.expected_nr,
                r.observed_nr,
                static_cast<DivergenceAction>(r.action) ==
                        DivergenceAction::Fatal
                    ? "fatal"
                    : "resolved",
                r.epoch, r.origin == 0 ? "local" : "remote");
        if (r.origin != 0)
            appendf(out, " receiver=%" PRIu64, r.origin_id);
        appendf(out, "\n");
    }
    return out;
}

std::string
renderTrace(const TraceRecord *records, std::size_t count)
{
    std::string out;
    for (std::size_t i = 0; i < count; ++i) {
        const TraceRecord &r = records[i];
        appendf(out,
                "%" PRIu64 " %-17s variant=%u tuple=%u code=%u "
                "a=%" PRIu64 " b=%" PRIu64 "\n",
                r.ns, stageName(static_cast<Stage>(r.stage)), r.variant,
                r.tuple, r.code, r.a, r.b);
    }
    return out;
}

namespace {

struct Sections {
    bool status = false;
    bool metrics = false;
    bool tuning = false;
    bool quorum = false;
    bool ledger = false;
    bool trace = false;
};

bool
parseSections(int argc, char **argv, int first, Sections *out)
{
    if (first >= argc) {
        // Default: everything except the (long) raw flight recorder.
        out->status = out->metrics = out->tuning = out->quorum =
            out->ledger = true;
        return true;
    }
    for (int i = first; i < argc; ++i) {
        if (std::strcmp(argv[i], "status") == 0)
            out->status = true;
        else if (std::strcmp(argv[i], "metrics") == 0)
            out->metrics = true;
        else if (std::strcmp(argv[i], "tuning") == 0)
            out->tuning = true;
        else if (std::strcmp(argv[i], "quorum") == 0)
            out->quorum = true;
        else if (std::strcmp(argv[i], "ledger") == 0)
            out->ledger = true;
        else if (std::strcmp(argv[i], "trace") == 0)
            out->trace = true;
        else {
            std::fprintf(stderr, "varanctl: unknown section '%s'\n",
                         argv[i]);
            return false;
        }
    }
    return true;
}

int
printAttached(const shmem::Region &region, const Sections &sections)
{
    auto layout = core::EngineLayout::attach(&region);
    if (!layout.ok()) {
        std::fprintf(stderr,
                     "varanctl: region is not an initialised engine: %s\n",
                     layout.error().message().c_str());
        return 1;
    }
    const core::StatusReport report =
        core::collectStatus(&region, layout.value());
    const core::ControlBlock *cb =
        layout.value().controlBlock(&region);
    if (sections.status)
        std::fputs(renderStatus(report).c_str(), stdout);
    if (sections.metrics)
        std::fputs(core::statusText(report).c_str(), stdout);
    if (sections.tuning)
        std::fputs(renderTuning(report).c_str(), stdout);
    if (sections.quorum)
        std::fputs(renderQuorum(report).c_str(), stdout);
    if (sections.ledger) {
        // Attached mode reads the *full* retained ledger, not just the
        // report's tail: start the cursor one window back.
        const std::uint64_t head =
            cb->trace.ledger_head.load(std::memory_order_acquire);
        std::uint64_t cursor =
            head > kLedgerSlots ? head - kLedgerSlots : 0;
        DivergenceRecord records[kLedgerSlots];
        const std::size_t n =
            ledgerRead(cb->trace, &cursor, records, kLedgerSlots);
        std::fputs(renderLedger(records, n).c_str(), stdout);
    }
    if (sections.trace) {
        std::vector<TraceRecord> records(kTraceRecords);
        const std::size_t n =
            snapshotTrace(cb->trace, records.data(), records.size());
        std::fputs(renderTrace(records.data(), n).c_str(), stdout);
    }
    return 0;
}

int
commandAttach(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: varanctl attach <pid> [sections]\n");
        return 2;
    }
    Sections sections;
    if (!parseSections(argc, argv, 3, &sections))
        return 2;
    const int pid = std::atoi(argv[2]);
    auto region = attachProcessRegion(pid);
    if (!region.ok()) {
        std::fprintf(stderr,
                     "varanctl: cannot attach to pid %d: %s\n", pid,
                     region.error().message().c_str());
        return 1;
    }
    return printAttached(region.value(), sections);
}

/** Run the wire Status RPC against a coordinator's status endpoint. */
bool
dialStatus(const std::string &endpoint, core::StatusReport *out)
{
    auto sock = netio::connectAbstract(endpoint, 5000);
    if (!sock.ok()) {
        std::fprintf(stderr, "varanctl: cannot connect to '%s': %s\n",
                     endpoint.c_str(), sock.error().message().c_str());
        return false;
    }
    const int fd = sock.value();
    bool decoded = false;
    wire::FrameHeader request = wire::makeStatusRequest();
    std::vector<std::uint8_t> body(sizeof(core::StatusReport));
    wire::FrameHeader header = {};
    if (wire::writeFull(fd, &request, sizeof(request)) &&
        wire::readFull(fd, &header, sizeof(header)) &&
        wire::headerValid(header) &&
        header.body_len == sizeof(core::StatusReport) &&
        wire::readFull(fd, body.data(), body.size())) {
        decoded =
            wire::decodeStatusFrame(header, body.data(), body.size(), out);
    }
    ::close(fd);
    if (!decoded)
        std::fprintf(stderr,
                     "varanctl: no decodable Status reply from '%s'\n",
                     endpoint.c_str());
    return decoded;
}

int
commandDial(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: varanctl dial <endpoint> [sections]\n");
        return 2;
    }
    Sections sections;
    if (!parseSections(argc, argv, 3, &sections))
        return 2;
    core::StatusReport report = {};
    if (!dialStatus(argv[2], &report))
        return 1;
    if (sections.status)
        std::fputs(renderStatus(report).c_str(), stdout);
    if (sections.metrics)
        std::fputs(core::statusText(report).c_str(), stdout);
    if (sections.tuning)
        std::fputs(renderTuning(report).c_str(), stdout);
    if (sections.quorum)
        std::fputs(renderQuorum(report).c_str(), stdout);
    if (sections.ledger)
        std::fputs(renderLedger(report.trace.recent,
                                report.trace.recent_count)
                       .c_str(),
                   stdout);
    if (sections.trace)
        std::fprintf(stderr, "varanctl: the flight recorder is only "
                             "readable in attach mode\n");
    return 0;
}

/**
 * End-to-end smoke used by CI: run a two-variant engine whose follower
 * deliberately diverges (resolved by a BPF Allow rule), then inspect
 * it through both paths — attach against our own pid and dial against
 * the engine's status endpoint — and verify the output carries the
 * status, a populated latency histogram and the divergence record.
 */
int
commandSelftest()
{
    core::EngineConfig config;
    config.ring.capacity = 64;
    config.shm_bytes = 16 << 20;
    config.ring.progress_timeout_ns = 10000000000ULL;
    // Listing 1 (section 5.2): allow a follower getuid the leader
    // never made while the leader sits at getpid.
    config.rewrite_rules.push_back(
        "ld event[0]\n"
        "jeq #39, checkmine /* leader at getpid */\n"
        "jmp bad\n"
        "checkmine:\n"
        "ld [0]\n"
        "jeq #102, good /* follower wants getuid */\n"
        "bad: ret #0\n"
        "good: ret #0x7fff0000\n");
    char endpoint[64];
    std::snprintf(endpoint, sizeof(endpoint), "varanctl-selftest-%d",
                  static_cast<int>(::getpid()));
    config.remote.status_endpoint = endpoint;

    auto app = []() -> int {
        if (core::Monitor::instance() &&
            core::Monitor::instance()->variantId() == 1) {
            sys::vgetuid(); // deliberate divergence, resolved by rule
        }
        // Enough events that the 1-in-64 lag sampling definitely fires.
        for (int i = 0; i < 512; ++i)
            sys::vgetpid();
        return 0;
    };
    core::Nvx nvx(config);
    auto results = nvx.run({app, app});
    for (const auto &result : results) {
        if (result.crashed || result.status != 0) {
            std::fprintf(stderr,
                         "varanctl selftest: variant %d failed "
                         "(crashed=%d status=%d)\n",
                         result.variant, result.crashed, result.status);
            return 1;
        }
    }

    // Path 1: attach against our own coordinator pid.
    auto region = attachProcessRegion(static_cast<int>(::getpid()));
    if (!region.ok()) {
        std::fprintf(stderr, "varanctl selftest: attach failed: %s\n",
                     region.error().message().c_str());
        return 1;
    }
    auto layout = core::EngineLayout::attach(&region.value());
    if (!layout.ok()) {
        std::fprintf(stderr,
                     "varanctl selftest: layout attach failed: %s\n",
                     layout.error().message().c_str());
        return 1;
    }
    const core::StatusReport attached =
        core::collectStatus(&region.value(), layout.value());

    // Path 2: dial the engine's status endpoint.
    core::StatusReport dialed = {};
    if (!dialStatus(endpoint, &dialed))
        return 1;

    Sections sections;
    sections.status = sections.metrics = sections.tuning =
        sections.ledger = true;
    const int rc = printAttached(region.value(), sections);
    if (rc != 0)
        return rc;

    // The assertions CI leans on.
    const core::StatusReport *reports[] = {&attached, &dialed};
    for (const core::StatusReport *report : reports) {
        if (report->divergences_resolved < 1 ||
            report->trace.ledger_records < 1 ||
            report->trace.recent_count < 1) {
            std::fprintf(stderr, "varanctl selftest: no divergence "
                                 "record surfaced\n");
            return 1;
        }
        const DivergenceRecord &rec =
            report->trace.recent[report->trace.recent_count - 1];
        if (rec.observed_nr != 102 || rec.expected_nr != 39 ||
            rec.action !=
                static_cast<std::uint8_t>(DivergenceAction::Resolved)) {
            std::fprintf(stderr, "varanctl selftest: unexpected ledger "
                                 "record (%u -> %u)\n",
                         rec.expected_nr, rec.observed_nr);
            return 1;
        }
        if (report->trace.publish_lag.count < 1) {
            std::fprintf(stderr, "varanctl selftest: publish-lag "
                                 "histogram is empty\n");
            return 1;
        }
    }
    std::fputs("varanctl selftest: ok\n", stdout);
    return 0;
}

} // namespace

int
varanctlMain(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(
            stderr,
            "usage: varanctl <command> ...\n"
            "  attach <pid> [sections]      inspect a live engine's "
            "shared region\n"
            "  dial <endpoint> [sections]   wire Status RPC against a "
            "status endpoint\n"
            "  selftest                     run + inspect an in-process "
            "engine\n"
            "sections: status metrics tuning quorum ledger trace "
            "(default: all but trace)\n");
        return 2;
    }
    if (std::strcmp(argv[1], "attach") == 0)
        return commandAttach(argc, argv);
    if (std::strcmp(argv[1], "dial") == 0)
        return commandDial(argc, argv);
    if (std::strcmp(argv[1], "selftest") == 0)
        return commandSelftest();
    std::fprintf(stderr, "varanctl: unknown command '%s'\n", argv[1]);
    return 2;
}

} // namespace varan::trace
