/**
 * @file
 * Out-of-process engine inspection: the library behind `varanctl`.
 *
 * Two attachment paths cover every deployment shape:
 *
 *  - attach <pid>: find the engine memfd ("varan-shm") in the target
 *    coordinator's /proc/<pid>/fd table, map it with Region::fromFd
 *    and reconstruct the layout with EngineLayout::attach(). This
 *    reads the *live* shared block — full flight recorder, full
 *    divergence ledger, histograms as they tick.
 *  - dial <endpoint>: connect to the abstract socket a coordinator
 *    serves via RemoteConfig::status_endpoint and run the wire Status
 *    RPC (an empty Status frame in, a StatusReport out). Works across
 *    machines; carries the histogram snapshots and the ledger tail.
 *
 * The render helpers are exposed so tests can assert on the exact
 * output varanctl prints.
 */

#ifndef VARAN_TRACE_INSPECT_H
#define VARAN_TRACE_INSPECT_H

#include <cstddef>
#include <string>

#include "common/result.h"
#include "core/status.h"
#include "shmem/region.h"
#include "trace/trace.h"

namespace varan::trace {

/** Map the engine region of a live coordinator by scanning its
 *  /proc/<pid>/fd table for the "varan-shm" memfd. Fails with ENOENT
 *  when the process holds no engine region (or already exited), and
 *  with EACCES when /proc denies the open (different user). */
Result<shmem::Region> attachProcessRegion(int pid);

/** Human-readable engine summary (geometry, election state, stream
 *  counters, per-variant health, trace/ledger totals). */
std::string renderStatus(const core::StatusReport &report);

/** Human-readable latency histograms (non-empty buckets only). */
std::string renderHistograms(const core::StatusReport &report);

/** The live tuning-knob values carried in the report. */
std::string renderTuning(const core::StatusReport &report);

/** The quorum control plane: membership health, lease holder and term,
 *  fencing state, election counters (wire v6). */
std::string renderQuorum(const core::StatusReport &report);

/** One line per divergence record, oldest first. */
std::string renderLedger(const DivergenceRecord *records,
                         std::size_t count);

/** One line per flight-recorder record, oldest first. */
std::string renderTrace(const TraceRecord *records, std::size_t count);

/** `varanctl` entry point (argv[0] is the program name). */
int varanctlMain(int argc, char **argv);

} // namespace varan::trace

#endif // VARAN_TRACE_INSPECT_H
