/**
 * @file
 * AutoTuner: the feedback loop that retunes the event path online.
 *
 * One background thread per engine. Each tick it (1) asks the Sampler
 * for the rate picture since the last tick, (2) hands that plus the
 * live knob snapshot to the Controller, and (3) applies the resulting
 * decisions to the shared TuningBlock — where the Monitor's publish
 * path, the PublishCoalescer and the wire Shipper re-read them at
 * batch boundaries. Pinned knobs (TuningHandle::set() pins by default)
 * are skipped, so an operator override always wins over the
 * controller.
 *
 * The fast-path table is maintained here too: hot syscall numbers are
 * written into TuningBlock::fastpath_nrs *before* the FastpathTopK
 * width that exposes them is raised, so the leader never scans
 * uninitialised slots.
 *
 * tickOnce() runs one synchronous round with a caller-supplied clock —
 * that is what the deterministic tests and the benches drive.
 */

#ifndef VARAN_ADAPT_AUTOTUNER_H
#define VARAN_ADAPT_AUTOTUNER_H

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "adapt/controller.h"
#include "adapt/sampler.h"

namespace varan::adapt {

class AutoTuner
{
  public:
    struct Options {
        /** Sampling/decision cadence for the background thread. */
        std::uint64_t tick_ns = 10'000'000;
        ControllerConfig controller;
    };

    AutoTuner(const shmem::Region *region, const core::EngineLayout *layout,
              Options options, Sampler::WireSource wire = {});
    ~AutoTuner();

    AutoTuner(const AutoTuner &) = delete;
    AutoTuner &operator=(const AutoTuner &) = delete;

    /** Start the background tick thread (idempotent). */
    void start();
    /** Stop and join the tick thread (idempotent; run by ~AutoTuner). */
    void stop();

    /** One synchronous sample→decide→apply round. Returns the
     *  decisions actually applied (pinned knobs filtered out). */
    std::vector<Decision> tickOnce(std::uint64_t now_ns);

    /** Knob adjustments applied over this tuner's lifetime. */
    std::uint64_t decisionsApplied() const
    {
        return decisions_applied_.load(std::memory_order_relaxed);
    }

  private:
    void loop();
    /** Sync TuningBlock::fastpath_nrs with the sampled hot set. */
    void updateFastpathTable(const Sample &sample);

    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    Options options_;
    Sampler sampler_;
    Controller controller_;

    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> decisions_applied_{0};
};

} // namespace varan::adapt

#endif // VARAN_ADAPT_AUTOTUNER_H
