#include "adapt/autotuner.h"

#include "common/clock.h"

namespace varan::adapt {

using core::Knob;
using core::TuningBlock;

AutoTuner::AutoTuner(const shmem::Region *region,
                     const core::EngineLayout *layout, Options options,
                     Sampler::WireSource wire)
    : region_(region), layout_(layout), options_(options),
      sampler_(region, layout, std::move(wire)),
      controller_(options.controller)
{
}

AutoTuner::~AutoTuner()
{
    stop();
}

void
AutoTuner::start()
{
    if (running_.exchange(true, std::memory_order_acq_rel))
        return;
    TuningBlock &tuning = layout_->controlBlock(region_)->tuning;
    tuning.adapt_active.store(1, std::memory_order_release);
    thread_ = std::thread(&AutoTuner::loop, this);
}

void
AutoTuner::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel))
        return;
    if (thread_.joinable())
        thread_.join();
    layout_->controlBlock(region_)->tuning.adapt_active.store(
        0, std::memory_order_release);
}

void
AutoTuner::loop()
{
    while (running_.load(std::memory_order_acquire)) {
        sleepNs(options_.tick_ns);
        if (!running_.load(std::memory_order_acquire))
            break;
        tickOnce(monotonicNs());
    }
}

void
AutoTuner::updateFastpathTable(const Sample &sample)
{
    TuningBlock &tuning = layout_->controlBlock(region_)->tuning;
    for (std::uint32_t i = 0; i < core::kFastPathSlots; ++i) {
        const std::uint32_t tag =
            i < sample.hot_count
                ? static_cast<std::uint32_t>(sample.hot_nrs[i]) + 1
                : 0;
        tuning.fastpath_nrs[i].store(tag, std::memory_order_relaxed);
    }
}

std::vector<Decision>
AutoTuner::tickOnce(std::uint64_t now_ns)
{
    TuningBlock &tuning = layout_->controlBlock(region_)->tuning;

    const Sample sample = sampler_.tick(now_ns);
    tuning.adapt_samples.fetch_add(1, std::memory_order_relaxed);

    core::Tuning current;
    current.ship_batch = static_cast<std::uint32_t>(
        core::liveKnob(tuning, Knob::ShipBatch));
    current.credit_window = static_cast<std::uint32_t>(
        core::liveKnob(tuning, Knob::CreditWindow));
    current.coalesce_run = static_cast<std::uint32_t>(
        core::liveKnob(tuning, Knob::CoalesceRun));
    current.coalesce_window_ns =
        core::liveKnob(tuning, Knob::CoalesceWindowNs);
    current.fastpath_top_k = static_cast<std::uint32_t>(
        core::liveKnob(tuning, Knob::FastpathTopK));

    std::vector<Decision> decisions = controller_.step(sample, current);

    // The hot table must be in place before any FastpathTopK raise
    // widens the leader's scan into it.
    updateFastpathTable(sample);

    const std::uint32_t pinned =
        tuning.pinned_mask.load(std::memory_order_acquire);
    std::vector<Decision> applied;
    applied.reserve(decisions.size());
    for (const Decision &d : decisions) {
        if (pinned & (1u << static_cast<std::uint32_t>(d.knob)))
            continue; // operator override wins
        core::applyKnob(tuning, d.knob, d.to);
        tuning.adapt_decisions.fetch_add(1, std::memory_order_relaxed);
        decisions_applied_.fetch_add(1, std::memory_order_relaxed);
        applied.push_back(d);
    }
    return applied;
}

} // namespace varan::adapt
