/**
 * @file
 * The adaptive feedback controller (the decision half of src/adapt/).
 *
 * Pure and deterministic: step() maps one Sample (what the event path
 * did since the last tick) plus the current live knob values to a list
 * of knob adjustments. No clocks, no threads, no shared memory — the
 * AutoTuner owns those — so unit tests drive it with scripted samples
 * and assert convergence, hysteresis and clamping exactly.
 *
 * Per-knob policy (AIMD hill-climbing with hysteresis, hard
 * floor/ceiling via core::kKnobRanges):
 *
 *  - ShipBatch / CoalesceRun climb their throughput signal: a move
 *    that raised the rate by more than the hysteresis band earns an
 *    additive increase, a move that lowered it costs a multiplicative
 *    (halving) decrease, and a flat plateau probes upward — deeper
 *    batching is free until it is not, and the next regression undoes
 *    an overshoot.
 *  - CreditWindow reacts to pressure: credit-stalled drain passes
 *    double it (the window is what gates the drain), a long clean
 *    streak decays it by a quarter toward its resting default.
 *  - CoalesceWindowNs is derived: a run cap only fills if the
 *    staleness window gives it time, so the window tracks the run
 *    length at ~12.5 µs per event (run 16 = the historical 200 µs).
 *  - FastpathTopK follows the eligible hot-syscall set the sampler
 *    found (the table itself is written by the AutoTuner).
 */

#ifndef VARAN_ADAPT_CONTROLLER_H
#define VARAN_ADAPT_CONTROLLER_H

#include <cstdint>
#include <vector>

#include "core/tuning.h"

namespace varan::adapt {

/** One sampling tick's view of the event path (rates, not totals). */
struct Sample {
    /** Events published into the tuple rings per second. */
    double events_per_sec = 0;
    /** Share of leader dispatches that were fast-path eligible. */
    double payload_free_frac = 0;
    /** Max ring occupancy across tuples and consumers, 0..1. */
    double occupancy = 0;
    /** Payload-pool spills to the global arena per second. */
    double spills_per_sec = 0;

    bool wire_active = false;       ///< a shipper is running
    double wire_events_per_sec = 0; ///< events drained to the wire
    /** Credit-stalled share of drain passes with backlog, 0..1. */
    double credit_stall_frac = 0;

    /** Fast-path-eligible hot syscalls, hottest first. */
    std::uint16_t hot_nrs[core::kFastPathSlots] = {};
    std::uint32_t hot_count = 0;
};

/** One knob adjustment the controller wants applied. */
struct Decision {
    core::Knob knob;
    std::uint64_t from;
    std::uint64_t to;
};

struct ControllerConfig {
    /** Dead band around "no change": rate moves within ±hysteresis
     *  neither reward nor punish the last adjustment. */
    double hysteresis = 0.10;
    /** Ticks a knob rests between decisions (lets a move settle into
     *  the rate signal before it is judged). */
    std::uint32_t settle_ticks = 2;
};

class Controller
{
  public:
    explicit Controller(ControllerConfig config = {}) : config_(config) {}

    /** One decision round. @p current is the live knob snapshot;
     *  returns the adjustments to apply (empty = hold everything). */
    std::vector<Decision> step(const Sample &sample,
                               const core::Tuning &current);

  private:
    struct KnobState {
        double last_rate = 0; ///< signal when this knob last decided
        std::uint32_t ticks = 0;
    };

    /** AIMD hill-climb for a batch-size knob on a throughput signal. */
    void stepThroughput(core::Knob knob, std::uint64_t value, double rate,
                        std::uint64_t step, KnobState *state,
                        std::vector<Decision> *out);

    ControllerConfig config_;
    KnobState ship_state_;
    KnobState run_state_;
    KnobState credit_state_;
    std::uint32_t credit_clean_ticks_ = 0;
};

} // namespace varan::adapt

#endif // VARAN_ADAPT_CONTROLLER_H
