#include "adapt/sampler.h"

#include <algorithm>

#include "ring/ring_buffer.h"

namespace varan::adapt {

namespace {

/** A syscall must carry at least 1/64 of the tick's dispatch mix to
 *  count as "hot" — keeps the fast-path table from churning on noise. */
constexpr std::uint64_t kHotShareDenominator = 64;

} // namespace

Sampler::Sampler(const shmem::Region *region,
                 const core::EngineLayout *layout, WireSource wire)
    : region_(region), layout_(layout), wire_(std::move(wire))
{
}

Sample
Sampler::tick(std::uint64_t now_ns)
{
    Sample sample;
    core::ControlBlock *cb = layout_->controlBlock(region_);

    const std::uint64_t events =
        cb->events_streamed.load(std::memory_order_relaxed);
    const std::uint64_t spills = layout_->pool(region_).stats().spills;
    WireSample wire;
    if (wire_)
        wire = wire_();

    std::uint64_t hist[core::kSyscallStatsSlots];
    for (std::uint32_t i = 0; i < core::kSyscallStatsSlots; ++i)
        hist[i] = cb->tuning.sys_hist[i].load(std::memory_order_relaxed);

    // Ring occupancy: the fullest active cursor across all tuples,
    // mirrored per tuple into the shared lag EWMAs (16.16 fixed point,
    // alpha = 1/8) for StatusReport and post-mortem inspection.
    const std::uint32_t tuples =
        std::min(cb->num_tuples.load(std::memory_order_acquire),
                 core::kMaxTuples);
    double occupancy = 0;
    for (std::uint32_t t = 0; t < tuples; ++t) {
        ring::RingBuffer ring = layout_->tupleRing(region_, t);
        std::uint64_t max_lag = 0;
        for (int c = 0; c < static_cast<int>(ring::kMaxConsumers); ++c) {
            if (!ring.consumerActive(c))
                continue;
            max_lag = std::max(max_lag, ring.lag(c));
        }
        std::atomic<std::uint64_t> &ewma = cb->tuning.lag_ewma[t];
        const std::uint64_t old = ewma.load(std::memory_order_relaxed);
        ewma.store(old - old / 8 + (max_lag << 16) / 8,
                   std::memory_order_relaxed);
        if (ring.capacity() > 0)
            occupancy = std::max(
                occupancy, static_cast<double>(max_lag) / ring.capacity());
    }
    sample.occupancy = std::min(occupancy, 1.0);

    if (!primed_) {
        // First tick: establish baselines, report zero rates.
        primed_ = true;
        prev_ns_ = now_ns;
        prev_events_ = events;
        prev_spills_ = spills;
        prev_wire_ = wire;
        std::copy(hist, hist + core::kSyscallStatsSlots, prev_hist_);
        sample.wire_active = wire.active;
        return sample;
    }

    const std::uint64_t dt_ns = now_ns > prev_ns_ ? now_ns - prev_ns_ : 1;
    const double dt = static_cast<double>(dt_ns) / 1e9;

    sample.events_per_sec =
        static_cast<double>(events - prev_events_) / dt;
    sample.spills_per_sec =
        static_cast<double>(spills - prev_spills_) / dt;

    sample.wire_active = wire.active;
    if (wire.active) {
        sample.wire_events_per_sec =
            static_cast<double>(wire.events - prev_wire_.events) / dt;
        const std::uint64_t passes =
            wire.drain_passes - prev_wire_.drain_passes;
        const std::uint64_t stalls =
            wire.credit_stalls - prev_wire_.credit_stalls;
        if (passes + stalls > 0)
            sample.credit_stall_frac =
                static_cast<double>(stalls) /
                static_cast<double>(passes + stalls);
    }

    // Syscall mix: the fast-path-eligible calls that carried at least
    // 1/64 of this tick's dispatches, hottest first.
    std::uint64_t total = 0;
    std::uint64_t delta[core::kSyscallStatsSlots];
    for (std::uint32_t i = 0; i < core::kSyscallStatsSlots; ++i) {
        delta[i] = hist[i] - prev_hist_[i];
        total += delta[i];
    }
    if (total > 0) {
        struct Hot {
            std::uint64_t count;
            std::uint16_t nr;
        };
        Hot hot[core::kFastPathSlots];
        std::uint32_t n = 0;
        std::uint64_t eligible = 0;
        for (std::uint32_t nr = 0; nr < core::kSyscallStatsSlots; ++nr) {
            if (delta[nr] == 0)
                continue;
            if (!sys::fastpathEligible(static_cast<long>(nr)))
                continue;
            eligible += delta[nr];
            if (delta[nr] * kHotShareDenominator < total)
                continue;
            const Hot entry = {delta[nr], static_cast<std::uint16_t>(nr)};
            // Insertion sort into the fixed top-k table.
            std::uint32_t pos = n < core::kFastPathSlots ? n : n - 1;
            if (n < core::kFastPathSlots)
                ++n;
            else if (hot[pos].count >= entry.count)
                continue;
            while (pos > 0 && hot[pos - 1].count < entry.count) {
                hot[pos] = hot[pos - 1];
                --pos;
            }
            hot[pos] = entry;
        }
        sample.payload_free_frac =
            static_cast<double>(eligible) / static_cast<double>(total);
        sample.hot_count = n;
        for (std::uint32_t i = 0; i < n; ++i)
            sample.hot_nrs[i] = hot[i].nr;
    }

    prev_ns_ = now_ns;
    prev_events_ = events;
    prev_spills_ = spills;
    prev_wire_ = wire;
    std::copy(hist, hist + core::kSyscallStatsSlots, prev_hist_);
    return sample;
}

} // namespace varan::adapt
