#include "adapt/controller.h"

namespace varan::adapt {

namespace {

/** Additive-increase step for the batch-size knobs. Fixed (rather than
 *  proportional) so convergence time is predictable: floor-to-ceiling
 *  on ShipBatch/CoalesceRun is ~16 decisions. */
constexpr std::uint64_t kBatchStep = 4;

/** Staleness budget per coalesced event: run 16 = the historical
 *  200 µs default window. */
constexpr std::uint64_t kWindowPerEventNs = 12500;

/** Credit-stall share that counts as pressure on the window. */
constexpr double kStallPressure = 0.25;

/** Clean (stall-free) decision rounds before the credit window decays
 *  back toward its resting size. */
constexpr std::uint32_t kCreditDecayRounds = 16;

/** The credit window never decays below its seed-default resting size;
 *  only explicit pins push it lower. */
constexpr std::uint64_t kCreditRestingFloor = 4096;

} // namespace

void
Controller::stepThroughput(core::Knob knob, std::uint64_t value, double rate,
                           std::uint64_t step, KnobState *state,
                           std::vector<Decision> *out)
{
    if (state->ticks + 1 < config_.settle_ticks) {
        ++state->ticks;
        return;
    }
    state->ticks = 0;

    std::uint64_t to;
    if (state->last_rate <= 0.0) {
        // Nothing to compare against yet: probe upward.
        to = value + step;
    } else {
        const double gain = rate / state->last_rate;
        if (gain >= 1.0 + config_.hysteresis)
            to = value + step; // the last move helped: additive increase
        else if (gain <= 1.0 - config_.hysteresis)
            to = value / 2;    // it hurt: multiplicative decrease
        else
            to = value + step; // plateau: deeper batching costs nothing
    }
    to = core::clampKnob(knob, to);
    state->last_rate = rate;
    if (to != value)
        out->push_back({knob, value, to});
}

std::vector<Decision>
Controller::step(const Sample &sample, const core::Tuning &current)
{
    std::vector<Decision> out;

    // Ship batch climbs the wire drain rate when a shipper is live,
    // otherwise the local publish rate (so it is pre-warmed by the
    // time a link comes up).
    const double ship_rate = sample.wire_active ? sample.wire_events_per_sec
                                                : sample.events_per_sec;
    stepThroughput(core::Knob::ShipBatch, current.ship_batch, ship_rate,
                   kBatchStep, &ship_state_, &out);

    // Coalesce run climbs the publish rate.
    stepThroughput(core::Knob::CoalesceRun, current.coalesce_run,
                   sample.events_per_sec, kBatchStep, &run_state_, &out);

    // The staleness window is derived, not searched: a run cap only
    // fills if followers tolerate ~12.5 µs of staleness per event.
    std::uint64_t run_now = current.coalesce_run;
    for (const Decision &d : out)
        if (d.knob == core::Knob::CoalesceRun)
            run_now = d.to;
    const std::uint64_t want_window =
        core::clampKnob(core::Knob::CoalesceWindowNs,
                        run_now * kWindowPerEventNs);
    if (want_window != current.coalesce_window_ns) {
        out.push_back({core::Knob::CoalesceWindowNs,
                       current.coalesce_window_ns, want_window});
    }

    // Credit window: pressure-driven, not throughput-searched. Stalled
    // drain passes mean the window itself is the bottleneck — double
    // it. A long clean streak decays it back toward the resting size
    // so a transient burst does not pin memory forever.
    if (sample.wire_active) {
        if (credit_state_.ticks + 1 < config_.settle_ticks) {
            ++credit_state_.ticks;
        } else {
            credit_state_.ticks = 0;
            std::uint64_t to = current.credit_window;
            if (sample.credit_stall_frac > kStallPressure) {
                credit_clean_ticks_ = 0;
                to = core::clampKnob(core::Knob::CreditWindow,
                                     current.credit_window * 2);
            } else if (sample.credit_stall_frac == 0.0) {
                if (++credit_clean_ticks_ >= kCreditDecayRounds &&
                    current.credit_window > kCreditRestingFloor) {
                    credit_clean_ticks_ = 0;
                    to = current.credit_window - current.credit_window / 4;
                    if (to < kCreditRestingFloor)
                        to = kCreditRestingFloor;
                }
            } else {
                credit_clean_ticks_ = 0;
            }
            if (to != current.credit_window)
                out.push_back({core::Knob::CreditWindow,
                               current.credit_window, to});
        }
    }

    // Fast-path width follows the eligible hot set the sampler found.
    const std::uint64_t want_k = core::clampKnob(
        core::Knob::FastpathTopK, sample.hot_count);
    if (want_k != current.fastpath_top_k)
        out.push_back({core::Knob::FastpathTopK, current.fastpath_top_k,
                       want_k});

    return out;
}

} // namespace varan::adapt
