/**
 * @file
 * The sampling half of src/adapt/: turns the raw shared-memory
 * counters (ControlBlock stream totals, the per-syscall histogram the
 * leader maintains in TuningBlock, ring cursors, pool spill counts)
 * plus an optional wire-shipper stats source into one rate-based
 * Sample per tick for the Controller.
 *
 * The sampler also mirrors its derived signals back into the shared
 * TuningBlock — the per-tuple ring-lag EWMAs — so the numbers the
 * controller acted on are inspectable from any process mapping the
 * region (and end up in StatusReport).
 *
 * Stateless about time: the caller passes `now_ns`, so tests drive it
 * with a scripted clock.
 */

#ifndef VARAN_ADAPT_SAMPLER_H
#define VARAN_ADAPT_SAMPLER_H

#include <cstdint>
#include <functional>

#include "adapt/controller.h"
#include "core/layout.h"
#include "syscalls/classify.h"

namespace varan::adapt {

/** Cumulative wire-shipper counters, as sampled from Shipper::stats().
 *  The sampler differences successive snapshots itself. */
struct WireSample {
    bool active = false;
    std::uint64_t events = 0;
    std::uint64_t drain_passes = 0;
    std::uint64_t credit_stalls = 0;
};

class Sampler
{
  public:
    /** Pulls the current wire counters; empty when no shipper runs. */
    using WireSource = std::function<WireSample()>;

    Sampler(const shmem::Region *region, const core::EngineLayout *layout,
            WireSource wire = {});

    /** Compute one Sample from the counter deltas since the previous
     *  tick. The first call establishes baselines and reports zero
     *  rates. */
    Sample tick(std::uint64_t now_ns);

  private:
    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    WireSource wire_;

    std::uint64_t prev_ns_ = 0;
    bool primed_ = false;
    std::uint64_t prev_events_ = 0;
    std::uint64_t prev_spills_ = 0;
    WireSample prev_wire_;
    /** Previous per-syscall histogram snapshot (TuningBlock mirror). */
    std::uint64_t prev_hist_[core::kSyscallStatsSlots] = {};
};

} // namespace varan::adapt

#endif // VARAN_ADAPT_SAMPLER_H
