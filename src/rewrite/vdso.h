/**
 * @file
 * Virtual-system-call interception (paper section 3.2.1).
 *
 * vDSO functions never execute a `syscall` instruction, so the scanner
 * cannot find anything to patch; instead VARAN hooks the *entry point*
 * of each exported function: the first instructions are relocated into
 * a trampoline (through which the original implementation can still be
 * invoked — letting VARAN keep the vDSO's speed when it wants it) and
 * the entry is overwritten with a jump to dynamically generated code
 * that dispatches to a replacement.
 *
 * This module implements that mechanism generically; the engine uses it
 * for its virtual-time functions, and tests exercise it on generated
 * and real functions.
 */

#ifndef VARAN_REWRITE_VDSO_H
#define VARAN_REWRITE_VDSO_H

#include <cstdint>

#include "common/result.h"
#include "rewrite/trampoline.h"

namespace varan::rewrite {

/** A successfully installed function hook. */
struct FunctionHook {
    /** Call this to reach the original implementation (the paper's
     *  "trampoline, which allows the invocation of the original
     *  function"). Cast to the hooked function's type. */
    void *call_original = nullptr;
    std::size_t prologue_bytes = 0; ///< bytes relocated from the entry
};

/**
 * Hooks function entry points, replacing them with jumps to
 * replacements while preserving callable originals.
 */
class FunctionHooker
{
  public:
    explicit FunctionHooker(bool enforce_wx = true)
        : enforce_wx_(enforce_wx)
    {
    }

    /**
     * Redirect @p function to @p replacement.
     *
     * Fails with EFAULT if the prologue cannot be safely relocated
     * (branches or RIP-relative code within the first 5 bytes) and
     * ENOMEM if no reachable stub memory is available.
     */
    Result<FunctionHook> hook(void *function, void *replacement);

  private:
    TrampolinePool pool_;
    bool enforce_wx_;
};

} // namespace varan::rewrite

#endif // VARAN_REWRITE_VDSO_H
