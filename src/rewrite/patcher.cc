#include "rewrite/patcher.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include "arch/disasm.h"
#include "common/logging.h"

namespace varan::rewrite {

namespace {

std::atomic<SyscallEntryFn> g_entry{nullptr};

// Interrupt-site registry; append-only, scanned by the signal handler,
// so it must be async-signal-safe (no locks, fixed storage).
constexpr std::size_t kMaxInterruptSites = 4096;
std::atomic<std::uintptr_t> g_int_sites[kMaxInterruptSites];
std::atomic<std::size_t> g_int_site_count{0};

struct sigaction g_previous_trap_action;
std::atomic<bool> g_handler_installed{false};

void
registerInterruptSite(std::uintptr_t addr)
{
    std::size_t idx = g_int_site_count.fetch_add(1,
                                                 std::memory_order_acq_rel);
    VARAN_CHECK(idx < kMaxInterruptSites);
    g_int_sites[idx].store(addr, std::memory_order_release);
}

void
trapHandler(int sig, siginfo_t *info, void *ucontext_void)
{
    auto *uc = static_cast<ucontext_t *>(ucontext_void);
    auto *gregs = uc->uc_mcontext.gregs;
    std::uintptr_t rip = static_cast<std::uintptr_t>(gregs[REG_RIP]);

    // `int $3` (CD 03) leaves RIP just past the 2-byte instruction.
    if (isInterruptSite(rip - 2)) {
        SyscallFrame frame;
        frame.nr = static_cast<std::uint64_t>(gregs[REG_RAX]);
        frame.args[0] = static_cast<std::uint64_t>(gregs[REG_RDI]);
        frame.args[1] = static_cast<std::uint64_t>(gregs[REG_RSI]);
        frame.args[2] = static_cast<std::uint64_t>(gregs[REG_RDX]);
        frame.args[3] = static_cast<std::uint64_t>(gregs[REG_R10]);
        frame.args[4] = static_cast<std::uint64_t>(gregs[REG_R8]);
        frame.args[5] = static_cast<std::uint64_t>(gregs[REG_R9]);
        SyscallEntryFn entry = g_entry.load(std::memory_order_acquire);
        long result = entry ? entry(&frame) : -ENOSYS;
        gregs[REG_RAX] = result;
        return; // sigreturn resumes right after the interrupt
    }

    // Not one of ours: fall through to whoever was there before.
    if (g_previous_trap_action.sa_flags & SA_SIGINFO) {
        if (g_previous_trap_action.sa_sigaction)
            g_previous_trap_action.sa_sigaction(sig, info, ucontext_void);
        return;
    }
    if (g_previous_trap_action.sa_handler == SIG_IGN)
        return;
    if (g_previous_trap_action.sa_handler != SIG_DFL) {
        g_previous_trap_action.sa_handler(sig);
        return;
    }
    ::sigaction(SIGTRAP, &g_previous_trap_action, nullptr);
    ::raise(SIGTRAP);
}

/** mprotect() covering whole pages around [addr, addr+len). */
Status
protectRange(void *addr, std::size_t len, int prot)
{
    const auto page = static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    auto begin = reinterpret_cast<std::uintptr_t>(addr) & ~(page - 1);
    auto end = (reinterpret_cast<std::uintptr_t>(addr) + len + page - 1) &
               ~(page - 1);
    if (::mprotect(reinterpret_cast<void *>(begin), end - begin, prot) < 0)
        return Status::fromErrno();
    return Status::ok();
}

/** Emit a movabs r11, imm64. */
std::uint8_t *
emitMovR11(std::uint8_t *p, std::uint64_t value)
{
    *p++ = 0x49;
    *p++ = 0xbb;
    std::memcpy(p, &value, 8);
    return p + 8;
}

/**
 * Emit the detour stub. Layout (see header): capture registers into a
 * SyscallFrame on the stack, call the entry point with a 16-byte
 * aligned stack, restore the argument registers exactly as the kernel
 * would have, run the relocated instructions, jump back.
 */
std::size_t
emitStub(std::uint8_t *stub, SyscallEntryFn entry,
         const std::uint8_t *relocated, std::size_t relocated_len,
         std::uintptr_t return_to)
{
    std::uint8_t *p = stub;
    auto emit = [&](std::initializer_list<std::uint8_t> bytes) {
        for (std::uint8_t b : bytes)
            *p++ = b;
    };

    emit({0x41, 0x51});             // push r9   -> frame.args[5]
    emit({0x41, 0x50});             // push r8   -> frame.args[4]
    emit({0x41, 0x52});             // push r10  -> frame.args[3]
    emit({0x52});                   // push rdx  -> frame.args[2]
    emit({0x56});                   // push rsi  -> frame.args[1]
    emit({0x57});                   // push rdi  -> frame.args[0]
    emit({0x50});                   // push rax  -> frame.nr
    emit({0x48, 0x89, 0xe7});       // mov rdi, rsp (frame pointer)
    emit({0x55});                   // push rbp
    emit({0x48, 0x89, 0xe5});       // mov rbp, rsp
    emit({0x48, 0x83, 0xe4, 0xf0}); // and rsp, -16 (ABI alignment)
    p = emitMovR11(p, reinterpret_cast<std::uint64_t>(entry));
    emit({0x41, 0xff, 0xd3});       // call r11
    emit({0x48, 0x89, 0xec});       // mov rsp, rbp
    emit({0x5d});                   // pop rbp
    // Result is in RAX; drop the saved RAX slot and restore the
    // argument registers the kernel preserves across syscalls.
    emit({0x48, 0x83, 0xc4, 0x08}); // add rsp, 8
    emit({0x5f});                   // pop rdi
    emit({0x5e});                   // pop rsi
    emit({0x5a});                   // pop rdx
    emit({0x41, 0x5a});             // pop r10
    emit({0x41, 0x58});             // pop r8
    emit({0x41, 0x59});             // pop r9
    if (relocated_len > 0) {
        std::memcpy(p, relocated, relocated_len);
        p += relocated_len;
    }
    p = emitMovR11(p, return_to);
    emit({0x41, 0xff, 0xe3});       // jmp r11
    return static_cast<std::size_t>(p - stub);
}

/** Upper bound on stub size for pool allocation. */
constexpr std::size_t kStubMaxBytes = 96;

} // namespace

void
setSyscallEntry(SyscallEntryFn entry)
{
    g_entry.store(entry, std::memory_order_release);
}

SyscallEntryFn
syscallEntry()
{
    return g_entry.load(std::memory_order_acquire);
}

bool
isInterruptSite(std::uintptr_t addr)
{
    std::size_t count = g_int_site_count.load(std::memory_order_acquire);
    if (count > kMaxInterruptSites)
        count = kMaxInterruptSites;
    for (std::size_t i = 0; i < count; ++i) {
        if (g_int_sites[i].load(std::memory_order_acquire) == addr)
            return true;
    }
    return false;
}

void
installInterruptHandler()
{
    bool expected = false;
    if (!g_handler_installed.compare_exchange_strong(expected, true))
        return;
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = trapHandler;
    action.sa_flags = SA_SIGINFO | SA_NODEFER;
    ::sigemptyset(&action.sa_mask);
    VARAN_CHECK_ERRNO(
        ::sigaction(SIGTRAP, &action, &g_previous_trap_action));
}

Rewriter::Rewriter(SyscallEntryFn entry) : Rewriter(entry, Options{}) {}

Rewriter::Rewriter(SyscallEntryFn entry, Options options)
    : options_(options)
{
    setSyscallEntry(entry);
    if (options_.allow_int_fallback)
        installInterruptHandler();
}

bool
Rewriter::patchSite(std::uint8_t *code, std::size_t len, std::size_t off,
                    PatchStats *stats)
{
    // Grow a window of whole instructions, starting at the 2-byte
    // syscall, until a 5-byte jmp fits. Everything after the syscall in
    // the window gets relocated into the stub, so it must be safe to
    // move: decodable, not a branch, not RIP-relative, not another
    // syscall (its bytes would never be patched).
    std::size_t window = 2;
    std::size_t cursor = off + 2;
    bool relocatable = true;
    while (window < 5) {
        arch::Insn insn = arch::decode(code + cursor, len - cursor);
        if (!insn.valid() || insn.is_branch || insn.rip_relative ||
            insn.is_syscall || insn.is_int80) {
            relocatable = false;
            break;
        }
        window += insn.length;
        cursor += insn.length;
    }

    const auto site = reinterpret_cast<std::uintptr_t>(code + off);
    if (relocatable) {
        // Stub pool must be emitted RW, then sealed RX later.
        // The pool for this rewriter is owned by rewriteRegion.
        std::uint8_t *stub = stub_pool_->allocate(site, kStubMaxBytes);
        if (stub) {
            std::size_t stub_len = emitStub(
                stub, syscallEntry(), code + off + 2, window - 2,
                site + window);
            VARAN_CHECK(stub_len <= kStubMaxBytes);
            std::int64_t disp =
                static_cast<std::int64_t>(
                    reinterpret_cast<std::uintptr_t>(stub)) -
                static_cast<std::int64_t>(site + 5);
            if (disp >= INT32_MIN && disp <= INT32_MAX) {
                code[off] = 0xe9; // jmp rel32
                std::int32_t disp32 = static_cast<std::int32_t>(disp);
                std::memcpy(code + off + 1, &disp32, 4);
                for (std::size_t i = off + 5; i < off + window; ++i)
                    code[i] = 0x90; // nop padding
                ++stats->detours;
                return true;
            }
        }
    }

    if (options_.allow_int_fallback) {
        // Same-size replacement: `int $3` (CD 03) over `syscall` (0F 05).
        code[off] = 0xcd;
        code[off + 1] = 0x03;
        registerInterruptSite(site);
        ++stats->interrupts;
        return true;
    }
    ++stats->failed;
    return false;
}

Result<PatchStats>
Rewriter::rewriteRegion(void *region, std::size_t len)
{
    auto *code = static_cast<std::uint8_t *>(region);
    PatchStats stats;

    if (!stub_pool_)
        stub_pool_ = std::make_unique<TrampolinePool>();
    Status unsealed = stub_pool_->unseal();
    if (!unsealed.isOk())
        return Result<PatchStats>(unsealed.error());

    if (options_.enforce_wx) {
        Status writable = protectRange(code, len, PROT_READ | PROT_WRITE);
        if (!writable.isOk())
            return Result<PatchStats>(writable.error());
    }

    // Scan-and-patch loop. Rescan after each patch so instruction
    // boundaries stay consistent with what is actually in memory.
    std::size_t off = 0;
    while (off < len) {
        arch::Insn insn = arch::decode(code + off, len - off);
        if (!insn.valid()) {
            if (!options_.resync_on_error)
                break;
            ++off;
            continue;
        }
        ++stats.scanned_insns;
        if (insn.is_syscall || insn.is_int80) {
            ++stats.sites_found;
            patchSite(code, len, off, &stats);
            // Whatever we wrote is at least 2 bytes; re-decode from the
            // patched site to follow the new instruction stream.
            arch::Insn patched = arch::decode(code + off, len - off);
            off += patched.valid() ? patched.length : insn.length;
            continue;
        }
        off += insn.length;
    }
    stats.scan_complete = off >= len;

    if (options_.enforce_wx) {
        Status sealed = protectRange(code, len, PROT_READ | PROT_EXEC);
        if (!sealed.isOk())
            return Result<PatchStats>(sealed.error());
    }
    Status pool_sealed = stub_pool_->seal();
    if (!pool_sealed.isOk())
        return Result<PatchStats>(pool_sealed.error());
    return stats;
}

} // namespace varan::rewrite
