#include "rewrite/trampoline.h"

#include <sys/mman.h>
#include <unistd.h>

#include "common/logging.h"

namespace varan::rewrite {

namespace {

constexpr std::size_t kPoolPageSize = 1 << 16; // 64 KiB per pool page

std::intptr_t
distance(std::uintptr_t a, std::uintptr_t b)
{
    return a >= b ? static_cast<std::intptr_t>(a - b)
                  : -static_cast<std::intptr_t>(b - a);
}

} // namespace

bool
reachableRel32(std::uintptr_t site, std::uintptr_t target)
{
    // rel32 is measured from the end of the 5-byte jmp.
    std::intptr_t disp = distance(target, site + 5);
    return disp >= INT32_MIN && disp <= INT32_MAX;
}

TrampolinePool::~TrampolinePool()
{
    for (Page &page : pages_)
        ::munmap(page.base, page.size);
}

TrampolinePool::Page *
TrampolinePool::pageNear(std::uintptr_t anchor, std::size_t need)
{
    for (Page &page : pages_) {
        if (page.size - page.used >= need &&
            reachableRel32(anchor, reinterpret_cast<std::uintptr_t>(
                                       page.base + page.used))) {
            return &page;
        }
    }

    // Ask the kernel for mappings at hints spiralling out from the
    // anchor; without MAP_FIXED a hint is only advisory, so verify the
    // resulting address is actually in rel32 range.
    const long page_size = ::sysconf(_SC_PAGESIZE);
    for (int attempt = 1; attempt <= 128; ++attempt) {
        std::intptr_t delta = static_cast<std::intptr_t>(attempt) *
                              (16 << 20); // 16 MiB steps
        if (attempt % 2 == 0)
            delta = -delta;
        std::uintptr_t hint =
            (anchor + static_cast<std::uintptr_t>(delta)) &
            ~static_cast<std::uintptr_t>(page_size - 1);
        void *mem = ::mmap(reinterpret_cast<void *>(hint), kPoolPageSize,
                           PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (mem == MAP_FAILED)
            continue;
        auto addr = reinterpret_cast<std::uintptr_t>(mem);
        if (!reachableRel32(anchor, addr) ||
            !reachableRel32(anchor, addr + kPoolPageSize)) {
            ::munmap(mem, kPoolPageSize);
            continue;
        }
        pages_.push_back(Page{static_cast<std::uint8_t *>(mem), 0,
                              kPoolPageSize});
        return &pages_.back();
    }
    // Last resort: take whatever mmap gives us (works when the code
    // segment and the default mmap area are already close).
    void *mem = ::mmap(nullptr, kPoolPageSize, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED)
        return nullptr;
    auto addr = reinterpret_cast<std::uintptr_t>(mem);
    if (!reachableRel32(anchor, addr)) {
        ::munmap(mem, kPoolPageSize);
        return nullptr;
    }
    pages_.push_back(Page{static_cast<std::uint8_t *>(mem), 0,
                          kPoolPageSize});
    return &pages_.back();
}

std::uint8_t *
TrampolinePool::allocate(std::uintptr_t anchor, std::size_t size)
{
    // Keep stubs 16-byte aligned for decode friendliness.
    size = (size + 15) & ~std::size_t{15};
    Page *page = pageNear(anchor, size);
    if (!page)
        return nullptr;
    std::uint8_t *out = page->base + page->used;
    page->used += size;
    return out;
}

Status
TrampolinePool::seal()
{
    for (Page &page : pages_) {
        if (::mprotect(page.base, page.size, PROT_READ | PROT_EXEC) < 0)
            return Status::fromErrno();
    }
    return Status::ok();
}

Status
TrampolinePool::unseal()
{
    for (Page &page : pages_) {
        if (::mprotect(page.base, page.size, PROT_READ | PROT_WRITE) < 0)
            return Status::fromErrno();
    }
    return Status::ok();
}

} // namespace varan::rewrite
