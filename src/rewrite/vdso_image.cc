#include "rewrite/vdso_image.h"

#include <cstring>
#include <elf.h>
#include <sys/auxv.h>

namespace varan::rewrite {

namespace {

/** Symbol count from the classic DT_HASH table (nchain). */
std::size_t
hashSymbolCount(const std::uint32_t *hash)
{
    return hash ? hash[1] : 0;
}

/**
 * Symbol count from DT_GNU_HASH: the highest chain index reachable
 * from any bucket, plus however far its chain runs (chains end at an
 * entry with the low bit set).
 */
std::size_t
gnuHashSymbolCount(const std::uint32_t *gnu)
{
    if (!gnu)
        return 0;
    const std::uint32_t nbuckets = gnu[0];
    const std::uint32_t symoffset = gnu[1];
    const std::uint32_t bloom_size = gnu[2];
    const auto *bloom = reinterpret_cast<const std::uint64_t *>(gnu + 4);
    const std::uint32_t *buckets =
        reinterpret_cast<const std::uint32_t *>(bloom + bloom_size);
    const std::uint32_t *chains = buckets + nbuckets;

    std::uint32_t last = 0;
    for (std::uint32_t b = 0; b < nbuckets; ++b)
        last = std::max(last, buckets[b]);
    if (last < symoffset)
        return symoffset;
    while (!(chains[last - symoffset] & 1))
        ++last;
    return last + 1;
}

} // namespace

Result<VdsoImage>
VdsoImage::fromAuxv()
{
    unsigned long ehdr = ::getauxval(AT_SYSINFO_EHDR);
    if (ehdr == 0)
        return Result<VdsoImage>(Errno{ENOENT});
    return fromMemory(reinterpret_cast<const void *>(ehdr));
}

Result<VdsoImage>
VdsoImage::fromMemory(const void *base_ptr)
{
    const auto base = reinterpret_cast<std::uintptr_t>(base_ptr);
    const auto *ehdr = static_cast<const Elf64_Ehdr *>(base_ptr);
    if (std::memcmp(ehdr->e_ident, ELFMAG, SELFMAG) != 0 ||
        ehdr->e_ident[EI_CLASS] != ELFCLASS64) {
        return Result<VdsoImage>(Errno{ENOEXEC});
    }

    const auto *phdrs = reinterpret_cast<const Elf64_Phdr *>(
        base + ehdr->e_phoff);

    // The vDSO's link-time addresses are relative to its first PT_LOAD
    // vaddr; the in-memory slide is base - that vaddr.
    std::uintptr_t load_vaddr = 0;
    const Elf64_Phdr *dynamic = nullptr;
    bool have_load = false;
    for (int i = 0; i < ehdr->e_phnum; ++i) {
        if (phdrs[i].p_type == PT_LOAD && !have_load) {
            load_vaddr = phdrs[i].p_vaddr;
            have_load = true;
        } else if (phdrs[i].p_type == PT_DYNAMIC) {
            dynamic = &phdrs[i];
        }
    }
    if (!dynamic || !have_load)
        return Result<VdsoImage>(Errno{ENOEXEC});
    const std::uintptr_t slide = base - load_vaddr;

    const auto *dyn = reinterpret_cast<const Elf64_Dyn *>(
        slide + dynamic->p_vaddr);
    const Elf64_Sym *symtab = nullptr;
    const char *strtab = nullptr;
    const std::uint32_t *hash = nullptr;
    const std::uint32_t *gnu_hash = nullptr;
    for (const Elf64_Dyn *d = dyn; d->d_tag != DT_NULL; ++d) {
        // vDSO dynamic pointers are link-time addresses; slide them.
        const std::uintptr_t addr = slide + d->d_un.d_ptr;
        switch (d->d_tag) {
          case DT_SYMTAB:
            symtab = reinterpret_cast<const Elf64_Sym *>(addr);
            break;
          case DT_STRTAB:
            strtab = reinterpret_cast<const char *>(addr);
            break;
          case DT_HASH:
            hash = reinterpret_cast<const std::uint32_t *>(addr);
            break;
          case DT_GNU_HASH:
            gnu_hash = reinterpret_cast<const std::uint32_t *>(addr);
            break;
          default:
            break;
        }
    }
    if (!symtab || !strtab)
        return Result<VdsoImage>(Errno{ENOEXEC});

    std::size_t count = hashSymbolCount(hash);
    if (count == 0)
        count = gnuHashSymbolCount(gnu_hash);
    if (count == 0)
        return Result<VdsoImage>(Errno{ENOEXEC});

    VdsoImage image;
    image.base_ = base;
    for (std::size_t i = 0; i < count; ++i) {
        const Elf64_Sym &sym = symtab[i];
        if (sym.st_name == 0 || sym.st_value == 0)
            continue;
        if (ELF64_ST_TYPE(sym.st_info) != STT_FUNC)
            continue;
        VdsoSymbol out;
        out.name = strtab + sym.st_name;
        out.address = reinterpret_cast<void *>(slide + sym.st_value);
        out.size = sym.st_size;
        image.symbols_.push_back(std::move(out));
    }
    return image;
}

void *
VdsoImage::find(const std::string &name) const
{
    for (const VdsoSymbol &sym : symbols_) {
        if (sym.name == name)
            return sym.address;
    }
    return nullptr;
}

} // namespace varan::rewrite
