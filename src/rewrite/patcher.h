/**
 * @file
 * Selective binary rewriting of system-call instructions (section 3.2).
 *
 * The rewriter scans executable code with the arch disassembler and
 * replaces every 2-byte `syscall` with a detour: a 5-byte `jmp rel32`
 * to a generated stub that captures the syscall registers into a
 * SyscallFrame, calls the installed entry point, restores the result
 * into RAX, executes any instructions that were relocated to make room,
 * and jumps back.
 *
 * When the surrounding bytes cannot be relocated (potential branch
 * targets, RIP-relative code, another syscall in the window), the
 * syscall is replaced by a same-size software interrupt instead — the
 * paper's INT fallback — whose SIGTRAP handler redirects to the same
 * entry point and resumes via sigreturn.
 */

#ifndef VARAN_REWRITE_PATCHER_H
#define VARAN_REWRITE_PATCHER_H

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "rewrite/trampoline.h"

namespace varan::rewrite {

/** Register state of an intercepted system call (x86-64 convention). */
struct SyscallFrame {
    std::uint64_t nr;      ///< RAX
    std::uint64_t args[6]; ///< RDI, RSI, RDX, R10, R8, R9
};

/**
 * The system-call entry point (section 3.2): receives every intercepted
 * call; the return value is placed in the application's RAX.
 */
using SyscallEntryFn = long (*)(SyscallFrame *frame);

/**
 * Install the process-wide entry point used by detour stubs emitted
 * after this call and by the interrupt fallback handler.
 */
void setSyscallEntry(SyscallEntryFn entry);
SyscallEntryFn syscallEntry();

/** Counters describing what a rewrite pass did. */
struct PatchStats {
    std::size_t sites_found = 0;  ///< syscall instructions discovered
    std::size_t detours = 0;      ///< patched with jmp to a stub
    std::size_t interrupts = 0;   ///< patched with the INT fallback
    std::size_t failed = 0;       ///< left untouched (no stub space)
    std::size_t scanned_insns = 0;
    bool scan_complete = false;   ///< decoder reached the region's end
};

/**
 * Rewrites syscall sites inside executable regions.
 *
 * One Rewriter owns the trampoline pool backing its stubs; keep it
 * alive as long as the patched code may run.
 */
class Rewriter
{
  public:
    struct Options {
        bool allow_int_fallback = true;
        /** Keep pages W^X: RW while patching, RX afterwards. */
        bool enforce_wx = true;
        /** Stop at the first undecodable instruction (default) or skip
         *  a byte and retry (aggressive mode for stripped binaries). */
        bool resync_on_error = false;
    };

    explicit Rewriter(SyscallEntryFn entry);
    Rewriter(SyscallEntryFn entry, Options options);

    /**
     * Scan and patch every syscall instruction in [code, code+len).
     * The region must be page-aligned executable memory.
     */
    Result<PatchStats> rewriteRegion(void *code, std::size_t len);

  private:
    bool patchSite(std::uint8_t *code, std::size_t len, std::size_t off,
                   PatchStats *stats);

    Options options_;
    std::unique_ptr<TrampolinePool> stub_pool_;
};

/**
 * Registry for interrupt-patched sites, consulted by the SIGTRAP
 * handler. Exposed for tests.
 */
bool isInterruptSite(std::uintptr_t addr);

/** Install the SIGTRAP handler (idempotent). Called by Rewriter. */
void installInterruptHandler();

} // namespace varan::rewrite

#endif // VARAN_REWRITE_PATCHER_H
