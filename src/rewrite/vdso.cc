#include "rewrite/vdso.h"

#include <cstring>
#include <sys/mman.h>
#include <unistd.h>

#include "arch/disasm.h"
#include "common/logging.h"

namespace varan::rewrite {

namespace {

Status
protectRange(void *addr, std::size_t len, int prot)
{
    const auto page = static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    auto begin = reinterpret_cast<std::uintptr_t>(addr) & ~(page - 1);
    auto end = (reinterpret_cast<std::uintptr_t>(addr) + len + page - 1) &
               ~(page - 1);
    if (::mprotect(reinterpret_cast<void *>(begin), end - begin, prot) < 0)
        return Status::fromErrno();
    return Status::ok();
}

std::uint8_t *
emitAbsJump(std::uint8_t *p, std::uint64_t target)
{
    *p++ = 0x49; // movabs r11, target
    *p++ = 0xbb;
    std::memcpy(p, &target, 8);
    p += 8;
    *p++ = 0x41; // jmp r11
    *p++ = 0xff;
    *p++ = 0xe3;
    return p;
}

} // namespace

Result<FunctionHook>
FunctionHooker::hook(void *function, void *replacement)
{
    auto *entry = static_cast<std::uint8_t *>(function);
    const auto entry_addr = reinterpret_cast<std::uintptr_t>(entry);

    // Measure a relocatable prologue of at least 5 bytes.
    std::size_t prologue = 0;
    while (prologue < 5) {
        arch::Insn insn = arch::decode(entry + prologue, 16);
        if (!insn.valid() || insn.is_branch || insn.rip_relative ||
            insn.is_syscall || insn.is_int80) {
            return Result<FunctionHook>(Errno{EFAULT});
        }
        prologue += insn.length;
    }

    if (!pool_.unseal().isOk())
        return Result<FunctionHook>(Errno{ENOMEM});

    // Trampoline to the original: relocated prologue + jump past it.
    std::uint8_t *original_stub = pool_.allocate(entry_addr,
                                                 prologue + 13 + 16);
    if (!original_stub)
        return Result<FunctionHook>(Errno{ENOMEM});
    std::memcpy(original_stub, entry, prologue);
    emitAbsJump(original_stub + prologue,
                static_cast<std::uint64_t>(entry_addr + prologue));

    // Dispatch stub to the replacement (reachable with rel32 from the
    // entry even when the replacement itself is far away).
    std::uint8_t *dispatch = pool_.allocate(entry_addr, 13 + 16);
    if (!dispatch)
        return Result<FunctionHook>(Errno{ENOMEM});
    emitAbsJump(dispatch,
                reinterpret_cast<std::uint64_t>(replacement));

    Status sealed = pool_.seal();
    if (!sealed.isOk())
        return Result<FunctionHook>(sealed.error());

    // Patch the entry with `jmp rel32` to the dispatch stub.
    if (enforce_wx_) {
        Status writable = protectRange(entry, prologue,
                                       PROT_READ | PROT_WRITE);
        if (!writable.isOk())
            return Result<FunctionHook>(writable.error());
    }
    std::int64_t disp =
        static_cast<std::int64_t>(
            reinterpret_cast<std::uintptr_t>(dispatch)) -
        static_cast<std::int64_t>(entry_addr + 5);
    VARAN_CHECK(disp >= INT32_MIN && disp <= INT32_MAX);
    entry[0] = 0xe9;
    auto disp32 = static_cast<std::int32_t>(disp);
    std::memcpy(entry + 1, &disp32, 4);
    for (std::size_t i = 5; i < prologue; ++i)
        entry[i] = 0x90;
    if (enforce_wx_) {
        Status executable = protectRange(entry, prologue,
                                         PROT_READ | PROT_EXEC);
        if (!executable.isOk())
            return Result<FunctionHook>(executable.error());
    }

    FunctionHook hook;
    hook.call_original = original_stub;
    hook.prologue_bytes = prologue;
    return hook;
}

} // namespace varan::rewrite
