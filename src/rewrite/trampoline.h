/**
 * @file
 * Executable memory pool for detour stubs.
 *
 * Detour patches use 5-byte `jmp rel32` instructions, so stub code must
 * live within +/-2 GiB of the patched site. The pool requests mappings
 * near a caller-supplied anchor address and bump-allocates stubs from
 * them, flipping pages between RW (while emitting) and RX (while
 * executing) to keep the W^X discipline of section 3.2.
 */

#ifndef VARAN_REWRITE_TRAMPOLINE_H
#define VARAN_REWRITE_TRAMPOLINE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/result.h"

namespace varan::rewrite {

class TrampolinePool
{
  public:
    TrampolinePool() = default;
    ~TrampolinePool();
    VARAN_NO_COPY(TrampolinePool);
    TrampolinePool(TrampolinePool &&) = delete;

    /**
     * Reserve stub space reachable from @p anchor with a rel32 branch.
     * @return pointer to @p size bytes of RW memory, or nullptr if no
     *         mapping close enough could be obtained.
     */
    std::uint8_t *allocate(std::uintptr_t anchor, std::size_t size);

    /** Flip every pool page to RX. Call after emitting stubs. */
    Status seal();

    /** Flip every pool page back to RW (to emit more stubs). */
    Status unseal();

    std::size_t pagesMapped() const { return pages_.size(); }

  private:
    struct Page {
        std::uint8_t *base = nullptr;
        std::size_t used = 0;
        std::size_t size = 0;
    };

    Page *pageNear(std::uintptr_t anchor, std::size_t need);

    std::vector<Page> pages_;
};

/** True if @p target is reachable from a rel32 branch at @p site. */
bool reachableRel32(std::uintptr_t site, std::uintptr_t target);

} // namespace varan::rewrite

#endif // VARAN_REWRITE_TRAMPOLINE_H
