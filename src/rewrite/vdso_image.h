/**
 * @file
 * Discovery of the live vDSO segment (paper section 3.2.1).
 *
 * "To handle vDSO calls, we first need to determine the base address
 * of the vDSO segment; this address is passed by the kernel in the ELF
 * auxiliary vector via the AT_SYSINFO_EHDR flag. Second, we need to
 * examine the ELF headers of the vDSO segment to find all symbols."
 *
 * VdsoImage does exactly that: reads AT_SYSINFO_EHDR, walks the ELF64
 * program headers to the dynamic segment, resolves the dynamic symbol
 * table and enumerates every exported function with its resolved
 * in-memory address — the inputs the function hooker needs to redirect
 * virtual system calls.
 */

#ifndef VARAN_REWRITE_VDSO_IMAGE_H
#define VARAN_REWRITE_VDSO_IMAGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace varan::rewrite {

struct VdsoSymbol {
    std::string name;
    void *address = nullptr;
    std::uint64_t size = 0;
};

class VdsoImage
{
  public:
    /** Locate and parse this process's vDSO via the auxiliary vector. */
    static Result<VdsoImage> fromAuxv();

    /** Parse an ELF shared object image already in memory (testable on
     *  any mapped DSO, not just the vDSO). */
    static Result<VdsoImage> fromMemory(const void *base);

    std::uintptr_t base() const { return base_; }
    const std::vector<VdsoSymbol> &symbols() const { return symbols_; }

    /** Resolve one exported symbol (e.g. "__vdso_clock_gettime"). */
    void *find(const std::string &name) const;

  private:
    std::uintptr_t base_ = 0;
    std::vector<VdsoSymbol> symbols_;
};

} // namespace varan::rewrite

#endif // VARAN_REWRITE_VDSO_IMAGE_H
