#include "core/channels.h"

#include <sys/socket.h>
#include <unistd.h>

namespace varan::core {

Status
sendCtrl(int fd, const CtrlMsg &msg)
{
    for (;;) {
        ssize_t n = ::send(fd, &msg, sizeof(msg), MSG_NOSIGNAL);
        if (n == sizeof(msg))
            return Status::ok();
        if (n < 0 && errno == EINTR)
            continue;
        return Status::fromErrno();
    }
}

Result<CtrlMsg>
recvCtrl(int fd)
{
    CtrlMsg msg;
    for (;;) {
        ssize_t n = ::recv(fd, &msg, sizeof(msg), 0);
        if (n == sizeof(msg))
            return msg;
        if (n == 0)
            return Result<CtrlMsg>(Errno{EPIPE});
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0)
            return errnoResult<CtrlMsg>();
        return Result<CtrlMsg>(Errno{EPROTO});
    }
}

Result<ChannelSet>
ChannelSet::create(std::uint32_t num_variants)
{
    VARAN_CHECK(num_variants <= kMaxVariants);
    ChannelSet set;
    set.num_variants_ = num_variants;

    auto zygote = SocketPair::create(SOCK_SEQPACKET);
    if (!zygote.ok())
        return Result<ChannelSet>(zygote.error());
    set.zygote_ = std::move(zygote.value());

    for (std::uint32_t v = 0; v < num_variants; ++v) {
        auto pair = SocketPair::create(SOCK_SEQPACKET);
        if (!pair.ok())
            return Result<ChannelSet>(pair.error());
        set.control_[v] = std::move(pair.value());
    }
    for (std::uint32_t i = 0; i < num_variants; ++i) {
        for (std::uint32_t j = i + 1; j < num_variants; ++j) {
            auto pair = SocketPair::create(SOCK_STREAM);
            if (!pair.ok())
                return Result<ChannelSet>(pair.error());
            set.mesh_[i][j] = std::move(pair.value());
        }
    }
    return set;
}

int
ChannelSet::controlCoordinatorEnd(std::uint32_t v) const
{
    return const_cast<SocketPair &>(control_[v]).end(0).get();
}

int
ChannelSet::controlVariantEnd(std::uint32_t v) const
{
    return const_cast<SocketPair &>(control_[v]).end(1).get();
}

int
ChannelSet::data(std::uint32_t self, std::uint32_t peer) const
{
    VARAN_CHECK(self != peer);
    VARAN_CHECK(self < num_variants_ && peer < num_variants_);
    std::uint32_t lo = self < peer ? self : peer;
    std::uint32_t hi = self < peer ? peer : self;
    auto &pair = const_cast<SocketPair &>(mesh_[lo][hi]);
    // Convention: the lower id holds end 0.
    return self == lo ? pair.end(0).get() : pair.end(1).get();
}

void
ChannelSet::closeAllExceptVariant(std::uint32_t self)
{
    zygote_.end(0).reset();
    zygote_.end(1).reset();
    for (std::uint32_t v = 0; v < num_variants_; ++v) {
        control_[v].end(0).reset();
        if (v != self)
            control_[v].end(1).reset();
    }
    for (std::uint32_t i = 0; i < num_variants_; ++i) {
        for (std::uint32_t j = i + 1; j < num_variants_; ++j) {
            if (i != self)
                mesh_[i][j].end(0).reset();
            if (j != self)
                mesh_[i][j].end(1).reset();
        }
    }
}

void
ChannelSet::closeCoordinatorEnds()
{
    zygote_.end(0).reset();
    for (std::uint32_t v = 0; v < num_variants_; ++v)
        control_[v].end(0).reset();
}

void
ChannelSet::relocateVariantEndsHigh(std::uint32_t self, int base)
{
    auto move = [&](Fd &fd, int target) {
        if (!fd.valid() || fd.get() == target)
            return;
        int rc = ::dup2(fd.get(), target);
        VARAN_CHECK(rc == target);
        fd.reset(rc); // close the old number, own the new one
    };

    // Deterministic targets: control at base, peer p's mesh at
    // base + 1 + p. Every variant ends up with the same occupied set.
    move(control_[self].end(1), base);
    for (std::uint32_t p = 0; p < num_variants_; ++p) {
        if (p == self)
            continue;
        std::uint32_t lo = self < p ? self : p;
        std::uint32_t hi = self < p ? p : self;
        move(mesh_[lo][hi].end(self == lo ? 0 : 1),
             base + 1 + static_cast<int>(p));
    }
}

} // namespace varan::core
