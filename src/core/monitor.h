/**
 * @file
 * The per-variant monitor runtime (sections 3.1-3.3).
 *
 * One Monitor lives inside every variant process. It implements the
 * sys::Dispatcher interface, so every intercepted system call flows
 * through dispatch():
 *
 *  - the leader executes calls and streams them as events through the
 *    thread tuple's ring buffer, transferring descriptors over the data
 *    channels and payloads through the shared pool;
 *  - followers replay the stream, gated by the variant's Lamport clock,
 *    resolving system-call sequence divergences with BPF rewrite rules
 *    (section 3.4) and mirroring descriptors with dup2;
 *  - on leader crash, the follower elected by the coordinator drains
 *    the remaining buffered events and promotes itself, switching its
 *    dispatch table to the leader's and restarting the pending system
 *    call (section 5.1).
 */

#ifndef VARAN_CORE_MONITOR_H
#define VARAN_CORE_MONITOR_H

#include <atomic>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bpf/rules.h"
#include "core/channels.h"
#include "core/layout.h"
#include "ring/ring_buffer.h"
#include "syscalls/classify.h"
#include "syscalls/sys.h"

namespace varan::core {

/** Exit codes the runtime uses for engine-detected conditions. */
inline constexpr int kDivergenceExitStatus = 86;

class Monitor : public sys::Dispatcher
{
  public:
    struct Config {
        std::uint32_t variant_id = 0;
        ring::WaitSpec wait;              ///< event wait policy
        std::uint64_t tick_ns = 20000000; ///< promotion/shutdown poll tick
        std::uint64_t progress_timeout_ns = 30000000000ULL; ///< 30 s
        bool verify_divergence = true;    ///< hash write buffers
        std::vector<std::string> rules_text; ///< BPF rewrite rules

        /** Leader-side publish coalescing: accumulate payload-free
         *  syscall events and flush them as one batch (one head store +
         *  one wake per run). Runs flush before blocking calls, when a
         *  follower sleeps, when the inter-event gap exceeds the window
         *  or on any ordering fence (payload/fd/fork/exit event).
         *  Off by default: a leader crash loses the pending run, so the
         *  promoted follower re-executes those calls (at-least-once
         *  external effects) — see CoalesceConfig::enabled. */
        bool coalesce_publish = false;
        std::uint32_t coalesce_max = 16;        ///< pending run cap
        std::uint64_t coalesce_window_ns = 200000; ///< 200 µs gap cap

        /** Restart-policy respawn: this incarnation joins the live
         *  stream at the ring tail, so the variant's shared Lamport
         *  clock (frozen where the dead incarnation left it) must be
         *  resynchronised from the first event observed — otherwise
         *  awaitTurn() would wait forever for timestamps that passed
         *  while the variant was down. */
        bool resync_clock = false;
    };

    /**
     * Initialise the runtime inside a freshly forked variant process
     * and install it as the process dispatcher. Also installs crash
     * handlers that notify the coordinator (transparent failover).
     */
    static Monitor *initVariant(const shmem::Region *region,
                                EngineLayout layout,
                                ChannelSet *channels, Config config);

    /** The process's monitor, or nullptr outside variants. */
    static Monitor *instance();

    // --- sys::Dispatcher ---
    long dispatch(long nr, const std::uint64_t args[6]) override;

    std::uint32_t variantId() const { return config_.variant_id; }

    Role
    role() const
    {
        return role_.load(std::memory_order_acquire);
    }

    bool isLeader() const { return role() == Role::Leader; }

    /**
     * Called when the variant's application code returns: the leader
     * publishes the Exit event, followers detach, everyone reports to
     * the coordinator.
     */
    void finishVariant(int status);

    /**
     * Thread/process tuple protocol (section 3.3.3): the parent calls
     * openTuple() *before* starting the child execution context; the
     * id travels through the event stream so every variant binds the
     * same tuple to the same logical thread.
     */
    int openTuple();

    /** Bind the calling thread to a tuple id returned by openTuple. */
    static void bindThreadToTuple(int tuple);

    /** The calling thread's tuple (main thread = 0). */
    static int currentTuple();

  private:
    Monitor(const shmem::Region *region, EngineLayout layout,
            ChannelSet *channels, Config config);

    long dispatchLeader(int tuple, long nr, const std::uint64_t args[6],
                        const sys::SyscallInfo &info);
    long dispatchFollower(int tuple, long nr, const std::uint64_t args[6],
                          const sys::SyscallInfo &info);

    /**
     * The adaptive top-k fast path (leader only): a syscall currently
     * in the shared hot table whose semantics permit it (Replicated,
     * payload-free, non-blocking, unhashed — see sys::fastpathEligible)
     * executes and publishes here, skipping full classification
     * branching, payload assembly and hash bookkeeping. @return true
     * if handled, with the syscall result in @p result_out.
     */
    bool tryFastPath(long nr, const std::uint64_t args[6],
                     long *result_out);

    /** Bump the shared leader syscall-mix histogram (adapt sampler
     *  input). */
    void recordSyscallMix(long nr);

    /** Append a stamped payload-free event to tuple's pending
     *  coalesced run (flushing when the live run cap is reached, and
     *  immediately when a follower is asleep). */
    void coalesceAdd(int tuple, ring::Event &event);

    /** The staleness window in force right now (live Tuning knob). */
    std::uint64_t liveCoalesceWindowNs() const;
    long handleFork(int tuple, long nr, const std::uint64_t args[6]);
    long handleExit(int tuple, long nr, const std::uint64_t args[6]);

    /** Assemble and publish one leader event (flushes any pending
     *  coalesced run first so stream order is preserved). */
    void publishEvent(int tuple, ring::Event &event,
                      shmem::Offset payload);

    /** Flush tuple's pending coalesced run through claim()/commit(). */
    void flushCoalesced(int tuple);

    /** Flush when the pending run must not be held back any longer:
     *  the incoming call can block indefinitely, a follower is asleep,
     *  or the run has been pending longer than the coalesce window. */
    void coalesceBarrier(int tuple, const sys::SyscallInfo &info);

    /** PublishCoalescer recycler: release the payload shadows of the
     *  claimed slots before the batch overwrites them. */
    static void recycleSlots(void *ctx, std::uint64_t first_seq,
                             std::size_t count);

    /** Leader-side payload assembly from tuple's pool arena; returns
     *  pool offset (0 = none), reporting global-arena spills. */
    shmem::Offset buildPayload(int tuple, const sys::SyscallInfo &info,
                               long nr, const std::uint64_t args[6],
                               long result, std::uint32_t *size_out,
                               bool *spilled);

    /** Follower-side payload application into local buffers. */
    void applyPayload(const ring::Event &event,
                      const sys::SyscallInfo &info,
                      const std::uint64_t args[6]);

    /** Follower-side descriptor mirroring (dup2 to leader numbers). */
    void receiveFds(const ring::Event &event,
                    const sys::SyscallInfo &info,
                    const std::uint64_t args[6]);

    /**
     * Per-tuple descriptor routing. All of one publisher's transfers
     * share a single stream channel, but follower threads of different
     * tuples replay concurrently; an unsynchronized recvmsg race can
     * hand tuple A's descriptor to tuple B's thread (and the dup2 +
     * temporary-close dance can then destroy a just-mirrored
     * descriptor). Transfers are therefore tagged with the publishing
     * tuple, and this demux hands each thread exactly its own tuple's
     * descriptors, queueing strays for their owners.
     */
    Result<Fd> recvFdFor(std::uint32_t publisher, std::uint32_t tuple);

    /** Resolve a sequence divergence; may not return (fatal). */
    enum class DivergenceOutcome { ExecutedLocally, SkippedEvent,
                                   SyntheticErrno };
    DivergenceOutcome resolveDivergence(const ring::Event &event, long nr,
                                        const std::uint64_t args[6],
                                        long *result_out);

    /** Check for and perform leader promotion; true if promoted. */
    bool maybePromote();

    /** Append a structured record to the shared divergence ledger
     *  (always — the ledger feeds the on_divergence_record hook even
     *  when the flight recorder is off). */
    void recordDivergence(const ring::Event &event, long nr,
                          const std::uint64_t args[6],
                          trace::DivergenceAction action);

    void installCrashHandlers();
    void notifyCoordinator(CtrlMsg::Type type, std::int64_t value);

    [[noreturn]] void fatalDivergence(const ring::Event &event, long nr);

    const shmem::Region *region_;
    EngineLayout layout_;
    ControlBlock *cb_;
    ChannelSet *channels_;
    Config config_;
    std::atomic<Role> role_;
    shmem::ShardedPool pool_;
    ring::LamportClock clock_;
    ring::RingBuffer rings_[kMaxTuples];
    std::uint64_t *shadows_[kMaxTuples];
    bpf::RuleSet rules_;
    std::mutex promote_mutex_;
    ring::WaitSpec tick_wait_;

    /** Restarted incarnation: resync the variant clock from the first
     *  event observed (see Config::resync_clock). */
    bool clock_resync_pending_ = false;

    // --- leader-side publish coalescing (one per tuple; each tuple's
    //     producer side is owned by exactly one thread) ---
    struct TupleRef {
        Monitor *monitor;
        std::uint32_t tuple;
    };
    ring::PublishCoalescer coalescers_[kMaxTuples];
    TupleRef tuple_refs_[kMaxTuples];
    std::atomic<std::uint64_t> coalesce_last_ns_[kMaxTuples] = {};
    /** monotonicNs() of the first add of the pending run (guarded by
     *  coalesce_mutex_); flush time minus this is the coalesce-dwell
     *  histogram sample. Reuses the timestamp coalesceAdd already
     *  takes, so the dwell measurement is free on the hot path. */
    std::uint64_t coalesce_first_ns_[kMaxTuples] = {};

    /** Per-nr fast-path eligibility, cached on first use
     *  (0 = unknown, 1 = eligible, -1 = not). */
    std::int8_t fastpath_ok_[sys::kMaxSyscallNr] = {};

    // --- follower-side peek batching: a read-ahead of peeked, not yet
    //     advanced events. Slots stay claimed (and pool payloads
    //     alive) until each event is processed and advanced. ---
    static constexpr std::uint32_t kPeekRun = 8;
    struct PeekCache {
        ring::Event events[kPeekRun];
        std::uint32_t pos = 0;
        std::uint32_t count = 0;
    };
    PeekCache peeked_[kMaxTuples];

    // --- follower-side per-tuple descriptor demux (see recvFdFor) ---
    struct FdInbox {
        std::mutex mutex; ///< guards the queues only — never held
                          ///< across a blocking recv (fork safety)
        std::deque<Fd> pending[kMaxTuples];
    };
    FdInbox fd_inboxes_[kMaxVariants];

    /** Tuples whose consumer thread lives in *this* process (bit per
     *  tuple). Plain-fork process tuples share the data channel with
     *  the parent; the demux must not hold a sibling process's
     *  descriptor hostage, so strays for un-owned tuples fall back to
     *  carrier semantics (any received object mirrors by the event's
     *  number — the pre-demux behaviour). */
    std::atomic<std::uint32_t> owned_tuples_{1}; // main thread = tuple 0

    /** In a freshly forked child: drop inherited cross-thread state —
     *  demux inboxes (the parent owns those parked descriptors and,
     *  worst case, a mutex locked mid-operation at fork time), the
     *  coalescing mutexes, and the flusher thread handle (the pthread
     *  was not duplicated by fork; joining it would hang forever). */
    void resetProcessStateAfterFork(int child_tuple);

    // --- leader-side time-based coalescing flusher: a compute-bound
    //     leader makes no syscalls, so no dispatch path ever reaches
    //     coalesceBarrier(); this thread ships a stale pending run
    //     after the coalesce window expires. Producer-side ring access
    //     for coalescing-enabled tuples is serialized through
    //     coalesce_mutex_ so the flusher can claim()/commit() safely
    //     against the owning thread. ---
    void flusherLoop();
    std::thread flusher_thread_;
    std::atomic<bool> flusher_stop_{false};
    std::mutex coalesce_mutex_[kMaxTuples];
};

} // namespace varan::core

#endif // VARAN_CORE_MONITOR_H
