#include "core/layout.h"

#include <new>

namespace varan::core {

EngineLayout
EngineLayout::create(shmem::Region *region, std::uint32_t num_variants,
                     std::uint32_t leader_id, std::uint32_t ring_capacity)
{
    VARAN_CHECK(num_variants >= 1 && num_variants <= kMaxVariants);
    VARAN_CHECK(leader_id < num_variants || leader_id == kNoLeader);
    VARAN_CHECK(ring_capacity > 0 &&
                (ring_capacity & (ring_capacity - 1)) == 0);

    EngineLayout layout;
    layout.control = region->carve(sizeof(ControlBlock));
    auto *cb = new (region->bytesAt(layout.control, sizeof(ControlBlock)))
        ControlBlock();
    cb->num_variants = num_variants;
    // Tracing defaults on: the flight recorder and histograms are
    // sampled/batch-granular and cost <5% on the hot paths (see
    // bench/sec57_trace.cc); operators flip trace.enabled live to
    // shed even that.
    cb->trace.enabled.store(1, std::memory_order_relaxed);
    cb->ring_capacity = ring_capacity;
    cb->leader_id.store(leader_id, std::memory_order_relaxed);
    cb->epoch.store(0, std::memory_order_relaxed);
    // Generation 0 means "no stream yet": an external-leader engine
    // adopts the shipping node's generation at the wire handshake.
    cb->stream_generation.store(leader_id == kNoLeader ? 0 : 1,
                                std::memory_order_relaxed);
    cb->promotions.store(0, std::memory_order_relaxed);
    cb->num_tuples.store(1, std::memory_order_relaxed); // tuple 0 = main
    cb->shutdown.store(0, std::memory_order_relaxed);
    std::uint32_t mask = 0;
    for (std::uint32_t v = 0; v < num_variants; ++v)
        mask |= 1u << v;
    cb->live_mask.store(mask, std::memory_order_relaxed);
    // Knobs read sane before anyone seeds explicit values; the seeded
    // mask stays clear so the first seeder (coordinator or a promoted
    // component) still wins.
    initTuningDefaults(cb->tuning);

    for (std::uint32_t v = 0; v < kMaxVariants; ++v) {
        cb->variants[v].state.store(
            static_cast<std::uint32_t>(v < num_variants
                                           ? VariantState::Running
                                           : VariantState::Empty),
            std::memory_order_relaxed);
        cb->variants[v].exit_status.store(0, std::memory_order_relaxed);
        cb->variants[v].pid.store(0, std::memory_order_relaxed);
        cb->variants[v].syscalls.store(0, std::memory_order_relaxed);
        cb->variants[v].role.store(
            static_cast<std::uint32_t>(VariantRole::LeaderCandidate),
            std::memory_order_relaxed);
        cb->variants[v].restarts.store(0, std::memory_order_relaxed);
        ring::LamportClock::initialize(
            region, region->offsetOf(&cb->clocks[v]));
    }

    // Rings and payload shadows for every possible tuple, with follower
    // cursors pre-attached so no start-up race can lose events.
    for (std::uint32_t t = 0; t < kMaxTuples; ++t) {
        shmem::Offset ring_off =
            region->carve(ring::RingBuffer::bytesRequired(ring_capacity));
        ring::RingBuffer ring =
            ring::RingBuffer::initialize(region, ring_off, ring_capacity);
        shmem::Offset shadow_off =
            region->carve(sizeof(std::uint64_t) * ring_capacity);
        auto *shadow = static_cast<std::uint64_t *>(
            region->bytesAt(shadow_off,
                            sizeof(std::uint64_t) * ring_capacity));
        for (std::uint32_t i = 0; i < ring_capacity; ++i)
            shadow[i] = 0;
        cb->tuples[t].ring = ring_off;
        cb->tuples[t].shadow = shadow_off;
        cb->tuples[t].active.store(t == 0 ? 1 : 0,
                                   std::memory_order_relaxed);
        for (std::uint32_t v = 0; v < num_variants; ++v) {
            if (v == leader_id)
                continue;
            VARAN_CHECK(ring.attachConsumerAt(static_cast<int>(v)));
        }
    }

    // Everything left belongs to the payload pool, split into one arena
    // per tuple plus the global fallback.
    layout.pool_header = region->carve(sizeof(shmem::ShardedPoolHeader));
    std::size_t pool_bytes = 0;
    shmem::Offset pool_begin = region->carveRemainder(&pool_bytes);
    shmem::ShardedPool::initialize(region, layout.pool_header, pool_begin,
                                   pool_begin + pool_bytes, kMaxTuples);

    // Publish the attach anchors last: an out-of-process inspector
    // that observes the magic can trust everything carved above.
    cb->pool_header_off = layout.pool_header;
    cb->magic.store(kControlMagic, std::memory_order_release);
    return layout;
}

Result<EngineLayout>
EngineLayout::attach(const shmem::Region *region)
{
    // create() carves the ControlBlock first, so it always sits at the
    // first carve offset (the cache line after the reserved null page
    // of offset 0).
    if (!region->valid() ||
        region->size() < kCacheLineSize + sizeof(ControlBlock)) {
        return Errno{EINVAL};
    }
    EngineLayout layout;
    layout.control = kCacheLineSize;
    const ControlBlock *cb = layout.controlBlock(region);
    if (cb->magic.load(std::memory_order_acquire) != kControlMagic)
        return Errno{EINVAL};
    if (cb->pool_header_off == 0 || cb->pool_header_off >= region->size())
        return Errno{EINVAL};
    layout.pool_header = cb->pool_header_off;
    return layout;
}

} // namespace varan::core
