/**
 * @file
 * The unified live tuning surface of the event path.
 *
 * Every fast-path parameter that used to be a static config field —
 * ship batch, credit window, coalesce run length, coalesce staleness
 * window, the top-k syscall fast path width — is one Knob backed by an
 * atomic slot in the shared region (TuningBlock, embedded in the
 * ControlBlock). Consumers re-read the live value at batch boundaries
 * instead of caching it at construction, so a knob turned mid-run —
 * by an operator through Nvx::tuning(), or by the adaptive controller
 * in src/adapt/ — takes effect without restarting anything: not the
 * engine, not a reconnecting peer, not a promoted shipper.
 *
 * Every knob has a hard floor and ceiling (kKnobRanges); readers clamp
 * on load, so a torn or hostile shared-memory value can never drive a
 * consumer out of its safe range. A knob set explicitly through
 * TuningHandle::set() is *pinned*: the adaptive controller leaves it
 * alone (see docs/TUNING.md).
 *
 * Seeding is first-writer-wins (the seeded mask): the coordinator
 * seeds all knobs from EngineConfig at start; a component constructed
 * later — a promoted shipper on a receiver node, a variant monitor —
 * finds the bit set and adopts the live value instead of clobbering a
 * retuned one with its construction-time options.
 */

#ifndef VARAN_CORE_TUNING_H
#define VARAN_CORE_TUNING_H

#include <atomic>
#include <cstdint>

namespace varan::core {

/** The live-tunable event-path parameters, one per TuningBlock slot. */
enum class Knob : std::uint32_t {
    ShipBatch = 0,        ///< events per wire Events frame
    CreditWindow = 1,     ///< max unacked events per tuple per peer
    CoalesceRun = 2,      ///< leader publish-coalescing run cap
    CoalesceWindowNs = 3, ///< coalesced-run staleness cap
    FastpathTopK = 4,     ///< hot-syscall fast-path width (0 = off)
};

inline constexpr std::uint32_t kNumKnobs = 5;

/** Shared fast-path table width (top-k hot syscalls). */
inline constexpr std::uint32_t kFastPathSlots = 8;

/** Per-syscall histogram size; must equal sys::kMaxSyscallNr (the
 *  syscalls layer sits above this header, so the equality is asserted
 *  where both are visible). */
inline constexpr std::uint32_t kSyscallStatsSlots = 512;

/** lag_ewma slots; must equal kMaxTuples (asserted in layout.h). */
inline constexpr std::uint32_t kTuningLagSlots = 16;

/** Hard floor/ceiling per knob; every read clamps into this range. */
struct KnobRange {
    std::uint64_t floor;
    std::uint64_t ceiling;
};

inline constexpr KnobRange kKnobRanges[kNumKnobs] = {
    {1, 64},               // ShipBatch   (== wire::Shipper::kMaxShipBatch)
    {64, 1u << 20},        // CreditWindow
    {1, 64},               // CoalesceRun (== ring::PublishCoalescer::kMaxPending)
    {10000, 100000000},    // CoalesceWindowNs [10 µs, 100 ms]
    {0, kFastPathSlots},   // FastpathTopK
};

/**
 * Plain seed values for the live knobs — what EngineConfig carries and
 * what seeds the shared TuningBlock at engine start. The defaults are
 * the historical RingConfig/CoalesceConfig/RemoteConfig defaults.
 */
struct Tuning {
    std::uint32_t ship_batch = 16;
    std::uint32_t credit_window = 4096;
    std::uint32_t coalesce_run = 16;
    std::uint64_t coalesce_window_ns = 200000;
    std::uint32_t fastpath_top_k = 0;
};

/** Adaptive-controller configuration (EngineConfig::adapt). */
struct AdaptConfig {
    bool enabled = false;          ///< run the AutoTuner thread
    std::uint64_t tick_ns = 10000000; ///< sample/decide cadence (10 ms)
    double hysteresis = 0.10;      ///< dead band around "no change"
    std::uint32_t settle_ticks = 2; ///< ticks between decisions per knob
};

/**
 * The shared-memory home of the live values plus the statistics the
 * adaptive controller feeds on. Lives inside the ControlBlock;
 * value-initialised to zero with the rest of it, then given defaults
 * by EngineLayout::create (without marking anything seeded).
 */
struct TuningBlock {
    std::atomic<std::uint64_t> values[kNumKnobs];
    std::atomic<std::uint32_t> seeded_mask; ///< knob has an explicit value
    std::atomic<std::uint32_t> pinned_mask; ///< knob excluded from adaptation

    // Adaptive-controller bookkeeping (surfaced via StatusReport).
    std::atomic<std::uint32_t> adapt_active;
    std::atomic<std::uint64_t> adapt_samples;   ///< controller ticks taken
    std::atomic<std::uint64_t> adapt_decisions; ///< knob adjustments applied

    /** Top-k hot-syscall table: each slot holds nr + 1 (0 = empty).
     *  Only the first FastpathTopK slots are consulted. */
    std::atomic<std::uint32_t> fastpath_nrs[kFastPathSlots];
    std::atomic<std::uint64_t> fastpath_hits;

    /** Per-tuple ring-lag EWMA (16.16 fixed point, in events), written
     *  by the adapt sampler at tick granularity. */
    std::atomic<std::uint64_t> lag_ewma[kTuningLagSlots];

    /** Leader syscall-mix histogram: one relaxed counter per nr,
     *  bumped on the leader's event path. */
    std::atomic<std::uint64_t> sys_hist[kSyscallStatsSlots];
};

inline std::uint64_t
clampKnob(Knob knob, std::uint64_t value)
{
    const KnobRange &range = kKnobRanges[static_cast<std::uint32_t>(knob)];
    if (value < range.floor)
        return range.floor;
    if (value > range.ceiling)
        return range.ceiling;
    return value;
}

/** The live value of a knob, clamped into its hard range. */
inline std::uint64_t
liveKnob(const TuningBlock &block, Knob knob)
{
    return clampKnob(
        knob, block.values[static_cast<std::uint32_t>(knob)].load(
                  std::memory_order_relaxed));
}

/** Write the historical defaults; does NOT mark anything seeded —
 *  layout creation runs this so unseeded knobs still read sane. */
inline void
initTuningDefaults(TuningBlock &block)
{
    const Tuning defaults;
    block.values[static_cast<std::uint32_t>(Knob::ShipBatch)].store(
        defaults.ship_batch, std::memory_order_relaxed);
    block.values[static_cast<std::uint32_t>(Knob::CreditWindow)].store(
        defaults.credit_window, std::memory_order_relaxed);
    block.values[static_cast<std::uint32_t>(Knob::CoalesceRun)].store(
        defaults.coalesce_run, std::memory_order_relaxed);
    block.values[static_cast<std::uint32_t>(Knob::CoalesceWindowNs)].store(
        defaults.coalesce_window_ns, std::memory_order_relaxed);
    block.values[static_cast<std::uint32_t>(Knob::FastpathTopK)].store(
        defaults.fastpath_top_k, std::memory_order_relaxed);
}

/**
 * First-seeder-wins initialisation: write @p value only if nobody has
 * seeded (or set) this knob yet. A promoted shipper constructed after
 * an operator retuned the node therefore adopts the live value instead
 * of resetting it to its own construction options.
 */
inline void
seedKnob(TuningBlock &block, Knob knob, std::uint64_t value)
{
    const std::uint32_t bit = 1u << static_cast<std::uint32_t>(knob);
    if (block.seeded_mask.fetch_or(bit, std::memory_order_acq_rel) & bit)
        return;
    block.values[static_cast<std::uint32_t>(knob)].store(
        clampKnob(knob, value), std::memory_order_release);
}

inline void
seedTuning(TuningBlock &block, const Tuning &tuning)
{
    seedKnob(block, Knob::ShipBatch, tuning.ship_batch);
    seedKnob(block, Knob::CreditWindow, tuning.credit_window);
    seedKnob(block, Knob::CoalesceRun, tuning.coalesce_run);
    seedKnob(block, Knob::CoalesceWindowNs, tuning.coalesce_window_ns);
    seedKnob(block, Knob::FastpathTopK, tuning.fastpath_top_k);
}

/** Controller-side write: updates the live value (clamped, marked
 *  seeded) without pinning — operator pins always win over this. */
inline void
applyKnob(TuningBlock &block, Knob knob, std::uint64_t value)
{
    block.values[static_cast<std::uint32_t>(knob)].store(
        clampKnob(knob, value), std::memory_order_release);
    block.seeded_mask.fetch_or(1u << static_cast<std::uint32_t>(knob),
                               std::memory_order_acq_rel);
}

/**
 * The live tuning API handed out by Nvx::tuning(): get/set any knob
 * while the engine runs. set() pins the knob by default — an explicit
 * operator choice should not be fought by the adaptive controller;
 * pass pin = false (or unpin()) to hand it back.
 */
class TuningHandle
{
  public:
    TuningHandle() = default;
    explicit TuningHandle(TuningBlock *block) : block_(block) {}

    bool valid() const { return block_ != nullptr; }

    std::uint64_t get(Knob knob) const { return liveKnob(*block_, knob); }

    void
    set(Knob knob, std::uint64_t value, bool pin = true)
    {
        const std::uint32_t bit =
            1u << static_cast<std::uint32_t>(knob);
        block_->values[static_cast<std::uint32_t>(knob)].store(
            clampKnob(knob, value), std::memory_order_release);
        block_->seeded_mask.fetch_or(bit, std::memory_order_acq_rel);
        if (pin)
            block_->pinned_mask.fetch_or(bit, std::memory_order_acq_rel);
    }

    void
    pin(Knob knob)
    {
        block_->pinned_mask.fetch_or(
            1u << static_cast<std::uint32_t>(knob),
            std::memory_order_acq_rel);
    }

    void
    unpin(Knob knob)
    {
        block_->pinned_mask.fetch_and(
            ~(1u << static_cast<std::uint32_t>(knob)),
            std::memory_order_acq_rel);
    }

    bool
    pinned(Knob knob) const
    {
        return (block_->pinned_mask.load(std::memory_order_acquire) >>
                static_cast<std::uint32_t>(knob)) &
               1u;
    }

    /** Point-in-time snapshot of every live value. */
    Tuning
    snapshot() const
    {
        Tuning t;
        t.ship_batch =
            static_cast<std::uint32_t>(get(Knob::ShipBatch));
        t.credit_window =
            static_cast<std::uint32_t>(get(Knob::CreditWindow));
        t.coalesce_run =
            static_cast<std::uint32_t>(get(Knob::CoalesceRun));
        t.coalesce_window_ns = get(Knob::CoalesceWindowNs);
        t.fastpath_top_k =
            static_cast<std::uint32_t>(get(Knob::FastpathTopK));
        return t;
    }

    // Typed conveniences for the common knobs.
    std::uint32_t
    shipBatch() const
    {
        return static_cast<std::uint32_t>(get(Knob::ShipBatch));
    }
    void shipBatch(std::uint32_t v) { set(Knob::ShipBatch, v); }

    std::uint32_t
    creditWindow() const
    {
        return static_cast<std::uint32_t>(get(Knob::CreditWindow));
    }
    void creditWindow(std::uint32_t v) { set(Knob::CreditWindow, v); }

    std::uint32_t
    coalesceRun() const
    {
        return static_cast<std::uint32_t>(get(Knob::CoalesceRun));
    }
    void coalesceRun(std::uint32_t v) { set(Knob::CoalesceRun, v); }

    std::uint64_t coalesceWindowNs() const
    {
        return get(Knob::CoalesceWindowNs);
    }
    void coalesceWindowNs(std::uint64_t v) { set(Knob::CoalesceWindowNs, v); }

    std::uint32_t
    fastpathTopK() const
    {
        return static_cast<std::uint32_t>(get(Knob::FastpathTopK));
    }
    void fastpathTopK(std::uint32_t v) { set(Knob::FastpathTopK, v); }

  private:
    TuningBlock *block_ = nullptr;
};

} // namespace varan::core

#endif // VARAN_CORE_TUNING_H
