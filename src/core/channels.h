/**
 * @file
 * Communication channels of Figure 2: a control socket pair between the
 * coordinator and each variant, a socket pair to the zygote, and a full
 * mesh of data channels between variants for descriptor transfer
 * (section 3.3.2). All pairs are created by the coordinator before any
 * fork so every process inherits exactly the ends it needs.
 */

#ifndef VARAN_CORE_CHANNELS_H
#define VARAN_CORE_CHANNELS_H

#include <cstdint>

#include "common/fd.h"
#include "core/layout.h"

namespace varan::core {

/** Control-plane message (SOCK_SEQPACKET keeps boundaries). */
struct CtrlMsg {
    enum Type : std::uint32_t {
        Invalid = 0,
        SpawnRequest,   ///< coordinator -> zygote: fork variant `variant`
        SpawnReply,     ///< zygote -> coordinator: `value` = pid
        VariantExited,  ///< zygote/variant -> coordinator: `value` = status
        VariantCrashed, ///< variant -> coordinator: `value` = signal
        Shutdown,       ///< coordinator -> zygote: kill children, quit
    };
    Type type = Invalid;
    std::int32_t variant = -1;
    std::int64_t value = 0;
};

/** Send one control message (EINTR-safe, message-boundary preserving). */
Status sendCtrl(int fd, const CtrlMsg &msg);

/** Receive one control message; EPIPE on orderly shutdown. */
Result<CtrlMsg> recvCtrl(int fd);

/**
 * All socket pairs of one engine instance.
 *
 * Index conventions: control[i] end 0 belongs to the coordinator, end 1
 * to variant i. data(i, j) returns the descriptor variant i uses to
 * talk to variant j (each unordered pair {i, j} shares one socketpair).
 */
class ChannelSet
{
  public:
    /** Create all pairs for @p num_variants variants. */
    static Result<ChannelSet> create(std::uint32_t num_variants);

    ChannelSet() = default;

    std::uint32_t numVariants() const { return num_variants_; }

    /** Coordinator's end of variant @p v's control channel. */
    int controlCoordinatorEnd(std::uint32_t v) const;
    /** Variant @p v's end of its control channel. */
    int controlVariantEnd(std::uint32_t v) const;

    /** Data-channel descriptor variant @p self uses to reach @p peer.
     *  Descriptor transfer stays ordered against the event stream even
     *  under publish coalescing: fd-creating events never join a
     *  pending run, so the descriptor is always in flight before its
     *  event becomes visible. Both ids must be < numVariants(). */
    int data(std::uint32_t self, std::uint32_t peer) const;

    /** Zygote channel ends. */
    int zygoteCoordinatorEnd() { return zygote_.end(0).get(); }
    int zygoteZygoteEnd() { return zygote_.end(1).get(); }

    /**
     * In a freshly forked variant: close every descriptor that does not
     * belong to variant @p self (channel hygiene, the reason the
     * zygote exists at all — section 3.1).
     */
    void closeAllExceptVariant(std::uint32_t self);

    /** In the zygote: close coordinator-only ends. */
    void closeCoordinatorEnds();

    /**
     * In a variant: move this variant's channel ends to high descriptor
     * numbers (base + fixed offsets). Application descriptors then
     * occupy identical low numbers in every variant, which is what lets
     * followers mirror the leader's numbering with dup2 (section 3.3.2)
     * without ever colliding with engine descriptors.
     */
    void relocateVariantEndsHigh(std::uint32_t self, int base = 960);

  private:
    std::uint32_t num_variants_ = 0;
    SocketPair control_[kMaxVariants];
    // mesh_[i][j] valid for i < j.
    SocketPair mesh_[kMaxVariants][kMaxVariants];
    SocketPair zygote_;
};

} // namespace varan::core

#endif // VARAN_CORE_CHANNELS_H
