#include "core/nvx.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "adapt/autotuner.h"
#include "common/clock.h"
#include "common/logging.h"
#include "netio/socketio.h"
#include "wire/io.h"
#include "wire/protocol.h"
#include "wire/shipper.h"

namespace varan::core {

Nvx::Nvx(EngineConfig config) : config_(std::move(config))
{
    auto region = shmem::Region::create(config_.shm_bytes);
    if (!region.ok())
        fatal("cannot create shared region: %s",
              region.error().message().c_str());
    region_ = std::move(region.value());
}

Nvx::~Nvx()
{
    if (started_ && !finished_)
        shutdownZygote();
    status_stop_.store(true, std::memory_order_release);
    if (status_thread_.joinable())
        status_thread_.join();
    if (status_listen_fd_ >= 0)
        ::close(status_listen_fd_);
    if (monitor_thread_.joinable())
        monitor_thread_.join();
    if (zygote_pid_ > 0) {
        int status = 0;
        ::waitpid(zygote_pid_, &status, 0);
    }
}

ControlBlock *
Nvx::controlBlock() const
{
    return layout_.controlBlock(&region_);
}

Status
Nvx::start(std::vector<VariantSpec> specs)
{
    specs_ = std::move(specs);
    return start();
}

Status
Nvx::start(std::vector<VariantSpec> specs,
           const std::function<void(Nvx &)> &pre_spawn)
{
    specs_ = std::move(specs);
    return start(pre_spawn);
}

Status
Nvx::start(std::vector<VariantFn> variants)
{
    return start(std::move(variants), {});
}

Status
Nvx::start(std::vector<VariantFn> variants,
           const std::function<void(Nvx &)> &pre_spawn)
{
    std::vector<VariantSpec> specs;
    specs.reserve(variants.size());
    for (VariantFn &fn : variants)
        specs.emplace_back(std::move(fn));
    specs_ = std::move(specs);
    return start(pre_spawn);
}

Status
Nvx::start()
{
    return start(std::function<void(Nvx &)>{});
}

Status
Nvx::start(const std::function<void(Nvx &)> &pre_spawn)
{
    VARAN_CHECK(!started_);
    VARAN_CHECK(!specs_.empty() && specs_.size() <= kMaxVariants);
    for (const VariantSpec &spec : specs_)
        VARAN_CHECK(spec.entry != nullptr);
    num_variants_ = static_cast<std::uint32_t>(specs_.size());
    results_.assign(num_variants_, VariantResult{});
    reaped_ = std::vector<std::atomic<bool>>(num_variants_);
    restarts_.assign(num_variants_, 0);
    for (std::uint32_t v = 0; v < num_variants_; ++v)
        results_[v].variant = static_cast<int>(v);

    // Initial leader: the configured index, unless its spec is
    // FollowerOnly — then the lowest LeaderCandidate takes the role.
    std::uint32_t leader = kNoLeader;
    if (!config_.external_leader) {
        VARAN_CHECK(config_.leader_index < num_variants_);
        leader = config_.leader_index;
        if (specs_[leader].role == VariantRole::FollowerOnly) {
            leader = kNoLeader;
            for (std::uint32_t v = 0; v < num_variants_; ++v) {
                if (specs_[v].role == VariantRole::LeaderCandidate) {
                    leader = v;
                    break;
                }
            }
            if (leader == kNoLeader)
                return Status(Errno{EINVAL}); // nobody may lead
            inform("leader index %u is FollowerOnly; variant %u leads",
                   config_.leader_index, leader);
        }
    }

    layout_ = EngineLayout::create(&region_, num_variants_, leader,
                                   config_.ring.capacity);
    ControlBlock *cb = controlBlock();
    for (std::uint32_t v = 0; v < num_variants_; ++v)
        cb->variants[v].role.store(
            static_cast<std::uint32_t>(specs_[v].role),
            std::memory_order_release);

    // Seed the live knob surface from the configured initial Tuning.
    // Seeding is first-writer-wins, so a pre_spawn hook (or anyone
    // else) writing through Nvx::tuning() afterwards still overrides.
    seedTuning(cb->tuning, config_.tuning);
    cb->trace.enabled.store(config_.trace_enabled ? 1 : 0,
                            std::memory_order_release);

    if (pre_spawn)
        pre_spawn(*this);

    // Multi-node shipping: taps must attach before any variant runs so
    // the remote stream starts at event one, and every link must be up
    // before the leader can outrun the credit windows. One shipper
    // serves all configured peers (fan-out).
    const std::vector<std::string> peers = config_.remote.allEndpoints();
    if (!peers.empty()) {
        wire::Shipper::Options ship;
        ship.ship_batch = config_.tuning.ship_batch;
        ship.credit_window = config_.tuning.credit_window;
        ship.status_push_ns = config_.remote.status_push_interval_ns;
        shipper_ = std::make_unique<wire::Shipper>(&region_, &layout_, ship);
        Status taps = shipper_->attachTaps();
        if (!taps.isOk())
            return taps;
        for (const std::string &endpoint : peers) {
            auto sock = netio::connectAbstract(endpoint);
            if (!sock.ok())
                return Status(sock.error());
            Status shaken = shipper_->addPeer(sock.value());
            if (!shaken.isOk())
                return shaken;
        }
        shipper_->start();
    }

    // Out-of-process inspection: serve the wire Status RPC on the
    // configured abstract socket so `varanctl dial <name>` works
    // without any peer shipping configured.
    if (!config_.remote.status_endpoint.empty()) {
        auto listen = netio::listenAbstract(config_.remote.status_endpoint);
        if (!listen.ok())
            return Status(listen.error());
        status_listen_fd_ = listen.value();
        status_thread_ = std::thread([this] { statusServeLoop(); });
    }

    auto channels = ChannelSet::create(num_variants_);
    if (!channels.ok())
        return Status(channels.error());
    channels_ = std::move(channels.value());

    // Fork the zygote (Figure 2 step B) while the address space still
    // holds everything a variant will need.
    pid_t pid = ::fork();
    if (pid < 0)
        return Status::fromErrno();
    if (pid == 0)
        zygoteMain(); // never returns
    zygote_pid_ = pid;

    // Ask the zygote to spawn each variant (steps C/D) and wait for
    // the acknowledgements so start() returning means "all running".
    int zfd = channels_.zygoteCoordinatorEnd();
    for (std::uint32_t v = 0; v < num_variants_; ++v) {
        CtrlMsg msg;
        msg.type = CtrlMsg::SpawnRequest;
        msg.variant = static_cast<std::int32_t>(v);
        Status sent = sendCtrl(zfd, msg);
        if (!sent.isOk())
            return sent;
    }
    // A variant may run to completion before we even collected all the
    // spawn acknowledgements; exit notifications that race ahead are
    // stashed for the monitor loop.
    std::uint32_t acked = 0;
    while (acked < num_variants_) {
        auto reply = recvCtrl(zfd);
        if (!reply.ok())
            return Status(reply.error());
        if (reply.value().type == CtrlMsg::SpawnReply) {
            if (reply.value().value > 0) {
                controlBlock()
                    ->variants[reply.value().variant]
                    .pid.store(
                        static_cast<std::uint32_t>(reply.value().value),
                        std::memory_order_release);
            }
            ++acked;
        } else {
            early_zygote_msgs_.push_back(reply.value());
        }
    }

    started_ = true;

    // Adaptive controller: retunes the unpinned knobs online from the
    // sampled syscall mix, ring occupancy and (when shipping) the wire
    // drain statistics. Started after the spawn acks so its first
    // baseline tick sees a running engine.
    if (config_.adapt.enabled) {
        adapt::AutoTuner::Options opts;
        opts.tick_ns = config_.adapt.tick_ns;
        opts.controller.hysteresis = config_.adapt.hysteresis;
        opts.controller.settle_ticks = config_.adapt.settle_ticks;
        adapt::Sampler::WireSource wire_source;
        if (shipper_) {
            wire::Shipper *shipper = shipper_.get();
            wire_source = [shipper] {
                adapt::WireSample w;
                const auto stats = shipper->stats();
                w.active = true;
                w.events = stats.events;
                w.drain_passes = stats.drain_passes;
                w.credit_stalls = stats.credit_stalls;
                return w;
            };
        }
        autotuner_ = std::make_unique<adapt::AutoTuner>(
            &region_, &layout_, opts, std::move(wire_source));
        autotuner_->start();
    }

    monitor_thread_ = std::thread([this] { monitorLoop(); });
    return Status::ok();
}

void
Nvx::zygoteMain()
{
    channels_.closeCoordinatorEnds();
    const int zfd = channels_.zygoteZygoteEnd();
    std::vector<pid_t> child_of(num_variants_, -1);
    std::uint32_t alive_children = 0;
    bool accepting = true;

    auto reap = [&]() {
        for (;;) {
            int status = 0;
            pid_t dead = ::waitpid(-1, &status, WNOHANG);
            if (dead <= 0)
                return;
            for (std::uint32_t v = 0; v < num_variants_; ++v) {
                if (child_of[v] == dead) {
                    child_of[v] = -1;
                    --alive_children;
                    CtrlMsg note;
                    note.type = CtrlMsg::VariantExited;
                    note.variant = static_cast<std::int32_t>(v);
                    note.value = status;
                    sendCtrl(zfd, note);
                    break;
                }
            }
        }
    };

    for (;;) {
        struct pollfd pfd = {zfd, POLLIN, 0};
        int n = ::poll(&pfd, 1, 50);
        reap();
        if (n <= 0) {
            if (!accepting && alive_children == 0)
                ::_exit(0);
            continue;
        }
        auto msg = recvCtrl(zfd);
        if (!msg.ok() || msg.value().type == CtrlMsg::Shutdown) {
            // Coordinator is gone or wants teardown: kill straggler
            // subtrees (group kill reaches fork-tuple children and app
            // workers the variant spawned).
            for (std::uint32_t v = 0; v < num_variants_; ++v) {
                if (child_of[v] > 0)
                    ::kill(-child_of[v], SIGKILL);
            }
            accepting = false;
            if (alive_children == 0)
                ::_exit(0);
            continue;
        }
        // Once teardown started, late respawn requests must not fork a
        // child nobody will ever reap into a dying engine.
        if (!accepting || msg.value().type != CtrlMsg::SpawnRequest)
            continue;
        const auto v =
            static_cast<std::uint32_t>(msg.value().variant);
        // Restart respawns flag themselves (CtrlMsg::value != 0): the
        // fresh follower joins the live stream at the tail and must
        // resynchronise its Lamport clock from the first event it sees.
        const bool restart_spawn = msg.value().value != 0;

        pid_t pid = ::fork();
        if (pid < 0) {
            // Spawn failed (EAGAIN under pid/memory pressure). Ack so
            // start()'s spawn count still completes, then report an
            // immediate synthetic exit: the coordinator rolls the
            // variant's armed state back (detaches the pre-attached
            // ring cursors, clears the live bit) instead of leaving a
            // phantom consumer gating the leader forever.
            CtrlMsg reply;
            reply.type = CtrlMsg::SpawnReply;
            reply.variant = msg.value().variant;
            reply.value = -1;
            sendCtrl(zfd, reply);
            CtrlMsg note;
            note.type = CtrlMsg::VariantExited;
            note.variant = msg.value().variant;
            note.value = 127 << 8; // WEXITSTATUS(status) == 127
            sendCtrl(zfd, note);
            continue;
        }
        if (pid == 0) {
            // ---- variant process (Figure 2 right-hand side) ----
            // Own process group: teardown kills the variant's whole
            // subtree (fork-tuple children, app worker processes).
            ::setpgid(0, 0);
            channels_.closeAllExceptVariant(v);
            channels_.relocateVariantEndsHigh(v);
            region_.closeBackingFd();

            Monitor::Config config;
            config.variant_id = v;
            config.wait = config_.ring.wait;
            config.verify_divergence = config_.verify_divergence;
            // This variant's own rules come first (first verdict other
            // than KILL wins), then the engine-global set.
            config.rules_text = specs_[v].rewrite_rules;
            config.rules_text.insert(config.rules_text.end(),
                                     config_.rewrite_rules.begin(),
                                     config_.rewrite_rules.end());
            config.progress_timeout_ns = config_.ring.progress_timeout_ns;
            config.tick_ns = config_.ring.tick_ns;
            config.coalesce_publish = config_.coalesce.enabled;
            config.coalesce_max = config_.tuning.coalesce_run;
            config.coalesce_window_ns = config_.tuning.coalesce_window_ns;
            config.resync_clock = restart_spawn;
            Monitor *monitor =
                Monitor::initVariant(&region_, layout_, &channels_,
                                     config);

            int status = specs_[v].entry();
            monitor->finishVariant(status);
            ::_exit(status & 0xff);
        }
        child_of[v] = pid;
        ::setpgid(pid, pid); // races benignly with the child's setpgid
        ++alive_children;
        CtrlMsg reply;
        reply.type = CtrlMsg::SpawnReply;
        reply.variant = msg.value().variant;
        reply.value = pid;
        sendCtrl(zfd, reply);
    }
}

void
Nvx::markVariantDead(std::uint32_t variant, bool crashed)
{
    ControlBlock *cb = controlBlock();
    std::uint32_t bit = 1u << variant;
    std::uint32_t live =
        cb->live_mask.fetch_and(~bit, std::memory_order_acq_rel);
    if (!(live & bit))
        return; // already dealt with

    // Unsubscribe the dead follower from every ring so it stops gating
    // the producer (section 5.1: "discards it without affecting other
    // followers").
    for (std::uint32_t t = 0; t < kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_.tupleRing(&region_, t);
        if (ring.consumerActive(static_cast<int>(variant)))
            ring.detachConsumer(static_cast<int>(variant));
    }

    // Election: the lowest live *LeaderCandidate* takes over.
    // FollowerOnly variants (sanitizer builds, experimental revisions)
    // are never promoted; with no candidate left the stream simply
    // ends and the remaining followers drain what was published.
    if (cb->leader_id.load(std::memory_order_acquire) == variant) {
        // Arm the failover-blackout measurement: the promoted leader's
        // first publish consumes this mark and records death→dispatch.
        if (trace::enabled(cb->trace)) {
            std::uint64_t expected = 0;
            cb->trace.leader_death_ns.compare_exchange_strong(
                expected, monotonicNs(), std::memory_order_acq_rel);
        }
        std::uint32_t remaining = live & ~bit;
        std::uint32_t candidates = 0;
        for (std::uint32_t v = 0; v < num_variants_; ++v) {
            if (!(remaining & (1u << v)))
                continue;
            if (cb->variants[v].role.load(std::memory_order_acquire) ==
                static_cast<std::uint32_t>(VariantRole::LeaderCandidate)) {
                candidates |= 1u << v;
            }
        }
        if (candidates != 0) {
            std::uint32_t new_leader = 0;
            while (!(candidates & (1u << new_leader)))
                ++new_leader;
            std::uint32_t epoch =
                cb->epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
            // The stream continues on this node: the epoch moves, the
            // stream generation does not (that bump is reserved for
            // cross-node promotion, where a *different* engine takes
            // over publishing).
            cb->promotions.fetch_add(1, std::memory_order_acq_rel);
            cb->leader_id.store(new_leader, std::memory_order_release);
            if (trace::enabled(cb->trace)) {
                trace::stamp(cb->trace, trace::Stage::Election,
                             static_cast<std::uint8_t>(new_leader), 0,
                             epoch, monotonicNs(), variant);
            }
            inform("leader %u %s; elected variant %u", variant,
                   crashed ? "crashed" : "exited", new_leader);
            if (config_.on_failover)
                config_.on_failover(epoch, new_leader);
        } else if (remaining != 0) {
            warn("leader %u %s; no leader candidate among surviving "
                 "variants",
                 variant, crashed ? "crashed" : "exited");
        }
    }
}

bool
Nvx::shouldRestart(std::uint32_t variant, bool crashed) const
{
    const VariantSpec &spec = specs_[variant];
    switch (spec.restart) {
      case RestartPolicy::Never:
        return false;
      case RestartPolicy::OnCrash:
        if (!crashed)
            return false;
        break;
      case RestartPolicy::Always:
        break;
    }
    if (restarts_[variant] >= spec.max_restarts)
        return false;
    if (shutdown_requested_.load(std::memory_order_acquire))
        return false;
    ControlBlock *cb = controlBlock();
    // A respawned follower needs a stream to join: a live variant that
    // is (or can become) the leader, or an external one.
    if (!config_.external_leader &&
        cb->live_mask.load(std::memory_order_acquire) == 0) {
        return false;
    }
    // If leadership was never transferred away (no LeaderCandidate
    // survived the election), a respawn would come back *as leader* —
    // Monitor derives its role from leader_id — and publish from fresh
    // program state into followers mid-replay. Refuse instead.
    if (!config_.external_leader &&
        cb->leader_id.load(std::memory_order_acquire) == variant) {
        return false;
    }
    return true;
}

bool
Nvx::restartVariant(std::uint32_t variant)
{
    ControlBlock *cb = controlBlock();

    // Stale fast-path notifications from the dead incarnation must not
    // tear the fresh one down: drain the variant's control channel.
    int cfd = channels_.controlCoordinatorEnd(variant);
    for (;;) {
        struct pollfd pfd = {cfd, POLLIN, 0};
        if (::poll(&pfd, 1, 0) <= 0)
            break;
        if (!recvCtrl(cfd).ok())
            break;
    }

    // Re-attach the follower's cursor at the current stream tail on
    // every ring (mirroring the pre-attach of EngineLayout::create, so
    // tuples opened later also find it). Events published before this
    // point are gone for the new incarnation — its Monitor
    // resynchronises the variant Lamport clock from the first event it
    // observes (Config::resync_clock).
    for (std::uint32_t t = 0; t < kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_.tupleRing(&region_, t);
        if (!ring.consumerActive(static_cast<int>(variant)))
            ring.attachConsumerAt(static_cast<int>(variant));
    }

    VariantSlot &slot = cb->variants[variant];
    slot.state.store(static_cast<std::uint32_t>(VariantState::Running),
                     std::memory_order_release);
    slot.exit_status.store(0, std::memory_order_release);
    slot.pid.store(0, std::memory_order_release);
    // A respawned incarnation replays from the stream tail with fresh
    // program state; electing it leader later (original leader dies)
    // would have it publish that fresh state into followers mid-replay.
    // Demote it to FollowerOnly for the rest of the engine's life.
    slot.role.store(static_cast<std::uint32_t>(VariantRole::FollowerOnly),
                    std::memory_order_release);
    cb->live_mask.fetch_or(1u << variant, std::memory_order_acq_rel);

    CtrlMsg request;
    request.type = CtrlMsg::SpawnRequest;
    request.variant = static_cast<std::int32_t>(variant);
    request.value = 1; // restart spawn: resync the Lamport clock
    Status sent = sendCtrl(channels_.zygoteCoordinatorEnd(), request);
    if (!sent.isOk()) {
        // Zygote gone: roll back so nothing gates on a cursor whose
        // consumer will never exist.
        cb->live_mask.fetch_and(~(1u << variant),
                                std::memory_order_acq_rel);
        slot.state.store(static_cast<std::uint32_t>(VariantState::Exited),
                         std::memory_order_release);
        for (std::uint32_t t = 0; t < kMaxTuples; ++t) {
            ring::RingBuffer ring = layout_.tupleRing(&region_, t);
            if (ring.consumerActive(static_cast<int>(variant)))
                ring.detachConsumer(static_cast<int>(variant));
        }
        return false;
    }
    restarts_[variant] += 1;
    slot.restarts.fetch_add(1, std::memory_order_acq_rel);
    inform("variant %u respawned by restart policy (attempt %u/%u)",
           variant, restarts_[variant], specs_[variant].max_restarts);
    return true;
}

void
Nvx::observeDivergences()
{
    if (!config_.on_divergence_record)
        return;
    ControlBlock *cb = controlBlock();

    // Drain the shared ledger from the last-seen cursor. Records
    // shipped back from remote follower nodes land in the same ledger
    // (tagged with their origin receiver id), so one hook covers the
    // whole deployment. The counter-form on_divergence hook was
    // removed after its one-release grace period.
    trace::DivergenceRecord batch[16];
    std::size_t n;
    while ((n = trace::ledgerRead(cb->trace, &ledger_cursor_, batch,
                                  16)) > 0) {
        for (std::size_t i = 0; i < n; ++i)
            config_.on_divergence_record(batch[i]);
    }
}

void
Nvx::statusServeLoop()
{
    while (!status_stop_.load(std::memory_order_acquire)) {
        struct pollfd pfd = {status_listen_fd_, POLLIN, 0};
        int n = ::poll(&pfd, 1, 100);
        if (n <= 0)
            continue;
        long conn = netio::acceptConnection(status_listen_fd_, false);
        if (conn < 0)
            continue;
        const int fd = static_cast<int>(conn);
        // One request, one reply, hang up. Timeouts bound a stuck
        // client so it can never wedge the serve thread.
        struct timeval tv = {5, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        wire::FrameHeader header = {};
        if (wire::readFull(fd, &header, sizeof(header)) &&
            wire::headerValid(header) &&
            header.type ==
                static_cast<std::uint16_t>(wire::FrameType::Status) &&
            header.body_len == 0) {
            std::uint8_t frame[wire::kStatusFrameBytes];
            wire::encodeStatusFrame(status(), frame);
            wire::writeFull(fd, frame, wire::kStatusFrameBytes);
        }
        ::close(fd);
    }
}

void
Nvx::monitorLoop()
{
    std::vector<struct pollfd> pfds;
    pfds.push_back({channels_.zygoteCoordinatorEnd(), POLLIN, 0});
    for (std::uint32_t v = 0; v < num_variants_; ++v)
        pfds.push_back(
            {channels_.controlCoordinatorEnd(v), POLLIN, 0});

    std::uint32_t reaped = 0;
    auto handleZygoteMsg = [&](const CtrlMsg &msg) {
        if (msg.type == CtrlMsg::SpawnReply) {
            // A restart respawn acknowledged: record the fresh pid. A
            // failed fork replies value -1 followed by a synthetic
            // VariantExited that rolls the armed state back.
            if (msg.value > 0) {
                controlBlock()->variants[msg.variant].pid.store(
                    static_cast<std::uint32_t>(msg.value),
                    std::memory_order_release);
            }
            return;
        }
        if (msg.type != CtrlMsg::VariantExited)
            return;
        const auto v = static_cast<std::uint32_t>(msg.variant);
        const int status = static_cast<int>(msg.value);
        ControlBlock *cb = controlBlock();
        bool crashed =
            WIFSIGNALED(status) ||
            cb->variants[v].state.load(std::memory_order_acquire) ==
                static_cast<std::uint32_t>(VariantState::Crashed);
        markVariantDead(v, crashed);
        if (reaped_[v].load(std::memory_order_relaxed))
            return;
        VariantResult result;
        result.variant = static_cast<int>(v);
        result.crashed = crashed;
        result.status = WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                            : WEXITSTATUS(status);
        result.restarts = restarts_[v];
        bool restarting = shouldRestart(v, crashed);
        // Quiesce point: the policy committed to a respawn but the
        // fresh cursors are not attached yet — an external replayer
        // must stop publishing before restartVariant() picks the tail.
        if (restarting && config_.on_restart)
            config_.on_restart(v, restarts_[v] + 1);
        restarting = restarting && restartVariant(v);
        if (config_.on_variant_exit)
            config_.on_variant_exit(result, restarting);
        if (!restarting) {
            reaped_[v].store(true, std::memory_order_release);
            ++reaped;
            results_[v] = result;
        }
    };
    for (const CtrlMsg &msg : early_zygote_msgs_)
        handleZygoteMsg(msg);
    early_zygote_msgs_.clear();

    while (reaped < num_variants_) {
        for (auto &p : pfds)
            p.revents = 0;
        int n = ::poll(pfds.data(), pfds.size(), 100);
        observeDivergences();
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0)
            continue;

        // Zygote notifications: authoritative exit/reap info.
        if (pfds[0].revents & POLLIN) {
            auto msg = recvCtrl(pfds[0].fd);
            if (msg.ok())
                handleZygoteMsg(msg.value());
            else
                break; // zygote died; stop monitoring
        }
        // Variant control messages: fast crash signal for election.
        for (std::uint32_t v = 0; v < num_variants_; ++v) {
            if (!(pfds[1 + v].revents & POLLIN))
                continue;
            // The readiness may be stale: restartVariant() drains this
            // very channel when the zygote message (handled above) led
            // to a respawn, and a blocking recv on the emptied socket
            // would wedge the whole monitor loop.
            struct pollfd probe = {pfds[1 + v].fd, POLLIN, 0};
            if (::poll(&probe, 1, 0) <= 0)
                continue;
            auto msg = recvCtrl(pfds[1 + v].fd);
            if (!msg.ok())
                continue;
            switch (msg.value().type) {
              case CtrlMsg::VariantCrashed:
                markVariantDead(v, true);
                break;
              case CtrlMsg::VariantExited:
                markVariantDead(v, false);
                break;
              default:
                break;
            }
        }
    }
    observeDivergences();
}

std::vector<VariantResult>
Nvx::wait()
{
    VARAN_CHECK(started_);
    if (monitor_thread_.joinable())
        monitor_thread_.join();
    finished_ = true;
    shutdownZygote();
    if (autotuner_)
        autotuner_->stop(); // no retuning during the drain
    if (shipper_)
        shipper_->finish(); // drain the ring tails, send Bye
    return results_;
}

std::vector<VariantResult>
Nvx::waitFor(std::uint64_t timeout_ns)
{
    VARAN_CHECK(started_);
    const std::uint64_t deadline = monotonicNs() + timeout_ns;
    while (monotonicNs() < deadline) {
        bool all = true;
        for (std::uint32_t v = 0; v < num_variants_; ++v)
            all = all && reaped_[v].load(std::memory_order_acquire);
        if (all)
            return wait();
        sleepNs(5000000);
    }
    warn("engine wait timed out; killing surviving variants");
    // Snapshot who was still running at the deadline: their results
    // must read "killed at timeout", never a fabricated clean exit —
    // whatever exit notifications trickle in during the teardown below.
    std::vector<bool> timed_out(num_variants_, false);
    for (std::uint32_t v = 0; v < num_variants_; ++v)
        timed_out[v] = !reaped_[v].load(std::memory_order_acquire);
    shutdownZygote();
    if (monitor_thread_.joinable())
        monitor_thread_.join();
    finished_ = true;
    if (autotuner_)
        autotuner_->stop();
    if (shipper_)
        shipper_->finish();
    for (std::uint32_t v = 0; v < num_variants_; ++v) {
        if (timed_out[v]) {
            results_[v].crashed = false;
            results_[v].status = kTimedOutStatus;
            // The monitor thread never recorded a final result for this
            // variant; the respawns it consumed still count.
            results_[v].restarts = restarts_[v];
        }
    }
    return results_;
}

std::vector<VariantResult>
Nvx::run(std::vector<VariantSpec> specs)
{
    specs_ = std::move(specs);
    return run();
}

std::vector<VariantResult>
Nvx::run(std::vector<VariantFn> variants)
{
    Status status = start(std::move(variants));
    if (!status.isOk())
        fatal("engine start failed: %s", status.error().message().c_str());
    return wait();
}

std::vector<VariantResult>
Nvx::run()
{
    Status status = start();
    if (!status.isOk())
        fatal("engine start failed: %s", status.error().message().c_str());
    return wait();
}

void
Nvx::shutdownZygote()
{
    shutdown_requested_.store(true, std::memory_order_release);
    if (zygote_pid_ <= 0)
        return;
    CtrlMsg msg;
    msg.type = CtrlMsg::Shutdown;
    sendCtrl(channels_.zygoteCoordinatorEnd(), msg);
}

StatusReport
Nvx::status() const
{
    StatusReport report = collectStatus(&region_, layout_);
    if (shipper_) {
        wire::Shipper::fillWireStatus(report.shipper, shipper_->stats(),
                                      shipper_->linkUp());
    }
    return report;
}

std::string
Nvx::statusText() const
{
    return ::varan::core::statusText(status());
}

TuningHandle
Nvx::tuning() const
{
    return TuningHandle(&controlBlock()->tuning);
}

int
Nvx::currentLeader() const
{
    return static_cast<int>(
        controlBlock()->leader_id.load(std::memory_order_acquire));
}

std::uint32_t
Nvx::epoch() const
{
    return controlBlock()->epoch.load(std::memory_order_acquire);
}

std::uint64_t
Nvx::eventsStreamed() const
{
    return controlBlock()->events_streamed.load(std::memory_order_relaxed);
}

std::uint64_t
Nvx::divergencesResolved() const
{
    return controlBlock()->divergences_resolved.load(
        std::memory_order_relaxed);
}

std::uint64_t
Nvx::divergencesFatal() const
{
    return controlBlock()->divergences_fatal.load(
        std::memory_order_relaxed);
}

std::uint64_t
Nvx::fdTransfers() const
{
    return controlBlock()->fd_transfers.load(std::memory_order_relaxed);
}

std::uint64_t
Nvx::publishBatches() const
{
    return controlBlock()->publish_batches.load(std::memory_order_relaxed);
}

std::uint64_t
Nvx::eventsCoalesced() const
{
    return controlBlock()->events_coalesced.load(std::memory_order_relaxed);
}

std::uint64_t
Nvx::poolSpills() const
{
    return layout_.pool(&region_).spills();
}

shmem::PoolStats
Nvx::poolStats() const
{
    return layout_.pool(&region_).stats();
}

std::uint64_t
Nvx::ringLagOf(std::uint32_t variant) const
{
    std::uint64_t max_lag = 0;
    ControlBlock *cb = controlBlock();
    std::uint32_t tuples = cb->num_tuples.load(std::memory_order_acquire);
    for (std::uint32_t t = 0; t < tuples && t < kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_.tupleRing(&region_, t);
        if (!ring.consumerActive(static_cast<int>(variant)))
            continue;
        std::uint64_t lag = ring.lag(static_cast<int>(variant));
        if (lag > max_lag)
            max_lag = lag;
    }
    return max_lag;
}

} // namespace varan::core
