#include "core/nvx.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "netio/socketio.h"
#include "wire/shipper.h"

namespace varan::core {

Nvx::Nvx(NvxOptions options) : options_(std::move(options))
{
    auto region = shmem::Region::create(options_.shm_bytes);
    if (!region.ok())
        fatal("cannot create shared region: %s",
              region.error().message().c_str());
    region_ = std::move(region.value());
}

Nvx::~Nvx()
{
    if (started_ && !finished_)
        shutdownZygote();
    if (monitor_thread_.joinable())
        monitor_thread_.join();
    if (zygote_pid_ > 0) {
        int status = 0;
        ::waitpid(zygote_pid_, &status, 0);
    }
}

ControlBlock *
Nvx::controlBlock() const
{
    return layout_.controlBlock(&region_);
}

Status
Nvx::start(std::vector<VariantFn> variants)
{
    return start(std::move(variants), {});
}

Status
Nvx::start(std::vector<VariantFn> variants,
           const std::function<void(Nvx &)> &pre_spawn)
{
    VARAN_CHECK(!started_);
    VARAN_CHECK(!variants.empty() && variants.size() <= kMaxVariants);
    VARAN_CHECK(options_.leader_index < variants.size());
    variants_ = std::move(variants);
    num_variants_ = static_cast<std::uint32_t>(variants_.size());
    results_.assign(num_variants_, VariantResult{});
    reaped_.assign(num_variants_, false);
    for (std::uint32_t v = 0; v < num_variants_; ++v)
        results_[v].variant = static_cast<int>(v);

    layout_ = EngineLayout::create(&region_, num_variants_,
                                   options_.external_leader
                                       ? kNoLeader
                                       : options_.leader_index,
                                   options_.ring_capacity);
    if (pre_spawn)
        pre_spawn(*this);

    // Multi-node shipping: taps must attach before any variant runs so
    // the remote stream starts at event one, and the link must be up
    // before the leader can outrun the credit window.
    if (!options_.remote_endpoint.empty()) {
        wire::Shipper::Options ship;
        ship.ship_batch = options_.remote_ship_batch;
        ship.credit_window = options_.remote_credit_window;
        shipper_ = std::make_unique<wire::Shipper>(&region_, &layout_, ship);
        Status taps = shipper_->attachTaps();
        if (!taps.isOk())
            return taps;
        auto sock = netio::connectAbstract(options_.remote_endpoint);
        if (!sock.ok())
            return Status(sock.error());
        Status shaken = shipper_->handshake(sock.value());
        if (!shaken.isOk())
            return shaken;
        shipper_->start();
    }

    auto channels = ChannelSet::create(num_variants_);
    if (!channels.ok())
        return Status(channels.error());
    channels_ = std::move(channels.value());

    // Fork the zygote (Figure 2 step B) while the address space still
    // holds everything a variant will need.
    pid_t pid = ::fork();
    if (pid < 0)
        return Status::fromErrno();
    if (pid == 0)
        zygoteMain(); // never returns
    zygote_pid_ = pid;

    // Ask the zygote to spawn each variant (steps C/D) and wait for
    // the acknowledgements so start() returning means "all running".
    int zfd = channels_.zygoteCoordinatorEnd();
    for (std::uint32_t v = 0; v < num_variants_; ++v) {
        CtrlMsg msg;
        msg.type = CtrlMsg::SpawnRequest;
        msg.variant = static_cast<std::int32_t>(v);
        Status sent = sendCtrl(zfd, msg);
        if (!sent.isOk())
            return sent;
    }
    // A variant may run to completion before we even collected all the
    // spawn acknowledgements; exit notifications that race ahead are
    // stashed for the monitor loop.
    std::uint32_t acked = 0;
    while (acked < num_variants_) {
        auto reply = recvCtrl(zfd);
        if (!reply.ok())
            return Status(reply.error());
        if (reply.value().type == CtrlMsg::SpawnReply) {
            controlBlock()
                ->variants[reply.value().variant]
                .pid.store(
                    static_cast<std::uint32_t>(reply.value().value),
                    std::memory_order_release);
            ++acked;
        } else {
            early_zygote_msgs_.push_back(reply.value());
        }
    }

    started_ = true;
    monitor_thread_ = std::thread([this] { monitorLoop(); });
    return Status::ok();
}

void
Nvx::zygoteMain()
{
    channels_.closeCoordinatorEnds();
    const int zfd = channels_.zygoteZygoteEnd();
    std::vector<pid_t> child_of(num_variants_, -1);
    std::uint32_t alive_children = 0;
    bool accepting = true;

    auto reap = [&]() {
        for (;;) {
            int status = 0;
            pid_t dead = ::waitpid(-1, &status, WNOHANG);
            if (dead <= 0)
                return;
            for (std::uint32_t v = 0; v < num_variants_; ++v) {
                if (child_of[v] == dead) {
                    child_of[v] = -1;
                    --alive_children;
                    CtrlMsg note;
                    note.type = CtrlMsg::VariantExited;
                    note.variant = static_cast<std::int32_t>(v);
                    note.value = status;
                    sendCtrl(zfd, note);
                    break;
                }
            }
        }
    };

    for (;;) {
        struct pollfd pfd = {zfd, POLLIN, 0};
        int n = ::poll(&pfd, 1, 50);
        reap();
        if (n <= 0) {
            if (!accepting && alive_children == 0)
                ::_exit(0);
            continue;
        }
        auto msg = recvCtrl(zfd);
        if (!msg.ok() || msg.value().type == CtrlMsg::Shutdown) {
            // Coordinator is gone or wants teardown: kill straggler
            // subtrees (group kill reaches fork-tuple children and app
            // workers the variant spawned).
            for (std::uint32_t v = 0; v < num_variants_; ++v) {
                if (child_of[v] > 0)
                    ::kill(-child_of[v], SIGKILL);
            }
            accepting = false;
            if (alive_children == 0)
                ::_exit(0);
            continue;
        }
        if (msg.value().type != CtrlMsg::SpawnRequest)
            continue;
        const auto v =
            static_cast<std::uint32_t>(msg.value().variant);

        pid_t pid = ::fork();
        if (pid == 0) {
            // ---- variant process (Figure 2 right-hand side) ----
            // Own process group: teardown kills the variant's whole
            // subtree (fork-tuple children, app worker processes).
            ::setpgid(0, 0);
            channels_.closeAllExceptVariant(v);
            channels_.relocateVariantEndsHigh(v);
            region_.closeBackingFd();

            Monitor::Config config;
            config.variant_id = v;
            config.wait = options_.wait;
            config.verify_divergence = options_.verify_divergence;
            config.rules_text = options_.rewrite_rules;
            config.progress_timeout_ns = options_.progress_timeout_ns;
            config.tick_ns = options_.tick_ns;
            config.coalesce_publish = options_.publish_coalesce;
            config.coalesce_max = options_.coalesce_max;
            config.coalesce_window_ns = options_.coalesce_window_ns;
            Monitor *monitor =
                Monitor::initVariant(&region_, layout_, &channels_,
                                     config);

            int status = variants_[v]();
            monitor->finishVariant(status);
            ::_exit(status & 0xff);
        }
        child_of[v] = pid;
        ::setpgid(pid, pid); // races benignly with the child's setpgid
        ++alive_children;
        CtrlMsg reply;
        reply.type = CtrlMsg::SpawnReply;
        reply.variant = msg.value().variant;
        reply.value = pid;
        sendCtrl(zfd, reply);
    }
}

void
Nvx::markVariantDead(std::uint32_t variant, bool crashed)
{
    ControlBlock *cb = controlBlock();
    std::uint32_t bit = 1u << variant;
    std::uint32_t live =
        cb->live_mask.fetch_and(~bit, std::memory_order_acq_rel);
    if (!(live & bit))
        return; // already dealt with

    // Unsubscribe the dead follower from every ring so it stops gating
    // the producer (section 5.1: "discards it without affecting other
    // followers").
    for (std::uint32_t t = 0; t < kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_.tupleRing(&region_, t);
        if (ring.consumerActive(static_cast<int>(variant)))
            ring.detachConsumer(static_cast<int>(variant));
    }

    // Election: when the leader dies, the lowest live id takes over.
    if (cb->leader_id.load(std::memory_order_acquire) == variant) {
        std::uint32_t remaining = live & ~bit;
        if (remaining != 0) {
            std::uint32_t new_leader = 0;
            while (!(remaining & (1u << new_leader)))
                ++new_leader;
            cb->epoch.fetch_add(1, std::memory_order_acq_rel);
            cb->leader_id.store(new_leader, std::memory_order_release);
            inform("leader %u %s; elected variant %u", variant,
                   crashed ? "crashed" : "exited", new_leader);
        }
    }
}

void
Nvx::monitorLoop()
{
    std::vector<struct pollfd> pfds;
    pfds.push_back({channels_.zygoteCoordinatorEnd(), POLLIN, 0});
    for (std::uint32_t v = 0; v < num_variants_; ++v)
        pfds.push_back(
            {channels_.controlCoordinatorEnd(v), POLLIN, 0});

    std::uint32_t reaped = 0;
    auto handleZygoteMsg = [&](const CtrlMsg &msg) {
        if (msg.type != CtrlMsg::VariantExited)
            return;
        const auto v = static_cast<std::uint32_t>(msg.variant);
        const int status = static_cast<int>(msg.value);
        ControlBlock *cb = controlBlock();
        bool crashed =
            WIFSIGNALED(status) ||
            cb->variants[v].state.load(std::memory_order_acquire) ==
                static_cast<std::uint32_t>(VariantState::Crashed);
        markVariantDead(v, crashed);
        if (!reaped_[v]) {
            reaped_[v] = true;
            ++reaped;
            results_[v].crashed = crashed;
            results_[v].status = WIFSIGNALED(status)
                                     ? 128 + WTERMSIG(status)
                                     : WEXITSTATUS(status);
        }
    };
    for (const CtrlMsg &msg : early_zygote_msgs_)
        handleZygoteMsg(msg);
    early_zygote_msgs_.clear();

    while (reaped < num_variants_) {
        for (auto &p : pfds)
            p.revents = 0;
        int n = ::poll(pfds.data(), pfds.size(), 100);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0)
            continue;

        // Zygote notifications: authoritative exit/reap info.
        if (pfds[0].revents & POLLIN) {
            auto msg = recvCtrl(pfds[0].fd);
            if (msg.ok())
                handleZygoteMsg(msg.value());
            else
                break; // zygote died; stop monitoring
        }
        // Variant control messages: fast crash signal for election.
        for (std::uint32_t v = 0; v < num_variants_; ++v) {
            if (!(pfds[1 + v].revents & POLLIN))
                continue;
            auto msg = recvCtrl(pfds[1 + v].fd);
            if (!msg.ok())
                continue;
            switch (msg.value().type) {
              case CtrlMsg::VariantCrashed:
                markVariantDead(v, true);
                break;
              case CtrlMsg::VariantExited:
                markVariantDead(v, false);
                break;
              default:
                break;
            }
        }
    }
}

std::vector<VariantResult>
Nvx::wait()
{
    VARAN_CHECK(started_);
    if (monitor_thread_.joinable())
        monitor_thread_.join();
    finished_ = true;
    shutdownZygote();
    if (shipper_)
        shipper_->finish(); // drain the ring tails, send Bye
    return results_;
}

std::vector<VariantResult>
Nvx::waitFor(std::uint64_t timeout_ns)
{
    VARAN_CHECK(started_);
    const std::uint64_t deadline = monotonicNs() + timeout_ns;
    while (monotonicNs() < deadline) {
        bool all = true;
        for (std::uint32_t v = 0; v < num_variants_; ++v)
            all = all && reaped_[v];
        if (all)
            return wait();
        sleepNs(5000000);
    }
    warn("engine wait timed out; killing surviving variants");
    shutdownZygote();
    if (monitor_thread_.joinable())
        monitor_thread_.join();
    finished_ = true;
    if (shipper_)
        shipper_->finish();
    return results_;
}

std::vector<VariantResult>
Nvx::run(std::vector<VariantFn> variants)
{
    Status status = start(std::move(variants));
    if (!status.isOk())
        fatal("engine start failed: %s", status.error().message().c_str());
    return wait();
}

void
Nvx::shutdownZygote()
{
    if (zygote_pid_ <= 0)
        return;
    CtrlMsg msg;
    msg.type = CtrlMsg::Shutdown;
    sendCtrl(channels_.zygoteCoordinatorEnd(), msg);
}

int
Nvx::currentLeader() const
{
    return static_cast<int>(
        controlBlock()->leader_id.load(std::memory_order_acquire));
}

std::uint32_t
Nvx::epoch() const
{
    return controlBlock()->epoch.load(std::memory_order_acquire);
}

std::uint64_t
Nvx::eventsStreamed() const
{
    return controlBlock()->events_streamed.load(std::memory_order_relaxed);
}

std::uint64_t
Nvx::divergencesResolved() const
{
    return controlBlock()->divergences_resolved.load(
        std::memory_order_relaxed);
}

std::uint64_t
Nvx::divergencesFatal() const
{
    return controlBlock()->divergences_fatal.load(
        std::memory_order_relaxed);
}

std::uint64_t
Nvx::fdTransfers() const
{
    return controlBlock()->fd_transfers.load(std::memory_order_relaxed);
}

std::uint64_t
Nvx::publishBatches() const
{
    return controlBlock()->publish_batches.load(std::memory_order_relaxed);
}

std::uint64_t
Nvx::eventsCoalesced() const
{
    return controlBlock()->events_coalesced.load(std::memory_order_relaxed);
}

std::uint64_t
Nvx::poolSpills() const
{
    return layout_.pool(&region_).spills();
}

shmem::PoolStats
Nvx::poolStats() const
{
    return layout_.pool(&region_).stats();
}

std::uint64_t
Nvx::ringLagOf(std::uint32_t variant) const
{
    std::uint64_t max_lag = 0;
    ControlBlock *cb = controlBlock();
    std::uint32_t tuples = cb->num_tuples.load(std::memory_order_acquire);
    for (std::uint32_t t = 0; t < tuples && t < kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_.tupleRing(&region_, t);
        if (!ring.consumerActive(static_cast<int>(variant)))
            continue;
        std::uint64_t lag = ring.lag(static_cast<int>(variant));
        if (lag > max_lag)
            max_lag = lag;
    }
    return max_lag;
}

} // namespace varan::core
