#include "core/monitor.h"

#include <atomic>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <new>
#include <unistd.h>

#include "common/clock.h"
#include "common/fdpass.h"
#include "common/logging.h"
#include "syscalls/raw.h"

namespace varan::core {

static_assert(kSyscallStatsSlots ==
                  static_cast<std::uint32_t>(sys::kMaxSyscallNr),
              "shared syscall-mix histogram covers the whole table");

namespace {

Monitor *g_monitor = nullptr;
int g_crash_control_fd = -1;
std::uint32_t g_crash_variant_id = 0;
ControlBlock *g_crash_control_block = nullptr;

thread_local int t_tuple = 0; // main thread produces/consumes tuple 0

// Set in the child side of an intercepted fork: such a process owns
// only its own tuple and must not tear down variant-wide state on exit.
bool g_fork_child = false;

/** Publisher variant id travels in the event flags' top nibble. */
constexpr std::uint32_t kPublisherShift = 24;

std::uint32_t
publisherOf(const ring::Event &event)
{
    return (event.flags >> kPublisherShift) & 0xf;
}

/** FNV-1a, used to cross-check IN-buffer contents across variants. */
std::uint32_t
fnv1a(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t h = 2166136261u;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 16777619u;
    }
    return h;
}

/** write-family calls whose buffer contents we can cross-check. */
bool
hashableInBuffer(long nr, const std::uint64_t args[6], std::uint32_t *len)
{
    switch (nr) {
      case SYS_write:
      case SYS_pwrite64:
      case SYS_sendto:
        if (args[1] == 0)
            return false;
        *len = static_cast<std::uint32_t>(args[2]);
        return true;
      default:
        return false;
    }
}

constexpr std::uint32_t kChunkAbsent = 0xffffffffu;

/** Leader-side length of one OUT chunk; kChunkAbsent when not filled. */
std::uint32_t
outChunkLen(const sys::OutBufferSpec &spec, const std::uint64_t args[6],
            long result)
{
    if (spec.arg < 0 || args[spec.arg] == 0)
        return kChunkAbsent;
    switch (spec.len_from) {
      case sys::LenFrom::Result:
        return result >= 0 ? static_cast<std::uint32_t>(result)
                           : kChunkAbsent;
      case sys::LenFrom::ResultTimesSize:
        return result >= 0
                   ? static_cast<std::uint32_t>(result) * spec.fixed
                   : kChunkAbsent;
      case sys::LenFrom::Arg:
        return static_cast<std::uint32_t>(args[spec.len_arg]) * spec.fixed;
      case sys::LenFrom::Fixed:
        return spec.fixed;
      case sys::LenFrom::DerefArg: {
        if (args[spec.len_arg] == 0 || result < 0)
            return kChunkAbsent;
        std::uint32_t n;
        std::memcpy(&n, reinterpret_cast<const void *>(args[spec.len_arg]),
                    sizeof(n));
        return n;
      }
      case sys::LenFrom::None:
      default:
        return kChunkAbsent;
    }
}

void
crashHandler(int sig, siginfo_t *, void *)
{
    // Async-signal-safe: mark shared state, one write(), re-raise.
    if (g_crash_control_block) {
        VariantSlot &slot =
            g_crash_control_block->variants[g_crash_variant_id];
        slot.state.store(static_cast<std::uint32_t>(VariantState::Crashed),
                         std::memory_order_release);
        slot.exit_status.store(128 + sig, std::memory_order_release);
    }
    if (g_crash_control_fd >= 0) {
        CtrlMsg msg;
        msg.type = CtrlMsg::VariantCrashed;
        msg.variant = static_cast<std::int32_t>(g_crash_variant_id);
        msg.value = sig;
        [[maybe_unused]] ssize_t rc =
            ::send(g_crash_control_fd, &msg, sizeof(msg), MSG_NOSIGNAL);
    }
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

/** Winning divergence verdicts before a rewrite rule is logged as hot. */
constexpr std::uint64_t kHotRuleThreshold = 1000;

} // namespace

Monitor::Monitor(const shmem::Region *region, EngineLayout layout,
                 ChannelSet *channels, Config config)
    : region_(region), layout_(layout),
      cb_(layout.controlBlock(region)), channels_(channels),
      config_(config),
      role_(cb_->leader_id.load(std::memory_order_acquire) ==
                    config.variant_id
                ? Role::Leader
                : Role::Follower),
      pool_(layout.pool(region)),
      clock_(layout.variantClock(region, config.variant_id))
{
    for (std::uint32_t t = 0; t < kMaxTuples; ++t) {
        rings_[t] = layout.tupleRing(region, t);
        shadows_[t] = layout.tupleShadow(region, t);
        tuple_refs_[t] = TupleRef{this, t};
        // Hard cap at the coalescer's storage ceiling; the run length
        // actually in force is the live CoalesceRun knob, re-read on
        // every add() so retuning needs no reset.
        coalescers_[t].reset(&rings_[t], ring::PublishCoalescer::kMaxPending,
                             &Monitor::recycleSlots, &tuple_refs_[t]);
        coalescers_[t].bindLiveLimit(
            &cb_->tuning.values[static_cast<std::uint32_t>(
                Knob::CoalesceRun)]);
    }
    // First-seeder-wins: a no-op under the coordinator (which seeds all
    // knobs from EngineConfig before forking variants), effective when
    // a Monitor is stood up directly over a raw layout.
    seedKnob(cb_->tuning, Knob::CoalesceRun, config_.coalesce_max);
    seedKnob(cb_->tuning, Knob::CoalesceWindowNs,
             config_.coalesce_window_ns);
    for (const std::string &text : config_.rules_text) {
        if (!rules_.addRule(text).isOk())
            fatal("invalid rewrite rule: %s", rules_.lastError().c_str());
    }
    // Hot-rule detection: a rule resolving divergences at this volume
    // is a standing pattern, not an incident — surface it once so the
    // operator knows interpretation cost is recurring on this variant.
    const std::uint32_t variant_id = config_.variant_id;
    rules_.onHotRule(
        kHotRuleThreshold,
        [variant_id](std::size_t index, const bpf::RuleHeat &heat) {
            inform("variant %u: rewrite rule #%zu is hot (%llu of %llu "
                   "evaluations resolved a divergence)",
                   variant_id, index,
                   static_cast<unsigned long long>(heat.decisions),
                   static_cast<unsigned long long>(heat.evaluations));
        });
    clock_resync_pending_ = config_.resync_clock;
    tick_wait_ = config_.wait;
    tick_wait_.timeout_ns = config_.tick_ns;
}

Monitor *
Monitor::initVariant(const shmem::Region *region, EngineLayout layout,
                     ChannelSet *channels, Config config)
{
    VARAN_CHECK(g_monitor == nullptr);
    g_monitor = new Monitor(region, layout, channels, config);
    g_monitor->cb_->variants[config.variant_id].pid.store(
        static_cast<std::uint32_t>(::getpid()), std::memory_order_release);
    t_tuple = 0;
    g_monitor->installCrashHandlers();
    if (config.coalesce_publish)
        g_monitor->flusher_thread_ =
            std::thread([m = g_monitor] { m->flusherLoop(); });
    sys::setDispatcher(g_monitor);
    return g_monitor;
}

Monitor *
Monitor::instance()
{
    return g_monitor;
}

void
Monitor::installCrashHandlers()
{
    g_crash_control_fd =
        channels_->controlVariantEnd(config_.variant_id);
    g_crash_variant_id = config_.variant_id;
    g_crash_control_block = cb_;
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = crashHandler;
    action.sa_flags = SA_SIGINFO;
    ::sigemptyset(&action.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
        ::sigaction(sig, &action, nullptr);
}

void
Monitor::notifyCoordinator(CtrlMsg::Type type, std::int64_t value)
{
    CtrlMsg msg;
    msg.type = type;
    msg.variant = static_cast<std::int32_t>(config_.variant_id);
    msg.value = value;
    sendCtrl(channels_->controlVariantEnd(config_.variant_id), msg);
}

int
Monitor::currentTuple()
{
    return t_tuple;
}

void
Monitor::bindThreadToTuple(int tuple)
{
    t_tuple = tuple;
    if (g_monitor) {
        g_monitor->owned_tuples_.fetch_or(1u << tuple,
                                          std::memory_order_acq_rel);
    }
}

int
Monitor::openTuple()
{
    const int tuple = currentTuple();
    const int slot = static_cast<int>(config_.variant_id);
    const bool backlog = rings_[tuple].consumerActive(slot) &&
                         rings_[tuple].lag(slot) > 0;
    if (isLeader() && !backlog) {
        if (rings_[tuple].consumerActive(slot))
            rings_[tuple].detachConsumer(slot);
        std::uint32_t t =
            cb_->num_tuples.fetch_add(1, std::memory_order_acq_rel);
        VARAN_CHECK(t < kMaxTuples);
        cb_->tuples[t].active.store(1, std::memory_order_release);
        ring::Event event = {};
        event.type = ring::EventType::Fork;
        event.nr = 0;
        event.args[0] = t;
        event.result = 0;
        publishEvent(tuple, event, 0);
        return static_cast<int>(t);
    }
    // Follower: the tuple id arrives as a Fork event in the stream.
    const std::uint64_t dummy_args[6] = {};
    long t = dispatchFollower(tuple, /*nr=*/-1, dummy_args,
                              sys::syscallInfo(-1));
    return static_cast<int>(t);
}

long
Monitor::dispatch(long nr, const std::uint64_t args[6])
{
    const sys::SyscallInfo &info = sys::syscallInfo(nr);
    cb_->variants[config_.variant_id].syscalls.fetch_add(
        1, std::memory_order_relaxed);

    // Hottest payload-free calls skip the classification branching
    // below entirely (adaptive top-k fast path; off until the
    // FastpathTopK knob goes non-zero).
    long fast_result = 0;
    if (tryFastPath(nr, args, &fast_result))
        return fast_result;

    switch (info.cls) {
      case sys::SyscallClass::Local:
        // A pending coalesced run must not be held across a local call
        // that can block (futex, wait4): followers would starve.
        coalesceBarrier(currentTuple(), info);
        return sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                               args[4], args[5]);
      case sys::SyscallClass::Unhandled:
        // Footnote 8: surface unhandled calls loudly, then fall through
        // to local execution so development can continue.
        warn("unhandled syscall %ld executed locally", nr);
        coalesceBarrier(currentTuple(), info);
        return sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                               args[4], args[5]);
      case sys::SyscallClass::Fork:
        return handleFork(currentTuple(), nr, args);
      case sys::SyscallClass::Exit:
        return handleExit(currentTuple(), nr, args);
      default:
        break;
    }

    const int tuple = currentTuple();
    // A promoted leader keeps replaying a tuple until its backlog of
    // buffered events is drained; only then does it start recording.
    const int slot = static_cast<int>(config_.variant_id);
    const bool backlog = rings_[tuple].consumerActive(slot) &&
                         rings_[tuple].lag(slot) > 0;
    if (isLeader() && !backlog) {
        // Before producing, release this variant's own cursor (it was
        // pre-attached when someone else led) — otherwise the new
        // leader would gate on, and eventually consume, its own events.
        if (rings_[tuple].consumerActive(slot))
            rings_[tuple].detachConsumer(slot);
        return dispatchLeader(tuple, nr, args, info);
    }
    return dispatchFollower(tuple, nr, args, info);
}

shmem::Offset
Monitor::buildPayload(int tuple, const sys::SyscallInfo &info,
                      [[maybe_unused]] long nr,
                      const std::uint64_t args[6], long result,
                      std::uint32_t *size_out, bool *spilled)
{
    // Wire format: [out0: u32 len + bytes][out1: ...][fd numbers i32x2].
    std::uint32_t lens[2] = {kChunkAbsent, kChunkAbsent};
    std::size_t total = 0;
    for (int i = 0; i < 2; ++i) {
        if (info.out[i].arg < 0)
            continue;
        lens[i] = outChunkLen(info.out[i], args, result);
        total += sizeof(std::uint32_t);
        if (lens[i] != kChunkAbsent)
            total += lens[i];
    }
    const bool fd_array = info.fd_array_arg >= 0 && result >= 0;
    if (fd_array)
        total += 2 * sizeof(std::int32_t);
    if (total == 0) {
        *size_out = 0;
        return 0;
    }

    // The tuple's own arena serves first; exhaustion spills to the
    // global-fallback arena without touching any other tuple's arena.
    shmem::Offset payload = pool_.allocate(
        static_cast<std::uint32_t>(tuple), total, 1, spilled);
    if (payload == 0) {
        // Even the fallback is exhausted: fail loudly rather than
        // corrupt.
        panic("payload pool exhausted (%zu bytes requested)", total);
    }
    auto *p = static_cast<std::uint8_t *>(pool_.pointer(payload, total));
    for (int i = 0; i < 2; ++i) {
        if (info.out[i].arg < 0)
            continue;
        std::memcpy(p, &lens[i], sizeof(std::uint32_t));
        p += sizeof(std::uint32_t);
        if (lens[i] != kChunkAbsent && lens[i] > 0) {
            std::memcpy(p,
                        reinterpret_cast<const void *>(
                            args[info.out[i].arg]),
                        lens[i]);
            p += lens[i];
        }
    }
    if (fd_array) {
        const auto *fds = reinterpret_cast<const std::int32_t *>(
            args[info.fd_array_arg]);
        std::memcpy(p, fds, 2 * sizeof(std::int32_t));
        p += 2 * sizeof(std::int32_t);
    }
    *size_out = static_cast<std::uint32_t>(total);
    return payload;
}

void
Monitor::recycleSlots(void *ctx, std::uint64_t first_seq, std::size_t count)
{
    auto *ref = static_cast<TupleRef *>(ctx);
    Monitor *m = ref->monitor;
    std::uint64_t *shadow = m->shadows_[ref->tuple];
    const std::uint64_t mask = m->cb_->ring_capacity - 1;
    // claim() has proven every consumer is past these slots, so their
    // old payloads are unreferenced. Coalesced events are payload-free:
    // the slots' shadows become empty.
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t idx = (first_seq + i) & mask;
        if (shadow[idx] != 0) {
            m->pool_.release(shadow[idx]);
            shadow[idx] = 0;
        }
    }
}

void
Monitor::flushCoalesced(int tuple)
{
    ring::PublishCoalescer &co = coalescers_[tuple];
    const std::size_t n = co.pending();
    if (n == 0)
        return;
    ring::WaitSpec publish_wait = config_.wait;
    publish_wait.timeout_ns = kPublishStallNs;
    if (!co.flush(publish_wait))
        panic("coalesced publish stalled: follower wedged?");
    cb_->events_streamed.fetch_add(n, std::memory_order_relaxed);
    cb_->publish_batches.fetch_add(1, std::memory_order_relaxed);
    cb_->events_coalesced.fetch_add(n, std::memory_order_relaxed);
    if (trace::enabled(cb_->trace)) {
        // Batch-granular: one clock read and one histogram sample per
        // flushed run, never per event.
        const std::uint64_t now = monotonicNs();
        const std::uint64_t first = coalesce_first_ns_[tuple];
        if (first != 0 && now > first)
            trace::histogramRecord(cb_->trace.coalesce_dwell, now - first);
        trace::stamp(cb_->trace, trace::Stage::CoalesceFlush,
                     static_cast<std::uint8_t>(config_.variant_id),
                     static_cast<std::uint8_t>(tuple), 0, now,
                     static_cast<std::uint64_t>(n));
    }
    coalesce_first_ns_[tuple] = 0;
}

std::uint64_t
Monitor::liveCoalesceWindowNs() const
{
    return liveKnob(cb_->tuning, Knob::CoalesceWindowNs);
}

void
Monitor::coalesceBarrier(int tuple, const sys::SyscallInfo &info)
{
    if (coalescers_[tuple].pending() == 0)
        return;
    if (info.may_block ||
        rings_[tuple].consumersWaiting() > 0 ||
        monotonicNs() -
                coalesce_last_ns_[tuple].load(std::memory_order_acquire) >=
            liveCoalesceWindowNs()) {
        std::lock_guard<std::mutex> guard(coalesce_mutex_[tuple]);
        flushCoalesced(tuple);
    }
}

void
Monitor::recordSyscallMix(long nr)
{
    if (nr >= 0 && nr < static_cast<long>(kSyscallStatsSlots)) {
        cb_->tuning.sys_hist[nr].fetch_add(1, std::memory_order_relaxed);
    }
}

void
Monitor::coalesceAdd(int tuple, ring::Event &event)
{
    std::lock_guard<std::mutex> guard(coalesce_mutex_[tuple]);
    event.timestamp = clock_.tick();
    event.flags |= config_.variant_id << kPublisherShift;
    // Flush through flushCoalesced (not add's internal overflow path)
    // so the stream statistics see every shipped run. effectiveMax()
    // is the live CoalesceRun knob: a retune applies to the very next
    // event.
    if (coalescers_[tuple].pending() >= coalescers_[tuple].effectiveMax())
        flushCoalesced(tuple);
    ring::WaitSpec publish_wait = config_.wait;
    publish_wait.timeout_ns = kPublishStallNs;
    if (!coalescers_[tuple].add(event, publish_wait))
        panic("coalesced publish stalled: follower wedged?");
    const std::uint64_t now = monotonicNs();
    coalesce_last_ns_[tuple].store(now, std::memory_order_release);
    // Reuse the staleness timestamp for the trace layer: the dwell
    // baseline (run's first add) and the sampled publish→dispatch lag
    // mark cost no extra clock reads here.
    if (coalescers_[tuple].pending() == 1)
        coalesce_first_ns_[tuple] = now;
    if (trace::enabled(cb_->trace) && trace::sampled(event.timestamp))
        trace::lagMark(cb_->trace, event.timestamp, now);
    // A follower already asleep in the waitlock wants this event now;
    // holding the run back would trade its latency for nothing.
    if (rings_[tuple].consumersWaiting() > 0)
        flushCoalesced(tuple);
}

bool
Monitor::tryFastPath(long nr, const std::uint64_t args[6], long *result_out)
{
    const auto top_k = static_cast<std::uint32_t>(
        liveKnob(cb_->tuning, Knob::FastpathTopK));
    if (top_k == 0 || !isLeader())
        return false;
    if (nr < 0 || nr >= sys::kMaxSyscallNr)
        return false;
    // Membership scan of the shared hot table (slots hold nr + 1).
    const std::uint32_t tag = static_cast<std::uint32_t>(nr) + 1;
    bool hot = false;
    for (std::uint32_t i = 0; i < top_k && i < kFastPathSlots; ++i) {
        if (cb_->tuning.fastpath_nrs[i].load(std::memory_order_relaxed) ==
            tag) {
            hot = true;
            break;
        }
    }
    if (!hot)
        return false;
    std::int8_t ok = fastpath_ok_[nr];
    if (ok == 0) {
        ok = sys::fastpathEligible(nr) ? 1 : -1;
        fastpath_ok_[nr] = ok;
    }
    if (ok < 0)
        return false;

    const int tuple = currentTuple();
    const int slot = static_cast<int>(config_.variant_id);
    // A promoted leader still draining its backlog replays, it does
    // not record — same gate as the slow path.
    if (rings_[tuple].consumerActive(slot)) {
        if (rings_[tuple].lag(slot) > 0)
            return false;
        rings_[tuple].detachConsumer(slot);
    }

    recordSyscallMix(nr);
    long result = sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                                  args[4], args[5]);
    if (result == sys::kErestartsys) {
        result = sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                                 args[4], args[5]);
    }

    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.nr = static_cast<std::uint16_t>(nr);
    event.result = result;
    for (unsigned i = 0; i < ring::kInlineArgs; ++i)
        event.args[i] = args[i];

    cb_->tuning.fastpath_hits.fetch_add(1, std::memory_order_relaxed);
    // Eligible calls are payload-free by construction, so the
    // coalesced run is the natural sink when it is enabled (single
    // live tuple only, as on the slow path).
    if (config_.coalesce_publish &&
        cb_->num_tuples.load(std::memory_order_acquire) == 1) {
        coalesceAdd(tuple, event);
    } else {
        publishEvent(tuple, event, 0);
    }
    *result_out = result;
    return true;
}

void
Monitor::flusherLoop()
{
    while (!flusher_stop_.load(std::memory_order_acquire)) {
        // Tick at half the staleness window so a stale run waits at
        // most ~1.5 windows even when the leader never dispatches
        // again. Floor at 1 ms: this thread is a last-resort backstop
        // (the dispatch barriers cover every active path), so
        // sub-millisecond wakeups in every variant would be pure
        // overhead. Cap at 10 ms so shutdown (which joins this thread)
        // stays prompt under huge windows. Recomputed every tick from
        // the live knob: retuning the window also retunes the backstop.
        const std::uint64_t window = liveCoalesceWindowNs();
        std::uint64_t tick = window / 2;
        if (tick < 1000000)
            tick = 1000000;
        if (tick > 10000000)
            tick = 10000000;
        sleepNs(tick);
        if (!isLeader())
            continue;
        const std::uint64_t now = monotonicNs();
        for (std::uint32_t t = 0; t < kMaxTuples; ++t) {
            if (coalescers_[t].pending() == 0)
                continue;
            if (now - coalesce_last_ns_[t].load(std::memory_order_acquire) <
                window) {
                continue;
            }
            std::lock_guard<std::mutex> guard(coalesce_mutex_[t]);
            // Re-check under the lock: the owner may have flushed (or
            // grown) the run while we were deciding.
            if (coalescers_[t].pending() == 0)
                continue;
            if (monotonicNs() -
                    coalesce_last_ns_[t].load(std::memory_order_acquire) <
                window) {
                continue;
            }
            flushCoalesced(static_cast<int>(t));
        }
    }
}

void
Monitor::publishEvent(int tuple, ring::Event &event, shmem::Offset payload)
{
    // The time-based flusher may be mid-claim on this ring; producer
    // access is serialized while coalescing is enabled.
    std::unique_lock<std::mutex> guard;
    if (config_.coalesce_publish)
        guard = std::unique_lock<std::mutex>(coalesce_mutex_[tuple]);

    // Stream order: anything coalesced earlier must go out first.
    flushCoalesced(tuple);

    event.timestamp = clock_.tick();
    event.flags |= config_.variant_id << kPublisherShift;

    ring::RingBuffer &ring = rings_[tuple];
    ring::WaitSpec publish_wait = config_.wait;
    publish_wait.timeout_ns = kPublishStallNs;
    std::uint64_t seq = 0;
    if (!ring.claim(1, &seq, publish_wait))
        panic("ring publish stalled: follower wedged?");

    // Free the payload that previously lived in this ring slot — only
    // now, with the slot claimed, has the gating protocol proven every
    // consumer is done with it.
    std::uint64_t *shadow = shadows_[tuple];
    std::uint64_t slot_index = seq & (cb_->ring_capacity - 1);
    if (shadow[slot_index] != 0)
        pool_.release(shadow[slot_index]);
    shadow[slot_index] = payload;

    ring.commit({&event, 1});
    cb_->events_streamed.fetch_add(1, std::memory_order_relaxed);

    if (trace::enabled(cb_->trace)) {
        // Failover blackout: a pending leader-death mark means this is
        // the first event the promoted leader pushed into the stream —
        // the moment followers stop starving.
        std::uint64_t death =
            cb_->trace.leader_death_ns.load(std::memory_order_relaxed);
        if (death != 0 &&
            cb_->trace.leader_death_ns.compare_exchange_strong(
                death, 0, std::memory_order_acq_rel)) {
            const std::uint64_t now = monotonicNs();
            if (now > death)
                trace::histogramRecord(cb_->trace.blackout, now - death);
            trace::stamp(cb_->trace, trace::Stage::Promotion,
                         static_cast<std::uint8_t>(config_.variant_id),
                         static_cast<std::uint8_t>(tuple),
                         cb_->epoch.load(std::memory_order_relaxed), now,
                         now - death);
        }
        if (trace::sampled(event.timestamp)) {
            const std::uint64_t now = monotonicNs();
            trace::lagMark(cb_->trace, event.timestamp, now);
            trace::stamp(cb_->trace, trace::Stage::LeaderPublish,
                         static_cast<std::uint8_t>(config_.variant_id),
                         static_cast<std::uint8_t>(tuple), event.nr, now,
                         event.timestamp, seq);
        }
    }
}

long
Monitor::dispatchLeader(int tuple, long nr, const std::uint64_t args[6],
                        const sys::SyscallInfo &info)
{
    // A pending coalesced run must not sit behind a call that can wait
    // indefinitely, and a stale run (leader went quiet) ships now.
    coalesceBarrier(tuple, info);
    recordSyscallMix(nr);

    long result = sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                                  args[4], args[5]);
    if (result == sys::kErestartsys) {
        // Restart support (section 3.2): retry the interrupted call.
        result = sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                                 args[4], args[5]);
    }

    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.nr = static_cast<std::uint16_t>(nr);
    event.result = result;
    for (unsigned i = 0; i < ring::kInlineArgs; ++i)
        event.args[i] = args[i];

    std::uint32_t payload_size = 0;
    bool spilled = false;
    shmem::Offset payload = buildPayload(tuple, info, nr, args, result,
                                         &payload_size, &spilled);
    if (payload != 0) {
        event.flags |= ring::kHasPayload;
        if (spilled)
            event.flags |= ring::kPayloadGlobalArena;
        event.payload = static_cast<std::uint32_t>(payload);
        event.payload_size = payload_size;
    } else if (config_.verify_divergence) {
        std::uint32_t hash_len = 0;
        if (hashableInBuffer(nr, args, &hash_len)) {
            event.flags |= ring::kDataHash;
            event.payload = fnv1a(
                reinterpret_cast<const void *>(args[1]), hash_len);
            event.payload_size = hash_len;
        }
    }

    // The coalescing fast path: a payload-free syscall event with no
    // descriptor in flight joins the tuple's pending run instead of
    // paying a head store + futex wake of its own. Disabled while more
    // than one tuple is live — a buffered timestamp would stall sibling
    // tuples' followers in the cross-tuple clock order (Figure 3).
    if (config_.coalesce_publish && payload == 0 &&
        info.cls != sys::SyscallClass::FdCreating &&
        cb_->num_tuples.load(std::memory_order_acquire) == 1) {
        coalesceAdd(tuple, event);
        return result;
    }

    // Descriptor transfer happens before publication so a follower that
    // sees the event will always find the descriptor in its channel.
    // The tag's upper half names the publishing tuple: all tuples share
    // one channel per variant pair, and the follower-side demux routes
    // each descriptor to the thread replaying that tuple.
    if (info.cls == sys::SyscallClass::FdCreating && result >= 0) {
        event.flags |= ring::kFdTransfer;
        const std::uint64_t tuple_tag = static_cast<std::uint64_t>(tuple)
                                        << 32;
        std::uint32_t live = cb_->live_mask.load(std::memory_order_acquire);
        for (std::uint32_t v = 0; v < cb_->num_variants; ++v) {
            if (v == config_.variant_id || !(live & (1u << v)))
                continue;
            int channel = channels_->data(config_.variant_id, v);
            if (info.fd_array_arg >= 0) {
                const auto *fds = reinterpret_cast<const std::int32_t *>(
                    args[info.fd_array_arg]);
                sendFd(channel, fds[0],
                       tuple_tag | static_cast<std::uint32_t>(fds[0]));
                sendFd(channel, fds[1],
                       tuple_tag | static_cast<std::uint32_t>(fds[1]));
            } else {
                sendFd(channel, static_cast<int>(result),
                       tuple_tag | static_cast<std::uint32_t>(result));
            }
            cb_->fd_transfers.fetch_add(1, std::memory_order_relaxed);
        }
    }

    publishEvent(tuple, event, payload);
    return result;
}

void
Monitor::applyPayload(const ring::Event &event,
                      const sys::SyscallInfo &info,
                      const std::uint64_t args[6])
{
    if (!event.hasPayload())
        return;
    const auto *p = static_cast<const std::uint8_t *>(
        pool_.pointer(event.payload, event.payload_size));
    for (int i = 0; i < 2; ++i) {
        if (info.out[i].arg < 0)
            continue;
        std::uint32_t len;
        std::memcpy(&len, p, sizeof(len));
        p += sizeof(len);
        if (len == kChunkAbsent)
            continue;
        void *dst = reinterpret_cast<void *>(args[info.out[i].arg]);
        if (dst && len > 0)
            std::memcpy(dst, p, len);
        if (info.out[i].len_from == sys::LenFrom::DerefArg &&
            args[info.out[i].len_arg] != 0) {
            std::memcpy(reinterpret_cast<void *>(args[info.out[i].len_arg]),
                        &len, sizeof(len));
        }
        p += len;
    }
}

namespace {

/**
 * First descriptor number used to park in-flight transfers. recvmsg
 * assigns temporaries the lowest free number — squarely inside the
 * application range a concurrent mirror() may dup2 over, which would
 * silently destroy the in-flight descriptor. Parking moves every
 * received descriptor above the application range (and below the
 * engine channels at 960+) for the window between receipt and
 * mirroring.
 */
constexpr int kFdParkBase = 800;

Fd
parkFd(Fd low)
{
    long parked = sys::rawSyscall(SYS_fcntl, low.get(), F_DUPFD,
                                  kFdParkBase);
    if (parked < 0)
        return low; // table exhausted: keep the low number, best effort
    return Fd(static_cast<int>(parked)); // `low` closes on return
}

} // namespace

void
Monitor::resetProcessStateAfterFork(int child_tuple)
{
    // The child owns exactly its own tuple. Inherited inbox state is
    // the parent's: parked descriptors belong to the parent's tuples,
    // and a mutex may have been captured locked if another thread was
    // mid-queue-operation at fork time. Reconstruct in place — the
    // deliberate leak of the old deques' memory is one-shot and tiny,
    // and beats undefined behaviour from destroying a locked mutex.
    for (std::uint32_t v = 0; v < kMaxVariants; ++v)
        new (&fd_inboxes_[v]) FdInbox();
    owned_tuples_.store(1u << child_tuple, std::memory_order_release);

    // Same treatment for the coalescing locks, and the flusher thread
    // handle: the pthread was not duplicated by fork, so the inherited
    // handle is joinable-but-dead — finishVariant() joining it would
    // block forever. The child runs without a time-based flusher (its
    // dispatch barriers still flush; fork-tuple children are processes,
    // not syscall-dense coalescing leaders).
    for (std::uint32_t t = 0; t < kMaxTuples; ++t)
        new (&coalesce_mutex_[t]) std::mutex();
    new (&flusher_thread_) std::thread();
}

Result<Fd>
Monitor::recvFdFor(std::uint32_t publisher, std::uint32_t tuple)
{
    VARAN_CHECK(tuple < kMaxTuples);
    FdInbox &inbox = fd_inboxes_[publisher];
    // One drainer at a time: the lock is held across the blocking recv
    // so a waiting thread always finds its descriptor either parked by
    // the previous drainer or next on the channel — concurrent recvs
    // could strand a thread in recvmsg while its message sits parked.
    // Fork safety comes from resetFdRoutingAfterFork(), which discards
    // any inherited (possibly locked) inbox in the child.
    std::lock_guard<std::mutex> guard(inbox.mutex);
    std::deque<Fd> &mine = inbox.pending[tuple];
    if (!mine.empty()) {
        Fd fd = std::move(mine.front());
        mine.pop_front();
        return fd;
    }
    int channel = channels_->data(config_.variant_id, publisher);
    for (;;) {
        auto got = recvFd(channel);
        if (!got.ok())
            return Result<Fd>(got.error());
        const auto from = static_cast<std::uint32_t>(got.value().tag >> 32);
        if (from == tuple)
            return parkFd(std::move(got.value().fd));
        const std::uint32_t owned =
            owned_tuples_.load(std::memory_order_acquire);
        if (from < kMaxTuples && (owned & (1u << from))) {
            // A sibling thread of this process will come for it.
            inbox.pending[from].push_back(parkFd(std::move(got.value().fd)));
            continue;
        }
        // The message belongs to a tuple replayed by another process on
        // this shared channel (plain-fork process tuples): holding it
        // would starve that process forever, so fall back to carrier
        // semantics — mirroring uses the event's descriptor number, any
        // received object serves as the carrier, and the sibling
        // process symmetrically uses whatever message it draws.
        if (from >= kMaxTuples)
            warn("fd transfer with corrupt tuple tag %u", from);
        return parkFd(std::move(got.value().fd));
    }
}

void
Monitor::receiveFds(const ring::Event &event,
                    const sys::SyscallInfo &info,
                    const std::uint64_t args[6])
{
    if (!event.transfersFd() || event.result < 0)
        return;
    const std::uint32_t publisher = publisherOf(event);
    const auto tuple = static_cast<std::uint32_t>(currentTuple());

    auto mirror = [&](std::int32_t leader_number) {
        auto got = recvFdFor(publisher, tuple);
        if (!got.ok()) {
            warn("fd transfer from variant %u failed: %s", publisher,
                 got.error().message().c_str());
            return;
        }
        Fd received = std::move(got.value());
        if (received.get() != leader_number) {
            // Mirror the leader's numbering so later events (close,
            // epoll_ctl, ...) refer to the same descriptor here.
            sys::rawSyscall(SYS_dup2, received.get(), leader_number);
            // `received` closes the temporary on scope exit.
        } else {
            received.release(); // already at the right number
        }
    };

    if (info.fd_array_arg >= 0) {
        // The leader's two descriptor numbers are at the payload tail.
        VARAN_CHECK(event.hasPayload());
        const auto *tail = static_cast<const std::uint8_t *>(
                               pool_.pointer(event.payload,
                                             event.payload_size)) +
                           event.payload_size - 2 * sizeof(std::int32_t);
        std::int32_t fds[2];
        std::memcpy(fds, tail, sizeof(fds));
        mirror(fds[0]);
        mirror(fds[1]);
        auto *mine = reinterpret_cast<std::int32_t *>(
            args[info.fd_array_arg]);
        if (mine) {
            mine[0] = fds[0];
            mine[1] = fds[1];
        }
    } else {
        mirror(static_cast<std::int32_t>(event.result));
    }
}

void
Monitor::recordDivergence(const ring::Event &event, long nr,
                          const std::uint64_t args[6],
                          trace::DivergenceAction action)
{
    trace::DivergenceRecord rec = {};
    rec.lamport = event.timestamp;
    rec.arg_digest = fnv1a(args, 6 * sizeof(std::uint64_t));
    rec.ns = monotonicNs();
    rec.origin_id = 0; // local node; the wire relay overwrites this
    rec.epoch = cb_->epoch.load(std::memory_order_acquire);
    rec.expected_nr = event.nr;
    rec.observed_nr = static_cast<std::uint32_t>(nr);
    rec.expected_type = static_cast<std::uint16_t>(event.type);
    rec.observed_type =
        static_cast<std::uint16_t>(ring::EventType::Syscall);
    rec.variant = static_cast<std::uint8_t>(config_.variant_id);
    rec.tuple = static_cast<std::uint8_t>(currentTuple());
    rec.action = static_cast<std::uint8_t>(action);
    trace::ledgerAppend(cb_->trace, rec);
    if (trace::enabled(cb_->trace)) {
        trace::stamp(cb_->trace, trace::Stage::Divergence, rec.variant,
                     rec.tuple, rec.observed_nr, rec.ns, rec.lamport,
                     rec.expected_nr);
    }
}

Monitor::DivergenceOutcome
Monitor::resolveDivergence(const ring::Event &event, long nr,
                           const std::uint64_t args[6], long *result_out)
{
    bpf::FilterContext ctx;
    ctx.data.nr = static_cast<std::int32_t>(nr);
    for (int i = 0; i < 6; ++i)
        ctx.data.args[i] = args[i];
    ctx.event = &event;

    bpf::RuleDecision decision = rules_.evaluate(ctx);
    switch (decision.action) {
      case bpf::RuleAction::Allow:
        // The follower performs its additional system call itself
        // (section 5.2); the leader's event stays queued.
        *result_out = sys::rawSyscall(nr, args[0], args[1], args[2],
                                      args[3], args[4], args[5]);
        recordDivergence(event, nr, args,
                         trace::DivergenceAction::Resolved);
        cb_->divergences_resolved.fetch_add(1, std::memory_order_relaxed);
        return DivergenceOutcome::ExecutedLocally;
      case bpf::RuleAction::Skip:
        recordDivergence(event, nr, args,
                         trace::DivergenceAction::Resolved);
        cb_->divergences_resolved.fetch_add(1, std::memory_order_relaxed);
        return DivergenceOutcome::SkippedEvent;
      case bpf::RuleAction::Errno:
        *result_out = -decision.err;
        recordDivergence(event, nr, args,
                         trace::DivergenceAction::Resolved);
        cb_->divergences_resolved.fetch_add(1, std::memory_order_relaxed);
        return DivergenceOutcome::SyntheticErrno;
      case bpf::RuleAction::Kill:
      default:
        recordDivergence(event, nr, args, trace::DivergenceAction::Fatal);
        fatalDivergence(event, nr);
    }
}

void
Monitor::fatalDivergence(const ring::Event &event, long nr)
{
    cb_->divergences_fatal.fetch_add(1, std::memory_order_relaxed);
    warn("fatal divergence: follower %u wants syscall %ld, leader "
         "streamed %u (type %u)",
         config_.variant_id, nr, event.nr,
         static_cast<unsigned>(event.type));
    VariantSlot &slot = cb_->variants[config_.variant_id];
    slot.state.store(static_cast<std::uint32_t>(VariantState::Crashed),
                     std::memory_order_release);
    slot.exit_status.store(kDivergenceExitStatus,
                           std::memory_order_release);
    notifyCoordinator(CtrlMsg::VariantCrashed, kDivergenceExitStatus);
    ::_exit(kDivergenceExitStatus);
}

bool
Monitor::maybePromote()
{
    std::lock_guard<std::mutex> guard(promote_mutex_);
    if (isLeader())
        return true;
    if (cb_->leader_id.load(std::memory_order_acquire) !=
        config_.variant_id) {
        return false;
    }
    // Switch the system call table (section 5.1): from here on this
    // variant records instead of replaying. Per-tuple backlogs drain
    // before each thread starts producing (see dispatch()).
    role_.store(Role::Leader, std::memory_order_release);
    if (trace::enabled(cb_->trace)) {
        trace::stamp(cb_->trace, trace::Stage::Promotion,
                     static_cast<std::uint8_t>(config_.variant_id), 0,
                     cb_->epoch.load(std::memory_order_acquire),
                     monotonicNs());
    }
    // Same line for a local election and a cross-node promotion (an
    // external-leader engine whose receiver elected this variant): the
    // generation tells an operator which stream identity this leader
    // now publishes.
    inform("variant %u promoted to leader (epoch %u, stream generation "
           "%u)",
           config_.variant_id, cb_->epoch.load(std::memory_order_acquire),
           cb_->stream_generation.load(std::memory_order_acquire));
    return true;
}

long
Monitor::dispatchFollower(int tuple, long nr, const std::uint64_t args[6],
                          const sys::SyscallInfo &info)
{
    const int slot = static_cast<int>(config_.variant_id);
    const bool expect_fork = nr < 0;
    const std::uint64_t deadline =
        monotonicNs() + config_.progress_timeout_ns;
    ring::RingBuffer &ring = rings_[tuple];
    PeekCache &cache = peeked_[tuple];

    for (;;) {
        // Promoted (and this tuple's backlog is drained)?
        if (isLeader() && ring.lag(slot) == 0) {
            cache.pos = cache.count = 0;
            if (ring.consumerActive(slot))
                ring.detachConsumer(slot);
            if (expect_fork) {
                // Re-run as leader: allocate and announce the tuple.
                std::uint32_t t = cb_->num_tuples.fetch_add(
                    1, std::memory_order_acq_rel);
                VARAN_CHECK(t < kMaxTuples);
                cb_->tuples[t].active.store(1, std::memory_order_release);
                ring::Event event = {};
                event.type = ring::EventType::Fork;
                event.args[0] = t;
                publishEvent(tuple, event, 0);
                return static_cast<long>(t);
            }
            return dispatchLeader(tuple, nr, args, info);
        }

        // Refill the read-ahead: one head acquire covers a whole run of
        // already-published events (the follower-side mirror of the
        // leader's publish coalescing). The peeked slots stay claimed —
        // and their pool payloads alive — until each event is processed
        // and individually advanced below.
        if (cache.pos == cache.count) {
            cache.pos = 0;
            cache.count = static_cast<std::uint32_t>(
                ring.peekBatch(slot, cache.events, kPeekRun, tick_wait_));
            if (cache.count == 0) {
                if (cb_->leader_id.load(std::memory_order_acquire) ==
                    config_.variant_id) {
                    maybePromote();
                    continue;
                }
                if (monotonicNs() > deadline) {
                    panic("follower %u made no progress for %llu ms "
                          "(tuple %d, waiting for syscall %ld)",
                          config_.variant_id,
                          static_cast<unsigned long long>(
                              config_.progress_timeout_ns / 1000000),
                          tuple, nr);
                }
                continue;
            }
        }
        const ring::Event &event = cache.events[cache.pos];

        // A restarted incarnation joined at the stream tail: its shared
        // clock is frozen wherever the dead incarnation left it, so the
        // first observed event defines "now". Single-tuple semantics —
        // with several live tuples the cross-tuple order before this
        // point is unrecoverable (see RestartPolicy docs).
        if (clock_resync_pending_) {
            clock_.advanceTo(event.timestamp - 1);
            clock_resync_pending_ = false;
        }

        // Enforce the leader's total order across tuples (Figure 3).
        if (!clock_.awaitTurn(event.timestamp, tick_wait_))
            continue; // re-check promotion/shutdown, then retry

        const bool matches =
            expect_fork
                ? event.type == ring::EventType::Fork
                : (event.type == ring::EventType::Syscall &&
                   event.nr == static_cast<std::uint16_t>(nr));
        if (!matches) {
            long result = 0;
            switch (resolveDivergence(event, expect_fork ? -1 : nr, args,
                                      &result)) {
              case DivergenceOutcome::ExecutedLocally:
              case DivergenceOutcome::SyntheticErrno:
                // The leader's event stays queued (and cached).
                return result;
              case DivergenceOutcome::SkippedEvent:
                ring.advance(slot);
                ++cache.pos;
                clock_.advanceTo(event.timestamp);
                continue;
            }
        }

        if (expect_fork) {
            ring.advance(slot);
            ++cache.pos;
            clock_.advanceTo(event.timestamp);
            return static_cast<long>(event.args[0]);
        }

        // Content cross-check for write-family calls (section 2.2's
        // divergent-behaviour detection).
        if ((event.flags & ring::kDataHash) && config_.verify_divergence) {
            std::uint32_t my_hash = fnv1a(
                reinterpret_cast<const void *>(args[1]),
                event.payload_size);
            if (my_hash != event.payload) {
                recordDivergence(event, nr, args,
                                 trace::DivergenceAction::Fatal);
                fatalDivergence(event, nr);
            }
        }

        applyPayload(event, info, args);
        receiveFds(event, info, args);

        // The follower closes its own duplicate so descriptor tables
        // stay mirrored.
        if (nr == SYS_close)
            sys::rawSyscall(SYS_close, args[0]);

        if (trace::enabled(cb_->trace) &&
            trace::sampled(event.timestamp)) {
            // Same 1-in-64 predicate as the leader's lagMark: the pair
            // meets on the shared table and yields one publish→dispatch
            // sample with no cross-process coordination.
            const std::uint64_t now = monotonicNs();
            trace::lagMatch(cb_->trace, event.timestamp, now);
            trace::stamp(cb_->trace, trace::Stage::FollowerDispatch,
                         static_cast<std::uint8_t>(config_.variant_id),
                         static_cast<std::uint8_t>(tuple), event.nr, now,
                         event.timestamp);
        }

        ring.advance(slot);
        ++cache.pos;
        clock_.advanceTo(event.timestamp);
        return event.result;
    }
}

long
Monitor::handleFork([[maybe_unused]] int tuple, [[maybe_unused]] long nr,
                    [[maybe_unused]] const std::uint64_t args[6])
{
    // clone() with thread flags is the VThread path; plain fork/clone
    // spawns a process tuple.
    int child_tuple = openTuple();
    long result = sys::rawSyscall(SYS_fork);
    if (result == 0) {
        // The child keeps the parent's role: leader children lead their
        // tuple, follower children follow it. Inherited fd-routing
        // state is the parent's and must not survive into the child.
        bindThreadToTuple(child_tuple);
        g_fork_child = true;
        resetProcessStateAfterFork(child_tuple);
    }
    return result;
}

long
Monitor::handleExit(int tuple, long nr, const std::uint64_t args[6])
{
    const int status = static_cast<int>(args[0]);
    const int slot = static_cast<int>(config_.variant_id);

    if (!isLeader()) {
        // Replay until the Exit event is reached. The drained events are
        // discarded (no payload is read), so the backlog can be consumed
        // in batches: one cursor advance covers a whole run of events
        // and the slots go back to the producer immediately — an exiting
        // consumer must not gate the leader (the failover invariant of
        // section 5.1). The variant clock is still stepped per event, in
        // timestamp order, so sibling tuples observe the same
        // happens-before order as with single-event replay.
        constexpr std::size_t kExitDrainBatch = 32;
        ring::RingBuffer &ring = rings_[tuple];
        // Drop the read-ahead: the drain re-reads from the cursor, and
        // nothing may serve stale cached events after it.
        peeked_[tuple].pos = peeked_[tuple].count = 0;
        ring::Event batch[kExitDrainBatch];
        const std::uint64_t deadline =
            monotonicNs() + config_.progress_timeout_ns;
        bool draining = true;
        while (draining) {
            if (isLeader())
                break; // promoted mid-exit: just leave
            std::size_t n =
                ring.consumeBatch(slot, batch, kExitDrainBatch, tick_wait_);
            if (n == 0) {
                if (cb_->leader_id.load(std::memory_order_acquire) ==
                    config_.variant_id) {
                    maybePromote();
                    continue;
                }
                if (monotonicNs() > deadline)
                    break; // give up waiting; exit anyway
                continue;
            }
            for (std::size_t i = 0; i < n && draining; ++i) {
                if (clock_resync_pending_) {
                    clock_.advanceTo(batch[i].timestamp - 1);
                    clock_resync_pending_ = false;
                }
                while (!clock_.awaitTurn(batch[i].timestamp, tick_wait_)) {
                    if (isLeader() || monotonicNs() > deadline) {
                        draining = false;
                        break;
                    }
                }
                if (!draining)
                    break;
                clock_.advanceTo(batch[i].timestamp);
                if (batch[i].type == ring::EventType::Exit)
                    draining = false;
            }
        }
    }

    if (g_fork_child) {
        // A forked child owns only its tuple: announce/consume the
        // tuple's Exit, release just this tuple's cursor, and leave the
        // variant-wide state to the main process.
        if (isLeader()) {
            ring::Event event = {};
            event.type = ring::EventType::Exit;
            event.nr = static_cast<std::uint16_t>(nr);
            event.result = status;
            publishEvent(tuple, event, 0);
        } else if (rings_[tuple].consumerActive(slot)) {
            rings_[tuple].detachConsumer(slot);
        }
        sys::rawSyscall(nr, status);
        ::_exit(status);
    }

    finishVariant(status);
    sys::rawSyscall(nr, status);
    ::_exit(status); // unreachable for exit_group; belt and braces
}

void
Monitor::finishVariant(int status)
{
    if (flusher_thread_.joinable()) {
        flusher_stop_.store(true, std::memory_order_release);
        flusher_thread_.join();
    }
    VariantSlot &slot = cb_->variants[config_.variant_id];
    std::uint32_t running =
        static_cast<std::uint32_t>(VariantState::Running);
    if (!slot.state.compare_exchange_strong(
            running, static_cast<std::uint32_t>(VariantState::Exited))) {
        return; // already crashed/exited
    }
    slot.exit_status.store(status, std::memory_order_release);

    // Stop gating producers (and never gate on our own publishes).
    for (std::uint32_t t = 0; t < kMaxTuples; ++t) {
        if (rings_[t].consumerActive(static_cast<int>(config_.variant_id)))
            rings_[t].detachConsumer(static_cast<int>(config_.variant_id));
    }
    if (isLeader()) {
        ring::Event event = {};
        event.type = ring::EventType::Exit;
        event.nr = SYS_exit_group;
        event.result = status;
        publishEvent(currentTuple(), event, 0);
    }
    sys::setDispatcher(nullptr);
    notifyCoordinator(CtrlMsg::VariantExited, status);
}

} // namespace varan::core
