/**
 * @file
 * The coordinator status API: one consolidated, point-in-time snapshot
 * of everything a running engine can report about itself.
 *
 * StatusReport subsumes what used to be nine ad-hoc counter getters on
 * Nvx plus poolStats(): engine geometry, election state, the stream
 * counters, per-variant state (role, pid, syscalls, ring lag, restart
 * count), the sharded-pool pressure snapshot and — when multi-node
 * shipping is active — the wire shipper/receiver statistics.
 *
 * The struct is deliberately plain-old-data (fixed size, no pointers,
 * native-endian like the event layout itself) so the identical bytes
 * serve three consumers:
 *
 *  - Nvx::status() hands it to local callers;
 *  - the wire Status frame carries it to a remote peer (the status
 *    RPC: a receiver sends an empty Status frame as a request, the
 *    shipper answers with a Status frame whose body is this struct);
 *  - tests assert bit-exact round trips through that frame.
 */

#ifndef VARAN_CORE_STATUS_H
#define VARAN_CORE_STATUS_H

#include <cstdint>
#include <string>
#include <type_traits>

#include "core/layout.h"
#include "shmem/pool.h"

namespace varan::core {

/** One variant's slice of the coordinator status. */
struct VariantStatus {
    std::uint32_t state;       ///< VariantState
    std::uint32_t role;        ///< VariantRole (LeaderCandidate/FollowerOnly)
    std::int32_t exit_status;  ///< valid once state is Crashed/Exited
    std::uint32_t pid;
    std::uint32_t restarts;    ///< respawns performed by the restart policy
    std::uint32_t reserved;
    std::uint64_t syscalls;    ///< calls dispatched by this variant
    std::uint64_t ring_lag;    ///< leader-to-follower distance, max over tuples
};

/** Leader-node wire shipping statistics (zeros when shipping is off). */
struct ShipperWireStatus {
    std::uint32_t active;   ///< a shipper exists on this engine
    std::uint32_t link_up;  ///< at least one peer link is usable
    std::uint32_t peers;          ///< registered receiver sessions
    std::uint32_t peers_evicted;  ///< sessions dropped as hopelessly behind
    std::uint64_t frames;
    std::uint64_t events;
    std::uint64_t bytes;
    std::uint64_t payload_bytes;
    std::uint64_t credits_received;
    std::uint64_t retransmitted_frames;
    std::uint64_t reconnects;
    std::uint64_t drain_passes;   ///< drain passes with ring backlog
    std::uint64_t credit_stalls;  ///< passes gated by the credit window
    std::uint64_t status_pushes;  ///< unsolicited Status broadcasts
};

/** Remote-node wire receiving statistics (zeros when not receiving). */
struct ReceiverWireStatus {
    std::uint32_t active;   ///< a receiver feeds this engine
    std::uint32_t link_up;
    std::uint32_t promoted;      ///< this node took over leadership
    std::uint32_t errors;        ///< Error frames sent + received
    std::uint32_t fenced;        ///< partitioned off a quorum: not serving
    std::uint32_t reserved;
    std::uint64_t frames;
    std::uint64_t events;
    std::uint64_t payload_bytes;
    std::uint64_t duplicates_dropped;
    std::uint64_t corrupt_frames;
    std::uint64_t credits_sent;
    std::uint64_t reconnects;
};

/** Quorum control-plane state (v6): the lease/membership view of this
 *  node's LeaseManager. Zeros when no quorum is configured. */
struct QuorumStatus {
    std::uint32_t active;       ///< a lease manager runs on this node
    std::uint32_t node_id;      ///< this node's quorum identity
    std::uint32_t members;      ///< configured membership size (incl. self)
    std::uint32_t live_members; ///< members currently heard from (incl. self)
    std::uint32_t holder;       ///< live lease holder, kNoQuorumNode if none
    std::uint32_t fenced;       ///< this node fenced itself off
    std::uint64_t term;         ///< current lease term
    std::uint64_t elections;    ///< election rounds this node started
    std::uint64_t leases_won;   ///< rounds that reached a quorum of grants
    std::uint64_t votes_granted; ///< grants this node handed to peers
    std::uint64_t fences;       ///< fence orders received by this node
};

/** Record-replay sink statistics (zeros when no recorder ever ran).
 *  Mirrored from ControlBlock, where rr::LogSink publishes them. */
struct RecorderStatus {
    std::uint32_t active;      ///< a recorder's taps are attached
    std::uint32_t evicted;     ///< the sink self-evicted (slow disk)
    std::int32_t write_errno;  ///< first latched write failure (0 = ok)
    std::uint32_t reserved;
    std::uint64_t events;      ///< records drained from the rings
    std::uint64_t bytes_written;
    std::uint64_t spill_peak;  ///< spill-buffer high-water mark (bytes)
};

/** Live tuning knobs + adaptive-controller state (src/adapt/): the
 *  values in force right now, and what the controller did to them.
 *  Mirrored straight from the shared TuningBlock, so a knob retuned
 *  mid-run is visible in the very next StatusReport — local or served
 *  over the wire. */
struct AdaptStatus {
    std::uint32_t active;       ///< an AutoTuner thread is running
    std::uint32_t pinned_mask;  ///< knobs excluded from adaptation
    std::uint64_t samples;      ///< controller ticks taken
    std::uint64_t decisions;    ///< knob adjustments applied
    std::uint64_t fastpath_hits; ///< leader fast-path dispatches
    // The live knob values (core::Tuning mirror).
    std::uint32_t ship_batch;
    std::uint32_t credit_window;
    std::uint32_t coalesce_run;
    std::uint32_t fastpath_top_k;
    std::uint64_t coalesce_window_ns;
    /** The hot table behind the top-k fast path (nr + 1; 0 = empty). */
    std::uint32_t fastpath_nrs[kFastPathSlots];
};

/** One log2-bucket latency histogram, snapshotted from the shared
 *  TraceBlock. Bucket i counts samples whose value fits in i bits
 *  (inclusive upper bound 2^i - 1 ns); the last bucket absorbs
 *  overflow. Rendered as Prometheus `_bucket`/`_sum`/`_count` series
 *  by statusText(). */
struct HistogramStatus {
    std::uint64_t buckets[trace::kHistogramBuckets];
    std::uint64_t sum;
    std::uint64_t count;
};

/** Observability snapshot: flight-recorder state, the four event-path
 *  latency histograms and the tail of the divergence ledger. */
struct TraceStatus {
    std::uint32_t enabled;        ///< flight recorder + histograms on
    std::uint32_t recent_count;   ///< valid entries in recent[]
    std::uint64_t trace_records;  ///< flight-recorder stamps written
    std::uint64_t ledger_records; ///< divergence ledger appends
    HistogramStatus publish_lag;    ///< event creation -> follower dispatch
    HistogramStatus coalesce_dwell; ///< first add -> coalesced flush
    HistogramStatus credit_stall;   ///< wire credit-window stall spans
    HistogramStatus blackout;       ///< leader death -> first dispatch
    /** The most recent divergence ledger entries, oldest first. */
    static constexpr std::uint32_t kRecent = 4;
    trace::DivergenceRecord recent[kRecent];
};

/** The unified coordinator status snapshot. */
struct StatusReport {
    // Geometry + election state.
    std::uint32_t num_variants;
    std::uint32_t ring_capacity;
    std::uint32_t leader;      ///< current leader id, or kNoLeader
    std::uint32_t epoch;       ///< election count
    std::uint32_t live_mask;   ///< bit per running variant
    std::uint32_t num_tuples;  ///< live thread/process tuples
    std::uint32_t stream_generation; ///< bumped on cross-node promotion
    std::uint32_t promotions;        ///< elections performed on this engine

    // Stream counters (the former one-off getters).
    std::uint64_t events_streamed;
    std::uint64_t divergences_resolved;
    std::uint64_t divergences_fatal;
    std::uint64_t fd_transfers;
    std::uint64_t publish_batches;   ///< coalesced flushes
    std::uint64_t events_coalesced;  ///< events shipped batched

    VariantStatus variants[kMaxVariants];
    shmem::PoolStats pool;           ///< per-arena pressure + spills
    ShipperWireStatus shipper;
    ReceiverWireStatus receiver;
    QuorumStatus quorum;             ///< lease/membership control plane
    RecorderStatus recorder;
    AdaptStatus adapt;               ///< live knobs + controller state
    TraceStatus trace;               ///< histograms + divergence ledger
};

static_assert(std::is_trivially_copyable_v<StatusReport>,
              "StatusReport travels in wire Status frames by memcpy");

/**
 * Assemble the shared-memory-derived part of a StatusReport: geometry,
 * election state, stream counters, per-variant status, the pool
 * snapshot and the recorder counters (rr::LogSink mirrors them into
 * ControlBlock). The wire sections are left zeroed — the owner of the
 * shipper/receiver fills its own side in.
 *
 * Safe to call from any process mapping the region (the coordinator,
 * or the wire shipper answering a remote status request).
 */
StatusReport collectStatus(const shmem::Region *region,
                           const EngineLayout &layout);

/**
 * Render a StatusReport as a Prometheus-style text metrics page: one
 * `varan_*` gauge/counter per field (per-variant series labelled
 * `{variant="N"}`), `# HELP`/`# TYPE` headers included. The same bytes
 * work for a /metrics scrape endpoint, a log line, or a human.
 */
std::string statusText(const StatusReport &report);

} // namespace varan::core

#endif // VARAN_CORE_STATUS_H
