/**
 * @file
 * Shared-memory layout of an N-version execution engine instance.
 *
 * The coordinator carves one Region (Figure 2's "shm" segment) into:
 *
 *   [ControlBlock][tuple rings][payload shadows][pool]
 *
 * The ControlBlock holds variant/tuple bookkeeping, the per-variant
 * Lamport clocks (section 3.3.3) and the election state consulted
 * during transparent failover (section 5.1). Everything is offset-
 * addressed and process-shared.
 */

#ifndef VARAN_CORE_LAYOUT_H
#define VARAN_CORE_LAYOUT_H

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "core/tuning.h"
#include "ring/lamport.h"
#include "ring/ring_buffer.h"
#include "shmem/pool.h"
#include "shmem/region.h"
#include "trace/trace.h"

namespace varan::core {

/** Compile-time bounds; the paper evaluates up to 1 leader + 6. */
inline constexpr std::uint32_t kMaxVariants = 8;
inline constexpr std::uint32_t kMaxTuples = 16;

/** First word of the ControlBlock. Lets an out-of-process inspector
 *  (`varanctl`) validate that a mapped memfd really is an engine
 *  region before dereferencing anything else. */
inline constexpr std::uint32_t kControlMagic = 0x5641524eu; // "VARN"

/** Consumer-slot ids >= kMaxVariants are reserved for taps (rr). */
inline constexpr int kTapConsumerSlot = static_cast<int>(kMaxVariants);

/** leader_id sentinel: no in-process leader (record-replay's artificial
 *  leader publishes from outside, section 5.4). */
inline constexpr std::uint32_t kNoLeader = 0xffffffffu;

/** Hard ceiling on any ring publish: a claim() still blocked after
 *  this long means a follower is wedged beyond recovery, and the
 *  publisher panics rather than hang forever. */
inline constexpr std::uint64_t kPublishStallNs = 120000000000ULL; // 2 min

enum class VariantState : std::uint32_t {
    Empty = 0,
    Running,
    Crashed,
    Exited,
};

enum class Role : std::uint32_t { Leader = 0, Follower = 1 };

/**
 * A variant's election eligibility (VariantSpec::role). FollowerOnly
 * variants — sanitizer builds, experimental revisions — are never
 * elected during transparent failover; they replay the stream but can
 * never produce it.
 */
enum class VariantRole : std::uint32_t {
    LeaderCandidate = 0,
    FollowerOnly = 1,
};

/** Per-variant status, written by variants and the coordinator. */
struct VariantSlot {
    std::atomic<std::uint32_t> state;   ///< VariantState
    std::atomic<std::int32_t> exit_status;
    std::atomic<std::uint32_t> pid;
    std::atomic<std::uint64_t> syscalls; ///< dispatched call count (stats)
    std::atomic<std::uint32_t> role;     ///< VariantRole (election gate)
    std::atomic<std::uint32_t> restarts; ///< respawns by the restart policy
};

/** One thread/process tuple: ring + payload shadow (section 3.3.3).
 *  The tuple's pool arena is keyed by the tuple id itself: tuple t
 *  allocates payloads from shard t of the ShardedPool, so two tuples
 *  never meet on an allocator lock. */
struct TupleSlot {
    std::atomic<std::uint32_t> active;
    shmem::Offset ring;    ///< RingBuffer offset in the region
    shmem::Offset shadow;  ///< u64[capacity]: payload owned by each slot
};

static_assert(kMaxTuples <= shmem::kMaxPoolShards,
              "every tuple needs its own pool arena");

/** Engine-wide shared control state. */
struct ControlBlock {
    /** kControlMagic, written last during create() — an attacher that
     *  reads it can trust the rest of the block is initialised. */
    std::atomic<std::uint32_t> magic;
    std::uint32_t num_variants;
    std::uint32_t ring_capacity;
    std::uint32_t reserved0;
    /** Pool-header offset, persisted so EngineLayout::attach() can
     *  reconstruct the layout from the region alone. */
    shmem::Offset pool_header_off;

    std::atomic<std::uint32_t> leader_id;
    std::atomic<std::uint32_t> epoch;     ///< bumped on every election
    /** Identity of the event stream this engine publishes or consumes.
     *  A live leader starts at 1; an external-leader engine starts at 0
     *  and adopts the shipping node's generation from the wire Hello.
     *  Cross-node promotion bumps it — a resurrected pre-failover
     *  leader then fails the handshake instead of splitting the brain.
     *  Local elections do NOT bump it: the stream continues on the
     *  same node, only the epoch moves. */
    std::atomic<std::uint32_t> stream_generation;
    /** Leader promotions performed on this engine (local elections on
     *  a leader node, cross-node promotions on a receiver node). */
    std::atomic<std::uint32_t> promotions;
    std::atomic<std::uint32_t> live_mask; ///< bit per running variant
    std::atomic<std::uint32_t> num_tuples;
    std::atomic<std::uint32_t> shutdown;

    // Statistics surfaced by the coordinator API.
    std::atomic<std::uint64_t> events_streamed;
    std::atomic<std::uint64_t> divergences_resolved;
    std::atomic<std::uint64_t> divergences_fatal;
    std::atomic<std::uint64_t> fd_transfers;
    std::atomic<std::uint64_t> publish_batches;  ///< coalesced flushes
    std::atomic<std::uint64_t> events_coalesced; ///< events shipped batched

    // Record-replay sink statistics, mirrored here by rr::LogSink so a
    // StatusReport — local or served over the wire status RPC — can
    // carry the recorder's health without reaching into its process.
    std::atomic<std::uint32_t> rr_active;      ///< taps attached
    std::atomic<std::uint32_t> rr_evicted;     ///< sink gave up (slow disk)
    std::atomic<std::int32_t> rr_write_errno;  ///< first latched failure
    std::atomic<std::uint64_t> rr_events;      ///< records drained
    std::atomic<std::uint64_t> rr_bytes_written;
    std::atomic<std::uint64_t> rr_spill_peak;  ///< spill-buffer high water

    /** Live event-path knobs + adaptive-controller statistics. Every
     *  knob consumer (shipper, coalescer, monitor) re-reads from here
     *  at batch boundaries instead of caching config at startup. */
    TuningBlock tuning;

    /** Flight recorder, latency histograms, divergence ledger. Lives
     *  in the shared block so every attached process — including an
     *  out-of-process `varanctl` — reads the same telemetry. */
    trace::TraceBlock trace;

    VariantSlot variants[kMaxVariants];
    TupleSlot tuples[kMaxTuples];
    ring::ClockState clocks[kMaxVariants]; ///< per-variant Lamport clocks
};

static_assert(kTuningLagSlots == kMaxTuples,
              "one lag EWMA slot per tuple");

/** Offsets of the carved structures inside the Region. */
struct EngineLayout {
    shmem::Offset control = 0;
    shmem::Offset pool_header = 0;

    /**
     * Carve and initialise an engine layout in @p region.
     *
     * Pre-attaches every follower's consumer slot (slot id == variant
     * id) on every tuple ring so the leader can never outrun a follower
     * that has not started yet.
     */
    static EngineLayout create(shmem::Region *region,
                               std::uint32_t num_variants,
                               std::uint32_t leader_id,
                               std::uint32_t ring_capacity);

    /**
     * Reconstruct the layout of an engine region created elsewhere
     * (another process, via `Region::fromFd`). Validates the control
     * magic; fails with EINVAL when the mapping is not an initialised
     * engine region. The basis: `create()` always carves the
     * ControlBlock first, so it sits at the first carve offset.
     */
    static Result<EngineLayout> attach(const shmem::Region *region);

    ControlBlock *
    controlBlock(const shmem::Region *region) const
    {
        return region->at<ControlBlock>(control);
    }

    ring::RingBuffer
    tupleRing(const shmem::Region *region, std::uint32_t tuple) const
    {
        ControlBlock *cb = controlBlock(region);
        return ring::RingBuffer(region, cb->tuples[tuple].ring);
    }

    /** Payload shadow array of a tuple (u64 per ring slot). */
    std::uint64_t *
    tupleShadow(const shmem::Region *region, std::uint32_t tuple) const
    {
        ControlBlock *cb = controlBlock(region);
        return static_cast<std::uint64_t *>(region->bytesAt(
            cb->tuples[tuple].shadow,
            sizeof(std::uint64_t) * cb->ring_capacity));
    }

    ring::LamportClock
    variantClock(const shmem::Region *region, std::uint32_t variant) const
    {
        ControlBlock *cb = controlBlock(region);
        return ring::LamportClock(
            region, region->offsetOf(&cb->clocks[variant]));
    }

    /** The payload pool, sharded one arena per tuple. */
    shmem::ShardedPool
    pool(const shmem::Region *region) const
    {
        return shmem::ShardedPool(region, pool_header);
    }
};

} // namespace varan::core

#endif // VARAN_CORE_LAYOUT_H
