/**
 * @file
 * The coordinator: VARAN's only centralised component (section 2.2).
 *
 * Nvx owns the shared region, creates every communication channel of
 * Figure 2, forks the zygote, asks it to spawn variants, and then gets
 * out of the fast path entirely — during execution it only watches the
 * control channels to reap exits, unsubscribe crashed followers from
 * the rings and run leader elections for transparent failover
 * (section 5.1).
 */

#ifndef VARAN_CORE_NVX_H
#define VARAN_CORE_NVX_H

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/channels.h"
#include "core/layout.h"
#include "core/monitor.h"
#include "shmem/pool.h"
#include "shmem/region.h"

namespace varan::wire {
class Shipper;
}

namespace varan::core {

/** A variant's application entry point ("main"). */
using VariantFn = std::function<int()>;

/** Engine configuration. */
struct NvxOptions {
    std::uint32_t ring_capacity = 256; ///< events per tuple ring (paper)
    std::size_t shm_bytes = 64 << 20;  ///< total shared region size
    std::uint32_t leader_index = 0;    ///< initial leader (section 2.2)
    ring::WaitSpec wait;               ///< follower wait policy
    bool verify_divergence = true;     ///< hash write buffers
    std::vector<std::string> rewrite_rules; ///< BPF rules (section 3.4)
    std::uint64_t progress_timeout_ns = 30000000000ULL;

    /** Follower poll tick: bounds how quickly an elected follower
     *  notices its promotion (transparent-failover latency). */
    std::uint64_t tick_ns = 5000000; // 5 ms

    /**
     * Run every variant as a follower; events come from an artificial
     * leader outside the variant set (record-replay, section 5.4).
     */
    bool external_leader = false;

    /**
     * Leader-side publish coalescing: payload-free syscall events
     * accumulate into a pending run shipped with one head store + one
     * futex wake (DMON-style relaxed batching). Runs flush before any
     * blocking call, payload/descriptor event, tuple opening, sleeping
     * follower, or once the run goes stale, so followers never starve.
     *
     * Off by default because it relaxes failover exactness: events
     * executed but still pending when the leader crashes are lost, so
     * the promoted follower re-executes up to coalesce_max calls whose
     * external effects (writes) already happened — the crash window
     * widens from one event to one run. Enable it for throughput when
     * at-least-once effects across a leader crash are acceptable.
     */
    bool publish_coalesce = false;
    std::uint32_t coalesce_max = 16;           ///< events per run cap
    std::uint64_t coalesce_window_ns = 200000; ///< staleness cap (200 µs)

    /**
     * Multi-node event shipping: when non-empty, the coordinator
     * connects to this abstract-socket endpoint and streams the
     * leader's rings to a remote wire::Receiver (DMON-style relaxed
     * batching across the wire). The remote node runs an
     * external-leader engine whose followers consume the stream
     * through the unmodified dispatch loop. Taps attach before any
     * variant runs, so the remote stream is complete from event one.
     */
    std::string remote_endpoint;
    std::uint32_t remote_ship_batch = 16;  ///< events per wire frame
    std::uint32_t remote_credit_window = 4096; ///< max unacked events
};

/** Final state of one variant. */
struct VariantResult {
    int variant = -1;
    bool crashed = false;
    int status = 0; ///< exit status, or 128+signal when crashed
};

class Nvx
{
  public:
    explicit Nvx(NvxOptions options = NvxOptions{});
    ~Nvx();

    VARAN_NO_COPY_NO_MOVE(Nvx);

    /** Spawn all variants (index 0..n-1). Returns once all run. */
    Status start(std::vector<VariantFn> variants);

    /**
     * Like start(), invoking @p pre_spawn after the shared layout is
     * initialised but before any variant forks — the hook point where
     * record-replay taps attach their ring cursors so they can never
     * miss an event.
     */
    Status start(std::vector<VariantFn> variants,
                 const std::function<void(Nvx &)> &pre_spawn);

    /** Block until every variant exited or crashed. */
    std::vector<VariantResult> wait();

    /**
     * wait() with a deadline; on expiry the engine is shut down (all
     * surviving variants killed) and partial results are returned.
     */
    std::vector<VariantResult> waitFor(std::uint64_t timeout_ns);

    /** start() + wait(). */
    std::vector<VariantResult> run(std::vector<VariantFn> variants);

    // --- live statistics (readable while variants run) ---
    int currentLeader() const;
    std::uint32_t epoch() const;
    std::uint64_t eventsStreamed() const;
    std::uint64_t divergencesResolved() const;
    std::uint64_t divergencesFatal() const;
    std::uint64_t fdTransfers() const;
    std::uint64_t publishBatches() const;  ///< coalesced flushes
    std::uint64_t eventsCoalesced() const; ///< events shipped batched
    std::uint64_t poolSpills() const;      ///< global-arena fallbacks

    /** Per-shard payload-pool pressure: carve cursor, live/free chunk
     *  counts per arena plus the fallback — the first slice of the
     *  coordinator status API, also reported in the wire handshake. */
    shmem::PoolStats poolStats() const;

    /** The wire shipper when remote shipping is on, else nullptr. */
    wire::Shipper *shipper() const { return shipper_.get(); }

    /** Leader-to-follower distance in events (the "log size" of
     *  section 5.3), maximised over tuples for one follower. */
    std::uint64_t ringLagOf(std::uint32_t variant) const;

    /** Access for record-replay taps and tests. */
    const shmem::Region *region() const { return &region_; }
    const EngineLayout &layout() const { return layout_; }
    ControlBlock *controlBlock() const;

  private:
    [[noreturn]] void zygoteMain();
    void monitorLoop();
    void markVariantDead(std::uint32_t variant, bool crashed);
    void shutdownZygote();

    NvxOptions options_;
    shmem::Region region_;
    EngineLayout layout_;
    ChannelSet channels_;
    std::vector<VariantFn> variants_;
    std::uint32_t num_variants_ = 0;
    pid_t zygote_pid_ = -1;
    std::thread monitor_thread_;
    bool started_ = false;
    bool finished_ = false;
    std::vector<VariantResult> results_;
    std::vector<bool> reaped_;
    /** Zygote messages that raced ahead of the spawn acknowledgements. */
    std::vector<CtrlMsg> early_zygote_msgs_;
    /** Multi-node event shipping (NvxOptions::remote_endpoint). */
    std::unique_ptr<wire::Shipper> shipper_;
};

/**
 * std::thread wrapper that carries the thread-tuple protocol (section
 * 3.3.3): the parent announces the tuple through the event stream, the
 * new thread binds to it, and the same logical thread in every variant
 * ends up wired to the same ring buffer.
 */
class VThread
{
  public:
    template <typename Fn>
    explicit VThread(Fn fn)
    {
        Monitor *monitor = Monitor::instance();
        if (!monitor) {
            thread_ = std::thread(std::move(fn));
            return;
        }
        int tuple = monitor->openTuple();
        thread_ = std::thread([tuple, fn = std::move(fn)]() mutable {
            Monitor::bindThreadToTuple(tuple);
            fn();
        });
    }

    void
    join()
    {
        if (thread_.joinable())
            thread_.join();
    }

    ~VThread() { join(); }

  private:
    std::thread thread_;
};

} // namespace varan::core

#endif // VARAN_CORE_NVX_H
