/**
 * @file
 * The coordinator: VARAN's only centralised component (section 2.2).
 *
 * Nvx owns the shared region, creates every communication channel of
 * Figure 2, forks the zygote, asks it to spawn variants, and then gets
 * out of the fast path entirely — during execution it only watches the
 * control channels to reap exits, unsubscribe crashed followers from
 * the rings, run leader elections for transparent failover
 * (section 5.1) and honour each variant's restart policy.
 *
 * The public surface is built from three types:
 *
 *  - VariantSpec describes one variant: its entry function, a name,
 *    its election role (LeaderCandidate or FollowerOnly), per-variant
 *    BPF rewrite rules (the paper's section 5.2 multi-revision rules
 *    attach to the revision that diverges, not to the whole engine)
 *    and an on-exit restart policy;
 *  - EngineConfig groups the engine knobs into RingConfig /
 *    CoalesceConfig / RemoteConfig sub-structs and carries the
 *    lifecycle hooks (on_divergence_record, on_failover,
 *    on_variant_exit);
 *  - StatusReport (core/status.h) is the single consolidated snapshot
 *    replacing the grab-bag of counter getters, also served to remote
 *    peers over the wire Status RPC.
 *
 * Nvx::Builder composes all of it fluently:
 *
 *   auto nvx = core::Nvx::Builder()
 *                  .ringCapacity(256)
 *                  .onFailover([](auto epoch, auto leader) { ... })
 *                  .variant(core::VariantSpec(rev2435).named("2435"))
 *                  .variant(core::VariantSpec(rev2436)
 *                               .named("2436")
 *                               .rule(kListing1Rule))
 *                  .build();
 *   auto results = nvx->run();
 *
 * The std::vector<VariantFn> overloads remain as a convenience for
 * anonymous entry points; the flat NvxOptions struct (deprecated in
 * the API redesign, kept for one release) has been removed — use
 * EngineConfig + VariantSpec.
 */

#ifndef VARAN_CORE_NVX_H
#define VARAN_CORE_NVX_H

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/channels.h"
#include "core/layout.h"
#include "core/monitor.h"
#include "core/status.h"
#include "shmem/pool.h"
#include "shmem/region.h"

namespace varan::wire {
class Shipper;
}

namespace varan::adapt {
class AutoTuner;
}

namespace varan::core {

/** A variant's application entry point ("main"). */
using VariantFn = std::function<int()>;

/**
 * What the coordinator does when a variant leaves the engine
 * (VariantSpec::restart). A respawned variant re-runs its entry
 * function as a follower re-attached at the current stream tail with
 * its Lamport clock resynchronised from the first event it observes —
 * sound for single-tuple workloads whose replay converges (sanitizer
 * followers, stateless services); a restarted variant that diverges
 * from the live stream is killed like any other divergence. A
 * respawned incarnation is demoted to FollowerOnly for the rest of the
 * run (its fresh program state must never lead mid-stream), and a
 * variant that still holds leadership when it dies — no candidate
 * survived to take over — is not respawned at all.
 */
enum class RestartPolicy : std::uint32_t {
    Never = 0,   ///< the exit/crash is final (classic behaviour)
    OnCrash = 1, ///< respawn after a crash; a clean exit is final
    Always = 2,  ///< respawn after any exit while the engine still runs
};

/**
 * One variant of the N-version set. Construct from the entry function
 * and refine with the fluent setters:
 *
 *   VariantSpec(entry).named("asan").as(VariantRole::FollowerOnly)
 *                     .rule(bpf_text).restartOn(RestartPolicy::OnCrash)
 */
struct VariantSpec {
    VariantFn entry;
    std::string name;                       ///< for logs and status
    VariantRole role = VariantRole::LeaderCandidate;
    std::vector<std::string> rewrite_rules; ///< this variant's BPF rules
    RestartPolicy restart = RestartPolicy::Never;
    std::uint32_t max_restarts = 1;         ///< respawn budget

    VariantSpec() = default;
    /** Explicit so brace-lists of plain functions still pick the
     *  (deprecated) VariantFn overloads unambiguously. */
    explicit VariantSpec(VariantFn fn) : entry(std::move(fn)) {}

    VariantSpec &
    named(std::string n)
    {
        name = std::move(n);
        return *this;
    }

    VariantSpec &
    as(VariantRole r)
    {
        role = r;
        return *this;
    }

    /** Append one BPF rewrite rule evaluated only in this variant. */
    VariantSpec &
    rule(std::string text)
    {
        rewrite_rules.push_back(std::move(text));
        return *this;
    }

    VariantSpec &
    restartOn(RestartPolicy policy, std::uint32_t budget = 1)
    {
        restart = policy;
        max_restarts = budget;
        return *this;
    }
};

/** Event-stream geometry and follower pacing. */
struct RingConfig {
    std::uint32_t capacity = 256;      ///< events per tuple ring (paper)
    ring::WaitSpec wait;               ///< follower wait policy
    std::uint64_t progress_timeout_ns = 30000000000ULL; ///< 30 s
    /** Follower poll tick: bounds how quickly an elected follower
     *  notices its promotion (transparent-failover latency). */
    std::uint64_t tick_ns = 5000000; // 5 ms
};

/**
 * Leader-side publish coalescing: payload-free syscall events
 * accumulate into a pending run shipped with one head store + one
 * futex wake (DMON-style relaxed batching). Runs flush before any
 * blocking call, payload/descriptor event, tuple opening, sleeping
 * follower, or once the run goes stale, so followers never starve.
 *
 * Off by default because it relaxes failover exactness: events
 * executed but still pending when the leader crashes are lost, so the
 * promoted follower re-executes up to max_run calls whose external
 * effects (writes) already happened — the crash window widens from one
 * event to one run. Enable it for throughput when at-least-once
 * effects across a leader crash are acceptable.
 */
struct CoalesceConfig {
    bool enabled = false;
    // The run cap and staleness window are Tuning knobs
    // (EngineConfig::tuning.coalesce_run / .coalesce_window_ns); the
    // deprecated max_run/window_ns seed shims were removed after their
    // one-release grace period.
};

/**
 * Multi-node event shipping: when any endpoint is configured, the
 * coordinator connects to each abstract-socket endpoint and streams
 * the leader's rings to the wire::Receiver behind it — one shipper,
 * N remote nodes, each with its own credit window (a stalled node
 * buffers and is eventually evicted; it never gates its siblings).
 * Each remote node runs an external-leader engine whose followers
 * consume the stream through the unmodified dispatch loop. Taps
 * attach before any variant runs, so the remote stream is complete
 * from event one.
 */
struct RemoteConfig {
    std::string endpoint;              ///< single peer (legacy spelling)
    std::vector<std::string> endpoints; ///< fan-out peers (appended)
    // Frame batching and flow control are Tuning knobs
    // (EngineConfig::tuning.ship_batch / .credit_window); the
    // deprecated ship_batch/credit_window seed shims were removed
    // after their one-release grace period.
    /** Unsolicited Status-frame broadcast cadence to every connected
     *  peer (0 = off, the classic request/response RPC only). The
     *  receiver needs no opt-in: any incoming Status frame refreshes
     *  its remoteStatus() snapshot. */
    std::uint64_t status_push_interval_ns = 0;

    /** Serve the wire Status RPC on this abstract-socket name (empty =
     *  off). Out-of-process inspectors (`varanctl dial <name>`) connect,
     *  send an empty Status frame, and receive one StatusReport — no
     *  event shipping, no session, works with or without remote peers. */
    std::string status_endpoint;

    /**
     * Quorum control plane (wire v6) for the receiver nodes consuming
     * this deployment's stream: the abstract-socket quorum endpoint of
     * every member, indexed by quorum node id, plus this node's own
     * id. quorum::membershipFromRemote() turns the pair into the
     * quorum::Config a wire::Receiver arms promotion with — every
     * receiver may then set promote_after_ns, and a partitioned
     * minority fences instead of split-braining. Empty = no quorum
     * (the legacy single-watchdog promotion). Membership sizing and
     * fencing behavior: README, "Operating a multi-node deployment".
     */
    std::vector<std::string> quorum_members;
    /** This node's index into quorum_members (its quorum identity). */
    std::uint32_t quorum_node_id = 0xffffffffu;

    /** Every configured peer endpoint (endpoint + endpoints). */
    std::vector<std::string>
    allEndpoints() const
    {
        std::vector<std::string> all;
        if (!endpoint.empty())
            all.push_back(endpoint);
        all.insert(all.end(), endpoints.begin(), endpoints.end());
        return all;
    }
};

/** Final state of one variant. */
struct VariantResult {
    int variant = -1;
    bool crashed = false;
    /** Exit status; 128+signal when crashed; kTimedOutStatus when the
     *  variant was still running at a waitFor() deadline and the
     *  engine shut it down. */
    int status = 0;
    std::uint32_t restarts = 0; ///< respawns this variant consumed
};

/** VariantResult::status of a variant killed at a waitFor deadline —
 *  distinguishable from a genuine exit(0). */
inline constexpr int kTimedOutStatus = -1;

/**
 * Engine configuration. Lifecycle hooks run on the coordinator's
 * monitor thread while the engine is live — keep them brief and do not
 * call back into Nvx teardown from inside one.
 */
struct EngineConfig {
    std::size_t shm_bytes = 64 << 20;  ///< total shared region size
    std::uint32_t leader_index = 0;    ///< initial leader (section 2.2)
    bool verify_divergence = true;     ///< hash write buffers

    /**
     * Run every variant as a follower; events come from an artificial
     * leader outside the variant set (record-replay, section 5.4, and
     * the remote end of multi-node shipping).
     */
    bool external_leader = false;

    /** Engine-global BPF rules, evaluated in every variant after that
     *  variant's own VariantSpec::rewrite_rules. */
    std::vector<std::string> rewrite_rules;

    RingConfig ring;
    CoalesceConfig coalesce;
    RemoteConfig remote;

    /**
     * The unified event-path knob surface (API redesign): one struct
     * holding every batching/pacing parameter that used to be spread
     * across CoalesceConfig and RemoteConfig. Seeds the shared
     * TuningBlock at start(); after that the values live in shared
     * memory — retune them at runtime through Nvx::tuning() without
     * restarting anything.
     *
     */
    Tuning tuning;

    /** The adaptive controller (src/adapt/). When enabled, an
     *  AutoTuner thread retunes the unpinned knobs online from the
     *  sampled syscall mix, ring occupancy and wire statistics. */
    AdaptConfig adapt;

    /**
     * The observability layer (src/trace/): flight recorder, latency
     * histograms and the sampled publish→dispatch lag pairing. On by
     * default (batch-granular + 1-in-64 sampling keeps the cost <5%
     * on the hot paths — bench/sec57_trace.cc); also togglable live
     * through ControlBlock::trace.enabled. The divergence ledger is
     * NOT gated by this: divergences are rare and always recorded.
     */
    bool trace_enabled = true;

    /**
     * A divergence was recorded: the full structured record (tuple,
     * variant, expected vs observed syscall, arg digest, Lamport
     * clock, epoch, resolution). Delivered by the coordinator from the
     * shared ledger at monitor-tick granularity, including records
     * shipped back from remote follower nodes (origin != 0).
     */
    std::function<void(const trace::DivergenceRecord &record)>
        on_divergence_record;

    /** A leader election completed: the new epoch and leader id. */
    std::function<void(std::uint32_t epoch, std::uint32_t new_leader)>
        on_failover;

    /** A variant left the engine (final result so far); @p restarting
     *  reports whether the restart policy is respawning it. */
    std::function<void(const VariantResult &result, bool restarting)>
        on_variant_exit;

    /**
     * The restart policy decided to respawn @p variant but its ring
     * cursors are not yet re-armed. This is the quiesce window for
     * replay-into-restart: an external replayer must stop publishing
     * before it returns, or events published between the respawn's
     * tail attach and the rewound re-feed would reach the fresh
     * incarnation out of order (see docs/RECORD_REPLAY.md). Runs on
     * the monitor thread — keep it brief.
     */
    std::function<void(std::uint32_t variant, std::uint32_t attempt)>
        on_restart;
};

class Nvx
{
  public:
    class Builder;

    explicit Nvx(EngineConfig config = EngineConfig{});
    ~Nvx();

    VARAN_NO_COPY_NO_MOVE(Nvx);

    /** Spawn all variants (index 0..n-1). Returns once all run. */
    Status start(std::vector<VariantSpec> specs);

    /**
     * Like start(), invoking @p pre_spawn after the shared layout is
     * initialised but before any variant forks — the hook point where
     * record-replay taps attach their ring cursors so they can never
     * miss an event.
     */
    Status start(std::vector<VariantSpec> specs,
                 const std::function<void(Nvx &)> &pre_spawn);

    /** Run the Builder-supplied variant set. */
    Status start();
    Status start(const std::function<void(Nvx &)> &pre_spawn);

    /** Convenience: anonymous entry points — each function becomes a
     *  default VariantSpec (LeaderCandidate, no rules, no restart). */
    Status start(std::vector<VariantFn> variants);
    Status start(std::vector<VariantFn> variants,
                 const std::function<void(Nvx &)> &pre_spawn);

    /** Block until every variant exited or crashed. */
    std::vector<VariantResult> wait();

    /**
     * wait() with a deadline; on expiry the engine is shut down and
     * partial results are returned. Variants still running at the
     * deadline report status == kTimedOutStatus ("killed at timeout"),
     * never a fabricated clean exit.
     */
    std::vector<VariantResult> waitFor(std::uint64_t timeout_ns);

    /** start() + wait(). */
    std::vector<VariantResult> run(std::vector<VariantSpec> specs);
    std::vector<VariantResult> run(); ///< Builder-supplied variants
    /** Convenience: anonymous entry points, default specs. */
    std::vector<VariantResult> run(std::vector<VariantFn> variants);

    // --- coordinator status -------------------------------------------

    /**
     * The unified snapshot: geometry, election state, stream counters,
     * per-variant state/ring-lag/restarts, pool pressure and wire
     * shipper statistics. Readable while variants run; the same bytes
     * a remote peer obtains through the wire Status RPC.
     */
    StatusReport status() const;

    /** status() rendered as a Prometheus-style text metrics page
     *  (core::statusText): ready for a /metrics scrape, a log line, or
     *  an operator's eyeball. Includes the live knob values and the
     *  adaptive controller's sample/decision counters. */
    std::string statusText() const;

    /**
     * The live tuning handle (valid once start() ran). Setters write
     * straight into the shared TuningBlock: the publish coalescer, the
     * flusher and the wire shipper re-read the knobs at batch
     * boundaries, so a change takes effect within one batch — no
     * restart, no reconnect. set() pins the knob by default so the
     * adaptive controller (EngineConfig::adapt) never fights a manual
     * override; unpin() hands it back.
     */
    TuningHandle tuning() const;

    // Narrow accessors kept for convenience (all subsumed by status()).
    int currentLeader() const;
    std::uint32_t epoch() const;
    std::uint64_t eventsStreamed() const;
    std::uint64_t divergencesResolved() const;
    std::uint64_t divergencesFatal() const;
    std::uint64_t fdTransfers() const;
    std::uint64_t publishBatches() const;  ///< coalesced flushes
    std::uint64_t eventsCoalesced() const; ///< events shipped batched
    std::uint64_t poolSpills() const;      ///< global-arena fallbacks

    /** Per-shard payload-pool pressure snapshot. */
    shmem::PoolStats poolStats() const;

    /** The wire shipper when remote shipping is on, else nullptr. */
    wire::Shipper *shipper() const { return shipper_.get(); }

    /** Leader-to-follower distance in events (the "log size" of
     *  section 5.3), maximised over tuples for one follower. */
    std::uint64_t ringLagOf(std::uint32_t variant) const;

    /** Access for record-replay taps and tests. */
    const shmem::Region *region() const { return &region_; }
    const EngineLayout &layout() const { return layout_; }
    ControlBlock *controlBlock() const;

  private:
    [[noreturn]] void zygoteMain();
    void monitorLoop();
    void markVariantDead(std::uint32_t variant, bool crashed);
    void shutdownZygote();

    /** Restart-policy verdict for a just-exited variant. */
    bool shouldRestart(std::uint32_t variant, bool crashed) const;

    /** Re-arm shared state (ring cursors at the stream tail, slot
     *  state, live bit) and ask the zygote to respawn @p variant.
     *  @return false when the respawn could not be requested. */
    bool restartVariant(std::uint32_t variant);

    /** Drain the shared ledger and fire on_divergence_record. */
    void observeDivergences();

    /** Accept loop of the wire Status RPC listener
     *  (RemoteConfig::status_endpoint). */
    void statusServeLoop();

    EngineConfig config_;
    std::vector<VariantSpec> specs_;
    shmem::Region region_;
    EngineLayout layout_;
    ChannelSet channels_;
    std::uint32_t num_variants_ = 0;
    pid_t zygote_pid_ = -1;
    std::thread monitor_thread_;
    bool started_ = false;
    bool finished_ = false;
    std::atomic<bool> shutdown_requested_{false};
    std::vector<VariantResult> results_;
    /** Per-variant "final result recorded" flags; written by the
     *  monitor thread, polled by waitFor() — hence atomic. */
    std::vector<std::atomic<bool>> reaped_;
    /** Respawns performed per variant (coordinator-side ledger). */
    std::vector<std::uint32_t> restarts_;
    /** Ledger records already delivered through on_divergence_record. */
    std::uint64_t ledger_cursor_ = 0;
    /** Zygote messages that raced ahead of the spawn acknowledgements. */
    std::vector<CtrlMsg> early_zygote_msgs_;
    /** Wire Status RPC listener (RemoteConfig::status_endpoint). */
    int status_listen_fd_ = -1;
    std::thread status_thread_;
    std::atomic<bool> status_stop_{false};
    /** Multi-node event shipping (EngineConfig::remote). */
    std::unique_ptr<wire::Shipper> shipper_;
    /** Adaptive knob controller (EngineConfig::adapt). */
    std::unique_ptr<adapt::AutoTuner> autotuner_;
};

/**
 * Fluent construction of a configured engine plus its variant set:
 *
 *   auto nvx = Nvx::Builder()
 *                  .shmBytes(32 << 20)
 *                  .ringCapacity(128)
 *                  .variant(leader_fn)
 *                  .variant(VariantSpec(sanitized_fn)
 *                               .named("asan")
 *                               .as(VariantRole::FollowerOnly))
 *                  .build();
 *   auto results = nvx->run();
 */
class Nvx::Builder
{
  public:
    Builder() = default;

    Builder &
    shmBytes(std::size_t bytes)
    {
        config_.shm_bytes = bytes;
        return *this;
    }

    Builder &
    leaderIndex(std::uint32_t index)
    {
        config_.leader_index = index;
        return *this;
    }

    Builder &
    verifyDivergence(bool on)
    {
        config_.verify_divergence = on;
        return *this;
    }

    Builder &
    externalLeader(bool on)
    {
        config_.external_leader = on;
        return *this;
    }

    /** Append one engine-global BPF rewrite rule. */
    Builder &
    rule(std::string text)
    {
        config_.rewrite_rules.push_back(std::move(text));
        return *this;
    }

    Builder &
    ring(RingConfig ring_config)
    {
        config_.ring = std::move(ring_config);
        return *this;
    }

    Builder &
    ringCapacity(std::uint32_t capacity)
    {
        config_.ring.capacity = capacity;
        return *this;
    }

    Builder &
    progressTimeoutNs(std::uint64_t ns)
    {
        config_.ring.progress_timeout_ns = ns;
        return *this;
    }

    Builder &
    coalesce(CoalesceConfig coalesce_config)
    {
        config_.coalesce = std::move(coalesce_config);
        return *this;
    }

    Builder &
    remote(RemoteConfig remote_config)
    {
        config_.remote = std::move(remote_config);
        return *this;
    }

    /** Serve the wire Status RPC on an abstract socket (varanctl). */
    Builder &
    statusEndpoint(std::string name)
    {
        config_.remote.status_endpoint = std::move(name);
        return *this;
    }

    /** Quorum membership (wire v6): the quorum endpoint of every
     *  member indexed by node id, and this node's own id. */
    Builder &
    quorumMembership(std::uint32_t node_id,
                     std::vector<std::string> members)
    {
        config_.remote.quorum_node_id = node_id;
        config_.remote.quorum_members = std::move(members);
        return *this;
    }

    /** Seed the unified live knob surface (EngineConfig::tuning). */
    Builder &
    tuning(Tuning initial)
    {
        config_.tuning = initial;
        return *this;
    }

    /** Enable/configure the adaptive controller. */
    Builder &
    adapt(AdaptConfig adapt_config)
    {
        config_.adapt = adapt_config;
        return *this;
    }

    /** Shorthand: turn the adaptive controller on with defaults. */
    Builder &
    adaptive(bool on = true)
    {
        config_.adapt.enabled = on;
        return *this;
    }

    /** Toggle the trace layer (flight recorder + histograms). */
    Builder &
    tracing(bool on)
    {
        config_.trace_enabled = on;
        return *this;
    }

    /** Structured divergence hook (full DivergenceRecords). */
    Builder &
    onDivergenceRecord(
        std::function<void(const trace::DivergenceRecord &)> hook)
    {
        config_.on_divergence_record = std::move(hook);
        return *this;
    }

    Builder &
    onFailover(std::function<void(std::uint32_t, std::uint32_t)> hook)
    {
        config_.on_failover = std::move(hook);
        return *this;
    }

    Builder &
    onVariantExit(
        std::function<void(const VariantResult &, bool)> hook)
    {
        config_.on_variant_exit = std::move(hook);
        return *this;
    }

    Builder &
    onRestart(std::function<void(std::uint32_t, std::uint32_t)> hook)
    {
        config_.on_restart = std::move(hook);
        return *this;
    }

    Builder &
    variant(VariantSpec spec)
    {
        specs_.push_back(std::move(spec));
        return *this;
    }

    Builder &
    variant(VariantFn fn)
    {
        specs_.emplace_back(std::move(fn));
        return *this;
    }

    /** Escape hatch for knobs without a dedicated setter. */
    EngineConfig &config() { return config_; }

    /** Create the engine; run()/start() with no arguments use the
     *  variants accumulated here. */
    std::unique_ptr<Nvx>
    build()
    {
        auto nvx = std::make_unique<Nvx>(std::move(config_));
        nvx->specs_ = std::move(specs_);
        return nvx;
    }

  private:
    EngineConfig config_;
    std::vector<VariantSpec> specs_;
};

/**
 * std::thread wrapper that carries the thread-tuple protocol (section
 * 3.3.3): the parent announces the tuple through the event stream, the
 * new thread binds to it, and the same logical thread in every variant
 * ends up wired to the same ring buffer.
 */
class VThread
{
  public:
    template <typename Fn>
    explicit VThread(Fn fn)
    {
        Monitor *monitor = Monitor::instance();
        if (!monitor) {
            thread_ = std::thread(std::move(fn));
            return;
        }
        int tuple = monitor->openTuple();
        thread_ = std::thread([tuple, fn = std::move(fn)]() mutable {
            Monitor::bindThreadToTuple(tuple);
            fn();
        });
    }

    void
    join()
    {
        if (thread_.joinable())
            thread_.join();
    }

    ~VThread() { join(); }

  private:
    std::thread thread_;
};

} // namespace varan::core

#endif // VARAN_CORE_NVX_H
