#include "core/status.h"

namespace varan::core {

namespace {

void
snapshotHistogram(const trace::Histogram &h, HistogramStatus &out)
{
    for (std::size_t i = 0; i < trace::kHistogramBuckets; ++i)
        out.buckets[i] = h.buckets[i].load(std::memory_order_relaxed);
    out.sum = h.sum.load(std::memory_order_relaxed);
    out.count = h.count.load(std::memory_order_relaxed);
}

} // namespace

StatusReport
collectStatus(const shmem::Region *region, const EngineLayout &layout)
{
    StatusReport report = {};
    ControlBlock *cb = layout.controlBlock(region);

    report.num_variants = cb->num_variants;
    report.ring_capacity = cb->ring_capacity;
    report.leader = cb->leader_id.load(std::memory_order_acquire);
    report.epoch = cb->epoch.load(std::memory_order_acquire);
    report.live_mask = cb->live_mask.load(std::memory_order_acquire);
    report.num_tuples = cb->num_tuples.load(std::memory_order_acquire);
    report.stream_generation =
        cb->stream_generation.load(std::memory_order_acquire);
    report.promotions = cb->promotions.load(std::memory_order_acquire);

    report.events_streamed =
        cb->events_streamed.load(std::memory_order_relaxed);
    report.divergences_resolved =
        cb->divergences_resolved.load(std::memory_order_relaxed);
    report.divergences_fatal =
        cb->divergences_fatal.load(std::memory_order_relaxed);
    report.fd_transfers = cb->fd_transfers.load(std::memory_order_relaxed);
    report.publish_batches =
        cb->publish_batches.load(std::memory_order_relaxed);
    report.events_coalesced =
        cb->events_coalesced.load(std::memory_order_relaxed);

    const std::uint32_t tuples =
        report.num_tuples < kMaxTuples ? report.num_tuples : kMaxTuples;
    for (std::uint32_t v = 0; v < kMaxVariants; ++v) {
        const VariantSlot &slot = cb->variants[v];
        VariantStatus &out = report.variants[v];
        out.state = slot.state.load(std::memory_order_acquire);
        out.role = slot.role.load(std::memory_order_acquire);
        out.exit_status = slot.exit_status.load(std::memory_order_acquire);
        out.pid = slot.pid.load(std::memory_order_acquire);
        out.restarts = slot.restarts.load(std::memory_order_acquire);
        out.syscalls = slot.syscalls.load(std::memory_order_relaxed);
        // Leader-to-follower distance (the "log size" of section 5.3),
        // maximised over the variant's attached tuple rings.
        std::uint64_t max_lag = 0;
        if (v < report.num_variants) {
            for (std::uint32_t t = 0; t < tuples; ++t) {
                ring::RingBuffer ring = layout.tupleRing(region, t);
                if (!ring.consumerActive(static_cast<int>(v)))
                    continue;
                std::uint64_t lag = ring.lag(static_cast<int>(v));
                if (lag > max_lag)
                    max_lag = lag;
            }
        }
        out.ring_lag = max_lag;
    }

    report.pool = layout.pool(region).stats();

    report.recorder.active = cb->rr_active.load(std::memory_order_relaxed);
    report.recorder.evicted =
        cb->rr_evicted.load(std::memory_order_relaxed);
    report.recorder.write_errno =
        cb->rr_write_errno.load(std::memory_order_relaxed);
    report.recorder.events = cb->rr_events.load(std::memory_order_relaxed);
    report.recorder.bytes_written =
        cb->rr_bytes_written.load(std::memory_order_relaxed);
    report.recorder.spill_peak =
        cb->rr_spill_peak.load(std::memory_order_relaxed);

    const TuningBlock &tuning = cb->tuning;
    report.adapt.active =
        tuning.adapt_active.load(std::memory_order_acquire);
    report.adapt.pinned_mask =
        tuning.pinned_mask.load(std::memory_order_acquire);
    report.adapt.samples =
        tuning.adapt_samples.load(std::memory_order_relaxed);
    report.adapt.decisions =
        tuning.adapt_decisions.load(std::memory_order_relaxed);
    report.adapt.fastpath_hits =
        tuning.fastpath_hits.load(std::memory_order_relaxed);
    report.adapt.ship_batch =
        static_cast<std::uint32_t>(liveKnob(tuning, Knob::ShipBatch));
    report.adapt.credit_window =
        static_cast<std::uint32_t>(liveKnob(tuning, Knob::CreditWindow));
    report.adapt.coalesce_run =
        static_cast<std::uint32_t>(liveKnob(tuning, Knob::CoalesceRun));
    report.adapt.fastpath_top_k =
        static_cast<std::uint32_t>(liveKnob(tuning, Knob::FastpathTopK));
    report.adapt.coalesce_window_ns =
        liveKnob(tuning, Knob::CoalesceWindowNs);
    for (std::uint32_t i = 0; i < kFastPathSlots; ++i) {
        report.adapt.fastpath_nrs[i] =
            tuning.fastpath_nrs[i].load(std::memory_order_relaxed);
    }

    const trace::TraceBlock &tb = cb->trace;
    report.trace.enabled = tb.enabled.load(std::memory_order_relaxed);
    report.trace.trace_records =
        tb.trace_head.load(std::memory_order_relaxed);
    report.trace.ledger_records =
        tb.ledger_head.load(std::memory_order_relaxed);
    snapshotHistogram(tb.publish_lag, report.trace.publish_lag);
    snapshotHistogram(tb.coalesce_dwell, report.trace.coalesce_dwell);
    snapshotHistogram(tb.credit_stall, report.trace.credit_stall);
    snapshotHistogram(tb.blackout, report.trace.blackout);
    // Tail of the divergence ledger, oldest first.
    std::uint64_t cursor = report.trace.ledger_records;
    cursor = cursor > TraceStatus::kRecent ? cursor - TraceStatus::kRecent
                                           : 0;
    report.trace.recent_count = static_cast<std::uint32_t>(
        trace::ledgerRead(tb, &cursor, report.trace.recent,
                          TraceStatus::kRecent));
    return report;
}

namespace {

void
metric(std::string &out, const char *name, const char *type,
       const char *help, std::uint64_t value)
{
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
}

/** Render one log2 histogram as cumulative Prometheus buckets: 31
 *  finite `le` bounds (2^i - 1 ns — the last shared-memory bucket
 *  absorbs overflow and only appears under `+Inf`), then the
 *  `_sum`/`_count` pair. */
void
histogramMetric(std::string &out, const char *name, const char *help,
                const HistogramStatus &h)
{
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " histogram\n";
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i + 1 < trace::kHistogramBuckets; ++i) {
        cumulative += h.buckets[i];
        out += name;
        out += "_bucket{le=\"";
        out += std::to_string(trace::histogramBound(i));
        out += "\"} ";
        out += std::to_string(cumulative);
        out += '\n';
    }
    cumulative += h.buckets[trace::kHistogramBuckets - 1];
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(cumulative);
    out += '\n';
    out += name;
    out += "_sum ";
    out += std::to_string(h.sum);
    out += '\n';
    out += name;
    out += "_count ";
    out += std::to_string(h.count);
    out += '\n';
}

void
variantMetric(std::string &out, const char *name, const char *type,
              const char *help, const StatusReport &report,
              std::uint64_t (*pick)(const VariantStatus &))
{
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    for (std::uint32_t v = 0; v < report.num_variants; ++v) {
        out += name;
        out += "{variant=\"";
        out += std::to_string(v);
        out += "\"} ";
        out += std::to_string(pick(report.variants[v]));
        out += '\n';
    }
}

} // namespace

std::string
statusText(const StatusReport &report)
{
    std::string out;
    out.reserve(4096);

    // Geometry + election state.
    metric(out, "varan_num_variants", "gauge",
           "Variants configured on this engine", report.num_variants);
    metric(out, "varan_ring_capacity", "gauge",
           "Per-tuple ring capacity (events)", report.ring_capacity);
    metric(out, "varan_leader", "gauge",
           "Current leader variant id (4294967295 = none)", report.leader);
    metric(out, "varan_epoch", "counter", "Leader elections performed",
           report.epoch);
    metric(out, "varan_live_mask", "gauge", "Bitmask of running variants",
           report.live_mask);
    metric(out, "varan_num_tuples", "gauge", "Live thread/process tuples",
           report.num_tuples);
    metric(out, "varan_stream_generation", "gauge",
           "Event stream generation (bumped on cross-node promotion)",
           report.stream_generation);
    metric(out, "varan_promotions_total", "counter",
           "Leader promotions performed on this engine",
           report.promotions);

    // Stream counters.
    metric(out, "varan_events_streamed_total", "counter",
           "Events published into the tuple rings",
           report.events_streamed);
    metric(out, "varan_divergences_resolved_total", "counter",
           "Divergences resolved by rewrite rules",
           report.divergences_resolved);
    metric(out, "varan_divergences_fatal_total", "counter",
           "Fatal divergences", report.divergences_fatal);
    metric(out, "varan_fd_transfers_total", "counter",
           "Descriptor transfers to followers", report.fd_transfers);
    metric(out, "varan_publish_batches_total", "counter",
           "Coalesced publish flushes", report.publish_batches);
    metric(out, "varan_events_coalesced_total", "counter",
           "Events shipped through coalesced runs",
           report.events_coalesced);

    // Per-variant series.
    variantMetric(out, "varan_variant_state", "gauge",
                  "Variant state (0 empty, 1 running, 2 crashed, 3 exited)",
                  report,
                  [](const VariantStatus &v) -> std::uint64_t {
                      return v.state;
                  });
    variantMetric(out, "varan_variant_syscalls_total", "counter",
                  "Syscalls dispatched by the variant", report,
                  [](const VariantStatus &v) -> std::uint64_t {
                      return v.syscalls;
                  });
    variantMetric(out, "varan_variant_ring_lag", "gauge",
                  "Leader-to-follower event distance (max over tuples)",
                  report,
                  [](const VariantStatus &v) -> std::uint64_t {
                      return v.ring_lag;
                  });
    variantMetric(out, "varan_variant_restarts_total", "counter",
                  "Respawns performed by the restart policy", report,
                  [](const VariantStatus &v) -> std::uint64_t {
                      return v.restarts;
                  });

    // Pool pressure.
    metric(out, "varan_pool_spills_total", "counter",
           "Arena exhaustions spilled to the global fallback",
           report.pool.spills);
    metric(out, "varan_pool_global_live_chunks", "gauge",
           "Allocations outstanding in the global fallback arena",
           report.pool.global.live_chunks);

    // Wire shipper.
    metric(out, "varan_shipper_active", "gauge",
           "A wire shipper exists on this engine", report.shipper.active);
    metric(out, "varan_shipper_link_up", "gauge",
           "At least one peer link is usable", report.shipper.link_up);
    metric(out, "varan_shipper_peers", "gauge",
           "Registered receiver sessions", report.shipper.peers);
    metric(out, "varan_shipper_frames_total", "counter",
           "Frames transmitted (per peer)", report.shipper.frames);
    metric(out, "varan_shipper_events_total", "counter",
           "Events drained from the rings", report.shipper.events);
    metric(out, "varan_shipper_bytes_total", "counter",
           "Bytes transmitted", report.shipper.bytes);
    metric(out, "varan_shipper_credit_stalls_total", "counter",
           "Drain passes gated by a closed credit window",
           report.shipper.credit_stalls);
    metric(out, "varan_shipper_drain_passes_total", "counter",
           "Drain passes that found ring backlog",
           report.shipper.drain_passes);
    metric(out, "varan_shipper_status_pushes_total", "counter",
           "Unsolicited Status frame broadcasts",
           report.shipper.status_pushes);

    // Wire receiver.
    metric(out, "varan_receiver_active", "gauge",
           "A wire receiver feeds this engine", report.receiver.active);
    metric(out, "varan_receiver_events_total", "counter",
           "Events materialized from the wire", report.receiver.events);
    metric(out, "varan_receiver_promoted", "gauge",
           "This node took over leadership", report.receiver.promoted);
    metric(out, "varan_receiver_fenced", "gauge",
           "This node fenced itself off the quorum (buffering only)",
           report.receiver.fenced);

    // Quorum control plane (wire v6).
    metric(out, "varan_quorum_active", "gauge",
           "A quorum lease manager runs on this node",
           report.quorum.active);
    metric(out, "varan_quorum_members", "gauge",
           "Configured quorum membership size (incl. this node)",
           report.quorum.members);
    metric(out, "varan_quorum_live_members", "gauge",
           "Members currently heard from (incl. this node)",
           report.quorum.live_members);
    metric(out, "varan_quorum_term", "gauge",
           "Current lease term", report.quorum.term);
    metric(out, "varan_quorum_holder", "gauge",
           "Live lease holder node id (4294967295 = none)",
           report.quorum.holder);
    metric(out, "varan_quorum_elections_total", "counter",
           "Election rounds started by this node",
           report.quorum.elections);
    metric(out, "varan_quorum_leases_won_total", "counter",
           "Election rounds that reached a quorum of grants",
           report.quorum.leases_won);
    metric(out, "varan_quorum_votes_granted_total", "counter",
           "Vote grants this node handed to peer candidates",
           report.quorum.votes_granted);
    metric(out, "varan_quorum_fences_total", "counter",
           "Fence orders received by this node", report.quorum.fences);

    // Recorder.
    metric(out, "varan_recorder_active", "gauge",
           "Record-replay taps are attached", report.recorder.active);
    metric(out, "varan_recorder_events_total", "counter",
           "Records drained by the rr sink", report.recorder.events);

    // Live tuning + adaptive controller.
    metric(out, "varan_adapt_active", "gauge",
           "An AutoTuner thread is running", report.adapt.active);
    metric(out, "varan_adapt_samples_total", "counter",
           "Controller sampling ticks taken", report.adapt.samples);
    metric(out, "varan_adapt_decisions_total", "counter",
           "Knob adjustments applied by the controller",
           report.adapt.decisions);
    metric(out, "varan_adapt_pinned_mask", "gauge",
           "Bitmask of knobs pinned against adaptation",
           report.adapt.pinned_mask);
    metric(out, "varan_fastpath_hits_total", "counter",
           "Leader dispatches taken by the top-k fast path",
           report.adapt.fastpath_hits);
    metric(out, "varan_tuning_ship_batch", "gauge",
           "Live ship batch (events per wire frame)",
           report.adapt.ship_batch);
    metric(out, "varan_tuning_credit_window", "gauge",
           "Live credit window (unacked events per tuple per peer)",
           report.adapt.credit_window);
    metric(out, "varan_tuning_coalesce_run", "gauge",
           "Live publish-coalescing run cap", report.adapt.coalesce_run);
    metric(out, "varan_tuning_coalesce_window_ns", "gauge",
           "Live coalesce staleness window (ns)",
           report.adapt.coalesce_window_ns);
    metric(out, "varan_tuning_fastpath_top_k", "gauge",
           "Live hot-syscall fast-path width (0 = off)",
           report.adapt.fastpath_top_k);

    // Observability: flight recorder, latency histograms, divergence
    // ledger. Every metric name added here must be documented in
    // docs/OBSERVABILITY.md (CI greps for it).
    metric(out, "varan_trace_enabled", "gauge",
           "Flight recorder and latency histograms are on",
           report.trace.enabled);
    metric(out, "varan_trace_records_total", "counter",
           "Flight-recorder stamps written (ring keeps the last 2048)",
           report.trace.trace_records);
    metric(out, "varan_divergence_records_total", "counter",
           "Structured divergence ledger appends",
           report.trace.ledger_records);
    histogramMetric(out, "varan_publish_lag_ns",
                    "Event creation to follower dispatch (sampled 1-in-64)",
                    report.trace.publish_lag);
    histogramMetric(out, "varan_coalesce_dwell_ns",
                    "First coalesced add to batch flush",
                    report.trace.coalesce_dwell);
    histogramMetric(out, "varan_credit_stall_ns",
                    "Wire drain stalled on a closed credit window",
                    report.trace.credit_stall);
    histogramMetric(out, "varan_blackout_ns",
                    "Leader death to first post-promotion publish",
                    report.trace.blackout);
    return out;
}

} // namespace varan::core
