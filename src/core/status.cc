#include "core/status.h"

namespace varan::core {

StatusReport
collectStatus(const shmem::Region *region, const EngineLayout &layout)
{
    StatusReport report = {};
    ControlBlock *cb = layout.controlBlock(region);

    report.num_variants = cb->num_variants;
    report.ring_capacity = cb->ring_capacity;
    report.leader = cb->leader_id.load(std::memory_order_acquire);
    report.epoch = cb->epoch.load(std::memory_order_acquire);
    report.live_mask = cb->live_mask.load(std::memory_order_acquire);
    report.num_tuples = cb->num_tuples.load(std::memory_order_acquire);
    report.stream_generation =
        cb->stream_generation.load(std::memory_order_acquire);
    report.promotions = cb->promotions.load(std::memory_order_acquire);

    report.events_streamed =
        cb->events_streamed.load(std::memory_order_relaxed);
    report.divergences_resolved =
        cb->divergences_resolved.load(std::memory_order_relaxed);
    report.divergences_fatal =
        cb->divergences_fatal.load(std::memory_order_relaxed);
    report.fd_transfers = cb->fd_transfers.load(std::memory_order_relaxed);
    report.publish_batches =
        cb->publish_batches.load(std::memory_order_relaxed);
    report.events_coalesced =
        cb->events_coalesced.load(std::memory_order_relaxed);

    const std::uint32_t tuples =
        report.num_tuples < kMaxTuples ? report.num_tuples : kMaxTuples;
    for (std::uint32_t v = 0; v < kMaxVariants; ++v) {
        const VariantSlot &slot = cb->variants[v];
        VariantStatus &out = report.variants[v];
        out.state = slot.state.load(std::memory_order_acquire);
        out.role = slot.role.load(std::memory_order_acquire);
        out.exit_status = slot.exit_status.load(std::memory_order_acquire);
        out.pid = slot.pid.load(std::memory_order_acquire);
        out.restarts = slot.restarts.load(std::memory_order_acquire);
        out.syscalls = slot.syscalls.load(std::memory_order_relaxed);
        // Leader-to-follower distance (the "log size" of section 5.3),
        // maximised over the variant's attached tuple rings.
        std::uint64_t max_lag = 0;
        if (v < report.num_variants) {
            for (std::uint32_t t = 0; t < tuples; ++t) {
                ring::RingBuffer ring = layout.tupleRing(region, t);
                if (!ring.consumerActive(static_cast<int>(v)))
                    continue;
                std::uint64_t lag = ring.lag(static_cast<int>(v));
                if (lag > max_lag)
                    max_lag = lag;
            }
        }
        out.ring_lag = max_lag;
    }

    report.pool = layout.pool(region).stats();

    report.recorder.active = cb->rr_active.load(std::memory_order_relaxed);
    report.recorder.evicted =
        cb->rr_evicted.load(std::memory_order_relaxed);
    report.recorder.write_errno =
        cb->rr_write_errno.load(std::memory_order_relaxed);
    report.recorder.events = cb->rr_events.load(std::memory_order_relaxed);
    report.recorder.bytes_written =
        cb->rr_bytes_written.load(std::memory_order_relaxed);
    report.recorder.spill_peak =
        cb->rr_spill_peak.load(std::memory_order_relaxed);
    return report;
}

} // namespace varan::core
