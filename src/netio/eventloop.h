/**
 * @file
 * Minimal epoll-based event loop over the varan::sys layer — the
 * reactor at the heart of every C10k server in src/apps, shaped like
 * the loops in Lighttpd/Redis/Memcached so the engine sees the same
 * syscall profile (epoll_wait, accept4, read, write, close).
 */

#ifndef VARAN_NETIO_EVENTLOOP_H
#define VARAN_NETIO_EVENTLOOP_H

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace varan::netio {

class EventLoop
{
  public:
    /** Handler receives the epoll event mask for its descriptor. */
    using Handler = std::function<void(std::uint32_t events)>;

    EventLoop();
    ~EventLoop();

    VARAN_NO_COPY_NO_MOVE(EventLoop);

    bool valid() const { return epoll_fd_ >= 0; }

    Status add(int fd, std::uint32_t events, Handler handler);
    Status modify(int fd, std::uint32_t events);

    /**
     * Unregister a descriptor. Safe to call from inside a handler —
     * including the handler being removed: during dispatch the
     * unregistration takes effect immediately (no later handler in the
     * same pass fires for the fd) but the handler object is destroyed
     * only after the pass, so a self-removing handler never frees the
     * closure it is executing.
     */
    void remove(int fd);

    /**
     * Run until stop() is called. Each iteration waits up to
     * @p tick_ms so a stop request is honoured promptly.
     */
    void run(int tick_ms = 100);

    /** One epoll_wait + dispatch pass; returns events handled. */
    int runOnce(int timeout_ms);

    void stop() { stopping_ = true; }
    std::uint64_t iterations() const { return iterations_; }

  private:
    bool removedThisPass(int fd) const;

    int epoll_fd_ = -1;
    bool stopping_ = false;
    bool dispatching_ = false;
    std::uint64_t iterations_ = 0;
    std::unordered_map<int, Handler> handlers_;
    /** Descriptors removed during the current dispatch pass; their
     *  handlers are erased once the pass finishes. */
    std::vector<int> deferred_removals_;
    /** Handlers re-added during the pass for fds removed in the same
     *  pass; installed once the old handler is safely dead. */
    std::vector<std::pair<int, Handler>> pending_adds_;
};

} // namespace varan::netio

#endif // VARAN_NETIO_EVENTLOOP_H
