#include "netio/eventloop.h"

#include <sys/epoll.h>

#include "syscalls/sys.h"

namespace varan::netio {

EventLoop::EventLoop()
{
    long fd = sys::vepoll_create1(0);
    epoll_fd_ = fd >= 0 ? static_cast<int>(fd) : -1;
}

EventLoop::~EventLoop()
{
    if (epoll_fd_ >= 0)
        sys::vclose(epoll_fd_);
}

Status
EventLoop::add(int fd, std::uint32_t events, Handler handler)
{
    struct epoll_event ev = {};
    ev.events = events;
    ev.data.fd = fd;
    long rc = sys::vepoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    if (rc < 0)
        return Status(Errno{static_cast<int>(-rc)});
    handlers_[fd] = std::move(handler);
    return Status::ok();
}

Status
EventLoop::modify(int fd, std::uint32_t events)
{
    struct epoll_event ev = {};
    ev.events = events;
    ev.data.fd = fd;
    long rc = sys::vepoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    if (rc < 0)
        return Status(Errno{static_cast<int>(-rc)});
    return Status::ok();
}

void
EventLoop::remove(int fd)
{
    sys::vepoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    handlers_.erase(fd);
}

int
EventLoop::runOnce(int timeout_ms)
{
    struct epoll_event events[64];
    long n = sys::vepoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n <= 0)
        return 0;
    for (long i = 0; i < n; ++i) {
        auto it = handlers_.find(events[i].data.fd);
        if (it != handlers_.end())
            it->second(events[i].events);
    }
    ++iterations_;
    return static_cast<int>(n);
}

void
EventLoop::run(int tick_ms)
{
    stopping_ = false;
    while (!stopping_)
        runOnce(tick_ms);
}

} // namespace varan::netio
