#include "netio/eventloop.h"

#include <sys/epoll.h>

#include "syscalls/sys.h"

namespace varan::netio {

EventLoop::EventLoop()
{
    long fd = sys::vepoll_create1(0);
    epoll_fd_ = fd >= 0 ? static_cast<int>(fd) : -1;
}

EventLoop::~EventLoop()
{
    if (epoll_fd_ >= 0)
        sys::vclose(epoll_fd_);
}

Status
EventLoop::add(int fd, std::uint32_t events, Handler handler)
{
    struct epoll_event ev = {};
    ev.events = events;
    ev.data.fd = fd;
    long rc = sys::vepoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    if (rc < 0)
        return Status(Errno{static_cast<int>(-rc)});
    if (dispatching_ &&
        (removedThisPass(fd) || handlers_.count(fd) != 0)) {
        // The old handler (possibly the one executing right now, if a
        // handler re-registers its own fd) must outlive the pass;
        // destroying it here would free an executing closure. The
        // replacement is installed once the pass finishes.
        for (auto &entry : pending_adds_) {
            if (entry.first == fd) {
                entry.second = std::move(handler); // newest add wins
                return Status::ok();
            }
        }
        pending_adds_.emplace_back(fd, std::move(handler));
        return Status::ok();
    }
    handlers_[fd] = std::move(handler);
    return Status::ok();
}

Status
EventLoop::modify(int fd, std::uint32_t events)
{
    struct epoll_event ev = {};
    ev.events = events;
    ev.data.fd = fd;
    long rc = sys::vepoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    if (rc < 0)
        return Status(Errno{static_cast<int>(-rc)});
    return Status::ok();
}

void
EventLoop::remove(int fd)
{
    sys::vepoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    if (dispatching_) {
        // Erasing now would destroy a std::function that may be the
        // one currently executing (a handler closing its own fd);
        // defer the erase to the end of the dispatch pass. A handler
        // re-added earlier in this same pass is cancelled outright —
        // the final remove wins.
        for (auto it = pending_adds_.begin(); it != pending_adds_.end();
             ++it) {
            if (it->first == fd) {
                pending_adds_.erase(it);
                break;
            }
        }
        deferred_removals_.push_back(fd);
        return;
    }
    handlers_.erase(fd);
}

bool
EventLoop::removedThisPass(int fd) const
{
    for (int removed : deferred_removals_) {
        if (removed == fd)
            return true;
    }
    return false;
}

int
EventLoop::runOnce(int timeout_ms)
{
    struct epoll_event events[64];
    long n = sys::vepoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n <= 0)
        return 0;
    dispatching_ = true;
    for (long i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (removedThisPass(fd))
            continue; // an earlier handler unregistered it
        auto it = handlers_.find(fd);
        if (it != handlers_.end())
            it->second(events[i].events);
    }
    dispatching_ = false;
    for (int fd : deferred_removals_)
        handlers_.erase(fd);
    deferred_removals_.clear();
    for (auto &entry : pending_adds_)
        handlers_[entry.first] = std::move(entry.second);
    pending_adds_.clear();
    ++iterations_;
    return static_cast<int>(n);
}

void
EventLoop::run(int tick_ms)
{
    stopping_ = false;
    while (!stopping_)
        runOnce(tick_ms);
}

} // namespace varan::netio
