/**
 * @file
 * Socket plumbing for the in-tree server applications and workload
 * drivers. Servers route everything through varan::sys so the NVX
 * engine intercepts it; drivers run outside the engine where the same
 * calls fall through to raw syscalls.
 *
 * Listening endpoints use abstract-namespace UNIX sockets (no
 * filesystem cleanup, no port collisions between benchmarks) with TCP
 * loopback available where a bench wants it.
 */

#ifndef VARAN_NETIO_SOCKETIO_H
#define VARAN_NETIO_SOCKETIO_H

#include <string>

#include "common/result.h"

namespace varan::netio {

/** Create, bind and listen on an abstract UNIX socket. */
Result<int> listenAbstract(const std::string &name, int backlog = 64);

/** Connect to an abstract UNIX socket (retries while the server is
 *  still starting, up to @p timeout_ms). */
Result<int> connectAbstract(const std::string &name,
                            int timeout_ms = 5000);

/** Create, bind and listen on 127.0.0.1:@p port. */
Result<int> listenTcp(std::uint16_t port, int backlog = 64);

/** Connect to 127.0.0.1:@p port. */
Result<int> connectTcp(std::uint16_t port, int timeout_ms = 5000);

/** accept4 with CLOEXEC; returns the connection fd. */
long acceptConnection(int listen_fd, bool nonblocking);

/** Wait up to @p timeout_ms for @p fd to become readable (a listening
 *  socket: an acceptable connection). EINTR is retried within the
 *  deadline. @return true when readable, false on timeout or error —
 *  the deadline-bounded accept loops of multi-node failover tests and
 *  operators hang on this instead of a blocking accept. */
bool waitReadable(int fd, int timeout_ms);

/** Blocking send/recv helpers over the sys layer. */
Status sendAll(int fd, const void *data, std::size_t len);
Result<std::string> recvSome(int fd, std::size_t max = 4096);

/** Read until @p delim appears (or EOF/error); returns everything. */
Result<std::string> recvUntil(int fd, const std::string &delim,
                              std::size_t max_bytes = 1 << 20);

} // namespace varan::netio

#endif // VARAN_NETIO_SOCKETIO_H
