#include "netio/socketio.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>

#include "common/clock.h"
#include "syscalls/sys.h"

namespace varan::netio {

namespace {

socklen_t
fillAbstract(struct sockaddr_un *addr, const std::string &name)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    addr->sun_path[0] = '\0';
    std::size_t n = std::min(name.size(), sizeof(addr->sun_path) - 2);
    std::memcpy(addr->sun_path + 1, name.data(), n);
    return static_cast<socklen_t>(offsetof(struct sockaddr_un, sun_path) +
                                  1 + n);
}

} // namespace

Result<int>
listenAbstract(const std::string &name, int backlog)
{
    long fd = sys::vsocket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Result<int>(Errno{static_cast<int>(-fd)});
    struct sockaddr_un addr;
    socklen_t len = fillAbstract(&addr, name);
    long rc = sys::vbind(static_cast<int>(fd),
                         reinterpret_cast<struct sockaddr *>(&addr), len);
    if (rc < 0) {
        sys::vclose(static_cast<int>(fd));
        return Result<int>(Errno{static_cast<int>(-rc)});
    }
    rc = sys::vlisten(static_cast<int>(fd), backlog);
    if (rc < 0) {
        sys::vclose(static_cast<int>(fd));
        return Result<int>(Errno{static_cast<int>(-rc)});
    }
    return static_cast<int>(fd);
}

Result<int>
connectAbstract(const std::string &name, int timeout_ms)
{
    struct sockaddr_un addr;
    socklen_t len = fillAbstract(&addr, name);
    const std::uint64_t deadline =
        monotonicNs() + std::uint64_t(timeout_ms) * 1000000ULL;
    for (;;) {
        long fd = sys::vsocket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return Result<int>(Errno{static_cast<int>(-fd)});
        long rc = sys::vconnect(static_cast<int>(fd),
                                reinterpret_cast<struct sockaddr *>(&addr),
                                len);
        if (rc >= 0)
            return static_cast<int>(fd);
        sys::vclose(static_cast<int>(fd));
        if (rc != -ECONNREFUSED || monotonicNs() >= deadline)
            return Result<int>(Errno{static_cast<int>(-rc)});
        sleepNs(2000000); // server still booting; retry in 2 ms
    }
}

Result<int>
listenTcp(std::uint16_t port, int backlog)
{
    long fd = sys::vsocket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Result<int>(Errno{static_cast<int>(-fd)});
    int one = 1;
    sys::vsetsockopt(static_cast<int>(fd), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    long rc = sys::vbind(static_cast<int>(fd),
                         reinterpret_cast<struct sockaddr *>(&addr),
                         sizeof(addr));
    if (rc < 0) {
        sys::vclose(static_cast<int>(fd));
        return Result<int>(Errno{static_cast<int>(-rc)});
    }
    rc = sys::vlisten(static_cast<int>(fd), backlog);
    if (rc < 0) {
        sys::vclose(static_cast<int>(fd));
        return Result<int>(Errno{static_cast<int>(-rc)});
    }
    return static_cast<int>(fd);
}

Result<int>
connectTcp(std::uint16_t port, int timeout_ms)
{
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const std::uint64_t deadline =
        monotonicNs() + std::uint64_t(timeout_ms) * 1000000ULL;
    for (;;) {
        long fd = sys::vsocket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return Result<int>(Errno{static_cast<int>(-fd)});
        long rc = sys::vconnect(static_cast<int>(fd),
                                reinterpret_cast<struct sockaddr *>(&addr),
                                sizeof(addr));
        if (rc >= 0) {
            int one = 1;
            sys::vsetsockopt(static_cast<int>(fd), IPPROTO_TCP,
                             TCP_NODELAY, &one, sizeof(one));
            return static_cast<int>(fd);
        }
        sys::vclose(static_cast<int>(fd));
        if (rc != -ECONNREFUSED || monotonicNs() >= deadline)
            return Result<int>(Errno{static_cast<int>(-rc)});
        sleepNs(2000000);
    }
}

long
acceptConnection(int listen_fd, bool nonblocking)
{
    return sys::vaccept4(listen_fd, nullptr, nullptr,
                         nonblocking ? SOCK_NONBLOCK : 0);
}

bool
waitReadable(int fd, int timeout_ms)
{
    // Plain libc, like the wire I/O helpers: the callers (failover
    // accept loops, test harnesses) run in coordinator context where
    // nothing must stream through an installed Dispatcher.
    struct pollfd pfd = {fd, POLLIN, 0};
    const std::uint64_t deadline =
        monotonicNs() + static_cast<std::uint64_t>(timeout_ms) * 1000000ULL;
    for (;;) {
        int n = ::poll(&pfd, 1, timeout_ms);
        if (n > 0)
            return (pfd.revents & POLLIN) != 0;
        if (n == 0)
            return false;
        if (errno != EINTR)
            return false;
        // Interrupted: retry with whatever time is left.
        const std::uint64_t now = monotonicNs();
        if (now >= deadline)
            return false;
        timeout_ms = static_cast<int>((deadline - now) / 1000000ULL);
        if (timeout_ms <= 0)
            return false;
    }
}

Status
sendAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        long n = sys::vwrite(fd, p, len);
        if (n < 0) {
            if (n == -EINTR)
                continue;
            return Status(Errno{static_cast<int>(-n)});
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return Status::ok();
}

Result<std::string>
recvSome(int fd, std::size_t max)
{
    std::string buf(max, '\0');
    for (;;) {
        long n = sys::vread(fd, buf.data(), max);
        if (n == -EINTR)
            continue;
        if (n < 0)
            return Result<std::string>(Errno{static_cast<int>(-n)});
        buf.resize(static_cast<std::size_t>(n));
        return buf;
    }
}

Result<std::string>
recvUntil(int fd, const std::string &delim, std::size_t max_bytes)
{
    std::string out;
    char chunk[1024];
    while (out.size() < max_bytes) {
        long n = sys::vread(fd, chunk, sizeof(chunk));
        if (n == -EINTR)
            continue;
        if (n < 0)
            return Result<std::string>(Errno{static_cast<int>(-n)});
        if (n == 0)
            return out; // EOF
        out.append(chunk, static_cast<std::size_t>(n));
        if (out.find(delim) != std::string::npos)
            return out;
    }
    return out;
}

} // namespace varan::netio
