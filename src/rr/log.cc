#include "rr/log.h"

#include <cstdio>
#include <cstring>

namespace varan::rr {

Result<std::vector<LogRecord>>
readLog(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return errnoResult<std::vector<LogRecord>>();

    LogHeader header = {};
    if (std::fread(&header, sizeof(header), 1, file) != 1 ||
        std::memcmp(header.magic, kLogMagic, sizeof(kLogMagic)) != 0) {
        std::fclose(file);
        return Result<std::vector<LogRecord>>(Errno{EPROTO});
    }

    std::vector<LogRecord> records;
    RecordHeader rec = {};
    while (std::fread(&rec, sizeof(rec), 1, file) == 1) {
        LogRecord out;
        out.tuple = rec.tuple;
        out.event = rec.event;
        out.payload.resize(rec.payload_size);
        if (rec.payload_size > 0 &&
            std::fread(out.payload.data(), 1, rec.payload_size, file) !=
                rec.payload_size) {
            std::fclose(file);
            return Result<std::vector<LogRecord>>(Errno{EPROTO});
        }
        records.push_back(std::move(out));
    }
    std::fclose(file);
    return records;
}

} // namespace varan::rr
