#include "rr/log.h"

#include <cstring>
#include <fcntl.h>
#include <unistd.h>


namespace varan::rr {

void
appendRecord(std::vector<std::uint8_t> &out, std::uint32_t tuple,
             const ring::Event &event, const void *payload,
             std::size_t payload_size)
{
    RecordHeader rec = {};
    rec.tuple = tuple;
    rec.payload_size = static_cast<std::uint32_t>(payload_size);
    rec.event = event;
    rec.record_crc = recordChecksum(rec, payload);

    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&rec);
    out.insert(out.end(), bytes, bytes + sizeof(rec));
    if (payload_size > 0) {
        const auto *p = static_cast<const std::uint8_t *>(payload);
        out.insert(out.end(), p, p + payload_size);
    }
}

// --- LogReader -----------------------------------------------------------

LogReader::~LogReader() { close(); }

Status
LogReader::open(const std::string &path)
{
    close();
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        return Status::fromErrno();

    LogHeader header = {};
    if (std::fread(&header, sizeof(header), 1, file_) != 1 ||
        std::memcmp(header.magic, kLogMagic, sizeof(kLogMagic)) != 0) {
        close();
        return Status(Errno{EPROTO});
    }
    if (header.version != 1 && header.version != kLogVersion) {
        // Unknown version: reject decodably instead of parsing the
        // record bytes with the wrong layout.
        close();
        return Status(Errno{ENOTSUP});
    }
    version_ = header.version;
    done_ = false;
    truncated_ = false;
    return Status::ok();
}

LogReader::Next
LogReader::next(LogRecord *out)
{
    if (!file_ || done_)
        return truncated_ ? Next::Truncated : Next::End;

    RecordHeader rec = {};
    const std::size_t header_size =
        version_ == 1 ? sizeof(RecordHeaderV1) : sizeof(RecordHeader);
    const std::size_t got = std::fread(&rec, 1, header_size, file_);
    if (got != header_size) {
        done_ = true;
        truncated_ = got != 0; // a partial header is a torn tail
        return truncated_ ? Next::Truncated : Next::End;
    }

    out->tuple = rec.tuple;
    out->event = rec.event;
    out->payload.resize(rec.payload_size);
    if (rec.payload_size > 0 &&
        std::fread(out->payload.data(), 1, rec.payload_size, file_) !=
            rec.payload_size) {
        done_ = true;
        truncated_ = true;
        return Next::Truncated;
    }
    if (version_ >= 2) {
        const std::uint32_t crc = recordChecksum(
            rec, out->payload.empty() ? nullptr : out->payload.data());
        if (crc != rec.record_crc) {
            // A record that fails its checksum ends the valid prefix;
            // everything already yielded stays good.
            done_ = true;
            truncated_ = true;
            return Next::Truncated;
        }
    }
    return Next::Record;
}

Status
LogReader::rewind()
{
    if (!file_)
        return Status(Errno{EBADF});
    if (std::fseek(file_, sizeof(LogHeader), SEEK_SET) != 0)
        return Status::fromErrno();
    done_ = false;
    truncated_ = false;
    return Status::ok();
}

void
LogReader::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    version_ = 0;
    done_ = false;
    truncated_ = false;
}

// --- LogWriter -----------------------------------------------------------

LogWriter::~LogWriter()
{
    if (fd_ >= 0)
        close();
}

Status
LogWriter::latch(int err)
{
    if (errno_ == 0)
        errno_ = err;
    return Status(Errno{errno_});
}

Status
LogWriter::open(const std::string &path)
{
    fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd_ < 0)
        return latch(errno);
    path_ = path;

    LogHeader header = {};
    std::memcpy(header.magic, kLogMagic, sizeof(kLogMagic));
    header.version = kLogVersion;
    if (!writeFileFull(fd_, &header, sizeof(header))) {
        const int err = errno != 0 ? errno : EIO;
        discard();
        return latch(err);
    }
    bytes_written_ += sizeof(header);
    return Status::ok();
}

Status
LogWriter::append(std::uint32_t tuple, const ring::Event &event,
                  const void *payload, std::size_t payload_size)
{
    if (errno_ != 0)
        return Status(Errno{errno_});
    if (fd_ < 0)
        return Status(Errno{EBADF});
    appendRecord(buf_, tuple, event, payload, payload_size);
    ++records_;
    if (buf_.size() > flush_threshold_)
        return flush();
    return Status::ok();
}

Status
LogWriter::flush()
{
    if (errno_ != 0)
        return Status(Errno{errno_});
    if (buf_.empty())
        return Status::ok();
    if (!writeFileFull(fd_, buf_.data(), buf_.size()))
        return latch(errno != 0 ? errno : EIO);
    bytes_written_ += buf_.size();
    buf_.clear();
    return Status::ok();
}

Status
LogWriter::close()
{
    Status flushed = flush();
    if (fd_ >= 0) {
        if (::close(fd_) != 0 && errno_ == 0)
            errno_ = errno;
        fd_ = -1;
    }
    if (!flushed.isOk())
        return flushed;
    return errno_ == 0 ? Status::ok() : Status(Errno{errno_});
}

void
LogWriter::discard()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!path_.empty())
        ::unlink(path_.c_str());
    buf_.clear();
}

// --- readLog -------------------------------------------------------------

Result<LogContents>
readLog(const std::string &path)
{
    LogReader reader;
    Status opened = reader.open(path);
    if (!opened.isOk())
        return Result<LogContents>(Errno{opened.error().code});

    LogContents contents;
    contents.version = reader.version();
    LogRecord record;
    for (;;) {
        LogReader::Next n = reader.next(&record);
        if (n == LogReader::Next::Record) {
            contents.records.push_back(std::move(record));
            continue;
        }
        contents.truncated = n == LogReader::Next::Truncated;
        break;
    }
    return contents;
}

} // namespace varan::rr
